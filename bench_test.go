// Benchmarks regenerating every figure (F1-F12) and table-style claim
// (T1-T12) of the paper; DESIGN.md maps each benchmark to the paper
// artifact and the implementing modules. Run:
//
//	go test -bench=. -benchmem
package otisnet

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"otisnet/internal/analysis"
	"otisnet/internal/collective"
	"otisnet/internal/control"
	"otisnet/internal/core"
	"otisnet/internal/digraph"
	"otisnet/internal/embed"
	"otisnet/internal/faults"
	"otisnet/internal/hypergraph"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/legacysim"
	"otisnet/internal/ops"
	"otisnet/internal/optical"
	"otisnet/internal/otis"
	"otisnet/internal/otisnets"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
	"otisnet/internal/workload"
)

// BenchmarkFig01OTISPermutation builds the OTIS(3,6) transpose of Figure 1
// and checks it is a bijection.
func BenchmarkFig01OTISPermutation(b *testing.B) {
	o := otis.New(3, 6)
	for i := 0; i < b.N; i++ {
		p := o.Permutation()
		if !otis.IsPermutation(p) {
			b.Fatal("not a permutation")
		}
	}
}

// BenchmarkFig02OPSBroadcast performs the degree-4 coupler broadcast of
// Figure 2.
func BenchmarkFig02OPSBroadcast(b *testing.B) {
	c := ops.NewDegree(4)
	for i := 0; i < b.N; i++ {
		out := c.Broadcast(i%4, 1.0)
		if out[0] != 0.25 {
			b.Fatal("wrong split")
		}
	}
}

// BenchmarkFig03Hyperarc builds the hyperarc model of Figure 3 and checks
// one-to-many reachability.
func BenchmarkFig03Hyperarc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := hypergraph.New(8)
		h.AddHyperarc([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
		if !h.Reachable(0, 7) {
			b.Fatal("unreachable")
		}
	}
}

// BenchmarkFig04POPSBuild constructs POPS(4,2) of Figure 4.
func BenchmarkFig04POPSBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pops.New(4, 2)
		if p.Couplers() != 4 {
			b.Fatal("wrong coupler count")
		}
	}
}

// BenchmarkFig05StackModel builds the ς(4,K+2) model of Figure 5 and
// checks single-hop diameter.
func BenchmarkFig05StackModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sg := hypergraph.NewStackGraph(4, digraph.CompleteWithLoops(2))
		if sg.Diameter() != 1 {
			b.Fatal("wrong diameter")
		}
	}
}

// BenchmarkFig06LineDigraph iterates L^2(K3) = KG(2,3) (Figure 6) and
// verifies the isomorphism.
func BenchmarkFig06LineDigraph(b *testing.B) {
	kg := kautz.New(2, 3)
	for i := 0; i < b.N; i++ {
		l := digraph.LineDigraphPower(digraph.Complete(3), 2)
		if !digraph.Isomorphic(kg.Digraph(), l) {
			b.Fatal("not isomorphic")
		}
	}
}

// BenchmarkFig07StackKautzBuild constructs SK(6,3,2) of Figure 7.
func BenchmarkFig07StackKautzBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := stackkautz.New(6, 3, 2)
		if n.N() != 72 {
			b.Fatal("wrong size")
		}
	}
}

// BenchmarkFig08GroupInput assembles the Figure 8 building block
// (6 processors -> 4 multiplexers via OTIS(6,4)).
func BenchmarkFig08GroupInput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nl := optical.NewNetlist()
		txs, muxes := core.BuildGroupInput(nl, 6, 4, "g")
		if len(txs) != 6 || len(muxes) != 4 {
			b.Fatal("wrong block")
		}
	}
}

// BenchmarkFig09GroupOutput assembles the Figure 9 building block
// (3 splitters -> 5 processors via OTIS(3,5)).
func BenchmarkFig09GroupOutput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nl := optical.NewNetlist()
		sp, rx := core.BuildGroupOutput(nl, 3, 5, "g")
		if len(sp) != 3 || len(rx) != 5 {
			b.Fatal("wrong block")
		}
	}
}

// BenchmarkFig10Prop1 verifies Proposition 1 for II(3,12) via OTIS(3,12)
// (Figure 10), exactly over all nodes.
func BenchmarkFig10Prop1(b *testing.B) {
	r := otis.NewImaseRealization(3, 12)
	for i := 0; i < b.N; i++ {
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11POPSDesign builds and fully verifies the POPS(4,2) optical
// design of Figure 11 (trace of every beam).
func BenchmarkFig11POPSDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := core.DesignPOPS(4, 2)
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12SKDesign builds and fully verifies the SK(6,3,2) optical
// design of Figure 12 (trace of all 288 beams through 277 components).
func BenchmarkFig12SKDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := core.DesignStackKautz(6, 3, 2)
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1KautzScaling builds the Kautz parameter table of §2.5.
func BenchmarkT1KautzScaling(b *testing.B) {
	params := []struct{ d, k int }{{2, 3}, {3, 2}, {3, 3}, {4, 2}}
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			kg := kautz.New(p.d, p.k)
			if kg.Digraph().Diameter() != p.k {
				b.Fatal("wrong diameter")
			}
		}
	}
}

// BenchmarkT2IIDiameter sweeps Imase-Itoh diameters against the
// ⌈log_d n⌉ bound of §2.6.
func BenchmarkT2IIDiameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 5; n <= 30; n++ {
			ii := imase.New(3, n)
			if d := ii.Digraph().Diameter(); d > imase.DiameterBound(3, n) {
				b.Fatal("bound violated")
			}
		}
	}
}

// BenchmarkT3POPSCount recomputes POPS parameter identities.
func BenchmarkT3POPSCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pops.New(16, 8)
		if p.N() != 128 || p.Couplers() != 64 {
			b.Fatal("wrong parameters")
		}
	}
}

// BenchmarkT4SKCount recomputes stack-Kautz parameter identities.
func BenchmarkT4SKCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := stackkautz.New(8, 3, 3)
		if n.N() != 288 || n.Couplers() != 144 {
			b.Fatal("wrong parameters")
		}
	}
}

// BenchmarkT5DesignBOM builds the §4 designs and extracts their bills of
// materials.
func BenchmarkT5DesignBOM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := core.DesignStackKautz(6, 3, 2)
		bom, _ := d.NL.BOM()
		if bom["OTIS(6,4)"] != 12 || bom["MUX(6)"] != 48 {
			b.Fatal("wrong BOM")
		}
	}
}

// BenchmarkT6FaultRouting measures fault-tolerant routing (≤ k+2 hops,
// d-1 faults) on KG(3,3).
func BenchmarkT6FaultRouting(b *testing.B) {
	kg := kautz.New(3, 3)
	faulty := map[int]bool{5: true, 17: true}
	fs := func(w kautz.Label) bool { return faulty[kg.Index(w)] }
	for i := 0; i < b.N; i++ {
		src := kg.LabelOf(i % kg.N())
		dst := kg.LabelOf((i*7 + 3) % kg.N())
		if kg.Index(src) == kg.Index(dst) || faulty[kg.Index(src)] || faulty[kg.Index(dst)] {
			continue
		}
		p, _ := kg.RouteAvoiding(src, dst, fs)
		if p == nil || len(p)-1 > 5 {
			b.Fatal("fault routing failed")
		}
	}
}

// BenchmarkT7SimThroughput runs the uniform-traffic comparison point
// (SK(6,3,2), rate 0.2) of the simulation campaign.
func BenchmarkT7SimThroughput(b *testing.B) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.Run(topo, sim.UniformTraffic{Rate: 0.2}, 200, 200, sim.Config{Seed: int64(i)})
		if m.Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkT7LegacyEngine runs the identical T7 workload on the frozen
// pre-compilation reference engine (internal/legacysim: interface dispatch
// per routing decision, O(N) queue scan and O(M) coupler clear per slot).
// Together with BenchmarkT7SimThroughput it measures the compiled engine's
// speedup on the same machine in the same run; scripts/bench.sh records
// the pair in BENCH_4.json.
func BenchmarkT7LegacyEngine(b *testing.B) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := legacysim.Run(topo, sim.UniformTraffic{Rate: 0.2}, 200, 200, sim.Config{Seed: int64(i)})
		if m.Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkStepLargeN measures the O(active)-stepping win at production
// scale: point-to-point Kautz networks of thousands of nodes under a fixed
// absolute load (64 fresh messages per slot regardless of N). With the
// active-node list and touched-coupler bitmap, slot cost tracks the number
// of in-flight messages, so ns/op stays roughly flat as N doubles — the
// legacy engine's O(N + M) per-slot scans would double it. The compiled
// engine borrows the topology's route table and distance rows, so even at
// N ≈ 12k compilation is O(N + M) and Step allocates nothing.
func BenchmarkStepLargeN(b *testing.B) {
	for _, k := range []int{12, 13} {
		kg := kautz.New(2, k)
		b.Run(fmt.Sprintf("KG(2,%d)-N=%d", k, kg.N()), func(b *testing.B) {
			topo := sim.NewPointToPointTopology(kg.Digraph())
			e := sim.NewEngine(topo, sim.Config{Seed: 1})
			n := topo.Nodes()
			slot := 0
			const perSlot = 64
			step := func() {
				off := 1 + (slot*7919)%(n-1)
				base := (slot * 131) % n
				for j := 0; j < perSlot; j++ {
					u := (base + j*97) % n
					e.Inject(u, (u+off)%n)
				}
				e.Step()
				slot++
			}
			for i := 0; i < 300; i++ { // warmup to steady in-flight population
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}

// BenchmarkStepLargeNParallel pits the serial Step against the sharded
// slot loop on BenchmarkStepLargeN's production-scale workload (Kautz
// point-to-point, 64 fresh messages per slot). Three variants per size:
// "serial" is the plain engine; "armed-serial" arms shard workers but
// pins the engagement threshold out of reach, so every slot takes the
// serial path through the parallel dispatch check — the guard that
// arming costs nothing when parallelism doesn't engage; "parallel"
// forces the sharded path on every slot with GOMAXPROCS workers.
// scripts/bench.sh pairs serial vs parallel ns/op at N=12288 as
// "parallel_step_speedup" in BENCH_8.json — on a single-core runner the
// crew is pure overhead and the recorded ratio honestly shows it.
func BenchmarkStepLargeNParallel(b *testing.B) {
	// GOMAXPROCS shard workers, floored at two: SetParallel(1) is the
	// serial engine, so a single-core runner would silently benchmark
	// serial against itself instead of measuring the crew's overhead.
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	arm := map[string]func(*sim.Engine){
		"serial": func(e *sim.Engine) {},
		"armed-serial": func(e *sim.Engine) {
			e.SetParallel(shards)
			e.SetParallelThreshold(1 << 30)
		},
		"parallel": func(e *sim.Engine) {
			e.SetParallel(shards)
			e.SetParallelThreshold(0)
		},
	}
	for _, k := range []int{12, 13} {
		kg := kautz.New(2, k)
		for _, variant := range []string{"serial", "armed-serial", "parallel"} {
			b.Run(fmt.Sprintf("KG(2,%d)-N=%d/%s", k, kg.N(), variant), func(b *testing.B) {
				topo := sim.NewPointToPointTopology(kg.Digraph())
				e := sim.NewEngine(topo, sim.Config{Seed: 1})
				defer e.Close()
				arm[variant](e)
				n := topo.Nodes()
				slot := 0
				const perSlot = 64
				step := func() {
					off := 1 + (slot*7919)%(n-1)
					base := (slot * 131) % n
					for j := 0; j < perSlot; j++ {
						u := (base + j*97) % n
						e.Inject(u, (u+off)%n)
					}
					e.Step()
					slot++
				}
				for i := 0; i < 300; i++ { // warmup to steady in-flight population
					step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step()
				}
			})
		}
	}
}

// BenchmarkStepAllocFree drives the engine at a sustained sub-saturation
// load and verifies the simulation hot path is allocation-free in steady
// state: the "step" variant measures Engine.Step alone under a
// deterministic injection pattern; the "run-loop" variant measures the
// full sim.Run inner loop (Traffic.Generate into a reusable scratch,
// Inject, Step). After warmup the ring buffers, arbitration scratch and
// injection scratch have reached their high-water marks, so both variants
// must report 0 B/op.
func BenchmarkStepAllocFree(b *testing.B) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	n := topo.Nodes()
	b.Run("step", func(b *testing.B) {
		e := sim.NewEngine(topo, sim.Config{Seed: 1})
		slot := 0
		step := func() {
			// Rotating sources and destinations at per-node rate 1/8: below
			// SK(6,3,2) saturation with no persistent hot flow, so queue
			// lengths — and therefore ring capacities — stay bounded.
			const stride = 8
			off := 1 + (slot*7)%(n-1)
			for u := slot % stride; u < n; u += stride {
				e.Inject(u, (u+off)%n)
			}
			e.Step()
			slot++
		}
		for i := 0; i < 2000; i++ { // warmup to steady state
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	b.Run("run-loop", func(b *testing.B) {
		e := sim.NewEngine(topo, sim.Config{Seed: 1})
		traffic := sim.UniformTraffic{Rate: 0.15} // sub-saturation
		rng := rand.New(rand.NewSource(2))
		var buf []sim.Injection
		slot := 0
		step := func() {
			buf = traffic.Generate(buf[:0], slot, n, rng)
			for _, inj := range buf {
				e.Inject(inj.Src, inj.Dst)
			}
			e.Step()
			slot++
		}
		for i := 0; i < 5000; i++ { // warmup to steady state
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
}

// BenchmarkT6DynamicFaults is the live version of BenchmarkT6FaultRouting:
// SK(6,3,2) with d-1 = 2 whole groups failing mid-run inside the engine,
// which purges stranded messages and reroutes the survivors in ≤ k+2 hops
// on the surviving structure (experiment T6D).
func BenchmarkT6DynamicFaults(b *testing.B) {
	const s, k = 6, 2
	nw := stackkautz.New(s, 3, k)
	topo := sim.NewStackTopology(nw.StackGraph())
	var nodes []int
	for _, g := range []int{2, 7} {
		for m := 0; m < s; m++ {
			nodes = append(nodes, g*s+m)
		}
	}
	ft := faults.Wrap(topo, faults.FixedNodes(100, nodes...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.Run(ft, sim.UniformTraffic{Rate: 0.2}, 300, 300, sim.Config{Seed: int64(i)})
		if m.Delivered == 0 || m.LostToFaults+m.Unroutable == 0 {
			b.Fatal("fault injection had no effect")
		}
	}
}

// BenchmarkFaultSweepDegradation fans the fault-count degradation sweep
// (node faults 0..3 x 2 seeds on SK(6,3,2)) across the worker pool and
// aggregates the throughput-degradation curve.
func BenchmarkFaultSweepDegradation(b *testing.B) {
	specs := make([]faults.Spec, 0, 4)
	for f := 0; f <= 3; f++ {
		specs = append(specs, faults.Spec{Kind: faults.KindNode, Count: f, Slot: 0, Seed: 99})
	}
	grid := sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())},
		},
		Rates:  []float64{0.5},
		Seeds:  []int64{1, 2},
		Slots:  200,
		Drain:  200,
		Faults: specs,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := sweep.Aggregate(sweep.Runner{}.RunGrid(grid))
		if len(curve) != 4 {
			b.Fatalf("expected 4 curve points, got %d", len(curve))
		}
	}
}

// sweepGridT7 is the 24-point scenario grid (3 loads x 4 seeds x 2 modes)
// shared by BenchmarkSweepGrid and its frozen-engine counterpart.
func sweepGridT7() sweep.Grid {
	return sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())},
		},
		Rates: []float64{0.05, 0.2, 0.5},
		Seeds: []int64{1, 2, 3, 4},
		Modes: []sweep.Mode{sweep.StoreAndForward, sweep.Deflection},
		Slots: 200,
		Drain: 200,
	}
}

// BenchmarkSweepGrid fans a 24-point scenario grid (3 loads x 4 seeds x
// 2 modes) across the sweep worker pool — each worker reusing one compiled
// engine across its scenarios — and aggregates the curve.
func BenchmarkSweepGrid(b *testing.B) {
	grid := sweepGridT7()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := sweep.Aggregate(sweep.Runner{}.RunGrid(grid))
		if len(curve) != 6 {
			b.Fatalf("expected 6 curve points, got %d", len(curve))
		}
	}
}

// BenchmarkSweepGridLegacyEngine runs the identical 24-point grid
// scenario by scenario on the frozen reference engine (one fresh engine
// per scenario, as the pre-reuse sweep did), the same-machine baseline
// scripts/bench.sh pairs with BenchmarkSweepGrid in BENCH_4.json.
func BenchmarkSweepGridLegacyEngine(b *testing.B) {
	grid := sweepGridT7()
	points := grid.Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make([]sweep.Result, len(points))
		for j, p := range points {
			results[j] = sweep.Result{
				Scenario: p,
				Metrics:  legacysim.Run(p.Topology.Topo, sim.UniformTraffic{Rate: p.Rate}, p.Slots, p.Drain, p.Config()),
			}
		}
		curve := sweep.Aggregate(results)
		if len(curve) != 6 {
			b.Fatalf("expected 6 curve points, got %d", len(curve))
		}
	}
}

// BenchmarkSweepGridBatched runs the identical 24-point grid through the
// batched dispatcher: points grouped by topology fingerprint, chunked into
// ReplicaSet batches (auto-sized), stream-siblings sharing one generated
// injection schedule. scripts/bench.sh pairs it with BenchmarkSweepGrid as
// "batched_speedup" in BENCH_6.json.
func BenchmarkSweepGridBatched(b *testing.B) {
	grid := sweepGridT7()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := sweep.Aggregate(sweep.Runner{Replicas: sweep.AutoReplicas}.RunGrid(grid))
		if len(curve) != 6 {
			b.Fatalf("expected 6 curve points, got %d", len(curve))
		}
	}
}

// BenchmarkBatchedStep measures the amortized per-scenario cost of
// stepping a saturated 8-replica batch over one compiled SK(6,3,2) base
// versus running the same eight scenarios back to back on a solo engine
// — the engine-level view of the batching win, isolated from sweep
// orchestration.
func BenchmarkBatchedStep(b *testing.B) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	const reps, slots, drain = 8, 200, 200
	specs := make([]sim.ReplicaSpec, reps)
	for i := range specs {
		specs[i] = sim.ReplicaSpec{
			Config:      sim.Config{Seed: 1, Deflection: i%2 == 1},
			Traffic:     sim.UniformTraffic{Rate: 0.5},
			Slots:       slots,
			Drain:       drain,
			StreamGroup: i / 2, // pairs share one injection stream
		}
	}
	b.Run("batched", func(b *testing.B) {
		rs := sim.NewReplicaSet(topo)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rs.Configure(specs)
			rs.RunAll()
			if rs.Metrics(0).Delivered == 0 {
				b.Fatal("no deliveries")
			}
		}
	})
	b.Run("solo", func(b *testing.B) {
		eng := sim.NewEngine(topo, specs[0].Config)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, sp := range specs {
				m := eng.Run(sp.Traffic, sp.Slots, sp.Drain, sp.Config)
				if m.Delivered == 0 {
					b.Fatal("no deliveries")
				}
			}
		}
	})
}

// BenchmarkSweepCachedGrid runs the identical 24-point grid against a
// warmed content-addressed result cache (internal/sweepcache, the PR 5
// service layer): every point is a cache hit, so the iteration cost is
// pure orchestration — key hashing, lookups and aggregation — with zero
// simulated slots. scripts/bench.sh pairs it with BenchmarkSweepGrid (the
// cold, cacheless run of the same grid) as "warm_cache_speedup"; the
// service-layer contract is >= 10x.
func BenchmarkSweepCachedGrid(b *testing.B) {
	grid := sweepGridT7()
	points := grid.Points()
	cache := sweepcache.NewMemory()
	if _, err := (sweep.Runner{}).RunCached(context.Background(), points, cache, nil); err != nil {
		b.Fatal(err)
	}
	coldMisses := cache.Stats().Misses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sweep.Runner{}.RunCached(context.Background(), points, cache, nil)
		if err != nil {
			b.Fatal(err)
		}
		curve := sweep.Aggregate(results)
		if len(curve) != 6 {
			b.Fatalf("expected 6 curve points, got %d", len(curve))
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Misses != coldMisses {
		b.Fatalf("warm-cache grid computed %d points, want 0", st.Misses-coldMisses)
	}
}

// BenchmarkT8OTISAsII identifies OTIS(3,12) with II(3,12) and re-verifies
// Proposition 1 (the conclusion's corollary).
func BenchmarkT8OTISAsII(b *testing.B) {
	o := otis.New(3, 12)
	for i := 0; i < b.N; i++ {
		d, n := o.AsImaseItoh()
		if err := otis.NewImaseRealization(d, n).Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIsoRefinement compares isomorphism testing with the
// paper-scale graphs (the refinement ablation DESIGN.md calls out): KG(3,3)
// against a relabeled copy.
func BenchmarkAblationIsoRefinement(b *testing.B) {
	g := kautz.New(3, 3).Digraph()
	h := g.Clone()
	for i := 0; i < b.N; i++ {
		if !digraph.Isomorphic(g, h) {
			b.Fatal("must be isomorphic")
		}
	}
}

// BenchmarkAblationDeflection compares store-and-forward against
// hot-potato deflection on the same saturated workload.
func BenchmarkAblationDeflection(b *testing.B) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	b.Run("store-and-forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(topo, sim.UniformTraffic{Rate: 0.8}, 200, 100, sim.Config{Seed: 1})
		}
	})
	b.Run("hot-potato", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(topo, sim.UniformTraffic{Rate: 0.8}, 200, 100, sim.Config{Seed: 1, Deflection: true})
		}
	})
}

// BenchmarkT9Collectives builds and executes the SK(6,3,2) broadcast
// schedule (experiment T9).
func BenchmarkT9Collectives(b *testing.B) {
	n := stackkautz.New(6, 3, 2)
	src := stackkautz.Address{Group: n.Kautz().LabelOf(0), Member: 0}
	for i := 0; i < b.N; i++ {
		s := collective.SKBroadcast(n, src)
		if !s.Execute(n.StackGraph()).BroadcastComplete(n.NodeID(src)) {
			b.Fatal("broadcast incomplete")
		}
	}
}

// BenchmarkT9DynamicCollective is the live version of
// BenchmarkT9Collectives (experiment T9D): the SK(6,3,2) broadcast schedule
// is expanded into unicast messages and replayed through the engine, where
// every round must deliver its full intent under real coupler arbitration
// and the dissemination must complete in at least the lower-bound number of
// rounds.
func BenchmarkT9DynamicCollective(b *testing.B) {
	nw := stackkautz.New(6, 3, 2)
	src := stackkautz.Address{Group: nw.Kautz().LabelOf(0), Member: 0}
	sched := collective.SKBroadcast(nw, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workload.ReplayBroadcast(nw.StackGraph(), sched, nw.NodeID(src), sim.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete || len(res.Rounds) < res.LowerBound {
			b.Fatal("live broadcast replay incomplete or below the lower bound")
		}
	}
}

// BenchmarkWorkloadSweep fans the workload axis (uniform, transpose,
// hotspot, bursty x 2 seeds on SK(6,3,2)) across the sweep worker pool and
// aggregates one curve point per workload kind.
func BenchmarkWorkloadSweep(b *testing.B) {
	grid := sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph()), GroupSize: 6},
		},
		Rates: []float64{0.2},
		Seeds: []int64{1, 2},
		Slots: 200,
		Drain: 200,
		Workloads: []workload.Spec{
			{},
			{Kind: workload.KindTranspose},
			{Kind: workload.KindHotspot, HotGroup: 2, Fraction: 0.4},
			{Kind: workload.KindBursty, MeanOn: 20, MeanOff: 60, OffFactor: 0.1},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := sweep.Aggregate(sweep.Runner{}.RunGrid(grid))
		if len(curve) != 4 {
			b.Fatalf("expected 4 curve points, got %d", len(curve))
		}
	}
}

// BenchmarkT10TDMAFrame builds and validates the SK(6,3,2) TDMA access
// frame (experiment T10).
func BenchmarkT10TDMAFrame(b *testing.B) {
	sg := stackkautz.New(6, 3, 2).StackGraph()
	for i := 0; i < b.N; i++ {
		frame := control.TDMAFrame(sg)
		if err := frame.Validate(sg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT11WDM runs the saturated WDM comparison point (w = 4) of
// experiment T11.
func BenchmarkT11WDM(b *testing.B) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.Run(topo, sim.UniformTraffic{Rate: 0.9}, 200, 0,
			sim.Config{Seed: int64(i), Wavelengths: 4})
		if m.Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkT12CostModel computes the full cost-model table of experiment
// T12.
func BenchmarkT12CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := []analysis.Cost{
			analysis.POPSCost(16, 8),
			analysis.StackKautzCost(6, 3, 2),
			analysis.DeBruijnCost(3, 4),
		}
		if analysis.FormatTable(rows) == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkT12OTISNetworks builds the OTIS-Hypercube of [24] and computes
// its diameter (experiment T12, conclusion's corollary).
func BenchmarkT12OTISNetworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := otisnets.New(otisnets.NewHypercubeFactor(3))
		if n.Digraph().Diameter() != 7 {
			b.Fatal("wrong diameter")
		}
	}
}

// BenchmarkEmbedRingIntoSK measures the dilation-1 directed-ring embedding
// into SK (Hamiltonian-cycle based).
func BenchmarkEmbedRingIntoSK(b *testing.B) {
	n := stackkautz.New(3, 2, 2)
	for i := 0; i < b.N; i++ {
		e, err := embed.DirectedRingIntoStackKautz(n)
		if err != nil {
			b.Fatal(err)
		}
		if m := e.Measure(); m.Dilation != 1 {
			b.Fatal("dilation should be 1")
		}
	}
}

// BenchmarkAblationLabelVsTable quantifies §2.5's "routing is very simple"
// claim: label-induced routing (O(k) work, zero state) against a
// precomputed N×N next-hop table (O(1) per hop, O(N²) memory), on KG(4,3)
// (80 vertices).
func BenchmarkAblationLabelVsTable(b *testing.B) {
	kg := kautz.New(4, 3)
	table := kg.BuildRoutingTable()
	pairs := make([][2]int, 256)
	for i := range pairs {
		pairs[i] = [2]int{(i * 13) % kg.N(), (i*29 + 7) % kg.N()}
	}
	b.Run("label", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if p[0] == p[1] {
				continue
			}
			if kautz.Route(kg.LabelOf(p[0]), kg.LabelOf(p[1])) == nil {
				b.Fatal("no route")
			}
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if p[0] == p[1] {
				continue
			}
			if table.PathVia(p[0], p[1]) == nil {
				b.Fatal("no route")
			}
		}
	})
	b.Run("table-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kg.BuildRoutingTable()
		}
	})
}
