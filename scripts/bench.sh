#!/usr/bin/env bash
# Runs the engine performance benchmarks — the compiled-topology hot path,
# its frozen legacy-engine baselines, the large-N O(active) benchmark, the
# service-layer pair (cold grid vs warm content-addressed cache), the
# PR 6 batched-dispatch pair (per-scenario grid vs ReplicaSet batches)
# and the PR 8 intra-run parallel pair (serial Step vs the coupler-range
# sharded slot loop at N=12288) — and emits BENCH_8.json with ns/op,
# B/op, allocs/op per benchmark plus the same-machine speedups: compiled
# engine over the legacy baseline, the warm-cache grid over the cold grid
# (service-layer contract >= 10x), the batched grid over per-scenario
# dispatch, and serial Step over the sharded slot loop
# ("parallel_step_speedup"; below 1.0 on runners with too few cores —
# the crew is overhead there, and the snapshot records that honestly).
# BENCH_<n>.json snapshots accumulate per PR; BENCH_7.json is the previous
# point of the trajectory. `go run ./cmd/benchdiff` prints the trajectory
# across every snapshot and fails on >10% regressions of the headline
# speedups between the last two points.
#
# Usage: scripts/bench.sh            # default -benchtime=2s
#        BENCHTIME=1x scripts/bench.sh   # CI smoke (pipeline check only;
#                                        # 1x timings are not meaningful)
#        OUT=path.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_8.json}"
PATTERN='BenchmarkStepAllocFree|BenchmarkT7SimThroughput|BenchmarkT7LegacyEngine|BenchmarkSweepGrid$|BenchmarkSweepGridLegacyEngine|BenchmarkStepLargeN|BenchmarkStepLargeNParallel|BenchmarkSweepCachedGrid|BenchmarkSweepGridBatched|BenchmarkBatchedStep'

raw=$(go test -run=NONE -bench="$PATTERN" -benchtime="$BENCHTIME" -benchmem .)
printf '%s\n' "$raw"

# The runner's core count contextualizes parallel_step_speedup: on a
# machine with too few cores the shard crew is pure overhead and the
# ratio honestly drops below 1.0.
GOMAXPROCS_N=$(go env GOMAXPROCS 2>/dev/null || true)
[ -n "$GOMAXPROCS_N" ] || GOMAXPROCS_N=$(getconf _NPROCESSORS_ONLN)

printf '%s\n' "$raw" | awk -v benchtime="$BENCHTIME" -v gomaxprocs="$GOMAXPROCS_N" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
	ns = ""; bytes = "null"; allocs = "null"
	for (i = 1; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		else if ($i == "B/op") bytes = $(i - 1)
		else if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	n++
	names[n] = name; nss[n] = ns; bs[n] = bytes; as[n] = allocs
	lookup[name] = ns
}
END {
	printf "{\n"
	printf "  \"pr\": 8,\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"gomaxprocs\": %s,\n", gomaxprocs
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			names[i], nss[i], bs[i], as[i], (i < n ? "," : "")
	}
	printf "  ],\n"
	t7n = lookup["BenchmarkT7SimThroughput"]
	t7o = lookup["BenchmarkT7LegacyEngine"]
	swn = lookup["BenchmarkSweepGrid"]
	swo = lookup["BenchmarkSweepGridLegacyEngine"]
	swc = lookup["BenchmarkSweepCachedGrid"]
	swb = lookup["BenchmarkSweepGridBatched"]
	stb = lookup["BenchmarkBatchedStep/batched"]
	sts = lookup["BenchmarkBatchedStep/solo"]
	pss = lookup["BenchmarkStepLargeNParallel/KG(2,13)-N=12288/serial"]
	psp = lookup["BenchmarkStepLargeNParallel/KG(2,13)-N=12288/parallel"]
	printf "  \"speedup_vs_legacy\": {"
	if (t7n > 0 && t7o > 0) printf "\"BenchmarkT7SimThroughput\": %.2f", t7o / t7n
	if (swn > 0 && swo > 0) printf ", \"BenchmarkSweepGrid\": %.2f", swo / swn
	printf "},\n"
	printf "  \"warm_cache_speedup\": "
	if (swn > 0 && swc > 0) printf "%.2f,\n", swn / swc; else printf "null,\n"
	printf "  \"batched_speedup\": "
	if (swn > 0 && swb > 0) printf "%.2f,\n", swn / swb; else printf "null,\n"
	printf "  \"batched_step_speedup\": "
	if (stb > 0 && sts > 0) printf "%.2f,\n", sts / stb; else printf "null,\n"
	printf "  \"parallel_step_speedup\": "
	if (pss > 0 && psp > 0) printf "%.2f\n", pss / psp; else printf "null\n"
	printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
