#!/usr/bin/env bash
# Two-process end-to-end smoke of the distributed sweep coordinator:
# starts one `netsim serve` (coordinator) and two `netsim work` fleets
# (separate OS processes speaking the real HTTP lease protocol), submits
# a sharded grid, waits for the worker fleet to run it to completion, and
# asserts the coordinator metric families show up on /metrics. This is
# the cross-process complement of the in-process chaos tests in
# internal/coordinator — it proves the shipped binary wires the same
# pieces together.
#
# Usage: scripts/coord_smoke.sh            # default 127.0.0.1:18090
#        ADDR=127.0.0.1:9999 scripts/coord_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18090}"
TMP="$(mktemp -d)"
BIN="$TMP/netsim"
go build -o "$BIN" ./cmd/netsim

SERVER=""
W1=""
W2=""
cleanup() {
  kill "$SERVER" "$W1" "$W2" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$BIN" serve -addr "$ADDR" -cachedir "$TMP/cache" -logjson 2>"$TMP/serve.log" &
SERVER=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/metrics" >/dev/null 2>&1 && break
  sleep 0.2
done

"$BIN" work -server "http://$ADDR" -workers 2 -name fleet-a \
  -cachedir "$TMP/cache" -idleexit 120s -logjson 2>"$TMP/work-a.log" &
W1=$!
"$BIN" work -server "http://$ADDR" -workers 2 -name fleet-b \
  -cachedir "$TMP/cache" -idleexit 120s -logjson 2>"$TMP/work-b.log" &
W2=$!

SUBMIT=$(curl -fsS -X POST "http://$ADDR/api/v1/sweeps" -d '{
  "topologies": [{"net":"sk","s":3,"d":2,"k":2}],
  "rates": [0.1, 0.2], "seeds": [1, 2, 3],
  "slots": 200, "drain": 200, "shards": 4
}')
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
test -n "$ID" || { echo "no job id in: $SUBMIT"; exit 1; }
echo "submitted distributed job $ID"

STATE=""
for _ in $(seq 1 150); do
  STATUS=$(curl -fsS "http://$ADDR/api/v1/sweeps/$ID")
  STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "job ended $STATE: $STATUS"; exit 1 ;;
  esac
  sleep 0.2
done
if [ "$STATE" != "done" ]; then
  echo "job never finished; last status: $STATUS"
  cat "$TMP"/work-*.log >&2 || true
  exit 1
fi
printf '%s' "$STATUS" | grep -q '"shards_done": *4' || { echo "bad shard count: $STATUS"; exit 1; }
echo "job $ID done across the worker fleet"

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics.txt"
grep -q '# TYPE netsim_coord_leases_granted_total counter' "$TMP/metrics.txt"
grep -q '# TYPE netsim_coord_shards_completed_total counter' "$TMP/metrics.txt"
grep -q '# TYPE netsim_coord_workers_live gauge' "$TMP/metrics.txt"
grep -q '# TYPE netsim_coord_jobs_completed_total counter' "$TMP/metrics.txt"
grep -Eq '^netsim_coord_jobs_completed_total [1-9]' "$TMP/metrics.txt"
echo "coordinator metric families present on /metrics"
echo "coord smoke OK"
