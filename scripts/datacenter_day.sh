#!/usr/bin/env bash
# The "datacenter day" experiment: replay one empirical diurnal trace
# (examples/traces/day_rates.csv, a rates-form trace synthesized by
# `netsim synthtrace`) across the paper's comparable-scale trio —
# SK(6,3,2), POPS(9,8) and the de Bruijn baseline — so the three
# topologies are compared under the *same* recorded load curve instead of
# a synthetic steady state. Every run goes through the content-addressed
# result cache keyed by the trace's byte fingerprint: rerunning this
# script with an untouched trace is a pure warm hit, and editing one
# record of the trace recomputes everything.
#
# Usage: scripts/datacenter_day.sh                 # table on stdout
#        TRACE=path.csv scripts/datacenter_day.sh  # replay another trace
#        SEEDS=5 SLOTS=2000 scripts/datacenter_day.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE="${TRACE:-examples/traces/day_rates.csv}"
SEEDS="${SEEDS:-3}"
SLOTS="${SLOTS:-1000}"

go run ./cmd/netsim -net all -sweep \
  -workload trace -tracefile "$TRACE" \
  -seeds "$SEEDS" -slots "$SLOTS" -drain "$SLOTS" \
  -format table "$@"
