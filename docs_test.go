package otisnet

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsBenchmarkNamesExist fails when README.md or DESIGN.md references
// a benchmark that no longer exists in the tree, so the docs cannot drift
// from bench_test.go (the CI docs job runs this explicitly).
func TestDocsBenchmarkNamesExist(t *testing.T) {
	defined := map[string]bool{}
	decl := regexp.MustCompile(`func (Benchmark[A-Za-z0-9_]+)\(`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, "_test.go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range decl.FindAllStringSubmatch(string(src), -1) {
			defined[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(defined) == 0 {
		t.Fatal("no benchmarks found in the tree")
	}
	// Uppercase after the prefix skips prose words like "Benchmarks".
	ref := regexp.MustCompile(`Benchmark[A-Z][A-Za-z0-9_]*`)
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		src, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, name := range ref.FindAllString(string(src), -1) {
			// Docs may reference a shared prefix ("BenchmarkT7 matches
			// BenchmarkT7SimThroughput") the way `go test -bench` does.
			ok := false
			for full := range defined {
				if strings.HasPrefix(full, name) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s references %s, which no longer exists", doc, name)
			}
		}
	}
}

// TestDocsTestNamesExist applies the same drift guard to the Test and
// Fuzz functions the docs cite as evidence for equivalence claims.
func TestDocsTestNamesExist(t *testing.T) {
	defined := map[string]bool{}
	decl := regexp.MustCompile(`func ((?:Test|Fuzz)[A-Za-z0-9_]+)\(`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, "_test.go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range decl.FindAllStringSubmatch(string(src), -1) {
			defined[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := regexp.MustCompile(`(?:Test|Fuzz)[A-Z][A-Za-z0-9_]*`)
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		src, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, name := range ref.FindAllString(string(src), -1) {
			ok := false
			for full := range defined {
				if strings.HasPrefix(full, name) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s references %s, which no longer exists", doc, name)
			}
		}
	}
}

// TestInternalPackagesHaveDocComments keeps every internal package
// documented: some file of each package must carry a line-start
// "// Package <name> " doc comment — the exact invariant the CI docs job
// greps for (`^// Package $pkg `), so the two checks cannot disagree.
func TestInternalPackagesHaveDocComments(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		pkg := d.Name()
		files, err := filepath.Glob(filepath.Join("internal", pkg, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		docLine := regexp.MustCompile(`(?m)^// Package ` + regexp.QuoteMeta(pkg) + ` `)
		found := false
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if docLine.Match(src) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("internal/%s has no package doc comment", pkg)
		}
	}
}
