// POPS broadcast: exercise the single-hop one-to-many primitives of the
// POPS(t,g) network — per-coupler broadcast, full one-to-all schedules, and
// the coupler bottleneck under an all-to-all workload, measured with the
// slotted simulator.
package main

import (
	"fmt"

	"otisnet/internal/ops"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
)

func main() {
	p := pops.New(8, 4) // 32 processors, 16 couplers of degree 8
	fmt.Printf("POPS(%d,%d): %d processors, %d couplers of degree %d\n",
		p.T(), p.G(), p.N(), p.Couplers(), p.T())

	// One transmission reaches a whole group: the coupler is a hyperarc.
	src := p.NodeID(2, 5)
	c := p.CouplerFor(2, 0)
	arc := p.StackGraph().Hyperarc(c)
	fmt.Printf("node %d firing on coupler (2,0) reaches all of group 0: %v\n", src, arc.Head)

	// The optical side of that hop: an OPS(8,8) splits the power 8 ways.
	coupler := ops.NewDegree(p.T())
	fmt.Printf("power per receiver: 1/%d of launch (splitting loss %.2f dB)\n",
		p.T(), coupler.SplittingLossDB())

	// One-to-all schedules.
	fmt.Printf("one-to-all: %d slots sequential, %d slot if all %d beams fire at once\n",
		p.OneToAllSlots(false), p.OneToAllSlots(true), p.G())
	for slot, cp := range p.BroadcastSchedule(src) {
		fmt.Printf("  slot %d: drive coupler (%d,%d)\n", slot, cp[0], cp[1])
	}

	// All-to-all personalized exchange: the g² couplers are the bottleneck.
	fmt.Printf("all-to-all personalized lower bound: %d slots\n",
		p.AllToAllPersonalizedLowerBound())

	// Measure a saturated uniform workload against that bound.
	topo := sim.NewStackTopology(p.StackGraph())
	m := sim.Run(topo, sim.UniformTraffic{Rate: 1.0}, 2000, 4000, sim.Config{Seed: 7})
	fmt.Printf("saturated uniform traffic: %.2f msgs/slot over %d couplers (%.0f%% coupler utilization), avg hops %.2f\n",
		m.Throughput(), p.Couplers(), 100*m.Throughput()/float64(p.Couplers()), m.AvgHops())
}
