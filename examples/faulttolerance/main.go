// Fault tolerance: inject group failures into a stack-Kautz network and
// reroute around them with the label-based multipath family, demonstrating
// the paper's §2.5 claim — a path of length at most k+2 survives up to d-1
// faults.
package main

import (
	"fmt"
	"math/rand"

	"otisnet/internal/kautz"
	"otisnet/internal/stackkautz"
)

func main() {
	sk := stackkautz.New(4, 3, 3) // 144 processors, 36 groups, degree 4, diameter 3
	kg := sk.Kautz()
	fmt.Printf("SK(4,3,3): %d processors, %d groups, diameter %d; injecting %d group faults (d-1)\n",
		sk.N(), sk.Groups(), sk.Diameter(), sk.D()-1)

	rng := rand.New(rand.NewSource(2026))
	src := stackkautz.Address{Group: kg.LabelOf(0), Member: 1}
	dst := stackkautz.Address{Group: kg.LabelOf(29), Member: 3}

	healthy := sk.Route(src, dst)
	fmt.Printf("healthy route (%d hops):", len(healthy)-1)
	for _, a := range healthy {
		fmt.Printf(" %v", a)
	}
	fmt.Println()

	// Kill d-1 = 2 groups lying on the healthy route's interior if
	// possible, otherwise random groups — the worst case for the router.
	faulty := map[int]bool{}
	for _, a := range healthy[1 : len(healthy)-1] {
		faulty[kg.Index(a.Group)] = true
		if len(faulty) == sk.D()-1 {
			break
		}
	}
	for len(faulty) < sk.D()-1 {
		f := rng.Intn(kg.N())
		if f != kg.Index(src.Group) && f != kg.Index(dst.Group) {
			faulty[f] = true
		}
	}
	var words []kautz.Label
	for f := range faulty {
		words = append(words, kg.LabelOf(f))
	}
	fmt.Printf("faulty groups: ")
	for _, w := range words {
		fmt.Printf("%s ", w)
	}
	fmt.Println()

	reroute, viaFamily := sk.RouteAvoiding(src, dst,
		func(w kautz.Label) bool { return faulty[kg.Index(w)] })
	if reroute == nil {
		fmt.Println("NO surviving route — should not happen with <= d-1 faults")
		return
	}
	fmt.Printf("surviving route (%d hops <= k+2 = %d, label family: %v):",
		len(reroute)-1, sk.K()+2, viaFamily)
	for _, a := range reroute {
		fmt.Printf(" %v", a)
	}
	fmt.Println()

	// Statistical confirmation over many random pairs and fault sets.
	trials, worst := 0, 0
	for i := 0; i < 2000; i++ {
		u, v := rng.Intn(kg.N()), rng.Intn(kg.N())
		if u == v {
			continue
		}
		fs := map[int]bool{}
		for len(fs) < sk.D()-1 {
			f := rng.Intn(kg.N())
			if f != u && f != v {
				fs[f] = true
			}
		}
		a := stackkautz.Address{Group: kg.LabelOf(u), Member: 0}
		b := stackkautz.Address{Group: kg.LabelOf(v), Member: 0}
		r, _ := sk.RouteAvoiding(a, b, func(w kautz.Label) bool { return fs[kg.Index(w)] })
		if r == nil {
			fmt.Printf("FAILED to route %v -> %v\n", a, b)
			return
		}
		trials++
		if h := len(r) - 1; h > worst {
			worst = h
		}
	}
	fmt.Printf("%d random trials with %d faults each: all routed, worst path %d hops (bound k+2 = %d)\n",
		trials, sk.D()-1, worst, sk.K()+2)
}
