// Design explorer: sweep multi-OPS network configurations and compare
// hardware cost (OTIS blocks, couplers, transceivers) against network size,
// degree, diameter and optical power feasibility — the trade-off space the
// paper's introduction motivates.
package main

import (
	"fmt"

	"otisnet/internal/core"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/ops"
)

func main() {
	const (
		launchDBm = 0   // 1 mW VCSEL
		excessDB  = 3   // lens planes + connectors per path
		sensDBm   = -26 // receiver sensitivity
	)
	maxDeg := ops.MaxDegreeForBudget(launchDBm, excessDB, sensDBm)
	fmt.Printf("optical budget: launch %d dBm, excess %d dB, sensitivity %d dBm -> max coupler degree %d\n\n",
		launchDBm, excessDB, sensDBm, maxDeg)

	fmt.Println("stack-Kautz design space (verified optical designs):")
	fmt.Println("  s   d  k      N  groups  couplers  degree  diam  components  feasible")
	for _, p := range []struct{ s, d, k int }{
		{4, 2, 2}, {8, 2, 2}, {6, 3, 2}, {16, 3, 2}, {4, 2, 3},
		{8, 3, 3}, {16, 4, 2}, {32, 4, 2}, {64, 4, 2},
	} {
		d := core.DesignStackKautz(p.s, p.d, p.k)
		if err := d.Verify(); err != nil {
			fmt.Printf("  SK(%d,%d,%d): DESIGN INVALID: %v\n", p.s, p.d, p.k, err)
			continue
		}
		groups := kautz.N(p.d, p.k)
		fmt.Printf("  %3d %2d %2d %6d %7d %9d %7d %5d %11d %9v\n",
			p.s, p.d, p.k, d.N(), groups, groups*(p.d+1), p.d+1, p.k,
			d.NL.Components(), p.s <= maxDeg)
	}

	fmt.Println("\nPOPS design space:")
	fmt.Println("  t   g      N  couplers  degree  components  feasible")
	for _, p := range []struct{ t, g int }{{4, 2}, {8, 4}, {16, 4}, {16, 8}, {32, 8}} {
		d := core.DesignPOPS(p.t, p.g)
		if err := d.Verify(); err != nil {
			fmt.Printf("  POPS(%d,%d): DESIGN INVALID: %v\n", p.t, p.g, err)
			continue
		}
		fmt.Printf("  %3d %3d %6d %9d %7d %11d %9v\n",
			p.t, p.g, d.N(), p.g*p.g, p.g, d.NL.Components(), p.t <= maxDeg)
	}

	// Stack-Imase-Itoh fills the size gaps between Kautz orders: pick a
	// target size that is not s·d^{k-1}(d+1) for any k.
	fmt.Println("\nsize flexibility — stack-Imase-Itoh at non-Kautz orders (d=3):")
	for _, n := range []int{10, 14, 22, 26} {
		d := core.DesignStackImase(8, 3, n)
		status := "verified"
		if err := d.Verify(); err != nil {
			status = "INVALID"
		}
		_, isKautz := imase.KautzOrder(3, n)
		fmt.Printf("  %d groups (Kautz order: %v): N=%d, diameter bound %d, design %s\n",
			n, isKautz, d.N(), imase.DiameterBound(3, n), status)
	}
}
