// Collectives: build, validate and execute collective-communication
// schedules on POPS and stack-Kautz networks — one-to-all broadcast,
// all-to-all gossip, the TDMA access frame of the distributed-control
// layer, and WDM compression of overloaded rounds.
package main

import (
	"fmt"
	"log"

	"otisnet/internal/collective"
	"otisnet/internal/control"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
	"otisnet/internal/wdm"
)

func main() {
	// --- Broadcast on POPS -------------------------------------------------
	p := pops.New(4, 3)
	src := p.NodeID(1, 2)
	bc := collective.POPSBroadcast(p, src)
	if err := bc.Validate(p.StackGraph()); err != nil {
		log.Fatal(err)
	}
	if !bc.Execute(p.StackGraph()).BroadcastComplete(src) {
		log.Fatal("broadcast incomplete")
	}
	fmt.Printf("POPS(4,3) broadcast from node %d: %d slots (lower bound %d)\n",
		src, bc.Slots(), collective.BroadcastLowerBound(p.StackGraph(), src))
	fmt.Print(collective.FormatSchedule(bc, p.StackGraph()))

	// --- Gossip on POPS ----------------------------------------------------
	gs := collective.POPSGossip(p)
	if !gs.Execute(p.StackGraph()).GossipComplete() {
		log.Fatal("gossip incomplete")
	}
	fmt.Printf("\nPOPS(4,3) gossip: %d slots, %d transmissions (lower bound %d slots)\n",
		gs.Slots(), gs.Transmissions(), collective.GossipLowerBound(p.StackGraph()))

	// --- Broadcast on stack-Kautz -------------------------------------------
	sk := stackkautz.New(6, 3, 2)
	skSrc := stackkautz.Address{Group: sk.Kautz().LabelOf(0), Member: 0}
	sbc := collective.SKBroadcast(sk, skSrc)
	if err := sbc.Validate(sk.StackGraph()); err != nil {
		log.Fatal(err)
	}
	if !sbc.Execute(sk.StackGraph()).BroadcastComplete(sk.NodeID(skSrc)) {
		log.Fatal("SK broadcast incomplete")
	}
	fmt.Printf("\nSK(6,3,2) broadcast from %v: %d slots to reach all %d nodes (eccentricity bound %d)\n",
		skSrc, sbc.Slots(), sk.N(),
		collective.BroadcastLowerBound(sk.StackGraph(), sk.NodeID(skSrc)))

	// --- TDMA frame (distributed control) -----------------------------------
	frame := control.TDMAFrame(sk.StackGraph())
	if err := frame.Validate(sk.StackGraph()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSK(6,3,2) TDMA frame: %d slots give every (node, coupler) pair one access (%d transmissions)\n",
		frame.Slots(), frame.Transmissions())

	// --- WDM compression -----------------------------------------------------
	// A saturated batch: every member of group 0 wants the same coupler.
	var batch []collective.Transmission
	c := sk.CouplerOf(sk.Kautz().LabelOf(0), sk.Kautz().LabelOf(0))
	for m := 0; m < sk.S(); m++ {
		batch = append(batch, collective.Transmission{
			Node:    sk.NodeID(stackkautz.Address{Group: sk.Kautz().LabelOf(0), Member: m}),
			Coupler: c,
		})
	}
	for _, w := range []int{1, 2, 3} {
		s := wdm.CompressIndependent(batch, w)
		if err := wdm.ValidateWDM(s, sk.StackGraph(), w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("WDM w=%d: %d same-coupler transmissions fit in %d slots\n",
			w, len(batch), s.Slots())
	}
}
