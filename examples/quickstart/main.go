// Quickstart: build the paper's flagship network SK(6,3,2), inspect its
// parameters, route a few messages by Kautz labels, and produce + verify
// its complete optical design (Figure 12).
package main

import (
	"fmt"
	"log"

	"otisnet/internal/core"
	"otisnet/internal/stackkautz"
)

func main() {
	// 1. The network: stack-Kautz SK(6,3,2) — 72 processors, 12 groups of
	// 6, node degree 4, diameter 2.
	sk := stackkautz.New(6, 3, 2)
	fmt.Printf("SK(6,3,2): %d processors, %d groups of %d, degree %d, diameter %d, %d couplers\n",
		sk.N(), sk.Groups(), sk.S(), sk.Degree(), sk.Diameter(), sk.Couplers())

	// 2. Routing by labels: the group word spells the route.
	src := sk.Addr(3)  // (group word, member)
	dst := sk.Addr(68) // some far processor
	route := sk.Route(src, dst)
	fmt.Printf("route %v -> %v (%d hops):", src, dst, len(route)-1)
	for _, a := range route {
		fmt.Printf(" %v", a)
	}
	fmt.Println()
	if !sk.ValidRoute(route) {
		log.Fatal("route failed validation")
	}

	// 3. The optical design: one OTIS(6,4) + OTIS(4,6) per group, a central
	// OTIS(3,12), 48 couplers, loops by fiber — verified end to end by
	// tracing every one of the 72 x 4 transmitter beams.
	design := core.DesignStackKautz(6, 3, 2)
	if err := design.Verify(); err != nil {
		log.Fatalf("optical design verification failed: %v", err)
	}
	fmt.Println("optical design verified end to end")
	fmt.Print(design.BOMSummary())

	// 4. The bridge between labels and hardware: Kautz words map onto the
	// Imase-Itoh group numbering of the OTIS wiring.
	numbering := stackkautz.GroupNumbering(sk)
	if numbering == nil {
		log.Fatal("no group numbering found (cannot happen: II(d,G) is KG(d,k))")
	}
	g, m := stackkautz.TransportAddress(sk, numbering, src)
	fmt.Printf("address %v lives at hardware group %d, member %d\n", src, g, m)
}
