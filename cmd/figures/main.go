// Command figures regenerates every figure of the paper as deterministic
// text: wiring tables, adjacency structure, stack-graph models and full
// optical designs. Run with -fig N to print one figure, or without flags to
// print all twelve.
//
//	go run ./cmd/figures            # all figures
//	go run ./cmd/figures -fig 10    # II(3,12) with OTIS(3,12)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"otisnet/internal/core"
	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/ops"
	"otisnet/internal/optical"
	"otisnet/internal/otis"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to render (1-12); 0 renders all")
	flag.Parse()
	renderers := map[int]func() string{
		1: fig1, 2: fig2, 3: fig3, 4: fig4, 5: fig5, 6: fig6,
		7: fig7, 8: fig8, 9: fig9, 10: fig10, 11: fig11, 12: fig12,
	}
	if *fig != 0 {
		r, ok := renderers[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (valid: 1-12)\n", *fig)
			os.Exit(2)
		}
		fmt.Print(r())
		return
	}
	for i := 1; i <= 12; i++ {
		fmt.Printf("================ Figure %d ================\n", i)
		fmt.Print(renderers[i]())
		fmt.Println()
	}
}

// fig1 renders OTIS(3,6): the transpose wiring through two lens planes.
func fig1() string {
	o := otis.New(3, 6)
	return "Figure 1 — OTIS(3,6)\n" + o.RenderWiring()
}

// fig2 renders the degree-4 optical passive star coupler.
func fig2() string {
	c := ops.NewDegree(4)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — %v: multiplexer + beam-splitter, splitting loss %.2f dB\n",
		c, c.SplittingLossDB())
	out := c.Broadcast(0, 1.0)
	fmt.Fprintf(&b, "one unit of power in at source 0 -> %v at destinations 4..7\n", out)
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "  source %d --\\\n", i)
	}
	b.WriteString("              >== mux ==> fiber/free space ==> splitter ==\\\n")
	for i := 4; i < 8; i++ {
		fmt.Fprintf(&b, "  destination %d <-- 1/4 power\n", i)
	}
	return b.String()
}

// fig3 renders the hyperarc model of a degree-4 OPS.
func fig3() string {
	h := hypergraph.New(8)
	h.AddHyperarc([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
	a := h.Hyperarc(0)
	var b strings.Builder
	b.WriteString("Figure 3 — OPS coupler modeled as a hyperarc\n")
	fmt.Fprintf(&b, "hyperarc: tail %v => head %v (degree %d)\n", a.Tail, a.Head, a.Degree())
	for _, src := range a.Tail {
		var reach []string
		for _, dst := range a.Head {
			if h.Reachable(src, dst) {
				reach = append(reach, fmt.Sprint(dst))
			}
		}
		fmt.Fprintf(&b, "  node %d -> {%s}\n", src, strings.Join(reach, ","))
	}
	return b.String()
}

// fig4 renders POPS(4,2): groups and coupler labels.
func fig4() string {
	p := pops.New(4, 2)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — POPS(4,2): %d processors, %d couplers of degree %d\n",
		p.N(), p.Couplers(), p.T())
	for i := 0; i < p.G(); i++ {
		for j := 0; j < p.G(); j++ {
			c := p.CouplerIndex(i, j)
			arc := p.StackGraph().Hyperarc(c)
			fmt.Fprintf(&b, "  coupler (%d,%d): inputs group %d %v, outputs group %d %v\n",
				i, j, i, arc.Tail, j, arc.Head)
		}
	}
	return b.String()
}

// fig5 renders the stack-graph model ς(4, K+2) of POPS(4,2).
func fig5() string {
	p := pops.New(4, 2)
	sg := p.StackGraph()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — POPS(4,2) modeled as ς(%d, K+%d)\n",
		sg.StackingFactor(), sg.Groups())
	fmt.Fprintf(&b, "base digraph: K+%d with %d arcs (including %d loops)\n",
		sg.Groups(), sg.Base().M(), sg.Base().LoopCount())
	for i := 0; i < sg.M(); i++ {
		u, v := sg.BaseArcOf(i)
		a := sg.Hyperarc(i)
		fmt.Fprintf(&b, "  base arc (%d,%d) -> hyperarc %v => %v\n", u, v, a.Tail, a.Head)
	}
	fmt.Fprintf(&b, "hop diameter: %d (single-hop)\n", sg.Diameter())
	return b.String()
}

// fig6 renders the line digraph iterations KG(2,1), KG(2,2), KG(2,3).
func fig6() string {
	var b strings.Builder
	b.WriteString("Figure 6 — line digraph iterations of the Kautz graph\n")
	for k := 1; k <= 3; k++ {
		kg := kautz.New(2, k)
		l := digraph.LineDigraphPower(digraph.Complete(3), k-1)
		iso := digraph.Isomorphic(kg.Digraph(), l)
		fmt.Fprintf(&b, "KG(2,%d) = L^%d(K3): %d vertices, %d arcs, diameter %d, isomorphic=%v\n",
			k, k-1, kg.N(), kg.Digraph().M(), kg.Digraph().Diameter(), iso)
		for u := 0; u < kg.N(); u++ {
			w := kg.LabelOf(u)
			var nbrs []string
			for _, v := range kg.Digraph().Out(u) {
				nbrs = append(nbrs, kg.LabelOf(v).String())
			}
			sort.Strings(nbrs)
			fmt.Fprintf(&b, "  %s -> %s\n", w, strings.Join(nbrs, " "))
		}
	}
	return b.String()
}

// fig7 renders the stack-Kautz network SK(6,3,2).
func fig7() string {
	n := stackkautz.New(6, 3, 2)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — stack-Kautz SK(6,3,2): %d processors, %d groups of %d, degree %d, diameter %d, %d couplers\n",
		n.N(), n.Groups(), n.S(), n.Degree(), n.Diameter(), n.Couplers())
	kg := n.Kautz()
	for x := 0; x < n.Groups(); x++ {
		w := kg.LabelOf(x)
		var nbrs []string
		for _, v := range kg.Digraph().Out(x) {
			nbrs = append(nbrs, kg.LabelOf(v).String())
		}
		sort.Strings(nbrs)
		lo := n.NodeID(stackkautz.Address{Group: w, Member: 0})
		hi := n.NodeID(stackkautz.Address{Group: w, Member: n.S() - 1})
		fmt.Fprintf(&b, "  group %s (processors %d..%d) -> %s + loop\n",
			w, lo, hi, strings.Join(nbrs, " "))
	}
	return b.String()
}

// fig8 renders the group-input building block: 6 processors -> 4 muxes.
func fig8() string {
	return "Figure 8 — group of 6 processors to 4 optical multiplexers via OTIS(6,4)\n" +
		renderGroupInput(6, 4)
}

func renderGroupInput(t, g int) string {
	nlist := optical.NewNetlist()
	txs, muxes := core.BuildGroupInput(nlist, t, g, "group")
	var b strings.Builder
	o := otis.New(t, g)
	for y, tx := range txs {
		for beam := 0; beam < g; beam++ {
			oi, oj := o.Transpose(y, beam)
			fmt.Fprintf(&b, "  proc %d beam %d -> mux %d port %d\n", y, beam, oi, oj)
		}
		_ = tx
	}
	fmt.Fprintf(&b, "components: %d tx-arrays, 1 OTIS(%d,%d), %d multiplexers\n",
		len(txs), t, g, len(muxes))
	return b.String()
}

// fig9 renders the group-output building block: 3 splitters -> 5 processors.
func fig9() string {
	nlist := optical.NewNetlist()
	splits, rxs := core.BuildGroupOutput(nlist, 3, 5, "group")
	var b strings.Builder
	b.WriteString("Figure 9 — 3 beam-splitters to a group of 5 processors via OTIS(3,5)\n")
	o := otis.New(3, 5)
	for a := range splits {
		for j := 0; j < 5; j++ {
			oi, oj := o.Transpose(a, j)
			fmt.Fprintf(&b, "  splitter %d output %d -> proc %d port %d\n", a, j, oi, oj)
		}
	}
	fmt.Fprintf(&b, "components: %d splitters, 1 OTIS(3,5), %d rx-arrays\n", len(splits), len(rxs))
	return b.String()
}

// fig10 renders II(3,12) realized with OTIS(3,12), with KG(3,2) labels.
func fig10() string {
	r := otis.NewImaseRealization(3, 12)
	ii := imase.New(3, 12)
	kg := kautz.New(3, 2)
	num := digraph.FindIsomorphism(ii.Digraph(), kg.Digraph())
	var b strings.Builder
	b.WriteString("Figure 10 — II(3,12) with OTIS(3,12)\n")
	if err := r.Verify(); err != nil {
		fmt.Fprintf(&b, "Proposition 1 verification FAILED: %v\n", err)
	} else {
		b.WriteString("Proposition 1 verified: OTIS neighborhoods == II(3,12) neighborhoods\n")
	}
	for u := 0; u < 12; u++ {
		nbrs := r.NeighborsVia(u)
		word := "?"
		if num != nil {
			word = kg.LabelOf(num[u]).String()
		}
		fmt.Fprintf(&b, "  node %2d (KG(3,2) label %s): inputs %v -> nodes %v\n",
			u, word, r.InputsOfNode(u), nbrs)
	}
	return b.String()
}

// fig11 renders the full optical design of POPS(4,2).
func fig11() string {
	d := core.DesignPOPS(4, 2)
	var b strings.Builder
	b.WriteString("Figure 11 — optical interconnections of POPS(4,2) using OTIS\n")
	if err := d.Verify(); err != nil {
		fmt.Fprintf(&b, "design verification FAILED: %v\n", err)
	} else {
		b.WriteString("design verified end to end: every beam reaches exactly its coupler's group\n")
	}
	b.WriteString(d.BOMSummary())
	return b.String()
}

// fig12 renders the full optical design of SK(6,3,2).
func fig12() string {
	d := core.DesignStackKautz(6, 3, 2)
	var b strings.Builder
	b.WriteString("Figure 12 — optical interconnections of SK(6,3,2) using OTIS\n")
	if err := d.Verify(); err != nil {
		fmt.Fprintf(&b, "design verification FAILED: %v\n", err)
	} else {
		b.WriteString("design verified end to end (12x OTIS(6,4), 12x OTIS(4,6), 48 mux, 48 splitters, OTIS(3,12), loops by fiber)\n")
	}
	b.WriteString(d.BOMSummary())
	for x := 0; x < 3; x++ { // sample of the beam map
		for bm := 0; bm < d.NodeDegree(); bm++ {
			fmt.Fprintf(&b, "  group %2d beam %d -> group %2d\n", x, bm, d.DestGroup(x, bm))
		}
	}
	return b.String()
}
