// Command designer produces and validates complete optical designs for the
// multi-OPS networks of the paper, printing the bill of materials and the
// outcome of end-to-end verification.
//
//	go run ./cmd/designer -net pops -t 4 -g 2
//	go run ./cmd/designer -net sk -s 6 -d 3 -k 2
//	go run ./cmd/designer -net stackii -s 4 -d 3 -n 20
//	go run ./cmd/designer -net sk -s 6 -d 3 -k 2 -budget -launch 0 -sens -30
package main

import (
	"flag"
	"fmt"
	"os"

	"otisnet/internal/core"
	"otisnet/internal/ops"
)

func main() {
	var (
		net    = flag.String("net", "sk", `network kind: "pops", "sk" or "stackii"`)
		t      = flag.Int("t", 4, "POPS group size t")
		g      = flag.Int("g", 2, "POPS group count g")
		s      = flag.Int("s", 6, "stack network group size s")
		d      = flag.Int("d", 3, "Kautz / Imase-Itoh degree d")
		k      = flag.Int("k", 2, "Kautz diameter k")
		n      = flag.Int("n", 12, "stack-Imase-Itoh group count n")
		budget = flag.Bool("budget", false, "also print the optical power budget of a worst-case path")
		launch = flag.Float64("launch", 0, "transmitter launch power, dBm")
		excess = flag.Float64("excess", 3, "total excess loss per path, dB (lens planes, connectors)")
		sens   = flag.Float64("sens", -30, "receiver sensitivity, dBm")
	)
	flag.Parse()

	var design *core.Design
	switch *net {
	case "pops":
		design = core.DesignPOPS(*t, *g)
	case "sk":
		design = core.DesignStackKautz(*s, *d, *k)
	case "stackii":
		design = core.DesignStackImase(*s, *d, *n)
	default:
		fmt.Fprintf(os.Stderr, "designer: unknown network kind %q\n", *net)
		os.Exit(2)
	}

	fmt.Printf("%s: %d processors in %d groups of %d, node degree %d\n",
		design.Name, design.N(), design.Groups, design.S, design.NodeDegree())
	if err := design.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("end-to-end verification: OK (every beam reaches exactly its target group)")
	fmt.Print(design.BOMSummary())

	if *budget {
		// Worst-case path: one coupler of degree S plus the excess losses.
		pb := ops.NewPowerBudget(*launch).
			AddExcessLoss(*excess).
			AddCoupler(ops.NewDegree(design.S))
		fmt.Printf("power budget: launch %.1f dBm, loss %.2f dB, received %.2f dBm, sensitivity %.1f dBm -> feasible=%v\n",
			*launch, pb.TotalLossDB(), pb.ReceivedDBm(), *sens, pb.Feasible(*sens))
		fmt.Printf("max coupler degree for this budget: %d\n",
			ops.MaxDegreeForBudget(*launch, *excess, *sens))
	}
}
