// Command experiments runs the full reproduction campaign: every numeric
// claim and construction of the paper (experiments T1-T8 of DESIGN.md) is
// recomputed and printed as a markdown table, ready to paste into
// EXPERIMENTS.md. Figures F1-F12 are covered by cmd/figures and the test
// suite; this command covers the quantitative side.
//
//	go run ./cmd/experiments          # all experiments
//	go run ./cmd/experiments -only T6 # one experiment
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"otisnet/internal/analysis"
	"otisnet/internal/collective"
	"otisnet/internal/control"
	"otisnet/internal/core"
	"otisnet/internal/digraph"
	"otisnet/internal/faults"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/otis"
	"otisnet/internal/otisnets"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/sweep"
	"otisnet/internal/workload"
)

func main() {
	only := flag.String("only", "", "run a single experiment (T1..T12, T6D, T9D)")
	flag.Parse()
	experiments := []struct {
		id  string
		fn  func() string
		hdr string
	}{
		{"T1", t1, "Kautz graph parameters (§2.5)"},
		{"T2", t2, "Imase-Itoh diameter and Kautz equivalence (§2.6)"},
		{"T3", t3, "POPS parameters (§2.4)"},
		{"T4", t4, "stack-Kautz parameters (§2.7, §4.2)"},
		{"T5", t5, "design bills of materials (§4)"},
		{"T6", t6, "fault-tolerant routing: ≤ k+2 hops under ≤ d-1 faults (§2.5)"},
		{"T6D", t6d, "dynamic §2.5: live fault injection in the simulator vs RouteAvoiding"},
		{"T7", t7, "traffic simulation: SK vs POPS vs de Bruijn"},
		{"T8", t8, "OTIS viewed as an Imase-Itoh graph (conclusion)"},
		{"T9", t9, "collective communication: schedule lengths vs lower bounds"},
		{"T9D", t9d, "dynamic T9: collective schedules replayed through the live engine"},
		{"T10", t10, "distributed control: TDMA frame lengths"},
		{"T11", t11, "WDM extension: wavelengths vs saturated throughput"},
		{"T12", t12, "cost model and OTIS-based networks of [24]"},
	}
	ran := false
	for _, e := range experiments {
		if *only != "" && e.id != *only {
			continue
		}
		ran = true
		fmt.Printf("## %s — %s\n\n%s\n", e.id, e.hdr, e.fn())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", *only)
		os.Exit(2)
	}
}

func t1() string {
	var b strings.Builder
	b.WriteString("| d | k | N = d^{k-1}(d+1) | degree | diameter | Eulerian | Hamiltonian |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, p := range []struct{ d, k int }{{2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}, {4, 3}, {5, 2}} {
		kg := kautz.New(p.d, p.k)
		g := kg.Digraph()
		ham := "-"
		if kg.N() <= 40 {
			ham = fmt.Sprint(g.HamiltonianCycle() != nil)
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %v | %s |\n",
			p.d, p.k, kg.N(), g.MaxOutDegree(), g.Diameter(), g.IsEulerian(), ham)
	}
	fmt.Fprintf(&b, "\nPaper erratum: §2.5 says \"KG(5,4) has N = 3750 nodes\"; the formula gives %d (3750 is KG(5,5) = %d).\n",
		kautz.N(5, 4), kautz.N(5, 5))
	return b.String()
}

func t2() string {
	var b strings.Builder
	b.WriteString("| d | n | BFS diameter | ⌈log_d n⌉ | bound holds | Kautz order? |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, p := range []struct{ d, n int }{{2, 6}, {2, 8}, {2, 12}, {3, 12}, {3, 20}, {3, 36}, {4, 17}, {4, 20}, {5, 30}} {
		ii := imase.New(p.d, p.n)
		diam := ii.Digraph().Diameter()
		bound := imase.DiameterBound(p.d, p.n)
		kStr := "no"
		if k, ok := imase.KautzOrder(p.d, p.n); ok {
			iso := "iso NOT verified"
			if _, isK := ii.IsKautz(); isK {
				iso = "≅ verified"
			}
			kStr = fmt.Sprintf("KG(%d,%d) %s", p.d, k, iso)
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %v | %s |\n",
			p.d, p.n, diam, bound, diam <= bound, kStr)
	}
	return b.String()
}

func t3() string {
	var b strings.Builder
	b.WriteString("| t | g | N = tg | couplers = g² | coupler degree | hop diameter |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, p := range []struct{ t, g int }{{4, 2}, {8, 4}, {16, 8}, {32, 8}, {9, 12}} {
		pn := pops.New(p.t, p.g)
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d |\n",
			p.t, p.g, pn.N(), pn.Couplers(), p.t, pn.StackGraph().Diameter())
	}
	return b.String()
}

func t4() string {
	var b strings.Builder
	b.WriteString("| s | d | k | N | groups | couplers | node degree | diameter |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, p := range []struct{ s, d, k int }{{6, 3, 2}, {2, 2, 2}, {4, 2, 3}, {8, 3, 3}, {16, 4, 2}} {
		n := stackkautz.New(p.s, p.d, p.k)
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d | %d | %d |\n",
			p.s, p.d, p.k, n.N(), n.Groups(), n.Couplers(), n.Degree(), n.Diameter())
	}
	return b.String()
}

func t5() string {
	var b strings.Builder
	for _, d := range []*core.Design{
		core.DesignPOPS(4, 2),
		core.DesignStackKautz(6, 3, 2),
		core.DesignStackKautz(4, 2, 3),
		core.DesignStackImase(4, 3, 20),
	} {
		status := "verified"
		if err := d.Verify(); err != nil {
			status = "FAILED: " + err.Error()
		}
		fmt.Fprintf(&b, "%s [%s]\n", d.BOMSummary(), status)
	}
	return b.String()
}

func t6() string {
	var b strings.Builder
	b.WriteString("| d | k | trials | survived | max hops | k+2 | label-family hit rate |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, p := range []struct{ d, k int }{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}} {
		kg := kautz.New(p.d, p.k)
		rng := rand.New(rand.NewSource(int64(17*p.d + p.k)))
		trials, survived, maxHops, familyHits := 0, 0, 0, 0
		for i := 0; i < 500; i++ {
			u, v := rng.Intn(kg.N()), rng.Intn(kg.N())
			if u == v {
				continue
			}
			faulty := map[int]bool{}
			for len(faulty) < p.d-1 {
				f := rng.Intn(kg.N())
				if f != u && f != v {
					faulty[f] = true
				}
			}
			trials++
			path, viaFamily := kg.RouteAvoiding(kg.LabelOf(u), kg.LabelOf(v),
				func(w kautz.Label) bool { return faulty[kg.Index(w)] })
			if path == nil {
				continue
			}
			survived++
			if viaFamily {
				familyHits++
			}
			if h := len(path) - 1; h > maxHops {
				maxHops = h
			}
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d | %.1f%% |\n",
			p.d, p.k, trials, survived, maxHops, p.k+2,
			100*float64(familyHits)/float64(trials))
	}
	return b.String()
}

// t6d validates the §2.5 claim dynamically: whole groups of SK(6,3,2) fail
// mid-run inside the live simulator, which reroutes on the surviving
// structure; every message injected after the failures and delivered
// between surviving groups must achieve exactly the path length
// kautz.RouteAvoiding computes for its group pair, staying ≤ k+2 for up to
// d-1 faults. The f = d row goes beyond the paper's guarantee.
func t6d() string {
	const s, d, k = 6, 3, 2
	const failSlot, slots, drain = 100, 1200, 2000
	nw := stackkautz.New(s, d, k)
	kg := nw.Kautz()
	base := sim.NewStackTopology(nw.StackGraph())

	var b strings.Builder
	fmt.Fprintf(&b, "SK(%d,%d,%d), uniform rate 0.10, whole-group failures at slot %d; ", s, d, k, failSlot)
	b.WriteString("post-fault deliveries between surviving groups are cross-checked against kautz.RouteAvoiding:\n\n")
	b.WriteString("| group faults | delivered | checked | max hops | k+2 | = RouteAvoiding | throughput/slot | lost+unroutable |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	// One fault wrapper and one compiled engine serve every fault row:
	// SetPlan swaps the failure schedule and Reset rewinds the engine, so
	// each row runs exactly as a freshly built engine would without
	// recompiling the topology snapshot.
	ft := faults.Wrap(base, faults.FixedNodes(failSlot))
	e := sim.NewEngine(ft, sim.Config{Seed: 11})
	for f := 0; f <= d; f++ {
		groupRng := rand.New(rand.NewSource(7))
		faulty := map[int]bool{}
		var nodes []int
		for len(faulty) < f {
			g := groupRng.Intn(kg.N())
			if faulty[g] {
				continue
			}
			faulty[g] = true
			for m := 0; m < s; m++ {
				nodes = append(nodes, g*s+m)
			}
		}
		ft.SetPlan(faults.FixedNodes(failSlot, nodes...))
		e.Reset(sim.Config{Seed: 11})
		isFaulty := func(w kautz.Label) bool { return faulty[kg.Index(w)] }
		checked, matches, maxHops := 0, 0, 0
		e.OnDeliver = func(msg sim.Message, _ int) {
			sg, dg := msg.Src/s, msg.Dst/s
			if msg.Born < failSlot || faulty[sg] || faulty[dg] {
				return
			}
			if msg.Hops > maxHops {
				maxHops = msg.Hops
			}
			want := 1 // intra-group loop coupler
			if sg != dg {
				path, _ := kg.RouteAvoiding(kg.LabelOf(sg), kg.LabelOf(dg), isFaulty)
				if path == nil {
					return // group pair cut off (possible beyond d-1 faults)
				}
				want = len(path) - 1
			}
			checked++
			if msg.Hops == want {
				matches++
			}
		}
		rng := rand.New(rand.NewSource(13))
		var buf []sim.Injection
		for slot := 0; slot < slots; slot++ {
			buf = (sim.UniformTraffic{Rate: 0.1}).Generate(buf[:0], slot, base.Nodes(), rng)
			for _, inj := range buf {
				e.Inject(inj.Src, inj.Dst)
			}
			e.Step()
		}
		for slot := 0; slot < drain && e.Backlog() > 0; slot++ {
			e.Step()
		}
		m := e.Metrics()
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d/%d | %.3f | %d |\n",
			f, m.Delivered, checked, maxHops, k+2, matches, checked,
			m.Throughput(), m.LostToFaults+m.Unroutable)
	}
	return b.String()
}

func t7() string {
	var b strings.Builder
	b.WriteString("comparable scale: SK(6,3,2) N=72 | POPS(9,8) N=72 | deBruijn(3,4) N=81 (point-to-point)\n\n")
	b.WriteString("| network | traffic | rate | throughput/slot | avg latency | avg hops | per-node thr |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	cands := sweep.ComparableScaleTrio()
	// Assemble the whole campaign as one scenario list (rows in table
	// order, each with its display label) and fan it across the sweep
	// worker pool; every point matches a sequential sim.Run bit for bit.
	var points []sweep.Scenario
	var labels []string
	for _, rate := range []float64{0.05, 0.2, 0.5} {
		for _, c := range cands {
			points = append(points, sweep.Scenario{
				Topology: c, TrafficName: "uniform", Rate: rate, Seed: 42,
				Slots: 2000, Drain: 4000,
			})
			labels = append(labels, c.Name)
		}
	}
	for _, c := range cands {
		points = append(points, sweep.Scenario{
			Topology: c, TrafficName: "hotspot", Rate: 0.2, Seed: 42,
			Traffic: sim.HotspotTraffic{Rate: 0.2, Hot: 0, Fraction: 0.3},
			Slots:   2000, Drain: 6000,
		})
		labels = append(labels, c.Name)
	}
	// Deflection ablation on SK: rows carry the routing mode.
	for _, mode := range []sweep.Mode{sweep.StoreAndForward, sweep.Deflection} {
		points = append(points, sweep.Scenario{
			Topology: cands[0], TrafficName: "uniform", Rate: 0.5, Seed: 42,
			Mode: mode, Slots: 2000, Drain: 4000,
		})
		labels = append(labels, fmt.Sprintf("%s %s", cands[0].Name, mode))
	}
	results := sweep.Runner{}.Run(points)
	for i, r := range results {
		s, m := r.Scenario, r.Metrics
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.3f | %.2f | %.2f | %.4f |\n",
			labels[i], s.TrafficName, s.Rate, m.Throughput(), m.AvgLatency(), m.AvgHops(),
			m.Throughput()/float64(s.Topology.Topo.Nodes()))
	}
	return b.String()
}

func t8() string {
	var b strings.Builder
	b.WriteString("| OTIS(G,T) | viewed as | Prop. 1 verifies | II ≅ known graph |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, p := range []struct{ g, t int }{{3, 6}, {3, 12}, {2, 6}, {4, 4}, {2, 12}} {
		o := otis.New(p.g, p.t)
		d, n := o.AsImaseItoh()
		verr := otis.NewImaseRealization(d, n).Verify()
		known := "-"
		if k, ok := imase.KautzOrder(d, n); ok {
			if digraph.Isomorphic(imase.New(d, n).Digraph(), kautz.New(d, k).Digraph()) {
				known = fmt.Sprintf("KG(%d,%d)", d, k)
			}
		} else if d == n {
			known = fmt.Sprintf("K+%d", d)
		}
		fmt.Fprintf(&b, "| %v | II(%d,%d) | %v | %s |\n", o, d, n, verr == nil, known)
	}
	return b.String()
}

func t9() string {
	var b strings.Builder
	b.WriteString("| network | collective | slots | lower bound | transmissions |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, pr := range []struct{ t, g int }{{4, 2}, {4, 4}, {8, 8}, {2, 6}} {
		p := pops.New(pr.t, pr.g)
		src := p.NodeID(0, 0)
		bc := collective.POPSBroadcast(p, src)
		if bc.Validate(p.StackGraph()) != nil || !bc.Execute(p.StackGraph()).BroadcastComplete(src) {
			return "BROADCAST SCHEDULE INVALID\n"
		}
		fmt.Fprintf(&b, "| POPS(%d,%d) | broadcast | %d | %d | %d |\n",
			pr.t, pr.g, bc.Slots(), collective.BroadcastLowerBound(p.StackGraph(), src), bc.Transmissions())
		gs := collective.POPSGossip(p)
		if gs.Validate(p.StackGraph()) != nil || !gs.Execute(p.StackGraph()).GossipComplete() {
			return "GOSSIP SCHEDULE INVALID\n"
		}
		fmt.Fprintf(&b, "| POPS(%d,%d) | gossip | %d | %d | %d |\n",
			pr.t, pr.g, gs.Slots(), collective.GossipLowerBound(p.StackGraph()), gs.Transmissions())
	}
	for _, pr := range []struct{ s, d, k int }{{6, 3, 2}, {2, 2, 3}, {8, 3, 3}} {
		n := stackkautz.New(pr.s, pr.d, pr.k)
		src := stackkautz.Address{Group: n.Kautz().LabelOf(0), Member: 0}
		bc := collective.SKBroadcast(n, src)
		if bc.Validate(n.StackGraph()) != nil || !bc.Execute(n.StackGraph()).BroadcastComplete(n.NodeID(src)) {
			return "SK BROADCAST SCHEDULE INVALID\n"
		}
		fmt.Fprintf(&b, "| SK(%d,%d,%d) | broadcast | %d | %d | %d |\n",
			pr.s, pr.d, pr.k, bc.Slots(),
			collective.BroadcastLowerBound(n.StackGraph(), n.NodeID(src)), bc.Transmissions())
	}
	return b.String()
}

// t9d is the dynamic counterpart of T9: instead of checking collective
// schedules statically (Schedule.Execute), it expands each round into
// unicast messages and replays them through the live engine, where they
// face real coupler arbitration. Every round must deliver exactly its
// intended receptions, the round count must meet the information-theoretic
// lower bound, and the dissemination must complete from the deliveries the
// engine actually made.
func t9d() string {
	var b strings.Builder
	b.WriteString("collective schedules replayed through the live engine (unicast expansion, per-round drain):\n\n")
	b.WriteString("| network | collective | rounds | lower bound | engine slots | delivered | per-round complete | dissemination |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	row := func(name, kind string, res *workload.ReplayResult, err error) string {
		if err != nil {
			return fmt.Sprintf("| %s | %s | REPLAY FAILED: %v | | | | | |\n", name, kind, err)
		}
		complete := "yes"
		if !res.Complete {
			complete = "NO"
		}
		return fmt.Sprintf("| %s | %s | %d | %d | %d | %d/%d | yes | %s |\n",
			name, kind, len(res.Rounds), res.LowerBound, res.Slots,
			res.Delivered, res.Injected, complete)
	}
	// SK(6,3,2) broadcast — the acceptance scenario: every round's delivery
	// count meets the schedule's intent on the live engine.
	nw := stackkautz.New(6, 3, 2)
	src := stackkautz.Address{Group: nw.Kautz().LabelOf(0), Member: 0}
	bres, err := workload.ReplayBroadcast(nw.StackGraph(), collective.SKBroadcast(nw, src), nw.NodeID(src), sim.Config{Seed: 9})
	b.WriteString(row("SK(6,3,2)", "broadcast", bres, err))
	for _, pr := range []struct{ t, g int }{{4, 4}, {8, 8}} {
		p := pops.New(pr.t, pr.g)
		s0 := p.NodeID(0, 0)
		name := fmt.Sprintf("POPS(%d,%d)", pr.t, pr.g)
		res, err := workload.ReplayBroadcast(p.StackGraph(), collective.POPSBroadcast(p, s0), s0, sim.Config{Seed: 9})
		b.WriteString(row(name, "broadcast", res, err))
		gres, err := workload.ReplayGossip(p.StackGraph(), collective.POPSGossip(p), sim.Config{Seed: 9})
		b.WriteString(row(name, "gossip", gres, err))
	}
	if err == nil && bres != nil {
		b.WriteString("\nSK(6,3,2) broadcast, round by round:\n\n")
		b.WriteString("| round | transmissions | expected receptions | delivered | engine slots |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, r := range bres.Rounds {
			fmt.Fprintf(&b, "| %d | %d | %d | %d | %d |\n",
				r.Round, r.Transmissions, r.Expected, r.Delivered, r.Slots)
		}
	}
	return b.String()
}

func t10() string {
	var b strings.Builder
	b.WriteString("| network | s | couplers/group | frame slots | closed form s·⌈D/s⌉ | fair |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	type row struct {
		name string
		sg   interface {
			StackingFactor() int
		}
	}
	for _, pr := range []struct{ t, g int }{{4, 3}, {8, 8}, {2, 5}} {
		p := pops.New(pr.t, pr.g)
		frame := control.TDMAFrame(p.StackGraph())
		ok := frame.Validate(p.StackGraph()) == nil
		fmt.Fprintf(&b, "| POPS(%d,%d) | %d | %d | %d | %d | %v |\n",
			pr.t, pr.g, pr.t, pr.g, frame.Slots(), control.FrameLength(pr.t, pr.g), ok)
	}
	for _, pr := range []struct{ s, d, k int }{{6, 3, 2}, {2, 3, 2}, {4, 2, 3}} {
		n := stackkautz.New(pr.s, pr.d, pr.k)
		frame := control.TDMAFrame(n.StackGraph())
		ok := frame.Validate(n.StackGraph()) == nil
		fmt.Fprintf(&b, "| SK(%d,%d,%d) | %d | %d | %d | %d | %v |\n",
			pr.s, pr.d, pr.k, pr.s, pr.d+1, frame.Slots(), control.FrameLength(pr.s, pr.d+1), ok)
	}
	return b.String()
}

func t11() string {
	var b strings.Builder
	b.WriteString("SK(6,3,2), uniform rate 0.9, 1000 slots, no drain (saturation):\n\n")
	b.WriteString("| wavelengths | delivered | throughput/slot | avg latency | peak queue |\n")
	b.WriteString("|---|---|---|---|---|\n")
	grid := sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())},
		},
		Rates:       []float64{0.9},
		Seeds:       []int64{5},
		Wavelengths: []int{1, 2, 4, 8},
		Slots:       1000,
	}
	for _, r := range (sweep.Runner{}).RunGrid(grid) {
		m := r.Metrics
		fmt.Fprintf(&b, "| %d | %d | %.3f | %.2f | %d |\n",
			r.Scenario.Wavelengths, m.Delivered, m.Throughput(), m.AvgLatency(), m.PeakQueue)
	}
	return b.String()
}

func t12() string {
	var b strings.Builder
	b.WriteString("cost model (launch 0 dBm, excess 3 dB, sensitivity -26 dBm):\n\n")
	rows := []analysis.Cost{
		analysis.POPSCost(4, 2),
		analysis.POPSCost(16, 8),
		analysis.StackKautzCost(6, 3, 2),
		analysis.StackKautzCost(16, 4, 2),
		analysis.StackImaseCost(8, 3, 20),
		analysis.DeBruijnCost(3, 4),
		analysis.SingleOPSCost(128),
	}
	b.WriteString(analysis.FormatTable(rows))
	b.WriteString("\nOTIS-based electronic networks of [24] (conclusion's corollary):\n\n")
	b.WriteString("| network | N | diameter | 2·df+1 bound |\n")
	b.WriteString("|---|---|---|---|\n")
	for h := 1; h <= 3; h++ {
		n := otisnets.New(otisnets.NewHypercubeFactor(h))
		fmt.Fprintf(&b, "| OTIS-Q%d | %d | %d | %d |\n",
			h, n.N(), n.Digraph().Diameter(), otisnets.DiameterUpperBound(h))
	}
	m := otisnets.New(otisnets.NewMeshFactor(3, 3))
	fmt.Fprintf(&b, "| OTIS-Mesh(3x3) | %d | %d | %d |\n",
		m.N(), m.Digraph().Diameter(), otisnets.DiameterUpperBound(m.Factor().Diameter()))
	return b.String()
}
