// Command benchdiff prints the benchmark trajectory across the repo's
// BENCH_<n>.json snapshots (one per PR, written by scripts/bench.sh) and
// guards the headline speedups: it exits non-zero when the compiled-engine
// speedup over the legacy baseline (speedup_vs_legacy of
// BenchmarkT7SimThroughput) or the warm-cache speedup regresses by more
// than the threshold between the last two snapshots. Raw ns/op columns
// are informational only — snapshots come from different machines and
// different benchtimes, so only same-file ratios are comparable.
//
//	go run ./cmd/benchdiff                 # all BENCH_*.json in the cwd
//	go run ./cmd/benchdiff BENCH_6.json BENCH_7.json
//	go run ./cmd/benchdiff -threshold 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// snapshot mirrors one BENCH_<n>.json file. Parsing is deliberately
// lenient — older snapshots predate the batched and warm-cache fields —
// so every field beyond pr/benchmarks is optional.
type snapshot struct {
	File       string `json:"-"`
	PR         int    `json:"pr"`
	Benchtime  string `json:"benchtime"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
	SpeedupVsLegacy  map[string]float64 `json:"speedup_vs_legacy"`
	WarmCacheSpeedup *float64           `json:"warm_cache_speedup"`
	BatchedSpeedup   *float64           `json:"batched_speedup"`
	// ParallelStepSpeedup is serial Step over the sharded slot loop at
	// N=12288 (PR 8); machine-dependent — below 1.0 on few-core runners.
	ParallelStepSpeedup *float64 `json:"parallel_step_speedup"`
}

// ns returns the named benchmark's ns/op, or 0 when the snapshot lacks it.
func (s *snapshot) ns(name string) float64 {
	for _, b := range s.Benchmarks {
		if b.Name == name {
			return b.NsPerOp
		}
	}
	return 0
}

// t7Speedup returns the headline engine-vs-legacy speedup, or 0.
func (s *snapshot) t7Speedup() float64 {
	return s.SpeedupVsLegacy["BenchmarkT7SimThroughput"]
}

// warm returns the warm-cache speedup, or 0 when absent.
func (s *snapshot) warm() float64 {
	if s.WarmCacheSpeedup == nil {
		return 0
	}
	return *s.WarmCacheSpeedup
}

// parstep returns the parallel-step speedup, or 0 when absent.
func (s *snapshot) parstep() float64 {
	if s.ParallelStepSpeedup == nil {
		return 0
	}
	return *s.ParallelStepSpeedup
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "fail when a guarded speedup drops by more than this fraction between the last two snapshots")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no BENCH_*.json snapshots found (run scripts/bench.sh)")
			os.Exit(2)
		}
	}

	snaps := make([]*snapshot, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		s := &snapshot{File: f}
		if err := json.Unmarshal(data, s); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", f, err)
			os.Exit(2)
		}
		snaps = append(snaps, s)
	}
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].PR < snaps[b].PR })

	fmt.Printf("%-4s %-14s %-10s %12s %12s %9s %9s %8s %8s\n",
		"pr", "file", "benchtime", "t7 ns/op", "grid ns/op", "t7 xlegacy", "warmcache", "batched", "parstep")
	for _, s := range snaps {
		fmt.Printf("%-4d %-14s %-10s %12s %12s %9s %9s %8s %8s\n",
			s.PR, s.File, s.Benchtime,
			fmtNs(s.ns("BenchmarkT7SimThroughput")), fmtNs(s.ns("BenchmarkSweepGrid")),
			fmtX(s.t7Speedup()), fmtX(s.warm()), fmtXPtr(s.BatchedSpeedup), fmtXPtr(s.ParallelStepSpeedup))
	}

	if len(snaps) < 2 {
		fmt.Println("\none snapshot: nothing to diff")
		return
	}
	prev, last := snaps[len(snaps)-2], snaps[len(snaps)-1]
	fmt.Printf("\nguard: %s -> %s (threshold %.0f%%)\n", prev.File, last.File, *threshold*100)
	failed := false
	failed = guard("t7_speedup", prev.t7Speedup(), last.t7Speedup(), *threshold) || failed
	failed = guard("warm_cache_speedup", prev.warm(), last.warm(), *threshold) || failed
	failed = guard("parallel_step_speedup", prev.parstep(), last.parstep(), *threshold) || failed
	if failed {
		os.Exit(1)
	}
}

// guard prints and judges one speedup transition: a metric missing from
// either snapshot is skipped (older files predate some fields), anything
// else must not drop below (1 - threshold) of the previous value.
func guard(name string, prev, last, threshold float64) bool {
	if prev == 0 || last == 0 {
		fmt.Printf("  %-20s skipped (missing from a snapshot)\n", name)
		return false
	}
	change := last/prev - 1
	verdict := "ok"
	failed := false
	if change < -threshold {
		verdict = "REGRESSION"
		failed = true
	}
	fmt.Printf("  %-20s %.2fx -> %.2fx (%+.1f%%) %s\n", name, prev, last, change*100, verdict)
	return failed
}

func fmtNs(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtX(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", v)
}

func fmtXPtr(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmtX(*v)
}
