package main

// netsim synthtrace: deterministic "datacenter day" trace synthesis
// (workload.SynthesizeTrace), producing files that `-workload trace
// -tracefile` and the sweep service replay. Examples:
//
//	go run ./cmd/netsim synthtrace -form rates -slots 4000 -out day_rates.csv
//	go run ./cmd/netsim synthtrace -form events -nodes 72 -ndjson -out day_events.ndjson

import (
	"flag"
	"fmt"
	"os"

	"otisnet/internal/workload"
)

func runSynthTrace(args []string) {
	fs := flag.NewFlagSet("netsim synthtrace", flag.ExitOnError)
	out := fs.String("out", "", "output trace file (empty = stdout)")
	form := fs.String("form", "rates", `record form: "rates" (slot,rate) or "events" (slot,src,dst)`)
	slots := fs.Int("slots", 4000, "trace length in slots (one day spans the trace)")
	nodes := fs.Int("nodes", 72, "event form: node id space (ids wrap modulo the replaying network)")
	window := fs.Int("window", 50, "rate form: slots between rate records")
	peak := fs.Float64("peak", 0.5, "midday per-node arrival rate before episode boosts, in (0,1]")
	seed := fs.Int64("seed", 1, "synthesis seed")
	ndjson := fs.Bool("ndjson", false, "emit NDJSON records instead of CSV")
	fs.Parse(args)

	spec := workload.SynthSpec{
		NDJSON: *ndjson, Slots: *slots, Nodes: *nodes,
		Window: *window, Peak: *peak, Seed: *seed,
	}
	switch *form {
	case "rates":
		spec.Form = workload.TraceRates
	case "events":
		spec.Form = workload.TraceEvents
	default:
		fmt.Fprintf(os.Stderr, "netsim: bad -form %q (want rates or events)\n", *form)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		must(err)
		w = f
	}
	must(workload.SynthesizeTrace(w, spec))
	if *out != "" {
		must(w.Close())
		info, err := workload.ScanTrace(*out)
		must(err)
		fmt.Printf("%s: %d %s records over %d slots, fingerprint %s\n",
			*out, info.Records, info.Form, info.MaxSlot+1, info.Fingerprint[:12])
	}
}
