package main

// Workload and legacy-traffic flag handling, extracted from main so every
// error path returns a testable (value, error) pair instead of exiting
// inline. Two invariants hold across both paths:
//
//   - an explicitly-set workload flag that the selected model cannot
//     honor is an error, never silently ignored (the legacy `-traffic
//     hotspot` once discarded -hotgroup/-hotfrac outright);
//   - hotspot group indices are validated by sign only: workload.Hotspot
//     documents modulo-group semantics, so any non-negative index is
//     valid on every topology of a mixed-scale sweep, and no check may
//     privilege the first topology's group count.

import (
	"fmt"
	"math/rand"
	"strings"

	"otisnet/internal/sim"
	"otisnet/internal/workload"
)

// workloadFlags carries every workload-family flag value plus the set of
// flag names the user spelled explicitly (flag.Visit), which drives the
// cannot-honor checks.
type workloadFlags struct {
	HotGroup                                    int
	HotFrac                                     float64
	BurstOn, BurstOff, BurstLow                 float64
	TraceFile                                   string
	Period                                      int
	Amplitude, EpisodeOn, EpisodeOff, RateSigma float64
	Explicit                                    map[string]bool
}

// workloadFlagHonor lists, in reporting order, each workload-family flag
// and the kinds that honor it. A flag with no kinds belongs to the legacy
// -traffic path only.
var workloadFlagHonor = []struct {
	flag  string
	kinds []workload.Kind
}{
	{"hotgroup", []workload.Kind{workload.KindHotspot}},
	{"hotfrac", []workload.Kind{workload.KindHotspot}},
	{"burston", []workload.Kind{workload.KindBursty, workload.KindMultiPeriod}},
	{"burstoff", []workload.Kind{workload.KindBursty, workload.KindMultiPeriod}},
	{"burstlow", []workload.Kind{workload.KindBursty, workload.KindMultiPeriod}},
	{"tracefile", []workload.Kind{workload.KindTrace}},
	{"period", []workload.Kind{workload.KindMultiPeriod}},
	{"amplitude", []workload.Kind{workload.KindMultiPeriod}},
	{"episodeon", []workload.Kind{workload.KindMultiPeriod}},
	{"episodeoff", []workload.Kind{workload.KindMultiPeriod}},
	{"ratesigma", []workload.Kind{workload.KindMultiPeriod}},
	{"burst", nil},
}

// spec builds and validates the workload.Spec for one kind name. Note the
// hotspot case: the group index is range-checked by Spec.Validate (>= 0
// only — it wraps modulo each topology's group count), never against any
// particular topology.
func (wf workloadFlags) spec(kind string) (workload.Spec, error) {
	k, err := workload.ParseKind(kind)
	if err != nil {
		return workload.Spec{}, err
	}
	var s workload.Spec
	switch k {
	case workload.KindHotspot:
		s = workload.Spec{Kind: k, HotGroup: wf.HotGroup, Fraction: wf.HotFrac}
	case workload.KindBursty:
		s = workload.Spec{Kind: k, MeanOn: wf.BurstOn, MeanOff: wf.BurstOff, OffFactor: wf.BurstLow}
	case workload.KindTrace:
		if wf.TraceFile == "" {
			return workload.Spec{}, fmt.Errorf("the trace workload needs -tracefile")
		}
		return workload.NewTraceSpec(wf.TraceFile)
	case workload.KindMultiPeriod:
		// The flicker and floor reuse the bursty flags (-burston/-burstoff/
		// -burstlow): multiperiod is bursts-of-bursts, with the episode
		// layer on top.
		s = workload.Spec{
			Kind: k, Period: wf.Period, Amplitude: wf.Amplitude,
			EpisodeOn: wf.EpisodeOn, EpisodeOff: wf.EpisodeOff,
			MeanOn: wf.BurstOn, MeanOff: wf.BurstOff,
			RateSigma: wf.RateSigma, OffFactor: wf.BurstLow,
		}
	default:
		s = workload.Spec{Kind: k}
	}
	return s, s.Validate()
}

// specs parses the -workload comma list and then rejects any explicitly
// set workload flag that no selected kind honors.
func (wf workloadFlags) specs(list string) ([]workload.Spec, error) {
	var out []workload.Spec
	kinds := map[workload.Kind]bool{}
	for _, w := range strings.Split(list, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		s, err := wf.spec(w)
		if err != nil {
			return nil, err
		}
		kinds[s.Kind] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workload names no workloads")
	}
	for _, fk := range workloadFlagHonor {
		if !wf.Explicit[fk.flag] {
			continue
		}
		honored := false
		names := make([]string, len(fk.kinds))
		for i, k := range fk.kinds {
			honored = honored || kinds[k]
			names[i] = k.String()
		}
		if !honored {
			if fk.kinds == nil {
				return nil, fmt.Errorf("-%s applies to -traffic burst only, not to -workload models", fk.flag)
			}
			return nil, fmt.Errorf("-%s applies to the %s workload; none of the selected workloads honor it",
				fk.flag, strings.Join(names, "/"))
		}
	}
	return out, nil
}

// traceRateOverride applies the trace workloads' rate-axis rules: event
// traces replay verbatim, so an explicit rate axis cannot be honored and
// mixing them with rate-driven workloads would make the rate column lie;
// and any trace workload defaults the rate axis to 1 (replay/scale as
// recorded) instead of the uniform-load default. The returned force flag
// tells the caller to pin the axis to the single rate 1.
func traceRateOverride(specs []workload.Spec, rateExplicit bool) (force bool, err error) {
	hasEvent, hasTrace, hasOther := false, false, false
	for _, s := range specs {
		switch {
		case s.Kind == workload.KindTrace && s.TraceForm == workload.TraceEvents:
			hasEvent = true
			hasTrace = true
		case s.Kind == workload.KindTrace:
			hasTrace = true
			hasOther = true // rate traces honor the axis as a scale factor
		default:
			hasOther = true
		}
	}
	if hasEvent {
		if rateExplicit {
			return false, fmt.Errorf("event-form traces replay verbatim; drop -rate/-rates (or use a rates-form trace to scale)")
		}
		if hasOther {
			return false, fmt.Errorf("event-form trace workloads cannot share a sweep with rate-driven workloads (the rate axis applies to all)")
		}
	}
	return hasTrace && !rateExplicit, nil
}

// legacyTrafficHonor maps each legacy -traffic model to the workload
// flags it honors; everything else explicitly set is rejected.
var legacyTrafficHonor = map[string]map[string]bool{
	"uniform": {},
	"perm":    {},
	"hotspot": {"hotgroup": true, "hotfrac": true},
	"burst":   {"burst": true},
}

// legacyTraffic builds the factory for the legacy -traffic models, kept
// for script compatibility (-workload is the richer replacement). For
// "hotspot", -hotgroup selects the hot *node* index (the legacy model
// predates group structure) and -hotfrac the skew — both wired through,
// where they were once silently discarded. n is the node count the
// generator must fit (the smallest topology in a sweep).
func legacyTraffic(name string, n int, seed int64, burstMsgs int, wf workloadFlags) (func(rate float64) sim.Traffic, error) {
	honors, ok := legacyTrafficHonor[name]
	if !ok {
		return nil, fmt.Errorf("unknown traffic %q (want uniform, perm, hotspot or burst)", name)
	}
	for _, fk := range workloadFlagHonor {
		if wf.Explicit[fk.flag] && !honors[fk.flag] {
			return nil, fmt.Errorf("-%s does not apply to -traffic %s", fk.flag, name)
		}
	}
	switch name {
	case "perm":
		return func(rate float64) sim.Traffic {
			return sim.NewPermutationTraffic(rate, n, rand.New(rand.NewSource(seed)))
		}, nil
	case "hotspot":
		if wf.HotGroup < 0 || wf.HotGroup >= n {
			return nil, fmt.Errorf("-hotgroup %d out of range for -traffic hotspot (the legacy model hots one node of %d; -workload hotspot hots a group)", wf.HotGroup, n)
		}
		if wf.HotFrac < 0 || wf.HotFrac > 1 {
			return nil, fmt.Errorf("-hotfrac %g outside [0,1]", wf.HotFrac)
		}
		return func(rate float64) sim.Traffic {
			return sim.HotspotTraffic{Rate: rate, Hot: wf.HotGroup, Fraction: wf.HotFrac}
		}, nil
	case "burst":
		return func(rate float64) sim.Traffic {
			return sim.BurstTraffic{Messages: burstMsgs}
		}, nil
	default: // uniform
		return func(rate float64) sim.Traffic {
			return sim.UniformTraffic{Rate: rate}
		}, nil
	}
}
