package main

// Tests for the extracted workload/traffic flag handling — every error
// path the CLI used to bury in os.Exit, plus the two regressions this
// layer exists to prevent: the legacy `-traffic hotspot` silently
// discarding -hotgroup/-hotfrac, and a first-topology hotspot range check
// contradicting workload.Hotspot's documented modulo-group wrap.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otisnet/internal/sim"
	"otisnet/internal/workload"
)

// flags builds a workloadFlags with the CLI defaults, marking the given
// names explicit (as flag.Visit would after the user spelled them).
func flags(explicit ...string) workloadFlags {
	wf := workloadFlags{
		HotGroup: 0, HotFrac: 0.3,
		BurstOn: 20, BurstOff: 60, BurstLow: 0.1,
		Period: 1000, Amplitude: 0.6, EpisodeOn: 400, EpisodeOff: 800, RateSigma: 0.35,
		Explicit: map[string]bool{},
	}
	for _, name := range explicit {
		wf.Explicit[name] = true
	}
	return wf
}

func writeEventTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ev.csv")
	if err := os.WriteFile(path, []byte("0,1,2\n2,3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWorkloadSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		wf   workloadFlags
		list string
		want string // substring of the error
	}{
		{"unknown kind", flags(), "gaussian", "gaussian"},
		{"empty list", flags(), " , ", "names no workloads"},
		{"hotfrac oob", func() workloadFlags { wf := flags(); wf.HotFrac = 1.5; return wf }(), "hotspot", "fraction"},
		{"hotgroup negative", func() workloadFlags { wf := flags(); wf.HotGroup = -2; return wf }(), "hotspot", "group"},
		{"burston oob", func() workloadFlags { wf := flags(); wf.BurstOn = 0.2; return wf }(), "bursty", "mean"},
		{"burstlow oob", func() workloadFlags { wf := flags(); wf.BurstLow = 2; return wf }(), "bursty", "factor"},
		{"trace without file", flags(), "trace", "-tracefile"},
		{"trace file unreadable", func() workloadFlags {
			wf := flags()
			wf.TraceFile = filepath.Join(t.TempDir(), "nope.csv")
			return wf
		}(), "trace", "nope.csv"},
		{"bad multiperiod", func() workloadFlags { wf := flags(); wf.Amplitude = 2; return wf }(), "multiperiod", "amplitude"},
		// Explicit flags no selected workload honors are errors, not noise.
		{"hotgroup unhonored", flags("hotgroup"), "uniform,bursty", "-hotgroup"},
		{"tracefile unhonored", flags("tracefile"), "hotspot", "-tracefile"},
		{"period unhonored", flags("period"), "bursty", "-period"},
		{"burst is legacy-only", flags("burst"), "bursty", "-traffic burst"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.wf.specs(c.list)
			if err == nil {
				t.Fatalf("specs(%q) accepted %+v", c.list, c.wf)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("specs(%q) error %q does not mention %q", c.list, err, c.want)
			}
		})
	}
}

func TestWorkloadSpecBuildsEveryKind(t *testing.T) {
	wf := flags("hotgroup", "hotfrac", "burston", "burstoff", "burstlow")
	wf.HotGroup = 7
	wf.TraceFile = writeEventTrace(t)
	specs, err := wf.specs("uniform,transpose,hotspot,bursty,trace,multiperiod")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("got %d specs", len(specs))
	}
	hot := specs[2]
	if hot.HotGroup != 7 || hot.Fraction != 0.3 {
		t.Fatalf("hotspot spec dropped flag values: %+v", hot)
	}
	// Satellite 2: a large group index is legal everywhere — it wraps
	// modulo each topology's group count, so no per-topology range check.
	big := flags("hotgroup")
	big.HotGroup = 9999
	if _, err := big.specs("hotspot"); err != nil {
		t.Fatalf("large hot group rejected despite modulo semantics: %v", err)
	}
	tr := specs[4]
	if tr.Kind != workload.KindTrace || tr.TraceFP == "" || tr.TraceForm != workload.TraceEvents {
		t.Fatalf("trace spec not scanned: %+v", tr)
	}
	mp := specs[5]
	if mp.MeanOn != 20 || mp.MeanOff != 60 || mp.OffFactor != 0.1 || mp.Period != 1000 {
		t.Fatalf("multiperiod spec did not reuse burst flags: %+v", mp)
	}
}

func TestTraceRateOverride(t *testing.T) {
	event := workload.Spec{Kind: workload.KindTrace, TraceForm: workload.TraceEvents}
	rates := workload.Spec{Kind: workload.KindTrace, TraceForm: workload.TraceRates}
	uniform := workload.Spec{}

	if force, err := traceRateOverride([]workload.Spec{event}, false); err != nil || !force {
		t.Fatalf("event trace, default rate: force=%v err=%v, want force", force, err)
	}
	if _, err := traceRateOverride([]workload.Spec{event}, true); err == nil {
		t.Fatal("event trace accepted an explicit rate axis")
	}
	if _, err := traceRateOverride([]workload.Spec{event, uniform}, false); err == nil {
		t.Fatal("event trace accepted sharing a sweep with a rate-driven workload")
	}
	if force, err := traceRateOverride([]workload.Spec{rates, uniform}, false); err != nil || !force {
		t.Fatalf("rate trace, default rate: force=%v err=%v, want force", force, err)
	}
	if force, err := traceRateOverride([]workload.Spec{rates}, true); err != nil || force {
		t.Fatalf("rate trace with explicit rates: force=%v err=%v, want honored axis", force, err)
	}
	if force, err := traceRateOverride([]workload.Spec{uniform}, false); err != nil || force {
		t.Fatalf("no trace: force=%v err=%v, want untouched axis", force, err)
	}
}

// TestLegacyHotspotFlagsWired is the satellite-1 regression: `-traffic
// hotspot` once constructed HotspotTraffic{Hot: 0, Fraction: 0.3} no
// matter what the user passed. The factory must carry both flags.
func TestLegacyHotspotFlagsWired(t *testing.T) {
	wf := flags("hotgroup", "hotfrac")
	wf.HotGroup = 5
	wf.HotFrac = 0.8
	factory, err := legacyTraffic("hotspot", 24, 1, 0, wf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := factory(0.4).(sim.HotspotTraffic)
	if !ok {
		t.Fatalf("hotspot factory built %T", factory(0.4))
	}
	want := sim.HotspotTraffic{Rate: 0.4, Hot: 5, Fraction: 0.8}
	if got != want {
		t.Fatalf("legacy hotspot dropped flags: got %+v, want %+v", got, want)
	}
}

func TestLegacyTrafficErrors(t *testing.T) {
	cases := []struct {
		name    string
		traffic string
		n       int
		wf      workloadFlags
		want    string
	}{
		{"unknown model", "zipf", 24, flags(), "zipf"},
		{"hot node past n", "hotspot", 24, func() workloadFlags { wf := flags(); wf.HotGroup = 24; return wf }(), "out of range"},
		{"hot node negative", "hotspot", 24, func() workloadFlags { wf := flags(); wf.HotGroup = -1; return wf }(), "out of range"},
		{"hotfrac oob", "hotspot", 24, func() workloadFlags { wf := flags(); wf.HotFrac = -0.1; return wf }(), "-hotfrac"},
		// An explicit workload flag the model ignores is an error (the old
		// code dropped these on the floor).
		{"hotgroup on uniform", "uniform", 24, flags("hotgroup"), "-hotgroup does not apply"},
		{"hotfrac on burst", "burst", 24, flags("hotfrac"), "-hotfrac does not apply"},
		{"burst on hotspot", "hotspot", 24, flags("burst"), "-burst does not apply"},
		{"tracefile on perm", "perm", 24, flags("tracefile"), "-tracefile does not apply"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := legacyTraffic(c.traffic, c.n, 1, 0, c.wf)
			if err == nil {
				t.Fatalf("legacyTraffic(%q) accepted %+v", c.traffic, c.wf)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
	// And the in-range cases still build.
	for _, model := range []string{"uniform", "perm", "burst"} {
		if _, err := legacyTraffic(model, 24, 1, 4, flags()); err != nil {
			t.Fatalf("legacyTraffic(%q): %v", model, err)
		}
	}
}
