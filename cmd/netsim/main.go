// Command netsim runs slotted-time traffic simulations over the paper's
// networks: stack-Kautz (multi-hop multi-OPS), POPS (single-hop multi-OPS)
// and the de Bruijn point-to-point baseline, under uniform, permutation or
// hotspot traffic, with store-and-forward or hot-potato deflection routing.
//
//	go run ./cmd/netsim -net sk -s 6 -d 3 -k 2 -rate 0.3 -slots 2000
//	go run ./cmd/netsim -net pops -t 9 -g 8 -traffic hotspot -rate 0.2
//	go run ./cmd/netsim -net debruijn -d 3 -k 4 -deflect
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"otisnet/internal/kautz"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func main() {
	var (
		net      = flag.String("net", "sk", `topology: "sk", "pops", "stackii" or "debruijn"`)
		t        = flag.Int("t", 4, "POPS group size t")
		g        = flag.Int("g", 4, "POPS group count g")
		s        = flag.Int("s", 6, "stack network group size s")
		d        = flag.Int("d", 3, "degree d")
		k        = flag.Int("k", 2, "diameter k")
		n        = flag.Int("n", 12, "stack-Imase-Itoh group count n")
		traffic  = flag.String("traffic", "uniform", `traffic: "uniform", "perm", "hotspot" or "burst"`)
		rate     = flag.Float64("rate", 0.2, "per-node injection probability per slot")
		slots    = flag.Int("slots", 2000, "traffic slots")
		drain    = flag.Int("drain", 2000, "extra drain slots")
		seed     = flag.Int64("seed", 1, "random seed")
		deflect  = flag.Bool("deflect", false, "hot-potato deflection instead of store-and-forward")
		maxQ     = flag.Int("maxq", 0, "per-node queue cap (0 = unbounded)")
		burst    = flag.Int("burst", 500, "messages for burst traffic")
		waves    = flag.Int("wavelengths", 1, "wavelengths per coupler (WDM extension)")
		saturate = flag.Bool("saturate", false, "binary-search the saturation rate instead of one run")
	)
	flag.Parse()

	var topo sim.Topology
	var desc string
	switch *net {
	case "sk":
		nw := stackkautz.New(*s, *d, *k)
		topo = sim.NewStackTopology(nw.StackGraph())
		desc = fmt.Sprintf("SK(%d,%d,%d) N=%d couplers=%d", *s, *d, *k, nw.N(), nw.Couplers())
	case "stackii":
		nw := stackkautz.NewII(*s, *d, *n)
		topo = sim.NewStackTopology(nw.StackGraph())
		desc = fmt.Sprintf("stack-II(%d,%d,%d) N=%d couplers=%d", *s, *d, *n, nw.N(), nw.Couplers())
	case "pops":
		nw := pops.New(*t, *g)
		topo = sim.NewStackTopology(nw.StackGraph())
		desc = fmt.Sprintf("POPS(%d,%d) N=%d couplers=%d", *t, *g, nw.N(), nw.Couplers())
	case "debruijn":
		b := kautz.NewDeBruijn(*d, *k)
		topo = sim.NewPointToPointTopology(b.Digraph())
		desc = fmt.Sprintf("deBruijn(%d,%d) N=%d links=%d", *d, *k, b.N(), b.Digraph().M())
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown topology %q\n", *net)
		os.Exit(2)
	}
	if err := sim.CheckTopology(topo); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}

	var tr sim.Traffic
	switch *traffic {
	case "uniform":
		tr = sim.UniformTraffic{Rate: *rate}
	case "perm":
		tr = sim.NewPermutationTraffic(*rate, topo.Nodes(), rand.New(rand.NewSource(*seed)))
	case "hotspot":
		tr = sim.HotspotTraffic{Rate: *rate, Hot: 0, Fraction: 0.3}
	case "burst":
		tr = sim.BurstTraffic{Messages: *burst}
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown traffic %q\n", *traffic)
		os.Exit(2)
	}

	cfg := sim.Config{Seed: *seed, MaxQueue: *maxQ, Deflection: *deflect, Wavelengths: *waves}
	if *saturate {
		rate := sim.SaturationSearch(topo, *slots, 0.95, cfg)
		fmt.Printf("%s: saturation rate ≈ %.4f msgs/node/slot (95%% delivery, %d-slot runs, w=%d)\n",
			desc, rate, *slots, *waves)
		return
	}
	m := sim.Run(topo, tr, *slots, *drain, cfg)
	mode := "store-and-forward"
	if *deflect {
		mode = "hot-potato"
	}
	fmt.Printf("%s  traffic=%s rate=%.2f mode=%s\n", desc, *traffic, *rate, mode)
	fmt.Println(m)
	fmt.Printf("per-node throughput: %.4f msgs/slot/node\n", m.Throughput()/float64(topo.Nodes()))
}
