// Command netsim runs slotted-time traffic simulations over the paper's
// networks: stack-Kautz (multi-hop multi-OPS), POPS (single-hop multi-OPS)
// and the de Bruijn point-to-point baseline, under pluggable workloads
// (uniform, OTIS transpose, group hotspot, bursty on/off, multi-period
// diurnal bursts, recorded-trace replay, collective replay), with
// store-and-forward or hot-potato deflection routing.
//
// One scenario at a time:
//
//	go run ./cmd/netsim -net sk -s 6 -d 3 -k 2 -rate 0.3 -slots 2000
//	go run ./cmd/netsim -net pops -t 9 -g 8 -traffic hotspot -rate 0.2
//	go run ./cmd/netsim -net debruijn -d 3 -k 4 -deflect
//
// Or a parallel scenario sweep (rates x seeds x modes fanned across a
// worker pool, aggregated into a curve with mean/stddev over seeds):
//
//	go run ./cmd/netsim -net sk -sweep -rates 0.05,0.1,0.2,0.4 -seeds 5
//	go run ./cmd/netsim -net all -sweep -rates 0.1,0.3 -seeds 3 -format csv
//	go run ./cmd/netsim -net all -sweep -format json -raw
//
// Fault injection (§2.5 made dynamic): fail nodes, couplers or individual
// transmitters mid-run, permanently or with an MTBF/MTTR process, and sweep
// fault counts into a degradation curve:
//
//	go run ./cmd/netsim -net sk -faults 2 -faultslot 500
//	go run ./cmd/netsim -net sk -faults 3 -faultkind tx -mtbf 200 -mttr 50
//	go run ./cmd/netsim -net sk -sweep -faultset 0,1,2,3 -seeds 5 -format csv
//
// Structured workloads (internal/workload): the OTIS transpose permutation,
// group-hotspot skew, bursty on/off load, and collective-schedule replay
// through the live engine (dynamic T9):
//
//	go run ./cmd/netsim -net sk -workload transpose -rate 0.3
//	go run ./cmd/netsim -net sk -workload hotspot -hotgroup 2 -hotfrac 0.5
//	go run ./cmd/netsim -net sk -workload bursty -burston 50 -burstoff 150
//	go run ./cmd/netsim -net sk -workload collective
//	go run ./cmd/netsim -net pops -t 4 -g 4 -workload collective -collective gossip
//	go run ./cmd/netsim -net all -sweep -workload uniform,transpose,hotspot,bursty
//
// Empirical workloads: replay a recorded trace (CSV/NDJSON events or rate
// schedules, cache-keyed by content fingerprint), generate diurnal
// bursts-of-bursts load, or synthesize fresh traces:
//
//	go run ./cmd/netsim -net sk -workload trace -tracefile examples/traces/day_rates.csv
//	go run ./cmd/netsim -net all -sweep -workload trace -tracefile examples/traces/burst_events.ndjson
//	go run ./cmd/netsim -net sk -workload multiperiod -period 2000 -amplitude 0.8
//	go run ./cmd/netsim synthtrace -form events -slots 2000 -nodes 72 -out day.ndjson -ndjson
//
// Service layer (PR 5): sweeps cache and resume through a content-addressed
// result store, split across processes, and serve over HTTP:
//
//	go run ./cmd/netsim -net all -sweep -seeds 5 -cachedir /tmp/otiscache
//	go run ./cmd/netsim -net all -sweep -shards 3 -shard 0 > shard0.ndjson
//	go run ./cmd/netsim -net all -sweep -mergeshards shard0.ndjson,shard1.ndjson,shard2.ndjson -format csv
//	go run ./cmd/netsim serve -addr :8080 -cachedir /tmp/otiscache
//
// Distributed sweeps (internal/coordinator): `serve` doubles as a lease
// coordinator — grids submitted with "shards" > 0 are executed by any
// number of `work` processes (leased shards, crash-tolerant, merged
// bit-for-bit with a single-process run):
//
//	go run ./cmd/netsim serve -addr :8080 -cachedir /tmp/otiscache
//	go run ./cmd/netsim work -server http://127.0.0.1:8080 -workers 4 -cachedir /tmp/otiscache
//	curl -d '{"topologies":[{"net":"sk"}],"rates":[0.1,0.3],"seeds":[1,2,3],"shards":4}' localhost:8080/api/v1/sweeps
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"otisnet/internal/collective"
	"otisnet/internal/coordinator"
	"otisnet/internal/export"
	"otisnet/internal/faults"
	"otisnet/internal/obs"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
	"otisnet/internal/sweepserver"
	"otisnet/internal/workload"
)

// setupLogging installs the process logger: slog text on stderr, or JSON
// records when -logjson is set (one object per line, machine-ingestable).
func setupLogging(json bool) {
	if json {
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
		return
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "work" {
		runWork(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "synthtrace" {
		runSynthTrace(os.Args[2:])
		return
	}
	var (
		net       = flag.String("net", "sk", `topology: "sk", "pops", "stackii", "debruijn" or "all" (sweep only)`)
		t         = flag.Int("t", 4, "POPS group size t")
		g         = flag.Int("g", 4, "POPS group count g")
		s         = flag.Int("s", 6, "stack network group size s")
		d         = flag.Int("d", 3, "degree d")
		k         = flag.Int("k", 2, "diameter k")
		n         = flag.Int("n", 12, "stack-Imase-Itoh group count n")
		traffic   = flag.String("traffic", "uniform", `traffic: "uniform", "perm", "hotspot" or "burst"`)
		rate      = flag.Float64("rate", 0.2, "per-node injection probability per slot")
		slots     = flag.Int("slots", 2000, "traffic slots")
		drain     = flag.Int("drain", 2000, "extra drain slots")
		seed      = flag.Int64("seed", 1, "random seed")
		deflect   = flag.Bool("deflect", false, "hot-potato deflection instead of store-and-forward")
		maxQ      = flag.Int("maxq", 0, "per-node queue cap (0 = unbounded)")
		burst     = flag.Int("burst", 500, "messages for burst traffic")
		waves     = flag.Int("wavelengths", 1, "wavelengths per coupler (WDM extension)")
		saturate  = flag.Bool("saturate", false, "binary-search the saturation rate instead of one run")
		repeat    = flag.Int("repeat", 1, "repeat the scenario with seeds seed..seed+repeat-1 on one reused engine; reports mean/stddev and engine speed")
		parallelF = flag.Int("parallel", 0, "intra-run shard workers per engine (0 = auto: GOMAXPROCS for single runs, serial for sweeps; 1 = serial; results are bit-for-bit identical)")

		traceF      = flag.String("trace", "", "single run: write sampled engine trace events (NDJSON) to this file")
		traceSample = flag.Int("tracesample", 1, "single run: with -trace, emit events every Nth slot")
		logJSON     = flag.Bool("logjson", false, "structured logs as JSON on stderr (default: text)")

		workloadF   = flag.String("workload", "uniform", `workload: "uniform", "transpose", "hotspot", "bursty", "trace", "multiperiod" or "collective"; sweep: comma list (no collective)`)
		hotGroup    = flag.Int("hotgroup", 0, "hotspot workload: target group index (wraps modulo each topology's group count)")
		hotFrac     = flag.Float64("hotfrac", 0.3, "hotspot workload: fraction of load skewed to the hot group")
		burstOn     = flag.Float64("burston", 50, "bursty/multiperiod workload: mean burst duration (slots)")
		burstOff    = flag.Float64("burstoff", 150, "bursty/multiperiod workload: mean gap duration (slots)")
		burstLow    = flag.Float64("burstlow", 0, "bursty/multiperiod workload: off-state rate factor in [0,1]")
		traceFile   = flag.String("tracefile", "", "trace workload: CSV/NDJSON trace file of (slot,src,dst) events or (slot,rate) records (see `netsim synthtrace`)")
		period      = flag.Int("period", 1000, "multiperiod workload: diurnal period (slots; <= 1 disables the ramp)")
		amplitude   = flag.Float64("amplitude", 0.6, "multiperiod workload: diurnal modulation depth in [0,1]")
		episodeOn   = flag.Float64("episodeon", 400, "multiperiod workload: mean busy-episode length (slots)")
		episodeOff  = flag.Float64("episodeoff", 800, "multiperiod workload: mean gap between episodes (slots)")
		rateSigma   = flag.Float64("ratesigma", 0.35, "multiperiod workload: per-episode peak multiplier sigma (log-half-normal)")
		collectiveF = flag.String("collective", "broadcast", `collective workload: "broadcast" or "gossip" (gossip: POPS only)`)

		faultN    = flag.Int("faults", 0, "fault injection: number of elements to fail (0 = none)")
		faultKind = flag.String("faultkind", "node", `fault injection: element kind, "node", "coupler" or "tx"`)
		faultSlot = flag.Int("faultslot", 0, "fault injection: slot at which the failures strike")
		mtbf      = flag.Float64("mtbf", 0, "fault injection: mean slots between failures (with -mttr: transient faults)")
		mttr      = flag.Float64("mttr", 0, "fault injection: mean slots to repair")

		doSweep  = flag.Bool("sweep", false, "run a parallel scenario sweep instead of one run")
		cacheDir = flag.String("cachedir", "", "sweep: content-addressed result cache directory (reuses completed points; makes interrupted grids resumable)")
		shards   = flag.Int("shards", 1, "sweep: split the grid into this many deterministic shards")
		shardIdx = flag.Int("shard", 0, "sweep: run only this shard (0-based; emits NDJSON shard rows for -mergeshards)")
		mergeF   = flag.String("mergeshards", "", "sweep: merge comma-separated shard NDJSON files (from -shards runs of the same grid) instead of computing")
		rateList = flag.String("rates", "0.05,0.1,0.2,0.4,0.8", "sweep: comma-separated offered loads")
		faultSet = flag.String("faultset", "", "sweep: comma-separated fault counts (degradation curve axis)")
		seeds    = flag.Int("seeds", 3, "sweep: seeds per grid point (1..seeds)")
		modes    = flag.String("modes", "sf", `sweep: comma list of "sf" and/or "deflect"`)
		waveList = flag.String("waveset", "1", "sweep: comma-separated wavelength counts")
		workers  = flag.Int("workers", 0, "sweep: worker goroutines (0 = GOMAXPROCS)")
		replicas = flag.String("replicas", "auto", `sweep: scenarios batched per worker on one replica set ("auto", "off", or a count >= 2); results are bit-for-bit identical either way`)
		format   = flag.String("format", "table", `sweep output: "table", "csv" or "json"`)
		raw      = flag.Bool("raw", false, "sweep: emit raw per-seed results instead of the aggregated curve")
	)
	flag.Parse()
	setupLogging(*logJSON)

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	wf := workloadFlags{
		HotGroup: *hotGroup, HotFrac: *hotFrac,
		BurstOn: *burstOn, BurstOff: *burstOff, BurstLow: *burstLow,
		TraceFile: *traceFile, Period: *period, Amplitude: *amplitude,
		EpisodeOn: *episodeOn, EpisodeOff: *episodeOff, RateSigma: *rateSigma,
		Explicit: explicit,
	}
	if explicit["traffic"] && explicit["workload"] {
		fmt.Fprintln(os.Stderr, "netsim: -traffic (legacy) conflicts with -workload; use one")
		os.Exit(2)
	}
	if explicit["tracesample"] && !explicit["trace"] {
		fmt.Fprintln(os.Stderr, "netsim: -tracesample only applies with -trace")
		os.Exit(2)
	}
	if explicit["trace"] {
		if *traceSample < 1 {
			fmt.Fprintln(os.Stderr, "netsim: -tracesample must be >= 1")
			os.Exit(2)
		}
		// The trace hooks live on one engine; modes that run many engines
		// (or replay schedules) would silently interleave or drop events.
		for _, f := range []string{"sweep", "saturate", "repeat"} {
			if explicit[f] {
				fmt.Fprintf(os.Stderr, "netsim: -trace records a single run; it conflicts with -%s\n", f)
				os.Exit(2)
			}
		}
		if *workloadF == "collective" {
			fmt.Fprintln(os.Stderr, "netsim: -trace records a single run; it does not apply to the collective replay workload")
			os.Exit(2)
		}
	}
	for _, f := range []string{"cachedir", "shards", "shard", "mergeshards"} {
		if explicit[f] && !*doSweep {
			fmt.Fprintf(os.Stderr, "netsim: -%s is a sweep flag; add -sweep\n", f)
			os.Exit(2)
		}
	}

	if *doSweep {
		// Map explicitly set single-run flags into the grid so adding
		// -sweep to an existing command line never silently drops them;
		// setting both a legacy flag and its sweep counterpart is an error.
		if strings.Contains(*workloadF, "collective") {
			fmt.Fprintln(os.Stderr, "netsim: the collective workload replays a schedule and is not sweepable; drop -sweep")
			os.Exit(2)
		}
		if explicit["repeat"] {
			fmt.Fprintln(os.Stderr, "netsim: -repeat is a single-scenario flag; use -seeds for sweep repetitions")
			os.Exit(2)
		}
		conflicts := [][2]string{{"rate", "rates"}, {"deflect", "modes"}, {"wavelengths", "waveset"}, {"seed", "seeds"}, {"faults", "faultset"}}
		for _, c := range conflicts {
			if explicit[c[0]] && explicit[c[1]] {
				fmt.Fprintf(os.Stderr, "netsim: -%s conflicts with -%s in sweep mode; use -%s\n", c[0], c[1], c[1])
				os.Exit(2)
			}
		}
		if *shards < 1 || *shardIdx < 0 || *shardIdx >= *shards {
			fmt.Fprintf(os.Stderr, "netsim: bad shard selection %d/%d (want 0 <= shard < shards)\n", *shardIdx, *shards)
			os.Exit(2)
		}
		if explicit["mergeshards"] && (explicit["shards"] || explicit["shard"]) {
			fmt.Fprintln(os.Stderr, "netsim: -mergeshards consumes shard files; it conflicts with -shards/-shard")
			os.Exit(2)
		}
		if explicit["mergeshards"] && explicit["cachedir"] {
			// The merge path computes nothing, so there is nothing to journal;
			// reject rather than silently ignore the cache request.
			fmt.Fprintln(os.Stderr, "netsim: -mergeshards only reassembles shard files; it does not consult or fill a -cachedir (use -cachedir on the shard runs)")
			os.Exit(2)
		}
		if *shards > 1 && (explicit["format"] || *raw) {
			fmt.Fprintln(os.Stderr, "netsim: a shard run emits NDJSON shard rows only; format selection happens at -mergeshards time")
			os.Exit(2)
		}
		if *saturate {
			for _, f := range []string{"cachedir", "shards", "shard", "mergeshards"} {
				if explicit[f] {
					fmt.Fprintf(os.Stderr, "netsim: -%s does not apply to -sweep -saturate (the search is not a point grid)\n", f)
					os.Exit(2)
				}
			}
			// Saturation sweeps binary-search one seed per point; the rate
			// and seed-count axes do not apply.
			for _, f := range []string{"rates", "seeds"} {
				if explicit[f] {
					fmt.Fprintf(os.Stderr, "netsim: -%s has no effect with -sweep -saturate (use -seed for the search seed)\n", f)
					os.Exit(2)
				}
			}
			// Runner.Saturate does not take a fault axis; reject fault flags
			// rather than silently reporting healthy-network rates.
			for _, f := range []string{"faults", "faultset", "faultkind", "faultslot", "mtbf", "mttr"} {
				if explicit[f] {
					fmt.Fprintf(os.Stderr, "netsim: -%s is not supported with -sweep -saturate (fault injection does not apply to saturation search)\n", f)
					os.Exit(2)
				}
			}
			// Saturation search binary-searches uniform offered load; a
			// workload axis does not apply either.
			if explicit["workload"] {
				fmt.Fprintln(os.Stderr, "netsim: -workload is not supported with -sweep -saturate (the search runs uniform load)")
				os.Exit(2)
			}
		}
		if *raw && explicit["format"] && *format == "table" {
			fmt.Fprintln(os.Stderr, "netsim: -raw emits machine-readable output; use -format csv or json")
			os.Exit(2)
		}
		o := sweepOpts{
			net: *net, t: *t, g: *g, s: *s, d: *d, k: *k, n: *n,
			traffic: *traffic, trafficSet: explicit["traffic"],
			workloads: *workloadF, wf: wf,
			rateExplicit: explicit["rate"] || explicit["rates"],
			burst:        *burst,
			rates:        *rateList, seeds: *seeds, modes: *modes,
			waves: *waveList, slots: *slots, drain: *drain, maxQ: *maxQ,
			seed: *seed, workers: *workers, replicas: parseReplicas(*replicas), parallel: *parallelF, format: *format, raw: *raw,
			saturate: *saturate,
			faultSet: *faultSet, faultKind: *faultKind, faultSlot: *faultSlot,
			mtbf: *mtbf, mttr: *mttr,
			cacheDir: *cacheDir, shards: *shards, shard: *shardIdx, merge: *mergeF,
		}
		if explicit["rate"] {
			o.rates = fmt.Sprintf("%g", *rate)
		}
		if explicit["faults"] {
			o.faultSet = fmt.Sprintf("%d", *faultN)
		}
		if explicit["deflect"] && *deflect {
			o.modes = "deflect"
		}
		if explicit["wavelengths"] {
			o.waves = fmt.Sprintf("%d", *waves)
		}
		if explicit["seed"] {
			o.seedList = []int64{*seed}
		}
		runSweep(o)
		return
	}

	if *saturate && explicit["workload"] {
		// SaturationSearch binary-searches uniform offered load; reject the
		// combination instead of reporting a misattributed rate (the sweep
		// path rejects it the same way).
		fmt.Fprintln(os.Stderr, "netsim: -workload is not supported with -saturate (the search runs uniform load)")
		os.Exit(2)
	}
	if *workloadF == "collective" {
		// The replay runs the canonical single-wavelength store-and-forward
		// engine on the fault-free topology; reject flags it would silently
		// ignore rather than report a scenario that never ran.
		for _, f := range []string{"rate", "slots", "drain", "deflect", "wavelengths", "maxq", "saturate",
			"repeat", "faults", "faultkind", "faultslot", "mtbf", "mttr"} {
			if explicit[f] {
				fmt.Fprintf(os.Stderr, "netsim: -%s does not apply to the collective replay workload\n", f)
				os.Exit(2)
			}
		}
		runCollective(*net, *t, *g, *s, *d, *k, *collectiveF, *seed)
		return
	}

	topo, desc, groupSize := buildTopology(*net, *t, *g, *s, *d, *k, *n)
	if err := sim.CheckTopology(topo); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	spec := faultSpec(*faultKind, *faultN, *faultSlot, *mtbf, *mttr, *slots+*drain)
	if !spec.IsZero() {
		topo = spec.Wrap(topo, *seed)
		desc += " faults=" + spec.Label()
	}

	// newTraffic builds a fresh generator per run: bursty, trace and other
	// stateful workloads must not carry state from one repetition into the
	// next.
	trafficName := *traffic
	var newTraffic func() sim.Traffic
	if explicit["traffic"] {
		// Legacy single-run traffic models, kept for script compatibility;
		// -workload is the richer replacement.
		factory, err := legacyTraffic(*traffic, topo.Nodes(), *seed, *burst, wf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(2)
		}
		newTraffic = func() sim.Traffic { return factory(*rate) }
	} else {
		wspecs, err := wf.specs(*workloadF)
		if err == nil && len(wspecs) != 1 {
			err = fmt.Errorf("one workload per single run (add -sweep to sweep a comma list)")
		}
		var force bool
		if err == nil {
			force, err = traceRateOverride(wspecs, explicit["rate"])
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(2)
		}
		if force {
			*rate = 1 // traces replay/scale as recorded unless -rate says otherwise
		}
		wspec := wspecs[0]
		newTraffic = func() sim.Traffic { return wspec.New(*rate, topo.Nodes(), groupSize) }
		trafficName = wspec.Label()
	}

	cfg := sim.Config{Seed: *seed, MaxQueue: *maxQ, Deflection: *deflect, Wavelengths: *waves}
	if *saturate {
		if explicit["repeat"] {
			fmt.Fprintln(os.Stderr, "netsim: -repeat does not apply to -saturate (the search already reuses one engine)")
			os.Exit(2)
		}
		rate := sim.SaturationSearch(topo, *slots, 0.95, cfg)
		fmt.Printf("%s: saturation rate ≈ %.4f msgs/node/slot (95%% delivery, %d-slot runs, w=%d)\n",
			desc, rate, *slots, *waves)
		return
	}
	mode := "store-and-forward"
	if *deflect {
		mode = "hot-potato"
	}
	if *repeat > 1 {
		runRepeated(topo, desc, trafficName, mode, newTraffic, cfg, *seed, *repeat, *slots, *drain, *rate, *parallelF)
		return
	}
	// sim.Run is NewEngine+Run; building the engine here lets -trace attach
	// its event sink without changing the simulated scenario.
	eng := sim.NewEngine(topo, cfg)
	// -parallel 0 is auto: single runs get the whole machine (SetParallel
	// maps p <= 0 to GOMAXPROCS). Tracing forces serial slots regardless,
	// and the sharded path changes no simulated bit either way.
	if *parallelF != 1 {
		eng.SetParallel(*parallelF)
		defer eng.Close()
	}
	var tr *obs.Trace
	if *traceF != "" {
		t, err := obs.OpenTraceFile(*traceF, *traceSample)
		must(err)
		tr = t
		eng.SetTrace(tr)
	}
	m := eng.Run(newTraffic(), *slots, *drain, cfg)
	if tr != nil {
		events := tr.Events()
		must(tr.Close())
		must(tr.Err())
		slog.Info("trace written", "file", *traceF, "events", events, "sample", *traceSample)
	}
	fmt.Printf("%s  traffic=%s rate=%.2f mode=%s\n", desc, trafficName, *rate, mode)
	fmt.Println(m)
	fmt.Printf("per-node throughput: %.4f msgs/slot/node\n", m.Throughput()/float64(topo.Nodes()))
}

// runRepeated executes the scenario `repeat` times with consecutive seeds
// on one reused engine (compiled once, Reset per run), reporting per-seed
// mean/stddev of the headline metrics and the engine's simulation speed.
func runRepeated(topo sim.Topology, desc, trafficName, mode string, newTraffic func() sim.Traffic,
	cfg sim.Config, seed int64, repeat, slots, drain int, rate float64, parallel int) {
	e := sim.NewEngine(topo, cfg)
	if parallel != 1 {
		e.SetParallel(parallel)
		defer e.Close()
	}
	start := time.Now()
	var thr, lat, hops stats
	totalSlots := 0
	for i := 0; i < repeat; i++ {
		rcfg := cfg
		rcfg.Seed = seed + int64(i)
		m := e.Run(newTraffic(), slots, drain, rcfg)
		thr.add(m.Throughput())
		lat.add(m.AvgLatency())
		hops.add(m.AvgHops())
		totalSlots += m.Slots
	}
	elapsed := time.Since(start)
	fmt.Printf("%s  traffic=%s rate=%.2f mode=%s  %d runs, seeds %d..%d, one reused engine\n",
		desc, trafficName, rate, mode, repeat, seed, seed+int64(repeat)-1)
	fmt.Printf("throughput %.3f ± %.3f msgs/slot  latency %.2f ± %.2f slots  hops %.2f ± %.2f\n",
		thr.mean(), thr.stddev(), lat.mean(), lat.stddev(), hops.mean(), hops.stddev())
	fmt.Printf("simulated %d slots in %v (%.2f Mslots/s)\n",
		totalSlots, elapsed.Round(time.Millisecond), float64(totalSlots)/elapsed.Seconds()/1e6)
}

// stats accumulates mean/stddev over per-run values.
type stats struct {
	n          int
	sum, sumSq float64
}

func (s *stats) add(v float64) { s.n++; s.sum += v; s.sumSq += v * v }

func (s *stats) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

func (s *stats) stddev() float64 {
	if s.n < 2 {
		return 0
	}
	v := s.sumSq/float64(s.n) - s.mean()*s.mean()
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// runCollective replays a collective-communication schedule through the
// live engine (the dynamic T9 of DESIGN.md) and prints per-round delivery
// against the schedule's intent and the information-theoretic lower bound.
func runCollective(net string, t, g, s, d, k int, kind string, seed int64) {
	cfg := sim.Config{Seed: seed}
	var (
		res  *workload.ReplayResult
		err  error
		desc string
	)
	switch {
	case net == "sk" && kind == "broadcast":
		nw := stackkautz.New(s, d, k)
		src := stackkautz.Address{Group: nw.Kautz().LabelOf(0), Member: 0}
		desc = fmt.Sprintf("SK(%d,%d,%d) broadcast from %s", s, d, k, src)
		res, err = workload.ReplayBroadcast(nw.StackGraph(), collective.SKBroadcast(nw, src), nw.NodeID(src), cfg)
	case net == "pops" && kind == "broadcast":
		p := pops.New(t, g)
		src := p.NodeID(0, 0)
		desc = fmt.Sprintf("POPS(%d,%d) broadcast from node %d", t, g, src)
		res, err = workload.ReplayBroadcast(p.StackGraph(), collective.POPSBroadcast(p, src), src, cfg)
	case net == "pops" && kind == "gossip":
		p := pops.New(t, g)
		desc = fmt.Sprintf("POPS(%d,%d) gossip", t, g)
		res, err = workload.ReplayGossip(p.StackGraph(), collective.POPSGossip(p), cfg)
	default:
		fmt.Fprintf(os.Stderr, "netsim: no %q schedule for -net %s (sk: broadcast; pops: broadcast or gossip)\n", kind, net)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s — %d rounds replayed through the live engine\n", desc, len(res.Rounds))
	fmt.Printf("%-6s %-14s %-10s %-10s %s\n", "round", "transmissions", "expected", "delivered", "slots")
	for _, r := range res.Rounds {
		fmt.Printf("%-6d %-14d %-10d %-10d %d\n", r.Round, r.Transmissions, r.Expected, r.Delivered, r.Slots)
	}
	fmt.Printf("total: %d engine slots, %d/%d delivered, rounds >= lower bound %d: %v, dissemination complete: %v\n",
		res.Slots, res.Delivered, res.Injected, res.LowerBound, len(res.Rounds) >= res.LowerBound, res.Complete)
	if !res.Complete {
		os.Exit(1)
	}
}

// buildTopology constructs the selected network and returns its simulation
// topology, a display name, and the group size (nodes per OPS group; 0 for
// point-to-point baselines) that group-structured workloads consume. It
// delegates to sweep.TopoSpec — the same constructor the sweep service
// uses for JSON-submitted grids — so CLI and server scenarios can never
// drift apart.
func buildTopology(net string, t, g, s, d, k, n int) (sim.Topology, string, int) {
	topo, err := sweep.TopoSpec{Net: net, T: t, G: g, S: s, D: d, K: k, N: n}.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(2)
	}
	return topo.Topo, topo.Name, topo.GroupSize
}

type sweepOpts struct {
	net                 string
	t, g, s, d, k, n    int
	traffic             string
	trafficSet          bool // -traffic was explicit: legacy factory path
	workloads           string
	wf                  workloadFlags
	rateExplicit        bool // -rate/-rates was explicit (trace-axis rules)
	burst               int  // legacy -traffic burst message count
	rates, modes, waves string
	seeds               int
	seedList            []int64 // non-nil overrides seeds (explicit -seed)
	slots, drain, maxQ  int
	seed                int64
	workers             int
	replicas            int // sweep.Runner.Replicas (AutoReplicas, 0, or >= 2)
	parallel            int // sweep.Runner.Parallel (0/1 = serial, >= 2 = intra-run shards)
	format              string
	raw                 bool
	saturate            bool
	faultSet, faultKind string
	faultSlot           int
	mtbf, mttr          float64
	// Service-layer options: result cache directory, shard selection and
	// shard-file merge (see runSweep).
	cacheDir      string
	shards, shard int
	merge         string
}

func runSweep(o sweepOpts) {
	switch o.format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "netsim: bad sweep format %q (want table, csv or json)\n", o.format)
		os.Exit(2)
	}
	var topos []sweep.Topology
	if o.net == "all" {
		topos = sweep.ComparableScaleTrio()
	} else {
		topo, desc, groupSize := buildTopology(o.net, o.t, o.g, o.s, o.d, o.k, o.n)
		topos = []sweep.Topology{{Name: desc, Topo: topo, GroupSize: groupSize}}
	}
	var factory sweep.TrafficFactory
	trafficName := ""
	if o.trafficSet {
		// Legacy -traffic factory path, kept for script compatibility. Only
		// the stateless models sweep (perm pins one permutation per seed and
		// burst ignores rate; both would mislabel grid points).
		switch o.traffic {
		case "uniform", "hotspot":
		default:
			fmt.Fprintf(os.Stderr, "netsim: traffic %q is not sweepable (want uniform or hotspot, or use -workload)\n", o.traffic)
			os.Exit(2)
		}
		minNodes := topos[0].Topo.Nodes()
		for _, tp := range topos[1:] {
			if n := tp.Topo.Nodes(); n < minNodes {
				minNodes = n
			}
		}
		f, err := legacyTraffic(o.traffic, minNodes, o.seed, o.burst, o.wf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(2)
		}
		if o.traffic != "uniform" {
			factory = f // uniform is the grid default; leave factory nil
		}
		trafficName = o.traffic
	}
	var wspecs []workload.Spec
	if !o.trafficSet {
		ws, err := o.wf.specs(o.workloads)
		var force bool
		if err == nil {
			force, err = traceRateOverride(ws, o.rateExplicit)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(2)
		}
		if force {
			o.rates = "1" // traces replay/scale as recorded unless -rates says otherwise
		}
		wspecs = ws
	}
	for _, tp := range topos {
		if err := sim.CheckTopology(tp.Topo); err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(1)
		}
	}

	seedAxis := o.seedList
	if seedAxis == nil {
		seedAxis = seedRange(o.seeds)
	}
	var fspecs []faults.Spec
	for _, f := range strings.Split(o.faultSet, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		count, err := strconv.Atoi(f)
		if err != nil || count < 0 {
			fmt.Fprintf(os.Stderr, "netsim: bad fault count %q (want an integer >= 0)\n", f)
			os.Exit(2)
		}
		fspecs = append(fspecs, faultSpec(o.faultKind, count, o.faultSlot, o.mtbf, o.mttr, o.slots+o.drain))
	}
	grid := sweep.Grid{
		Topologies:  topos,
		Rates:       parseFloats(o.rates),
		Seeds:       seedAxis,
		Modes:       parseModes(o.modes),
		Wavelengths: parseInts(o.waves),
		MaxQueue:    o.maxQ,
		Slots:       o.slots,
		Drain:       o.drain,
		Traffic:     factory,
		TrafficName: trafficName,
		Faults:      fspecs,
		Workloads:   wspecs,
	}
	runner := sweep.Runner{Workers: o.workers, Replicas: o.replicas, Parallel: o.parallel}

	if o.saturate {
		printSaturation(runner.Saturate(grid, o.slots, 0.95, o.seed), o.format)
		return
	}

	points := grid.Points()

	// Merge mode: the grid flags define the point list; the shard files
	// supply the metrics. Output goes through the normal format paths, so a
	// merged grid is byte-for-byte a single-process sweep.
	if o.merge != "" {
		var shardRows [][]sweep.ShardResult
		for _, path := range strings.Split(o.merge, ",") {
			if path = strings.TrimSpace(path); path != "" {
				shardRows = append(shardRows, readShardFile(path))
			}
		}
		results, err := sweep.MergeShardResults(points, shardRows...)
		must(err)
		emitResults(o, results)
		return
	}

	// The content-addressed cache: reused points skip simulation entirely;
	// computed points are journaled, so an interrupted run resumes. Shard
	// runs journal to per-shard files so concurrent processes never
	// interleave appends.
	var cache *sweepcache.Cache
	var pointCache sweep.PointCache
	if o.cacheDir != "" {
		shardName := ""
		if o.shards > 1 {
			shardName = fmt.Sprintf("shard%d", o.shard)
		}
		c, err := sweepcache.OpenShard(o.cacheDir, shardName)
		must(err)
		cache = c
		pointCache = c
	}

	if o.shards > 1 {
		shard, err := sweep.ShardPoints(points, o.shard, o.shards)
		must(err)
		results, err := runner.RunCached(context.Background(), shard.Points, pointCache, nil)
		must(err)
		for _, row := range shard.ShardResults(results) {
			must(export.WriteNDJSONLine(os.Stdout, row))
		}
		closeCache(cache)
		return
	}

	results, err := runner.RunCached(context.Background(), points, pointCache, nil)
	must(err)
	if cache != nil {
		st := cache.Stats()
		slog.Info("sweep cache", "dir", o.cacheDir,
			"reused", st.Hits, "computed", st.Misses, "points", len(points), "entries", st.Entries)
	}
	closeCache(cache)
	emitResults(o, results)
}

// emitResults writes sweep results in the selected format.
func emitResults(o sweepOpts, results []sweep.Result) {
	switch {
	case o.raw && o.format == "json":
		must(sweep.WriteResultsJSON(os.Stdout, results))
	case o.raw:
		must(sweep.WriteResultsCSV(os.Stdout, results))
	case o.format == "json":
		must(sweep.WriteCurveJSON(os.Stdout, sweep.Aggregate(results)))
	case o.format == "csv":
		must(sweep.WriteCurveCSV(os.Stdout, sweep.Aggregate(results)))
	default:
		printCurveTable(sweep.Aggregate(results))
	}
}

// readShardFile loads one -shards run's NDJSON rows.
func readShardFile(path string) []sweep.ShardResult {
	f, err := os.Open(path)
	must(err)
	defer f.Close()
	var rows []sweep.ShardResult
	truncated, err := export.ForEachNDJSONLine(f, func(line []byte) error {
		var row sweep.ShardResult
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rows = append(rows, row)
		return nil
	})
	must(err)
	if truncated {
		slog.Warn("shard file ends mid-line (interrupted shard?); dropped the torn fragment", "file", path)
	}
	return rows
}

// closeCache closes the journal, surfacing a degraded-persistence warning
// (a failed append never fails the sweep itself).
func closeCache(c *sweepcache.Cache) {
	if c == nil {
		return
	}
	if err := c.Err(); err != nil {
		slog.Warn("cache journal degraded (results are complete; the journal is not)", "err", err)
	}
	c.Close()
}

// runServe starts the sweep service (internal/sweepserver): submit grids,
// stream per-point results as NDJSON, query cache stats, cancel jobs.
func runServe(args []string) {
	fs := flag.NewFlagSet("netsim serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheDir := fs.String("cachedir", "", "content-addressed result cache directory (empty = in-memory only)")
	workers := fs.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	replicas := fs.String("replicas", "auto", `scenarios batched per worker on one replica set ("auto", "off", or a count >= 2); a grid's "replicas" field overrides`)
	pprofF := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := fs.Bool("logjson", false, "structured logs as JSON on stderr (default: text)")
	fs.Parse(args)
	setupLogging(*logJSON)
	var cache *sweepcache.Cache
	if *cacheDir != "" {
		// The server journals under its own name so a concurrent CLI sweep
		// appending to the same directory (journal.ndjson) never interleaves
		// writes with it.
		c, err := sweepcache.OpenShard(*cacheDir, "server")
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(1)
		}
		cache = c
		st := c.Stats()
		slog.Info("cache loaded", "dir", *cacheDir, "entries", st.Entries, "torn_lines", st.TornLines)
	}
	srv := sweepserver.New(sweep.Runner{Workers: *workers, Replicas: parseReplicas(*replicas)}, cache)
	srv.Pprof = *pprofF
	slog.Info("listening", "addr", *addr, "pprof", *pprofF)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
}

// runWork joins a `netsim serve` coordinator as a worker fleet: each
// worker loops acquiring leased shards, runs them through the shared
// sweep engine (optionally against a local content-addressed cache so a
// restarted worker resumes from its journal), and posts rows back.
func runWork(args []string) {
	fs := flag.NewFlagSet("netsim work", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "coordinator base URL (a `netsim serve` address)")
	workerN := fs.Int("workers", 1, "concurrent lease workers in this process")
	goroutines := fs.Int("goroutines", 0, "sweep goroutines per worker (0 = GOMAXPROCS)")
	replicas := fs.String("replicas", "auto", `scenarios batched per goroutine on one replica set ("auto", "off", or a count >= 2)`)
	cacheDir := fs.String("cachedir", "", "content-addressed result cache directory (empty = no cache)")
	name := fs.String("name", "", "worker name prefix (default host-pid)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle poll interval between acquire attempts")
	idleExit := fs.Duration("idleexit", 0, "exit after this long with no lease to acquire (0 = run until signaled)")
	logJSON := fs.Bool("logjson", false, "structured logs as JSON on stderr (default: text)")
	fs.Parse(args)
	setupLogging(*logJSON)
	if *workerN < 1 {
		fmt.Fprintf(os.Stderr, "netsim: -workers %d < 1\n", *workerN)
		os.Exit(2)
	}
	prefix := *name
	if prefix == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		prefix = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := sweep.Runner{Workers: *goroutines, Replicas: parseReplicas(*replicas)}
	var wg sync.WaitGroup
	for i := 0; i < *workerN; i++ {
		w := &coordinator.Worker{
			Client: &coordinator.Client{BaseURL: *server},
			Build:  sweepserver.PointsFromSpec,
			Runner: runner,
			Name:   fmt.Sprintf("%s-%d", prefix, i),
			Poll:   *poll,

			IdleExit: *idleExit,
			Log:      slog.Default(),
		}
		if *cacheDir != "" {
			// Each worker journals under its own name; the shards all load
			// every sibling journal on open, so a restarted fleet resumes
			// from whatever any predecessor managed to compute.
			c, err := sweepcache.OpenShard(*cacheDir, w.Name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
				os.Exit(1)
			}
			defer c.Close()
			w.Cache = c
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				slog.Error("worker exited", "worker", w.Name, "err", err)
			}
		}()
	}
	slog.Info("workers running", "server", *server, "workers", *workerN, "prefix", prefix)
	wg.Wait()
}

// printSaturation emits saturation points in the requested format; CSV goes
// through encoding/csv so topology names containing commas stay one field.
func printSaturation(pts []sweep.SaturationPoint, format string) {
	switch format {
	case "json":
		type satJSON struct {
			Topology    string  `json:"topology"`
			Mode        string  `json:"mode"`
			Wavelengths int     `json:"wavelengths"`
			Rate        float64 `json:"saturation_rate"`
		}
		out := make([]satJSON, len(pts))
		for i, p := range pts {
			out[i] = satJSON{p.Topology, p.Mode.String(), p.Wavelengths, p.Rate}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(out))
	case "csv":
		cw := csv.NewWriter(os.Stdout)
		must(cw.Write([]string{"topology", "mode", "wavelengths", "saturation_rate"}))
		for _, p := range pts {
			must(cw.Write([]string{p.Topology, p.Mode.String(),
				fmt.Sprintf("%d", p.Wavelengths), fmt.Sprintf("%.4f", p.Rate)}))
		}
		cw.Flush()
		must(cw.Error())
	default:
		fmt.Printf("%-32s %-18s %4s  %s\n", "topology", "mode", "w", "saturation rate")
		for _, p := range pts {
			fmt.Printf("%-32s %-18s %4d  %.4f\n", p.Topology, p.Mode, p.Wavelengths, p.Rate)
		}
	}
}

func printCurveTable(curve []sweep.CurvePoint) {
	withFaults, withTraffic := false, false
	for _, p := range curve {
		if !p.Fault.IsZero() {
			withFaults = true
		}
		if p.TrafficName != "uniform" {
			withTraffic = true
		}
	}
	faultHdr, faultCol := "", "%.0s"
	if withFaults {
		faultHdr, faultCol = fmt.Sprintf(" %-14s", "faults"), " %-14s"
	}
	trafficHdr, trafficCol := "", "%.0s"
	if withTraffic {
		trafficHdr, trafficCol = fmt.Sprintf(" %-18s", "traffic"), " %-18s"
	}
	fmt.Printf("%-16s"+trafficHdr+" %-6s %-18s %4s"+faultHdr+"  %-18s %-16s %-10s %-8s\n",
		"topology", "rate", "mode", "w", "thr/slot (±std)", "latency (±std)", "hops", "del%")
	for _, p := range curve {
		fmt.Printf("%-16s"+trafficCol+" %-6.3g %-18s %4d"+faultCol+"  %8.3f ±%-8.3f %8.2f ±%-6.2f %-10.2f %-8.1f\n",
			p.Topology, p.TrafficName, p.Rate, p.Mode, p.Wavelengths, p.Fault.Label(),
			p.Throughput.Mean, p.Throughput.Std,
			p.Latency.Mean, p.Latency.Std,
			p.Hops.Mean, 100*p.DeliveredFrac.Mean)
	}
}

// parseReplicas maps the -replicas flag onto sweep.Runner.Replicas:
// "auto" sizes batches from the grid's stream-sibling families, "off" (or
// 0/1) keeps per-scenario dispatch, and a count >= 2 pins the batch size.
func parseReplicas(s string) int {
	switch strings.TrimSpace(s) {
	case "auto", "":
		return sweep.AutoReplicas
	case "off", "0", "1":
		return 0
	}
	r, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || r < 2 {
		fmt.Fprintf(os.Stderr, "netsim: bad -replicas %q (want auto, off, or a count >= 2)\n", s)
		os.Exit(2)
	}
	return r
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "netsim: bad rate %q (want a probability in [0,1])\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "netsim: bad wavelength count %q (want an integer >= 1)\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseModes(s string) []sweep.Mode {
	var out []sweep.Mode
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "sf":
			out = append(out, sweep.StoreAndForward)
		case "deflect":
			out = append(out, sweep.Deflection)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "netsim: bad mode %q (want sf or deflect)\n", f)
			os.Exit(2)
		}
	}
	return out
}

// faultSpec assembles and validates the fault-injection spec shared by the
// single-run and sweep paths. horizon bounds the MTBF/MTTR event stream.
func faultSpec(kind string, count, slot int, mtbf, mttr float64, horizon int) faults.Spec {
	var k faults.Kind
	switch kind {
	case "node":
		k = faults.KindNode
	case "coupler":
		k = faults.KindCoupler
	case "tx":
		k = faults.KindTransmitter
	default:
		fmt.Fprintf(os.Stderr, "netsim: bad fault kind %q (want node, coupler or tx)\n", kind)
		os.Exit(2)
	}
	if (mtbf > 0) != (mttr > 0) {
		fmt.Fprintln(os.Stderr, "netsim: -mtbf and -mttr must be set together")
		os.Exit(2)
	}
	return faults.Spec{Kind: k, Count: count, Slot: slot, MTBF: mtbf, MTTR: mttr, Horizon: horizon}
}

func seedRange(n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
}
