// Command export emits Graphviz DOT renderings of the paper's structures:
// the Kautz graphs of Fig. 6, the Imase-Itoh graph of Fig. 10, the
// stack-graph models of Figs. 5 and 7, and the complete optical netlists
// of Figs. 11 and 12. Pipe through `dot -Tsvg` to draw.
//
//	go run ./cmd/export -what kautz -d 2 -k 3
//	go run ./cmd/export -what ii -d 3 -n 12
//	go run ./cmd/export -what pops-model -t 4 -g 2
//	go run ./cmd/export -what sk-model -s 6 -d 3 -k 2
//	go run ./cmd/export -what pops-netlist -t 4 -g 2
//	go run ./cmd/export -what sk-netlist -s 6 -d 3 -k 2
package main

import (
	"flag"
	"fmt"
	"os"

	"otisnet/internal/core"
	"otisnet/internal/export"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func main() {
	var (
		what = flag.String("what", "kautz", "kautz | ii | pops-model | sk-model | pops-netlist | sk-netlist")
		d    = flag.Int("d", 2, "degree")
		k    = flag.Int("k", 2, "diameter")
		n    = flag.Int("n", 12, "Imase-Itoh order")
		t    = flag.Int("t", 4, "POPS group size")
		g    = flag.Int("g", 2, "POPS group count")
		s    = flag.Int("s", 6, "stack group size")
	)
	flag.Parse()
	switch *what {
	case "kautz":
		kg := kautz.New(*d, *k)
		labels := make([]string, kg.N())
		for i := range labels {
			labels[i] = kg.LabelOf(i).String()
		}
		fmt.Print(export.DigraphDOT(fmt.Sprintf("KG(%d,%d)", *d, *k), kg.Digraph(), labels))
	case "ii":
		ii := imase.New(*d, *n)
		fmt.Print(export.DigraphDOT(fmt.Sprintf("II(%d,%d)", *d, *n), ii.Digraph(), nil))
	case "pops-model":
		p := pops.New(*t, *g)
		fmt.Print(export.StackGraphDOT(fmt.Sprintf("POPS(%d,%d)", *t, *g), p.StackGraph()))
	case "sk-model":
		nw := stackkautz.New(*s, *d, *k)
		fmt.Print(export.StackGraphDOT(fmt.Sprintf("SK(%d,%d,%d)", *s, *d, *k), nw.StackGraph()))
	case "pops-netlist":
		de := core.DesignPOPS(*t, *g)
		fmt.Print(export.NetlistDOT(de.Name, de.NL))
	case "sk-netlist":
		de := core.DesignStackKautz(*s, *d, *k)
		fmt.Print(export.NetlistDOT(de.Name, de.NL))
	default:
		fmt.Fprintf(os.Stderr, "export: unknown -what %q\n", *what)
		os.Exit(2)
	}
}
