// Package control implements the media-access control layer of multi-OPS
// networks — the "distributed control" concern of the paper's companion
// work (Chiarulli et al.; Coudert, Ferreira, Muñoz IPPS'98): since an OPS
// coupler is single-wavelength, nodes must agree on who drives which
// coupler in which slot. Two schedulers are provided:
//
//   - TDMAFrame: a static Latin-rectangle frame giving every (node,
//     coupler) pair of every group exactly one slot per frame, with frame
//     length s·⌈D/s⌉ (optimal when D ≤ s or s divides D, and never more
//     than one bank longer than the max(s, D) lower bound);
//   - GreedySchedule: a demand-driven scheduler that packs an arbitrary
//     batch of unicast requests into conflict-free slots.
//
// Both produce collective.Schedule values, so the same validator enforces
// the one-sender-per-coupler and one-transmission-per-node invariants.
package control

import (
	"sort"

	"otisnet/internal/collective"
	"otisnet/internal/hypergraph"
)

// TDMAFrame builds the static access frame for a stack-graph network: in
// slot (r, b), the coupler with index c in bank b of group g is driven by
// member (r + c) mod s of group g. Every (member, coupler) pair of every
// group transmits exactly once per frame.
func TDMAFrame(sg *hypergraph.StackGraph) *collective.Schedule {
	s := sg.StackingFactor()
	groups := sg.Groups()
	// Per-group coupler lists (hyperarc indices whose tail is the group).
	couplers := make([][]int, groups)
	maxD := 0
	for i := 0; i < sg.M(); i++ {
		u, _ := sg.BaseArcOf(i)
		couplers[u] = append(couplers[u], i)
	}
	for _, cs := range couplers {
		if len(cs) > maxD {
			maxD = len(cs)
		}
	}
	banks := (maxD + s - 1) / s
	sched := &collective.Schedule{}
	for r := 0; r < s; r++ {
		for b := 0; b < banks; b++ {
			var round []collective.Transmission
			for g := 0; g < groups; g++ {
				for ci := b * s; ci < (b+1)*s && ci < len(couplers[g]); ci++ {
					member := (r + ci) % s
					round = append(round, collective.Transmission{
						Node:    sg.NodeID(hypergraph.StackNode{Group: g, Member: member}),
						Coupler: couplers[g][ci],
					})
				}
			}
			if len(round) > 0 {
				sched.Rounds = append(sched.Rounds, round)
			}
		}
	}
	return sched
}

// FrameLength returns the TDMA frame length for stacking factor s and
// per-group coupler count d: s·⌈d/s⌉.
func FrameLength(s, d int) int {
	return s * ((d + s - 1) / s)
}

// Request is a unicast transmission demand: node src wants one slot on the
// coupler that reaches dst's group (both in a single hop — multi-hop
// traffic issues one request per hop).
type Request struct {
	Src, Dst int
}

// GreedySchedule packs the requests into conflict-free slots: requests are
// processed in a deterministic order (longest-queue-first by source group,
// then by id) and each is placed into the earliest slot where both its
// coupler and its source node are free. Requests whose source cannot reach
// the destination's group in one hop are returned as the second value.
func GreedySchedule(sg *hypergraph.StackGraph, reqs []Request) (*collective.Schedule, []Request) {
	type placed struct {
		req     Request
		coupler int
	}
	var ok []placed
	var failed []Request
	for _, r := range reqs {
		cu := couplerBetween(sg, r.Src, r.Dst)
		if cu < 0 {
			failed = append(failed, r)
			continue
		}
		ok = append(ok, placed{req: r, coupler: cu})
	}
	// Deterministic order: by coupler demand (descending), then src, dst.
	demand := map[int]int{}
	for _, p := range ok {
		demand[p.coupler]++
	}
	sort.SliceStable(ok, func(i, j int) bool {
		di, dj := demand[ok[i].coupler], demand[ok[j].coupler]
		if di != dj {
			return di > dj
		}
		if ok[i].req.Src != ok[j].req.Src {
			return ok[i].req.Src < ok[j].req.Src
		}
		return ok[i].req.Dst < ok[j].req.Dst
	})
	sched := &collective.Schedule{}
	couplerBusy := []map[int]bool{}
	nodeBusy := []map[int]bool{}
	for _, p := range ok {
		slot := 0
		for {
			if slot == len(sched.Rounds) {
				sched.Rounds = append(sched.Rounds, nil)
				couplerBusy = append(couplerBusy, map[int]bool{})
				nodeBusy = append(nodeBusy, map[int]bool{})
			}
			if !couplerBusy[slot][p.coupler] && !nodeBusy[slot][p.req.Src] {
				sched.Rounds[slot] = append(sched.Rounds[slot], collective.Transmission{
					Node: p.req.Src, Coupler: p.coupler,
				})
				couplerBusy[slot][p.coupler] = true
				nodeBusy[slot][p.req.Src] = true
				break
			}
			slot++
		}
	}
	return sched, failed
}

// couplerBetween returns a hyperarc index with src on its tail and dst in
// its head, or -1.
func couplerBetween(sg *hypergraph.StackGraph, src, dst int) int {
	for _, c := range sg.OutArcs(src) {
		for _, h := range sg.Hyperarc(c).Head {
			if h == dst {
				return c
			}
		}
	}
	return -1
}

// GreedyLowerBound returns the trivial lower bound on schedule length for a
// request batch: the maximum, over couplers and over source nodes, of the
// number of requests needing that resource.
func GreedyLowerBound(sg *hypergraph.StackGraph, reqs []Request) int {
	couplerDemand := map[int]int{}
	nodeDemand := map[int]int{}
	lb := 0
	for _, r := range reqs {
		c := couplerBetween(sg, r.Src, r.Dst)
		if c < 0 {
			continue
		}
		couplerDemand[c]++
		nodeDemand[r.Src]++
		if couplerDemand[c] > lb {
			lb = couplerDemand[c]
		}
		if nodeDemand[r.Src] > lb {
			lb = nodeDemand[r.Src]
		}
	}
	return lb
}
