package control

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func TestTDMAFrameValidPOPS(t *testing.T) {
	p := pops.New(4, 3)
	sg := p.StackGraph()
	frame := TDMAFrame(sg)
	if err := frame.Validate(sg); err != nil {
		t.Fatal(err)
	}
	// POPS(4,3): s=4, D=3 couplers per group -> frame length s*ceil(3/4)=4.
	if frame.Slots() != FrameLength(4, 3) {
		t.Fatalf("frame slots = %d, want %d", frame.Slots(), FrameLength(4, 3))
	}
}

func TestTDMAFrameValidSK(t *testing.T) {
	n := stackkautz.New(6, 3, 2)
	sg := n.StackGraph()
	frame := TDMAFrame(sg)
	if err := frame.Validate(sg); err != nil {
		t.Fatal(err)
	}
	// s=6, D=d+1=4: frame length 6*1 = 6.
	if frame.Slots() != 6 {
		t.Fatalf("frame slots = %d, want 6", frame.Slots())
	}
}

func TestTDMAFullFairness(t *testing.T) {
	// Every (node, coupler) pair with the node on the coupler's tail must
	// transmit exactly once per frame.
	n := stackkautz.New(3, 2, 2)
	sg := n.StackGraph()
	frame := TDMAFrame(sg)
	if err := frame.Validate(sg); err != nil {
		t.Fatal(err)
	}
	count := map[[2]int]int{}
	for _, round := range frame.Rounds {
		for _, tr := range round {
			count[[2]int{tr.Node, tr.Coupler}]++
		}
	}
	for c := 0; c < sg.M(); c++ {
		for _, u := range sg.Hyperarc(c).Tail {
			if count[[2]int{u, c}] != 1 {
				t.Fatalf("pair (node %d, coupler %d) scheduled %d times, want 1",
					u, c, count[[2]int{u, c}])
			}
		}
	}
	// Total transmissions = sum of coupler degrees = M * s.
	if frame.Transmissions() != sg.M()*sg.StackingFactor() {
		t.Fatal("total transmissions wrong")
	}
}

func TestTDMAFrameLengthBounds(t *testing.T) {
	cases := []struct{ s, d, want int }{
		{4, 3, 4}, {4, 4, 4}, {4, 5, 8}, {2, 6, 6}, {1, 3, 3}, {6, 4, 6},
	}
	for _, c := range cases {
		if got := FrameLength(c.s, c.d); got != c.want {
			t.Errorf("FrameLength(%d,%d) = %d, want %d", c.s, c.d, got, c.want)
		}
		// Never below the max(s,d) lower bound.
		lb := c.s
		if c.d > lb {
			lb = c.d
		}
		if FrameLength(c.s, c.d) < lb {
			t.Errorf("FrameLength(%d,%d) below lower bound", c.s, c.d)
		}
	}
}

func TestTDMAWideGroupsDgtS(t *testing.T) {
	// d+1 > s forces multiple banks; the frame must stay valid.
	n := stackkautz.New(2, 3, 2) // s=2, D=4 -> banks=2, frame=4
	sg := n.StackGraph()
	frame := TDMAFrame(sg)
	if err := frame.Validate(sg); err != nil {
		t.Fatal(err)
	}
	if frame.Slots() != 4 {
		t.Fatalf("frame slots = %d, want 4", frame.Slots())
	}
}

func TestGreedyScheduleBasic(t *testing.T) {
	p := pops.New(2, 2)
	sg := p.StackGraph()
	reqs := []Request{
		{Src: p.NodeID(0, 0), Dst: p.NodeID(1, 0)},
		{Src: p.NodeID(0, 1), Dst: p.NodeID(1, 1)}, // same coupler (0,1): must serialize
		{Src: p.NodeID(1, 0), Dst: p.NodeID(0, 0)}, // coupler (1,0): parallel
	}
	sched, failed := GreedySchedule(sg, reqs)
	if len(failed) != 0 {
		t.Fatalf("unexpected failures: %v", failed)
	}
	if err := sched.Validate(sg); err != nil {
		t.Fatal(err)
	}
	if sched.Slots() != 2 {
		t.Fatalf("slots = %d, want 2 (two requests share coupler (0,1))", sched.Slots())
	}
	if sched.Transmissions() != 3 {
		t.Fatal("all requests must be placed")
	}
}

func TestGreedyScheduleUnroutable(t *testing.T) {
	// SK: nodes in non-adjacent groups cannot be served in one hop.
	n := stackkautz.New(2, 2, 3)
	sg := n.StackGraph()
	kg := n.Kautz().Digraph()
	var far int = -1
	for v := 0; v < kg.N(); v++ {
		if v != 0 && !kg.HasArc(0, v) {
			far = v
			break
		}
	}
	if far < 0 {
		t.Skip("no far group")
	}
	reqs := []Request{{Src: 0, Dst: far * 2}}
	sched, failed := GreedySchedule(sg, reqs)
	if len(failed) != 1 || sched.Transmissions() != 0 {
		t.Fatal("unroutable request should be reported")
	}
}

func TestGreedyMatchesLowerBoundOnSerialLoad(t *testing.T) {
	// All requests from one node: schedule length == request count == bound.
	p := pops.New(3, 3)
	sg := p.StackGraph()
	var reqs []Request
	for j := 0; j < 3; j++ {
		reqs = append(reqs, Request{Src: p.NodeID(0, 0), Dst: p.NodeID(j, 1)})
	}
	sched, failed := GreedySchedule(sg, reqs)
	if len(failed) != 0 {
		t.Fatal("no failures expected")
	}
	lb := GreedyLowerBound(sg, reqs)
	if sched.Slots() != lb || lb != 3 {
		t.Fatalf("slots = %d, lower bound = %d, want 3", sched.Slots(), lb)
	}
}

func TestGreedyLowerBoundIgnoresUnroutable(t *testing.T) {
	p := pops.New(2, 2)
	sg := p.StackGraph()
	if lb := GreedyLowerBound(sg, []Request{}); lb != 0 {
		t.Fatal("empty batch has bound 0")
	}
	_ = sg
}

// Property: greedy schedules are always valid, place every routable
// request, and are within 2x of the resource lower bound (list scheduling
// on two constraint families).
func TestGreedyScheduleProperty(t *testing.T) {
	p := pops.New(3, 4)
	sg := p.StackGraph()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var reqs []Request
		for i := 0; i < 40; i++ {
			src := rng.Intn(sg.N())
			dst := rng.Intn(sg.N())
			if src == dst {
				continue
			}
			reqs = append(reqs, Request{Src: src, Dst: dst})
		}
		sched, failed := GreedySchedule(sg, reqs)
		if len(failed) != 0 { // POPS is single-hop: everything routable
			return false
		}
		if sched.Validate(sg) != nil {
			return false
		}
		if sched.Transmissions() != len(reqs) {
			return false
		}
		lb := GreedyLowerBound(sg, reqs)
		return sched.Slots() >= lb && sched.Slots() <= 2*lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the TDMA frame of any POPS network validates and has the
// closed-form length.
func TestTDMAFrameProperty(t *testing.T) {
	f := func(tu, gu uint8) bool {
		tt := 1 + int(tu)%5
		g := 1 + int(gu)%4
		sg := pops.New(tt, g).StackGraph()
		frame := TDMAFrame(sg)
		if frame.Validate(sg) != nil {
			return false
		}
		return frame.Slots() == FrameLength(tt, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
