package optical

import (
	"testing"

	"otisnet/internal/otis"
)

// buildTinyCoupler wires 2 transmitters through a mux, a splitter, and into
// 2 receivers: a degree-2 OPS coupler end to end.
func buildTinyCoupler(t *testing.T) (*Netlist, int, int, int, int) {
	t.Helper()
	n := NewNetlist()
	tx0 := n.AddComponent(TxArray, "TX[1]", "tx0", 0, 1, nil)
	tx1 := n.AddComponent(TxArray, "TX[1]", "tx1", 0, 1, nil)
	mux := n.AddComponent(Mux, "MUX(2)", "mux", 2, 1, nil)
	spl := n.AddComponent(Splitter, "SPLITTER(2)", "spl", 1, 2, nil)
	rx0 := n.AddComponent(RxArray, "RX[1]", "rx0", 1, 0, nil)
	rx1 := n.AddComponent(RxArray, "RX[1]", "rx1", 1, 0, nil)
	n.MustConnect(tx0, 0, mux, 0)
	n.MustConnect(tx1, 0, mux, 1)
	n.MustConnect(mux, 0, spl, 0)
	n.MustConnect(spl, 0, rx0, 0)
	n.MustConnect(spl, 1, rx1, 0)
	return n, tx0, tx1, rx0, rx1
}

func TestTinyCouplerTrace(t *testing.T) {
	n, tx0, tx1, rx0, rx1 := buildTinyCoupler(t)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tx := range []int{tx0, tx1} {
		sinks, err := n.Trace(tx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(sinks) != 2 {
			t.Fatalf("trace reached %d sinks, want 2", len(sinks))
		}
		got := map[int]bool{}
		for _, s := range sinks {
			got[s.Comp] = true
		}
		if !got[rx0] || !got[rx1] {
			t.Fatal("broadcast must reach both receivers")
		}
	}
}

func TestValidateDangling(t *testing.T) {
	n := NewNetlist()
	n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	if err := n.Validate(); err == nil {
		t.Fatal("dangling output should fail validation")
	}
	n2 := NewNetlist()
	tx := n2.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	rx := n2.AddComponent(RxArray, "RX[2]", "rx", 2, 0, nil)
	n2.MustConnect(tx, 0, rx, 0)
	if err := n2.Validate(); err == nil {
		t.Fatal("dangling input should fail validation")
	}
}

func TestConnectErrors(t *testing.T) {
	n := NewNetlist()
	tx := n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	rx := n.AddComponent(RxArray, "RX[1]", "rx", 1, 0, nil)
	if err := n.Connect(tx, 1, rx, 0); err == nil {
		t.Fatal("invalid source port accepted")
	}
	if err := n.Connect(tx, 0, rx, 9); err == nil {
		t.Fatal("invalid dest port accepted")
	}
	if err := n.Connect(tx, 0, rx, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(tx, 0, rx, 0); err == nil {
		t.Fatal("double wiring accepted")
	}
}

func TestAddComponentShapePanics(t *testing.T) {
	cases := []func(n *Netlist){
		func(n *Netlist) { n.AddComponent(TxArray, "TX", "t", 1, 1, nil) },
		func(n *Netlist) { n.AddComponent(RxArray, "RX", "r", 1, 1, nil) },
		func(n *Netlist) { n.AddComponent(Mux, "M", "m", 2, 2, nil) },
		func(n *Netlist) { n.AddComponent(Splitter, "S", "s", 2, 2, nil) },
		func(n *Netlist) { n.AddComponent(Fiber, "F", "f", 1, 2, nil) },
		func(n *Netlist) { n.AddComponent(OTISBlock, "O", "o", 2, 2, nil) },
		func(n *Netlist) { n.AddComponent(Mux, "M", "m", 2, 1, []int{0, 1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn(NewNetlist())
		}()
	}
}

func TestOTISBlockTrace(t *testing.T) {
	// One tx beam through an OTIS(2,2) block to a receiver.
	o := otis.New(2, 2)
	n := NewNetlist()
	tx := n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	blk := n.AddComponent(OTISBlock, "OTIS(2,2)", "blk", 4, 4, o.Permutation())
	var rx [4]int
	for i := range rx {
		rx[i] = n.AddComponent(RxArray, "RX[1]", "rx", 1, 0, nil)
	}
	// Drive OTIS input 0; inputs 1..3 need dummy transmitters for validity,
	// but Trace alone does not require full validity.
	n.MustConnect(tx, 0, blk, 0)
	for i := 0; i < 4; i++ {
		n.MustConnect(blk, i, rx[i], 0)
	}
	sinks, err := n.Trace(tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Input (0,0) of OTIS(2,2) -> output (1,1) -> flat 3.
	if len(sinks) != 1 || sinks[0].Comp != rx[3] {
		t.Fatalf("OTIS trace reached %v, want rx[3]", sinks)
	}
}

func TestTraceErrors(t *testing.T) {
	n := NewNetlist()
	tx := n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	if _, err := n.Trace(tx, 0); err == nil {
		t.Fatal("dangling trace should error")
	}
	if _, err := n.Trace(tx, 5); err == nil {
		t.Fatal("invalid beam should error")
	}
	mux := n.AddComponent(Mux, "MUX(1)", "m", 1, 1, nil)
	_ = mux
	if _, err := n.Trace(mux, 0); err == nil {
		t.Fatal("tracing from non-tx should error")
	}
}

func TestTraceLightLoopDetected(t *testing.T) {
	// tx -> mux -> splitter -> (rx, back into mux): a feedback loop.
	n := NewNetlist()
	tx := n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	mux := n.AddComponent(Mux, "MUX(2)", "mux", 2, 1, nil)
	spl := n.AddComponent(Splitter, "SPLITTER(2)", "spl", 1, 2, nil)
	rx := n.AddComponent(RxArray, "RX[1]", "rx", 1, 0, nil)
	n.MustConnect(tx, 0, mux, 0)
	n.MustConnect(mux, 0, spl, 0)
	n.MustConnect(spl, 0, rx, 0)
	n.MustConnect(spl, 1, mux, 1)
	if _, err := n.Trace(tx, 0); err == nil {
		t.Fatal("light loop should be detected")
	}
}

func TestBOMAndCount(t *testing.T) {
	n, _, _, _, _ := buildTinyCoupler(t)
	bom, classes := n.BOM()
	if bom["TX[1]"] != 2 || bom["RX[1]"] != 2 || bom["MUX(2)"] != 1 || bom["SPLITTER(2)"] != 1 {
		t.Fatalf("BOM wrong: %v", bom)
	}
	if len(classes) != 4 {
		t.Fatalf("classes = %v", classes)
	}
	if n.Count("MUX(2)") != 1 || n.Count("nope") != 0 {
		t.Fatal("Count wrong")
	}
}

func TestFindByName(t *testing.T) {
	n, tx0, _, _, _ := buildTinyCoupler(t)
	if n.FindByName("tx0") != tx0 {
		t.Fatal("FindByName failed")
	}
	if n.FindByName("missing") != -1 {
		t.Fatal("missing name should return -1")
	}
}

func TestTraceSummary(t *testing.T) {
	n, tx0, tx1, _, _ := buildTinyCoupler(t)
	sum, err := n.TraceSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 2 {
		t.Fatalf("summary entries = %d, want 2", len(sum))
	}
	if len(sum[Port{tx0, 0}]) != 2 || len(sum[Port{tx1, 0}]) != 2 {
		t.Fatal("each beam should reach 2 receivers")
	}
}

func TestKindString(t *testing.T) {
	if TxArray.String() != "tx-array" || OTISBlock.String() != "otis" {
		t.Fatal("Kind.String wrong")
	}
}
