// Package optical models the component-level optical designs of §3 and §4
// of the paper as netlists: transmitter and receiver arrays, optical
// multiplexers, beam-splitters, OTIS free-space blocks and fiber loopbacks,
// wired port-to-port. A netlist can be validated (every port wired exactly
// once), traced (which receivers does a given transmitter beam reach —
// this is how package core proves that a design realizes its target
// hypergraph), and summarized as a bill of materials reproducing the
// component counts the paper quotes for Figures 11 and 12.
package optical

import (
	"fmt"
	"sort"
)

// Kind enumerates component types.
type Kind int

// Component kinds.
const (
	// TxArray is a processor's transmit side: no inputs, P output beams
	// (one per OPS coupler the processor can drive).
	TxArray Kind = iota
	// RxArray is a processor's receive side: P input ports, no outputs.
	RxArray
	// Mux is an optical multiplexer: S inputs combined onto 1 output —
	// the input half of an OPS coupler.
	Mux
	// Splitter is a beam-splitter: 1 input divided over Z outputs — the
	// output half of an OPS coupler.
	Splitter
	// OTISBlock is a free-space OTIS(G,T) stage: G·T inputs permuted onto
	// G·T outputs by the transpose.
	OTISBlock
	// Fiber is a 1-input 1-output guided link (used for stack-Kautz loops).
	Fiber
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TxArray:
		return "tx-array"
	case RxArray:
		return "rx-array"
	case Mux:
		return "mux"
	case Splitter:
		return "splitter"
	case OTISBlock:
		return "otis"
	case Fiber:
		return "fiber"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Component is one physical device in a design.
type Component struct {
	ID   int
	Kind Kind
	// Class is the BOM grouping key, e.g. "OTIS(6,4)", "MUX(6)", "TX[4]".
	Class string
	// Name is a unique instance name, e.g. "group3/otis-in".
	Name string
	// NIn and NOut are port counts.
	NIn, NOut int
	// Perm, for OTISBlock only, maps input port -> output port.
	Perm []int
}

// Port identifies one port of one component.
type Port struct {
	Comp int
	Port int
}

// Netlist is a set of components plus one-to-one wires from output ports to
// input ports.
type Netlist struct {
	comps []Component
	// fromOut[src output port] = dst input port, and the reverse index.
	fromOut map[Port]Port
	toIn    map[Port]Port
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist {
	return &Netlist{
		fromOut: make(map[Port]Port),
		toIn:    make(map[Port]Port),
	}
}

// AddComponent appends a component and returns its id. Perm is required for
// OTISBlock (length NIn, a bijection) and must be nil otherwise.
func (n *Netlist) AddComponent(kind Kind, class, name string, nin, nout int, perm []int) int {
	if nin < 0 || nout < 0 {
		panic("optical: negative port count")
	}
	switch kind {
	case TxArray:
		if nin != 0 || nout < 1 {
			panic("optical: tx-array must have 0 inputs, >=1 outputs")
		}
	case RxArray:
		if nout != 0 || nin < 1 {
			panic("optical: rx-array must have >=1 inputs, 0 outputs")
		}
	case Mux:
		if nout != 1 {
			panic("optical: mux must have exactly 1 output")
		}
	case Splitter:
		if nin != 1 {
			panic("optical: splitter must have exactly 1 input")
		}
	case Fiber:
		if nin != 1 || nout != 1 {
			panic("optical: fiber must be 1-in 1-out")
		}
	case OTISBlock:
		if nin != nout || len(perm) != nin {
			panic("optical: otis block needs nin == nout == len(perm)")
		}
	}
	if kind != OTISBlock && perm != nil {
		panic("optical: perm only valid for otis blocks")
	}
	id := len(n.comps)
	n.comps = append(n.comps, Component{
		ID: id, Kind: kind, Class: class, Name: name,
		NIn: nin, NOut: nout, Perm: append([]int(nil), perm...),
	})
	return id
}

// Component returns the component with the given id.
func (n *Netlist) Component(id int) Component {
	if id < 0 || id >= len(n.comps) {
		panic(fmt.Sprintf("optical: component %d out of range", id))
	}
	return n.comps[id]
}

// Components returns the number of components.
func (n *Netlist) Components() int { return len(n.comps) }

// Wires returns the number of wires.
func (n *Netlist) Wires() int { return len(n.fromOut) }

// Connect wires output port (src, srcPort) to input port (dst, dstPort).
// Each port may be used at most once; violations return an error.
func (n *Netlist) Connect(src, srcPort, dst, dstPort int) error {
	s := n.Component(src)
	d := n.Component(dst)
	if srcPort < 0 || srcPort >= s.NOut {
		return fmt.Errorf("optical: %s has no output port %d", s.Name, srcPort)
	}
	if dstPort < 0 || dstPort >= d.NIn {
		return fmt.Errorf("optical: %s has no input port %d", d.Name, dstPort)
	}
	from := Port{src, srcPort}
	to := Port{dst, dstPort}
	if _, dup := n.fromOut[from]; dup {
		return fmt.Errorf("optical: output %s:%d already wired", s.Name, srcPort)
	}
	if _, dup := n.toIn[to]; dup {
		return fmt.Errorf("optical: input %s:%d already wired", d.Name, dstPort)
	}
	n.fromOut[from] = to
	n.toIn[to] = from
	return nil
}

// MustConnect is Connect that panics on error; design builders use it since
// a failed connection is a programming bug, not an input error.
func (n *Netlist) MustConnect(src, srcPort, dst, dstPort int) {
	if err := n.Connect(src, srcPort, dst, dstPort); err != nil {
		panic(err)
	}
}

// Validate checks the design is complete: every output port of every
// component is wired, and every input port of every component is wired.
// A valid design has no dangling light paths.
func (n *Netlist) Validate() error {
	for _, c := range n.comps {
		for p := 0; p < c.NOut; p++ {
			if _, ok := n.fromOut[Port{c.ID, p}]; !ok {
				return fmt.Errorf("optical: dangling output %s:%d", c.Name, p)
			}
		}
		for p := 0; p < c.NIn; p++ {
			if _, ok := n.toIn[Port{c.ID, p}]; !ok {
				return fmt.Errorf("optical: dangling input %s:%d", c.Name, p)
			}
		}
	}
	return nil
}

// BOM returns the bill of materials: count of components per Class, plus a
// deterministic ordering of the classes for printing.
func (n *Netlist) BOM() (map[string]int, []string) {
	bom := map[string]int{}
	for _, c := range n.comps {
		bom[c.Class]++
	}
	classes := make([]string, 0, len(bom))
	for cl := range bom {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	return bom, classes
}

// Count returns the number of components of the given class.
func (n *Netlist) Count(class string) int {
	c := 0
	for _, comp := range n.comps {
		if comp.Class == class {
			c++
		}
	}
	return c
}

// WireFrom returns the input port wired to output port (comp, port), with
// ok=false when the output is dangling.
func (n *Netlist) WireFrom(comp, port int) (Port, bool) {
	p, ok := n.fromOut[Port{comp, port}]
	return p, ok
}

// FindByName returns the id of the uniquely named component, or -1.
func (n *Netlist) FindByName(name string) int {
	for _, c := range n.comps {
		if c.Name == name {
			return c.ID
		}
	}
	return -1
}
