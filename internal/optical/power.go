package optical

import (
	"fmt"
	"math"
)

// PowerModel assigns insertion losses (dB) to component traversals for
// power-aware tracing. Splitting loss of beam-splitters is computed from
// their fan-out (10·log10(z)); the other entries are excess losses.
type PowerModel struct {
	// LaunchDBm is the transmitter launch power.
	LaunchDBm float64
	// OTISLossDB is the excess loss of one free-space OTIS stage (two lens
	// planes).
	OTISLossDB float64
	// MuxLossDB is the insertion loss of an optical multiplexer.
	MuxLossDB float64
	// SplitterExcessDB is the excess (non-splitting) loss of a splitter.
	SplitterExcessDB float64
	// FiberLossDB is the loss of a fiber loopback.
	FiberLossDB float64
}

// DefaultPowerModel returns the loss budget used by the experiments:
// 0 dBm launch, 1 dB per OTIS stage, 0.5 dB per mux, 0.2 dB splitter
// excess, 0.5 dB fiber.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		LaunchDBm:        0,
		OTISLossDB:       1.0,
		MuxLossDB:        0.5,
		SplitterExcessDB: 0.2,
		FiberLossDB:      0.5,
	}
}

// PowerTrace is one receiver endpoint of a power-aware trace.
type PowerTrace struct {
	Sink Port
	// ReceivedDBm is the optical power arriving at the sink.
	ReceivedDBm float64
}

// TracePower follows the beam from (tx, beam) like Trace, accumulating
// losses per the model, and returns the power delivered at every receiver
// reached.
func (n *Netlist) TracePower(tx, beam int, pm PowerModel) ([]PowerTrace, error) {
	c := n.Component(tx)
	if c.Kind != TxArray {
		return nil, fmt.Errorf("optical: %s is not a tx-array", c.Name)
	}
	if beam < 0 || beam >= c.NOut {
		return nil, fmt.Errorf("optical: %s has no beam %d", c.Name, beam)
	}
	var sinks []PowerTrace
	visited := map[Port]bool{}
	var follow func(out Port, dbm float64) error
	follow = func(out Port, dbm float64) error {
		if visited[out] {
			return fmt.Errorf("optical: light loop detected at %s:%d",
				n.Component(out.Comp).Name, out.Port)
		}
		visited[out] = true
		in, ok := n.fromOut[out]
		if !ok {
			return fmt.Errorf("optical: dangling output %s:%d",
				n.Component(out.Comp).Name, out.Port)
		}
		d := n.Component(in.Comp)
		switch d.Kind {
		case RxArray:
			sinks = append(sinks, PowerTrace{Sink: in, ReceivedDBm: dbm})
			return nil
		case Mux:
			return follow(Port{d.ID, 0}, dbm-pm.MuxLossDB)
		case Splitter:
			split := 10 * math.Log10(float64(d.NOut))
			for p := 0; p < d.NOut; p++ {
				if err := follow(Port{d.ID, p}, dbm-pm.SplitterExcessDB-split); err != nil {
					return err
				}
			}
			return nil
		case OTISBlock:
			return follow(Port{d.ID, d.Perm[in.Port]}, dbm-pm.OTISLossDB)
		case Fiber:
			return follow(Port{d.ID, 0}, dbm-pm.FiberLossDB)
		default:
			return fmt.Errorf("optical: light entering %s component %s", d.Kind, d.Name)
		}
	}
	if err := follow(Port{tx, beam}, pm.LaunchDBm); err != nil {
		return nil, err
	}
	return sinks, nil
}

// WorstCasePower returns the minimum received power over every beam of
// every transmitter in the design — the figure the link budget must close
// against the receiver sensitivity.
func (n *Netlist) WorstCasePower(pm PowerModel) (float64, error) {
	worst := math.Inf(1)
	found := false
	for _, c := range n.comps {
		if c.Kind != TxArray {
			continue
		}
		for b := 0; b < c.NOut; b++ {
			traces, err := n.TracePower(c.ID, b, pm)
			if err != nil {
				return 0, fmt.Errorf("tracing %s beam %d: %w", c.Name, b, err)
			}
			for _, tr := range traces {
				found = true
				if tr.ReceivedDBm < worst {
					worst = tr.ReceivedDBm
				}
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("optical: design has no transmitter-to-receiver path")
	}
	return worst, nil
}
