package optical

import "fmt"

// Trace follows the light injected at output port (tx, beam) of a TxArray
// through the design and returns every RxArray input port it reaches.
// Multiplexers forward to their single output; splitters fan out to all
// outputs; OTIS blocks permute; fibers pass through. Reaching a TxArray is
// a wiring error. The traversal is cycle-safe: a purely passive design
// cannot loop light back, and if a buggy design does, Trace reports it.
func (n *Netlist) Trace(tx, beam int) ([]Port, error) {
	c := n.Component(tx)
	if c.Kind != TxArray {
		return nil, fmt.Errorf("optical: %s is not a tx-array", c.Name)
	}
	var sinks []Port
	visited := map[Port]bool{}
	var follow func(out Port) error
	follow = func(out Port) error {
		if visited[out] {
			return fmt.Errorf("optical: light loop detected at %s:%d",
				n.Component(out.Comp).Name, out.Port)
		}
		visited[out] = true
		in, ok := n.fromOut[out]
		if !ok {
			return fmt.Errorf("optical: dangling output %s:%d",
				n.Component(out.Comp).Name, out.Port)
		}
		d := n.Component(in.Comp)
		switch d.Kind {
		case RxArray:
			sinks = append(sinks, in)
			return nil
		case Mux:
			return follow(Port{d.ID, 0})
		case Splitter:
			for p := 0; p < d.NOut; p++ {
				if err := follow(Port{d.ID, p}); err != nil {
					return err
				}
			}
			return nil
		case OTISBlock:
			return follow(Port{d.ID, d.Perm[in.Port]})
		case Fiber:
			return follow(Port{d.ID, 0})
		case TxArray:
			return fmt.Errorf("optical: light entering tx-array %s", d.Name)
		}
		return fmt.Errorf("optical: unknown component kind %v", d.Kind)
	}
	if beam < 0 || beam >= c.NOut {
		return nil, fmt.Errorf("optical: %s has no beam %d", c.Name, beam)
	}
	if err := follow(Port{tx, beam}); err != nil {
		return nil, err
	}
	return sinks, nil
}

// TraceSummary traces every beam of every TxArray and returns, for each
// (tx component id, beam), the RxArray component ids reached (ports
// dropped, duplicates removed). Useful for whole-design verification.
func (n *Netlist) TraceSummary() (map[Port][]int, error) {
	out := map[Port][]int{}
	for _, c := range n.comps {
		if c.Kind != TxArray {
			continue
		}
		for b := 0; b < c.NOut; b++ {
			sinks, err := n.Trace(c.ID, b)
			if err != nil {
				return nil, fmt.Errorf("tracing %s beam %d: %w", c.Name, b, err)
			}
			seen := map[int]bool{}
			var ids []int
			for _, s := range sinks {
				if !seen[s.Comp] {
					seen[s.Comp] = true
					ids = append(ids, s.Comp)
				}
			}
			out[Port{c.ID, b}] = ids
		}
	}
	return out, nil
}
