package optical

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTracePowerTinyCoupler(t *testing.T) {
	n, tx0, _, _, _ := buildTinyCoupler(t)
	pm := PowerModel{LaunchDBm: 0, MuxLossDB: 0.5, SplitterExcessDB: 0.2}
	traces, err := n.TracePower(tx0, 0, pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	// Path: mux (0.5) + splitter excess (0.2) + split loss 10·log10(2).
	want := 0 - 0.5 - 0.2 - 10*math.Log10(2)
	for _, tr := range traces {
		if math.Abs(tr.ReceivedDBm-want) > 1e-9 {
			t.Fatalf("received %v dBm, want %v", tr.ReceivedDBm, want)
		}
	}
}

func TestTracePowerErrors(t *testing.T) {
	n := NewNetlist()
	tx := n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
	if _, err := n.TracePower(tx, 0, DefaultPowerModel()); err == nil {
		t.Fatal("dangling should error")
	}
	if _, err := n.TracePower(tx, 9, DefaultPowerModel()); err == nil {
		t.Fatal("bad beam should error")
	}
	mux := n.AddComponent(Mux, "MUX(1)", "m", 1, 1, nil)
	if _, err := n.TracePower(mux, 0, DefaultPowerModel()); err == nil {
		t.Fatal("non-tx source should error")
	}
}

func TestWorstCasePower(t *testing.T) {
	n, _, _, _, _ := buildTinyCoupler(t)
	pm := PowerModel{LaunchDBm: 3, MuxLossDB: 1}
	worst, err := n.WorstCasePower(pm)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 - 1 - 10*math.Log10(2)
	if math.Abs(worst-want) > 1e-9 {
		t.Fatalf("worst = %v, want %v", worst, want)
	}
}

func TestWorstCasePowerNoPaths(t *testing.T) {
	n := NewNetlist()
	if _, err := n.WorstCasePower(DefaultPowerModel()); err == nil {
		t.Fatal("empty design should error")
	}
}

// Property: received power never exceeds launch power minus the splitting
// loss of the splitters traversed, for any non-negative loss model.
func TestPowerMonotoneProperty(t *testing.T) {
	f := func(otisL, muxL uint8) bool {
		pm := PowerModel{
			LaunchDBm:  0,
			OTISLossDB: float64(otisL%50) / 10,
			MuxLossDB:  float64(muxL%50) / 10,
		}
		n := NewNetlist()
		tx := n.AddComponent(TxArray, "TX[1]", "tx", 0, 1, nil)
		mux := n.AddComponent(Mux, "MUX(1)", "m", 1, 1, nil)
		spl := n.AddComponent(Splitter, "SPLITTER(4)", "s", 1, 4, nil)
		rxs := make([]int, 4)
		for i := range rxs {
			rxs[i] = n.AddComponent(RxArray, "RX[1]", "r", 1, 0, nil)
		}
		n.MustConnect(tx, 0, mux, 0)
		n.MustConnect(mux, 0, spl, 0)
		for i, rx := range rxs {
			n.MustConnect(spl, i, rx, 0)
		}
		traces, err := n.TracePower(tx, 0, pm)
		if err != nil {
			return false
		}
		for _, tr := range traces {
			if tr.ReceivedDBm > pm.LaunchDBm-10*math.Log10(4)+1e-9 {
				return false
			}
		}
		return len(traces) == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
