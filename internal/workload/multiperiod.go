package workload

// Multi-period empirical workload: a spec-driven generator that layers
// the temporal patterns observed in production arrival traces without
// needing a trace file. Three processes compose multiplicatively on top
// of the base rate:
//
//   - a diurnal ramp — a sinusoid of period Period slots and depth
//     Amplitude, the "datacenter day";
//   - an episode process — a two-state Markov chain (mean lengths
//     EpisodeOn/EpisodeOff) gating busy episodes; between episodes the
//     rate drops to FloorFactor of the ramped base;
//   - bursts-of-bursts — inside an episode, an inner Bursty-style
//     flicker (MeanOn/MeanOff) toggles between the ramped base and an
//     episode peak sampled once per episode from a log-half-normal
//     distribution, exp(RateSigma·|N(0,1)|), the heavy-tailed empirical
//     rate multiplier.
//
// The resulting per-slot rate is clamped to [0,1] and drives the same
// per-node Bernoulli sampler as the uniform model, so the generator
// keeps the append-into-caller-scratch 0 B/op contract and is fully
// deterministic per seed.

import (
	"math"
	"math/rand"

	"otisnet/internal/sim"
)

// MultiPeriod implements sim.Traffic. Like Bursty it is stateful (the
// episode and flicker chains advance once per slot), so use one value per
// engine; Spec.New returns a fresh instance.
type MultiPeriod struct {
	// BaseRate is the per-node arrival probability before modulation.
	BaseRate float64
	// Period is the diurnal period in slots; <= 1 disables the ramp.
	Period int
	// Amplitude in [0,1] is the diurnal modulation depth.
	Amplitude float64
	// EpisodeOn and EpisodeOff are the mean episode/gap lengths in slots
	// (both >= 1).
	EpisodeOn, EpisodeOff float64
	// MeanOn and MeanOff are the inner flicker's mean phase lengths in
	// slots (both >= 1).
	MeanOn, MeanOff float64
	// RateSigma >= 0 shapes the per-episode peak multiplier
	// exp(RateSigma*|N(0,1)|); 0 pins the peak to the ramped base.
	RateSigma float64
	// FloorFactor in [0,1] scales the rate between episodes.
	FloorFactor float64

	started   bool
	inEpisode bool
	flickerOn bool
	peak      float64
}

// Generate implements sim.Traffic.
func (t *MultiPeriod) Generate(buf []sim.Injection, slot, n int, rng *rand.Rand) []sim.Injection {
	if !t.started {
		// Start inside an episode with the flicker on, like Bursty starts
		// in its on phase.
		t.started = true
		t.inEpisode = true
		t.flickerOn = true
		t.peak = t.drawPeak(rng)
	} else if t.inEpisode {
		if t.EpisodeOn >= 1 && rng.Float64() < 1/t.EpisodeOn {
			t.inEpisode = false
		} else if t.flickerOn {
			if t.MeanOn >= 1 && rng.Float64() < 1/t.MeanOn {
				t.flickerOn = false
			}
		} else if t.MeanOff < 1 || rng.Float64() < 1/t.MeanOff {
			t.flickerOn = true
		}
	} else if t.EpisodeOff < 1 || rng.Float64() < 1/t.EpisodeOff {
		t.inEpisode = true
		t.flickerOn = true
		t.peak = t.drawPeak(rng)
	}

	rate := t.BaseRate
	if t.Period > 1 && t.Amplitude > 0 {
		rate *= 1 + t.Amplitude*math.Sin(2*math.Pi*float64(slot)/float64(t.Period))
	}
	if !t.inEpisode {
		rate *= t.FloorFactor
	} else if t.flickerOn {
		rate *= t.peak
	}
	if rate > 1 {
		rate = 1
	}
	if rate <= 0 {
		return buf
	}
	for u := 0; u < n; u++ {
		if rng.Float64() < rate {
			dst := rng.Intn(n - 1)
			if dst >= u {
				dst++
			}
			buf = append(buf, sim.Injection{Src: u, Dst: dst})
		}
	}
	return buf
}

// drawPeak samples the episode's heavy-tailed rate multiplier.
func (t *MultiPeriod) drawPeak(rng *rand.Rand) float64 {
	if t.RateSigma <= 0 {
		return 1
	}
	return math.Exp(t.RateSigma * math.Abs(rng.NormFloat64()))
}
