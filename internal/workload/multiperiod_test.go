package workload

import (
	"math"
	"testing"
)

// mpSpec is the testSpecs() multiperiod entry, reused for targeted tests
// (determinism and the 0 B/op run loop are covered by the shared
// TestGeneratorsDeterministic / TestWorkloadRunLoopAllocFree).
func mpSpec() Spec {
	return Spec{Kind: KindMultiPeriod, Period: 200, Amplitude: 0.6, EpisodeOn: 40, EpisodeOff: 80,
		MeanOn: 10, MeanOff: 30, RateSigma: 0.35, OffFactor: 0.1}
}

// TestMultiPeriodDiurnalRamp checks the diurnal layer: with the episode
// and flicker processes disabled (sigma 0, floor 1, huge episode), load
// near the sinusoid's crest must exceed load near its trough.
func TestMultiPeriodDiurnalRamp(t *testing.T) {
	const n, period = 60, 400
	mp := &MultiPeriod{
		BaseRate: 0.3, Period: period, Amplitude: 0.9,
		EpisodeOn: math.Inf(1), EpisodeOff: 1, MeanOn: math.Inf(1), MeanOff: 1,
		RateSigma: 0, FloorFactor: 1,
	}
	injs := stream(mp, 10*period, n, 4)
	crest, trough := 0, 0
	for s, slot := range injs {
		phase := math.Sin(2 * math.Pi * float64(s) / period)
		switch {
		case phase > 0.7:
			crest += len(slot)
		case phase < -0.7:
			trough += len(slot)
		}
	}
	if crest <= 2*trough {
		t.Fatalf("diurnal ramp missing: crest %d vs trough %d injections", crest, trough)
	}
}

// TestMultiPeriodEpisodesModulate checks the episode layer: with a
// silent floor, gaps between episodes produce empty slots while episodes
// produce loaded ones.
func TestMultiPeriodEpisodesModulate(t *testing.T) {
	const n, slots = 40, 4000
	mp := &MultiPeriod{
		BaseRate: 0.9, Period: 0, Amplitude: 0,
		EpisodeOn: 30, EpisodeOff: 60, MeanOn: math.Inf(1), MeanOff: 1,
		RateSigma: 0, FloorFactor: 0,
	}
	silent, loaded := 0, 0
	for _, slot := range stream(mp, slots, n, 11) {
		if len(slot) == 0 {
			silent++
		} else {
			loaded++
		}
	}
	if silent < slots/10 || loaded < slots/20 {
		t.Fatalf("episode process barely toggled: %d silent, %d loaded of %d slots", silent, loaded, slots)
	}
}

// TestMultiPeriodPeakBoostsEpisodes checks the bursts-of-bursts layer:
// a positive RateSigma draws per-episode peaks > 1, so total load over a
// long run must exceed the sigma-0 baseline.
func TestMultiPeriodPeakBoostsEpisodes(t *testing.T) {
	const n, slots = 40, 6000
	count := func(sigma float64) int {
		mp := &MultiPeriod{
			BaseRate: 0.2, EpisodeOn: 50, EpisodeOff: 50,
			MeanOn: 20, MeanOff: 20, RateSigma: sigma, FloorFactor: 0.1,
		}
		total := 0
		for _, slot := range stream(mp, slots, n, 21) {
			total += len(slot)
		}
		return total
	}
	base, boosted := count(0), count(1.0)
	if boosted <= base {
		t.Fatalf("sigma-1 peaks did not raise load: %d vs %d injections", boosted, base)
	}
}

func TestMultiPeriodSpecValidate(t *testing.T) {
	if err := mpSpec().Validate(); err != nil {
		t.Fatalf("test spec invalid: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Period = -1 },
		func(s *Spec) { s.Amplitude = 1.5 },
		func(s *Spec) { s.Amplitude = -0.1 },
		func(s *Spec) { s.EpisodeOn = 0.5 },
		func(s *Spec) { s.EpisodeOff = 0 },
		func(s *Spec) { s.MeanOn = 0 },
		func(s *Spec) { s.MeanOff = 0.9 },
		func(s *Spec) { s.RateSigma = -0.1 },
		func(s *Spec) { s.OffFactor = 1.1 },
	}
	for i, mutate := range bad {
		s := mpSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	// Hotspot and bursty ranges run through the same entry point.
	if err := (Spec{Kind: KindHotspot, HotGroup: -1}).Validate(); err == nil {
		t.Error("Validate accepted a negative hotspot group")
	}
	if err := (Spec{Kind: KindHotspot, HotGroup: 999, Fraction: 0.5}).Validate(); err != nil {
		t.Errorf("Validate rejected a large hotspot group (modulo contract): %v", err)
	}
	if err := (Spec{Kind: KindBursty, MeanOn: 0, MeanOff: 5}).Validate(); err == nil {
		t.Error("Validate accepted bursty mean_on < 1")
	}
}
