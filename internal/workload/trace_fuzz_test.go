package workload

// FuzzTraceWorkload feeds arbitrary bytes through the trace pipeline:
// ScanTrace must classify them (a clean error or a valid TraceInfo),
// never panic, and any input it accepts must then replay — twice, from
// independent Trace values — bit for bit and without panicking. This is
// the scan-then-replay contract from the package docs: all input
// validation happens at scan time, so replay panics are reserved for
// environmental divergence (the file changing underneath the run).

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"otisnet/internal/sim"
)

func FuzzTraceWorkload(f *testing.F) {
	// Valid seeds: both forms, both encodings, headers, comments, CRLF.
	f.Add([]byte("0,1,2\n1,2,3\n"))
	f.Add([]byte("slot,rate\n0,0.5\n10,0\n20,1\n"))
	f.Add([]byte("# day trace\nslot,src,dst\n0,4,7\r\n0,9,1\r\n3,2,0\n"))
	f.Add([]byte(`{"slot":0,"src":1,"dst":2}` + "\n" + `{"slot":5,"rate":0.25}` + "\n"))
	f.Add([]byte(`{"slot":2,"rate":0.75}` + "\n"))
	// Invalid seeds: decreasing slots, mixed forms, malformed records.
	f.Add([]byte("5,1,2\n3,2,1\n"))
	f.Add([]byte("0,1,2\n1,0.5\n"))
	f.Add([]byte("0,1\n,\nnot a record\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x2c})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.trace")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := ScanTrace(path) // must not panic on any input
		if err != nil {
			return
		}
		if info.Records < 1 || info.Fingerprint == "" {
			t.Fatalf("ScanTrace accepted %q with info %+v", data, info)
		}

		// Accepted input must replay deterministically past the last
		// recorded slot, for node counts above and below the id range.
		for _, n := range []int{2, 97} {
			slots := info.MaxSlot + 3
			replay := func() [][]sim.Injection {
				tr := &Trace{Path: path, Form: info.Form}
				rng := rand.New(rand.NewSource(42))
				out := make([][]sim.Injection, slots)
				for s := 0; s < slots; s++ {
					out[s] = append([]sim.Injection(nil), tr.Generate(nil, s, n, rng)...)
				}
				return out
			}
			a, b := replay(), replay()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("n=%d: independent replays of an accepted trace diverged", n)
			}
			for s, injs := range a {
				for _, inj := range injs {
					if inj.Src < 0 || inj.Src >= n || inj.Dst < 0 || inj.Dst >= n || inj.Src == inj.Dst {
						t.Fatalf("n=%d slot %d: replay emitted invalid injection %d->%d", n, s, inj.Src, inj.Dst)
					}
				}
			}
		}
	})
}
