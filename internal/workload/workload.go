// Package workload provides the pluggable traffic sources the simulation
// engine replays: structured load patterns beyond the uniform random
// messages of sim.UniformTraffic. The multi-OPS evaluation literature the
// paper builds on compares topologies under permutation, hotspot and bursty
// load, not uniform traffic alone; this package supplies those patterns as
// deterministic seeded generators, plus a replay harness that drives the
// collective-communication schedules of internal/collective through the
// live engine (the dynamic counterpart of experiment T9).
//
// Every generator implements sim.Traffic and appends into the caller's
// scratch slice, so the whole sim.Run inner loop stays allocation-free in
// steady state under any workload kind (see TestWorkloadRunLoopAllocFree
// and BenchmarkStepAllocFree). Given the same seed, a generator produces
// the same injection stream bit for bit; Uniform is bit-for-bit identical
// to the legacy sim.UniformTraffic it supersedes.
package workload

import (
	"fmt"
	"math/rand"

	"otisnet/internal/otis"
	"otisnet/internal/sim"
)

// Uniform injects, per node per slot, a message with probability Rate to a
// destination chosen uniformly among the other nodes. It delegates to
// sim.UniformTraffic so the RNG consumption sequence — and therefore every
// seeded run — is bit-for-bit identical to the legacy model
// (TestUniformMatchesLegacyTrafficStream guards this).
type Uniform struct {
	Rate float64
}

// Generate implements sim.Traffic.
func (t Uniform) Generate(buf []sim.Injection, slot, n int, rng *rand.Rand) []sim.Injection {
	return sim.UniformTraffic{Rate: t.Rate}.Generate(buf, slot, n, rng)
}

// UniformRate implements sim.UniformRater: Generate is exactly the uniform
// model, so Engine.Run may fuse it into its injection loop.
func (t Uniform) UniformRate() float64 { return t.Rate }

// Transpose injects, with probability Rate per node per slot, a message to
// the node's fixed OTIS transpose partner: node u sends to Perm[u], the
// flat-output position the OTIS optics wire u's flat-input position to.
// This is the permutation workload of the lightwave-network evaluations — a
// structured pattern with zero destination locality and maximal coupler
// reuse. Nodes that are their own partner stay silent.
type Transpose struct {
	Rate float64
	Perm []int
}

// NewTranspose builds the OTIS(groups, groupSize) transpose pattern over
// n = groups·groupSize nodes. A groupSize of 0 or 1 degenerates to
// OTIS(n,1), whose transpose is the reversal permutation u -> n-1-u — the
// natural fallback for topologies without group structure (point-to-point
// baselines).
func NewTranspose(rate float64, n, groupSize int) Transpose {
	if groupSize < 1 {
		groupSize = 1
	}
	if n%groupSize != 0 {
		panic(fmt.Sprintf("workload: %d nodes not divisible into groups of %d", n, groupSize))
	}
	return Transpose{Rate: rate, Perm: otis.New(n/groupSize, groupSize).Permutation()}
}

// Generate implements sim.Traffic.
func (t Transpose) Generate(buf []sim.Injection, _, n int, rng *rand.Rand) []sim.Injection {
	if len(t.Perm) != n {
		panic(fmt.Sprintf("workload: transpose over %d nodes used on %d-node network", len(t.Perm), n))
	}
	for u := 0; u < n; u++ {
		if t.Perm[u] != u && rng.Float64() < t.Rate {
			buf = append(buf, sim.Injection{Src: u, Dst: t.Perm[u]})
		}
	}
	return buf
}

// Hotspot is uniform traffic with tunable skew toward one group: with
// probability Fraction a message is redirected to a uniformly chosen member
// of the hot group, modeling server-style contention on one coupler
// neighborhood. Senders inside the hot group (and redirects that would be
// self-sends) fall back to a uniform destination, so every sender stays
// active. GroupSize 0 or 1 makes the hot group a single node. Group is
// taken modulo the network's group count, so one spec is safe across
// topologies of different scale in the same sweep.
//
// When n is not a multiple of GroupSize, the group count truncates to
// n/GroupSize: the tail n mod GroupSize nodes still send (and receive
// uniform fallback traffic) but belong to no group, so they are never hot
// destinations, and Group wraps at the truncated count. This is pinned
// deliberately (TestHotspotRemainderTailNeverHot) — every seeded stream
// on a ragged topology stays reproducible — rather than rejecting the
// remainder case and breaking sweeps that mix group-structured and flat
// topologies.
type Hotspot struct {
	Rate float64
	// Group is the hot group index; GroupSize its member count.
	Group     int
	GroupSize int
	// Fraction is the probability a message is skewed to the hot group.
	Fraction float64
}

// Generate implements sim.Traffic.
func (t Hotspot) Generate(buf []sim.Injection, _, n int, rng *rand.Rand) []sim.Injection {
	gs := t.GroupSize
	if gs < 1 || gs > n {
		gs = 1
	}
	groups := n / gs
	hotStart := ((t.Group % groups) + groups) % groups * gs
	for u := 0; u < n; u++ {
		if rng.Float64() >= t.Rate {
			continue
		}
		dst := -1
		if u < hotStart || u >= hotStart+gs {
			if rng.Float64() < t.Fraction {
				dst = hotStart + rng.Intn(gs)
			}
		}
		if dst < 0 || dst == u {
			dst = rng.Intn(n - 1)
			if dst >= u {
				dst++
			}
		}
		buf = append(buf, sim.Injection{Src: u, Dst: dst})
	}
	return buf
}

// Bursty modulates uniform load with a two-state on/off Markov process:
// state durations are geometric with means MeanOn and MeanOff slots, the
// whole network burst-synchronously injects at rate OnRate while on and
// OffRate while off. One RNG draw per slot advances the state, so the
// stream is a deterministic function of the seed. Bursty is stateful — use
// one value per engine (pointer receiver).
type Bursty struct {
	OnRate, OffRate float64
	MeanOn, MeanOff float64

	started bool
	off     bool
}

// Generate implements sim.Traffic.
func (t *Bursty) Generate(buf []sim.Injection, _, n int, rng *rand.Rand) []sim.Injection {
	if !t.started {
		t.started = true // bursts start in the on state
	} else if t.off {
		if t.MeanOff <= 1 || rng.Float64() < 1/t.MeanOff {
			t.off = false
		}
	} else {
		if t.MeanOn >= 1 && rng.Float64() < 1/t.MeanOn {
			t.off = true
		}
	}
	rate := t.OnRate
	if t.off {
		rate = t.OffRate
	}
	for u := 0; u < n; u++ {
		if rng.Float64() < rate {
			dst := rng.Intn(n - 1)
			if dst >= u {
				dst++
			}
			buf = append(buf, sim.Injection{Src: u, Dst: dst})
		}
	}
	return buf
}
