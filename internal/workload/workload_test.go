package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"otisnet/internal/otis"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

// stream collects the full injection sequence of a generator over the given
// number of slots, one seeded RNG per call.
func stream(t sim.Traffic, slots, n int, seed int64) [][]sim.Injection {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]sim.Injection, slots)
	for s := 0; s < slots; s++ {
		buf := t.Generate(nil, s, n, rng)
		out[s] = append([]sim.Injection(nil), buf...)
	}
	return out
}

// specs under test: one per kind, with realistic parameters for a 72-node
// network of 12 groups of 6 (SK(6,3,2) shape).
func testSpecs() []Spec {
	return []Spec{
		{Kind: KindUniform},
		{Kind: KindTranspose},
		{Kind: KindHotspot, HotGroup: 2, Fraction: 0.4},
		{Kind: KindBursty, MeanOn: 20, MeanOff: 60, OffFactor: 0.1},
		{Kind: KindMultiPeriod, Period: 200, Amplitude: 0.6, EpisodeOn: 40, EpisodeOff: 80,
			MeanOn: 10, MeanOff: 30, RateSigma: 0.35, OffFactor: 0.1},
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	const n, groupSize, slots = 72, 6, 400
	for _, spec := range testSpecs() {
		a := stream(spec.New(0.3, n, groupSize), slots, n, 7)
		b := stream(spec.New(0.3, n, groupSize), slots, n, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different streams", spec.Label())
		}
		c := stream(spec.New(0.3, n, groupSize), slots, n, 8)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical streams", spec.Label())
		}
	}
}

func TestUniformMatchesLegacyTrafficStream(t *testing.T) {
	const n, slots = 72, 500
	legacy := stream(sim.UniformTraffic{Rate: 0.25}, slots, n, 11)
	ours := stream(Uniform{Rate: 0.25}, slots, n, 11)
	if !reflect.DeepEqual(legacy, ours) {
		t.Fatal("workload.Uniform stream differs from sim.UniformTraffic")
	}
}

func TestUniformRunMatchesLegacyRunBitForBit(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	cfg := sim.Config{Seed: 3}
	legacy := sim.Run(topo, sim.UniformTraffic{Rate: 0.2}, 500, 500, cfg)
	ours := sim.Run(topo, Uniform{Rate: 0.2}, 500, 500, cfg)
	if legacy != ours {
		t.Fatalf("uniform workload run diverged from legacy traffic run:\nlegacy: %v\nours:   %v", legacy, ours)
	}
	// And via the Spec path, as sweeps materialize it.
	spec := Spec{}
	viaSpec := sim.Run(topo, spec.New(0.2, topo.Nodes(), 6), 500, 500, cfg)
	if legacy != viaSpec {
		t.Fatalf("zero-spec workload run diverged from legacy traffic run")
	}
}

func TestTransposeIsOTISPermutation(t *testing.T) {
	const n, groupSize = 12, 3
	perm := otis.New(n/groupSize, groupSize).Permutation()
	tr := NewTranspose(1.0, n, groupSize)
	if !reflect.DeepEqual(tr.Perm, perm) {
		t.Fatal("transpose permutation is not the OTIS permutation")
	}
	seen := make(map[int]bool)
	for _, injs := range stream(tr, 10, n, 1) {
		for _, inj := range injs {
			if inj.Dst != perm[inj.Src] {
				t.Fatalf("injection %d->%d is not the transpose partner %d", inj.Src, inj.Dst, perm[inj.Src])
			}
			seen[inj.Src] = true
		}
	}
	for u := 0; u < n; u++ {
		if perm[u] != u && !seen[u] {
			t.Errorf("node %d (partner %d) never injected at rate 1", u, perm[u])
		}
		if perm[u] == u && seen[u] {
			t.Errorf("fixed point %d injected to itself", u)
		}
	}
}

func TestTransposeDegenerateGroupSizeIsReversal(t *testing.T) {
	tr := NewTranspose(1.0, 8, 0)
	for u, p := range tr.Perm {
		if p != 8-1-u {
			t.Fatalf("OTIS(n,1) transpose should be reversal; perm[%d]=%d", u, p)
		}
	}
}

func TestHotspotSkewTargetsGroup(t *testing.T) {
	const n, gs, hot = 72, 6, 2
	h := Hotspot{Rate: 1.0, Group: hot, GroupSize: gs, Fraction: 1.0}
	hotLo, hotHi := hot*gs, hot*gs+gs
	for _, injs := range stream(h, 50, n, 5) {
		for _, inj := range injs {
			fromHot := inj.Src >= hotLo && inj.Src < hotHi
			toHot := inj.Dst >= hotLo && inj.Dst < hotHi
			if !fromHot && !toHot {
				t.Fatalf("fraction-1 hotspot sent %d->%d outside the hot group", inj.Src, inj.Dst)
			}
			if inj.Src == inj.Dst {
				t.Fatalf("self-send %d->%d", inj.Src, inj.Dst)
			}
		}
	}
	// Fraction 0 degenerates to uniform: destinations leave the hot group.
	u := Hotspot{Rate: 1.0, Group: hot, GroupSize: gs, Fraction: 0}
	outside := false
	for _, injs := range stream(u, 20, n, 5) {
		for _, inj := range injs {
			if inj.Dst < hotLo || inj.Dst >= hotHi {
				outside = true
			}
		}
	}
	if !outside {
		t.Fatal("fraction-0 hotspot never sent outside the hot group")
	}
}

// TestHotspotGroupWrapsAcrossScales guards the sweep-safety rule: a hot
// group index valid on one topology must not send destinations past N on a
// smaller one in the same grid — the group wraps modulo the group count.
func TestHotspotGroupWrapsAcrossScales(t *testing.T) {
	const n, gs = 72, 9 // POPS(9,8) shape: 8 groups
	h := Hotspot{Rate: 1.0, Group: 11, GroupSize: gs, Fraction: 1.0}
	wantLo, wantHi := (11%8)*gs, (11%8)*gs+gs
	for _, injs := range stream(h, 20, n, 3) {
		for _, inj := range injs {
			if inj.Dst < 0 || inj.Dst >= n {
				t.Fatalf("destination %d out of range", inj.Dst)
			}
			fromHot := inj.Src >= wantLo && inj.Src < wantHi
			if !fromHot && (inj.Dst < wantLo || inj.Dst >= wantHi) {
				t.Fatalf("injection %d->%d missed the wrapped hot group [%d,%d)", inj.Src, inj.Dst, wantLo, wantHi)
			}
		}
	}
}

// TestHotspotRemainderTailNeverHot pins the documented ragged-topology
// semantics: when n is not a multiple of GroupSize, the tail n mod
// GroupSize nodes still send but are never hot destinations, and the
// group index wraps at the truncated count n/GroupSize.
func TestHotspotRemainderTailNeverHot(t *testing.T) {
	const n, gs = 70, 6 // 11 whole groups + a 4-node tail (66..69)
	groups := n / gs
	for group := 0; group < 2*groups; group++ {
		h := Hotspot{Rate: 1.0, Group: group, GroupSize: gs, Fraction: 1.0}
		wantLo := (group % groups) * gs
		wantHi := wantLo + gs
		tailSent := false
		for _, injs := range stream(h, 30, n, int64(group+1)) {
			for _, inj := range injs {
				if inj.Src >= groups*gs {
					tailSent = true
				}
				// Non-hot senders redirect with probability 1, so their
				// destinations — tail senders' included — land in the hot
				// range, which never covers the tail. (Hot-group members
				// fall back to uniform destinations and may reach the tail.)
				fromHot := inj.Src >= wantLo && inj.Src < wantHi
				if !fromHot && (inj.Dst < wantLo || inj.Dst >= wantHi) {
					t.Fatalf("group %d: injection %d->%d missed hot range [%d,%d)",
						group, inj.Src, inj.Dst, wantLo, wantHi)
				}
			}
		}
		if !tailSent {
			t.Fatalf("group %d: tail nodes never injected at rate 1", group)
		}
	}
}

func TestBurstyModulatesLoad(t *testing.T) {
	const n, slots = 20, 2000
	b := &Bursty{OnRate: 1.0, OffRate: 0, MeanOn: 10, MeanOff: 10}
	silent, loud := 0, 0
	for _, injs := range stream(b, slots, n, 9) {
		switch len(injs) {
		case 0:
			silent++
		case n:
			loud++
		default:
			t.Fatalf("rate-1/rate-0 burst produced a partial slot of %d injections", len(injs))
		}
	}
	if silent < slots/10 || loud < slots/10 {
		t.Fatalf("on/off process barely toggled: %d silent, %d loud of %d slots", silent, loud, slots)
	}
}

// TestWorkloadRunLoopAllocFree pins the acceptance criterion that the
// sim.Run inner loop (Generate into reusable scratch, Inject, Step) stays
// allocation-free in steady state under every workload kind. Rates are well
// below SK(6,3,2) saturation so ring buffers reach a stable high-water mark
// during warmup.
func TestWorkloadRunLoopAllocFree(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	n := topo.Nodes()
	for _, spec := range testSpecs() {
		spec := spec
		t.Run(spec.Label(), func(t *testing.T) {
			tr := spec.New(0.08, n, 6)
			e := sim.NewEngine(topo, sim.Config{Seed: 1})
			rng := rand.New(rand.NewSource(2))
			var buf []sim.Injection
			slot := 0
			step := func() {
				buf = tr.Generate(buf[:0], slot, n, rng)
				for _, inj := range buf {
					e.Inject(inj.Src, inj.Dst)
				}
				e.Step()
				slot++
			}
			for i := 0; i < 4000; i++ { // warmup to steady state
				step()
			}
			if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
				t.Errorf("run loop allocated %.2f times per slot in steady state", allocs)
			}
		})
	}
}

func TestSpecLabelsAndParse(t *testing.T) {
	cases := map[string]Spec{
		"uniform":           {},
		"transpose":         {Kind: KindTranspose},
		"hotspot(g2,0.4)":   {Kind: KindHotspot, HotGroup: 2, Fraction: 0.4},
		"bursty(20/60,0.1)": {Kind: KindBursty, MeanOn: 20, MeanOff: 60, OffFactor: 0.1},
		"multiperiod(p200;a0.6;ep40/80;fl10/30;s0.35;lo0.1)": {Kind: KindMultiPeriod,
			Period: 200, Amplitude: 0.6, EpisodeOn: 40, EpisodeOff: 80,
			MeanOn: 10, MeanOff: 30, RateSigma: 0.35, OffFactor: 0.1},
	}
	for want, spec := range cases {
		if got := spec.Label(); got != want {
			t.Errorf("Label() = %q, want %q", got, want)
		}
		k, err := ParseKind(spec.Kind.String())
		if err != nil || k != spec.Kind {
			t.Errorf("ParseKind(%q) = %v, %v", spec.Kind.String(), k, err)
		}
	}
	if !(Spec{}).IsZero() || (Spec{Kind: KindBursty}).IsZero() {
		t.Error("IsZero misclassifies specs")
	}
	if _, err := ParseKind("collective"); err == nil {
		t.Error("ParseKind should reject non-sweepable kinds")
	}
}
