package workload

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"otisnet/internal/sim"
)

// writeTrace drops trace content into a temp file and returns its path.
func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScanTraceFormsAndErrors(t *testing.T) {
	valid := map[string]struct {
		content string
		form    TraceForm
		records int
		maxSlot int
	}{
		"csv events":       {"0,1,2\n0,3,4\n5,0,1\n", TraceEvents, 3, 5},
		"csv rates":        {"0,0.2\n100,0.55\n", TraceRates, 2, 100},
		"ndjson events":    {`{"slot":0,"src":1,"dst":2}` + "\n" + `{"slot":2,"dst":0,"src":7}` + "\n", TraceEvents, 2, 2},
		"ndjson rates":     {`{"slot":0,"rate":0.25}` + "\n", TraceRates, 1, 0},
		"header+comments":  {"# a comment\nslot,src,dst\n0,1,2\n\n1,2,3\n", TraceEvents, 2, 1},
		"rates header":     {"SLOT,RATE\n0,1\n", TraceRates, 1, 0},
		"repeated slots":   {"3,1,2\n3,2,1\n3,0,5\n", TraceEvents, 3, 3},
		"exotic floats":    {"0,1e-3\n1,.5\n", TraceRates, 2, 1},
		"mixed encodings":  {"0,1,2\n" + `{"slot":1,"src":2,"dst":3}` + "\n", TraceEvents, 2, 1},
		"crlf line breaks": {"0,1,2\r\n1,2,3\r\n", TraceEvents, 2, 1},
	}
	for name, tc := range valid {
		info, err := ScanTrace(writeTrace(t, tc.content))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if info.Form != tc.form || info.Records != tc.records || info.MaxSlot != tc.maxSlot {
			t.Errorf("%s: got form=%s records=%d maxSlot=%d, want %s/%d/%d",
				name, info.Form, info.Records, info.MaxSlot, tc.form, tc.records, tc.maxSlot)
		}
		if len(info.Fingerprint) != 64 {
			t.Errorf("%s: fingerprint %q is not a hex sha256", name, info.Fingerprint)
		}
	}

	invalid := map[string]string{
		"empty":            "",
		"comments only":    "# nothing\n",
		"unsorted slots":   "5,1,2\n3,2,1\n",
		"mixed forms":      "0,1,2\n1,0.5\n",
		"mixed json forms": `{"slot":0,"src":1,"dst":2}` + "\n" + `{"slot":1,"rate":0.5}` + "\n",
		"negative slot":    "-1,1,2\n",
		"negative src":     "0,-1,2\n",
		"rate above 1":     "0,1.5\n",
		"negative rate":    "0,-0.5\n",
		"garbage":          "hello world\n",
		"too many fields":  "0,1,2,3\n",
		"one field":        "42\n",
		"header mid-file":  "0,1,2\nslot,src,dst\n",
		"json no slot":     `{"src":1,"dst":2}` + "\n",
		"json mixed keys":  `{"slot":0,"src":1,"rate":0.5}` + "\n",
		"json unknown key": `{"slot":0,"src":1,"dst":2,"weight":3}` + "\n",
		"json unclosed":    `{"slot":0,"src":1,"dst":2` + "\n",
		"json trailing":    `{"slot":0,"src":1,"dst":2} extra` + "\n",
		"float slot":       "0.5,1,2\n",
	}
	for name, content := range invalid {
		if _, err := ScanTrace(writeTrace(t, content)); err == nil {
			t.Errorf("%s: ScanTrace accepted %q", name, content)
		}
	}

	if _, err := ScanTrace(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("ScanTrace accepted a missing file")
	}
}

func TestTraceFingerprintTracksContent(t *testing.T) {
	a, err := NewTraceSpec(writeTrace(t, "0,1,2\n1,2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTraceSpec(writeTrace(t, "0,1,2\n1,2,3\n")) // same bytes, other path
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceFP != b.TraceFP {
		t.Error("identical content at different paths fingerprinted differently")
	}
	c, err := NewTraceSpec(writeTrace(t, "0,1,2\n1,2,4\n")) // one record edited
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceFP == c.TraceFP {
		t.Error("editing one record kept the fingerprint")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("scanned spec fails Validate: %v", err)
	}
	if err := (Spec{Kind: KindTrace, TracePath: "x"}).Validate(); err == nil {
		t.Error("Validate accepted a trace spec not built from a scan")
	}
}

func TestTraceEventReplayMatchesFile(t *testing.T) {
	// Node ids wrap modulo n (=10 here): 15 -> 5; 12 -> 2; the 7->17 record
	// wraps to the self-send 7->7 and is dropped.
	path := writeTrace(t, "0,1,2\n0,15,3\n2,7,17\n3,12,4\n")
	spec, err := NewTraceSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	got := stream(spec.New(1, 10, 1), 5, 10, 1)
	want := [][]sim.Injection{
		{{Src: 1, Dst: 2}, {Src: 5, Dst: 3}},
		nil,
		nil, // 7->7 dropped
		{{Src: 2, Dst: 4}},
		nil,
	}
	for s := range want {
		if len(got[s]) != len(want[s]) || (len(want[s]) > 0 && !reflect.DeepEqual(got[s], want[s])) {
			t.Fatalf("slot %d: got %v, want %v", s, got[s], want[s])
		}
	}
}

func TestTraceRatePiecewiseConstantAndScaled(t *testing.T) {
	const n = 40
	// Rate 1 on [0,3), 0 on [3,6), 1 from 6 on: every node injects on full
	// slots, none on silent ones.
	path := writeTrace(t, "0,1\n3,0\n6,1\n")
	spec, err := NewTraceSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	for s, injs := range stream(spec.New(1, n, 1), 10, n, 2) {
		want := n
		if s >= 3 && s < 6 {
			want = 0
		}
		if len(injs) != want {
			t.Fatalf("slot %d: %d injections, want %d", s, len(injs), want)
		}
	}
	// Scale 0.5 halves the schedule: loaded slots go partial, silent stay
	// silent; scale <= 0 (the zero value) means replay as recorded.
	half := 0
	for s, injs := range stream(spec.New(0.5, n, 1), 10, n, 2) {
		if s >= 3 && s < 6 {
			if len(injs) != 0 {
				t.Fatalf("slot %d: scaled replay broke silence", s)
			}
		} else {
			half += len(injs)
		}
	}
	if half == 0 || half >= 7*n {
		t.Fatalf("scale 0.5 produced %d injections over 7 loaded slots of %d nodes", half, n)
	}
	asRecorded := stream(&Trace{Path: path, Form: TraceRates}, 10, n, 2)
	viaOne := stream(&Trace{Path: path, Form: TraceRates, Scale: 1}, 10, n, 2)
	if !reflect.DeepEqual(asRecorded, viaOne) {
		t.Fatal("zero Scale should replay as recorded (scale 1)")
	}
}

func TestTraceReplayDeterministic(t *testing.T) {
	var buf bytes.Buffer
	if err := SynthesizeTrace(&buf, SynthSpec{Form: TraceEvents, Slots: 300, Nodes: 24, Peak: 0.3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	path := writeTrace(t, buf.String())
	spec, err := NewTraceSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	a := stream(spec.New(1, 24, 1), 320, 24, 7)
	b := stream(spec.New(1, 24, 1), 320, 24, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same trace replayed differently")
	}
	total := 0
	for _, injs := range a {
		total += len(injs)
	}
	if total == 0 {
		t.Fatal("synthesized event trace replayed no injections")
	}
}

func TestSynthesizeTraceDeterministicAndValid(t *testing.T) {
	for _, spec := range []SynthSpec{
		{Form: TraceRates, Slots: 2000, Window: 40, Peak: 0.5, Seed: 1},
		{Form: TraceRates, NDJSON: true, Slots: 500, Window: 25, Peak: 0.9, Seed: 2},
		{Form: TraceEvents, Slots: 200, Nodes: 16, Peak: 0.4, Seed: 3},
		{Form: TraceEvents, NDJSON: true, Slots: 100, Nodes: 8, Peak: 0.2, Seed: 4},
	} {
		var a, b bytes.Buffer
		if err := SynthesizeTrace(&a, spec); err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if err := SynthesizeTrace(&b, spec); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%+v: synthesis is not deterministic", spec)
		}
		info, err := ScanTrace(writeTrace(t, a.String()))
		if err != nil {
			t.Fatalf("%+v: synthesized trace fails its own scanner: %v", spec, err)
		}
		if info.Form != spec.Form {
			t.Fatalf("%+v: synthesized form %s", spec, info.Form)
		}
	}
	for _, bad := range []SynthSpec{
		{Form: TraceRates, Slots: 0, Peak: 0.5},
		{Form: TraceEvents, Slots: 10, Nodes: 1, Peak: 0.5},
		{Form: TraceRates, Slots: 10, Peak: 0},
		{Form: TraceRates, Slots: 10, Peak: 1.5},
		{Slots: 10, Peak: 0.5},
	} {
		var w bytes.Buffer
		if err := SynthesizeTrace(&w, bad); err == nil {
			t.Errorf("SynthesizeTrace accepted %+v", bad)
		}
	}
}

// TestTraceReplayAllocBounded pins the tentpole memory bound: replaying a
// >= 100k-event trace allocates far less than the file size — the reader
// streams through a fixed window (bufio buffer + one pending record), it
// never loads the trace.
func TestTraceReplayAllocBounded(t *testing.T) {
	const slots, nodes = 3600, 48
	var buf bytes.Buffer
	if err := SynthesizeTrace(&buf, SynthSpec{Form: TraceEvents, Slots: slots, Nodes: nodes, Peak: 0.95, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	path := writeTrace(t, buf.String())
	info, err := ScanTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records < 100_000 {
		t.Fatalf("synthesized only %d events; the bound needs >= 100k", info.Records)
	}
	fileSize := buf.Len()

	tr := &Trace{Path: path, Form: TraceEvents}
	scratch := make([]sim.Injection, 0, nodes)
	rng := rand.New(rand.NewSource(8))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	total := 0
	for s := 0; s < slots; s++ {
		out := tr.Generate(scratch[:0], s, nodes, rng)
		total += len(out)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc

	if total < 100_000 {
		t.Fatalf("replayed only %d of %d events", total, info.Records)
	}
	// O(window): the 64 KiB scanner buffer plus slack, not the ~1 MiB file.
	if limit := uint64(256 << 10); allocated > limit {
		t.Errorf("replaying a %d-byte trace allocated %d bytes (want <= %d: O(window), not O(file))",
			fileSize, allocated, limit)
	}
}

// TestTraceRunLoopAllocFree extends the steady-state 0 B/op contract to
// both trace forms (the trace counterpart of TestWorkloadRunLoopAllocFree;
// warmup both opens the file and reaches the ring buffers' high-water
// mark).
func TestTraceRunLoopAllocFree(t *testing.T) {
	const n = 72
	var events, rates bytes.Buffer
	if err := SynthesizeTrace(&events, SynthSpec{Form: TraceEvents, Slots: 20000, Nodes: n, Peak: 0.08, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := SynthesizeTrace(&rates, SynthSpec{Form: TraceRates, Slots: 20000, Window: 20, Peak: 0.08, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	for name, content := range map[string]string{"events": events.String(), "rates": rates.String()} {
		t.Run(name, func(t *testing.T) {
			spec, err := NewTraceSpec(writeTrace(t, content))
			if err != nil {
				t.Fatal(err)
			}
			tr := spec.New(1, n, 6)
			rng := rand.New(rand.NewSource(3))
			var buf []sim.Injection
			slot := 0
			step := func() {
				buf = tr.Generate(buf[:0], slot, n, rng)
				slot++
			}
			for i := 0; i < 4000; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
				t.Errorf("trace %s replay allocated %.2f times per slot in steady state", name, allocs)
			}
		})
	}
}

func TestTraceReplayPanicsWhenFileVanishes(t *testing.T) {
	path := writeTrace(t, "0,1,2\n1,2,3\n")
	spec, err := NewTraceSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replaying a deleted trace did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "trace replay") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	spec.New(1, 10, 1).Generate(nil, 0, 10, rand.New(rand.NewSource(1)))
}
