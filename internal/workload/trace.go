package workload

// Trace-replay workload: empirical traffic, not synthetic kinds. A trace
// is a CSV or NDJSON file of either event records — (slot, src, dst), one
// injection each — or rate records — (slot, rate), a piecewise-constant
// per-node arrival-rate schedule sampled from production traffic
// (ServeGen-style ingestion). Replay streams the file one line at a time
// through a fixed-size buffer, so a million-event trace is never resident:
// memory stays O(longest line), pinned by TestTraceReplayAllocBounded.
//
// Trace identity is content-addressed: ScanTrace fingerprints the raw
// bytes (SHA-256) while validating the records, and the fingerprint —
// not the path — enters workload.Spec and the sweep cache key, so editing
// one record recomputes every affected point while a byte-identical trace
// at any path is a warm cache hit.
//
// Record grammar (one record per line; blank lines and '#' comments are
// skipped; an optional leading "slot,src,dst" / "slot,rate" CSV header is
// tolerated):
//
//	CSV events:  slot,src,dst          NDJSON events: {"slot":S,"src":U,"dst":V}
//	CSV rates:   slot,rate             NDJSON rates:  {"slot":S,"rate":R}
//
// Slots must be non-decreasing (the stream is replayed forward once), a
// file holds one record form only, src/dst are non-negative node ids
// (taken modulo the network size at replay, so one trace drives
// differently sized topologies in the same sweep; self-sends after the
// wrap are dropped), and rates are probabilities in [0,1]. A rate record
// applies from its slot until the next record's slot.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"

	"otisnet/internal/sim"
)

// TraceForm distinguishes the two record forms of a trace file.
type TraceForm int

const (
	// TraceEvents is the (slot, src, dst) form: every record is one
	// injection, replayed verbatim.
	TraceEvents TraceForm = iota + 1
	// TraceRates is the (slot, rate) form: a piecewise-constant per-node
	// arrival-rate schedule, sampled per slot like the uniform model.
	TraceRates
)

// String implements fmt.Stringer.
func (f TraceForm) String() string {
	switch f {
	case TraceEvents:
		return "events"
	case TraceRates:
		return "rates"
	default:
		return fmt.Sprintf("TraceForm(%d)", int(f))
	}
}

// maxTraceLine bounds one record line; the streaming reader's buffer
// (and so replay memory) never grows past it.
const maxTraceLine = 1 << 20

// TraceInfo is the result of validating a trace file.
type TraceInfo struct {
	// Fingerprint is the hex SHA-256 of the raw file bytes — the trace's
	// content address, carried into Spec.TraceFP and the sweep cache key.
	Fingerprint string
	Form        TraceForm
	// Records counts data records (comments, blanks and headers excluded).
	Records int
	// MaxSlot is the last record's slot.
	MaxSlot int
}

// ScanTrace streams the file once, validating every record against the
// grammar above and hashing the raw bytes. It is the only sanctioned way
// to build a trace workload spec (NewTraceSpec calls it): replay assumes
// a scanned file and panics on records a scan would have rejected.
func ScanTrace(path string) (TraceInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceInfo{}, fmt.Errorf("workload: trace: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	sc := bufio.NewScanner(io.TeeReader(f, h))
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	info := TraceInfo{}
	lineNo, lastSlot, first := 0, 0, true
	for sc.Scan() {
		lineNo++
		rec, form, skip, err := parseTraceLine(sc.Bytes(), first)
		if err != nil {
			return TraceInfo{}, fmt.Errorf("workload: trace %s:%d: %w", path, lineNo, err)
		}
		if skip {
			continue
		}
		first = false
		if info.Form == 0 {
			info.Form = form
		} else if form != info.Form {
			return TraceInfo{}, fmt.Errorf("workload: trace %s:%d: %s record in a %s trace (one form per file)",
				path, lineNo, form, info.Form)
		}
		if info.Records > 0 && rec.slot < lastSlot {
			return TraceInfo{}, fmt.Errorf("workload: trace %s:%d: slot %d after slot %d (records must be slot-sorted)",
				path, lineNo, rec.slot, lastSlot)
		}
		lastSlot = rec.slot
		info.Records++
		info.MaxSlot = rec.slot
	}
	if err := sc.Err(); err != nil {
		return TraceInfo{}, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	if info.Records == 0 {
		return TraceInfo{}, fmt.Errorf("workload: trace %s: no records", path)
	}
	info.Fingerprint = hex.EncodeToString(h.Sum(nil))
	return info, nil
}

// traceRecord is one parsed data record (src/dst for events, rate for
// rates).
type traceRecord struct {
	slot     int
	src, dst int
	rate     float64
}

// parseTraceLine parses one line. skip reports a comment, blank line or
// (when allowHeader) the CSV header. The parser is hand-rolled over the
// raw bytes — no encoding/json, no string conversion — so the per-slot
// replay loop stays allocation-free in steady state.
func parseTraceLine(line []byte, allowHeader bool) (rec traceRecord, form TraceForm, skip bool, err error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 || line[0] == '#' {
		return traceRecord{}, 0, true, nil
	}
	if line[0] == '{' {
		rec, form, err = parseTraceJSON(line)
		return rec, form, false, err
	}
	if allowHeader && (asciiEqualFold(line, "slot,src,dst") || asciiEqualFold(line, "slot,rate")) {
		return traceRecord{}, 0, true, nil
	}
	rec, form, err = parseTraceCSV(line)
	return rec, form, false, err
}

// asciiEqualFold is a case-insensitive compare without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// parseTraceCSV parses "slot,src,dst" (events) or "slot,rate" (rates).
func parseTraceCSV(line []byte) (traceRecord, TraceForm, error) {
	var fields [4][]byte
	n := 0
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ',' {
			if n == len(fields) {
				return traceRecord{}, 0, fmt.Errorf("too many CSV fields (want slot,src,dst or slot,rate)")
			}
			fields[n] = bytes.TrimSpace(line[start:i])
			n++
			start = i + 1
		}
	}
	slot, ok := parseTraceInt(fields[0])
	if !ok || slot < 0 {
		return traceRecord{}, 0, fmt.Errorf("bad slot %q", fields[0])
	}
	switch n {
	case 3:
		src, ok1 := parseTraceInt(fields[1])
		dst, ok2 := parseTraceInt(fields[2])
		if !ok1 || !ok2 || src < 0 || dst < 0 {
			return traceRecord{}, 0, fmt.Errorf("bad event ids %q,%q (want non-negative node ids)", fields[1], fields[2])
		}
		return traceRecord{slot: slot, src: src, dst: dst}, TraceEvents, nil
	case 2:
		rate, ok := parseTraceFloat(fields[1])
		if !ok || rate < 0 || rate > 1 {
			return traceRecord{}, 0, fmt.Errorf("bad rate %q (want a probability in [0,1])", fields[1])
		}
		return traceRecord{slot: slot, rate: rate}, TraceRates, nil
	default:
		return traceRecord{}, 0, fmt.Errorf("%d CSV fields (want slot,src,dst or slot,rate)", n)
	}
}

// parseTraceJSON parses a flat record object: {"slot":S,"src":U,"dst":V}
// or {"slot":S,"rate":R}. Keys may come in any order; unknown keys are
// errors (a trace schema typo must not silently drop a field).
func parseTraceJSON(line []byte) (traceRecord, TraceForm, error) {
	rec := traceRecord{src: -1, dst: -1, rate: -1}
	var hasSlot, hasSrc, hasDst, hasRate bool
	i := 1 // past '{'
	skipWS := func() {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
	}
	skipWS()
	if i < len(line) && line[i] == '}' {
		return traceRecord{}, 0, fmt.Errorf("empty record object")
	}
	for {
		skipWS()
		if i >= len(line) || line[i] != '"' {
			return traceRecord{}, 0, fmt.Errorf("malformed record object (expected key at byte %d)", i)
		}
		i++
		keyStart := i
		for i < len(line) && line[i] != '"' {
			i++
		}
		if i >= len(line) {
			return traceRecord{}, 0, fmt.Errorf("unterminated key")
		}
		key := line[keyStart:i]
		i++
		skipWS()
		if i >= len(line) || line[i] != ':' {
			return traceRecord{}, 0, fmt.Errorf("missing ':' after %q", key)
		}
		i++
		skipWS()
		valStart := i
		for i < len(line) && line[i] != ',' && line[i] != '}' && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		val := line[valStart:i]
		switch {
		case bytes.Equal(key, []byte("slot")):
			v, ok := parseTraceInt(val)
			if !ok || v < 0 {
				return traceRecord{}, 0, fmt.Errorf("bad slot %q", val)
			}
			rec.slot, hasSlot = v, true
		case bytes.Equal(key, []byte("src")):
			v, ok := parseTraceInt(val)
			if !ok || v < 0 {
				return traceRecord{}, 0, fmt.Errorf("bad src %q", val)
			}
			rec.src, hasSrc = v, true
		case bytes.Equal(key, []byte("dst")):
			v, ok := parseTraceInt(val)
			if !ok || v < 0 {
				return traceRecord{}, 0, fmt.Errorf("bad dst %q", val)
			}
			rec.dst, hasDst = v, true
		case bytes.Equal(key, []byte("rate")):
			v, ok := parseTraceFloat(val)
			if !ok || v < 0 || v > 1 {
				return traceRecord{}, 0, fmt.Errorf("bad rate %q (want a probability in [0,1])", val)
			}
			rec.rate, hasRate = v, true
		default:
			return traceRecord{}, 0, fmt.Errorf("unknown record key %q (want slot, src, dst or rate)", key)
		}
		skipWS()
		if i < len(line) && line[i] == ',' {
			i++
			continue
		}
		break
	}
	if i >= len(line) || line[i] != '}' {
		return traceRecord{}, 0, fmt.Errorf("unterminated record object")
	}
	if tail := bytes.TrimSpace(line[i+1:]); len(tail) != 0 {
		return traceRecord{}, 0, fmt.Errorf("trailing bytes %q after record", tail)
	}
	if !hasSlot {
		return traceRecord{}, 0, fmt.Errorf("record has no slot")
	}
	switch {
	case hasSrc && hasDst && !hasRate:
		return rec, TraceEvents, nil
	case hasRate && !hasSrc && !hasDst:
		return rec, TraceRates, nil
	default:
		return traceRecord{}, 0, fmt.Errorf("record must carry src+dst or rate, not a mix")
	}
}

// parseTraceInt parses a non-negative-ish decimal integer from raw bytes
// without allocating.
func parseTraceInt(b []byte) (int, bool) {
	i, neg := 0, false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	v := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if v > (1<<62)/10 {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseTraceFloat parses a plain decimal ([-]ddd[.ddd]) from raw bytes
// without allocating. Both the mantissa digits and the power-of-ten
// divisor are exact in float64 for up to 15 significant digits, so the
// single division is correctly rounded — bit-identical to
// strconv.ParseFloat, which handles the rare long or exponent forms.
func parseTraceFloat(b []byte) (float64, bool) {
	i, neg := 0, false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	mant, digits, frac := 0, 0, 0
	seenDot := false
	for ; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
			if digits > 15 {
				return parseTraceFloatSlow(b)
			}
			mant = mant*10 + int(c-'0')
			if seenDot {
				frac++
			}
		case c == '.' && !seenDot:
			seenDot = true
		default:
			return parseTraceFloatSlow(b) // exponents and exotica
		}
	}
	if digits == 0 {
		return 0, false
	}
	v := float64(mant)
	if frac > 0 {
		div := 1.0
		for j := 0; j < frac; j++ {
			div *= 10
		}
		v /= div
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseTraceFloatSlow is the strconv fallback (allocates one string; only
// reached for forms the fast path declines).
func parseTraceFloatSlow(b []byte) (float64, bool) {
	v, err := strconv.ParseFloat(string(b), 64)
	return v, err == nil
}

// Trace replays a scanned trace file as a sim.Traffic generator. Event
// records inject (src mod n) -> (dst mod n) at their slot (self-sends
// after the wrap are dropped); rate records drive the uniform Bernoulli
// sampler at the recorded rate, scaled by Scale, from their slot until
// the next record. The file is read incrementally — one pending record
// plus a fixed line buffer — so replay memory is O(longest line)
// regardless of trace size, and the per-slot Generate stays
// allocation-free in steady state.
//
// Trace is stateful (a streaming cursor): use one value per engine, as
// with Bursty. Build it through Spec.New (after NewTraceSpec) so the file
// has been validated; Generate panics if the file turns unreadable or
// grows records a scan would reject — an environment error, since the
// content fingerprint taken at spec time no longer describes the file.
type Trace struct {
	Path string
	Form TraceForm
	// Scale multiplies recorded rates (TraceRates only); <= 0 means 1, so
	// a zero value replays the trace as recorded.
	Scale float64

	f           *os.File
	sc          *bufio.Scanner
	opened      bool
	lineNo      int
	first       bool
	pending     traceRecord
	havePending bool
	rate        float64
}

// Generate implements sim.Traffic.
func (t *Trace) Generate(buf []sim.Injection, slot, n int, rng *rand.Rand) []sim.Injection {
	if !t.opened {
		t.open()
	}
	if t.Form == TraceRates {
		for t.havePending && t.pending.slot <= slot {
			t.rate = t.pending.rate
			t.advance()
		}
		r := t.rate
		if t.Scale > 0 {
			r *= t.Scale
		}
		if r > 1 {
			r = 1
		}
		if r > 0 {
			for u := 0; u < n; u++ {
				if rng.Float64() < r {
					dst := rng.Intn(n - 1)
					if dst >= u {
						dst++
					}
					buf = append(buf, sim.Injection{Src: u, Dst: dst})
				}
			}
		}
		return buf
	}
	for t.havePending && t.pending.slot <= slot {
		if t.pending.slot == slot {
			src, dst := t.pending.src%n, t.pending.dst%n
			if src != dst {
				buf = append(buf, sim.Injection{Src: src, Dst: dst})
			}
		}
		t.advance()
	}
	return buf
}

// open arms the streaming cursor. The finalizer covers generators whose
// run ends before the trace does (slots < MaxSlot) — the reader closes
// itself at EOF otherwise.
func (t *Trace) open() {
	f, err := os.Open(t.Path)
	if err != nil {
		panic(fmt.Sprintf("workload: trace replay: %v (the trace must stay readable for the run)", err))
	}
	t.f = f
	t.sc = bufio.NewScanner(f)
	t.sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	t.opened = true
	t.first = true
	t.havePending = false
	t.rate = 0
	t.lineNo = 0
	runtime.SetFinalizer(t, func(tr *Trace) { tr.stop() })
	t.advance()
}

// stop releases the file handle; the cursor stays logically at EOF.
func (t *Trace) stop() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
		t.sc = nil
		runtime.SetFinalizer(t, nil)
	}
}

// advance reads the next data record into pending, closing the file at
// EOF. Records that a ScanTrace would reject panic: the file no longer
// matches the fingerprint its spec was built from.
func (t *Trace) advance() {
	for t.sc != nil && t.sc.Scan() {
		t.lineNo++
		rec, form, skip, err := parseTraceLine(t.sc.Bytes(), t.first)
		if err != nil {
			panic(fmt.Sprintf("workload: trace %s:%d: %v (edited since it was scanned?)", t.Path, t.lineNo, err))
		}
		if skip {
			continue
		}
		t.first = false
		if form != t.Form {
			panic(fmt.Sprintf("workload: trace %s:%d: %s record in a %s trace (edited since it was scanned?)",
				t.Path, t.lineNo, form, t.Form))
		}
		if t.havePending && rec.slot < t.pending.slot {
			panic(fmt.Sprintf("workload: trace %s:%d: slot %d after slot %d (edited since it was scanned?)",
				t.Path, t.lineNo, rec.slot, t.pending.slot))
		}
		t.pending = rec
		t.havePending = true
		return
	}
	if t.sc != nil {
		if err := t.sc.Err(); err != nil {
			panic(fmt.Sprintf("workload: trace %s: %v", t.Path, err))
		}
	}
	t.havePending = false
	t.stop()
}
