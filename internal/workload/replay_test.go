package workload

import (
	"testing"

	"otisnet/internal/collective"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func TestReplayBroadcastSKCompletes(t *testing.T) {
	nw := stackkautz.New(6, 3, 2)
	src := stackkautz.Address{Group: nw.Kautz().LabelOf(0), Member: 0}
	sched := collective.SKBroadcast(nw, src)
	res, err := ReplayBroadcast(nw.StackGraph(), sched, nw.NodeID(src), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("live replay did not complete the broadcast")
	}
	if len(res.Rounds) != sched.Slots() {
		t.Fatalf("replayed %d rounds, schedule has %d", len(res.Rounds), sched.Slots())
	}
	if len(res.Rounds) < res.LowerBound {
		t.Fatalf("round count %d below the lower bound %d — bound or schedule broken",
			len(res.Rounds), res.LowerBound)
	}
	if res.Delivered != res.Injected {
		t.Fatalf("delivered %d of %d injected", res.Delivered, res.Injected)
	}
	for _, r := range res.Rounds {
		if r.Delivered != r.Expected {
			t.Fatalf("round %d delivered %d of %d", r.Round, r.Delivered, r.Expected)
		}
		// Unicast expansion serializes each coupler, so a round with E
		// receptions needs at least E / couplers slots and at most E.
		if r.Slots < 1 || r.Slots > r.Expected {
			t.Fatalf("round %d took %d slots for %d receptions", r.Round, r.Slots, r.Expected)
		}
	}
}

func TestReplayBroadcastPOPSCompletes(t *testing.T) {
	p := pops.New(4, 4)
	src := p.NodeID(0, 0)
	res, err := ReplayBroadcast(p.StackGraph(), collective.POPSBroadcast(p, src), src, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("POPS broadcast replay incomplete")
	}
}

func TestReplayGossipPOPSCompletes(t *testing.T) {
	p := pops.New(3, 4)
	sched := collective.POPSGossip(p)
	res, err := ReplayGossip(p.StackGraph(), sched, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("POPS gossip replay incomplete: some node missed some data")
	}
	if len(res.Rounds) < res.LowerBound {
		t.Fatalf("gossip rounds %d below lower bound %d", len(res.Rounds), res.LowerBound)
	}
}

// TestReplayAgreesWithStaticExecute cross-validates the live replay against
// the static schedule semantics: both must reach the same dissemination
// verdict on the same schedules.
func TestReplayAgreesWithStaticExecute(t *testing.T) {
	p := pops.New(4, 2)
	src := p.NodeID(0, 0)
	bc := collective.POPSBroadcast(p, src)
	static := bc.Execute(p.StackGraph()).BroadcastComplete(src)
	res, err := ReplayBroadcast(p.StackGraph(), bc, src, sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete != static {
		t.Fatalf("live replay complete=%v, static execute complete=%v", res.Complete, static)
	}
	// A truncated schedule must be incomplete in both models.
	trunc := &collective.Schedule{Rounds: bc.Rounds[:1]}
	staticTrunc := trunc.Execute(p.StackGraph()).BroadcastComplete(src)
	resTrunc, err := ReplayBroadcast(p.StackGraph(), trunc, src, sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resTrunc.Complete || staticTrunc {
		t.Fatal("truncated broadcast schedule should be incomplete in both models")
	}
}

func TestReplayRejectsCappedQueues(t *testing.T) {
	p := pops.New(4, 4)
	src := p.NodeID(0, 0)
	// A queue cap of 1 drops most of the round's expansion; the replay must
	// report the under-delivery instead of silently passing.
	_, err := ReplayBroadcast(p.StackGraph(), collective.POPSBroadcast(p, src), src,
		sim.Config{Seed: 1, MaxQueue: 1})
	if err == nil {
		t.Fatal("replay with a droppy queue cap should fail")
	}
}
