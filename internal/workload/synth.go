package workload

// Trace synthesis: a deterministic generator of "datacenter day" traces
// for experiments and tests (and the `netsim synthtrace` subcommand).
// The shape mirrors what MultiPeriod models analytically — a diurnal
// sinusoid over the trace length with busy episodes riding on it — but
// emitted as a concrete trace file, so the replay path is exercised by
// the same traffic shape the spec-driven generator produces.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// SynthSpec parameterizes SynthesizeTrace.
type SynthSpec struct {
	// Form selects event or rate records; NDJSON selects the record
	// encoding (CSV otherwise).
	Form   TraceForm
	NDJSON bool
	// Slots is the trace length; one day spans the whole trace.
	Slots int
	// Nodes is the node-id space for event records (ids are assigned
	// modulo the replaying network's size).
	Nodes int
	// Window is the slot stride between rate records (TraceRates only).
	Window int
	// Peak is the midday per-node arrival rate before episode boosts.
	Peak float64
	// Seed drives the episode process and event sampling.
	Seed int64
}

// SynthesizeTrace writes a valid trace (ScanTrace-clean) to w. The
// per-slot rate follows a day curve — low at the edges, peaking
// mid-trace — multiplied by a two-state episode process whose boost is
// redrawn per episode. Output is a deterministic function of the spec.
func SynthesizeTrace(w io.Writer, s SynthSpec) error {
	if s.Form != TraceEvents && s.Form != TraceRates {
		return fmt.Errorf("workload: synth: form must be events or rates")
	}
	if s.Slots < 1 {
		return fmt.Errorf("workload: synth: slots %d < 1", s.Slots)
	}
	if s.Form == TraceEvents && s.Nodes < 2 {
		return fmt.Errorf("workload: synth: event traces need >= 2 nodes, got %d", s.Nodes)
	}
	if s.Peak <= 0 || s.Peak > 1 {
		return fmt.Errorf("workload: synth: peak rate %g outside (0,1]", s.Peak)
	}
	window := s.Window
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# synthetic datacenter-day trace: form=%s slots=%d seed=%d peak=%g\n", s.Form, s.Slots, s.Seed, s.Peak)

	// Episode process: mean lengths scale with the trace so short test
	// traces still see several episodes.
	meanOn := math.Max(2, float64(s.Slots)/40)
	meanOff := math.Max(2, float64(s.Slots)/15)
	inEpisode, boost := false, 1.0

	rate := func(slot int) float64 {
		if inEpisode {
			if rng.Float64() < 1/meanOn {
				inEpisode = false
			}
		} else if rng.Float64() < 1/meanOff {
			inEpisode = true
			boost = 1.3 + 1.7*rng.Float64()
		}
		day := 0.08 + 0.92*math.Pow(math.Sin(math.Pi*float64(slot)/float64(s.Slots)), 2)
		r := s.Peak * day
		if inEpisode {
			r *= boost
		}
		if r > 1 {
			r = 1
		}
		return r
	}

	switch s.Form {
	case TraceRates:
		for slot := 0; slot < s.Slots; slot += window {
			r := rate(slot)
			if s.NDJSON {
				fmt.Fprintf(bw, "{\"slot\":%d,\"rate\":%.4f}\n", slot, r)
			} else {
				fmt.Fprintf(bw, "%d,%.4f\n", slot, r)
			}
		}
	case TraceEvents:
		wrote := false
		for slot := 0; slot < s.Slots; slot++ {
			r := rate(slot)
			for u := 0; u < s.Nodes; u++ {
				if rng.Float64() >= r {
					continue
				}
				dst := rng.Intn(s.Nodes - 1)
				if dst >= u {
					dst++
				}
				wrote = true
				if s.NDJSON {
					fmt.Fprintf(bw, "{\"slot\":%d,\"src\":%d,\"dst\":%d}\n", slot, u, dst)
				} else {
					fmt.Fprintf(bw, "%d,%d,%d\n", slot, u, dst)
				}
			}
		}
		if !wrote {
			// ScanTrace rejects record-free traces; pin one idle-slot event.
			if s.NDJSON {
				fmt.Fprintf(bw, "{\"slot\":%d,\"src\":0,\"dst\":1}\n", s.Slots-1)
			} else {
				fmt.Fprintf(bw, "%d,0,1\n", s.Slots-1)
			}
		}
	}
	return bw.Flush()
}
