package workload

import (
	"fmt"

	"otisnet/internal/collective"
	"otisnet/internal/hypergraph"
	"otisnet/internal/sim"
)

// RoundResult records one collective-schedule round replayed through the
// live engine.
type RoundResult struct {
	Round         int // 1-based schedule round
	Transmissions int // scheduled transmissions in the round
	Expected      int // intended receptions (head-set sizes, excluding self)
	Delivered     int // messages the engine actually delivered
	Slots         int // engine slots the round took to drain
}

// ReplayResult is the outcome of replaying a collective schedule.
type ReplayResult struct {
	Rounds    []RoundResult
	Slots     int // total engine slots across rounds
	Injected  int
	Delivered int
	// Complete reports whether the dissemination goal was reached from the
	// deliveries the engine actually made (knowledge tracked per message).
	Complete bool
	// LowerBound is the information-theoretic round lower bound of the
	// collective (internal/collective); a valid complete schedule satisfies
	// len(Rounds) >= LowerBound.
	LowerBound int
}

// ReplayBroadcast drives a one-to-all broadcast schedule from src through
// the live engine: each round's transmissions are expanded into unicast
// messages from the scheduled sender to every head of its coupler, injected
// together, and the engine runs until the round drains — so each round
// experiences real coupler arbitration instead of the static semantics of
// Schedule.Execute. Receivers learn what their sender held at the start of
// the round, exactly as in the static model; Complete reports whether every
// node ends up holding src's data. An error means the engine under-delivered
// a round (impossible with unbounded queues on a static topology) or a
// round failed to drain.
func ReplayBroadcast(sg *hypergraph.StackGraph, sched *collective.Schedule, src int, cfg sim.Config) (*ReplayResult, error) {
	res, know, err := replay(sg, sched, cfg)
	if err != nil {
		return nil, err
	}
	res.LowerBound = collective.BroadcastLowerBound(sg, src)
	res.Complete = true
	for v := 0; v < sg.N(); v++ {
		if !know[v][src] {
			res.Complete = false
			break
		}
	}
	return res, nil
}

// ReplayGossip drives an all-to-all gossip schedule through the live
// engine, with the same unicast expansion and per-round draining as
// ReplayBroadcast; Complete reports whether every node ends up holding
// every node's data.
func ReplayGossip(sg *hypergraph.StackGraph, sched *collective.Schedule, cfg sim.Config) (*ReplayResult, error) {
	res, know, err := replay(sg, sched, cfg)
	if err != nil {
		return nil, err
	}
	res.LowerBound = collective.GossipLowerBound(sg)
	res.Complete = true
	for v := 0; v < sg.N() && res.Complete; v++ {
		for w := 0; w < sg.N(); w++ {
			if !know[v][w] {
				res.Complete = false
				break
			}
		}
	}
	return res, nil
}

// replay is the shared round loop. know[v][w] tracks whether v holds w's
// data; a delivered message from u teaches its destination everything u
// held when the round started (synchronous-round semantics, matching
// collective.Schedule.Execute).
func replay(sg *hypergraph.StackGraph, sched *collective.Schedule, cfg sim.Config) (*ReplayResult, [][]bool, error) {
	n := sg.N()
	topo := sim.NewStackTopology(sg)
	e := sim.NewEngine(topo, cfg)

	know := make([][]bool, n)
	for v := range know {
		know[v] = make([]bool, n)
		know[v][v] = true
	}
	// snapshots holds, per sender of the current round, its knowledge at
	// round start; OnDeliver applies it to the receiver immediately (within
	// a round no receiver transmits, so immediate application is equivalent
	// to the end-of-round batch of the static model).
	snapshots := map[int][]bool{}
	e.OnDeliver = func(msg sim.Message, _ int) {
		snap := snapshots[msg.Src]
		dst := know[msg.Dst]
		for w, h := range snap {
			if h {
				dst[w] = true
			}
		}
	}

	res := &ReplayResult{}
	delivered := 0
	for i, round := range sched.Rounds {
		for k := range snapshots {
			delete(snapshots, k)
		}
		rr := RoundResult{Round: i + 1, Transmissions: len(round)}
		for _, tr := range round {
			if _, ok := snapshots[tr.Node]; !ok {
				snap := make([]bool, n)
				copy(snap, know[tr.Node])
				snapshots[tr.Node] = snap
			}
			for _, h := range sg.Hyperarc(tr.Coupler).Head {
				if h == tr.Node {
					continue
				}
				e.Inject(tr.Node, h)
				rr.Expected++
			}
		}
		// Drain the round: every queued message is one hop from its
		// destination, so each slot with backlog delivers at least one
		// message; the cap only trips if that invariant breaks. Backlog is
		// the O(1) counter — no Metrics copy per drained slot.
		maxSlots := 2*rr.Expected + 4
		for s := 0; s < maxSlots && e.Backlog() > 0; s++ {
			e.Step()
			rr.Slots++
		}
		if e.Backlog() > 0 {
			return nil, nil, fmt.Errorf("workload: round %d failed to drain within %d slots", i+1, maxSlots)
		}
		rr.Delivered = e.Metrics().Delivered - delivered
		delivered = e.Metrics().Delivered
		if rr.Delivered != rr.Expected {
			return nil, nil, fmt.Errorf("workload: round %d delivered %d of %d expected receptions",
				i+1, rr.Delivered, rr.Expected)
		}
		res.Rounds = append(res.Rounds, rr)
		res.Slots += rr.Slots
	}
	m := e.Metrics()
	res.Injected = m.Injected
	res.Delivered = m.Delivered
	return res, know, nil
}
