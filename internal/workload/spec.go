package workload

import (
	"fmt"
	"path/filepath"

	"otisnet/internal/sim"
)

// Kind enumerates the sweepable workload families.
type Kind int

const (
	// KindUniform is the legacy uniform random load (the zero value, so a
	// zero Spec reproduces pre-workload sweeps bit for bit).
	KindUniform Kind = iota
	// KindTranspose is the fixed OTIS transpose permutation pattern.
	KindTranspose
	// KindHotspot skews a fraction of the load toward one group.
	KindHotspot
	// KindBursty modulates uniform load with a two-state on/off process.
	KindBursty
	// KindTrace replays an empirical trace file (see Trace / ScanTrace).
	KindTrace
	// KindMultiPeriod samples an empirical multi-period rate process
	// (diurnal ramp × episodes × bursts-of-bursts; see MultiPeriod).
	KindMultiPeriod
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTranspose:
		return "transpose"
	case KindHotspot:
		return "hotspot"
	case KindBursty:
		return "bursty"
	case KindTrace:
		return "trace"
	case KindMultiPeriod:
		return "multiperiod"
	default:
		return "uniform"
	}
}

// ParseKind maps a CLI/workload name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "uniform":
		return KindUniform, nil
	case "transpose":
		return KindTranspose, nil
	case "hotspot":
		return KindHotspot, nil
	case "bursty":
		return KindBursty, nil
	case "trace":
		return KindTrace, nil
	case "multiperiod":
		return KindMultiPeriod, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q (want uniform, transpose, hotspot, bursty, trace or multiperiod)", s)
}

// Spec is a compact, comparable description of a workload, designed to be a
// sweep-grid axis next to load, mode, wavelengths and faults: it defers
// materializing the generator (which needs the concrete node count, group
// size and offered rate) until the scenario runs. The zero Spec is the
// uniform workload, so sweeps without a workload axis are unchanged.
type Spec struct {
	Kind Kind
	// HotGroup and Fraction parameterize KindHotspot.
	HotGroup int
	Fraction float64
	// MeanOn and MeanOff are the mean burst durations of KindBursty, in
	// slots; OffFactor scales the offered rate in the off state (0 = silent
	// gaps, 1 = no modulation). KindMultiPeriod reuses them as its inner
	// flicker means and inter-episode floor factor.
	MeanOn, MeanOff float64
	OffFactor       float64
	// TracePath, TraceFP and TraceForm parameterize KindTrace. TraceFP is
	// the hex SHA-256 of the trace file's raw bytes (the content address —
	// it, not the path, enters cache keys), TraceForm the record form, both
	// taken by ScanTrace; build trace specs through NewTraceSpec so they
	// are always populated from a validated file.
	TracePath string
	TraceFP   string
	TraceForm TraceForm
	// Period, Amplitude, EpisodeOn, EpisodeOff and RateSigma parameterize
	// KindMultiPeriod (see the MultiPeriod field docs).
	Period                int
	Amplitude             float64
	EpisodeOn, EpisodeOff float64
	RateSigma             float64
}

// IsZero reports whether the spec is the default uniform workload.
func (s Spec) IsZero() bool { return s == Spec{} }

// Label is the human- and CSV-facing workload identifier.
func (s Spec) Label() string {
	switch s.Kind {
	case KindTranspose:
		return "transpose"
	case KindHotspot:
		return fmt.Sprintf("hotspot(g%d,%g)", s.HotGroup, s.Fraction)
	case KindBursty:
		return fmt.Sprintf("bursty(%g/%g,%g)", s.MeanOn, s.MeanOff, s.OffFactor)
	case KindTrace:
		fp := s.TraceFP
		if len(fp) > 8 {
			fp = fp[:8]
		}
		return fmt.Sprintf("trace(%s@%s;%s)", filepath.Base(s.TracePath), fp, s.TraceForm)
	case KindMultiPeriod:
		return fmt.Sprintf("multiperiod(p%d;a%g;ep%g/%g;fl%g/%g;s%g;lo%g)",
			s.Period, s.Amplitude, s.EpisodeOn, s.EpisodeOff, s.MeanOn, s.MeanOff, s.RateSigma, s.OffFactor)
	default:
		return "uniform"
	}
}

// New materializes the generator for a network of n nodes arranged as
// groups of groupSize (0 or 1 when the topology has no group structure),
// injecting at the given per-node rate. Each call returns an independent
// generator, safe for one concurrent scenario each (KindBursty is
// stateful).
//
// Because generation state lives here — never in the engine — a batched
// run (sim.ReplicaSet) can drive one generator per stream group rather
// than per replica: scenarios with equal Spec, rate, seed and slot count
// consume bit-for-bit the same schedule, so the batch draws it once and
// fans the injections to every member. A spec's generator scratch
// (KindBursty's on/off phase) is then per group, armed fresh by each
// sweep batch exactly as a solo run arms it per scenario.
func (s Spec) New(rate float64, n, groupSize int) sim.Traffic {
	switch s.Kind {
	case KindTranspose:
		return NewTranspose(rate, n, groupSize)
	case KindHotspot:
		return Hotspot{Rate: rate, Group: s.HotGroup, GroupSize: groupSize, Fraction: s.Fraction}
	case KindBursty:
		return &Bursty{OnRate: rate, OffRate: s.OffFactor * rate, MeanOn: s.MeanOn, MeanOff: s.MeanOff}
	case KindTrace:
		// Event traces replay verbatim (rate is not consulted); for rate
		// traces the sweep's rate axis scales the recorded schedule.
		return &Trace{Path: s.TracePath, Form: s.TraceForm, Scale: rate}
	case KindMultiPeriod:
		return &MultiPeriod{
			BaseRate: rate,
			Period:   s.Period, Amplitude: s.Amplitude,
			EpisodeOn: s.EpisodeOn, EpisodeOff: s.EpisodeOff,
			MeanOn: s.MeanOn, MeanOff: s.MeanOff,
			RateSigma: s.RateSigma, FloorFactor: s.OffFactor,
		}
	default:
		return Uniform{Rate: rate}
	}
}

// NewTraceSpec scans (validates + fingerprints) the trace file at path
// and returns its KindTrace spec. This is the front door for trace
// workloads: every layer that accepts a trace (CLI flags, GridSpec)
// funnels through it, so a Spec with KindTrace always describes a file
// that parsed cleanly at spec time.
func NewTraceSpec(path string) (Spec, error) {
	info, err := ScanTrace(path)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Kind: KindTrace, TracePath: path, TraceFP: info.Fingerprint, TraceForm: info.Form}, nil
}

// Validate checks the parameter ranges of the spec's kind. Parameters
// belonging to other kinds are not inspected (the cache key zeroes them
// anyway); callers building specs from user input should zero them.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindHotspot:
		if s.HotGroup < 0 {
			return fmt.Errorf("workload: hotspot group %d is negative (indices wrap modulo each topology's group count, but must be >= 0)", s.HotGroup)
		}
		if s.Fraction < 0 || s.Fraction > 1 {
			return fmt.Errorf("workload: hotspot fraction %g outside [0,1]", s.Fraction)
		}
	case KindBursty:
		if s.MeanOn < 1 || s.MeanOff < 1 {
			return fmt.Errorf("workload: bursty mean durations %g/%g must be >= 1 slot", s.MeanOn, s.MeanOff)
		}
		if s.OffFactor < 0 || s.OffFactor > 1 {
			return fmt.Errorf("workload: bursty off factor %g outside [0,1]", s.OffFactor)
		}
	case KindTrace:
		if s.TracePath == "" || s.TraceFP == "" || (s.TraceForm != TraceEvents && s.TraceForm != TraceRates) {
			return fmt.Errorf("workload: trace spec not built from a scanned file (use NewTraceSpec)")
		}
	case KindMultiPeriod:
		if s.Period < 0 {
			return fmt.Errorf("workload: multiperiod period %d is negative", s.Period)
		}
		if s.Amplitude < 0 || s.Amplitude > 1 {
			return fmt.Errorf("workload: multiperiod amplitude %g outside [0,1]", s.Amplitude)
		}
		if s.EpisodeOn < 1 || s.EpisodeOff < 1 {
			return fmt.Errorf("workload: multiperiod episode means %g/%g must be >= 1 slot", s.EpisodeOn, s.EpisodeOff)
		}
		if s.MeanOn < 1 || s.MeanOff < 1 {
			return fmt.Errorf("workload: multiperiod flicker means %g/%g must be >= 1 slot", s.MeanOn, s.MeanOff)
		}
		if s.RateSigma < 0 {
			return fmt.Errorf("workload: multiperiod rate sigma %g is negative", s.RateSigma)
		}
		if s.OffFactor < 0 || s.OffFactor > 1 {
			return fmt.Errorf("workload: multiperiod floor factor %g outside [0,1]", s.OffFactor)
		}
	}
	return nil
}
