package workload

import (
	"fmt"

	"otisnet/internal/sim"
)

// Kind enumerates the sweepable workload families.
type Kind int

const (
	// KindUniform is the legacy uniform random load (the zero value, so a
	// zero Spec reproduces pre-workload sweeps bit for bit).
	KindUniform Kind = iota
	// KindTranspose is the fixed OTIS transpose permutation pattern.
	KindTranspose
	// KindHotspot skews a fraction of the load toward one group.
	KindHotspot
	// KindBursty modulates uniform load with a two-state on/off process.
	KindBursty
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTranspose:
		return "transpose"
	case KindHotspot:
		return "hotspot"
	case KindBursty:
		return "bursty"
	default:
		return "uniform"
	}
}

// ParseKind maps a CLI/workload name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "uniform":
		return KindUniform, nil
	case "transpose":
		return KindTranspose, nil
	case "hotspot":
		return KindHotspot, nil
	case "bursty":
		return KindBursty, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q (want uniform, transpose, hotspot or bursty)", s)
}

// Spec is a compact, comparable description of a workload, designed to be a
// sweep-grid axis next to load, mode, wavelengths and faults: it defers
// materializing the generator (which needs the concrete node count, group
// size and offered rate) until the scenario runs. The zero Spec is the
// uniform workload, so sweeps without a workload axis are unchanged.
type Spec struct {
	Kind Kind
	// HotGroup and Fraction parameterize KindHotspot.
	HotGroup int
	Fraction float64
	// MeanOn and MeanOff are the mean burst durations of KindBursty, in
	// slots; OffFactor scales the offered rate in the off state (0 = silent
	// gaps, 1 = no modulation).
	MeanOn, MeanOff float64
	OffFactor       float64
}

// IsZero reports whether the spec is the default uniform workload.
func (s Spec) IsZero() bool { return s == Spec{} }

// Label is the human- and CSV-facing workload identifier.
func (s Spec) Label() string {
	switch s.Kind {
	case KindTranspose:
		return "transpose"
	case KindHotspot:
		return fmt.Sprintf("hotspot(g%d,%g)", s.HotGroup, s.Fraction)
	case KindBursty:
		return fmt.Sprintf("bursty(%g/%g,%g)", s.MeanOn, s.MeanOff, s.OffFactor)
	default:
		return "uniform"
	}
}

// New materializes the generator for a network of n nodes arranged as
// groups of groupSize (0 or 1 when the topology has no group structure),
// injecting at the given per-node rate. Each call returns an independent
// generator, safe for one concurrent scenario each (KindBursty is
// stateful).
//
// Because generation state lives here — never in the engine — a batched
// run (sim.ReplicaSet) can drive one generator per stream group rather
// than per replica: scenarios with equal Spec, rate, seed and slot count
// consume bit-for-bit the same schedule, so the batch draws it once and
// fans the injections to every member. A spec's generator scratch
// (KindBursty's on/off phase) is then per group, armed fresh by each
// sweep batch exactly as a solo run arms it per scenario.
func (s Spec) New(rate float64, n, groupSize int) sim.Traffic {
	switch s.Kind {
	case KindTranspose:
		return NewTranspose(rate, n, groupSize)
	case KindHotspot:
		return Hotspot{Rate: rate, Group: s.HotGroup, GroupSize: groupSize, Fraction: s.Fraction}
	case KindBursty:
		return &Bursty{OnRate: rate, OffRate: s.OffFactor * rate, MeanOn: s.MeanOn, MeanOff: s.MeanOff}
	default:
		return Uniform{Rate: rate}
	}
}
