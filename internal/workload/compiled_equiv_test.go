package workload_test

// Bit-for-bit equivalence of the compiled-topology engine against the
// frozen legacy reference under every workload kind: the generators are
// engine-agnostic injection sources, so any divergence here isolates an
// engine regression, not a generator one. Each side gets its own
// generator instance — bursty is stateful and never shared across engines.

import (
	"testing"

	"otisnet/internal/legacysim"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/workload"
)

func TestCompiledMatchesLegacyAcrossWorkloadKinds(t *testing.T) {
	const groupSize = 6
	topo := sim.NewStackTopology(stackkautz.New(groupSize, 3, 2).StackGraph())
	n := topo.Nodes()
	specs := []workload.Spec{
		{},
		{Kind: workload.KindTranspose},
		{Kind: workload.KindHotspot, HotGroup: 2, Fraction: 0.4},
		{Kind: workload.KindBursty, MeanOn: 20, MeanOff: 60, OffFactor: 0.1},
	}
	configs := []sim.Config{
		{Seed: 1},
		{Seed: 2, Deflection: true},
		{Seed: 3, Wavelengths: 2},
		{Seed: 4, MaxQueue: 5},
	}
	for _, spec := range specs {
		for _, cfg := range configs {
			got := sim.Run(topo, spec.New(0.3, n, groupSize), 300, 300, cfg)
			want := legacysim.Run(topo, spec.New(0.3, n, groupSize), 300, 300, cfg)
			if got != want {
				t.Errorf("workload %s cfg %+v:\ncompiled %v\nlegacy   %v",
					spec.Label(), cfg, got, want)
			}
			if got.Delivered == 0 {
				t.Errorf("workload %s cfg %+v: nothing delivered; test is vacuous", spec.Label(), cfg)
			}
		}
	}
}
