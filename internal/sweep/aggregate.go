package sweep

import (
	"math"

	"otisnet/internal/faults"
	"otisnet/internal/workload"
)

// Stat is a sample mean with its standard deviation (sample stddev, n-1;
// zero when fewer than two samples).
type Stat struct {
	Mean float64
	Std  float64
}

func newStat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if len(xs) < 2 {
		return Stat{Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return Stat{Mean: mean, Std: math.Sqrt(ss / float64(len(xs)-1))}
}

// PointKey identifies a curve point: everything a grid varies except the
// seed axis, which aggregation collapses.
type PointKey struct {
	Topology    string
	TrafficName string
	Rate        float64
	Mode        Mode
	Wavelengths int
	// Fault is the full fault spec (zero for fault-free points): keying by
	// the spec, not its label, keeps distinct specs that happen to share a
	// label (e.g. same shape, different pinned Seed) as separate points.
	Fault faults.Spec
	// Workload is the full workload spec (zero for uniform points), keyed
	// as a value for the same reason as Fault.
	Workload workload.Spec
}

// CurvePoint is one aggregated point of a saturation/throughput curve:
// statistics over the seeds that share a PointKey.
type CurvePoint struct {
	PointKey
	Seeds         int
	Throughput    Stat // delivered per slot
	PerNodeThr    Stat // delivered per slot per node
	Latency       Stat // mean delivery latency (slots)
	Hops          Stat // mean hops of delivered messages
	DeliveredFrac Stat // delivered / injected
	PeakQueue     Stat
	Deflections   Stat
	// Fault-axis statistics (all zero for fault-free points).
	Unroutable    Stat
	LostToFaults  Stat
	RecoverySlots Stat
}

// Aggregate groups results by PointKey (preserving first-appearance order)
// and reduces each group's metrics to mean/stddev over its seeds. Feed it
// the output of Runner.Run on a grid with several seeds per point to get
// curve points with error bars.
func Aggregate(results []Result) []CurvePoint {
	type group struct {
		order int
		runs  []Result
	}
	groups := make(map[PointKey]*group)
	var keys []PointKey
	for _, res := range results {
		s := res.Scenario
		key := PointKey{
			Topology:    s.Topology.Name,
			TrafficName: s.TrafficName,
			Rate:        s.Rate,
			Mode:        s.Mode,
			Wavelengths: s.Wavelengths,
			Fault:       s.Fault,
			Workload:    s.Workload,
		}
		g, ok := groups[key]
		if !ok {
			g = &group{order: len(keys)}
			groups[key] = g
			keys = append(keys, key)
		}
		g.runs = append(g.runs, res)
	}
	pts := make([]CurvePoint, len(keys))
	for i, key := range keys {
		g := groups[key]
		collect := func(f func(m Result) float64) Stat {
			xs := make([]float64, len(g.runs))
			for j, r := range g.runs {
				xs[j] = f(r)
			}
			return newStat(xs)
		}
		pts[i] = CurvePoint{
			PointKey: key,
			Seeds:    len(g.runs),
			Throughput: collect(func(r Result) float64 {
				return r.Metrics.Throughput()
			}),
			PerNodeThr: collect(func(r Result) float64 {
				return r.Metrics.Throughput() / float64(r.Scenario.Topology.Topo.Nodes())
			}),
			Latency: collect(func(r Result) float64 { return r.Metrics.AvgLatency() }),
			Hops:    collect(func(r Result) float64 { return r.Metrics.AvgHops() }),
			DeliveredFrac: collect(func(r Result) float64 {
				if r.Metrics.Injected == 0 {
					return 1
				}
				return float64(r.Metrics.Delivered) / float64(r.Metrics.Injected)
			}),
			PeakQueue:     collect(func(r Result) float64 { return float64(r.Metrics.PeakQueue) }),
			Deflections:   collect(func(r Result) float64 { return float64(r.Metrics.Deflections) }),
			Unroutable:    collect(func(r Result) float64 { return float64(r.Metrics.Unroutable) }),
			LostToFaults:  collect(func(r Result) float64 { return float64(r.Metrics.LostToFaults) }),
			RecoverySlots: collect(func(r Result) float64 { return float64(r.Metrics.RecoverySlots) }),
		}
	}
	return pts
}
