package sweep

// Batched dispatch: instead of handing workers one scenario at a time,
// the runner groups grid points by TopologyFingerprint, orders each group
// so stream-siblings (points whose injection stream is identical — same
// workload, rate, seed and slot count, differing only in discipline,
// queue bound or wavelength count) sit adjacent, and chunks the result
// into batches of up to Replicas scenarios. A worker executes a batch on
// one sim.ReplicaSet over the shared compiled base: every replica's
// mutable state comes out of the set's structure-of-arrays slabs, stream
// siblings draw their injections once per slot, and fault scenarios get
// per-replica wrappers from a per-slot pool. Results are bit-for-bit
// identical to per-scenario runs — both paths execute the same replica
// core — so cache keys, journal contents and shard merges are unchanged;
// only cancellation granularity coarsens from point to batch.

import (
	"context"
	"sync"
	"time"

	"otisnet/internal/faults"
	"otisnet/internal/obs"
	"otisnet/internal/sim"
	"otisnet/internal/workload"
)

// AutoReplicas selects the batch-size heuristic: just enough replicas to
// keep every stream-sibling family in one batch, capped at
// maxAutoReplicas so the combined ring working set of a saturated batch
// stays cache-resident.
const AutoReplicas = -1

// maxAutoReplicas caps the auto heuristic. Batches step their replicas in
// lockstep, so the per-slot working set grows linearly with R; past a
// handful of saturated replicas the queues fall out of L2 and the shared
// route-table reads stop being the dominant traffic.
const maxAutoReplicas = 8

// replicas resolves the configured batch size for a point set.
func (r Runner) replicas(points []Scenario) int {
	if r.Replicas >= 0 {
		return r.Replicas
	}
	// Auto: the largest stream-sibling family, so every set of scenarios
	// that can share one injection stream lands in a single batch. Bigger
	// batches only dilute cache locality — the per-slot working set grows
	// with R while the sharing ratio stays fixed — so measured sweeps favor
	// the smallest R that captures the sharing (see BENCH_6.json).
	largest, counts := 0, map[streamKey]int{}
	for i := range points {
		p := &points[i]
		if p.Traffic != nil {
			continue // explicit traffic: never shared
		}
		k := streamKey{
			workload: p.Workload, groupSize: p.Topology.GroupSize,
			rate: p.Rate, seed: p.Seed, slots: p.Slots,
		}
		counts[k]++
		if counts[k] > largest {
			largest = counts[k]
		}
	}
	rep := largest
	if rep > maxAutoReplicas {
		rep = maxAutoReplicas
	}
	if rep < 2 {
		rep = 2
	}
	return rep
}

// streamKey identifies an injection stream: scenarios with equal keys
// (and nil explicit Traffic) consume bit-for-bit the same generated
// schedule, so a batch feeds them from one shared stream group.
type streamKey struct {
	workload  workload.Spec
	groupSize int
	rate      float64
	seed      int64
	slots     int
}

// planBatches chunks point indices into batches of at most rep scenarios,
// each batch over one topology fingerprint, with stream-siblings adjacent
// so they land in the same batch whenever the chunking allows. Order is
// deterministic: fingerprint groups in first-appearance order, streams
// within a group in first-appearance order.
func planBatches(points []Scenario, rep int) [][]int {
	// Fingerprint groups, first-appearance ordered.
	var fps []string
	byFP := map[string][]int{}
	for i := range points {
		fp := TopologyFingerprint(points[i].Topology.Topo)
		if _, ok := byFP[fp]; !ok {
			fps = append(fps, fp)
		}
		byFP[fp] = append(byFP[fp], i)
	}
	var batches [][]int
	for _, fp := range fps {
		idxs := byFP[fp]
		// Reorder so stream-siblings are adjacent: keys in
		// first-appearance order, unhashable points as singletons.
		var keys []streamKey
		byKey := map[streamKey][]int{}
		var ordered []int
		for _, i := range idxs {
			p := &points[i]
			if p.Traffic != nil {
				ordered = append(ordered, -1-i) // singleton marker
				continue
			}
			k := streamKey{
				workload: p.Workload, groupSize: p.Topology.GroupSize,
				rate: p.Rate, seed: p.Seed, slots: p.Slots,
			}
			if _, ok := byKey[k]; !ok {
				keys = append(keys, k)
				ordered = append(ordered, len(keys)-1)
			}
			byKey[k] = append(byKey[k], i)
		}
		flat := idxs[:0:0]
		for _, o := range ordered {
			if o < 0 {
				flat = append(flat, -1-o)
			} else {
				flat = append(flat, byKey[keys[o]]...)
			}
		}
		for len(flat) > 0 {
			take := rep
			if take > len(flat) {
				take = len(flat)
			}
			batches = append(batches, flat[:take])
			flat = flat[take:]
		}
	}
	return batches
}

// runBatched is RunCached's batched dispatch path (Runner.Replicas > 1 or
// AutoReplicas). Cache lookups, stores and progress events keep per-point
// granularity; cancellation coarsens to per-batch (an in-flight batch
// finishes and is cached, unstarted batches are skipped).
func (r Runner) runBatched(ctx context.Context, points []Scenario, cache PointCache, progress Progress) ([]Result, error) {
	rep := r.replicas(points)
	batches := planBatches(points, rep)
	results := make([]Result, len(points))
	err := r.fanScopedCtx(ctx, len(batches), func() (func(int), func()) {
		w := &batchWorker{rep: rep, par: r.parallel(), sh: obs.NextShard()}
		return func(bi int) { w.run(batches[bi], points, results, cache, progress) }, w.release
	})
	return results, err
}

// setPool recycles warmed batchSets across Runner invocations. A
// batchSet's dominant allocation cost is not the topology compile but
// the ring warm-up: every saturated replica's queue buffers double up
// from empty toward the sweep's high-water mark, and while
// ReplicaSet.Configure keeps those buffers across batches, a fresh
// Runner used to pay the whole warm-up again. Pooling per topology
// fingerprint carries the warmed storage across sweeps, so a process
// that sweeps the same structures repeatedly (sweepd, benchmarks,
// repeated CLI grids) allocates its ring chains once. Reuse is sound
// exactly because the fingerprint is content-addressed: equal
// fingerprints mean simulation-equivalent structure, and Configure
// re-arms every replica from its spec alone, so results stay
// bit-for-bit identical to a cold set.
var setPool struct {
	mu   sync.Mutex
	sets []batchSet
}

// maxPooledSets bounds the recycler so a process that touches many
// distinct topologies cannot accumulate unbounded warmed slabs; sets
// released beyond the cap are dropped for the GC.
const maxPooledSets = 16

// release returns the worker's warmed sets to the recycler. Parallel
// crews are torn down first — pooled sets must not park goroutines —
// but their ring and slab storage stays warm.
func (w *batchWorker) release() {
	setPool.mu.Lock()
	for i := range w.sets {
		w.sets[i].rset.Close()
		if len(setPool.sets) < maxPooledSets {
			setPool.sets = append(setPool.sets, w.sets[i])
		}
	}
	setPool.mu.Unlock()
	w.sets = nil
}

// batchWorker is one goroutine's reusable batched-simulation state: a
// ReplicaSet (plus fault-wrapper pool) per base fingerprint, and the
// per-batch assembly buffers, all preallocated once and reused so running
// a batch allocates nothing in steady state.
type batchWorker struct {
	rep  int
	par  int // intra-run shard count each set is armed with
	sh   int // counter shard hint, one per worker goroutine
	sets []batchSet

	// Per-batch assembly scratch, reused across batches.
	specs  []sim.ReplicaSpec
	misses []int    // point index per configured replica slot
	keys   []string // cache key per configured replica slot ("" when unhashable)
	gids   map[streamKey]int
}

// batchSet is the reusable state for one base fingerprint: the replica
// set compiled over the first-seen base topology and one fault wrapper
// per replica slot (SetPlan re-arms a wrapper; its compiled view inside
// the set is reused and recompiled only when a past batch dirtied it).
type batchSet struct {
	fp   string
	base sim.Topology
	rset *sim.ReplicaSet
	fts  []*faults.FaultedTopology
}

func (w *batchWorker) set(fp string, base sim.Topology) *batchSet {
	for i := range w.sets {
		if w.sets[i].fp == fp {
			return &w.sets[i]
		}
	}
	if bs, ok := takePooled(fp); ok {
		// A recycled set keeps its own base (and the fault wrappers over
		// it): equal fingerprints guarantee identical simulation, and the
		// wrappers' plans are regenerated per batch via SetPlan.
		for len(bs.fts) < w.rep {
			bs.fts = append(bs.fts, nil)
		}
		w.sets = append(w.sets, bs)
	} else {
		w.sets = append(w.sets, batchSet{
			fp: fp, base: base, rset: sim.NewReplicaSet(base), fts: make([]*faults.FaultedTopology, w.rep),
		})
	}
	bs := &w.sets[len(w.sets)-1]
	if w.par > 1 {
		bs.rset.SetParallel(w.par)
	}
	return bs
}

// takePooled pops a recycled set for the fingerprint, if one is parked.
func takePooled(fp string) (batchSet, bool) {
	setPool.mu.Lock()
	defer setPool.mu.Unlock()
	for i := range setPool.sets {
		if setPool.sets[i].fp == fp {
			bs := setPool.sets[i]
			last := len(setPool.sets) - 1
			setPool.sets[i] = setPool.sets[last]
			setPool.sets[last] = batchSet{}
			setPool.sets = setPool.sets[:last]
			return bs, true
		}
	}
	return batchSet{}, false
}

// run executes one batch: cache hits are peeled off point by point, the
// misses are armed as replicas (stream-siblings sharing one group) and
// run to completion, and every computed point is stored and reported.
func (w *batchWorker) run(batch []int, points []Scenario, results []Result, cache PointCache, progress Progress) {
	w.specs = w.specs[:0]
	w.misses = w.misses[:0]
	w.keys = w.keys[:0]
	if w.gids == nil {
		w.gids = make(map[streamKey]int, w.rep)
	} else {
		clear(w.gids)
	}

	sweepObs.started.AddShard(w.sh, int64(len(batch)))
	var set *batchSet
	for _, pi := range batch {
		p := &points[pi]
		key, hashable := "", false
		if cache != nil {
			if key, hashable = p.CacheKey(); hashable {
				if m, ok := cache.Lookup(key); ok {
					sweepObs.cached.AddShard(w.sh, 1)
					results[pi] = Result{Scenario: *p, Metrics: m}
					if progress != nil {
						progress(pi, results[pi], true)
					}
					continue
				}
			}
		}
		if set == nil {
			set = w.set(TopologyFingerprint(p.Topology.Topo), p.Topology.Topo)
		}
		slot := len(w.specs)
		gid := -1
		if p.Traffic == nil {
			k := streamKey{
				workload: p.Workload, groupSize: p.Topology.GroupSize,
				rate: p.Rate, seed: p.Seed, slots: p.Slots,
			}
			if g, ok := w.gids[k]; ok {
				gid = g
			} else {
				gid = len(w.gids)
				w.gids[k] = gid
			}
		}
		sp := sim.ReplicaSpec{
			Config:      p.Config(),
			Traffic:     p.traffic(),
			Slots:       p.Slots,
			Drain:       p.Drain,
			StreamGroup: gid,
		}
		if !p.Fault.IsZero() {
			ft := set.fts[slot]
			plan := p.Fault.Plan(set.base, p.Seed)
			if ft == nil {
				ft = faults.Wrap(set.base, plan)
				set.fts[slot] = ft
			} else {
				ft.SetPlan(plan)
			}
			sp.Topo = ft
		}
		w.specs = append(w.specs, sp)
		w.misses = append(w.misses, pi)
		w.keys = append(w.keys, key)
	}
	if len(w.specs) == 0 {
		return
	}

	sweepObs.batchSize.Observe(float64(len(w.specs)))
	t0 := time.Now()
	set.rset.Configure(w.specs)
	set.rset.RunAll()
	sweepObs.busyNS.AddShard(w.sh, time.Since(t0).Nanoseconds())
	sweepObs.completed.AddShard(w.sh, int64(len(w.misses)))

	for slot, pi := range w.misses {
		m := set.rset.Metrics(slot)
		if w.keys[slot] != "" {
			cache.Store(w.keys[slot], m)
		}
		results[pi] = Result{Scenario: points[pi], Metrics: m}
		if progress != nil {
			progress(pi, results[pi], false)
		}
	}
}
