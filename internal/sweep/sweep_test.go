package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func skTopo() Topology {
	return Topology{Name: "SK(3,2,2)", Topo: sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph())}
}

func popsTopo() Topology {
	return Topology{Name: "POPS(4,4)", Topo: sim.NewStackTopology(pops.New(4, 4).StackGraph())}
}

// The core acceptance property: a concurrent sweep reproduces sequential
// single-run metrics bit-for-bit for every (topology, load, seed) point.
func TestSweepMatchesSequentialRunsExactly(t *testing.T) {
	grid := Grid{
		Topologies:  []Topology{skTopo(), popsTopo()},
		Rates:       []float64{0.05, 0.2, 0.6},
		Seeds:       []int64{1, 2, 3},
		Modes:       []Mode{StoreAndForward, Deflection},
		Wavelengths: []int{1, 2},
		Slots:       200,
		Drain:       200,
	}
	points := grid.Points()
	want := len(grid.Topologies) * len(grid.Rates) * len(grid.Seeds) * len(grid.Modes) * len(grid.Wavelengths)
	if len(points) != want {
		t.Fatalf("grid expanded to %d points, want %d", len(points), want)
	}
	results := Runner{Workers: 8}.Run(points)
	for i, res := range results {
		p := points[i]
		seq := sim.Run(p.Topology.Topo, sim.UniformTraffic{Rate: p.Rate}, p.Slots, p.Drain, p.Config())
		if res.Metrics != seq {
			t.Fatalf("%s: sweep metrics diverge from sequential run:\nsweep: %v\nseq:   %v",
				p.Label(), res.Metrics, seq)
		}
	}
}

// Worker count must not change results, only wall-clock.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{skTopo()},
		Rates:      []float64{0.1, 0.4},
		Seeds:      []int64{7, 8, 9},
		Slots:      150,
		Drain:      150,
	}
	one := Runner{Workers: 1}.RunGrid(grid)
	many := Runner{Workers: 16}.RunGrid(grid)
	if len(one) != len(many) {
		t.Fatalf("result counts differ: %d vs %d", len(one), len(many))
	}
	for i := range one {
		if one[i].Metrics != many[i].Metrics {
			t.Fatalf("point %d differs between 1 and 16 workers", i)
		}
	}
}

func TestGridDefaults(t *testing.T) {
	pts := Grid{Topologies: []Topology{popsTopo()}}.Points()
	if len(pts) != 1 {
		t.Fatalf("default grid should expand to one point, got %d", len(pts))
	}
	p := pts[0]
	if p.Rate != 0.2 || p.Seed != 1 || p.Mode != StoreAndForward || p.Wavelengths != 1 || p.Slots != 1000 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if p.TrafficName != "uniform" {
		t.Fatalf("default traffic name = %q", p.TrafficName)
	}
}

func TestAggregateStats(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{skTopo()},
		Rates:      []float64{0.3},
		Seeds:      []int64{1, 2, 3, 4},
		Slots:      200,
		Drain:      200,
	}
	results := Runner{}.RunGrid(grid)
	curve := Aggregate(results)
	if len(curve) != 1 {
		t.Fatalf("expected one curve point, got %d", len(curve))
	}
	pt := curve[0]
	if pt.Seeds != 4 {
		t.Fatalf("curve point aggregates %d seeds, want 4", pt.Seeds)
	}
	// Recompute the mean by hand.
	var sum float64
	for _, r := range results {
		sum += r.Metrics.Throughput()
	}
	if mean := sum / 4; math.Abs(pt.Throughput.Mean-mean) > 1e-12 {
		t.Fatalf("throughput mean %v, want %v", pt.Throughput.Mean, mean)
	}
	// Different seeds under load give different throughput, so stddev > 0.
	if pt.Throughput.Std <= 0 {
		t.Fatalf("expected positive stddev over seeds, got %v", pt.Throughput.Std)
	}
}

func TestAggregateGroupsByKeyNotSeed(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{skTopo()},
		Rates:      []float64{0.1, 0.2},
		Seeds:      []int64{1, 2},
		Modes:      []Mode{StoreAndForward, Deflection},
		Slots:      100,
		Drain:      100,
	}
	curve := Aggregate(Runner{}.RunGrid(grid))
	if len(curve) != 4 { // 2 rates x 2 modes, seeds collapsed
		t.Fatalf("expected 4 curve points, got %d", len(curve))
	}
	for _, p := range curve {
		if p.Seeds != 2 {
			t.Fatalf("each point should aggregate 2 seeds: %+v", p)
		}
	}
}

func TestSaturateMatchesSequentialSearch(t *testing.T) {
	grid := Grid{
		Topologies:  []Topology{skTopo(), popsTopo()},
		Wavelengths: []int{1, 2},
	}
	pts := Runner{Workers: 4}.Saturate(grid, 150, 0.95, 11)
	if len(pts) != 4 {
		t.Fatalf("expected 4 saturation points, got %d", len(pts))
	}
	for _, p := range pts {
		var topo sim.Topology
		for _, tp := range grid.Topologies {
			if tp.Name == p.Topology {
				topo = tp.Topo
			}
		}
		cfg := sim.Config{Seed: 11, Wavelengths: p.Wavelengths, Deflection: p.Mode == Deflection}
		want := sim.SaturationSearch(topo, 150, 0.95, cfg)
		if p.Rate != want {
			t.Fatalf("%s w=%d: concurrent saturation %v != sequential %v",
				p.Topology, p.Wavelengths, p.Rate, want)
		}
	}
}

func TestWriteResultsCSV(t *testing.T) {
	results := Runner{}.RunGrid(Grid{
		Topologies: []Topology{popsTopo()},
		Rates:      []float64{0.1},
		Seeds:      []int64{1, 2},
		Slots:      100,
	})
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "topology,traffic,workload,rate,mode,") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
}

func TestWriteCurveJSONRoundTrips(t *testing.T) {
	curve := Aggregate(Runner{}.RunGrid(Grid{
		Topologies: []Topology{popsTopo()},
		Rates:      []float64{0.1, 0.3},
		Seeds:      []int64{1, 2, 3},
		Slots:      100,
	}))
	var buf bytes.Buffer
	if err := WriteCurveJSON(&buf, curve); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("curve JSON does not parse: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d curve points, want 2", len(decoded))
	}
	if decoded[0]["seeds"].(float64) != 3 {
		t.Fatalf("first point seeds = %v, want 3", decoded[0]["seeds"])
	}
}

func TestModeString(t *testing.T) {
	if StoreAndForward.String() != "store-and-forward" || Deflection.String() != "hot-potato" {
		t.Fatal("mode names changed; CSV/JSON consumers depend on them")
	}
}

// --- fault axis ---

func TestFaultAxisZeroSpecMatchesFaultFreeSweep(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{skTopo()},
		Rates:      []float64{0.3},
		Seeds:      []int64{1, 2},
		Slots:      200,
		Drain:      200,
	}
	plain := Runner{}.RunGrid(grid)
	grid.Faults = []faults.Spec{{}}
	withAxis := Runner{}.RunGrid(grid)
	if len(plain) != len(withAxis) {
		t.Fatalf("point counts differ: %d vs %d", len(plain), len(withAxis))
	}
	for i := range plain {
		if plain[i].Metrics != withAxis[i].Metrics {
			t.Fatalf("zero fault spec changed results at point %d", i)
		}
	}
}

// The acceptance property of the degradation sweep: throughput is monotone
// non-increasing in the number of injected node faults (same seeds, nested
// fault sets).
func TestFaultSweepDegradationMonotone(t *testing.T) {
	topo := Topology{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())}
	specs := make([]faults.Spec, 0, 4)
	for f := 0; f <= 3; f++ {
		specs = append(specs, faults.Spec{Kind: faults.KindNode, Count: f, Slot: 0, Seed: 99})
	}
	grid := Grid{
		Topologies: []Topology{topo},
		Rates:      []float64{0.5},
		Seeds:      []int64{1, 2, 3},
		Slots:      300,
		Drain:      300,
		Faults:     specs,
	}
	curve := Aggregate(Runner{}.RunGrid(grid))
	if len(curve) != len(specs) {
		t.Fatalf("expected %d curve points, got %d", len(specs), len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Throughput.Mean > curve[i-1].Throughput.Mean {
			t.Fatalf("degradation curve not monotone: %d faults -> %.4f, %d faults -> %.4f",
				i-1, curve[i-1].Throughput.Mean, i, curve[i].Throughput.Mean)
		}
	}
	if curve[0].LostToFaults.Mean != 0 {
		t.Fatalf("fault-free point lost messages to faults: %+v", curve[0])
	}
	if last := curve[len(curve)-1]; last.Unroutable.Mean+last.LostToFaults.Mean == 0 {
		t.Fatalf("faulted points should lose or fail to route some messages: %+v", last)
	}
}

func TestFaultColumnInOutputs(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{popsTopo()},
		Rates:      []float64{0.2},
		Seeds:      []int64{1},
		Slots:      100,
		Faults:     []faults.Spec{{}, {Kind: faults.KindNode, Count: 1, Slot: 10}},
	}
	results := Runner{}.RunGrid(grid)
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ",fault,") || !strings.Contains(out, "node×1@10") {
		t.Fatalf("raw CSV missing fault column:\n%s", out)
	}
	buf.Reset()
	if err := WriteCurveCSV(&buf, Aggregate(results)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "node×1@10") {
		t.Fatalf("curve CSV missing fault label:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteCurveJSON(&buf, Aggregate(results)); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0]["fault"] != "none" || decoded[1]["fault"] != "node×1@10" {
		t.Fatalf("curve JSON fault labels wrong: %v, %v", decoded[0]["fault"], decoded[1]["fault"])
	}
}

// Distinct fault specs that share a display label (same shape, different
// pinned seed) must stay separate curve points: aggregation keys on the
// full spec, not its label.
func TestAggregateKeepsSameLabelFaultSpecsApart(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{skTopo()},
		Rates:      []float64{0.3},
		Seeds:      []int64{1, 2},
		Slots:      100,
		Faults: []faults.Spec{
			{Kind: faults.KindNode, Count: 2, Slot: 10, Seed: 7},
			{Kind: faults.KindNode, Count: 2, Slot: 10, Seed: 8},
		},
	}
	curve := Aggregate(Runner{}.RunGrid(grid))
	if len(curve) != 2 {
		t.Fatalf("expected 2 curve points for 2 distinct specs, got %d", len(curve))
	}
	if curve[0].Fault.Label() != curve[1].Fault.Label() {
		t.Fatalf("test premise broken: labels differ (%q vs %q)",
			curve[0].Fault.Label(), curve[1].Fault.Label())
	}
	if curve[0].Seeds != 2 || curve[1].Seeds != 2 {
		t.Fatalf("each spec should aggregate its 2 traffic seeds: %+v", curve)
	}
}

// Engine reuse must be invisible: a single worker drives every scenario —
// faulted and fault-free, across workloads and modes — through the same
// cached engines (Reset between scenarios, SetPlan between fault plans),
// and each result must still equal a standalone run on fresh state.
func TestEngineReuseMatchesStandaloneScenarios(t *testing.T) {
	grid := Grid{
		Topologies: []Topology{skTopo(), popsTopo()},
		Rates:      []float64{0.3},
		Seeds:      []int64{1, 2},
		Modes:      []Mode{StoreAndForward, Deflection},
		Slots:      150,
		Drain:      150,
		Faults: []faults.Spec{
			{},
			{Kind: faults.KindNode, Count: 2, Slot: 20},
			{Kind: faults.KindCoupler, Count: 1, Slot: 10, Seed: 4},
		},
	}
	points := grid.Points()
	results := Runner{Workers: 1}.Run(points)
	for i, res := range results {
		p := points[i]
		if standalone := p.Run(); res.Metrics != standalone {
			t.Fatalf("%s: reused-engine metrics diverge from standalone:\nsweep:      %v\nstandalone: %v",
				p.Label(), res.Metrics, standalone)
		}
	}
}
