package sweep

// Sweep observability: per-point and per-batch counters feeding the
// shared obs.Default registry. Each worker goroutine takes one counter
// shard at construction (obs.NextShard) so a saturated pool increments
// private cache lines; aggregation happens only when the registry is
// read. Busy time is wall clock spent inside engine execution — cache
// hits and dispatch bookkeeping are excluded — so
// busy_ns / (elapsed * workers) approximates pool utilization.

import "otisnet/internal/obs"

// sweepObs is the sweep metric family, registered at package init so
// /metrics exposes the families before the first grid runs.
var sweepObs = struct {
	started   *obs.Counter
	completed *obs.Counter
	cached    *obs.Counter
	busyNS    *obs.Counter
	batchSize *obs.Histogram
}{
	started: obs.Default().Counter("netsim_sweep_points_started_total",
		"Grid points picked up by a sweep worker (computed, cached or skipped)."),
	completed: obs.Default().Counter("netsim_sweep_points_completed_total",
		"Grid points computed by an engine (cache misses run to completion)."),
	cached: obs.Default().Counter("netsim_sweep_points_cached_total",
		"Grid points served from the result cache without touching an engine."),
	busyNS: obs.Default().Counter("netsim_sweep_worker_busy_ns_total",
		"Wall-clock nanoseconds sweep workers spent executing engines."),
	batchSize: obs.Default().Histogram("netsim_sweep_batch_points",
		"Cache-missing points executed per ReplicaSet batch in batched dispatch.",
		[]float64{1, 2, 4, 8, 16}),
}
