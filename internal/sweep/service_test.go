package sweep_test

// Service-layer tests: content-addressed scenario keys, shard split/merge
// equivalence against single-process runs, and cached execution (warm runs
// compute nothing, progress events cover every point, cancellation stops
// handing out work).

import (
	"context"
	"errors"
	"sync"
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/sweep"
	"otisnet/internal/workload"
)

// serviceGrid is the small mixed grid (two topologies, fault and workload
// axes) the service-layer tests run: 2 topos x 2 rates x 2 seeds x 2
// workloads x 2 faults = 32 points.
func serviceGrid() sweep.Grid {
	return sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(3,2,2)", Topo: sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph()), GroupSize: 3},
			{Name: "POPS(4,2)", Topo: sim.NewStackTopology(pops.New(4, 2).StackGraph()), GroupSize: 4},
		},
		Rates: []float64{0.1, 0.3},
		Seeds: []int64{1, 2},
		Slots: 150,
		Drain: 150,
		Workloads: []workload.Spec{
			{},
			{Kind: workload.KindHotspot, HotGroup: 1, Fraction: 0.4},
		},
		Faults: []faults.Spec{
			{},
			{Kind: faults.KindNode, Count: 1, Slot: 40},
		},
	}
}

func TestCacheKeyIdentifiesTheComputation(t *testing.T) {
	points := serviceGrid().Points()
	seen := map[string]int{}
	for i, p := range points {
		key, ok := p.CacheKey()
		if !ok {
			t.Fatalf("point %d (%s) not hashable", i, p.Label())
		}
		if j, dup := seen[key]; dup {
			t.Fatalf("points %d and %d share key %s:\n%s\n%s", j, i, key, points[j].Label(), p.Label())
		}
		seen[key] = i
	}

	p := points[0]
	key, _ := p.CacheKey()

	// Display-only fields must not move the key: renaming the topology or
	// the traffic label changes no simulated bit.
	renamed := p
	renamed.Topology.Name = "production-fabric-7"
	renamed.TrafficName = "légende"
	if k2, _ := renamed.CacheKey(); k2 != key {
		t.Errorf("display-name change moved the key")
	}

	// Parameter spellings the engine cannot distinguish hash identically.
	w0, w1 := p, p
	w0.Wavelengths, w1.Wavelengths = 0, 1
	k0, _ := w0.CacheKey()
	k1, _ := w1.CacheKey()
	if k0 != k1 {
		t.Errorf("wavelengths 0 and 1 are the same engine but hash differently")
	}
	junkFault := p
	junkFault.Fault = faults.Spec{Kind: faults.KindCoupler, Count: 0, Slot: 999}
	if kf, _ := junkFault.CacheKey(); kf != key {
		t.Errorf("count-0 fault spec is fault-free but hashed differently")
	}

	// Parameters the engine does read must move the key.
	for name, mutate := range map[string]func(*sweep.Scenario){
		"rate":  func(s *sweep.Scenario) { s.Rate += 0.05 },
		"seed":  func(s *sweep.Scenario) { s.Seed++ },
		"mode":  func(s *sweep.Scenario) { s.Mode = sweep.Deflection },
		"waves": func(s *sweep.Scenario) { s.Wavelengths = 2 },
		"maxq":  func(s *sweep.Scenario) { s.MaxQueue = 3 },
		"slots": func(s *sweep.Scenario) { s.Slots++ },
		"drain": func(s *sweep.Scenario) { s.Drain++ },
		"fault": func(s *sweep.Scenario) { s.Fault = faults.Spec{Kind: faults.KindNode, Count: 2, Slot: 40} },
		"workload": func(s *sweep.Scenario) {
			s.Workload = workload.Spec{Kind: workload.KindBursty, MeanOn: 10, MeanOff: 20}
		},
	} {
		q := p
		mutate(&q)
		if kq, _ := q.CacheKey(); kq == key {
			t.Errorf("mutating %s did not move the key", name)
		}
	}

	// An explicit Traffic generator is opaque: never hashable.
	opaque := p
	opaque.Traffic = sim.UniformTraffic{Rate: 0.2}
	if _, ok := opaque.CacheKey(); ok {
		t.Errorf("scenario with an explicit Traffic value claims to be hashable")
	}
}

func TestTopologyFingerprintIsStructural(t *testing.T) {
	a := sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph())
	b := sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph())
	c := sim.NewStackTopology(pops.New(4, 2).StackGraph())
	if sweep.TopologyFingerprint(a) != sweep.TopologyFingerprint(b) {
		t.Errorf("independently built SK(3,2,2) instances fingerprint differently")
	}
	if sweep.TopologyFingerprint(a) == sweep.TopologyFingerprint(c) {
		t.Errorf("SK(3,2,2) and POPS(4,2) share a fingerprint")
	}
	// Memoized second call returns the same value.
	if sweep.TopologyFingerprint(a) != sweep.TopologyFingerprint(a) {
		t.Errorf("fingerprint memoization unstable")
	}
}

func TestShardedRunMergesBitForBit(t *testing.T) {
	points := serviceGrid().Points()
	want := sweep.Runner{}.Run(points)
	for _, shards := range []int{2, 3, 5} {
		var rows [][]sweep.ShardResult
		for si := 0; si < shards; si++ {
			shard, err := sweep.ShardPoints(points, si, shards)
			if err != nil {
				t.Fatal(err)
			}
			// Each shard on its own runner, as separate processes would.
			res := sweep.Runner{Workers: 2}.Run(shard.Points)
			rows = append(rows, shard.ShardResults(res))
		}
		got, err := sweep.MergeShardResults(points, rows...)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d shards: %d results, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i].Metrics != want[i].Metrics {
				t.Fatalf("%d shards: point %d (%s) differs:\nmerged %v\nsingle %v",
					shards, i, want[i].Scenario.Label(), got[i].Metrics, want[i].Metrics)
			}
		}
	}
}

func TestMergeShardResultsRejectsBadInput(t *testing.T) {
	points := serviceGrid().Points()[:4]
	shard, err := sweep.ShardPoints(points, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := shard.ShardResults(sweep.Runner{}.Run(points))

	if _, err := sweep.MergeShardResults(points, rows[:len(rows)-1]); err == nil {
		t.Errorf("missing point not rejected")
	}
	conflict := append(append([]sweep.ShardResult{}, rows...), rows[0])
	conflict[len(conflict)-1].Metrics.Delivered++
	if _, err := sweep.MergeShardResults(points, conflict); err == nil {
		t.Errorf("conflicting duplicate not rejected")
	}
	wrongKey := append([]sweep.ShardResult{}, rows...)
	wrongKey[1].Key = "deadbeef"
	if _, err := sweep.MergeShardResults(points, wrongKey); err == nil {
		t.Errorf("key mismatch not rejected")
	}
	overlap := [][]sweep.ShardResult{rows, rows[:2]} // identical duplicates are fine
	if _, err := sweep.MergeShardResults(points, overlap...); err != nil {
		t.Errorf("identical duplicates rejected: %v", err)
	}
	if _, err := sweep.ShardPoints(points, 3, 3); err == nil {
		t.Errorf("out-of-range shard index not rejected")
	}

	// Same-index duplicates that disagree on the key: for hashable points
	// the per-point key check arbitrates, but an unhashable point (opaque
	// Traffic) has no reference key — the duplicate rows must agree with
	// each other, even when their metrics happen to match.
	opaque := append([]sweep.Scenario{}, points...)
	opaque[1].Traffic = sim.UniformTraffic{Rate: opaque[1].Rate}
	oShard, err := sweep.ShardPoints(opaque, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	oRows := oShard.ShardResults(sweep.Runner{}.Run(opaque))
	if oRows[1].Key != "" {
		t.Fatalf("opaque-traffic point unexpectedly hashable")
	}
	oRows[1].Key = "aaaa1111"
	twoKeys := append(append([]sweep.ShardResult{}, oRows...), oRows[1])
	twoKeys[len(twoKeys)-1].Key = "bbbb2222"
	if _, err := sweep.MergeShardResults(opaque, twoKeys); err == nil {
		t.Errorf("same-index duplicates with different keys not rejected")
	}
	sameKey := append(append([]sweep.ShardResult{}, oRows...), oRows[1])
	if _, err := sweep.MergeShardResults(opaque, sameKey); err != nil {
		t.Errorf("same-index duplicates with matching keys rejected: %v", err)
	}
}

// mapCache is a minimal in-memory PointCache for tests.
type mapCache struct {
	mu      sync.Mutex
	m       map[string]sim.Metrics
	lookups map[string]int
	stores  int
}

func newMapCache() *mapCache {
	return &mapCache{m: map[string]sim.Metrics{}, lookups: map[string]int{}}
}

func (c *mapCache) Lookup(key string) (sim.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups[key]++
	m, ok := c.m[key]
	return m, ok
}

func (c *mapCache) Store(key string, m sim.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = m
	c.stores++
}

func TestRunCachedWarmRunComputesNothing(t *testing.T) {
	points := serviceGrid().Points()
	want := sweep.Runner{}.Run(points)

	cache := newMapCache()
	cold, err := sweep.Runner{}.RunCached(context.Background(), points, cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.stores != len(points) {
		t.Fatalf("cold run stored %d of %d points", cache.stores, len(points))
	}

	var computed, cached int
	var mu sync.Mutex
	warm, err := sweep.Runner{}.RunCached(context.Background(), points, cache, func(i int, res sweep.Result, hit bool) {
		mu.Lock()
		if hit {
			cached++
		} else {
			computed++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 || cached != len(points) {
		t.Fatalf("warm run computed %d, cached %d (want 0, %d)", computed, cached, len(points))
	}
	for i := range points {
		if cold[i].Metrics != want[i].Metrics || warm[i].Metrics != want[i].Metrics {
			t.Fatalf("point %d: cached results drifted from uncached run", i)
		}
	}
}

func TestRunCachedProgressCoversEveryPoint(t *testing.T) {
	points := serviceGrid().Points()
	var mu sync.Mutex
	seen := make([]int, len(points))
	_, err := sweep.Runner{Workers: 4}.RunCached(context.Background(), points, nil, func(i int, res sweep.Result, cached bool) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		if cached {
			t.Errorf("point %d reported as a cache hit without a cache", i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("point %d reported %d times", i, n)
		}
	}
}

func TestRunCachedCancellation(t *testing.T) {
	points := serviceGrid().Points()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sweep.Runner{}.RunCached(ctx, points, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
}
