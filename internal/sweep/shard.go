package sweep

// Sharded grid execution. A grid's point list (Grid.Points, deterministic
// order) splits into disjoint shards that can run in separate processes;
// each shard records (global index, cache key, metrics) rows, and merging
// the shard rows back against the same point list reproduces the result
// slice of a single-process Runner.Run bit for bit — every scenario is
// deterministic given its seed, so equality of the scenario sets implies
// equality of the results, and the index carries the ordering.

import (
	"fmt"

	"otisnet/internal/sim"
)

// Shard is a deterministic slice of a grid: the scenarios of one shard and
// their global indices in the full point list.
type Shard struct {
	Indices []int
	Points  []Scenario
}

// ShardPoints splits points into the shard-th of shards strided subsets
// (point i belongs to shard i mod shards). Striding — rather than
// contiguous blocks — balances the axes across shards: the point order is
// topology-major, so blocks would pin whole topologies (with very
// different per-point costs) onto single shards.
func ShardPoints(points []Scenario, shard, shards int) (Shard, error) {
	if shards < 1 {
		return Shard{}, fmt.Errorf("sweep: shard count %d < 1", shards)
	}
	if shard < 0 || shard >= shards {
		return Shard{}, fmt.Errorf("sweep: shard index %d out of range [0,%d)", shard, shards)
	}
	var s Shard
	for i := shard; i < len(points); i += shards {
		s.Indices = append(s.Indices, i)
		s.Points = append(s.Points, points[i])
	}
	return s, nil
}

// ShardResult is one completed point of a shard run: the point's global
// index in the grid, its content-addressed cache key ("" when the scenario
// is not hashable) and its metrics. This is the row shard processes write
// (NDJSON), the merge step consumes, and the coordinator's worker
// protocol carries (internal/coordinator). Cached marks a row that was
// served from the result cache rather than computed — merge ignores it
// (cached metrics are bit-identical by construction), but it lets the
// coordinator's progress stream and the chaos tests distinguish
// journal-resumed points from recomputed ones.
type ShardResult struct {
	Index   int         `json:"index"`
	Key     string      `json:"key,omitempty"`
	Cached  bool        `json:"cached,omitempty"`
	Metrics sim.Metrics `json:"metrics"`
}

// ShardResults converts a shard's in-order results into merge rows.
func (s Shard) ShardResults(results []Result) []ShardResult {
	rows := make([]ShardResult, len(results))
	for i, r := range results {
		key, _ := r.Scenario.CacheKey()
		rows[i] = ShardResult{Index: s.Indices[i], Key: key, Metrics: r.Metrics}
	}
	return rows
}

// MergeShardResults reassembles shard rows into the full result slice for
// points (the same Grid.Points list the shards were cut from). Every index
// must be covered exactly once, and every row that carries a cache key
// must match the key of the point it claims — catching shards run against
// a different grid definition. Conflicting duplicates — same index with
// different metrics, or same index with different non-empty keys (two
// writers that disagree about what the point even is, possible only when
// the point itself is unhashable and the per-point key check cannot
// arbitrate) — are an error; identical duplicates (e.g. overlapping shard
// files after a resume, or a steal race in the coordinator) are tolerated.
func MergeShardResults(points []Scenario, shards ...[]ShardResult) ([]Result, error) {
	results := make([]Result, len(points))
	seen := make([]bool, len(points))
	keys := make([]string, len(points))
	for _, rows := range shards {
		for _, row := range rows {
			if row.Index < 0 || row.Index >= len(points) {
				return nil, fmt.Errorf("sweep: shard row index %d out of range (grid has %d points)", row.Index, len(points))
			}
			p := points[row.Index]
			if row.Key != "" {
				if key, ok := p.CacheKey(); ok && key != row.Key {
					return nil, fmt.Errorf("sweep: shard row %d key %.12s… does not match grid point key %.12s… (shard run against a different grid?)",
						row.Index, row.Key, key)
				}
			}
			if seen[row.Index] {
				if results[row.Index].Metrics != row.Metrics {
					return nil, fmt.Errorf("sweep: conflicting duplicate results for point %d", row.Index)
				}
				if row.Key != "" && keys[row.Index] != "" && row.Key != keys[row.Index] {
					return nil, fmt.Errorf("sweep: duplicate rows for point %d carry different keys %.12s… and %.12s…",
						row.Index, keys[row.Index], row.Key)
				}
				continue
			}
			seen[row.Index] = true
			keys[row.Index] = row.Key
			results[row.Index] = Result{Scenario: p, Metrics: row.Metrics}
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("sweep: point %d (%s) missing from every shard", i, points[i].Label())
		}
	}
	return results, nil
}
