package sweep

// TopoSpec is a serializable description of a simulation topology — the
// JSON-facing counterpart of cmd/netsim's -net flags, shared by the CLI
// and the sweep service (internal/sweepserver) so a grid submitted over
// HTTP builds exactly the networks the command line would. Build is
// deterministic: equal specs produce structurally identical topologies
// (and therefore equal TopologyFingerprints).

import (
	"fmt"

	"otisnet/internal/kautz"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

// TopoSpec names one of the paper's network families and its parameters.
// Zero-valued parameters take the family's canonical defaults (the
// cmd/netsim flag defaults), so {"net":"sk"} is SK(6,3,2).
type TopoSpec struct {
	// Net selects the family: "sk" (stack-Kautz), "stackii"
	// (stack-Imase-Itoh), "pops" or "debruijn".
	Net string `json:"net"`
	// T and G are the POPS group size and group count.
	T int `json:"t,omitempty"`
	G int `json:"g,omitempty"`
	// S is the stack-network group size, D the degree, K the diameter.
	S int `json:"s,omitempty"`
	D int `json:"d,omitempty"`
	K int `json:"k,omitempty"`
	// N is the stack-Imase-Itoh group count.
	N int `json:"n,omitempty"`
}

// Canonical fills zero parameters with the cmd/netsim flag defaults,
// yielding the normalized spec Build actually constructs. Callers that
// memoize built topologies per spec (internal/sweepserver) key by the
// canonical form so parameter spellings of the same network share one
// entry.
func (ts TopoSpec) Canonical() TopoSpec { return ts.withDefaults() }

// withDefaults fills zero parameters with the cmd/netsim flag defaults.
func (ts TopoSpec) withDefaults() TopoSpec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&ts.T, 4)
	def(&ts.G, 4)
	def(&ts.S, 6)
	def(&ts.D, 3)
	def(&ts.K, 2)
	def(&ts.N, 12)
	return ts
}

// Build constructs the topology, its display name and its group size. The
// display names match cmd/netsim's, so server-submitted grids label output
// rows exactly as CLI sweeps do.
func (ts TopoSpec) Build() (Topology, error) {
	ts = ts.withDefaults()
	if ts.T < 1 || ts.G < 1 || ts.S < 1 || ts.D < 1 || ts.K < 1 || ts.N < 1 {
		return Topology{}, fmt.Errorf("sweep: topology spec %+v has a non-positive parameter", ts)
	}
	switch ts.Net {
	case "sk":
		nw := stackkautz.New(ts.S, ts.D, ts.K)
		return Topology{
			Name:      fmt.Sprintf("SK(%d,%d,%d) N=%d couplers=%d", ts.S, ts.D, ts.K, nw.N(), nw.Couplers()),
			Topo:      sim.NewStackTopology(nw.StackGraph()),
			GroupSize: ts.S,
		}, nil
	case "stackii":
		nw := stackkautz.NewII(ts.S, ts.D, ts.N)
		return Topology{
			Name:      fmt.Sprintf("stack-II(%d,%d,%d) N=%d couplers=%d", ts.S, ts.D, ts.N, nw.N(), nw.Couplers()),
			Topo:      sim.NewStackTopology(nw.StackGraph()),
			GroupSize: ts.S,
		}, nil
	case "pops":
		nw := pops.New(ts.T, ts.G)
		return Topology{
			Name:      fmt.Sprintf("POPS(%d,%d) N=%d couplers=%d", ts.T, ts.G, nw.N(), nw.Couplers()),
			Topo:      sim.NewStackTopology(nw.StackGraph()),
			GroupSize: ts.T,
		}, nil
	case "debruijn":
		b := kautz.NewDeBruijn(ts.D, ts.K)
		return Topology{
			Name: fmt.Sprintf("deBruijn(%d,%d) N=%d links=%d", ts.D, ts.K, b.N(), b.Digraph().M()),
			Topo: sim.NewPointToPointTopology(b.Digraph()),
		}, nil
	default:
		return Topology{}, fmt.Errorf("sweep: unknown topology family %q (want sk, stackii, pops or debruijn)", ts.Net)
	}
}
