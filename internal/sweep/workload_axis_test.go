package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/workload"
)

func skTopology() Topology {
	return Topology{
		Name:      "SK(6,3,2)",
		Topo:      sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph()),
		GroupSize: 6,
	}
}

// TestWorkloadAxisZeroSpecMatchesLegacySweep pins the acceptance criterion
// that threading the workload axis changed nothing for existing grids: an
// explicit uniform workload axis reproduces the axis-free grid bit for bit,
// and both match a direct sequential sim.Run.
func TestWorkloadAxisZeroSpecMatchesLegacySweep(t *testing.T) {
	topo := skTopology()
	base := Grid{Topologies: []Topology{topo}, Rates: []float64{0.2}, Seeds: []int64{1, 2}, Slots: 300, Drain: 300}
	withAxis := base
	withAxis.Workloads = []workload.Spec{{}}
	a := Runner{Workers: 3}.RunGrid(base)
	b := Runner{Workers: 2}.RunGrid(withAxis)
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Metrics != b[i].Metrics {
			t.Fatalf("uniform workload axis diverged from legacy grid at point %d:\n%v\n%v",
				i, a[i].Metrics, b[i].Metrics)
		}
		seq := sim.Run(topo.Topo, sim.UniformTraffic{Rate: 0.2}, 300, 300, a[i].Scenario.Config())
		if a[i].Metrics != seq {
			t.Fatalf("sweep point %d diverged from sequential sim.Run", i)
		}
	}
}

func TestWorkloadAxisCrossesGrid(t *testing.T) {
	specs := []workload.Spec{
		{},
		{Kind: workload.KindTranspose},
		{Kind: workload.KindHotspot, HotGroup: 1, Fraction: 0.5},
		{Kind: workload.KindBursty, MeanOn: 20, MeanOff: 40},
	}
	g := Grid{Topologies: []Topology{skTopology()}, Rates: []float64{0.1}, Seeds: []int64{1, 2}, Slots: 200, Drain: 200, Workloads: specs}
	pts := g.Points()
	if len(pts) != len(specs)*2 {
		t.Fatalf("expected %d scenarios, got %d", len(specs)*2, len(pts))
	}
	curve := Aggregate(Runner{}.Run(pts))
	if len(curve) != len(specs) {
		t.Fatalf("expected %d curve points (one per workload), got %d", len(specs), len(curve))
	}
	for i, p := range curve {
		if p.Workload != specs[i] {
			t.Errorf("curve point %d keyed by %+v, want %+v", i, p.Workload, specs[i])
		}
		if p.TrafficName != specs[i].Label() {
			t.Errorf("curve point %d labeled %q, want %q", i, p.TrafficName, specs[i].Label())
		}
		if p.Seeds != 2 {
			t.Errorf("curve point %d aggregated %d seeds, want 2", i, p.Seeds)
		}
	}
}

func TestWorkloadScenarioLabels(t *testing.T) {
	s := Scenario{
		Topology: Topology{Name: "SK"}, TrafficName: "transpose",
		Workload: workload.Spec{Kind: workload.KindTranspose},
		Rate:     0.2, Seed: 1, Wavelengths: 1,
	}
	if got := s.Label(); !strings.Contains(got, "SK/transpose") {
		t.Errorf("label %q should carry the workload name", got)
	}
}

func TestWorkloadColumnInOutputs(t *testing.T) {
	g := Grid{
		Topologies: []Topology{skTopology()},
		Rates:      []float64{0.1},
		Seeds:      []int64{1},
		Slots:      100,
		Workloads:  []workload.Spec{{Kind: workload.KindHotspot, HotGroup: 3, Fraction: 0.5}},
	}
	results := Runner{}.RunGrid(g)

	var csvRaw bytes.Buffer
	if err := WriteResultsCSV(&csvRaw, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvRaw.String(), "workload") || !strings.Contains(csvRaw.String(), "hotspot(g3,0.5)") {
		t.Errorf("raw CSV missing workload column or label:\n%s", csvRaw.String())
	}

	var csvCurve bytes.Buffer
	if err := WriteCurveCSV(&csvCurve, Aggregate(results)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvCurve.String(), "hotspot(g3,0.5)") {
		t.Errorf("curve CSV missing workload label:\n%s", csvCurve.String())
	}

	var jsonRaw bytes.Buffer
	if err := WriteResultsJSON(&jsonRaw, results); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(jsonRaw.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0]["workload"] != "hotspot(g3,0.5)" {
		t.Errorf("raw JSON workload field = %v", rows[0]["workload"])
	}

	var jsonCurve bytes.Buffer
	if err := WriteCurveJSON(&jsonCurve, Aggregate(results)); err != nil {
		t.Fatal(err)
	}
	var cpts []map[string]any
	if err := json.Unmarshal(jsonCurve.Bytes(), &cpts); err != nil {
		t.Fatal(err)
	}
	if cpts[0]["workload"] != "hotspot(g3,0.5)" {
		t.Errorf("curve JSON workload field = %v", cpts[0]["workload"])
	}
}

// TestExplicitTrafficOverridesWorkloadAxis documents the precedence rule:
// a non-nil Traffic factory wins over the workload axis, which collapses
// entirely (no duplicated points keyed by ineffective specs).
func TestExplicitTrafficOverridesWorkloadAxis(t *testing.T) {
	topo := skTopology()
	g := Grid{
		Topologies:  []Topology{topo},
		Rates:       []float64{0.2},
		Seeds:       []int64{1},
		Slots:       200,
		Drain:       200,
		Traffic:     func(rate float64) sim.Traffic { return sim.UniformTraffic{Rate: rate} },
		TrafficName: "uniform",
		Workloads: []workload.Spec{
			{Kind: workload.KindTranspose},
			{Kind: workload.KindHotspot, HotGroup: 1, Fraction: 0.5},
		},
	}
	res := Runner{}.RunGrid(g)
	if len(res) != 1 {
		t.Fatalf("factory grid expanded to %d points; the workload axis should collapse to 1", len(res))
	}
	seq := sim.Run(topo.Topo, sim.UniformTraffic{Rate: 0.2}, 200, 200, res[0].Scenario.Config())
	if res[0].Metrics != seq {
		t.Fatal("explicit Traffic factory should override the workload axis")
	}
}
