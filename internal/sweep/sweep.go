// Package sweep fans grids of simulation scenarios across a worker pool.
//
// The single-point entry points of package sim (Run, SaturationSearch)
// answer one (topology, traffic, seed, config) question at a time; a paper
// campaign or a capacity-planning study needs hundreds of such points —
// every topology at every offered load, several seeds per point for error
// bars, with and without deflection, across wavelength counts. Package
// sweep expands such a grid into concrete scenarios, runs them across
// goroutines, and aggregates the per-point metrics into saturation curves
// with mean/stddev over seeds.
//
// Each worker reuses one compiled engine per topology across its scenarios
// (sim.Engine.Reset re-arms queues, scratch and the compiled route
// snapshot without reallocating), and every scenario gets its own seeded
// RNG, so a sweep reproduces single-run sim.Run numbers bit-for-bit
// regardless of worker count or scheduling order.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"otisnet/internal/faults"
	"otisnet/internal/obs"
	"otisnet/internal/sim"
	"otisnet/internal/workload"
)

// Mode selects the contention-resolution discipline of a scenario.
type Mode int

const (
	// StoreAndForward queues losing messages (the paper's default).
	StoreAndForward Mode = iota
	// Deflection re-routes losing messages hot-potato style.
	Deflection
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Deflection {
		return "hot-potato"
	}
	return "store-and-forward"
}

// Topology pairs a simulation topology with a display name. GroupSize is
// the node count per group (s for stack networks, t for POPS), used by
// group-structured workloads (transpose, hotspot); 0 means no group
// structure and degenerates those workloads to their single-node forms.
type Topology struct {
	Name      string
	Topo      sim.Topology
	GroupSize int
}

// TrafficFactory builds a traffic model for a given offered load. The
// returned model must be safe for use by a single engine; factories are
// invoked once per scenario.
type TrafficFactory func(rate float64) sim.Traffic

// Scenario is one fully specified simulation point.
type Scenario struct {
	Topology    Topology
	TrafficName string
	Traffic     sim.Traffic // nil means uniform at Rate
	Rate        float64
	Seed        int64
	Mode        Mode
	Wavelengths int
	MaxQueue    int
	Slots       int
	Drain       int
	// Fault describes the fault-injection axis; the zero value runs on the
	// bare topology (bit-for-bit identical to pre-fault sweeps).
	Fault faults.Spec
	// Workload selects the traffic generator when Traffic is nil; the zero
	// spec is the uniform workload, bit-for-bit identical to pre-workload
	// sweeps. An explicit Traffic value takes precedence.
	Workload workload.Spec
}

// topo returns the scenario's topology, wrapped in a private fault layer
// when the fault axis is active. Wrapping per scenario keeps the shared
// base read-only across workers; the FaultedTopology itself is mutable.
// Runner.Run does not call this — its workers reuse one fault wrapper per
// base via SetPlan — but it remains the single-scenario reference path.
func (s Scenario) topo() sim.Topology {
	return s.Fault.Wrap(s.Topology.Topo, s.Seed)
}

// Run executes the scenario standalone on a fresh engine. Runner.Run
// produces identical metrics while reusing engines across scenarios.
func (s Scenario) Run() sim.Metrics {
	return sim.Run(s.topo(), s.traffic(), s.Slots, s.Drain, s.Config())
}

// Config translates the scenario into the engine configuration.
func (s Scenario) Config() sim.Config {
	return sim.Config{
		Seed:        s.Seed,
		MaxQueue:    s.MaxQueue,
		Deflection:  s.Mode == Deflection,
		Wavelengths: s.Wavelengths,
	}
}

// traffic returns the scenario's traffic model: an explicit Traffic value
// wins, else the Workload spec is materialized for this topology (the zero
// spec is uniform — workload.Uniform delegates to sim.UniformTraffic, so
// legacy grids reproduce bit for bit). One generator per scenario: bursty
// workloads are stateful and never shared across engines.
func (s Scenario) traffic() sim.Traffic {
	if s.Traffic != nil {
		return s.Traffic
	}
	return s.Workload.New(s.Rate, s.Topology.Topo.Nodes(), s.Topology.GroupSize)
}

// Grid is a cross-product description of scenarios. Zero-valued axes get
// sensible defaults so callers only set what they vary.
type Grid struct {
	Topologies  []Topology
	Rates       []float64
	Seeds       []int64
	Modes       []Mode
	Wavelengths []int
	MaxQueue    int
	Slots       int
	Drain       int
	// Traffic builds the traffic model per rate; nil means the Workloads
	// axis (or uniform). A non-nil factory overrides Workloads entirely.
	Traffic     TrafficFactory
	TrafficName string
	// Faults is the fault-injection axis: each spec is crossed with every
	// other axis (e.g. node-fault counts 0..d for a degradation curve).
	// Empty means the single fault-free spec.
	Faults []faults.Spec
	// Workloads is the workload axis: each spec is crossed with every other
	// axis. Empty means the single uniform workload.
	Workloads []workload.Spec
}

// Points expands the grid into scenarios in deterministic order:
// topology-major, then rate, mode, wavelengths, workload, fault, seed.
func (g Grid) Points() []Scenario {
	rates := g.Rates
	if len(rates) == 0 {
		rates = []float64{0.2}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	modes := g.Modes
	if len(modes) == 0 {
		modes = []Mode{StoreAndForward}
	}
	waves := g.Wavelengths
	if len(waves) == 0 {
		waves = []int{1}
	}
	slots := g.Slots
	if slots == 0 {
		slots = 1000
	}
	fspecs := g.Faults
	if len(fspecs) == 0 {
		fspecs = []faults.Spec{{}}
	}
	wspecs := g.Workloads
	if len(wspecs) == 0 || g.Traffic != nil {
		// An explicit Traffic factory overrides the workload axis entirely;
		// collapsing the axis here keeps the point count honest (no
		// duplicated scenarios keyed by specs that had no effect).
		wspecs = []workload.Spec{{}}
	}
	var pts []Scenario
	for _, topo := range g.Topologies {
		for _, rate := range rates {
			for _, mode := range modes {
				for _, w := range waves {
					for _, wl := range wspecs {
						// The traffic label: an explicit TrafficName wins,
						// else the workload's own label ("uniform" for the
						// zero spec, matching the pre-workload default).
						name := g.TrafficName
						if name == "" {
							name = wl.Label()
						}
						for _, fs := range fspecs {
							if fs.MTBF > 0 && fs.Horizon == 0 {
								fs.Horizon = slots
							}
							for _, seed := range seeds {
								// One factory call per scenario: Traffic values
								// are never shared across engines/goroutines.
								var tr sim.Traffic
								if g.Traffic != nil {
									tr = g.Traffic(rate)
								}
								pts = append(pts, Scenario{
									Topology:    topo,
									TrafficName: name,
									Traffic:     tr,
									Rate:        rate,
									Seed:        seed,
									Mode:        mode,
									Wavelengths: w,
									Workload:    wl,
									MaxQueue:    g.MaxQueue,
									Slots:       slots,
									Drain:       g.Drain,
									Fault:       fs,
								})
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Result pairs a scenario with its measured metrics.
type Result struct {
	Scenario Scenario
	Metrics  sim.Metrics
}

// Runner executes scenarios across a pool of goroutines.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Replicas is the batch size: how many scenarios a worker runs
	// simultaneously on one sim.ReplicaSet over a shared compiled
	// topology (see batch.go). 0 or 1 selects per-scenario dispatch;
	// AutoReplicas picks a batch size from the grid shape and worker
	// count. Results are bit-for-bit identical either way.
	Replicas int
	// Parallel is the intra-run shard count: every engine (and replica
	// set) a worker builds is armed with sim.SetParallel(Parallel), so a
	// single scenario's slot loop is itself sharded across goroutines.
	// 0 or 1 leaves runs serial — the right default for sweeps, where
	// scenario-level fan-out already saturates the machine. When
	// Parallel > 1 and Workers is unset, the default pool shrinks to
	// GOMAXPROCS/Parallel so the combined goroutine budget stays at
	// GOMAXPROCS. Parallelism never changes results or cache keys.
	Parallel int
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if p := r.parallel(); p > 1 {
		w /= p
		if w < 1 {
			w = 1
		}
	}
	return w
}

// parallel resolves the intra-run shard count (1 means serial).
func (r Runner) parallel() int {
	if r.Parallel > 1 {
		return r.Parallel
	}
	return 1
}

// Run executes every scenario and returns results in input order. Each
// worker keeps a private cache of compiled engines keyed by base topology
// — Engine.Reset rewinds queues, scratch and the compiled route snapshot
// between scenarios, and fault scenarios reuse one FaultedTopology per
// base via SetPlan — so a 1000-point grid allocates its simulation state
// once per (worker, topology), not once per scenario. Every scenario still
// gets a private seeded RNG via Engine.Run, so results are bit-for-bit
// identical to standalone Scenario.Run calls regardless of worker count or
// scheduling order.
func (r Runner) Run(points []Scenario) []Result {
	results, _ := r.RunCached(context.Background(), points, nil, nil)
	return results
}

// PointCache is the lookup/store contract of a content-addressed result
// cache (implemented by internal/sweepcache). Keys are Scenario.CacheKey
// values. Implementations must be safe for concurrent use by every worker
// goroutine.
type PointCache interface {
	Lookup(key string) (sim.Metrics, bool)
	Store(key string, m sim.Metrics)
}

// Progress is invoked once per completed point, from worker goroutines —
// implementations must tolerate concurrent calls. i is the point's index
// in the input slice; cached reports a cache hit (the point was reused,
// not computed).
type Progress func(i int, res Result, cached bool)

// RunCached is Run with a result cache, per-point progress events and
// cooperative cancellation. Hashable points (Scenario.CacheKey) found in
// the cache are reused without touching an engine; computed hashable
// points are stored back, so an interrupted grid resumes where it stopped
// and overlapping grids share work. Cache hits are bit-for-bit the metrics
// the engine would have produced — keys cover everything the engine reads
// — so results are identical to Run regardless of hit pattern. cache and
// progress may be nil. Cancellation has per-point granularity: in-flight
// scenarios finish (and are cached), unstarted ones are skipped, and the
// error reports ctx.Err() with the returned slice holding zero Metrics for
// every skipped point. With Replicas > 1 (or AutoReplicas) scenarios are
// dispatched in batches over shared compiled topologies — identical
// results, identical cache traffic, batch-granular cancellation.
func (r Runner) RunCached(ctx context.Context, points []Scenario, cache PointCache, progress Progress) ([]Result, error) {
	if r.Replicas > 1 || r.Replicas == AutoReplicas {
		return r.runBatched(ctx, points, cache, progress)
	}
	results := make([]Result, len(points))
	err := r.fanScopedCtx(ctx, len(points), func() (func(int), func()) {
		engines := &engineCache{par: r.parallel()}
		sh := obs.NextShard()
		fn := func(i int) {
			sweepObs.started.AddShard(sh, 1)
			p := points[i]
			key, hashable := "", false
			if cache != nil {
				if key, hashable = p.CacheKey(); hashable {
					if m, ok := cache.Lookup(key); ok {
						sweepObs.cached.AddShard(sh, 1)
						results[i] = Result{Scenario: p, Metrics: m}
						if progress != nil {
							progress(i, results[i], true)
						}
						return
					}
				}
			}
			t0 := time.Now()
			m := engines.run(p)
			sweepObs.busyNS.AddShard(sh, time.Since(t0).Nanoseconds())
			sweepObs.completed.AddShard(sh, 1)
			if hashable {
				cache.Store(key, m)
			}
			results[i] = Result{Scenario: p, Metrics: m}
			if progress != nil {
				progress(i, results[i], false)
			}
		}
		return fn, engines.close
	})
	return results, err
}

// engineCache is one sweep worker's pool of reusable simulation state,
// keyed by base-topology identity. Grids name only a handful of
// topologies, so a linear scan beats hashing interface values.
type engineCache struct {
	par     int // intra-run shard count each engine is armed with
	entries []cacheEntry
}

// cacheEntry holds the reusable state for one base topology: an engine
// compiled over the bare base for fault-free scenarios, and a fault
// wrapper plus the engine compiled over it (borrowing its live route
// table) for the fault axis.
type cacheEntry struct {
	base  sim.Topology
	eng   *sim.Engine
	ft    *faults.FaultedTopology
	ftEng *sim.Engine
}

func (c *engineCache) entry(base sim.Topology) *cacheEntry {
	for i := range c.entries {
		if c.entries[i].base == base {
			return &c.entries[i]
		}
	}
	c.entries = append(c.entries, cacheEntry{base: base})
	return &c.entries[len(c.entries)-1]
}

// run executes one scenario on the worker's cached state.
func (c *engineCache) run(p Scenario) sim.Metrics {
	ent := c.entry(p.Topology.Topo)
	cfg := p.Config()
	if p.Fault.IsZero() {
		if ent.eng == nil {
			ent.eng = sim.NewEngine(ent.base, cfg)
			c.arm(ent.eng)
		}
		return ent.eng.Run(p.traffic(), p.Slots, p.Drain, cfg)
	}
	plan := p.Fault.Plan(ent.base, p.Seed)
	if ent.ft == nil {
		ent.ft = faults.Wrap(ent.base, plan)
		ent.ftEng = sim.NewEngine(ent.ft, cfg)
		c.arm(ent.ftEng)
	} else {
		ent.ft.SetPlan(plan)
	}
	return ent.ftEng.Run(p.traffic(), p.Slots, p.Drain, cfg)
}

// arm enables intra-run parallelism on a freshly built engine when the
// runner asks for it.
func (c *engineCache) arm(e *sim.Engine) {
	if c.par > 1 {
		e.SetParallel(c.par)
	}
}

// close releases the parallel crews of every cached engine; serial
// engines are unaffected (Close is a no-op for them).
func (c *engineCache) close() {
	for i := range c.entries {
		if c.entries[i].eng != nil {
			c.entries[i].eng.Close()
		}
		if c.entries[i].ftEng != nil {
			c.entries[i].ftEng.Close()
		}
	}
}

// RunGrid expands the grid and runs it.
func (r Runner) RunGrid(g Grid) []Result { return r.Run(g.Points()) }

// SaturationPoint is the saturation rate of one (topology, mode,
// wavelengths) combination.
type SaturationPoint struct {
	Topology    string
	Mode        Mode
	Wavelengths int
	Rate        float64
}

// Saturate binary-searches the saturation rate of every (topology, mode,
// wavelengths) combination concurrently, delegating each point to
// sim.SaturationSearchTraffic so results match sequential searches exactly.
func (r Runner) Saturate(g Grid, slots int, sustainFraction float64, seed int64) []SaturationPoint {
	modes := g.Modes
	if len(modes) == 0 {
		modes = []Mode{StoreAndForward}
	}
	waves := g.Wavelengths
	if len(waves) == 0 {
		waves = []int{1}
	}
	traffic := g.Traffic
	if traffic == nil {
		traffic = sim.UniformAtRate
	}
	var pts []SaturationPoint
	var topos []sim.Topology
	for _, topo := range g.Topologies {
		for _, mode := range modes {
			for _, w := range waves {
				pts = append(pts, SaturationPoint{Topology: topo.Name, Mode: mode, Wavelengths: w})
				topos = append(topos, topo.Topo)
			}
		}
	}
	r.fan(len(pts), func(i int) {
		cfg := sim.Config{
			Seed:        seed,
			MaxQueue:    g.MaxQueue,
			Deflection:  pts[i].Mode == Deflection,
			Wavelengths: pts[i].Wavelengths,
		}
		pts[i].Rate = sim.SaturationSearchTraffic(topos[i], traffic, slots, sustainFraction, cfg)
	})
	return pts
}

// fan runs fn(0..n-1) across the worker pool and waits for completion.
func (r Runner) fan(n int, fn func(i int)) {
	r.fanScoped(n, func() (func(int), func()) { return fn, nil })
}

// fanScoped runs fn(0..n-1) across the worker pool, building one private
// state (e.g. an engine cache) per worker goroutine via newWorker, and
// waits for completion.
func (r Runner) fanScoped(n int, newWorker func() (func(i int), func())) {
	r.fanScopedCtx(context.Background(), n, newWorker)
}

// fanScopedCtx is fanScoped with cooperative cancellation: once ctx is
// done, no further indices are handed out (indices already claimed by a
// worker finish normally) and ctx.Err() is returned. newWorker returns
// the per-index body plus an optional teardown, run when the worker
// drains — the hook that releases parallel-armed engines and returns
// warmed replica sets to the recycler.
func (r Runner) fanScopedCtx(ctx context.Context, n int, newWorker func() (func(i int), func())) error {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn, done := newWorker()
			if done != nil {
				defer done()
			}
			for i := range idx {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// Label is a compact human-readable scenario identifier.
func (s Scenario) Label() string {
	l := fmt.Sprintf("%s/%s r=%.3g w=%d seed=%d %s",
		s.Topology.Name, s.TrafficName, s.Rate, s.Wavelengths, s.Seed, s.Mode)
	if !s.Workload.IsZero() && s.TrafficName != s.Workload.Label() {
		l += " workload=" + s.Workload.Label()
	}
	if !s.Fault.IsZero() {
		l += " faults=" + s.Fault.Label()
	}
	return l
}
