package sweep

// Content-addressed scenario identity. A Scenario is hashed into a
// canonical key so that a result cache (internal/sweepcache) can reuse
// completed points across runs, shards and processes. Two scenarios share a
// key exactly when the engine is guaranteed to produce identical metrics
// for them: the key covers the topology *structure* (not its display
// name), every engine parameter, the fault spec and the workload spec —
// and nothing else. Display-only fields (Topology.Name, TrafficName) are
// deliberately excluded: they label output rows but cannot change a single
// simulated bit.
//
// The key is versioned (keyVersion). Any change to engine semantics that
// keeps the Scenario type but alters results for the same field values
// must bump the version, which invalidates every cache entry at once.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"strconv"
	"sync"

	"otisnet/internal/sim"
	"otisnet/internal/workload"
)

// keyVersion tags the canonical encoding. Bump it whenever the engine's
// observable behavior for a fixed Scenario changes (new RNG consumption
// order, changed arbitration tie-breaks, metric redefinitions, ...).
const keyVersion = "otisnet-scenario-v1"

// fingerprints memoizes TopologyFingerprint per live topology value (all
// sim.Topology implementations are pointers, so interface identity is
// cheap and stable for the life of the process).
var fingerprints sync.Map // sim.Topology -> string

// TopologyFingerprint returns a hex SHA-256 of the topology's structure:
// node count, coupler count, every node's out-coupler list and every
// coupler's head list, in index order. Routing and distances are derived
// deterministically from exactly that structure (the construction-time
// scan oracles break ties in list order), so two topologies with equal
// fingerprints are simulation-equivalent. The fingerprint is memoized per
// topology value; it is computed from the pristine structure, so it must
// be taken from the base topology, never from a live fault wrapper.
func TopologyFingerprint(t sim.Topology) string {
	if fp, ok := fingerprints.Load(t); ok {
		return fp.(string)
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	n, m := t.Nodes(), t.Couplers()
	writeInt(n)
	writeInt(m)
	for u := 0; u < n; u++ {
		out := t.OutCouplers(u)
		writeInt(len(out))
		for _, c := range out {
			writeInt(c)
		}
	}
	for c := 0; c < m; c++ {
		heads := t.Heads(c)
		writeInt(len(heads))
		for _, hd := range heads {
			writeInt(hd)
		}
	}
	fp := hex.EncodeToString(h.Sum(nil))
	fingerprints.Store(t, fp)
	return fp
}

// CacheKey returns the scenario's content-addressed key: a hex SHA-256 of
// the canonical encoding described above. The second return is false when
// the scenario is not hashable — an explicit Traffic value is an opaque
// generator whose behavior cannot be canonicalized — in which case the
// point must always be computed.
func (s Scenario) CacheKey() (string, bool) {
	if s.Traffic != nil {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\ntopo %s\n", keyVersion, TopologyFingerprint(s.Topology.Topo))
	writeKeyFields(h, s)
	return hex.EncodeToString(h.Sum(nil)), true
}

// writeKeyFields streams the canonical parameter encoding into h. Fields
// are normalized first so that parameter spellings the engine cannot
// distinguish hash identically: Wavelengths 0 and 1 are the same engine,
// a fault spec with Count 0 is fault-free regardless of its other fields,
// workload parameters that the selected kind ignores are zeroed, and the
// rate normalizes to 1 where the generator would treat it so (event
// traces replay verbatim at any rate; rate traces treat a scale <= 0 as
// 1).
func writeKeyFields(h hash.Hash, s Scenario) {
	waves := s.Wavelengths
	if waves < 1 {
		waves = 1
	}
	rate := s.Rate
	if s.Workload.Kind == workload.KindTrace &&
		(s.Workload.TraceForm == workload.TraceEvents || rate <= 0) {
		rate = 1
	}
	fmt.Fprintf(h, "rate %s\nseed %d\nmode %d\nwavelengths %d\nmaxqueue %d\nslots %d\ndrain %d\n",
		canonFloat(rate), s.Seed, s.Mode, waves, s.MaxQueue, s.Slots, s.Drain)

	f := s.Fault
	if f.IsZero() {
		fmt.Fprint(h, "fault none\n")
	} else if f.MTBF > 0 && f.MTTR > 0 {
		fmt.Fprintf(h, "fault stochastic %d %d %s %s %d %d\n",
			f.Kind, f.Count, canonFloat(f.MTBF), canonFloat(f.MTTR), f.Horizon, f.Seed)
	} else {
		fmt.Fprintf(h, "fault oneshot %d %d %d %d\n", f.Kind, f.Count, f.Slot, f.Seed)
	}

	w := s.Workload
	switch w.Kind {
	case workload.KindTranspose: // parameterless beyond the topology's group size
		fmt.Fprintf(h, "workload transpose %d\n", s.Topology.GroupSize)
	case workload.KindHotspot: // group-structured
		fmt.Fprintf(h, "workload hotspot %d %d %s\n",
			s.Topology.GroupSize, w.HotGroup, canonFloat(w.Fraction))
	case workload.KindBursty: // ignores group structure
		fmt.Fprintf(h, "workload bursty %s %s %s\n",
			canonFloat(w.MeanOn), canonFloat(w.MeanOff), canonFloat(w.OffFactor))
	case workload.KindTrace:
		// Content-addressed: the fingerprint of the trace bytes, never the
		// path, so renaming or relocating a trace is a warm cache hit while
		// editing one record recomputes every affected point.
		fmt.Fprintf(h, "workload trace %d %s\n", w.TraceForm, w.TraceFP)
	case workload.KindMultiPeriod: // ignores group structure
		fmt.Fprintf(h, "workload multiperiod %d %s %s %s %s %s %s %s\n",
			w.Period, canonFloat(w.Amplitude),
			canonFloat(w.EpisodeOn), canonFloat(w.EpisodeOff),
			canonFloat(w.MeanOn), canonFloat(w.MeanOff),
			canonFloat(w.RateSigma), canonFloat(w.OffFactor))
	default: // uniform — ignores every parameter
		fmt.Fprint(h, "workload uniform\n")
	}
}

// canonFloat renders a float canonically: the shortest representation that
// round-trips (strconv 'g' with precision -1), so 0.30000000000000004 and
// 0.3 stay distinct but formatting can never drift between writers.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
