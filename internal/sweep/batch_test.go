package sweep_test

// Batched-dispatch equivalence: Runner.Replicas must change scheduling
// only — every result, cache interaction and progress event stays
// bit-for-bit what per-scenario dispatch produces, across batch sizes
// that divide the grid unevenly, exceed it, or come from the auto
// heuristic.

import (
	"context"
	"sync"
	"testing"

	"otisnet/internal/sweep"
)

func TestBatchedRunMatchesUnbatched(t *testing.T) {
	points := serviceGrid().Points()
	want := sweep.Runner{}.Run(points)
	for _, rep := range []int{2, 3, sweep.AutoReplicas, len(points) + 5} {
		for _, workers := range []int{1, 3} {
			got := sweep.Runner{Workers: workers, Replicas: rep}.Run(points)
			if len(got) != len(want) {
				t.Fatalf("replicas=%d workers=%d: %d results, want %d", rep, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].Metrics != want[i].Metrics {
					t.Errorf("replicas=%d workers=%d point %d (%s):\nbatched   %v\nunbatched %v",
						rep, workers, i, points[i].Label(), got[i].Metrics, want[i].Metrics)
				}
			}
		}
	}
}

func TestBatchedRunCachedSemantics(t *testing.T) {
	points := serviceGrid().Points()
	want := sweep.Runner{}.Run(points)
	runner := sweep.Runner{Workers: 2, Replicas: 4}

	// Cold batched run: every hashable point computed and stored, progress
	// once per point.
	cache := newMapCache()
	var mu sync.Mutex
	seen := map[int]int{}
	cachedFlags := map[int]bool{}
	progress := func(i int, res sweep.Result, cached bool) {
		mu.Lock()
		defer mu.Unlock()
		seen[i]++
		cachedFlags[i] = cached
	}
	cold, err := runner.RunCached(context.Background(), points, cache, progress)
	if err != nil {
		t.Fatal(err)
	}
	if cache.stores != len(points) {
		t.Fatalf("cold batched run stored %d of %d points", cache.stores, len(points))
	}
	for i := range points {
		if cold[i].Metrics != want[i].Metrics {
			t.Fatalf("cold batched point %d diverged from unbatched", i)
		}
		if seen[i] != 1 || cachedFlags[i] {
			t.Fatalf("cold progress for point %d: calls=%d cached=%v", i, seen[i], cachedFlags[i])
		}
	}

	// Warm rerun: all hits, nothing recomputed, identical results.
	stores := cache.stores
	warm, err := runner.RunCached(context.Background(), points, cache, progress)
	if err != nil {
		t.Fatal(err)
	}
	if cache.stores != stores {
		t.Fatalf("warm batched run stored %d new points", cache.stores-stores)
	}
	for i := range points {
		if warm[i].Metrics != want[i].Metrics {
			t.Fatalf("warm batched point %d diverged", i)
		}
		if !cachedFlags[i] {
			t.Fatalf("warm progress for point %d not flagged cached", i)
		}
	}

	// Partially warm: seed a scattered half of the cache; the other half
	// is computed in (now ragged) batches and still matches.
	half := newMapCache()
	for i, p := range points {
		if i%2 == 0 {
			key, ok := p.CacheKey()
			if !ok {
				t.Fatalf("point %d not hashable", i)
			}
			half.m[key] = want[i].Metrics
		}
	}
	mixed, err := runner.RunCached(context.Background(), points, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if mixed[i].Metrics != want[i].Metrics {
			t.Fatalf("partially-warm batched point %d diverged", i)
		}
	}
}

func TestBatchedShardedRunMatches(t *testing.T) {
	points := serviceGrid().Points()
	want := sweep.Runner{}.Run(points)
	var rows [][]sweep.ShardResult
	for si := 0; si < 3; si++ {
		shard, err := sweep.ShardPoints(points, si, 3)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, shard.ShardResults(sweep.Runner{Workers: 2, Replicas: 3}.Run(shard.Points)))
	}
	merged, err := sweep.MergeShardResults(points, rows...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if merged[i].Metrics != want[i].Metrics {
			t.Fatalf("batched sharded point %d diverged from unbatched single-process run", i)
		}
	}
}
