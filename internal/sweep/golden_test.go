package sweep_test

// Output-stability golden tests: the CSV/JSON files a sweep emits are
// consumed by notebooks and downstream tooling, so column order, header
// names and number formatting must not drift silently. A fixed small grid
// (serviceGrid: two topologies, fault and workload axes — every column
// populated) is rendered through all four writers and compared byte for
// byte against testdata/golden_*.{csv,json}; regenerate deliberately with
//
//	go test ./internal/sweep -run TestGolden -update
//
// The same golden bytes also pin the service layer's equivalence claims:
// a 3-way sharded run merged back, and a warm-cache rerun, must reproduce
// the files byte for byte.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"otisnet/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden sweep output files")

// goldenWriters maps golden file names to output writers.
func goldenWriters() map[string]func(*bytes.Buffer, []sweep.Result) error {
	return map[string]func(*bytes.Buffer, []sweep.Result) error{
		"golden_results.csv": func(b *bytes.Buffer, r []sweep.Result) error {
			return sweep.WriteResultsCSV(b, r)
		},
		"golden_results.json": func(b *bytes.Buffer, r []sweep.Result) error {
			return sweep.WriteResultsJSON(b, r)
		},
		"golden_curve.csv": func(b *bytes.Buffer, r []sweep.Result) error {
			return sweep.WriteCurveCSV(b, sweep.Aggregate(r))
		},
		"golden_curve.json": func(b *bytes.Buffer, r []sweep.Result) error {
			return sweep.WriteCurveJSON(b, sweep.Aggregate(r))
		},
	}
}

// render produces all four output files for a result set.
func render(t *testing.T, results []sweep.Result) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for name, write := range goldenWriters() {
		var b bytes.Buffer
		if err := write(&b, results); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = b.Bytes()
	}
	return out
}

// compareGolden checks every rendered file against testdata (rewriting
// under -update).
func compareGolden(t *testing.T, rendered map[string][]byte, context string) {
	t.Helper()
	for name, got := range rendered {
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: %s output drifted from the golden file (regenerate deliberately with -update)\ngot  %d bytes\nwant %d bytes",
				context, name, len(got), len(want))
		}
	}
}

func TestGoldenSweepOutputStability(t *testing.T) {
	results := sweep.Runner{}.Run(serviceGrid().Points())
	compareGolden(t, render(t, results), "single-process run")
}

func TestGoldenOutputFromBatchedRun(t *testing.T) {
	if *update {
		t.Skip("goldens are written by TestGoldenSweepOutputStability")
	}
	// Batched execution must reproduce the golden bytes exactly, for every
	// dispatch shape: fixed batch sizes and the auto heuristic.
	for _, rep := range []int{3, sweep.AutoReplicas} {
		results := sweep.Runner{Workers: 2, Replicas: rep}.Run(serviceGrid().Points())
		compareGolden(t, render(t, results), "batched run")
	}
}

func TestGoldenOutputFromShardedRun(t *testing.T) {
	if *update {
		t.Skip("goldens are written by TestGoldenSweepOutputStability")
	}
	points := serviceGrid().Points()
	var rows [][]sweep.ShardResult
	for si := 0; si < 3; si++ {
		shard, err := sweep.ShardPoints(points, si, 3)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, shard.ShardResults(sweep.Runner{Workers: 2}.Run(shard.Points)))
	}
	merged, err := sweep.MergeShardResults(points, rows...)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, render(t, merged), "3-shard merged run")
}

func TestGoldenOutputFromWarmCache(t *testing.T) {
	if *update {
		t.Skip("goldens are written by TestGoldenSweepOutputStability")
	}
	points := serviceGrid().Points()
	cache := newMapCache()
	if _, err := (sweep.Runner{}).RunCached(t.Context(), points, cache, nil); err != nil {
		t.Fatal(err)
	}
	warm, err := sweep.Runner{}.RunCached(t.Context(), points, cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, render(t, warm), "warm-cache rerun")
}
