package sweep_test

// Trace workloads through the sweep service layers: the checked-in
// example traces must produce bit-for-bit identical metrics across a solo
// run, batched ReplicaSet dispatch, a sharded run merged back, and a
// warm-cache rerun; and the content-addressed cache key must track trace
// bytes, not trace paths.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/sweep"
	"otisnet/internal/workload"
)

// Checked-in example traces (also the subjects of the README quickstart
// and scripts/datacenter_day.sh).
const (
	exampleRateTrace  = "../../examples/traces/day_rates.csv"
	exampleEventTrace = "../../examples/traces/burst_events.ndjson"
)

// traceGrid builds the mixed-scale trace grid: two topologies of
// different node counts (the event trace's ids wrap modulo each), both
// record forms, two seeds.
func traceGrid(t *testing.T) sweep.Grid {
	t.Helper()
	rateSpec, err := workload.NewTraceSpec(exampleRateTrace)
	if err != nil {
		t.Fatal(err)
	}
	eventSpec, err := workload.NewTraceSpec(exampleEventTrace)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(3,2,2)", Topo: sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph()), GroupSize: 3},
			{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph()), GroupSize: 6},
		},
		Rates:     []float64{1},
		Seeds:     []int64{1, 2},
		Slots:     250,
		Drain:     250,
		Workloads: []workload.Spec{rateSpec, eventSpec},
	}
}

func TestTraceSweepSoloBatchedShardedBitForBit(t *testing.T) {
	grid := traceGrid(t)
	points := grid.Points()
	solo := sweep.Runner{}.Run(points)

	// The first point must also match a direct sequential sim.Run — the
	// sweep adds no interpretation of its own.
	p := points[0]
	direct := sim.Run(p.Topology.Topo, p.Workload.New(p.Rate, p.Topology.Topo.Nodes(), p.Topology.GroupSize),
		p.Slots, p.Drain, sim.Config{Seed: p.Seed, Wavelengths: p.Wavelengths})
	if solo[0].Metrics != direct {
		t.Fatalf("solo sweep diverged from direct run:\nsweep:  %v\ndirect: %v", solo[0].Metrics, direct)
	}

	for name, runner := range map[string]sweep.Runner{
		"batched-3":    {Workers: 2, Replicas: 3},
		"auto-batched": {Workers: 3, Replicas: sweep.AutoReplicas},
		"parallel":     {Replicas: sweep.AutoReplicas, Parallel: 2},
	} {
		got := runner.Run(points)
		for i := range solo {
			if got[i].Metrics != solo[i].Metrics {
				t.Fatalf("%s: point %d (%s) diverged from solo run", name, i, points[i].Label())
			}
		}
	}

	var shardRows [][]sweep.ShardResult
	for s := 0; s < 3; s++ {
		shard, err := sweep.ShardPoints(points, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		shardRows = append(shardRows, shard.ShardResults(sweep.Runner{Replicas: sweep.AutoReplicas}.Run(shard.Points)))
	}
	merged, err := sweep.MergeShardResults(points, shardRows...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solo {
		if merged[i].Metrics != solo[i].Metrics {
			t.Fatalf("sharded run diverged from solo at point %d (%s)", i, points[i].Label())
		}
	}
}

func TestTraceCacheKeyTracksContent(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	scenario := func(path string) sweep.Scenario {
		spec, err := workload.NewTraceSpec(path)
		if err != nil {
			t.Fatal(err)
		}
		return sweep.Scenario{
			Topology: sweep.Topology{Name: "SK(3,2,2)", Topo: sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph()), GroupSize: 3},
			Rate:     1, Seed: 1, Slots: 100, Drain: 100,
			Workload: spec,
		}
	}
	key := func(s sweep.Scenario) string {
		k, ok := s.CacheKey()
		if !ok {
			t.Fatal("trace scenario not hashable")
		}
		return k
	}

	base := key(scenario(write("a.csv", "0,1,2\n1,2,3\n")))
	if moved := key(scenario(write("b.csv", "0,1,2\n1,2,3\n"))); moved != base {
		t.Error("identical trace content at another path moved the key (should be content-addressed)")
	}
	if edited := key(scenario(write("c.csv", "0,1,2\n1,2,4\n"))); edited == base {
		t.Error("editing one trace record kept the cache key")
	}

	// Event traces ignore the rate axis: the key must normalize it.
	ev := scenario(write("d.csv", "0,1,2\n1,2,3\n"))
	ev2 := ev
	ev2.Rate = 0.2
	if key(ev) != key(ev2) {
		t.Error("event-form trace scenarios differing only in rate hashed differently")
	}
	// Rate traces honor it as a scale: the key must keep it.
	rt := scenario(write("e.csv", "0,0.5\n"))
	rt2 := rt
	rt2.Rate = 0.2
	if key(rt) == key(rt2) {
		t.Error("rate-form trace scenarios with different scales hashed identically")
	}

	// An untouched-trace rerun is a pure warm hit: zero recomputation.
	points := []sweep.Scenario{scenario(write("f.csv", "0,1,2\n2,0,4\n"))}
	cache := newMapCache()
	if _, err := (sweep.Runner{}).RunCached(context.Background(), points, cache, nil); err != nil {
		t.Fatal(err)
	}
	if cache.stores != 1 {
		t.Fatalf("cold trace run stored %d points, want 1", cache.stores)
	}
	computed := 0
	_, err := sweep.Runner{}.RunCached(context.Background(), points, cache, func(i int, res sweep.Result, hit bool) {
		if !hit {
			computed++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("warm rerun of an untouched trace recomputed %d points", computed)
	}
	if cache.stores != 1 {
		t.Fatalf("warm rerun stored again (stores=%d)", cache.stores)
	}
}

// TestGoldenTraceReplayOutput pins the "datacenter day" experiment: the
// paper trio replaying the checked-in example day trace renders byte for
// byte the golden curve (regenerate deliberately with -update).
func TestGoldenTraceReplayOutput(t *testing.T) {
	spec, err := workload.NewTraceSpec(exampleRateTrace)
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{
		Topologies: sweep.ComparableScaleTrio(),
		Rates:      []float64{1},
		Seeds:      []int64{1, 2},
		Slots:      300,
		Drain:      300,
		Workloads:  []workload.Spec{spec},
	}
	results := sweep.Runner{Replicas: sweep.AutoReplicas}.Run(grid.Points())
	rendered := render(t, results)
	golden := map[string][]byte{"golden_trace_curve.csv": rendered["golden_curve.csv"]}
	compareGolden(t, golden, "trace replay")
}
