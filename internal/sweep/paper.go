package sweep

import (
	"otisnet/internal/kautz"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

// ComparableScaleTrio builds the paper's §5-style comparison set at equal
// scale: SK(6,3,2) with N=72, POPS(9,8) with N=72, and the point-to-point
// de Bruijn(3,4) baseline with N=81. Both cmd/netsim ("-net all") and the
// T7 experiment use this single definition so the trio cannot drift. Group
// sizes (s, t, none) parameterize group-structured workloads.
func ComparableScaleTrio() []Topology {
	return []Topology{
		{Name: "SK(6,3,2)", Topo: sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph()), GroupSize: 6},
		{Name: "POPS(9,8)", Topo: sim.NewStackTopology(pops.New(9, 8).StackGraph()), GroupSize: 9},
		{Name: "deBruijn(3,4)", Topo: sim.NewPointToPointTopology(kautz.NewDeBruijn(3, 4).Digraph())},
	}
}
