package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteResultsCSV emits one row per raw scenario result.
func WriteResultsCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"topology", "traffic", "workload", "rate", "mode", "wavelengths", "fault", "seed",
		"slots", "injected", "delivered", "dropped", "backlog",
		"throughput", "per_node_throughput", "avg_latency", "avg_hops",
		"peak_queue", "deflections",
		"unroutable", "lost_to_faults", "reroutes", "recovery_slots",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		s, m := r.Scenario, r.Metrics
		row := []string{
			s.Topology.Name,
			s.TrafficName,
			s.Workload.Label(),
			fmt.Sprintf("%g", s.Rate),
			s.Mode.String(),
			fmt.Sprintf("%d", s.Wavelengths),
			s.Fault.Label(),
			fmt.Sprintf("%d", s.Seed),
			fmt.Sprintf("%d", m.Slots),
			fmt.Sprintf("%d", m.Injected),
			fmt.Sprintf("%d", m.Delivered),
			fmt.Sprintf("%d", m.Dropped),
			fmt.Sprintf("%d", m.Backlog),
			fmt.Sprintf("%g", m.Throughput()),
			fmt.Sprintf("%g", m.Throughput()/float64(s.Topology.Topo.Nodes())),
			fmt.Sprintf("%g", m.AvgLatency()),
			fmt.Sprintf("%g", m.AvgHops()),
			fmt.Sprintf("%d", m.PeakQueue),
			fmt.Sprintf("%d", m.Deflections),
			fmt.Sprintf("%d", m.Unroutable),
			fmt.Sprintf("%d", m.LostToFaults),
			fmt.Sprintf("%d", m.Reroutes),
			fmt.Sprintf("%d", m.RecoverySlots),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurveCSV emits one row per aggregated curve point.
func WriteCurveCSV(w io.Writer, points []CurvePoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"topology", "traffic", "workload", "rate", "mode", "wavelengths", "fault", "seeds",
		"throughput_mean", "throughput_std",
		"per_node_throughput_mean", "per_node_throughput_std",
		"latency_mean", "latency_std",
		"hops_mean", "hops_std",
		"delivered_frac_mean", "delivered_frac_std",
		"unroutable_mean", "lost_to_faults_mean", "recovery_slots_mean",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		row := []string{
			p.Topology,
			p.TrafficName,
			p.Workload.Label(),
			fmt.Sprintf("%g", p.Rate),
			p.Mode.String(),
			fmt.Sprintf("%d", p.Wavelengths),
			p.Fault.Label(),
			fmt.Sprintf("%d", p.Seeds),
			fmt.Sprintf("%g", p.Throughput.Mean),
			fmt.Sprintf("%g", p.Throughput.Std),
			fmt.Sprintf("%g", p.PerNodeThr.Mean),
			fmt.Sprintf("%g", p.PerNodeThr.Std),
			fmt.Sprintf("%g", p.Latency.Mean),
			fmt.Sprintf("%g", p.Latency.Std),
			fmt.Sprintf("%g", p.Hops.Mean),
			fmt.Sprintf("%g", p.Hops.Std),
			fmt.Sprintf("%g", p.DeliveredFrac.Mean),
			fmt.Sprintf("%g", p.DeliveredFrac.Std),
			fmt.Sprintf("%g", p.Unroutable.Mean),
			fmt.Sprintf("%g", p.LostToFaults.Mean),
			fmt.Sprintf("%g", p.RecoverySlots.Mean),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Record is the flat JSON shape of one result (topologies are not
// serializable, so the scenario is flattened to its identifying fields).
// It is the row format of WriteResultsJSON and of the sweep service's
// NDJSON result stream (internal/sweepserver).
type Record struct {
	Topology    string  `json:"topology"`
	Traffic     string  `json:"traffic"`
	Workload    string  `json:"workload"`
	Rate        float64 `json:"rate"`
	Mode        string  `json:"mode"`
	Wavelengths int     `json:"wavelengths"`
	Fault       string  `json:"fault"`
	Seed        int64   `json:"seed"`
	Slots       int     `json:"slots"`
	Injected    int     `json:"injected"`
	Delivered   int     `json:"delivered"`
	Dropped     int     `json:"dropped"`
	Backlog     int     `json:"backlog"`
	Throughput  float64 `json:"throughput"`
	AvgLatency  float64 `json:"avg_latency"`
	AvgHops     float64 `json:"avg_hops"`
	PeakQueue   int     `json:"peak_queue"`
	Deflections int     `json:"deflections"`

	Unroutable    int `json:"unroutable"`
	LostToFaults  int `json:"lost_to_faults"`
	Reroutes      int `json:"reroutes"`
	RecoverySlots int `json:"recovery_slots"`
}

// NewRecord flattens one result into its row form.
func NewRecord(r Result) Record {
	s, m := r.Scenario, r.Metrics
	return Record{
		Topology:      s.Topology.Name,
		Traffic:       s.TrafficName,
		Workload:      s.Workload.Label(),
		Rate:          s.Rate,
		Mode:          s.Mode.String(),
		Wavelengths:   s.Wavelengths,
		Fault:         s.Fault.Label(),
		Seed:          s.Seed,
		Slots:         m.Slots,
		Injected:      m.Injected,
		Delivered:     m.Delivered,
		Dropped:       m.Dropped,
		Backlog:       m.Backlog,
		Throughput:    m.Throughput(),
		AvgLatency:    m.AvgLatency(),
		AvgHops:       m.AvgHops(),
		PeakQueue:     m.PeakQueue,
		Deflections:   m.Deflections,
		Unroutable:    m.Unroutable,
		LostToFaults:  m.LostToFaults,
		Reroutes:      m.Reroutes,
		RecoverySlots: m.RecoverySlots,
	}
}

// WriteResultsJSON emits the raw results as a JSON array.
func WriteResultsJSON(w io.Writer, results []Result) error {
	out := make([]Record, len(results))
	for i, r := range results {
		out[i] = NewRecord(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCurveJSON emits the aggregated curve points as a JSON array.
func WriteCurveJSON(w io.Writer, points []CurvePoint) error {
	type statJSON struct {
		Mean float64 `json:"mean"`
		Std  float64 `json:"std"`
	}
	type pointJSON struct {
		Topology      string   `json:"topology"`
		Traffic       string   `json:"traffic"`
		Workload      string   `json:"workload"`
		Rate          float64  `json:"rate"`
		Mode          string   `json:"mode"`
		Wavelengths   int      `json:"wavelengths"`
		Fault         string   `json:"fault"`
		Seeds         int      `json:"seeds"`
		Throughput    statJSON `json:"throughput"`
		PerNodeThr    statJSON `json:"per_node_throughput"`
		Latency       statJSON `json:"latency"`
		Hops          statJSON `json:"hops"`
		DeliveredFrac statJSON `json:"delivered_frac"`
		Unroutable    statJSON `json:"unroutable"`
		LostToFaults  statJSON `json:"lost_to_faults"`
		RecoverySlots statJSON `json:"recovery_slots"`
	}
	out := make([]pointJSON, len(points))
	for i, p := range points {
		out[i] = pointJSON{
			Topology:      p.Topology,
			Traffic:       p.TrafficName,
			Workload:      p.Workload.Label(),
			Rate:          p.Rate,
			Mode:          p.Mode.String(),
			Wavelengths:   p.Wavelengths,
			Fault:         p.Fault.Label(),
			Seeds:         p.Seeds,
			Throughput:    statJSON(p.Throughput),
			PerNodeThr:    statJSON(p.PerNodeThr),
			Latency:       statJSON(p.Latency),
			Hops:          statJSON(p.Hops),
			DeliveredFrac: statJSON(p.DeliveredFrac),
			Unroutable:    statJSON(p.Unroutable),
			LostToFaults:  statJSON(p.LostToFaults),
			RecoverySlots: statJSON(p.RecoverySlots),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
