package sim_test

// Deterministic ReplicaSet tests for the divergence edge cases a batch
// must survive: replicas retiring at different slots, a replica running
// fully idle (empty active list) while its siblings saturate, per-replica
// fault events invalidating route rows mid-batch, and warm re-arming
// across batches. Each test pins batched results against solo Engine runs
// — the bit-for-bit contract the fuzz target checks at scale.

import (
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func rsTestTopology() sim.Topology {
	return sim.NewStackTopology(stackkautz.New(2, 3, 2).StackGraph())
}

// soloRun executes one scenario on a fresh Engine, returning metrics and
// the delivery stream.
func soloRun(t *testing.T, topo sim.Topology, tr sim.Traffic, slots, drain int, cfg sim.Config) (sim.Metrics, []sim.Message) {
	t.Helper()
	eng := sim.NewEngine(topo, cfg)
	var got []sim.Message
	eng.OnDeliver = func(m sim.Message, slot int) { got = append(got, m) }
	return eng.Run(tr, slots, drain, cfg), got
}

// checkReplica asserts replica i of a finished batch matches its solo run.
func checkReplica(t *testing.T, rs *sim.ReplicaSet, i int, want sim.Metrics, wantDeliv, gotDeliv []sim.Message) {
	t.Helper()
	if got := rs.Metrics(i); got != want {
		t.Errorf("replica %d metrics diverged\nbatched %v\nsolo    %v", i, got, want)
	}
	if len(gotDeliv) != len(wantDeliv) {
		t.Fatalf("replica %d: %d deliveries batched vs %d solo", i, len(gotDeliv), len(wantDeliv))
	}
	for j := range gotDeliv {
		if gotDeliv[j] != wantDeliv[j] {
			t.Fatalf("replica %d delivery %d: %+v batched, %+v solo", i, j, gotDeliv[j], wantDeliv[j])
		}
	}
}

// TestReplicaSetDivergentRetirement batches scenarios whose generation and
// drain phases end at very different slots — a short light run, a long
// saturated store-and-forward run, and a bounded-queue deflection run —
// and requires every replica to retire exactly where its solo run stops.
func TestReplicaSetDivergentRetirement(t *testing.T) {
	base := rsTestTopology()
	type scen struct {
		rate  float64
		slots int
		drain int
		cfg   sim.Config
	}
	scens := []scen{
		{rate: 0.1, slots: 20, drain: 50, cfg: sim.Config{Seed: 7}},
		{rate: 0.9, slots: 200, drain: 400, cfg: sim.Config{Seed: 8}},
		{rate: 0.6, slots: 120, drain: 10, cfg: sim.Config{Seed: 9, MaxQueue: 2, Deflection: true}},
		{rate: 0.4, slots: 60, drain: 200, cfg: sim.Config{Seed: 10, Wavelengths: 2}},
	}
	specs := make([]sim.ReplicaSpec, len(scens))
	gotDeliv := make([][]sim.Message, len(scens))
	for i, sc := range scens {
		i := i
		specs[i] = sim.ReplicaSpec{
			Config:      sc.cfg,
			Traffic:     sim.UniformTraffic{Rate: sc.rate},
			Slots:       sc.slots,
			Drain:       sc.drain,
			StreamGroup: -1,
			OnDeliver:   func(m sim.Message, slot int) { gotDeliv[i] = append(gotDeliv[i], m) },
		}
	}
	rs := sim.NewReplicaSet(base)
	rs.Configure(specs)
	rs.RunAll()

	slotsSeen := map[int]bool{}
	for i, sc := range scens {
		want, wantDeliv := soloRun(t, base, sim.UniformTraffic{Rate: sc.rate}, sc.slots, sc.drain, sc.cfg)
		checkReplica(t, rs, i, want, wantDeliv, gotDeliv[i])
		slotsSeen[want.Slots] = true
	}
	if len(slotsSeen) < 3 {
		t.Fatalf("retirement slots %v not divergent enough to exercise independent retirement", slotsSeen)
	}
}

// TestReplicaSetIdleReplicaAmongSiblings runs a zero-rate replica — its
// active list stays empty for the whole batch — beside saturated siblings,
// and a zero-slot replica that must retire before stepping once.
func TestReplicaSetIdleReplicaAmongSiblings(t *testing.T) {
	base := rsTestTopology()
	scens := []struct {
		rate         float64
		slots, seed  int
		wantInjected bool
	}{
		{rate: 0, slots: 100, seed: 1, wantInjected: false},
		{rate: 0.8, slots: 100, seed: 2, wantInjected: true},
		{rate: 0.5, slots: 0, seed: 3, wantInjected: false},
	}
	specs := make([]sim.ReplicaSpec, len(scens))
	for i, sc := range scens {
		specs[i] = sim.ReplicaSpec{
			Config:      sim.Config{Seed: int64(sc.seed)},
			Traffic:     sim.UniformTraffic{Rate: sc.rate},
			Slots:       sc.slots,
			Drain:       300,
			StreamGroup: -1,
		}
	}
	rs := sim.NewReplicaSet(base)
	rs.Configure(specs)
	rs.RunAll()

	for i, sc := range scens {
		want, _ := soloRun(t, base, sim.UniformTraffic{Rate: sc.rate}, sc.slots, 300, sim.Config{Seed: int64(sc.seed)})
		if got := rs.Metrics(i); got != want {
			t.Errorf("replica %d metrics diverged\nbatched %v\nsolo    %v", i, got, want)
		}
		if (want.Injected > 0) != sc.wantInjected {
			t.Fatalf("replica %d: scenario shape wrong (injected=%d)", i, want.Injected)
		}
	}
	if got := rs.Metrics(2); got.Slots != 0 {
		t.Fatalf("zero-slot replica stepped %d slots; want 0", got.Slots)
	}
}

// TestReplicaSetPerReplicaFaultInvalidation batches a fault-free replica
// with replicas whose private fault wrappers fire different event plans
// mid-run, invalidating route rows only in their own view. The fault-free
// sibling shares an injection stream with one faulted replica, so the test
// also pins that a mid-batch view recompile cannot leak into the shared
// snapshot or the shared stream.
func TestReplicaSetPerReplicaFaultInvalidation(t *testing.T) {
	base := rsTestTopology()
	cfg := sim.Config{Seed: 11}
	slots, drain, rate := 150, 400, 0.6

	planA := faults.Random(faults.KindNode, 2, 30, base, 101)
	planB := faults.Random(faults.KindCoupler, 3, 80, base, 102)
	specs := []sim.ReplicaSpec{
		{Config: cfg, Traffic: sim.UniformTraffic{Rate: rate}, Slots: slots, Drain: drain, StreamGroup: 0},
		{Topo: faults.Wrap(base, planA), Config: cfg, Traffic: sim.UniformTraffic{Rate: rate}, Slots: slots, Drain: drain, StreamGroup: 0},
		{Topo: faults.Wrap(base, planB), Config: sim.Config{Seed: 12, Deflection: true}, Traffic: sim.UniformTraffic{Rate: rate}, Slots: slots, Drain: drain, StreamGroup: -1},
	}
	rs := sim.NewReplicaSet(base)
	rs.Configure(specs)
	rs.RunAll()

	wantFree, _ := soloRun(t, base, sim.UniformTraffic{Rate: rate}, slots, drain, cfg)
	wantA, _ := soloRun(t, faults.Wrap(base, planA), sim.UniformTraffic{Rate: rate}, slots, drain, cfg)
	wantB, _ := soloRun(t, faults.Wrap(base, planB), sim.UniformTraffic{Rate: rate}, slots, drain, sim.Config{Seed: 12, Deflection: true})
	for i, want := range []sim.Metrics{wantFree, wantA, wantB} {
		if got := rs.Metrics(i); got != want {
			t.Errorf("replica %d metrics diverged\nbatched %v\nsolo    %v", i, got, want)
		}
	}
	if wantA.LostToFaults+wantA.Unroutable+wantA.Reroutes == 0 {
		t.Fatal("node-fault plan disturbed nothing; the invalidation path was not exercised")
	}
	if wantB.Reroutes == 0 && wantB.Deflections == 0 {
		t.Fatal("coupler-fault plan disturbed nothing; the invalidation path was not exercised")
	}
	if wantFree != rs.Metrics(0) {
		t.Fatal("fault-free sibling contaminated by a faulted replica's view")
	}
}

// TestReplicaSetWarmReuse re-arms one set for a second batch with changed
// seeds, rates and fault plans: warm slabs, cached views and pooled group
// RNGs must still reproduce solo runs bit for bit.
func TestReplicaSetWarmReuse(t *testing.T) {
	base := rsTestTopology()
	ft := faults.Wrap(base, faults.Random(faults.KindNode, 1, 40, base, 55))
	rs := sim.NewReplicaSet(base)

	for round := 0; round < 3; round++ {
		seed := int64(20 + round)
		rate := 0.3 + 0.2*float64(round)
		plan := faults.Random(faults.KindNode, 1+round%2, 40+10*round, base, seed)
		ft.SetPlan(plan)
		specs := []sim.ReplicaSpec{
			{Config: sim.Config{Seed: seed}, Traffic: sim.UniformTraffic{Rate: rate}, Slots: 100, Drain: 300, StreamGroup: 0},
			{Config: sim.Config{Seed: seed, Deflection: true}, Traffic: sim.UniformTraffic{Rate: rate}, Slots: 100, Drain: 300, StreamGroup: 0},
			{Topo: ft, Config: sim.Config{Seed: seed + 100}, Traffic: sim.UniformTraffic{Rate: rate}, Slots: 100, Drain: 300, StreamGroup: -1},
		}
		rs.Configure(specs)
		rs.RunAll()

		wantSF, _ := soloRun(t, base, sim.UniformTraffic{Rate: rate}, 100, 300, sim.Config{Seed: seed})
		wantDefl, _ := soloRun(t, base, sim.UniformTraffic{Rate: rate}, 100, 300, sim.Config{Seed: seed, Deflection: true})
		wantFault, _ := soloRun(t, faults.Wrap(base, plan), sim.UniformTraffic{Rate: rate}, 100, 300, sim.Config{Seed: seed + 100})
		for i, want := range []sim.Metrics{wantSF, wantDefl, wantFault} {
			if got := rs.Metrics(i); got != want {
				t.Errorf("round %d replica %d metrics diverged\nbatched %v\nsolo    %v", round, i, got, want)
			}
		}
	}
}
