package sim

import (
	"fmt"
	"math/rand"
)

// Injection is a message creation request: src wants to send to dst.
type Injection struct {
	Src, Dst int
}

// Traffic generates the injections of each slot. The models in this file
// are the engine's built-ins; internal/workload provides the richer
// structured generators (OTIS transpose, group hotspot, bursty on/off,
// collective replay) behind the same interface.
type Traffic interface {
	// Generate appends the injections of one slot to buf and returns the
	// extended slice. n is the node count. Appending into a caller-owned
	// scratch slice keeps the simulation loop allocation-free once the
	// scratch has reached its high-water capacity.
	Generate(buf []Injection, slot, n int, rng *rand.Rand) []Injection
}

// UniformRater is implemented by traffic models whose Generate is exactly
// the uniform Bernoulli model at some per-node rate (bit-for-bit the RNG
// consumption of UniformTraffic). Engine.Run fuses such models into its
// injection loop — same stream, no intermediate Injection buffer — so only
// declare it on models with precisely that Generate behavior.
type UniformRater interface {
	UniformRate() float64
}

// UniformTraffic injects, per node per slot, a message with probability
// Rate, to a destination chosen uniformly among the other nodes. This is
// the canonical load model of the multihop lightwave literature.
type UniformTraffic struct {
	// Rate is the per-node injection probability per slot, in [0,1].
	Rate float64
}

// UniformRate implements UniformRater.
func (t UniformTraffic) UniformRate() float64 { return t.Rate }

// Generate implements Traffic.
func (t UniformTraffic) Generate(buf []Injection, _, n int, rng *rand.Rand) []Injection {
	for u := 0; u < n; u++ {
		if rng.Float64() < t.Rate {
			dst := rng.Intn(n - 1)
			if dst >= u {
				dst++
			}
			buf = append(buf, Injection{Src: u, Dst: dst})
		}
	}
	return buf
}

// PermutationTraffic injects, with probability Rate per node per slot, a
// message to a fixed permutation partner — a worst-case pattern with no
// destination locality.
type PermutationTraffic struct {
	Rate float64
	Perm []int
}

// NewPermutationTraffic builds a random fixed-point-free-ish permutation
// pattern over n nodes.
func NewPermutationTraffic(rate float64, n int, rng *rand.Rand) PermutationTraffic {
	perm := rng.Perm(n)
	// Displace fixed points cyclically so nobody sends to itself.
	for i, p := range perm {
		if p == i {
			perm[i] = (i + 1) % n
		}
	}
	return PermutationTraffic{Rate: rate, Perm: perm}
}

// Generate implements Traffic.
func (t PermutationTraffic) Generate(buf []Injection, _, n int, rng *rand.Rand) []Injection {
	if len(t.Perm) != n {
		panic(fmt.Sprintf("sim: permutation over %d nodes used on %d-node network", len(t.Perm), n))
	}
	for u := 0; u < n; u++ {
		if t.Perm[u] != u && rng.Float64() < t.Rate {
			buf = append(buf, Injection{Src: u, Dst: t.Perm[u]})
		}
	}
	return buf
}

// HotspotTraffic is uniform traffic where a fraction of messages is
// redirected to a single hot node, modeling server-style contention.
type HotspotTraffic struct {
	Rate     float64
	Hot      int
	Fraction float64
}

// Generate implements Traffic.
func (t HotspotTraffic) Generate(buf []Injection, _, n int, rng *rand.Rand) []Injection {
	for u := 0; u < n; u++ {
		if rng.Float64() >= t.Rate {
			continue
		}
		dst := t.Hot
		if u == t.Hot || rng.Float64() >= t.Fraction {
			dst = rng.Intn(n - 1)
			if dst >= u {
				dst++
			}
		}
		buf = append(buf, Injection{Src: u, Dst: dst})
	}
	return buf
}

// BurstTraffic injects a fixed batch of random messages at slot 0 and
// nothing afterwards — used to measure drain time of a finite workload.
type BurstTraffic struct {
	Messages int
}

// Generate implements Traffic.
func (t BurstTraffic) Generate(buf []Injection, slot, n int, rng *rand.Rand) []Injection {
	if slot != 0 || n < 2 {
		return buf
	}
	for i := 0; i < t.Messages; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		buf = append(buf, Injection{Src: src, Dst: dst})
	}
	return buf
}
