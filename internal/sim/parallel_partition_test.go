package sim

// Table-driven unit tests for the shard partitioner: every index must be
// covered exactly once for every worker count — including P far beyond
// the coupler count, where trailing shards are empty — and the flattened
// word->owner lookup must agree with the boundaries it was built from.

import (
	"testing"

	"otisnet/internal/digraph"
)

func TestShardRangesCoverage(t *testing.T) {
	totals := []int{0, 1, 5, 63, 64, 65, 100, 127, 128, 192, 1000, 4096, 12288}
	ps := []int{1, 2, 3, 4, 5, 7, 8, 16, 63, 64}
	for _, total := range totals {
		for _, p := range ps {
			b := shardRanges(total, p)
			if len(b) != p+1 {
				t.Fatalf("shardRanges(%d,%d): %d boundaries, want %d", total, p, len(b), p+1)
			}
			if b[0] != 0 || b[p] != int32(total) {
				t.Fatalf("shardRanges(%d,%d): bounds [%d,%d], want [0,%d]", total, p, b[0], b[p], total)
			}
			for i := 1; i <= p; i++ {
				if b[i] < b[i-1] {
					t.Fatalf("shardRanges(%d,%d): boundary %d decreases (%d < %d)", total, p, i, b[i], b[i-1])
				}
				if i < p && b[i]%64 != 0 {
					t.Fatalf("shardRanges(%d,%d): interior boundary %d = %d not 64-aligned", total, p, i, b[i])
				}
			}
			// Contiguous monotone boundaries from 0 to total cover every
			// index exactly once by construction; verify the per-index
			// owner is well-defined and matches the word lookup.
			ow := ownerWords(b, total)
			if want := (total + 63) / 64; len(ow) != want {
				t.Fatalf("ownerWords(%d,%d): %d words, want %d", total, p, len(ow), want)
			}
			owner := 0
			for x := 0; x < total; x++ {
				for int32(x) >= b[owner+1] {
					owner++
				}
				if got := int(ow[x>>6]); got != owner {
					t.Fatalf("ownerWords(%d,%d): index %d owned by %d, boundaries say %d", total, p, x, got, owner)
				}
			}
		}
	}
}

func TestShardRangesEmptyShards(t *testing.T) {
	// P far beyond total/64: the word supply runs out and trailing shards
	// must be empty, never overlapping.
	b := shardRanges(10, 16)
	nonEmpty := 0
	for i := 0; i < 16; i++ {
		if b[i+1] > b[i] {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("shardRanges(10,16): %d non-empty shards, want 1 (one word of 10 couplers)", nonEmpty)
	}
}

// TestParallelFallbackThreshold pins the engagement contract: an armed
// engine with fewer active nodes than the threshold steps serially (no
// parallel slots tallied), and forcing the threshold to zero routes the
// same workload through the sharded path.
func TestParallelFallbackThreshold(t *testing.T) {
	topo := lineTopo(64)
	run := func(threshold int) (parSlots int64, m Metrics) {
		e := NewEngine(topo, Config{Seed: 1})
		defer e.Close()
		e.SetParallel(4)
		e.SetParallelThreshold(threshold)
		for s := 0; s < 50; s++ {
			e.Inject(s%64, (s+7)%64)
			e.Step()
		}
		for e.Backlog() > 0 {
			e.Step()
		}
		return e.obs.parSlots, e.Metrics()
	}
	serialSlots, mSerial := run(defaultParallelThreshold)
	if serialSlots != 0 {
		t.Fatalf("below-threshold run used the parallel path for %d slots", serialSlots)
	}
	parSlots, mPar := run(0)
	if parSlots == 0 {
		t.Fatal("threshold-0 run never used the parallel path")
	}
	if mSerial != mPar {
		t.Fatalf("fallback and parallel runs diverged:\nserial   %v\nparallel %v", mSerial, mPar)
	}
}

// lineTopo builds a doubly linked point-to-point ring — the smallest
// strongly connected topology with per-node routing choice — for the
// internal threshold test.
func lineTopo(n int) Topology {
	g := digraph.New(n)
	for u := 0; u < n; u++ {
		g.AddArc(u, (u+1)%n)
		g.AddArc(u, (u+n-1)%n)
	}
	return NewPointToPointTopology(g)
}
