package sim

// Engine observability tests: the NDJSON trace export (sampling, event
// schema, consistency with the run's metrics), the queue-depth bucket
// mapping against the registered histogram, and the once-per-scenario
// flush contract on both the solo-engine and ReplicaSet paths.

import (
	"bytes"
	"encoding/json"
	"testing"

	"otisnet/internal/export"
	"otisnet/internal/obs"
)

func TestQDepthBucketMatchesHistogram(t *testing.T) {
	// The hot path computes bucket indices with bits.Len; they must agree
	// with the registered histogram's binary-search mapping everywhere in
	// range (the overflow clamp is the only divergence past the last bound).
	for d := 1; d <= 1024; d++ {
		if got, want := qDepthBucket(d), engineObs.queueDepth.BucketOf(float64(d)); got != want {
			t.Fatalf("qDepthBucket(%d) = %d, histogram BucketOf = %d", d, got, want)
		}
	}
	for _, d := range []int{1025, 4096, 1 << 20} {
		if got := qDepthBucket(d); got != qDepthBuckets-1 {
			t.Fatalf("qDepthBucket(%d) = %d, want overflow bucket %d", d, got, qDepthBuckets-1)
		}
	}
}

// TestTraceSingleRun drives a traced run end to end and checks the event
// stream: only sampled slots emit, slot summaries carry monotonically
// non-decreasing cumulative counters, and deliver events land on the slot
// after their sampled transmission slot.
func TestTraceSingleRun(t *testing.T) {
	const sample = 5
	topo := skTopology(3, 2, 2)
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf, sample)
	eng := NewEngine(topo, Config{Seed: 11})
	eng.SetTrace(tr)
	m := eng.Run(UniformTraffic{Rate: 0.4}, 200, 200, Config{Seed: 11})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() == 0 {
		t.Fatal("traced run emitted no events")
	}

	var slots []TraceSlotEvent
	var delivers []TraceDeliverEvent
	truncated, err := export.ForEachNDJSONLine(&buf, func(line []byte) error {
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return err
		}
		switch kind.Kind {
		case "slot":
			var ev TraceSlotEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return err
			}
			slots = append(slots, ev)
		case "deliver":
			var ev TraceDeliverEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return err
			}
			delivers = append(delivers, ev)
		default:
			t.Fatalf("unknown trace event kind %q", kind.Kind)
		}
		return nil
	})
	if err != nil || truncated {
		t.Fatalf("parsing trace: err=%v truncated=%v", err, truncated)
	}
	if int64(len(slots)+len(delivers)) != tr.Events() {
		t.Fatalf("parsed %d events, sink counted %d", len(slots)+len(delivers), tr.Events())
	}
	if len(slots) == 0 || len(delivers) == 0 {
		t.Fatalf("want both event kinds, got %d slot / %d deliver", len(slots), len(delivers))
	}

	prev := TraceSlotEvent{Slot: -1}
	for _, ev := range slots {
		if ev.Slot%sample != 0 {
			t.Fatalf("slot event at unsampled slot %d (sample %d)", ev.Slot, sample)
		}
		if ev.Slot <= prev.Slot {
			t.Fatalf("slot events out of order: %d after %d", ev.Slot, prev.Slot)
		}
		if ev.Injected < prev.Injected || ev.Delivered < prev.Delivered ||
			ev.Dropped < prev.Dropped || ev.Deflections < prev.Deflections {
			t.Fatalf("cumulative counters regressed: %+v after %+v", ev, prev)
		}
		prev = ev
	}
	last := slots[len(slots)-1]
	if last.Injected > m.Injected || last.Delivered > m.Delivered {
		t.Fatalf("last slot event %+v exceeds final metrics %+v", last, m)
	}

	for _, ev := range delivers {
		// Transmission happens on a sampled slot; arrival is stamped one
		// slot later.
		if (ev.Slot-1)%sample != 0 {
			t.Fatalf("deliver event at slot %d not adjacent to a sampled slot", ev.Slot)
		}
		if ev.Hops < 1 || ev.Born < 0 || ev.Born >= ev.Slot {
			t.Fatalf("implausible deliver event %+v", ev)
		}
		if ev.Src < 0 || ev.Src >= topo.Nodes() || ev.Dst < 0 || ev.Dst >= topo.Nodes() {
			t.Fatalf("deliver endpoints out of range: %+v", ev)
		}
	}
}

// TestObsFlushOnRunAndRetirement checks the once-per-scenario flush on
// both execution paths: a solo Engine.Run and ReplicaSet retirement must
// each publish their scenario's tallies into the shared registry. Deltas
// are >=-checks because the registry is process-global.
func TestObsFlushOnRunAndRetirement(t *testing.T) {
	topo := skTopology(3, 2, 2)
	before := engineObs.scenarios.Value()
	beforeDelivered := engineObs.delivered.Value()
	beforeSlots := engineObs.slots.Value()
	m := Run(topo, UniformTraffic{Rate: 0.3}, 100, 100, Config{Seed: 3})
	if d := engineObs.scenarios.Value() - before; d < 1 {
		t.Fatalf("solo run flushed %d scenarios, want >= 1", d)
	}
	if d := engineObs.delivered.Value() - beforeDelivered; d < int64(m.Delivered) {
		t.Fatalf("delivered counter moved %d, want >= %d", d, m.Delivered)
	}
	if d := engineObs.slots.Value() - beforeSlots; d < int64(m.Slots) {
		t.Fatalf("slots counter moved %d, want >= %d", d, m.Slots)
	}

	before = engineObs.scenarios.Value()
	beforeBatches := engineObs.batchRuns.Value()
	rs := NewReplicaSet(topo)
	rs.Configure([]ReplicaSpec{
		{Config: Config{Seed: 4}, Traffic: UniformTraffic{Rate: 0.2}, Slots: 50, Drain: 50, StreamGroup: -1},
		{Config: Config{Seed: 5}, Traffic: UniformTraffic{Rate: 0.5}, Slots: 80, Drain: 80, StreamGroup: -1},
	})
	rs.RunAll()
	if d := engineObs.scenarios.Value() - before; d < 2 {
		t.Fatalf("batch of 2 flushed %d scenarios, want >= 2", d)
	}
	if d := engineObs.batchRuns.Value() - beforeBatches; d < 1 {
		t.Fatalf("batch runs counter moved %d, want >= 1", d)
	}
}
