package sim

// Intra-slot parallelism: one slot's work is partitioned across P shard
// workers — by coupler range for arbitration/transmission and by node
// range for queue mutation — with a deterministic merge, so a parallel
// step is bit-for-bit identical to the serial step (same Metrics, same
// OnDeliver stream, same queue evolution). The phases per slot:
//
//	A  (parallel, by active-list chunk): read-only request generation.
//	   Each worker peeks the head-of-line message of its share of active
//	   nodes (skipping unroutable heads exactly as the serial phase 1
//	   drops them — the drops are recorded as ops, not applied), and
//	   routes the resulting request, message included, to the outbox of
//	   the worker owning its coupler.
//	B  (parallel, by coupler range): each worker drains its inboxes and
//	   arbitrates its own couplers — argmin by round-robin key for W = 1,
//	   sorted take-W for W > 1. Round-robin keys are distinct per
//	   coupler, so arbitration is independent of inbox drain order.
//	C  (serial, deflection only): losers grab free couplers in ascending
//	   node order. Free-coupler availability is inherently sequential, so
//	   this phase runs on the coordinator; its cost is bounded by the
//	   losers of the slot.
//	D  (parallel, by coupler range): each worker scans its own touched
//	   words in ascending coupler order and converts grants into queue
//	   ops (pop at the sender, push at the next hop) routed to the
//	   worker owning each node, plus shard-local delivery tallies and
//	   buffered OnDeliver events. Without deflection B and D fuse into
//	   one phase.
//	E  (parallel, by node range): each worker applies the ops addressed
//	   to its nodes — phase A drops first, then transmission ops in
//	   source-worker order, which is globally coupler-ascending because
//	   each source owns a contiguous coupler range. Per-node op order
//	   therefore matches the serial phase 4 exactly (MaxQueue drops,
//	   queue-depth tallies and head-of-line recomputes included).
//	   Activations/deactivations are recorded locally, not applied.
//	F  (serial): merge shard tallies into Metrics, fix up the active
//	   list (deactivations then activations — no node can activate
//	   before its only pop), and replay buffered OnDeliver events in
//	   worker order, i.e. ascending coupler order.
//
// Workers are persistent goroutines parked on channels between phases
// (no per-slot spawn); a phase cycle is two channel hops per helper.
// Slots whose active-node count is under the engagement threshold step
// serially — both paths produce identical state, so mixing is safe.
// The same crew primitive parallelizes ReplicaSet.StepAll across
// replicas (independent state over one shared snapshot).

import (
	"math/bits"
	"runtime"
	"time"

	"otisnet/internal/obs"
)

// maxParallelShards caps the shard-worker count; beyond this the
// per-slot barrier cost dominates any conceivable per-shard work.
const maxParallelShards = 64

// defaultParallelThreshold is the active-node count below which a
// parallel-armed replica steps serially: under ~a few hundred active
// nodes the phase barriers (a handful of microseconds) cost more than
// the sharded work saves. Tests lower it to force tiny-N slots through
// the parallel path.
const defaultParallelThreshold = 512

// parImbBuckets is the shard-imbalance histogram size: power-of-two
// bounds from 1 µs to ~1 ms plus the overflow bucket.
const parImbBuckets = 12

// parObs is the parallel-path metric family; like every engine family it
// is registered at package init and fed only at scenario flush (see the
// obs.go overhead contract) — per-slot tallies stay in replica-local
// memory.
var parObs = struct {
	shards    *obs.Gauge
	slots     *obs.Counter
	imbalance *obs.Histogram
}{
	shards: obs.Default().Gauge("netsim_sim_parallel_shards",
		"Shard workers of the most recently armed parallel engine (0 until SetParallel enables one)."),
	slots: obs.Default().Counter("netsim_sim_parallel_slots_total",
		"Slots stepped through the sharded parallel path across completed scenarios."),
	imbalance: obs.Default().Histogram("netsim_sim_parallel_imbalance_ns",
		"Per-slot shard imbalance (max minus min shard busy-nanoseconds) on parallel slots, across completed scenarios.",
		[]float64{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20}),
}

// parImbBucket maps a per-slot busy-ns imbalance onto its histogram
// bucket (same power-of-two trick as qDepthBucket, in units of 1024 ns).
func parImbBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len(uint(ns-1) >> 10)
	if i >= parImbBuckets {
		i = parImbBuckets - 1
	}
	return i
}

// wReq is a shard-routed transmission request: the precompiled route
// decision plus the peeked head-of-line message. The message rides along
// so the coupler-owner worker never reads another shard's queue — queues
// stay unmutated until phase E, so the peek equals front() at
// transmission time.
type wReq struct {
	q qmsg
	r txRequest
}

// qOp is one queue mutation routed to the owner of its node: a pop of
// the head-of-line message, or a push of a relayed message.
type qOp struct {
	node int32
	push bool
	msg  qmsg // valid when push
}

// aDrop is a phase A unroutable-head drop, deferred to phase E: the
// node's head-of-line message is discarded. Serial phase 1 drops exactly
// one unroutable head per node per slot and the node issues no request
// that slot — the refreshed head waits for the next arbitration round.
type aDrop struct {
	node int32
}

// deliverEvent is one buffered delivery, replayed through onDeliver in
// ascending coupler order during the merge.
type deliverEvent struct {
	q    qmsg
	hops int32
}

// shardTally is one worker's slot-local metric deltas; all of it is
// order-free (sums and maxes), merged serially in phase F.
type shardTally struct {
	delivered    int
	dropped      int
	unroutable   int
	totalLatency int
	totalHops    int
	backlogDelta int
	peakQueue    int
	touchedSum   int64
	qDepth       [qDepthBuckets]int64
	qDepthSum    int64
}

// parShard is one worker's preallocated scratch. Outboxes are indexed by
// destination shard, so every cross-shard handoff is a single-writer
// append in one phase and a read-only drain in the next.
type parShard struct {
	inbox   [][]wReq  // [dst] requests for couplers owned by dst (phase A -> B)
	drops   [][]aDrop // [dst] unroutable-head drops for nodes owned by dst (A -> E)
	ops     [][]qOp   // [dst] queue mutations for nodes owned by dst (D -> E)
	reqMask []uint64  // deflection: nodes of this shard's chunk that requested
	events  []deliverEvent
	reqBuf  []wReq  // W > 1: drained candidates, indexed by byCoupler
	keys    []int   // W > 1: per-worker arbitration sort keys
	acts    []int32 // phase E: nodes that became active
	deacts  []int32 // phase E: nodes that went idle
	t       shardTally
	busyNs  int64
}

// Parallel phase ids; the crew workers dispatch on the current one.
const (
	parPhaseA    = iota // request generation
	parPhaseBD1         // W = 1, no deflection: arbitration fused with transmission
	parPhaseArb1        // W = 1, deflection: arbitration only
	parPhaseTx1         // W = 1, deflection: transmission
	parPhaseBDW         // W > 1, no deflection: fused
	parPhaseArbW        // W > 1, deflection: arbitration only
	parPhaseTxW         // W > 1, deflection: transmission
	parPhaseE           // queue-op application
)

// parState is a replica's parallel machinery: shard ranges, per-shard
// scratch and the worker crew. Created by Engine.SetParallel.
type parState struct {
	e         *replica
	p         int
	threshold int
	phase     int

	nodeRange  []int32 // p+1 boundaries over [0, n), 64-aligned interiors
	coupRange  []int32 // p+1 boundaries over [0, m), 64-aligned interiors
	nodeOwnerW []int8  // node bitmap word -> owning shard
	coupOwnerW []int8  // coupler bitmap word -> owning shard

	shards []parShard
	pgrant []wReq // per-coupler winning grant (W = 1), valid under touched
	// Lazily sized on first use of the feature that needs them:
	pGranted [][]wReq // per-coupler grant lists (W > 1 with deflection)
	preq     []wReq   // per-node peeked request (deflection phase C)
	mask     []uint64 // deflection scratch: OR of shard reqMasks

	crew *crew
}

// crew is a pool of persistent phase workers parked on channels. The
// coordinator goroutine acts as worker 0, so a p-shard crew spawns p-1
// goroutines; cycle is a full barrier (every worker runs fn once).
type crew struct {
	p     int
	fn    func(worker int)
	start []chan struct{}
	done  chan struct{}
}

func newCrew(p int, fn func(worker int)) *crew {
	c := &crew{p: p, fn: fn, start: make([]chan struct{}, p), done: make(chan struct{}, p)}
	for i := 1; i < p; i++ {
		ch := make(chan struct{}, 1)
		c.start[i] = ch
		go func(w int) {
			for range ch {
				fn(w)
				c.done <- struct{}{}
			}
		}(i)
	}
	return c
}

// cycle releases every helper, runs worker 0's share inline and waits
// for all helpers — one phase, one barrier. The channel handoffs give
// the usual happens-before edges: coordinator writes (the phase id)
// are visible to workers, worker writes are visible after the drain.
func (c *crew) cycle() {
	for i := 1; i < c.p; i++ {
		c.start[i] <- struct{}{}
	}
	c.fn(0)
	for i := 1; i < c.p; i++ {
		<-c.done
	}
}

// close releases the helper goroutines; the crew must not be cycled
// afterwards.
func (c *crew) close() {
	for i := 1; i < c.p; i++ {
		close(c.start[i])
	}
}

// shardRanges splits [0, total) into p contiguous ranges, returned as
// p+1 boundaries. Interior boundaries are multiples of 64 so each
// shard's bitmap words are private; trailing shards may be empty when
// p exceeds total/64.
func shardRanges(total, p int) []int32 {
	b := make([]int32, p+1)
	words := (total + 63) / 64
	for i := 1; i < p; i++ {
		b[i] = int32(words * i / p * 64)
		if b[i] > int32(total) {
			b[i] = int32(total)
		}
	}
	b[p] = int32(total)
	return b
}

// ownerWords flattens range boundaries into a bitmap-word -> shard
// lookup (owners are per 64-entry word because boundaries are aligned).
func ownerWords(b []int32, total int) []int8 {
	words := (total + 63) / 64
	ow := make([]int8, words)
	w := 0
	for i := 0; i < words; i++ {
		for w < len(b)-2 && int32(i<<6) >= b[w+1] {
			w++
		}
		ow[i] = int8(w)
	}
	return ow
}

func newParState(e *replica, p int) *parState {
	ps := &parState{e: e, p: p, threshold: defaultParallelThreshold}
	ps.nodeRange = shardRanges(e.n, p)
	ps.coupRange = shardRanges(e.m, p)
	ps.nodeOwnerW = ownerWords(ps.nodeRange, e.n)
	ps.coupOwnerW = ownerWords(ps.coupRange, e.m)
	ps.pgrant = make([]wReq, e.m)
	ps.shards = make([]parShard, p)
	nw := (e.n + 63) / 64
	for w := range ps.shards {
		sh := &ps.shards[w]
		sh.inbox = make([][]wReq, p)
		sh.drops = make([][]aDrop, p)
		sh.ops = make([][]qOp, p)
		sh.reqMask = make([]uint64, nw)
	}
	ps.crew = newCrew(p, ps.dispatch)
	return ps
}

// dispatch runs the current phase for one shard, accumulating busy time
// for the imbalance histogram (two clock reads per worker per phase,
// merged locally — nothing touches the registry here).
func (ps *parState) dispatch(w int) {
	t0 := time.Now()
	e := ps.e
	switch ps.phase {
	case parPhaseA:
		e.parRequests(w)
	case parPhaseBD1:
		e.parArb1(w, true)
	case parPhaseArb1:
		e.parArb1(w, false)
	case parPhaseTx1:
		e.parTxRange(w, false)
	case parPhaseBDW:
		e.parArbW(w, true)
	case parPhaseArbW:
		e.parArbW(w, false)
	case parPhaseTxW:
		e.parTxW(w)
	case parPhaseE:
		e.parApply(w)
	}
	ps.shards[w].busyNs += time.Since(t0).Nanoseconds()
}

func (ps *parState) cycle(phase int) {
	ps.phase = phase
	ps.crew.cycle()
}

// stepParallel executes one slot through the sharded phases. Phase 0
// (fault events) and the trailing slot/recovery bookkeeping stay in
// step, shared with the serial paths.
func (e *replica) stepParallel() {
	ps := e.par
	defl, multi := e.cfg.Deflection, e.cfg.Wavelengths > 1
	if defl && ps.preq == nil {
		ps.preq = make([]wReq, e.n)
		ps.mask = make([]uint64, (e.n+63)/64)
	}
	if multi && defl && ps.pGranted == nil {
		ps.pGranted = make([][]wReq, e.m)
	}
	ps.cycle(parPhaseA)
	switch {
	case !defl && !multi:
		ps.cycle(parPhaseBD1)
	case !defl && multi:
		ps.cycle(parPhaseBDW)
	case defl && !multi:
		ps.cycle(parPhaseArb1)
		e.parDeflect(false)
		ps.cycle(parPhaseTx1)
	default:
		ps.cycle(parPhaseArbW)
		e.parDeflect(true)
		ps.cycle(parPhaseTxW)
	}
	ps.cycle(parPhaseE)
	e.parMerge()
}

// parRequests is phase A: a read-only scan of this worker's chunk of the
// active list. The request comes from the precompiled headReq table, NOT
// a fresh route lookup: after a masked topology-change refresh the two
// can legitimately differ for entries the fault layer left standing, and
// the serial oracle arbitrates on headReq. An unroutable head is
// recorded as a deferred drop and the node sits the slot out, exactly as
// serial phase 1 does; the peeked message travels with the request
// because queues stay unmutated until phase E.
func (e *replica) parRequests(w int) {
	ps := e.par
	sh := &ps.shards[w]
	for d := 0; d < ps.p; d++ {
		sh.inbox[d] = sh.inbox[d][:0]
		sh.drops[d] = sh.drops[d][:0]
	}
	defl := e.cfg.Deflection
	lo := len(e.active) * w / ps.p
	hi := len(e.active) * (w + 1) / ps.p
	for _, u32 := range e.active[lo:hi] {
		u := int(u32)
		hr := e.headReq[u]
		if hr.coupler < 0 {
			sh.drops[ps.nodeOwnerW[u>>6]] = append(sh.drops[ps.nodeOwnerW[u>>6]], aDrop{node: u32})
			sh.t.dropped++
			sh.t.unroutable++
			continue
		}
		req := wReq{q: *e.queues[u].at(0), r: hr}
		d := ps.coupOwnerW[hr.coupler>>6]
		sh.inbox[d] = append(sh.inbox[d], req)
		if defl {
			sh.reqMask[u>>6] |= 1 << (u & 63)
			ps.preq[u] = req
		}
	}
}

// parArb1 is the W = 1 arbitration: drain every inbox addressed to this
// worker and keep the argmin-by-round-robin-key grant per owned coupler.
// Keys are distinct per coupler (one per requesting node), so the result
// is independent of drain order. When fused (no deflection) the owned
// touched range is transmitted immediately — no barrier in between,
// because arbitration wrote only this worker's coupler range.
func (e *replica) parArb1(w int, fused bool) {
	ps := e.par
	n32 := int32(e.n)
	for s := range ps.shards {
		box := ps.shards[s].inbox[w]
		for i := range box {
			req := &box[i]
			c := req.r.coupler
			key := req.r.node - e.rr[c]
			if key < 0 {
				key += n32
			}
			wIdx, bit := c>>6, uint64(1)<<(c&63)
			if e.touched[wIdx]&bit == 0 {
				e.touched[wIdx] |= bit
				e.bestKey[c] = key
				ps.pgrant[c] = *req
			} else if key < e.bestKey[c] {
				e.bestKey[c] = key
				ps.pgrant[c] = *req
			}
		}
	}
	if fused {
		e.parTxRange(w, true)
	}
}

// parTxRange is the W = 1 transmission half: scan the owned touched
// words in ascending coupler order, convert each grant into queue ops
// and tallies. advanceRR distinguishes the fused no-deflection path
// (cursors advance here, as in the serial phase 4) from the deflection
// path (phase C already advanced them; consume the winners set instead).
func (e *replica) parTxRange(w int, advanceRR bool) {
	ps := e.par
	sh := &ps.shards[w]
	for d := 0; d < ps.p; d++ {
		sh.ops[d] = sh.ops[d][:0]
	}
	sh.events = sh.events[:0]
	n32 := int32(e.n)
	loW := int(ps.coupRange[w]) >> 6
	hiW := (int(ps.coupRange[w+1]) + 63) >> 6
	for wi := loW; wi < hiW; wi++ {
		word := e.touched[wi]
		if word == 0 {
			continue
		}
		e.touched[wi] = 0
		sh.t.touchedSum += int64(bits.OnesCount64(word))
		for word != 0 {
			c := int32(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			g := &ps.pgrant[c]
			if advanceRR {
				e.rr[c] = rrNext(g.r.node, n32)
			} else {
				e.winners[g.r.node] = false
			}
			e.parEmit(sh, g)
		}
	}
}

// parEmit converts one grant into its queue ops and shard-local
// delivery bookkeeping (the parallel analogue of transmit). The pop is
// emitted before the push so a deflection relaying a message back onto
// its own bounded queue sees the dequeue-then-enqueue order.
func (e *replica) parEmit(sh *parShard, g *wReq) {
	ps := e.par
	if g.r.delivers {
		hops := g.q.hops + 1
		sh.t.delivered++
		sh.t.totalLatency += e.slot + 1 - int(g.q.born)
		sh.t.totalHops += int(hops)
		if e.onDeliver != nil {
			sh.events = append(sh.events, deliverEvent{q: g.q, hops: hops})
		}
		d := ps.nodeOwnerW[g.r.node>>6]
		sh.ops[d] = append(sh.ops[d], qOp{node: g.r.node})
	} else {
		m := g.q
		m.hops++
		d := ps.nodeOwnerW[g.r.node>>6]
		sh.ops[d] = append(sh.ops[d], qOp{node: g.r.node})
		t := ps.nodeOwnerW[g.r.nextHop>>6]
		sh.ops[t] = append(sh.ops[t], qOp{node: g.r.nextHop, push: true, msg: m})
	}
}

// parArbW is the W > 1 arbitration: candidates per owned coupler are
// collected from the inboxes, sorted by round-robin key and granted up
// to W senders — the serial phase 2 restricted to this worker's coupler
// range. Fused (no deflection) it emits immediately; with deflection the
// grants are parked in pGranted and the winners set for phase C.
func (e *replica) parArbW(w int, fused bool) {
	ps := e.par
	sh := &ps.shards[w]
	sh.reqBuf = sh.reqBuf[:0]
	for s := range ps.shards {
		box := ps.shards[s].inbox[w]
		for i := range box {
			c := box[i].r.coupler
			e.touched[c>>6] |= 1 << (c & 63)
			e.byCoupler[c] = append(e.byCoupler[c], int32(len(sh.reqBuf)))
			sh.reqBuf = append(sh.reqBuf, box[i])
		}
	}
	if fused {
		for d := 0; d < ps.p; d++ {
			sh.ops[d] = sh.ops[d][:0]
		}
		sh.events = sh.events[:0]
	}
	n32 := int32(e.n)
	wv := e.cfg.wavelengths()
	loW := int(ps.coupRange[w]) >> 6
	hiW := (int(ps.coupRange[w+1]) + 63) >> 6
	for wi := loW; wi < hiW; wi++ {
		word := e.touched[wi]
		if word == 0 {
			continue
		}
		if fused {
			e.touched[wi] = 0
			sh.t.touchedSum += int64(bits.OnesCount64(word))
		}
		for word != 0 {
			c := int32(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			idxs := e.byCoupler[c]
			var take int
			if len(idxs) == 1 {
				take = 1
				e.rr[c] = rrNext(sh.reqBuf[idxs[0]].r.node, n32)
			} else {
				cursor := e.rr[c]
				sh.keys = sh.keys[:0]
				for _, ri := range idxs {
					k := sh.reqBuf[ri].r.node - cursor
					if k < 0 {
						k += n32
					}
					sh.keys = append(sh.keys, int(k))
				}
				sortByRRKey(idxs, sh.keys)
				take = wv
				if take > len(idxs) {
					take = len(idxs)
				}
				e.rr[c] = rrNext(sh.reqBuf[idxs[take-1]].r.node, n32)
			}
			if fused {
				for _, ri := range idxs[:take] {
					e.parEmit(sh, &sh.reqBuf[ri])
				}
			} else {
				for _, ri := range idxs[:take] {
					g := sh.reqBuf[ri]
					ps.pGranted[c] = append(ps.pGranted[c], g)
					e.winners[g.r.node] = true
				}
			}
			e.byCoupler[c] = e.byCoupler[c][:0]
		}
	}
}

// parTxW is the W > 1 deflection transmission: consume the owned
// touched range and its parked grant lists in ascending coupler order.
func (e *replica) parTxW(w int) {
	ps := e.par
	sh := &ps.shards[w]
	for d := 0; d < ps.p; d++ {
		sh.ops[d] = sh.ops[d][:0]
	}
	sh.events = sh.events[:0]
	loW := int(ps.coupRange[w]) >> 6
	hiW := (int(ps.coupRange[w+1]) + 63) >> 6
	for wi := loW; wi < hiW; wi++ {
		word := e.touched[wi]
		if word == 0 {
			continue
		}
		e.touched[wi] = 0
		sh.t.touchedSum += int64(bits.OnesCount64(word))
		for word != 0 {
			c := int32(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			grants := ps.pGranted[c]
			for gi := range grants {
				e.winners[grants[gi].r.node] = false
				e.parEmit(sh, &grants[gi])
			}
			ps.pGranted[c] = grants[:0]
		}
	}
}

// parDeflect is phase C, serial on the coordinator: finalize winners
// (W = 1 advances the request-coupler cursors here, mirroring the serial
// phase 2b; W > 1 already did both during arbitration), then let losers
// grab free couplers in ascending node order — the same order the serial
// reqMask scan yields. The loser's message comes from its peeked request
// rather than front(), which may still be behind pending phase A drops.
func (e *replica) parDeflect(multi bool) {
	ps := e.par
	n32 := int32(e.n)
	wv := e.cfg.wavelengths()
	if !multi {
		for wi, word := range e.touched {
			for word != 0 {
				c := int32(wi<<6 + bits.TrailingZeros64(word))
				word &= word - 1
				g := &ps.pgrant[c]
				e.winners[g.r.node] = true
				e.rr[c] = rrNext(g.r.node, n32)
			}
		}
	}
	for wi := range ps.mask {
		word := uint64(0)
		for s := range ps.shards {
			word |= ps.shards[s].reqMask[wi]
			ps.shards[s].reqMask[wi] = 0
		}
		for word != 0 {
			u := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if e.winners[u] {
				continue
			}
			pq := &ps.preq[u]
			dst := int(pq.q.dst)
			ob, oc := e.outStart[u], e.outCount[u]
			for oi := ob; oi < ob+oc; oi++ {
				c := int(e.outList[oi])
				wIdx, bit := c>>6, uint64(1)<<(c&63)
				if multi {
					if len(ps.pGranted[c]) >= wv {
						continue
					}
				} else if e.touched[wIdx]&bit != 0 {
					continue
				}
				bestHop, delivers := e.deflectTarget(c, dst)
				if bestHop < 0 {
					continue
				}
				e.touched[wIdx] |= bit
				g := wReq{q: pq.q, r: txRequest{node: int32(u), coupler: int32(c), nextHop: bestHop, delivers: delivers}}
				if multi {
					ps.pGranted[c] = append(ps.pGranted[c], g)
				} else {
					ps.pgrant[c] = g
				}
				e.winners[u] = true
				e.metrics.Deflections++
				break
			}
		}
	}
}

// parApply is phase E: the owner of each node range applies the ops
// addressed to it — phase A drops first (the serial engine applies them
// before any transmission), then transmission ops concatenated in
// source-worker order, which is ascending coupler order globally, so
// each node's queue sees exactly the serial op sequence.
func (e *replica) parApply(w int) {
	ps := e.par
	sh := &ps.shards[w]
	sh.acts = sh.acts[:0]
	sh.deacts = sh.deacts[:0]
	for s := range ps.shards {
		for _, d := range ps.shards[s].drops[w] {
			e.parPop(sh, int(d.node))
		}
	}
	for s := range ps.shards {
		box := ps.shards[s].ops[w]
		for i := range box {
			op := &box[i]
			if op.push {
				e.parPush(sh, int(op.node), op.msg)
			} else {
				e.parPop(sh, int(op.node))
			}
		}
	}
}

// parPop is dropFront with the active-list mutation recorded instead of
// applied (phase F owns the shared list).
func (e *replica) parPop(sh *parShard, node int) {
	sh.t.backlogDelta--
	q := &e.queues[node]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	if q.n == 0 {
		sh.deacts = append(sh.deacts, int32(node))
	} else {
		e.computeHeadReq(node, q.buf[q.head].dst)
	}
}

// parPush is enqueue with shard-local tallies and the activation
// recorded instead of applied.
func (e *replica) parPush(sh *parShard, node int, msg qmsg) {
	q := &e.queues[node]
	if e.cfg.MaxQueue > 0 && q.n >= e.cfg.MaxQueue {
		sh.t.dropped++
		return
	}
	q.push(msg)
	sh.t.backlogDelta++
	d := q.n
	sh.t.qDepth[qDepthBucket(d)]++
	sh.t.qDepthSum += int64(d)
	if d > sh.t.peakQueue {
		sh.t.peakQueue = d
	}
	if d == 1 {
		sh.acts = append(sh.acts, int32(node))
		e.computeHeadReq(node, msg.dst)
	}
}

// parMerge is phase F, serial: fold the shard tallies into Metrics and
// the obs block, fix up the active list and replay buffered deliveries.
// Deactivations run before activations: per node the only possible
// same-slot sequence is deactivate-then-(re)activate, because a node
// needs a queued message at slot start to earn its single pop. The
// OnDeliver replay walks shards in order — ascending coupler order, the
// serial delivery order.
func (e *replica) parMerge() {
	ps := e.par
	minBusy, maxBusy := int64(1)<<62, int64(0)
	for w := range ps.shards {
		sh := &ps.shards[w]
		t := &sh.t
		e.metrics.Delivered += t.delivered
		e.metrics.Dropped += t.dropped
		e.metrics.Unroutable += t.unroutable
		e.metrics.TotalLatency += t.totalLatency
		e.metrics.TotalHops += t.totalHops
		e.backlog += t.backlogDelta
		if t.peakQueue > e.metrics.PeakQueue {
			e.metrics.PeakQueue = t.peakQueue
		}
		e.obs.touchedSum += t.touchedSum
		for i, v := range t.qDepth {
			e.obs.qDepth[i] += v
		}
		e.obs.qDepthSum += t.qDepthSum
		*t = shardTally{}
		if sh.busyNs < minBusy {
			minBusy = sh.busyNs
		}
		if sh.busyNs > maxBusy {
			maxBusy = sh.busyNs
		}
		sh.busyNs = 0
	}
	for w := range ps.shards {
		for _, u := range ps.shards[w].deacts {
			e.deactivate(int(u))
		}
	}
	for w := range ps.shards {
		for _, u := range ps.shards[w].acts {
			e.activePos[u] = int32(len(e.active))
			e.active = append(e.active, u)
		}
	}
	if e.onDeliver != nil {
		for w := range ps.shards {
			for _, ev := range ps.shards[w].events {
				e.onDeliver(Message{
					ID: int(ev.q.id), Src: int(ev.q.src), Dst: int(ev.q.dst),
					Born: int(ev.q.born), Hops: int(ev.hops),
				}, e.slot+1)
			}
		}
	}
	e.obs.parSlots++
	e.obs.parImb[parImbBucket(maxBusy-minBusy)]++
	e.obs.parImbSum += maxBusy - minBusy
}

// closePar releases the replica's parallel crew, if any.
func (e *replica) closePar() {
	if e.par != nil {
		e.par.crew.close()
		e.par = nil
	}
}

// SetParallel arms (or re-arms) intra-slot parallelism with p shard
// workers: p <= 0 picks runtime.GOMAXPROCS(0), p == 1 restores the
// serial path. Workers are persistent goroutines parked between slots —
// call Close to release them. Slots with fewer active nodes than the
// engagement threshold still step serially; parallel and serial slots
// produce bit-for-bit identical state, so runs may mix them freely.
// Parallelism is an execution knob, not part of Config: it never changes
// results, so sweep cache keys are unaffected.
func (e *Engine) SetParallel(p int) {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > maxParallelShards {
		p = maxParallelShards
	}
	if e.par != nil {
		if e.par.p == p {
			return
		}
		e.closePar()
	}
	if p <= 1 {
		return
	}
	e.par = newParState(&e.replica, p)
	parObs.shards.Set(int64(p))
}

// SetParallelThreshold overrides the active-node count a slot needs to
// engage the sharded path (default 512; 0 engages it on every slot).
// Meant for benchmarks and differential tests that must force tiny
// slots through the parallel machinery; a no-op on serial engines.
func (e *Engine) SetParallelThreshold(threshold int) {
	if e.par != nil {
		e.par.threshold = threshold
	}
}

// Parallel reports the armed shard-worker count (1 when serial).
func (e *Engine) Parallel() int {
	if e.par == nil {
		return 1
	}
	return e.par.p
}

// Close releases the engine's parallel worker goroutines; the engine
// stays usable on the serial path. A no-op for serial engines.
func (e *Engine) Close() { e.closePar() }

// rsPar is a ReplicaSet's replica-level parallelism: the crew steps
// disjoint chunks of the live list, each replica's mutable state being
// private to its slab section. Replicas with a dynamic topology or an
// OnDeliver callback step on the coordinator (their fault events and
// user callbacks must not run concurrently); everything else shards.
type rsPar struct {
	p       int
	crew    *crew
	parLive []int32
	serLive []int32
}

// SetParallel arms StepAll to fan live replicas across p workers
// (p <= 0 picks runtime.GOMAXPROCS(0), p == 1 restores serial). Results
// are bit-for-bit unchanged — replicas are independent, so stepping
// order never mattered. Call Close to release the workers.
func (rs *ReplicaSet) SetParallel(p int) {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > maxParallelShards {
		p = maxParallelShards
	}
	if rs.par != nil {
		if rs.par.p == p {
			return
		}
		rs.Close()
	}
	if p <= 1 {
		return
	}
	pp := &rsPar{p: p}
	pp.crew = newCrew(p, func(w int) {
		lo := len(pp.parLive) * w / p
		hi := len(pp.parLive) * (w + 1) / p
		for _, ri := range pp.parLive[lo:hi] {
			rs.reps[ri].step()
		}
	})
	rs.par = pp
	parObs.shards.Set(int64(p))
}

// Close releases the set's parallel worker goroutines; the set stays
// usable on the serial path. A no-op for serial sets.
func (rs *ReplicaSet) Close() {
	if rs.par != nil {
		rs.par.crew.close()
		rs.par = nil
	}
}

// stepAllParallel fans the live replicas across the crew. The split is
// recomputed per slot because replicas retire between slots.
func (rs *ReplicaSet) stepAllParallel() {
	pp := rs.par
	pp.parLive = pp.parLive[:0]
	pp.serLive = pp.serLive[:0]
	for _, ri := range rs.live {
		rp := &rs.reps[ri]
		if rp.dyn == nil && rp.onDeliver == nil {
			pp.parLive = append(pp.parLive, ri)
		} else {
			pp.serLive = append(pp.serLive, ri)
		}
	}
	pp.crew.cycle()
	for _, ri := range pp.serLive {
		rs.reps[ri].step()
	}
}
