package sim

import (
	"fmt"
	"math/rand"

	"otisnet/internal/obs"
)

// ReplicaSet runs R replicas — independent scenarios — over one shared
// CompiledTopology. The paper's tables are built from many runs of the
// same network under varying seeds, loads and disciplines; a ReplicaSet
// executes such a batch with the mutable state of all replicas carved out
// of shared structure-of-arrays slabs ([replica][node] / [replica][coupler]
// order: queues, ring headers, active lists, head-of-line requests,
// touched-coupler and deflection bitmaps, round-robin cursors), while the
// immutable route/distance/CSR arrays are read by every replica from the
// one snapshot. Replicas may diverge freely — different seeds, loads,
// fault plans and workload kinds — and retire independently; results are
// bit-for-bit identical to running each scenario alone on an Engine,
// because both paths execute the identical replica core.
//
// Scenarios that share an injection stream — same traffic model, rate,
// seed and slot count, differing only in parameters the generator never
// sees (discipline, queue bound, wavelengths) — can be assigned one
// StreamGroup: the batch then draws the stream once per slot and fans the
// injections out to every member, which is bit-for-bit the stream each
// member would have drawn alone.
type ReplicaSet struct {
	base     *CompiledTopology
	baseTopo Topology
	// views caches private compiled snapshots for replicas that run a
	// dynamic (fault-wrapped) topology, keyed by topology identity, so a
	// worker reusing one wrapper per replica slot compiles it once.
	views map[Topology]*CompiledTopology

	reps  []replica
	specs []ReplicaSpec
	live  []int32 // indices of replicas still running
	slot  int     // lockstep slot clock (== every live replica's slot)

	groups []streamGroup
	// rngs pools one generator per stream-group slot across Configure
	// calls, with the same virgin-seed dedup Engine uses: re-arming a
	// batch re-seeds only the groups whose seed actually changed.
	rngs []groupRNG

	// Slab capacities: reps[i]'s state is carved out of shared backing
	// arrays allocated for slabCap replicas over an (n, m) topology.
	slabCap int

	// par, when non-nil, fans StepAll across a worker crew; see
	// SetParallel in parallel.go. Serial sets leave it nil.
	par *rsPar
}

// ReplicaSpec describes one scenario slot of a batch.
type ReplicaSpec struct {
	// Topo, when non-nil, is this replica's private topology — typically a
	// fault wrapper around the set's base. It must have the same node and
	// coupler counts as the base; if it implements DynamicTopology its
	// events are polled every step, exactly as on an Engine. Nil means the
	// shared base.
	Topo    Topology
	Config  Config
	Traffic Traffic
	Slots   int
	Drain   int
	// StreamGroup shares one generated injection stream among every spec
	// of the batch carrying the same non-negative value; members must
	// agree on Traffic behavior, Config.Seed and Slots (the inputs of the
	// stream). Negative means a private stream.
	StreamGroup int
	// OnDeliver mirrors Engine.OnDeliver for this replica.
	OnDeliver func(msg Message, slot int)
}

// streamGroup is one shared injection stream: the replicas it feeds and
// the generator state that produces it.
type streamGroup struct {
	members []int32
	traffic Traffic
	uniform bool    // Traffic is a UniformRater: use the fused loop
	rate    float64 // the uniform rate when uniform
	slots   int
	buf     []Injection
}

// groupRNG is one pooled stream generator with seed-dedup state.
type groupRNG struct {
	rng       *rand.Rand
	seededFor int64
	virgin    bool
}

// NewReplicaSet compiles the base topology once. The base must be static:
// a dynamic topology mutates its tables in place, which replicas sharing
// the snapshot cannot tolerate — wrap faults per replica via
// ReplicaSpec.Topo instead.
func NewReplicaSet(base Topology) *ReplicaSet {
	if _, ok := base.(DynamicTopology); ok {
		panic("sim: ReplicaSet base topology must be static; pass dynamic wrappers per replica via ReplicaSpec.Topo")
	}
	return &ReplicaSet{
		base:     Compile(base),
		baseTopo: base,
		views:    map[Topology]*CompiledTopology{},
	}
}

// Len returns the number of replicas of the current batch.
func (rs *ReplicaSet) Len() int { return len(rs.specs) }

// Configure arms the set for a batch: one replica per spec, reset to slot
// zero under its config. State slabs, ring capacities, compiled views and
// group RNGs persist across calls, so re-arming a warmed set allocates
// nothing (beyond first-time growth).
func (rs *ReplicaSet) Configure(specs []ReplicaSpec) {
	if len(specs) > rs.slabCap {
		rs.grow(len(specs))
	}
	rs.specs = append(rs.specs[:0], specs...)
	rs.live = rs.live[:0]
	rs.slot = 0

	// Bind each replica to its snapshot and reset it.
	for i := range rs.specs {
		sp := &rs.specs[i]
		rp := &rs.reps[i]
		ct, dyn := rs.base, DynamicTopology(nil)
		if sp.Topo != nil {
			if sp.Topo.Nodes() != rs.base.n || sp.Topo.Couplers() != rs.base.m {
				panic(fmt.Sprintf("sim: replica topology is %dx%d, set base is %dx%d",
					sp.Topo.Nodes(), sp.Topo.Couplers(), rs.base.n, rs.base.m))
			}
			view, ok := rs.views[sp.Topo]
			if !ok {
				view = Compile(sp.Topo)
				rs.views[sp.Topo] = view
			}
			ct = view
			dyn, _ = sp.Topo.(DynamicTopology)
		}
		rp.attach(ct)
		rp.dyn = dyn
		rp.onDeliver = sp.OnDeliver
		// reset rewinds the dynamic topology and recompiles a dirty view;
		// the replica RNG is nil (streams come from the group generators),
		// so no per-replica seeding happens here.
		rp.reset(sp.Config)
		rs.live = append(rs.live, int32(i))
	}

	rs.buildGroups()
}

// grow (re)allocates the SoA slabs for at least r replicas. Existing ring
// buffers are abandoned with their slab; growth happens at most a few
// times over a set's life (batch sizes are fixed per sweep).
func (rs *ReplicaSet) grow(r int) {
	n, m := rs.base.n, rs.base.m
	nw, mw := (n+63)/64, (m+63)/64
	queues := make([]ring, r*n)
	rr := make([]int32, r*m)
	byCoupler := make([][]int32, r*m)
	granted := make([][]txRequest, r*m)
	touched := make([]uint64, r*mw)
	winners := make([]bool, r*n)
	reqMask := make([]uint64, r*nw)
	bestKey := make([]int32, r*m)
	grantSlot := make([]txRequest, r*m)
	activePos := make([]int32, r*n)
	headReq := make([]txRequest, r*n)
	active := make([]int32, r*n)

	reps := make([]replica, r)
	for i := range reps {
		rp := &reps[i]
		rp.queues = queues[i*n : (i+1)*n : (i+1)*n]
		rp.rr = rr[i*m : (i+1)*m : (i+1)*m]
		rp.byCoupler = byCoupler[i*m : (i+1)*m : (i+1)*m]
		rp.granted = granted[i*m : (i+1)*m : (i+1)*m]
		rp.touched = touched[i*mw : (i+1)*mw : (i+1)*mw]
		rp.winners = winners[i*n : (i+1)*n : (i+1)*n]
		rp.reqMask = reqMask[i*nw : (i+1)*nw : (i+1)*nw]
		rp.bestKey = bestKey[i*m : (i+1)*m : (i+1)*m]
		rp.grantSlot = grantSlot[i*m : (i+1)*m : (i+1)*m]
		rp.activePos = activePos[i*n : (i+1)*n : (i+1)*n]
		rp.headReq = headReq[i*n : (i+1)*n : (i+1)*n]
		rp.active = active[i*n : i*n : (i+1)*n]
		rp.obs.shard = obs.NextShard()
	}
	rs.reps = reps
	rs.slabCap = r
}

// buildGroups wires the batch's stream groups: specs sharing a
// non-negative StreamGroup form one group (validated to agree on seed and
// slot count); every other spec gets a private singleton group.
func (rs *ReplicaSet) buildGroups() {
	rs.groups = rs.groups[:0]
	byID := map[int]int{} // StreamGroup value -> group index
	for i := range rs.specs {
		sp := &rs.specs[i]
		gi := -1
		if sp.StreamGroup >= 0 {
			if j, ok := byID[sp.StreamGroup]; ok {
				gi = j
			}
		}
		if gi < 0 {
			// Reuse the slot's member/buffer capacity when re-arming.
			if len(rs.groups) < cap(rs.groups) {
				rs.groups = rs.groups[:len(rs.groups)+1]
			} else {
				rs.groups = append(rs.groups, streamGroup{})
			}
			gi = len(rs.groups) - 1
			g := &rs.groups[gi]
			g.members = g.members[:0]
			g.traffic = sp.Traffic
			g.slots = sp.Slots
			if ur, ok := sp.Traffic.(UniformRater); ok {
				g.uniform, g.rate = true, ur.UniformRate()
			} else {
				g.uniform, g.rate = false, 0
			}
			if sp.StreamGroup >= 0 {
				byID[sp.StreamGroup] = gi
			}
		} else {
			g := &rs.groups[gi]
			lead := &rs.specs[g.members[0]]
			if sp.Config.Seed != lead.Config.Seed || sp.Slots != lead.Slots {
				panic(fmt.Sprintf("sim: stream group %d members disagree on seed/slots (%d/%d vs %d/%d)",
					sp.StreamGroup, sp.Config.Seed, sp.Slots, lead.Config.Seed, lead.Slots))
			}
		}
		rs.groups[gi].members = append(rs.groups[gi].members, int32(i))
	}

	// Arm one pooled RNG per group, re-seeding only when needed.
	for len(rs.rngs) < len(rs.groups) {
		rs.rngs = append(rs.rngs, groupRNG{rng: rand.New(rand.NewSource(0)), seededFor: 0, virgin: true})
	}
	for gi := range rs.groups {
		seed := rs.specs[rs.groups[gi].members[0]].Config.Seed
		gr := &rs.rngs[gi]
		if !gr.virgin || gr.seededFor != seed {
			gr.rng.Seed(seed)
			gr.seededFor = seed
			gr.virgin = true
		}
	}
}

// StepAll advances every live replica by one slot. The shared snapshot is
// read by all of them; each replica's mutable state lives in its own slab
// section, so steps are independent and order-free — which is exactly why
// a parallel-armed set (SetParallel) may fan them across workers without
// changing any result.
func (rs *ReplicaSet) StepAll() {
	if rs.par != nil && len(rs.live) > 1 {
		rs.stepAllParallel()
	} else {
		for _, ri := range rs.live {
			rs.reps[ri].step()
		}
	}
	rs.slot++
}

// Inject enqueues a message at replica i's source node (manual drive; see
// RunAll for whole batches).
func (rs *ReplicaSet) Inject(i, src, dst int) { rs.reps[i].inject(src, dst) }

// Backlog returns replica i's queued message count, O(1).
func (rs *ReplicaSet) Backlog(i int) int { return rs.reps[i].backlog }

// Metrics returns replica i's accumulated metrics snapshot.
func (rs *ReplicaSet) Metrics(i int) Metrics { return rs.reps[i].metricsSnapshot() }

// RunAll executes the configured batch to completion: each slot, every
// stream group still in its generation phase draws one slot of traffic
// and fans it into its members, then every live replica steps. A replica
// retires — drops out of the stepping set, its state frozen for Metrics —
// exactly when its solo run would have returned: generation done and
// backlog empty, or drain budget spent. Retirement is checked before the
// step, so slot counts match solo runs including zero-slot scenarios.
func (rs *ReplicaSet) RunAll() {
	engineObs.batchRuns.Add(1)
	engineObs.batchSize.Observe(float64(len(rs.specs)))
	for {
		// Retire finished replicas (swap-remove keeps this O(live)). A
		// retiring replica flushes its scenario tallies into the registry,
		// exactly as its solo Engine.Run would have on return.
		for i := 0; i < len(rs.live); {
			ri := rs.live[i]
			sp := &rs.specs[ri]
			if rs.reps[ri].finished(sp.Slots, sp.Drain) {
				rs.reps[ri].flushObs()
				last := len(rs.live) - 1
				rs.live[i] = rs.live[last]
				rs.live = rs.live[:last]
				continue
			}
			i++
		}
		if len(rs.live) == 0 {
			return
		}
		// Generation phase: a group generates while the lockstep clock is
		// inside its slot budget. No member can retire before its
		// generation phase ends (finished requires slot >= slots), so the
		// full member list is live here.
		for gi := range rs.groups {
			g := &rs.groups[gi]
			if rs.slot >= g.slots {
				continue
			}
			gr := &rs.rngs[gi]
			gr.virgin = false
			if g.uniform {
				rs.generateUniform(g, gr.rng)
			} else {
				g.buf = g.traffic.Generate(g.buf[:0], rs.slot, rs.base.n, gr.rng)
				for _, ri := range g.members {
					rp := &rs.reps[ri]
					for _, inj := range g.buf {
						rp.inject(inj.Src, inj.Dst)
					}
				}
			}
		}
		rs.StepAll()
	}
}

// generateUniform is the fused uniform-Bernoulli stream: one draw per
// node, fanned to every member — the RNG consumption (and so the stream)
// is bit-for-bit Engine.runUniform's. The slot's injections are buffered
// and fanned one member at a time, so each replica's queue slab is walked
// in one contiguous pass instead of interleaving members per injection.
func (rs *ReplicaSet) generateUniform(g *streamGroup, rng *rand.Rand) {
	n := rs.base.n
	g.buf = g.buf[:0]
	for u := 0; u < n; u++ {
		if rng.Float64() < g.rate {
			dst := rng.Intn(n - 1)
			if dst >= u {
				dst++ // skip self, as the uniform model does
			}
			g.buf = append(g.buf, Injection{Src: u, Dst: dst})
		}
	}
	for _, ri := range g.members {
		rp := &rs.reps[ri]
		for _, inj := range g.buf {
			rp.inject(inj.Src, inj.Dst)
		}
	}
}
