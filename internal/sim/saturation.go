package sim

// SaturationSearch locates the saturation load of a topology: the largest
// per-node injection rate the network sustains, meaning it delivers at
// least the given fraction of injected traffic within the run (injection
// slots plus an equal drain period). Binary search over the rate with
// fixed seeds keeps the result deterministic. This reproduces the
// "saturation throughput" figure style of the multihop lightwave
// literature.
func SaturationSearch(topo Topology, slots int, sustainFraction float64, cfg Config) float64 {
	return SaturationSearchTraffic(topo, UniformAtRate, slots, sustainFraction, cfg)
}

// UniformAtRate is the default rate-parameterized traffic model used by
// SaturationSearch: uniform destinations at the given per-node rate.
func UniformAtRate(rate float64) Traffic { return UniformTraffic{Rate: rate} }

// SaturationSearchTraffic generalizes SaturationSearch to any
// rate-parameterized traffic family. The search is deterministic for a
// given (topology, traffic family, slots, fraction, config), so concurrent
// callers (e.g. a sweep worker pool) reproduce single-run results exactly.
func SaturationSearchTraffic(topo Topology, traffic func(rate float64) Traffic, slots int, sustainFraction float64, cfg Config) float64 {
	// One engine serves every probe of the binary search: Engine.Run resets
	// it per rate, so the topology is compiled and the queues allocated
	// once for the whole search instead of once per probe, with results
	// bit-for-bit identical to independent sim.Run calls.
	e := NewEngine(topo, cfg)
	sustains := func(rate float64) bool {
		m := e.Run(traffic(rate), slots, slots, cfg)
		if m.Injected == 0 {
			return true
		}
		return float64(m.Delivered) >= sustainFraction*float64(m.Injected)
	}
	lo, hi := 0.0, 1.0
	if sustains(1.0) {
		return 1.0
	}
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if sustains(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
