package sim

// Cross-validation of the simulator against closed-form topology metrics:
// under vanishing load there is no queueing, so the measured mean hop
// count of delivered messages must converge to the analytic mean distance
// between distinct node pairs of the underlying reachability digraph.

import (
	"math"
	"testing"

	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func lightLoadAvgHops(t *testing.T, topo Topology) float64 {
	t.Helper()
	m := Run(topo, UniformTraffic{Rate: 0.01}, 30000, 500, Config{Seed: 123})
	if m.Delivered < 1000 {
		t.Fatalf("not enough deliveries for a stable estimate: %d", m.Delivered)
	}
	return m.AvgHops()
}

func TestLightLoadHopsMatchAnalyticPOPS(t *testing.T) {
	p := pops.New(4, 4)
	topo := NewStackTopology(p.StackGraph())
	analytic := p.StackGraph().UnderlyingDigraph().AverageDistance()
	if analytic != 1 {
		t.Fatalf("POPS analytic mean distance = %v, want 1", analytic)
	}
	got := lightLoadAvgHops(t, topo)
	if got != 1 {
		t.Fatalf("POPS light-load hops = %v, want exactly 1", got)
	}
}

func TestLightLoadHopsMatchAnalyticSK(t *testing.T) {
	sk := stackkautz.New(4, 2, 2)
	topo := NewStackTopology(sk.StackGraph())
	analytic := sk.StackGraph().UnderlyingDigraph().AverageDistance()
	got := lightLoadAvgHops(t, topo)
	// Statistical estimate: within 5% of the analytic mean.
	if math.Abs(got-analytic)/analytic > 0.05 {
		t.Fatalf("SK light-load hops %v deviates from analytic %v", got, analytic)
	}
}

func TestLightLoadLatencyNearHops(t *testing.T) {
	// Without queueing, latency per message ~= hop count (each hop is one
	// slot). Allow modest slack for occasional collisions.
	sk := stackkautz.New(4, 2, 2)
	topo := NewStackTopology(sk.StackGraph())
	m := Run(topo, UniformTraffic{Rate: 0.01}, 20000, 500, Config{Seed: 77})
	if m.AvgLatency() > 1.2*m.AvgHops() {
		t.Fatalf("light-load latency %v >> hops %v: unexpected queueing",
			m.AvgLatency(), m.AvgHops())
	}
}
