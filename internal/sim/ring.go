package sim

// qmsg is the in-queue message representation: the fields of Message
// packed into int32s, so queue pushes, pops and ring growth copy half the
// bytes. The public Message form is reconstructed only at delivery
// (OnDeliver) time. Counters and slots beyond 2^31 are outside the
// engine's operating envelope.
type qmsg struct {
	id   int32
	src  int32
	dst  int32
	born int32 // injection slot
	hops int32
}

// ring is a growable FIFO queue of messages backed by a circular buffer.
// Unlike the naive `q = q[1:]` slice shift, popping never abandons prefix
// capacity, so sustained traffic reaches a steady state where no step
// allocates: the buffer grows (amortized doubling) only while the queue's
// high-water mark is still rising.
type ring struct {
	buf  []qmsg
	head int
	n    int
}

func (r *ring) len() int { return r.n }

// reset empties the queue without releasing its buffer, so a reused engine
// keeps every ring's high-water capacity across scenarios.
func (r *ring) reset() { r.head, r.n = 0, 0 }

// front returns a pointer to the oldest message. Only valid when len() > 0.
func (r *ring) front() *qmsg { return &r.buf[r.head] }

// at returns a pointer to the i-th queued message (0 = oldest). Only valid
// for 0 <= i < len().
func (r *ring) at(i int) *qmsg {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *ring) push(m qmsg) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = m
	r.n++
}

func (r *ring) pop() qmsg {
	m := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return m
}

func (r *ring) grow() {
	capNew := 2 * len(r.buf)
	if capNew < 4 {
		capNew = 4
	}
	buf := make([]qmsg, capNew)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf, r.head = buf, 0
}
