package sim

// ring is a growable FIFO queue of messages backed by a circular buffer.
// Unlike the naive `q = q[1:]` slice shift, popping never abandons prefix
// capacity, so sustained traffic reaches a steady state where no step
// allocates: the buffer grows (amortized doubling) only while the queue's
// high-water mark is still rising.
type ring struct {
	buf  []Message
	head int
	n    int
}

func (r *ring) len() int { return r.n }

// front returns a pointer to the oldest message. Only valid when len() > 0.
func (r *ring) front() *Message { return &r.buf[r.head] }

// at returns a pointer to the i-th queued message (0 = oldest). Only valid
// for 0 <= i < len().
func (r *ring) at(i int) *Message {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *ring) push(m Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = m
	r.n++
}

func (r *ring) pop() Message {
	m := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return m
}

func (r *ring) grow() {
	capNew := 2 * len(r.buf)
	if capNew < 4 {
		capNew = 4
	}
	buf := make([]Message, capNew)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf, r.head = buf, 0
}
