package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/kautz"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func popsTopology(t, g int) Topology {
	return NewStackTopology(pops.New(t, g).StackGraph())
}

func skTopology(s, d, k int) Topology {
	return NewStackTopology(stackkautz.New(s, d, k).StackGraph())
}

func TestCheckTopology(t *testing.T) {
	if err := CheckTopology(popsTopology(4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := CheckTopology(skTopology(3, 2, 2)); err != nil {
		t.Fatal(err)
	}
	b := kautz.NewDeBruijn(2, 3)
	if err := CheckTopology(NewPointToPointTopology(b.Digraph())); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTopologyRejectsDisconnected(t *testing.T) {
	g := digraph.New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(2, 0) // 2 unreachable from 0
	if err := CheckTopology(NewPointToPointTopology(g)); err == nil {
		t.Fatal("disconnected topology should fail the check")
	}
}

func TestStackTopologyShape(t *testing.T) {
	topo := popsTopology(4, 2)
	if topo.Nodes() != 8 || topo.Couplers() != 4 {
		t.Fatalf("POPS(4,2) topology: nodes=%d couplers=%d", topo.Nodes(), topo.Couplers())
	}
	// Every node can transmit on g = 2 couplers and heads have size t = 4.
	for u := 0; u < 8; u++ {
		if len(topo.OutCouplers(u)) != 2 {
			t.Fatalf("node %d out couplers = %d, want 2", u, len(topo.OutCouplers(u)))
		}
	}
	for c := 0; c < 4; c++ {
		if len(topo.Heads(c)) != 4 {
			t.Fatalf("coupler %d heads = %d, want 4", c, len(topo.Heads(c)))
		}
	}
}

func TestNextCouplerMakesProgress(t *testing.T) {
	topo := skTopology(2, 2, 3)
	for u := 0; u < topo.Nodes(); u++ {
		for v := 0; v < topo.Nodes(); v++ {
			if u == v {
				continue
			}
			c, hop := topo.NextCoupler(u, v)
			if c < 0 {
				t.Fatalf("no next coupler %d -> %d", u, v)
			}
			if topo.Distance(hop, v) >= topo.Distance(u, v) {
				t.Fatalf("no progress %d -> %d via %d", u, v, hop)
			}
		}
	}
}

func TestPointToPointShape(t *testing.T) {
	b := kautz.NewDeBruijn(2, 2)
	topo := NewPointToPointTopology(b.Digraph())
	if topo.Nodes() != 4 || topo.Couplers() != 8 {
		t.Fatalf("B(2,2): nodes=%d couplers=%d", topo.Nodes(), topo.Couplers())
	}
	for c := 0; c < topo.Couplers(); c++ {
		if len(topo.Heads(c)) != 1 {
			t.Fatal("point-to-point couplers must have one head")
		}
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	topo := skTopology(2, 2, 2)
	e := NewEngine(topo, Config{Seed: 1})
	e.Inject(0, topo.Nodes()-1)
	for i := 0; i < 10 && e.Metrics().Delivered == 0; i++ {
		e.Step()
	}
	m := e.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("message not delivered: %v", m)
	}
	if m.TotalHops > 3 { // diameter 2 plus intra-group hop margin
		t.Fatalf("too many hops: %v", m)
	}
	if m.Backlog != 0 {
		t.Fatal("backlog should be empty")
	}
}

func TestSelfInjectionIgnored(t *testing.T) {
	e := NewEngine(popsTopology(2, 2), Config{})
	e.Inject(1, 1)
	if e.Metrics().Injected != 0 {
		t.Fatal("self messages should not be injected")
	}
}

func TestPOPSSingleHopLatencyUnderLightLoad(t *testing.T) {
	// Under very light uniform load, POPS delivers in ~1 hop.
	topo := popsTopology(4, 4)
	m := Run(topo, UniformTraffic{Rate: 0.02}, 2000, 100, Config{Seed: 7})
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if m.AvgHops() != 1 {
		t.Fatalf("POPS avg hops = %v, want exactly 1 (single-hop network)", m.AvgHops())
	}
}

func TestSKHopsBoundedByDiameterPlusLoop(t *testing.T) {
	topo := skTopology(2, 2, 3)
	m := Run(topo, UniformTraffic{Rate: 0.02}, 2000, 200, Config{Seed: 9})
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if m.AvgHops() > 3.5 {
		t.Fatalf("avg hops %v exceeds diameter bound region", m.AvgHops())
	}
}

func TestConservationInvariant(t *testing.T) {
	// injected == delivered + dropped + backlog at all times.
	topo := skTopology(3, 2, 2)
	e := NewEngine(topo, Config{Seed: 3, MaxQueue: 4})
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 500; s++ {
		for _, inj := range (UniformTraffic{Rate: 0.5}).Generate(nil, s, topo.Nodes(), rng) {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
		m := e.Metrics()
		if m.Injected != m.Delivered+m.Dropped+m.Backlog {
			t.Fatalf("conservation violated at slot %d: %v", s, m)
		}
	}
}

func TestMaxQueueDrops(t *testing.T) {
	topo := popsTopology(2, 2)
	e := NewEngine(topo, Config{Seed: 1, MaxQueue: 1})
	for i := 0; i < 5; i++ {
		e.Inject(0, 3)
	}
	m := e.Metrics()
	if m.Dropped != 4 || m.Backlog != 1 {
		t.Fatalf("drops=%d backlog=%d, want 4, 1", m.Dropped, m.Backlog)
	}
}

func TestCouplerExclusivityUnderSaturation(t *testing.T) {
	// With every node saturated, per-slot deliveries+relays cannot exceed
	// the number of couplers (single wavelength!).
	topo := popsTopology(4, 2) // 4 couplers
	e := NewEngine(topo, Config{Seed: 11})
	rng := rand.New(rand.NewSource(13))
	prevDelivered := 0
	for s := 0; s < 200; s++ {
		for _, inj := range (UniformTraffic{Rate: 1.0}).Generate(nil, s, topo.Nodes(), rng) {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
		m := e.Metrics()
		perSlot := m.Delivered - prevDelivered
		if perSlot > topo.Couplers() {
			t.Fatalf("slot %d delivered %d > %d couplers", s, perSlot, topo.Couplers())
		}
		prevDelivered = m.Delivered
	}
}

func TestDeflectionReducesWaiting(t *testing.T) {
	// Same saturated workload with and without deflection: deflection must
	// actually deflect, and both modes must deliver.
	topo := skTopology(2, 2, 2)
	base := Run(topo, UniformTraffic{Rate: 0.9}, 800, 400, Config{Seed: 21})
	defl := Run(topo, UniformTraffic{Rate: 0.9}, 800, 400, Config{Seed: 21, Deflection: true})
	if base.Delivered == 0 || defl.Delivered == 0 {
		t.Fatal("both modes must deliver under saturation")
	}
	if defl.Deflections == 0 {
		t.Fatal("deflection mode never deflected under saturation")
	}
	if base.Deflections != 0 {
		t.Fatal("store-and-forward must not deflect")
	}
}

func TestBurstDrains(t *testing.T) {
	topo := skTopology(2, 2, 2)
	m := Run(topo, BurstTraffic{Messages: 100}, 1, 5000, Config{Seed: 2})
	if m.Backlog != 0 || m.Delivered != m.Injected {
		t.Fatalf("burst did not drain: %v", m)
	}
}

func TestPermutationTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewPermutationTraffic(1.0, 10, rng)
	inj := tr.Generate(nil, 0, 10, rng)
	if len(inj) != 10 {
		t.Fatalf("permutation injections = %d, want 10", len(inj))
	}
	for _, i := range inj {
		if i.Src == i.Dst {
			t.Fatal("permutation must not map a node to itself")
		}
	}
}

func TestPermutationTrafficWrongSizePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewPermutationTraffic(1.0, 5, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	tr.Generate(nil, 0, 10, rng)
}

func TestHotspotTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := HotspotTraffic{Rate: 1.0, Hot: 0, Fraction: 1.0}
	inj := tr.Generate(nil, 0, 10, rng)
	hot := 0
	for _, i := range inj {
		if i.Src != 0 && i.Dst != 0 {
			t.Fatal("with fraction 1 every foreign message targets the hot node")
		}
		if i.Dst == 0 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("no hotspot messages generated")
	}
}

func TestMetricsAccessorsZero(t *testing.T) {
	var m Metrics
	if m.AvgLatency() != 0 || m.AvgHops() != 0 || m.Throughput() != 0 {
		t.Fatal("zero metrics should report zeros")
	}
	if m.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestDeterminism(t *testing.T) {
	topo := skTopology(2, 2, 2)
	a := Run(topo, UniformTraffic{Rate: 0.3}, 300, 100, Config{Seed: 99})
	b := Run(topo, UniformTraffic{Rate: 0.3}, 300, 100, Config{Seed: 99})
	if a != b {
		t.Fatalf("same seed should give identical metrics:\n%v\n%v", a, b)
	}
}

// Property: latency of any delivered message is at least its hop count
// (each hop takes at least one slot), so aggregate latency >= aggregate
// hops for every run.
func TestLatencyDominatesHopsProperty(t *testing.T) {
	topo := skTopology(2, 2, 2)
	f := func(seed int64, rate8 uint8) bool {
		rate := float64(rate8%90+5) / 100
		m := Run(topo, UniformTraffic{Rate: rate}, 200, 200, Config{Seed: seed})
		return m.TotalLatency >= m.TotalHops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: with unbounded queues nothing is ever dropped.
func TestNoDropsUnboundedProperty(t *testing.T) {
	topo := popsTopology(3, 3)
	f := func(seed int64) bool {
		m := Run(topo, UniformTraffic{Rate: 0.8}, 150, 150, Config{Seed: seed})
		return m.Dropped == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: all delivered messages on a stack topology took at least the
// shortest-path distance in hops on average — avg hops >= 1 whenever
// something was delivered.
func TestAvgHopsAtLeastOneProperty(t *testing.T) {
	topo := skTopology(2, 2, 2)
	f := func(seed int64) bool {
		m := Run(topo, UniformTraffic{Rate: 0.2}, 200, 200, Config{Seed: seed})
		return m.Delivered == 0 || m.AvgHops() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStackVsPointToPointComparably(t *testing.T) {
	// The same Kautz graph as multi-OPS stack (s=1) and as point-to-point:
	// distances agree, so light-load hop counts agree.
	kg := kautz.New(2, 2)
	st := NewStackTopology(hypergraph.NewStackGraph(1, kg.WithLoops()))
	pt := NewPointToPointTopology(kg.Digraph())
	for u := 0; u < kg.N(); u++ {
		for v := 0; v < kg.N(); v++ {
			if u == v {
				continue
			}
			if st.Distance(u, v) != pt.Distance(u, v) {
				t.Fatalf("distance mismatch %d->%d: stack %d, p2p %d",
					u, v, st.Distance(u, v), pt.Distance(u, v))
			}
		}
	}
}
