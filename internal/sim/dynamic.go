package sim

// TopologyChange summarizes what a DynamicTopology.Advance call did, so the
// engine can react to failures without knowing how they are modeled.
type TopologyChange struct {
	// Changed is false when no event fired; the zero value means "nothing
	// happened" and costs the engine a single branch per slot.
	Changed bool
	// FailedNodes lists the nodes that went down during this advance.
	// Messages queued there are stranded: the engine purges them and counts
	// them as LostToFaults. The slice is only valid until the next Advance.
	FailedNodes []int
	// EntryChanged reports whether the routing decision for (u, dst)
	// differs from before the advance. The engine uses it to count queued
	// messages whose path just changed (Metrics.Reroutes). May be nil when
	// the implementation does not track per-entry deltas.
	EntryChanged func(u, dst int) bool
}

// DynamicTopology is a Topology whose structure can change between slots —
// the contract between the engine and a fault-injection layer such as
// faults.FaultedTopology. The engine calls Advance at the top of every
// Step, before arbitration, so an event at slot s affects slot s's
// transmissions; between events every Topology method must remain as cheap
// as on a static topology (NextCoupler stays an O(1) lookup).
type DynamicTopology interface {
	Topology
	// Reset restores the initial (pre-event) state. NewEngine calls it so
	// every run over the same value starts from slot 0, which is what lets
	// saturation searches and repeated sweeps reuse one wrapped topology.
	Reset()
	// Advance applies every pending event scheduled at or before slot and
	// reports what changed.
	Advance(slot int) TopologyChange
}
