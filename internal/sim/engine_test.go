package sim

// Focused engine tests for the paths the original suite under-covered:
// hot-potato deflection, multi-wavelength arbitration, round-robin
// fairness, the ring-buffer FIFOs, and the precomputed routing tables.

import (
	"math/rand"
	"testing"

	"otisnet/internal/digraph"
	"otisnet/internal/kautz"
	"otisnet/internal/stackkautz"
)

// --- deflection path ---

func TestDeflectionDeterminism(t *testing.T) {
	topo := skTopology(3, 2, 2)
	a := Run(topo, UniformTraffic{Rate: 0.8}, 400, 200, Config{Seed: 31, Deflection: true})
	b := Run(topo, UniformTraffic{Rate: 0.8}, 400, 200, Config{Seed: 31, Deflection: true})
	if a != b {
		t.Fatalf("deflection runs with equal seeds diverge:\n%v\n%v", a, b)
	}
	if a.Deflections == 0 {
		t.Fatal("saturated deflection run never deflected; test is vacuous")
	}
}

func TestDeflectionConservationNoLoss(t *testing.T) {
	// With unbounded queues, deflection must not lose or duplicate
	// messages: injected == delivered + backlog at every slot (no drops).
	topo := skTopology(3, 2, 2)
	e := NewEngine(topo, Config{Seed: 17, Deflection: true})
	rng := rand.New(rand.NewSource(19))
	for s := 0; s < 400; s++ {
		for _, inj := range (UniformTraffic{Rate: 0.9}).Generate(nil, s, topo.Nodes(), rng) {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
		m := e.Metrics()
		if m.Dropped != 0 {
			t.Fatalf("slot %d: unbounded deflection run dropped %d", s, m.Dropped)
		}
		if m.Injected != m.Delivered+m.Backlog {
			t.Fatalf("slot %d: conservation violated: %v", s, m)
		}
	}
	if e.Metrics().Deflections == 0 {
		t.Fatal("no deflections occurred; raise the load")
	}
}

func TestDeflectionDrainsEventually(t *testing.T) {
	topo := skTopology(2, 2, 2)
	m := Run(topo, BurstTraffic{Messages: 200}, 1, 10000, Config{Seed: 23, Deflection: true})
	if m.Backlog != 0 || m.Delivered != m.Injected {
		t.Fatalf("deflection run failed to drain: %v", m)
	}
}

// --- wavelengths > 1 arbitration ---

func TestWavelengthsCapacityBoundPerSlot(t *testing.T) {
	// Per slot, total transmissions (delivered + relayed) cannot exceed
	// couplers x W. Count deliveries per slot on a single-hop network where
	// every grant is a delivery.
	const w = 2
	topo := popsTopology(4, 2) // 4 couplers, single hop
	e := NewEngine(topo, Config{Seed: 29, Wavelengths: w})
	rng := rand.New(rand.NewSource(37))
	prev := 0
	for s := 0; s < 300; s++ {
		for _, inj := range (UniformTraffic{Rate: 1.0}).Generate(nil, s, topo.Nodes(), rng) {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
		m := e.Metrics()
		if perSlot := m.Delivered - prev; perSlot > topo.Couplers()*w {
			t.Fatalf("slot %d: %d deliveries > couplers(%d) x W(%d)",
				s, perSlot, topo.Couplers(), w)
		}
		prev = m.Delivered
	}
}

func TestWavelengthsIncreaseSaturatedThroughput(t *testing.T) {
	topo := skTopology(6, 3, 2)
	m1 := Run(topo, UniformTraffic{Rate: 0.9}, 500, 0, Config{Seed: 41, Wavelengths: 1})
	m4 := Run(topo, UniformTraffic{Rate: 0.9}, 500, 0, Config{Seed: 41, Wavelengths: 4})
	if m4.Delivered <= m1.Delivered {
		t.Fatalf("W=4 should outdeliver W=1 under saturation: %d vs %d",
			m4.Delivered, m1.Delivered)
	}
}

func TestWavelengthsDeterminism(t *testing.T) {
	topo := skTopology(3, 2, 2)
	a := Run(topo, UniformTraffic{Rate: 0.7}, 300, 300, Config{Seed: 43, Wavelengths: 3})
	b := Run(topo, UniformTraffic{Rate: 0.7}, 300, 300, Config{Seed: 43, Wavelengths: 3})
	if a != b {
		t.Fatalf("W=3 runs with equal seeds diverge:\n%v\n%v", a, b)
	}
}

func TestNoLossUnboundedWavelengths(t *testing.T) {
	topo := popsTopology(3, 3)
	m := Run(topo, UniformTraffic{Rate: 0.9}, 200, 400, Config{Seed: 47, Wavelengths: 2})
	if m.Dropped != 0 {
		t.Fatalf("unbounded W=2 run dropped %d messages", m.Dropped)
	}
	if m.Injected != m.Delivered+m.Backlog {
		t.Fatalf("conservation violated: %v", m)
	}
}

// --- round-robin fairness ---

func TestSortByRRKeyRotatesWithCursor(t *testing.T) {
	// Requests from nodes 0..4; with cursor c, order must be
	// c, c+1, ... wrapping mod n. Keys are precomputed once per candidate,
	// exactly as Step's arbitration phase does.
	n := 5
	requests := make([]txRequest, n)
	for i := range requests {
		requests[i] = txRequest{node: int32(i)}
	}
	for cursor := 0; cursor < n; cursor++ {
		idxs := []int32{0, 1, 2, 3, 4}
		keys := make([]int, 0, n)
		for _, i := range idxs {
			keys = append(keys, (int(requests[i].node)-cursor+n)%n)
		}
		sortByRRKey(idxs, keys)
		for pos, i := range idxs {
			want := (cursor + pos) % n
			if int(requests[i].node) != want {
				t.Fatalf("cursor %d: position %d holds node %d, want %d",
					cursor, pos, requests[i].node, want)
			}
		}
	}
}

func TestRoundRobinGrantsCycleFairly(t *testing.T) {
	// POPS(3,1): 3 nodes all sharing one coupler, one wavelength. With all
	// three permanently backlogged, grants must cycle 0,1,2,0,1,2,... so
	// after 3k slots every queue shrank by exactly k.
	topo := popsTopology(3, 1)
	if topo.Couplers() != 1 {
		t.Fatalf("POPS(3,1) should have a single coupler, has %d", topo.Couplers())
	}
	e := NewEngine(topo, Config{Seed: 1})
	const per = 10
	for i := 0; i < per; i++ {
		for u := 0; u < 3; u++ {
			e.Inject(u, (u+1)%3)
		}
	}
	granted := make([]int, 3)
	prevLens := []int{per, per, per}
	for s := 0; s < 9; s++ {
		e.Step()
		for u := 0; u < 3; u++ {
			if l := e.queues[u].len(); l != prevLens[u] {
				granted[u] += prevLens[u] - l
				prevLens[u] = l
			}
		}
	}
	if granted[0] != 3 || granted[1] != 3 || granted[2] != 3 {
		t.Fatalf("after 9 slots grants are %v, want [3 3 3] (round-robin)", granted)
	}
}

func TestRRCursorAdvancesPastLastWinner(t *testing.T) {
	// Two contenders on one coupler: winners must alternate slot by slot.
	topo := popsTopology(2, 1)
	e := NewEngine(topo, Config{Seed: 1})
	for i := 0; i < 4; i++ {
		e.Inject(0, 1)
		e.Inject(1, 0)
	}
	winners := []int{}
	prev := []int{4, 4}
	for s := 0; s < 4; s++ {
		e.Step()
		for u := 0; u < 2; u++ {
			if l := e.queues[u].len(); l != prev[u] {
				winners = append(winners, u)
				prev[u] = l
			}
		}
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if winners[i] != want[i] {
			t.Fatalf("grant order %v, want %v", winners, want)
		}
	}
}

// --- ring buffer ---

func TestRingFIFOOrderAcrossWraparound(t *testing.T) {
	var r ring
	next, expect := 0, 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			r.push(qmsg{id: int32(next)})
			next++
		}
	}
	pop := func(k int) {
		for i := 0; i < k; i++ {
			if m := r.pop(); int(m.id) != expect {
				t.Fatalf("popped ID %d, want %d", m.id, expect)
			}
			expect++
		}
	}
	push(3)
	pop(2)  // head advances, leaving wrap room
	push(6) // forces wraparound and growth
	pop(7)
	if r.len() != 0 {
		t.Fatalf("ring should be empty, len=%d", r.len())
	}
	push(5)
	pop(5)
}

func TestRingGrowPreservesOrder(t *testing.T) {
	var r ring
	// Interleave pushes and pops so head is mid-buffer when growth hits.
	id := 0
	for i := 0; i < 3; i++ {
		r.push(qmsg{id: int32(id)})
		id++
	}
	r.pop()
	r.pop()
	for i := 0; i < 20; i++ { // repeated growth with head offset
		r.push(qmsg{id: int32(id)})
		id++
	}
	want := 2
	for r.len() > 0 {
		if m := r.pop(); int(m.id) != want {
			t.Fatalf("popped %d, want %d", m.id, want)
		}
		want++
	}
}

// --- precomputed route tables ---

// scanNextStack recomputes the stack routing decision the slow way,
// mirroring the construction-time oracle, to pin the table against
// regressions.
func scanNextStack(topo Topology, u, dst int) (int, int) {
	if u == dst {
		return -1, u
	}
	best, bestHop := -1, -1
	bestDist := topo.Distance(u, dst)
	for _, c := range topo.OutCouplers(u) {
		for _, h := range topo.Heads(c) {
			d := topo.Distance(h, dst)
			if d != digraph.Unreachable && d < bestDist {
				bestDist = d
				best, bestHop = c, h
			}
		}
	}
	return best, bestHop
}

func TestStackRouteTableMatchesScan(t *testing.T) {
	topo := NewStackTopology(stackkautz.New(3, 2, 2).StackGraph())
	for u := 0; u < topo.Nodes(); u++ {
		for v := 0; v < topo.Nodes(); v++ {
			gotC, gotH := topo.NextCoupler(u, v)
			wantC, wantH := scanNextStack(topo, u, v)
			if gotC != wantC || gotH != wantH {
				t.Fatalf("route[%d][%d] = (%d,%d), scan gives (%d,%d)",
					u, v, gotC, gotH, wantC, wantH)
			}
		}
	}
}

func TestPointToPointRouteTableMatchesScan(t *testing.T) {
	g := kautz.NewDeBruijn(2, 3).Digraph()
	topo := NewPointToPointTopology(g)
	for u := 0; u < topo.Nodes(); u++ {
		for v := 0; v < topo.Nodes(); v++ {
			if u == v {
				continue
			}
			c, h := topo.NextCoupler(u, v)
			if c < 0 {
				t.Fatalf("no route %d -> %d on strongly connected digraph", u, v)
			}
			// The table must make strict progress via an actual out-coupler.
			if topo.Distance(h, v) >= topo.Distance(u, v) {
				t.Fatalf("route %d -> %d via %d makes no progress", u, v, h)
			}
			found := false
			for _, oc := range topo.OutCouplers(u) {
				if oc == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("route %d -> %d uses coupler %d not owned by %d", u, v, c, u)
			}
		}
	}
}

func TestRouteTableSelfEntries(t *testing.T) {
	topo := popsTopology(3, 2)
	for u := 0; u < topo.Nodes(); u++ {
		if c, h := topo.NextCoupler(u, u); c != -1 || h != u {
			t.Fatalf("NextCoupler(%d,%d) = (%d,%d), want (-1,%d)", u, u, c, h, u)
		}
	}
}

// --- incremental backlog ---

func TestBacklogMatchesQueueScan(t *testing.T) {
	topo := skTopology(3, 2, 2)
	e := NewEngine(topo, Config{Seed: 53, MaxQueue: 3})
	rng := rand.New(rand.NewSource(59))
	for s := 0; s < 300; s++ {
		for _, inj := range (UniformTraffic{Rate: 0.8}).Generate(nil, s, topo.Nodes(), rng) {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
		scan := 0
		for u := range e.queues {
			scan += e.queues[u].len()
		}
		if m := e.Metrics(); m.Backlog != scan {
			t.Fatalf("slot %d: incremental backlog %d != queue scan %d", s, m.Backlog, scan)
		}
	}
}
