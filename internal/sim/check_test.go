package sim

// Coverage for the CheckTopology error paths and the engine's defensive
// drop branch on unroutable destinations, using a hand-built fake topology.

import (
	"strings"
	"testing"
)

// fakeTopology is a minimal hand-wired Topology for error-path tests.
type fakeTopology struct {
	nodes int
	out   [][]int
	heads [][]int
	dist  func(u, v int) int
	next  func(u, v int) (int, int)
}

func (f *fakeTopology) Nodes() int              { return f.nodes }
func (f *fakeTopology) Couplers() int           { return len(f.heads) }
func (f *fakeTopology) OutCouplers(u int) []int { return f.out[u] }
func (f *fakeTopology) Heads(c int) []int       { return f.heads[c] }
func (f *fakeTopology) Distance(u, v int) int   { return f.dist(u, v) }
func (f *fakeTopology) NextCoupler(u, v int) (int, int) {
	return f.next(u, v)
}

// ringFake wires n nodes into a directed cycle (coupler i: node i -> i+1).
func ringFake(n int) *fakeTopology {
	f := &fakeTopology{nodes: n}
	for u := 0; u < n; u++ {
		f.out = append(f.out, []int{u})
		f.heads = append(f.heads, []int{(u + 1) % n})
	}
	f.dist = func(u, v int) int { return (v - u + n) % n }
	f.next = func(u, v int) (int, int) {
		if u == v {
			return -1, u
		}
		return u, (u + 1) % n
	}
	return f
}

func TestCheckTopologyAcceptsSaneFake(t *testing.T) {
	if err := CheckTopology(ringFake(4)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTopologyRejectsMuteNode(t *testing.T) {
	f := ringFake(4)
	f.out[2] = nil // node 2 cannot transmit
	err := CheckTopology(f)
	if err == nil || !strings.Contains(err.Error(), "cannot transmit") {
		t.Fatalf("expected a mute-node error, got %v", err)
	}
}

func TestCheckTopologyRejectsHeadlessCoupler(t *testing.T) {
	f := ringFake(4)
	f.heads[1] = nil // coupler 1 has no listeners
	// Keep reachability intact from the checker's viewpoint so the coupler
	// check (which runs after the node checks) is the one that fires.
	err := CheckTopology(f)
	if err == nil || !strings.Contains(err.Error(), "no listeners") {
		t.Fatalf("expected a headless-coupler error, got %v", err)
	}
}

func TestCheckTopologyRejectsUnreachablePair(t *testing.T) {
	f := ringFake(4)
	dist := f.dist
	f.dist = func(u, v int) int {
		if u == 0 && v == 2 {
			return -1 // digraph.Unreachable
		}
		return dist(u, v)
	}
	err := CheckTopology(f)
	if err == nil || !strings.Contains(err.Error(), "cannot reach") {
		t.Fatalf("expected an unreachable-pair error, got %v", err)
	}
}

// The defensive drop in Step phase 1: a queued message whose destination
// has no route must be count-dropped (Dropped and Unroutable), not wedge
// the queue forever.
func TestEngineDropsUnroutableDestination(t *testing.T) {
	f := ringFake(3)
	next := f.next
	f.next = func(u, v int) (int, int) {
		if v == 2 {
			return -1, -1 // destination 2 unroutable from everywhere
		}
		return next(u, v)
	}
	e := NewEngine(f, Config{Seed: 1})
	e.Inject(0, 2) // unroutable
	e.Inject(0, 1) // routable, queued behind it
	e.Step()
	e.Step()
	m := e.Metrics()
	if m.Dropped != 1 || m.Unroutable != 1 {
		t.Fatalf("dropped=%d unroutable=%d, want 1, 1: %v", m.Dropped, m.Unroutable, m)
	}
	if m.Delivered != 1 {
		t.Fatalf("routable message stuck behind the dropped one: %v", m)
	}
	if m.Injected != m.Delivered+m.Dropped+m.Backlog {
		t.Fatalf("conservation violated: %v", m)
	}
}
