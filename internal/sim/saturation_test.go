package sim

import (
	"testing"

	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func TestSaturationSearchPOPSVsSK(t *testing.T) {
	// At equal node count, POPS(9,8) has 64 couplers against SK(6,3,2)'s
	// 48, so its saturation rate must be at least SK's.
	skTopo := NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	popsTopo := NewStackTopology(pops.New(9, 8).StackGraph())
	skSat := SaturationSearch(skTopo, 400, 0.95, Config{Seed: 11})
	popsSat := SaturationSearch(popsTopo, 400, 0.95, Config{Seed: 11})
	if skSat <= 0 || popsSat <= 0 {
		t.Fatalf("saturation rates must be positive: sk=%v pops=%v", skSat, popsSat)
	}
	if popsSat < skSat {
		t.Fatalf("POPS(9,8) should sustain at least SK(6,3,2): pops=%v sk=%v",
			popsSat, skSat)
	}
}

func TestSaturationSearchWDMRaisesLimit(t *testing.T) {
	topo := NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	w1 := SaturationSearch(topo, 300, 0.95, Config{Seed: 7})
	w4 := SaturationSearch(topo, 300, 0.95, Config{Seed: 7, Wavelengths: 4})
	if w4 < w1 {
		t.Fatalf("WDM should not lower the saturation rate: w1=%v w4=%v", w1, w4)
	}
}

func TestSaturationSearchTinyNetworkSustainsAll(t *testing.T) {
	// POPS(1,2): 2 nodes, 4 couplers — sustains rate 1.0.
	topo := NewStackTopology(pops.New(1, 2).StackGraph())
	if sat := SaturationSearch(topo, 200, 0.95, Config{Seed: 3}); sat != 1.0 {
		t.Fatalf("tiny POPS should sustain full load, got %v", sat)
	}
}

func TestSaturationDeterministic(t *testing.T) {
	topo := NewStackTopology(stackkautz.New(2, 2, 2).StackGraph())
	a := SaturationSearch(topo, 200, 0.95, Config{Seed: 9})
	b := SaturationSearch(topo, 200, 0.95, Config{Seed: 9})
	if a != b {
		t.Fatalf("saturation search must be deterministic: %v vs %v", a, b)
	}
}
