package sim

// Engine observability: the replica core accumulates plain local tallies
// while it steps (no atomics, no locks, no interface calls — the hot
// path's overhead contract) and flushes them into the shared obs.Default
// registry once per completed scenario, through a counter shard picked at
// construction so concurrent sweep workers never contend on a cache
// line. Tracing rides the same philosophy: every emission site hides
// behind a nil *obs.Trace check, so an untraced run pays one predictable
// branch per site.

import (
	"math/bits"

	"otisnet/internal/obs"
)

// qDepthBuckets is the number of queue-depth histogram buckets: bounds
// 1, 2, 4, ..., 1024 plus the overflow bucket. Power-of-two edges make
// the hot-path bucket index a bits.Len, not a search.
const qDepthBuckets = 12

// engineObs is the engine metric family, registered at package init so
// /metrics exposes the families before the first scenario runs.
var engineObs = struct {
	scenarios   *obs.Counter
	slots       *obs.Counter
	injected    *obs.Counter
	delivered   *obs.Counter
	dropped     *obs.Counter
	deflections *obs.Counter
	activeNodes *obs.Counter
	touched     *obs.Counter
	queueDepth  *obs.Histogram
	batchRuns   *obs.Counter
	batchSize   *obs.Histogram
}{
	scenarios: obs.Default().Counter("netsim_engine_scenarios_total",
		"Completed engine scenarios (Engine.Run and retired ReplicaSet replicas)."),
	slots: obs.Default().Counter("netsim_engine_slots_total",
		"Simulated slots across completed scenarios."),
	injected: obs.Default().Counter("netsim_engine_messages_injected_total",
		"Messages injected across completed scenarios."),
	delivered: obs.Default().Counter("netsim_engine_messages_delivered_total",
		"Messages delivered across completed scenarios."),
	dropped: obs.Default().Counter("netsim_engine_messages_dropped_total",
		"Messages dropped (queue cap, unroutable, faults) across completed scenarios."),
	deflections: obs.Default().Counter("netsim_engine_deflections_total",
		"Hot-potato deflections across completed scenarios."),
	activeNodes: obs.Default().Counter("netsim_engine_active_node_slots_total",
		"Sum over slots of nodes with queued traffic; divide by netsim_engine_slots_total for mean active-node occupancy."),
	touched: obs.Default().Counter("netsim_engine_touched_coupler_slots_total",
		"Sum over slots of couplers that carried a transmission; divide by netsim_engine_slots_total for mean touched-coupler occupancy."),
	queueDepth: obs.Default().Histogram("netsim_engine_queue_depth",
		"Queue length observed at each enqueue, across completed scenarios.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
	batchRuns: obs.Default().Counter("netsim_engine_batch_runs_total",
		"ReplicaSet.RunAll batch executions."),
	batchSize: obs.Default().Histogram("netsim_engine_batch_replicas",
		"Replicas configured per ReplicaSet batch (per-replica batch utilization).",
		[]float64{1, 2, 4, 8, 16, 32}),
}

// obsState is the replica's embedded local tally block. Everything here
// is plain memory written by exactly one goroutine; flush pushes it into
// the sharded registry counters and re-zeros it.
type obsState struct {
	shard      int // counter shard hint, picked once at construction
	activeSum  int64
	touchedSum int64
	qDepth     [qDepthBuckets]int64
	qDepthSum  int64
	// Parallel-path tallies (see parallel.go): slots stepped through the
	// sharded path and the per-slot shard busy-ns imbalance histogram.
	// Zero for serial replicas, so serial flushes skip the extra adds.
	parSlots  int64
	parImb    [parImbBuckets]int64
	parImbSum int64
}

// qDepthBucket maps an observed queue length (>= 1) onto its histogram
// bucket: bits.Len(d-1) lands d in the first power-of-two edge >= d.
func qDepthBucket(d int) int {
	i := bits.Len(uint(d - 1))
	if i >= qDepthBuckets {
		i = qDepthBuckets - 1
	}
	return i
}

// flushObs publishes the scenario's tallies into the registry — a dozen
// sharded atomic adds once per scenario, nothing per slot — and re-zeros
// the local block for the next scenario. Called when a run completes
// (Engine.Run, ReplicaSet retirement); manually stepped engines
// accumulate until their next completed run.
func (e *replica) flushObs() {
	sh := e.obs.shard
	engineObs.scenarios.AddShard(sh, 1)
	engineObs.slots.AddShard(sh, int64(e.slot))
	engineObs.injected.AddShard(sh, int64(e.metrics.Injected))
	engineObs.delivered.AddShard(sh, int64(e.metrics.Delivered))
	engineObs.dropped.AddShard(sh, int64(e.metrics.Dropped))
	engineObs.deflections.AddShard(sh, int64(e.metrics.Deflections))
	engineObs.activeNodes.AddShard(sh, e.obs.activeSum)
	engineObs.touched.AddShard(sh, e.obs.touchedSum)
	engineObs.queueDepth.AddBuckets(e.obs.qDepth[:], e.obs.qDepthSum)
	e.obs.activeSum, e.obs.touchedSum, e.obs.qDepthSum = 0, 0, 0
	e.obs.qDepth = [qDepthBuckets]int64{}
	if e.obs.parSlots > 0 {
		parObs.slots.AddShard(sh, e.obs.parSlots)
		parObs.imbalance.AddBuckets(e.obs.parImb[:], e.obs.parImbSum)
		e.obs.parSlots, e.obs.parImbSum = 0, 0
		e.obs.parImb = [parImbBuckets]int64{}
	}
}

// TraceSlotEvent is the per-slot summary line of an engine trace
// (kind "slot"), emitted after each sampled slot completes. Counters are
// cumulative for the run, so consecutive sampled lines difference into
// per-interval rates.
type TraceSlotEvent struct {
	Kind        string `json:"kind"` // "slot"
	Slot        int    `json:"slot"`
	Backlog     int    `json:"backlog"`
	Active      int    `json:"active"` // nodes with queued traffic
	Injected    int    `json:"injected"`
	Delivered   int    `json:"delivered"`
	Dropped     int    `json:"dropped"`
	Deflections int    `json:"deflections"`
}

// TraceDeliverEvent is one delivery on a sampled slot (kind "deliver"):
// the message identity plus its final hop count and delivery slot,
// enough to replay a delivery timeline offline.
type TraceDeliverEvent struct {
	Kind string `json:"kind"` // "deliver"
	Slot int    `json:"slot"` // delivery slot
	ID   int    `json:"id"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Born int    `json:"born"`
	Hops int    `json:"hops"`
}

// SetTrace points the engine at an event sink (nil disables tracing).
// On slots where slot % trace.SampleEvery() == 0 the engine emits each
// delivery and a closing per-slot summary. Tracing allocates per event;
// it is a diagnostic mode, not a sweep-scale facility.
func (e *Engine) SetTrace(t *obs.Trace) { e.trace = t }

// traceSampled reports whether the current slot is sampled; called only
// when e.trace != nil.
func (e *replica) traceSampled() bool {
	return e.slot%e.trace.SampleEvery() == 0
}

// emitTraceSlot writes the sampled slot's summary line.
func (e *replica) emitTraceSlot() {
	e.trace.Emit(TraceSlotEvent{
		Kind:        "slot",
		Slot:        e.slot,
		Backlog:     e.backlog,
		Active:      len(e.active),
		Injected:    e.metrics.Injected,
		Delivered:   e.metrics.Delivered,
		Dropped:     e.metrics.Dropped,
		Deflections: e.metrics.Deflections,
	})
}
