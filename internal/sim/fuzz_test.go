package sim_test

// Differential fuzzing of the compiled-topology engine against the frozen
// pre-compilation reference (internal/legacysim). The hand-written
// equivalence suites (compiled_equiv_test.go) pin a fixed set of
// scenarios; this target lets the fuzzer pick the topology family and
// parameters, the traffic model, the offered load, the engine
// configuration and the fault plan, and requires — for every generated
// scenario — identical Metrics and an identical per-delivery OnDeliver
// event stream from both engines. Any silent drift of the fast engine
// (arbitration order, deflection tie-breaks, fault purges, RNG
// consumption) surfaces as a minimized counterexample scenario.
//
// The seed corpus (testdata/fuzz/FuzzCompiledVsLegacyEngine plus the
// f.Add tuples below) covers every topology family, traffic model and
// fault kind, so the plain `go test` run already exercises one scenario
// of each shape; CI additionally runs a short `-fuzz` smoke.

import (
	"math/rand"
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/kautz"
	"otisnet/internal/legacysim"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

// fuzzTopology maps three fuzz bytes onto a small instance of one of the
// four network families. Instances are kept under ~100 nodes so a single
// fuzz execution stays in the low milliseconds.
func fuzzTopology(sel, pa, pb uint8) (sim.Topology, string) {
	switch sel % 4 {
	case 0:
		d, k := 2+int(pa)%2, 2+int(pb)%2
		return sim.NewPointToPointTopology(kautz.NewDeBruijn(d, k).Digraph()), "deBruijn"
	case 1:
		s, d := 1+int(pa)%4, 2+int(pb)%2
		return sim.NewStackTopology(stackkautz.New(s, d, 2).StackGraph()), "SK"
	case 2:
		t, g := 1+int(pa)%4, 2+int(pb)%3
		return sim.NewStackTopology(pops.New(t, g).StackGraph()), "POPS"
	default:
		s, n := 1+int(pa)%3, 6+int(pb)%7
		return sim.NewStackTopology(stackkautz.NewII(s, 2, n).StackGraph()), "stack-II"
	}
}

// fuzzTraffic maps a fuzz byte onto one of the engine's traffic models.
// The generator only produces the shared injection schedule — both engines
// consume the identical schedule — so any model is fair game.
func fuzzTraffic(sel uint8, rate float64, n int, seed int64) sim.Traffic {
	switch sel % 4 {
	case 0:
		return sim.UniformTraffic{Rate: rate}
	case 1:
		return sim.HotspotTraffic{Rate: rate, Hot: 0, Fraction: 0.3}
	case 2:
		return sim.NewPermutationTraffic(rate, n, rand.New(rand.NewSource(seed)))
	default:
		return sim.BurstTraffic{Messages: 50 + 10*n}
	}
}

func FuzzCompiledVsLegacyEngine(f *testing.F) {
	// One seed per topology family, traffic model and fault kind, plus
	// mode/wavelength/queue-cap variety. Tuple order:
	// (topoSel, pa, pb, trafficSel, ratePct, waves, maxq, faultKind,
	//  faultCount, slotsRaw, faultSlotRaw, seed, defl)
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), uint8(30), uint8(1), uint8(0), uint8(0), uint8(0), uint16(150), uint16(0), int64(1), false)
	f.Add(uint8(1), uint8(2), uint8(1), uint8(1), uint8(60), uint8(1), uint8(3), uint8(0), uint8(2), uint16(200), uint16(40), int64(2), false)
	f.Add(uint8(2), uint8(3), uint8(0), uint8(2), uint8(45), uint8(2), uint8(0), uint8(1), uint8(1), uint16(120), uint16(25), int64(3), true)
	f.Add(uint8(3), uint8(1), uint8(4), uint8(3), uint8(80), uint8(3), uint8(2), uint8(2), uint8(2), uint16(90), uint16(10), int64(4), false)
	f.Add(uint8(1), uint8(3), uint8(1), uint8(0), uint8(95), uint8(1), uint8(1), uint8(0), uint8(1), uint16(250), uint16(200), int64(5), true)

	f.Fuzz(func(t *testing.T, topoSel, pa, pb, trafficSel, ratePct, waves, maxq, faultKind, faultCount uint8,
		slotsRaw, faultSlotRaw uint16, seed int64, defl bool) {
		base, family := fuzzTopology(topoSel, pa, pb)
		if err := sim.CheckTopology(base); err != nil {
			t.Skipf("degenerate topology: %v", err)
		}
		n := base.Nodes()
		rate := 0.05 + float64(ratePct%90)/100
		slots := 50 + int(slotsRaw)%200
		drain := 400
		cfg := sim.Config{
			Seed:        seed,
			MaxQueue:    int(maxq) % 5,
			Deflection:  defl,
			Wavelengths: 1 + int(waves)%3,
		}

		// An optional one-shot fault plan; the engines get independent
		// FaultedTopology views of the same plan (the wrapper is stateful
		// and single-engine).
		topoC, topoL := base, base
		if count := int(faultCount) % 3; count > 0 {
			kinds := []faults.Kind{faults.KindNode, faults.KindCoupler, faults.KindTransmitter}
			plan := faults.Random(kinds[int(faultKind)%3], count, int(faultSlotRaw)%slots, base, seed)
			topoC = faults.Wrap(base, plan)
			topoL = faults.Wrap(base, plan)
		}

		eC := sim.NewEngine(topoC, cfg)
		eL := legacysim.NewEngine(topoL, cfg)
		type delivery struct{ id, src, dst, hops, slot int }
		var gotC, gotL []delivery
		eC.OnDeliver = func(m sim.Message, slot int) {
			gotC = append(gotC, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
		}
		eL.OnDeliver = func(m sim.Message, slot int) {
			gotL = append(gotL, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
		}

		// One shared injection schedule drives both engines in lockstep.
		tr := fuzzTraffic(trafficSel, rate, n, seed)
		rng := rand.New(rand.NewSource(seed))
		var buf []sim.Injection
		for s := 0; s < slots; s++ {
			buf = tr.Generate(buf[:0], s, n, rng)
			for _, inj := range buf {
				eC.Inject(inj.Src, inj.Dst)
				eL.Inject(inj.Src, inj.Dst)
			}
			eC.Step()
			eL.Step()
		}
		for s := 0; s < drain && (eC.Backlog() > 0 || eL.Metrics().Backlog > 0); s++ {
			eC.Step()
			eL.Step()
		}

		if mC, mL := eC.Metrics(), eL.Metrics(); mC != mL {
			t.Fatalf("%s n=%d cfg=%+v traffic=%d faults=%d: metrics diverged\ncompiled %v\nlegacy   %v",
				family, n, cfg, trafficSel%4, faultCount%3, mC, mL)
		}
		if len(gotC) != len(gotL) {
			t.Fatalf("%s: %d deliveries vs legacy %d", family, len(gotC), len(gotL))
		}
		for i := range gotC {
			if gotC[i] != gotL[i] {
				t.Fatalf("%s: delivery %d = %+v, legacy %+v", family, i, gotC[i], gotL[i])
			}
		}
	})
}
