package sim_test

// Differential testing of the sharded parallel step against the serial
// engine. The serial replica core is itself fuzzed against the frozen
// legacy engine (FuzzCompiledVsLegacyEngine), so serial Step is the
// oracle here: for every scenario the parallel engine — forced through
// the sharded path on every slot via a zero engagement threshold — must
// produce identical Metrics and an identical OnDeliver event stream.
// The table test pins one scenario per engine mode (store-and-forward,
// deflection, multi-wavelength, bounded queues, faults mid-run, and the
// empty-shard regime where P exceeds the coupler count); the fuzz target
// lets the fuzzer pick everything, including the shard count.

import (
	"fmt"
	"math/rand"
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/kautz"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

// runLockstep drives serial and parallel engines through one shared
// injection schedule and compares Metrics and deliveries at the end.
func runLockstep(t *testing.T, label string, topoS, topoP sim.Topology, cfg sim.Config,
	tr sim.Traffic, slots, drain, shards int) {
	t.Helper()
	n := topoS.Nodes()
	eS := sim.NewEngine(topoS, cfg)
	eP := sim.NewEngine(topoP, cfg)
	defer eP.Close()
	eP.SetParallel(shards)
	eP.SetParallelThreshold(0)
	if eP.Parallel() != shards {
		t.Fatalf("%s: armed %d shards, want %d", label, eP.Parallel(), shards)
	}
	var gotS, gotP []delivery
	eS.OnDeliver = func(m sim.Message, slot int) {
		gotS = append(gotS, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
	}
	eP.OnDeliver = func(m sim.Message, slot int) {
		gotP = append(gotP, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var buf []sim.Injection
	for s := 0; s < slots; s++ {
		buf = tr.Generate(buf[:0], s, n, rng)
		for _, inj := range buf {
			eS.Inject(inj.Src, inj.Dst)
			eP.Inject(inj.Src, inj.Dst)
		}
		eS.Step()
		eP.Step()
	}
	for s := 0; s < drain && (eS.Backlog() > 0 || eP.Backlog() > 0); s++ {
		eS.Step()
		eP.Step()
	}
	if mS, mP := eS.Metrics(), eP.Metrics(); mS != mP {
		t.Fatalf("%s: metrics diverged\nserial   %v\nparallel %v", label, mS, mP)
	}
	if len(gotS) != len(gotP) {
		t.Fatalf("%s: %d deliveries serial vs %d parallel", label, len(gotS), len(gotP))
	}
	for i := range gotS {
		if gotS[i] != gotP[i] {
			t.Fatalf("%s: delivery %d = %+v serial, %+v parallel", label, i, gotS[i], gotP[i])
		}
	}
}

func TestParallelMatchesSerialStep(t *testing.T) {
	sk := func() sim.Topology { return sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph()) }
	db := func() sim.Topology { return sim.NewPointToPointTopology(kautz.NewDeBruijn(2, 4).Digraph()) }
	cases := []struct {
		name   string
		topo   func() sim.Topology
		cfg    sim.Config
		rate   float64
		shards int
	}{
		{"store-and-forward", sk, sim.Config{Seed: 1}, 0.4, 4},
		{"deflection-storm", sk, sim.Config{Seed: 2, Deflection: true}, 0.95, 4},
		{"bounded-queues", sk, sim.Config{Seed: 3, MaxQueue: 2}, 0.8, 3},
		{"multi-wavelength", sk, sim.Config{Seed: 4, Wavelengths: 3}, 0.9, 4},
		{"wdm-deflection", sk, sim.Config{Seed: 5, Wavelengths: 2, Deflection: true, MaxQueue: 3}, 0.9, 5},
		{"point-to-point", db, sim.Config{Seed: 6}, 0.6, 4},
		{"empty-shards", db, sim.Config{Seed: 7, Deflection: true}, 0.7, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runLockstep(t, tc.name, tc.topo(), tc.topo(), tc.cfg,
				sim.UniformTraffic{Rate: tc.rate}, 120, 400, tc.shards)
		})
	}
}

// TestParallelMatchesSerialUnderFaults exercises the deferred-drop path:
// mid-run fault events strand queued traffic and cut routes, so phase A
// must replicate the serial drop-until-routable loop exactly.
func TestParallelMatchesSerialUnderFaults(t *testing.T) {
	base := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	for _, kind := range []faults.Kind{faults.KindNode, faults.KindCoupler, faults.KindTransmitter} {
		for _, defl := range []bool{false, true} {
			name := fmt.Sprintf("%v-defl=%v", kind, defl)
			t.Run(name, func(t *testing.T) {
				plan := faults.Random(kind, 2, 40, base, 11)
				cfg := sim.Config{Seed: 11, Deflection: defl, MaxQueue: 4}
				runLockstep(t, name, faults.Wrap(base, plan), faults.Wrap(base, plan), cfg,
					sim.UniformTraffic{Rate: 0.6}, 120, 400, 4)
			})
		}
	}
}

// TestReplicaSetParallelMatchesSerial pins the replica-level fan-out:
// a parallel-armed set must retire every replica with exactly the
// metrics of the serial set (replicas are independent; only the
// stepping schedule changes).
func TestReplicaSetParallelMatchesSerial(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	specs := make([]sim.ReplicaSpec, 7)
	for i := range specs {
		specs[i] = sim.ReplicaSpec{
			Config:      sim.Config{Seed: int64(i + 1), Deflection: i%2 == 1, MaxQueue: i % 3},
			Traffic:     sim.UniformTraffic{Rate: 0.3 + 0.1*float64(i%4)},
			Slots:       100 + 20*i,
			Drain:       300,
			StreamGroup: -1,
		}
	}
	serial := sim.NewReplicaSet(topo)
	serial.Configure(specs)
	serial.RunAll()
	parallel := sim.NewReplicaSet(topo)
	defer parallel.Close()
	parallel.SetParallel(4)
	parallel.Configure(specs)
	parallel.RunAll()
	for i := range specs {
		if mS, mP := serial.Metrics(i), parallel.Metrics(i); mS != mP {
			t.Fatalf("replica %d diverged\nserial   %v\nparallel %v", i, mS, mP)
		}
	}
}

// FuzzParallelVsSerialStep is the parallel-step oracle fuzz: the fuzzer
// picks the topology family, traffic model, load, engine configuration,
// fault plan and shard count; every generated scenario must produce
// identical Metrics and an identical OnDeliver stream from the serial
// engine and a parallel engine forced through the sharded path on every
// slot. The 12-entry seed corpus covers faults mid-run, W > 1,
// deflection storms and the empty-shard regime at tiny N.
func FuzzParallelVsSerialStep(f *testing.F) {
	// Tuple order: (topoSel, pa, pb, trafficSel, ratePct, waves, maxq,
	// faultKind, faultCount, slotsRaw, faultSlotRaw, seed, defl, shards)
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), uint8(30), uint8(1), uint8(0), uint8(0), uint8(0), uint16(150), uint16(0), int64(1), false, uint8(2))
	f.Add(uint8(1), uint8(2), uint8(1), uint8(1), uint8(60), uint8(1), uint8(3), uint8(0), uint8(2), uint16(200), uint16(40), int64(2), false, uint8(4))
	f.Add(uint8(2), uint8(3), uint8(0), uint8(2), uint8(45), uint8(2), uint8(0), uint8(1), uint8(1), uint16(120), uint16(25), int64(3), true, uint8(3))
	f.Add(uint8(3), uint8(1), uint8(4), uint8(3), uint8(80), uint8(3), uint8(2), uint8(2), uint8(2), uint16(90), uint16(10), int64(4), false, uint8(8))
	f.Add(uint8(1), uint8(3), uint8(1), uint8(0), uint8(95), uint8(1), uint8(1), uint8(0), uint8(1), uint16(250), uint16(200), int64(5), true, uint8(6))

	f.Fuzz(func(t *testing.T, topoSel, pa, pb, trafficSel, ratePct, waves, maxq, faultKind, faultCount uint8,
		slotsRaw, faultSlotRaw uint16, seed int64, defl bool, shards uint8) {
		base, family := fuzzTopology(topoSel, pa, pb)
		if err := sim.CheckTopology(base); err != nil {
			t.Skipf("degenerate topology: %v", err)
		}
		n := base.Nodes()
		rate := 0.05 + float64(ratePct%90)/100
		slots := 50 + int(slotsRaw)%200
		drain := 400
		p := 2 + int(shards)%15
		cfg := sim.Config{
			Seed:        seed,
			MaxQueue:    int(maxq) % 5,
			Deflection:  defl,
			Wavelengths: 1 + int(waves)%3,
		}

		topoS, topoP := base, base
		if count := int(faultCount) % 3; count > 0 {
			kinds := []faults.Kind{faults.KindNode, faults.KindCoupler, faults.KindTransmitter}
			plan := faults.Random(kinds[int(faultKind)%3], count, int(faultSlotRaw)%slots, base, seed)
			topoS = faults.Wrap(base, plan)
			topoP = faults.Wrap(base, plan)
		}

		eS := sim.NewEngine(topoS, cfg)
		eP := sim.NewEngine(topoP, cfg)
		defer eP.Close()
		eP.SetParallel(p)
		eP.SetParallelThreshold(0)
		var gotS, gotP []delivery
		eS.OnDeliver = func(m sim.Message, slot int) {
			gotS = append(gotS, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
		}
		eP.OnDeliver = func(m sim.Message, slot int) {
			gotP = append(gotP, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
		}

		tr := fuzzTraffic(trafficSel, rate, n, seed)
		rng := rand.New(rand.NewSource(seed))
		var buf []sim.Injection
		for s := 0; s < slots; s++ {
			buf = tr.Generate(buf[:0], s, n, rng)
			for _, inj := range buf {
				eS.Inject(inj.Src, inj.Dst)
				eP.Inject(inj.Src, inj.Dst)
			}
			eS.Step()
			eP.Step()
		}
		for s := 0; s < drain && (eS.Backlog() > 0 || eP.Backlog() > 0); s++ {
			eS.Step()
			eP.Step()
		}

		if mS, mP := eS.Metrics(), eP.Metrics(); mS != mP {
			t.Fatalf("%s n=%d p=%d cfg=%+v traffic=%d faults=%d: metrics diverged\nserial   %v\nparallel %v",
				family, n, p, cfg, trafficSel%4, faultCount%3, mS, mP)
		}
		if len(gotS) != len(gotP) {
			t.Fatalf("%s p=%d: %d deliveries serial vs %d parallel", family, p, len(gotS), len(gotP))
		}
		for i := range gotS {
			if gotS[i] != gotP[i] {
				t.Fatalf("%s p=%d: delivery %d = %+v serial, %+v parallel", family, p, i, gotS[i], gotP[i])
			}
		}
	})
}
