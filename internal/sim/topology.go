// Package sim is a slotted-time simulator for single-wavelength multi-OPS
// networks. Its semantics follow the POPS / stack-Kautz literature the
// paper builds on: time advances in synchronous slots; each OPS coupler
// carries at most one message per slot (single wavelength); a transmission
// on a coupler is heard by every node on the coupler's output side; each
// node transmits at most one message per slot. Store-and-forward routing
// with per-node FIFO queues is the default; hot-potato deflection (Zhang &
// Acampora, reference [25]) is available as an ablation. Point-to-point
// digraph networks (the de Bruijn single-OPS baseline of reference [22])
// are simulated through the same interface by viewing every arc as a
// degree-1 coupler.
package sim

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
)

// Topology abstracts a network for the engine: nodes, couplers, and a
// routing oracle.
type Topology interface {
	// Nodes returns the number of processors.
	Nodes() int
	// Couplers returns the number of couplers (transmission resources).
	Couplers() int
	// OutCouplers lists the couplers node u may transmit on.
	OutCouplers(u int) []int
	// Heads lists the nodes that hear a transmission on coupler c.
	Heads(c int) []int
	// NextCoupler returns the coupler a message at u bound for dst should
	// take under shortest-path routing, and the preferred next-hop node.
	NextCoupler(u, dst int) (coupler, nextHop int)
	// Distance returns the hop distance from u to dst.
	Distance(u, dst int) int
}

// buildRouteTable precomputes route[u][dst] for every ordered pair using
// the provided per-pair oracle, turning NextCoupler into an O(1) lookup on
// the simulation hot path. The oracle is only consulted once per pair, at
// construction time. It returns both the row views and the flat backing
// array, which RouteTable hands to the engine as its compiled route table.
// The delivers-here bit is packed from nextHop == dst: the scan oracles
// pick the strictly closest head, and only the destination itself is at
// distance 0, so the chosen next hop is dst exactly when dst hears the
// chosen coupler.
func buildRouteTable(n int, next func(u, dst int) (int, int)) ([][]RouteEntry, []RouteEntry) {
	route := make([][]RouteEntry, n)
	flat := make([]RouteEntry, n*n) // one backing array, n row views
	for u := 0; u < n; u++ {
		row := flat[u*n : (u+1)*n : (u+1)*n]
		for dst := 0; dst < n; dst++ {
			c, hop := next(u, dst)
			row[dst] = MakeRouteEntry(c, hop, c >= 0 && hop == dst)
		}
		route[u] = row
	}
	return route, flat
}

// stackTopology adapts a stack-graph (multi-OPS network) with precomputed
// shortest-path next-hop and routing tables.
type stackTopology struct {
	sg        *hypergraph.StackGraph
	out       [][]int
	dist      [][]int // dist[u][v] on the underlying digraph
	route     [][]RouteEntry
	routeFlat []RouteEntry // backing array of route, lent to the engine
	und       *digraph.Digraph
}

// NewStackTopology wraps a stack-graph for simulation. The underlying
// point-to-point reachability digraph is used for distances; routing takes,
// at each hop, a coupler whose head set contains a node strictly closer to
// the destination. All routing decisions are precomputed so the per-slot
// NextCoupler call is a table lookup.
func NewStackTopology(sg *hypergraph.StackGraph) Topology {
	st := &stackTopology{sg: sg, und: sg.UnderlyingDigraph()}
	n := sg.N()
	st.out = make([][]int, n)
	for u := 0; u < n; u++ {
		st.out[u] = sg.OutArcs(u)
	}
	st.dist = make([][]int, n)
	for u := 0; u < n; u++ {
		st.dist[u] = st.und.BFS(u)
	}
	st.route, st.routeFlat = buildRouteTable(n, st.scanNextCoupler)
	return st
}

func (st *stackTopology) Nodes() int              { return st.sg.N() }
func (st *stackTopology) Couplers() int           { return st.sg.M() }
func (st *stackTopology) OutCouplers(u int) []int { return st.out[u] }
func (st *stackTopology) Heads(c int) []int       { return st.sg.Hyperarc(c).Head }

func (st *stackTopology) Distance(u, dst int) int { return st.dist[u][dst] }

// RouteTable lends the engine the flat route table (RouteTabled).
func (st *stackTopology) RouteTable() []RouteEntry { return st.routeFlat }

// DistanceRows lends the engine the per-source distance rows
// (DistanceRowed).
func (st *stackTopology) DistanceRows() [][]int { return st.dist }

func (st *stackTopology) NextCoupler(u, dst int) (int, int) {
	r := st.route[u][dst]
	return r.Coupler(), r.NextHop()
}

// scanNextCoupler is the construction-time routing oracle: pick the coupler
// whose head set contains the node strictly closest to the destination,
// scanning couplers and heads in topology order so ties break exactly as
// the pre-table implementation did (determinism of seeded runs).
func (st *stackTopology) scanNextCoupler(u, dst int) (int, int) {
	if u == dst {
		return -1, u
	}
	best, bestHop := -1, -1
	bestDist := st.dist[u][dst]
	for _, c := range st.out[u] {
		for _, h := range st.sg.Hyperarc(c).Head {
			d := st.dist[h][dst]
			if d != digraph.Unreachable && d < bestDist {
				bestDist = d
				best, bestHop = c, h
			}
		}
	}
	return best, bestHop
}

// pointToPoint adapts a digraph as a single-OPS-per-arc network: every arc
// is its own degree-1 coupler.
type pointToPoint struct {
	g         *digraph.Digraph
	out       [][]int // coupler ids per node
	head      []int   // head node per coupler
	dist      [][]int
	route     [][]RouteEntry
	routeFlat []RouteEntry
}

// NewPointToPointTopology wraps a digraph where each arc is a dedicated
// point-to-point optical link (the single-OPS baseline). Routing decisions
// are precomputed into a full table, as for stack topologies.
func NewPointToPointTopology(g *digraph.Digraph) Topology {
	pt := &pointToPoint{g: g}
	pt.out = make([][]int, g.N())
	for _, a := range g.Arcs() {
		c := len(pt.head)
		pt.head = append(pt.head, a[1])
		pt.out[a[0]] = append(pt.out[a[0]], c)
	}
	pt.dist = make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		pt.dist[u] = g.BFS(u)
	}
	pt.route, pt.routeFlat = buildRouteTable(g.N(), pt.scanNextCoupler)
	return pt
}

func (pt *pointToPoint) Nodes() int              { return pt.g.N() }
func (pt *pointToPoint) Couplers() int           { return len(pt.head) }
func (pt *pointToPoint) OutCouplers(u int) []int { return pt.out[u] }
func (pt *pointToPoint) Heads(c int) []int       { return pt.head[c : c+1] }
func (pt *pointToPoint) Distance(u, dst int) int { return pt.dist[u][dst] }

// RouteTable lends the engine the flat route table (RouteTabled).
func (pt *pointToPoint) RouteTable() []RouteEntry { return pt.routeFlat }

// DistanceRows lends the engine the per-source distance rows
// (DistanceRowed).
func (pt *pointToPoint) DistanceRows() [][]int { return pt.dist }

func (pt *pointToPoint) NextCoupler(u, dst int) (int, int) {
	r := pt.route[u][dst]
	return r.Coupler(), r.NextHop()
}

// scanNextCoupler is the construction-time oracle: first out-arc whose head
// is strictly closer to the destination (same tie-break as before).
func (pt *pointToPoint) scanNextCoupler(u, dst int) (int, int) {
	if u == dst {
		return -1, u
	}
	cur := pt.dist[u][dst]
	for _, c := range pt.out[u] {
		h := pt.head[c]
		if d := pt.dist[h][dst]; d != digraph.Unreachable && d < cur {
			return c, h
		}
	}
	return -1, -1
}

// CheckTopology validates basic sanity: every node has at least one out
// coupler, every coupler has at least one head, and routing reaches every
// destination. Returns nil for usable topologies.
func CheckTopology(t Topology) error {
	for u := 0; u < t.Nodes(); u++ {
		if len(t.OutCouplers(u)) == 0 {
			return fmt.Errorf("sim: node %d cannot transmit", u)
		}
		for v := 0; v < t.Nodes(); v++ {
			if u == v {
				continue
			}
			if t.Distance(u, v) == digraph.Unreachable {
				return fmt.Errorf("sim: node %d cannot reach %d", u, v)
			}
		}
	}
	for c := 0; c < t.Couplers(); c++ {
		if len(t.Heads(c)) == 0 {
			return fmt.Errorf("sim: coupler %d has no listeners", c)
		}
	}
	return nil
}
