package sim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"otisnet/internal/obs"
)

// Message is an in-flight unicast message.
type Message struct {
	ID   int
	Src  int
	Dst  int
	Born int // injection slot
	Hops int
}

// Config controls a simulation run.
type Config struct {
	// Seed seeds the private RNG (deterministic runs).
	Seed int64
	// MaxQueue caps each node's FIFO; 0 means unbounded. Injections and
	// relays beyond the cap are dropped and counted.
	MaxQueue int
	// Deflection enables hot-potato routing: messages that lose coupler
	// arbitration are deflected onto any free coupler of their node instead
	// of waiting. With deflection, queues only hold locally injected
	// messages awaiting the first transmission.
	Deflection bool
	// Wavelengths is the number of wavelengths per coupler (WDM extension;
	// the paper's networks are single-wavelength). Each coupler carries up
	// to this many simultaneous messages per slot. 0 means 1.
	Wavelengths int
}

// wavelengths returns the effective per-coupler capacity.
func (c Config) wavelengths() int {
	if c.Wavelengths < 1 {
		return 1
	}
	return c.Wavelengths
}

// Metrics accumulates run statistics.
type Metrics struct {
	Slots        int
	Injected     int
	Delivered    int
	Dropped      int
	Deflections  int
	TotalLatency int // sum over delivered of (deliverySlot - Born)
	TotalHops    int // sum over delivered of hop count
	PeakQueue    int // max FIFO length observed
	Backlog      int // messages still queued at the end

	// Fault metrics (all zero on static topologies). Unroutable and
	// LostToFaults are sub-counts of Dropped, so the conservation invariant
	// Injected == Delivered + Dropped + Backlog is unchanged.
	Unroutable   int // dropped because no route to the destination existed
	LostToFaults int // dropped because their queue's node failed
	Reroutes     int // queued messages whose routing changed under them
	// RecoverySlots sums, over fault events that disturbed queued traffic,
	// the slots from the event until the backlog first returned to its
	// immediate post-event level — a time-to-recover measure of transient
	// disruption. Events nobody was routing through do not start the clock.
	RecoverySlots int
}

// AvgLatency returns mean delivery latency in slots (0 when nothing was
// delivered).
func (m Metrics) AvgLatency() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.TotalLatency) / float64(m.Delivered)
}

// AvgHops returns mean hop count of delivered messages.
func (m Metrics) AvgHops() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.TotalHops) / float64(m.Delivered)
}

// Throughput returns delivered messages per slot.
func (m Metrics) Throughput() float64 {
	if m.Slots == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Slots)
}

// String summarizes the metrics on one line. Fault counters appear only
// when a fault actually disturbed the run, so fault-free output is
// unchanged.
func (m Metrics) String() string {
	s := fmt.Sprintf("slots=%d injected=%d delivered=%d dropped=%d backlog=%d thr=%.3f/slot lat=%.2f hops=%.2f peakQ=%d defl=%d",
		m.Slots, m.Injected, m.Delivered, m.Dropped, m.Backlog,
		m.Throughput(), m.AvgLatency(), m.AvgHops(), m.PeakQueue, m.Deflections)
	if m.Unroutable > 0 || m.LostToFaults > 0 || m.Reroutes > 0 || m.RecoverySlots > 0 {
		s += fmt.Sprintf(" unroutable=%d lost=%d reroutes=%d recovery=%d",
			m.Unroutable, m.LostToFaults, m.Reroutes, m.RecoverySlots)
	}
	return s
}

// replica is the mutable half of a simulation: queues, cursors, scratch,
// metrics and the slot clock, stepping over an immutable CompiledTopology.
// It is the one engine core — Engine wraps exactly one replica, and
// ReplicaSet runs R of them (with slab-allocated state) over a shared
// snapshot. Inside step there are no Topology interface calls — routing is
// one load from a flat table whose delivers-here bit replaces the
// per-transmission head-set scan, and the coupler structure is read from
// CSR arrays. Steady-state slot cost is O(active nodes + touched
// couplers), not O(N + M): nodes with queued traffic live on an active
// list, and only couplers that saw a request or grant this slot are
// arbitrated, transmitted and cleared. The hot path is allocation-free
// once scratch high-water marks are reached, and reset re-arms the replica
// for another scenario without reallocating any of it.
type replica struct {
	// ct is the compiled snapshot this replica steps over; the fields below
	// through dist are aliases of its arrays, re-synced after topology
	// events (syncTables). Keeping local slice headers keeps the hot path
	// one indirection flat, exactly as when the arrays lived on the engine.
	ct *CompiledTopology

	cfg Config
	// rng drives traffic generation in run; replicas inside a ReplicaSet
	// draw from their stream group's RNG instead and may leave this nil.
	rng *rand.Rand
	// rngSeededFor dedups re-seeding: seeding regenerates the full
	// math/rand state vector, so reset skips it when the RNG is already
	// virgin for the requested seed (the NewEngine-then-Run path).
	rngSeededFor int64
	rngVirgin    bool

	// Compiled topology aliases (see ct).
	n, m      int
	outStart  []int32 // node u transmits on outList[outStart[u]:outStart[u]+outCount[u]]
	outCount  []int32
	outList   []int32
	headStart []int32 // coupler c is heard by headList[headStart[c]:headStart[c]+headCount[c]]
	headCount []int32
	headList  []int32
	route     []RouteEntry // row-major (u, dst) routing decisions
	dist      [][]int      // dist[u][dst] for deflection choices

	queues []ring
	// rr holds per-coupler round-robin grant cursors for fairness.
	rr      []int32
	nextID  int
	slot    int
	backlog int // queued messages, tracked incrementally

	// active lists the nodes with a non-empty queue; activePos[u] is u's
	// index in it (-1 when idle). Order is arbitrary — every order-sensitive
	// consumer sorts its own working set — so activation and deactivation
	// are O(1) swap-removes.
	active    []int32
	activePos []int32
	// headReq[u] is the precompiled request of u's head-of-line message
	// (coupler < 0 when it is unroutable), valid while u is active. It is
	// recomputed when the head changes — enqueue to an empty queue,
	// dropFront leaving a survivor, topology events — so the per-slot
	// request scan reads one entry per active node instead of re-deriving
	// the route.
	headReq []txRequest

	metrics Metrics

	// Reusable per-step scratch; only the entries touched this slot are
	// cleared, so an idle network steps in near-O(1).
	requests  []txRequest
	byCoupler [][]int32     // coupler -> request indices
	granted   [][]txRequest // coupler -> granted transmissions
	// touched is a bitmap of couplers with requests or grants this slot.
	// Scanning its words visits touched couplers in ascending id order —
	// the order transmission must happen in — for O(M/64 + touched) per
	// slot, cheaper than keeping a sorted list.
	touched []uint64
	winners []bool // node -> won arbitration this slot
	// reqMask is the deflection counterpart of touched: a bitmap of nodes
	// that requested this slot, scanned in word order so losers deflect in
	// ascending node id order without sorting. Maintained only when
	// deflection is on.
	reqMask []uint64
	// Single-wavelength fused arbitration: each touched coupler keeps its
	// current argmin grant in grantSlot[c] with its round-robin key in
	// bestKey[c]; both are valid only while the coupler's touched bit is
	// set, so they are never cleared.
	bestKey   []int32
	grantSlot []txRequest
	keys      []int       // arbitration scratch: round-robin sort keys
	injBuf    []Injection // run's traffic-generation scratch

	// dyn is non-nil when the topology injects fault/repair events; the
	// replica polls it for changes at the top of every step. An event marks
	// the compiled snapshot dirty (ct.dirty), so reset only re-syncs it
	// when something changed.
	dyn DynamicTopology
	// Recovery tracking: while recovering, backlog has not yet returned to
	// recoverBaseline (its level right after the disrupting event).
	recovering      bool
	recoverStart    int
	recoverBaseline int

	// onDeliver mirrors Engine.OnDeliver (and ReplicaSpec.OnDeliver):
	// invoked per delivered message with its final hop count and slot.
	onDeliver func(msg Message, slot int)

	// obs holds the scenario's local observability tallies (plain memory,
	// single writer), flushed into the shared registry once per completed
	// run; see obs.go for the overhead contract.
	obs obsState
	// trace, when non-nil, receives sampled per-slot NDJSON events;
	// traceSlot caches "this slot is sampled" so hot emission sites test
	// one bool. Both stay nil/false in normal (untraced) runs.
	trace     *obs.Trace
	traceSlot bool

	// par, when non-nil, holds the intra-slot parallel machinery (shard
	// workers, ranges, per-shard scratch); see parallel.go and
	// Engine.SetParallel. Serial replicas leave it nil.
	par *parState
}

// attach points the replica at a compiled snapshot.
func (e *replica) attach(ct *CompiledTopology) {
	e.ct = ct
	e.n, e.m = ct.n, ct.m
	e.syncTables()
}

// syncTables re-reads the table aliases from the snapshot. Needed after
// any recompile, because an exotic relayout may reallocate the CSR lists.
func (e *replica) syncTables() {
	ct := e.ct
	e.outStart, e.outCount, e.outList = ct.outStart, ct.outCount, ct.outList
	e.headStart, e.headCount, e.headList = ct.headStart, ct.headCount, ct.headList
	e.route, e.dist = ct.route, ct.dist
}

// allocState allocates the replica's private per-node/per-coupler state
// (the Engine path; ReplicaSet carves the same fields out of shared
// slabs instead).
func (e *replica) allocState() {
	e.queues = make([]ring, e.n)
	e.rr = make([]int32, e.m)
	e.byCoupler = make([][]int32, e.m)
	e.granted = make([][]txRequest, e.m)
	e.touched = make([]uint64, (e.m+63)/64)
	e.winners = make([]bool, e.n)
	e.reqMask = make([]uint64, (e.n+63)/64)
	e.bestKey = make([]int32, e.m)
	e.grantSlot = make([]txRequest, e.m)
	e.activePos = make([]int32, e.n)
	e.headReq = make([]txRequest, e.n)
	e.obs.shard = obs.NextShard()
}

// reset re-arms the replica for a fresh scenario under cfg: queues,
// cursors, metrics, the RNG and the slot clock return to their initial
// state while every buffer (rings, scratch, compiled snapshot) keeps its
// capacity, so repeated scenarios on one replica allocate nothing. A run
// after reset is bit-for-bit identical to a run on a newly constructed
// engine. Dynamic topologies are rewound to their pre-event state.
func (e *replica) reset(cfg Config) {
	e.cfg = cfg
	if e.rng != nil && (!e.rngVirgin || e.rngSeededFor != cfg.Seed) {
		e.rng.Seed(cfg.Seed)
		e.rngSeededFor = cfg.Seed
		e.rngVirgin = true
	}
	for i := range e.queues {
		e.queues[i].reset()
	}
	for i := range e.rr {
		e.rr[i] = 0
	}
	for i := range e.winners {
		e.winners[i] = false
	}
	for i := range e.activePos {
		e.activePos[i] = -1
	}
	e.active = e.active[:0]
	// step leaves byCoupler/granted empty and the touched bitmap zero;
	// clearing the bitmap here is defense against a hypothetical aborted
	// slot, not a per-scenario cost that matters.
	for i := range e.touched {
		e.touched[i] = 0
	}
	for i := range e.reqMask {
		e.reqMask[i] = 0
	}
	e.requests = e.requests[:0]
	e.nextID, e.slot, e.backlog = 0, 0, 0
	e.metrics = Metrics{}
	e.recovering = false
	// Discard unflushed tallies from an abandoned manual-stepping session;
	// completed runs flush (and re-zero) them before the next reset.
	e.obs.activeSum, e.obs.touchedSum, e.obs.qDepthSum = 0, 0, 0
	e.obs.qDepth = [qDepthBuckets]int64{}
	e.obs.parSlots, e.obs.parImbSum = 0, 0
	e.obs.parImb = [parImbBuckets]int64{}
	e.traceSlot = false
	if e.dyn != nil {
		e.dyn.Reset()
		if e.ct.dirty {
			e.ct.recompileDynamic()
			e.ct.dirty = false
			e.syncTables()
		}
	}
}

// metricsSnapshot returns the accumulated metrics, with Backlog and Slots
// refreshed. Backlog is tracked incrementally, so this is O(1). A recovery
// still in progress contributes its elapsed slots.
func (e *replica) metricsSnapshot() Metrics {
	m := e.metrics
	m.Slots = e.slot
	m.Backlog = e.backlog
	if e.recovering {
		m.RecoverySlots += e.slot - e.recoverStart
	}
	return m
}

// inject enqueues a message at its source, honoring MaxQueue.
func (e *replica) inject(src, dst int) {
	if src == dst {
		return
	}
	e.metrics.Injected++
	e.enqueue(src, qmsg{id: int32(e.nextID), src: int32(src), dst: int32(dst), born: int32(e.slot)})
	e.nextID++
}

func (e *replica) enqueue(node int, msg qmsg) {
	q := &e.queues[node]
	if e.cfg.MaxQueue > 0 && q.len() >= e.cfg.MaxQueue {
		e.metrics.Dropped++
		return
	}
	q.push(msg)
	e.backlog++
	d := q.len()
	// Queue-depth histogram tally: a bits.Len bucket pick and two plain
	// adds on replica-local memory, published only at scenario flush.
	e.obs.qDepth[qDepthBucket(d)]++
	e.obs.qDepthSum += int64(d)
	if d > e.metrics.PeakQueue {
		e.metrics.PeakQueue = d
	}
	if d == 1 {
		e.activePos[node] = int32(len(e.active))
		e.active = append(e.active, int32(node))
		e.computeHeadReq(node, msg.dst)
	}
}

// computeHeadReq refreshes node's precompiled head-of-line request from
// the route table; dst is the head message's destination.
func (e *replica) computeHeadReq(node int, dst int32) {
	r := e.route[node*e.n+int(dst)]
	if r.c < 0 {
		e.headReq[node] = txRequest{node: int32(node), coupler: -1}
		return
	}
	e.headReq[node] = txRequest{
		node: int32(node), coupler: r.c &^ deliverFlag, nextHop: r.h, delivers: r.c&deliverFlag != 0,
	}
}

// dropFront discards the head-of-line message at node without copying it
// out — consumers read the fields they need through front() first — and
// keeps backlog and the active list in sync. The emptied-queue bookkeeping
// lives in deactivate so dropFront stays within the inlining budget of the
// Phase 4 loop.
func (e *replica) dropFront(node int) {
	e.backlog--
	q := &e.queues[node]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	if q.n == 0 {
		e.deactivate(node)
	} else {
		e.computeHeadReq(node, q.buf[q.head].dst)
	}
}

// deactivate swap-removes a now-idle node from the active list, O(1).
func (e *replica) deactivate(node int) {
	p := e.activePos[node]
	last := int32(len(e.active) - 1)
	moved := e.active[last]
	e.active[p] = moved
	e.activePos[moved] = p
	e.active = e.active[:last]
	e.activePos[node] = -1
}

// step advances the simulation by one slot: fault events, arbitration,
// transmission, delivery or relay. No Topology interface calls and no
// allocations happen here in steady state; per-slot work is proportional
// to the active nodes and touched couplers (plus an O(M/64 + N/64)
// bitmap-word scan), not to N or M. The single-wavelength configuration —
// the paper's networks — takes a fused arbitration path with no
// per-request list bookkeeping at all; multi-wavelength couplers go
// through the general candidate-sorting path.
func (e *replica) step() {
	// Phase 0: apply fault/repair events scheduled for this slot, purging
	// queues stranded on failed nodes and counting re-routed messages.
	if e.dyn != nil {
		if ch := e.dyn.Advance(e.slot); ch.Changed {
			e.applyTopologyChange(ch)
		}
	}
	// Active-node occupancy tally (one add on local memory per slot) and
	// the sampled-slot trace gate (false for the life of untraced runs).
	e.obs.activeSum += int64(len(e.active))
	if e.trace != nil {
		e.traceSlot = e.traceSampled()
	}

	// Parallel-armed replicas shard the slot when enough nodes are active
	// to amortize the phase barriers; traced slots always run serially
	// (trace emission is inherently ordered). Serial and parallel slots
	// produce bit-for-bit identical state, so a run may mix them.
	if e.par != nil && e.trace == nil && len(e.active) >= e.par.threshold {
		e.stepParallel()
	} else if e.cfg.Wavelengths <= 1 {
		e.stepSingleWavelength()
	} else {
		e.stepMultiWavelength()
	}

	if e.traceSlot {
		e.emitTraceSlot()
	}
	e.slot++
	if e.recovering && e.backlog <= e.recoverBaseline {
		e.metrics.RecoverySlots += e.slot - e.recoverStart
		e.recovering = false
	}
}

// stepSingleWavelength is the W = 1 hot path. Arbitration is an argmin
// over each coupler's candidates by round-robin key, so Phase 1 folds it
// in incrementally: each coupler keeps one tentative grant (grantSlot,
// gated by the touched bitmap), and no request or candidate list is built.
func (e *replica) stepSingleWavelength() {
	// Phase 1 + 2a: requests with incremental per-coupler arbitration. The
	// active list replaces the full O(N) queue scan; its order is
	// irrelevant because the argmin and every later phase order their own
	// work.
	n32 := int32(e.n)
	defl := e.cfg.Deflection
	for i := 0; i < len(e.active); {
		u := int(e.active[i])
		r := e.headReq[u]
		if r.coupler < 0 {
			// Unroutable: on the static, strongly connected topologies this
			// cannot happen; under faults it means the destination (or the
			// queue's own node) is cut off. Count-drop. The drop may
			// swap-remove u from the active slot we are standing on, in
			// which case the moved node is processed at the same index.
			e.dropFront(u)
			e.metrics.Dropped++
			e.metrics.Unroutable++
			if e.activePos[u] >= 0 {
				i++
			}
			continue
		}
		c := r.coupler
		// Round-robin key of node u on coupler c: (u - cursor) mod n via a
		// conditional add (both operands are in [0, n)).
		key := int32(u) - e.rr[c]
		if key < 0 {
			key += n32
		}
		wIdx, bit := c>>6, uint64(1)<<(c&63)
		if e.touched[wIdx]&bit == 0 {
			e.touched[wIdx] |= bit
			e.bestKey[c] = key
			e.grantSlot[c] = r
		} else if key < e.bestKey[c] {
			e.bestKey[c] = key
			e.grantSlot[c] = r
		}
		if defl {
			e.reqMask[u>>6] |= 1 << (u & 63)
		}
		i++
	}

	// Phase 2b + 3 (deflection only). Without deflection the winners set is
	// never read — every arbitration outcome already sits in grantSlot —
	// so both the winner-marking scan and its cleanup are skipped entirely
	// and the round-robin cursors advance in Phase 4 instead (they are not
	// read again until the next slot).
	if defl {
		// Finalize the winners and advance the round-robin cursors (the
		// cursors must stay fixed while keys are being computed above, and
		// only request-carrying couplers move them — deflection grants
		// below do not).
		for wi, word := range e.touched {
			for word != 0 {
				c := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				r := e.grantSlot[c]
				e.winners[r.node] = true
				e.rr[c] = rrNext(r.node, n32)
			}
		}

		// Losers grab any coupler of their node that carries no grant yet;
		// the message is deflected toward the head node closest to its
		// destination. Losers act in ascending node id order — the order
		// the legacy full-scan engine implied — which the requested-node
		// bitmap scan yields directly; its words are consumed (zeroed) as
		// the scan goes.
		for wi := range e.reqMask {
			word := e.reqMask[wi]
			if word == 0 {
				continue
			}
			e.reqMask[wi] = 0
			for word != 0 {
				u := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if e.winners[u] {
					continue
				}
				msg := e.queues[u].front()
				ob, oc := e.outStart[u], e.outCount[u]
				for oi := ob; oi < ob+oc; oi++ {
					c := int(e.outList[oi])
					wIdx, bit := c>>6, uint64(1)<<(c&63)
					if e.touched[wIdx]&bit != 0 {
						continue // already carries this slot's one grant
					}
					bestHop, delivers := e.deflectTarget(c, int(msg.dst))
					if bestHop < 0 {
						continue
					}
					e.touched[wIdx] |= bit
					e.grantSlot[c] = txRequest{node: int32(u), coupler: int32(c), nextHop: bestHop, delivers: delivers}
					e.winners[u] = true
					e.metrics.Deflections++
					break
				}
			}
		}
	}

	// Phase 4: transmissions, in ascending coupler order — the bitmap word
	// scan yields exactly that order, so deliveries and relays interleave
	// as a full coupler scan would. The precompiled delivers-here bit
	// replaces the per-transmission head-set scan. With deflection the
	// winners set is cleared as its grants are consumed; without it the
	// round-robin cursors advance here (every touched coupler carries an
	// arbitration grant in that case).
	for wi := range e.touched {
		word := e.touched[wi]
		if word == 0 {
			continue
		}
		e.touched[wi] = 0
		e.obs.touchedSum += int64(bits.OnesCount64(word))
		for word != 0 {
			c := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := e.grantSlot[c]
			if defl {
				e.winners[r.node] = false
			} else {
				e.rr[c] = rrNext(r.node, n32)
			}
			e.transmit(r)
		}
	}
}

// stepMultiWavelength is the general W > 1 path: each touched coupler
// collects its full candidate list, sorts it by precomputed round-robin
// keys and grants the first W senders.
func (e *replica) stepMultiWavelength() {
	// Phase 1: each node with a queued message requests the coupler its
	// precompiled route entry names for the head-of-line message.
	e.requests = e.requests[:0]
	n32 := int32(e.n)
	defl := e.cfg.Deflection
	for i := 0; i < len(e.active); {
		u := int(e.active[i])
		r := e.headReq[u]
		if r.coupler < 0 {
			e.dropFront(u)
			e.metrics.Dropped++
			e.metrics.Unroutable++
			if e.activePos[u] >= 0 {
				i++
			}
			continue
		}
		c := r.coupler
		e.requests = append(e.requests, r)
		e.touched[c>>6] |= 1 << (c & 63)
		if defl {
			e.reqMask[u>>6] |= 1 << (u & 63)
		}
		e.byCoupler[c] = append(e.byCoupler[c], int32(len(e.requests)-1))
		i++
	}

	// Phase 2: per-coupler arbitration — round-robin over node ids so no
	// node starves; each coupler grants up to W senders. Only couplers
	// that actually saw a request are visited; per-coupler outcomes are
	// independent, so the visit order does not matter.
	w := e.cfg.wavelengths()
	for wi, word := range e.touched {
		for word != 0 {
			c := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			idxs := e.byCoupler[c]
			if len(idxs) == 1 {
				r := e.requests[idxs[0]]
				e.granted[c] = append(e.granted[c], r)
				e.winners[r.node] = true
				e.rr[c] = rrNext(r.node, n32)
				continue
			}
			cursor := e.rr[c]
			e.keys = e.keys[:0]
			for _, ri := range idxs {
				k := e.requests[ri].node - cursor
				if k < 0 {
					k += n32
				}
				e.keys = append(e.keys, int(k))
			}
			sortByRRKey(idxs, e.keys)
			take := w
			if take > len(idxs) {
				take = len(idxs)
			}
			for _, ri := range idxs[:take] {
				r := e.requests[ri]
				e.granted[c] = append(e.granted[c], r)
				e.winners[r.node] = true
			}
			e.rr[c] = rrNext(e.requests[idxs[take-1]].node, n32)
		}
	}

	// Phase 3 (deflection only): as in the single-wavelength path, but a
	// coupler is free while it holds fewer than W grants.
	if defl {
		for wi := range e.reqMask {
			word := e.reqMask[wi]
			if word == 0 {
				continue
			}
			e.reqMask[wi] = 0
			for word != 0 {
				u := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if e.winners[u] {
					continue
				}
				msg := e.queues[u].front()
				ob, oc := e.outStart[u], e.outCount[u]
				for oi := ob; oi < ob+oc; oi++ {
					c := int(e.outList[oi])
					if len(e.granted[c]) >= w {
						continue
					}
					bestHop, delivers := e.deflectTarget(c, int(msg.dst))
					if bestHop < 0 {
						continue
					}
					e.touched[c>>6] |= 1 << (c & 63)
					e.granted[c] = append(e.granted[c], txRequest{
						node: int32(u), coupler: int32(c), nextHop: bestHop, delivers: delivers,
					})
					e.winners[u] = true
					e.metrics.Deflections++
					break
				}
			}
		}
	}

	// Phase 4: transmissions in ascending coupler order; each coupler's
	// candidate and grant scratch is cleared as it is consumed.
	for wi := range e.touched {
		word := e.touched[wi]
		if word == 0 {
			continue
		}
		e.touched[wi] = 0
		e.obs.touchedSum += int64(bits.OnesCount64(word))
		for word != 0 {
			c := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			for _, r := range e.granted[c] {
				e.winners[r.node] = false
				e.transmit(r)
			}
			e.byCoupler[c] = e.byCoupler[c][:0]
			e.granted[c] = e.granted[c][:0]
		}
	}
}

// deflectTarget scans coupler c's compiled head set for the live head
// closest to dst (the deflection target), reporting whether dst itself
// hears the coupler. bestHop is -1 when no head has a live path to dst.
// Shared by both step paths so the deflection tie-breaking, the delivers
// check and the d >= 0 liveness guard cannot drift apart.
func (e *replica) deflectTarget(c, dst int) (bestHop int32, delivers bool) {
	bestHop, bestDist := int32(-1), 1<<30
	hb, hc := e.headStart[c], e.headCount[c]
	for hi := hb; hi < hb+hc; hi++ {
		h := e.headList[hi]
		if int(h) == dst {
			delivers = true
		}
		if d := e.dist[h][dst]; d >= 0 && d < bestDist {
			bestDist = d
			bestHop = h
		}
	}
	return bestHop, delivers
}

// transmit executes one granted transmission: the sender pops its
// head-of-line message, which is delivered if the destination hears the
// coupler (the precompiled delivers bit) and relayed to the chosen next
// hop otherwise.
func (e *replica) transmit(r txRequest) {
	src := int(r.node)
	msg := e.queues[src].front()
	if r.delivers {
		// Read the delivered message in place; no copy leaves the ring.
		hops := int(msg.hops) + 1
		e.metrics.Delivered++
		e.metrics.TotalLatency += e.slot + 1 - int(msg.born)
		e.metrics.TotalHops += hops
		if e.onDeliver != nil {
			e.onDeliver(Message{
				ID: int(msg.id), Src: int(msg.src), Dst: int(msg.dst),
				Born: int(msg.born), Hops: hops,
			}, e.slot+1)
		}
		if e.traceSlot {
			e.trace.Emit(TraceDeliverEvent{
				Kind: "deliver", Slot: e.slot + 1,
				ID: int(msg.id), Src: int(msg.src), Dst: int(msg.dst),
				Born: int(msg.born), Hops: hops,
			})
		}
		e.dropFront(src)
	} else {
		// One ring-to-ring copy; dropping the source slot first mirrors
		// the legacy dequeue-then-enqueue order (it matters when a
		// deflection relays a message back onto its own bounded queue).
		m := *msg
		m.hops++
		e.dropFront(src)
		e.enqueue(int(r.nextHop), m)
	}
}

// applyTopologyChange reacts to a fault/repair batch: queues at nodes that
// just failed are purged (LostToFaults), the compiled structure arrays are
// re-synced (borrowed route/distance tables were already repaired in place
// by the topology, row by row), and surviving queued messages whose
// routing decision changed to another live path are counted as Reroutes —
// with table routing they silently follow the new path at their next
// transmission (messages left without any route are not reroutes; they
// surface as Unroutable when they reach the head of their queue).
func (e *replica) applyTopologyChange(ch TopologyChange) {
	e.ct.dirty = true
	disrupted := false
	for _, u := range ch.FailedNodes {
		for e.queues[u].len() > 0 {
			e.dropFront(u)
			e.metrics.Dropped++
			e.metrics.LostToFaults++
			disrupted = true
		}
	}
	e.ct.recompileDynamic()
	e.syncTables()
	// Refresh the precompiled head-of-line requests. Only heads whose
	// route row the event actually invalidated need recomputing: for an
	// unchanged (u, dst) entry the recompute is the identity, so the
	// per-entry change mask (EntryChanged, backed by the fault layer's
	// row-invalidation bitmap) lets untouched requests stand. With no mask
	// every active head is refreshed.
	for _, ui := range e.active {
		u := int(ui)
		dst := e.queues[u].front().dst
		if ch.EntryChanged == nil || ch.EntryChanged(u, int(dst)) {
			e.computeHeadReq(u, dst)
		}
	}
	if ch.EntryChanged != nil {
		// Only active nodes hold queued messages; order does not matter for
		// counting.
		for _, ui := range e.active {
			u := int(ui)
			q := &e.queues[u]
			for i := 0; i < q.len(); i++ {
				dst := int(q.at(i).dst)
				if !ch.EntryChanged(u, dst) {
					continue
				}
				disrupted = true
				if e.route[u*e.n+dst].c >= 0 {
					e.metrics.Reroutes++
				}
			}
		}
	}
	// Start (or re-baseline) the time-to-recover clock, but only when the
	// batch actually disturbed queued traffic: repairs on an idle network
	// (or events nobody was routing through) are not disruptions. Recovery
	// completes when the backlog next returns to its post-purge level.
	if !disrupted {
		return
	}
	if !e.recovering {
		e.recovering = true
		e.recoverStart = e.slot
	}
	e.recoverBaseline = e.backlog
}

// run resets the replica with cfg and executes a full scenario on it:
// `slots` slots of traffic generation plus up to `drain` extra slots to
// let queues empty, returning the metrics.
func (e *replica) run(traffic Traffic, slots, drain int, cfg Config) Metrics {
	e.reset(cfg)
	e.rngVirgin = false // the generation loop draws from the RNG
	if ur, ok := traffic.(UniformRater); ok {
		e.runUniform(ur.UniformRate(), slots)
	} else {
		for s := 0; s < slots; s++ {
			e.injBuf = traffic.Generate(e.injBuf[:0], s, e.n, e.rng)
			for _, inj := range e.injBuf {
				e.inject(inj.Src, inj.Dst)
			}
			e.step()
		}
	}
	for s := 0; s < drain && e.backlog > 0; s++ {
		e.step()
	}
	m := e.metricsSnapshot()
	e.flushObs()
	return m
}

// runUniform is run's fused generation loop for uniform Bernoulli traffic
// (UniformRater): the RNG consumption sequence is exactly
// UniformTraffic.Generate followed by Inject calls — so runs are
// bit-for-bit identical — without materializing the Injection buffer.
func (e *replica) runUniform(rate float64, slots int) {
	n, rng := e.n, e.rng
	for s := 0; s < slots; s++ {
		for u := 0; u < n; u++ {
			if rng.Float64() < rate {
				dst := rng.Intn(n - 1)
				if dst >= u {
					dst++ // skip self, as the uniform model does
				}
				e.metrics.Injected++
				e.enqueue(u, qmsg{id: int32(e.nextID), src: int32(u), dst: int32(dst), born: int32(e.slot)})
				e.nextID++
			}
		}
		e.step()
	}
}

// finished reports whether a scenario of `slots` generation slots and
// `drain` drain budget is complete: the generation phase has run and
// either the backlog emptied or the drain budget is spent. This is
// exactly the loop exit condition of run, checked before each step, so
// ReplicaSet retirement matches solo runs slot for slot.
func (e *replica) finished(slots, drain int) bool {
	return e.slot >= slots && (e.backlog == 0 || e.slot >= slots+drain)
}

// Engine simulates a Topology slot by slot: the single-replica wrapper
// around the replica core, owning a private CompiledTopology. See
// ReplicaSet for running many replicas over one shared snapshot; both
// paths execute the identical step code.
type Engine struct {
	replica

	// OnDeliver, when non-nil, is invoked for every delivered message with
	// its final hop count and the delivery slot. It lets experiments record
	// per-(src,dst) path lengths — e.g. to cross-check the §2.5 fault bound
	// against kautz.RouteAvoiding — without burdening Metrics.
	OnDeliver func(msg Message, slot int)
}

// NewEngine compiles the topology and prepares a simulation over it. A
// topology that also implements DynamicTopology (e.g.
// faults.FaultedTopology) is reset to its pre-event state — so the
// compiled snapshot covers the full (pristine) structure — and polled for
// fault events every Step.
func NewEngine(topo Topology, cfg Config) *Engine {
	e := &Engine{}
	e.rng = rand.New(rand.NewSource(cfg.Seed))
	e.rngSeededFor = cfg.Seed
	e.rngVirgin = true
	e.attach(Compile(topo))
	if dyn, ok := topo.(DynamicTopology); ok {
		e.dyn = dyn
	}
	e.allocState()
	e.Reset(cfg)
	return e
}

// Reset re-arms the engine for a fresh scenario under cfg; see
// replica.reset. A run after Reset is bit-for-bit identical to a run on a
// newly constructed engine.
func (e *Engine) Reset(cfg Config) { e.reset(cfg) }

// Metrics returns a snapshot of the accumulated metrics, with Backlog and
// Slots refreshed; O(1).
func (e *Engine) Metrics() Metrics { return e.metricsSnapshot() }

// Backlog returns the number of currently queued messages, O(1). Drain
// loops test it directly instead of materializing a Metrics copy per slot.
func (e *Engine) Backlog() int { return e.backlog }

// Inject enqueues a message at its source, honoring MaxQueue.
func (e *Engine) Inject(src, dst int) { e.inject(src, dst) }

// Step advances the simulation by one slot; see replica.step.
func (e *Engine) Step() {
	e.onDeliver = e.OnDeliver
	e.step()
}

// Run resets the engine with cfg and executes a full scenario on it:
// `slots` slots of traffic generation plus up to `drain` extra slots to
// let queues empty, returning the metrics. All scratch — including the
// traffic-generation buffer — lives on the engine, so a warmed engine runs
// whole scenarios without allocating; results are bit-for-bit identical to
// sim.Run on a fresh engine.
func (e *Engine) Run(traffic Traffic, slots, drain int, cfg Config) Metrics {
	e.onDeliver = e.OnDeliver
	return e.run(traffic, slots, drain, cfg)
}

// txRequest is one node's wish to drive one coupler toward one next hop.
// delivers carries the precompiled delivers-here bit so Phase 4 never
// scans a head set.
type txRequest struct {
	node     int32
	coupler  int32
	nextHop  int32
	delivers bool
}

// rrNext advances a round-robin cursor past the granted node: (node+1)
// mod n without the divide (node is always in [0, n)).
func rrNext(node, n int32) int32 {
	if node+1 == n {
		return 0
	}
	return node + 1
}

// sortByRRKey orders request indices by their precomputed round-robin keys
// (distance of the node id from the coupler's cursor). Keys are computed
// once per candidate by the caller — not recomputed inside every
// comparison — and are permuted in lockstep. Insertion sort; candidate
// lists are small.
func sortByRRKey(idxs []int32, keys []int) {
	for a := 1; a < len(idxs); a++ {
		for b := a; b > 0 && keys[b] < keys[b-1]; b-- {
			idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
			keys[b], keys[b-1] = keys[b-1], keys[b]
		}
	}
}

// Run executes a full simulation over a freshly compiled engine. Callers
// running many scenarios over one topology should construct the engine
// once and call Engine.Run per scenario instead (see internal/sweep).
func Run(topo Topology, traffic Traffic, slots, drain int, cfg Config) Metrics {
	return NewEngine(topo, cfg).Run(traffic, slots, drain, cfg)
}
