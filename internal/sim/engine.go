package sim

import (
	"fmt"
	"math/rand"
)

// Message is an in-flight unicast message.
type Message struct {
	ID   int
	Src  int
	Dst  int
	Born int // injection slot
	Hops int
}

// Config controls a simulation run.
type Config struct {
	// Seed seeds the private RNG (deterministic runs).
	Seed int64
	// MaxQueue caps each node's FIFO; 0 means unbounded. Injections and
	// relays beyond the cap are dropped and counted.
	MaxQueue int
	// Deflection enables hot-potato routing: messages that lose coupler
	// arbitration are deflected onto any free coupler of their node instead
	// of waiting. With deflection, queues only hold locally injected
	// messages awaiting the first transmission.
	Deflection bool
	// Wavelengths is the number of wavelengths per coupler (WDM extension;
	// the paper's networks are single-wavelength). Each coupler carries up
	// to this many simultaneous messages per slot. 0 means 1.
	Wavelengths int
}

// wavelengths returns the effective per-coupler capacity.
func (c Config) wavelengths() int {
	if c.Wavelengths < 1 {
		return 1
	}
	return c.Wavelengths
}

// Metrics accumulates run statistics.
type Metrics struct {
	Slots        int
	Injected     int
	Delivered    int
	Dropped      int
	Deflections  int
	TotalLatency int // sum over delivered of (deliverySlot - Born)
	TotalHops    int // sum over delivered of hop count
	PeakQueue    int // max FIFO length observed
	Backlog      int // messages still queued at the end

	// Fault metrics (all zero on static topologies). Unroutable and
	// LostToFaults are sub-counts of Dropped, so the conservation invariant
	// Injected == Delivered + Dropped + Backlog is unchanged.
	Unroutable   int // dropped because no route to the destination existed
	LostToFaults int // dropped because their queue's node failed
	Reroutes     int // queued messages whose routing changed under them
	// RecoverySlots sums, over fault events that disturbed queued traffic,
	// the slots from the event until the backlog first returned to its
	// immediate post-event level — a time-to-recover measure of transient
	// disruption. Events nobody was routing through do not start the clock.
	RecoverySlots int
}

// AvgLatency returns mean delivery latency in slots (0 when nothing was
// delivered).
func (m Metrics) AvgLatency() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.TotalLatency) / float64(m.Delivered)
}

// AvgHops returns mean hop count of delivered messages.
func (m Metrics) AvgHops() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.TotalHops) / float64(m.Delivered)
}

// Throughput returns delivered messages per slot.
func (m Metrics) Throughput() float64 {
	if m.Slots == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Slots)
}

// String summarizes the metrics on one line. Fault counters appear only
// when a fault actually disturbed the run, so fault-free output is
// unchanged.
func (m Metrics) String() string {
	s := fmt.Sprintf("slots=%d injected=%d delivered=%d dropped=%d backlog=%d thr=%.3f/slot lat=%.2f hops=%.2f peakQ=%d defl=%d",
		m.Slots, m.Injected, m.Delivered, m.Dropped, m.Backlog,
		m.Throughput(), m.AvgLatency(), m.AvgHops(), m.PeakQueue, m.Deflections)
	if m.Unroutable > 0 || m.LostToFaults > 0 || m.Reroutes > 0 || m.RecoverySlots > 0 {
		s += fmt.Sprintf(" unroutable=%d lost=%d reroutes=%d recovery=%d",
			m.Unroutable, m.LostToFaults, m.Reroutes, m.RecoverySlots)
	}
	return s
}

// Engine simulates a Topology slot by slot. Its hot path (Step) is
// allocation-free in steady state: queues are ring buffers and all per-slot
// working sets live in reusable scratch buffers sized once at construction.
type Engine struct {
	topo   Topology
	cfg    Config
	rng    *rand.Rand
	queues []ring
	// rr holds per-coupler round-robin grant cursors for fairness.
	rr      []int
	nextID  int
	slot    int
	backlog int // queued messages, tracked incrementally
	metrics Metrics
	// Reusable per-step scratch; cleared (not reallocated) every slot.
	requests  []txRequest
	byCoupler [][]int       // coupler -> request indices
	granted   [][]txRequest // coupler -> granted transmissions
	winners   []bool        // node -> won arbitration this slot

	// dyn is non-nil when the topology injects fault/repair events; the
	// engine polls it for changes at the top of every Step.
	dyn DynamicTopology
	// Recovery tracking: while recovering, backlog has not yet returned to
	// recoverBaseline (its level right after the disrupting event).
	recovering      bool
	recoverStart    int
	recoverBaseline int

	// OnDeliver, when non-nil, is invoked for every delivered message with
	// its final hop count and the delivery slot. It lets experiments record
	// per-(src,dst) path lengths — e.g. to cross-check the §2.5 fault bound
	// against kautz.RouteAvoiding — without burdening Metrics.
	OnDeliver func(msg Message, slot int)
}

// NewEngine prepares a simulation over the topology. A topology that also
// implements DynamicTopology (e.g. faults.FaultedTopology) is reset to its
// pre-event state and polled for fault events every Step.
func NewEngine(topo Topology, cfg Config) *Engine {
	e := &Engine{
		topo:      topo,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		queues:    make([]ring, topo.Nodes()),
		rr:        make([]int, topo.Couplers()),
		byCoupler: make([][]int, topo.Couplers()),
		granted:   make([][]txRequest, topo.Couplers()),
		winners:   make([]bool, topo.Nodes()),
	}
	if dyn, ok := topo.(DynamicTopology); ok {
		dyn.Reset()
		e.dyn = dyn
	}
	return e
}

// Metrics returns a snapshot of the accumulated metrics, with Backlog and
// Slots refreshed. Backlog is tracked incrementally, so this is O(1). A
// recovery still in progress contributes its elapsed slots.
func (e *Engine) Metrics() Metrics {
	m := e.metrics
	m.Slots = e.slot
	m.Backlog = e.backlog
	if e.recovering {
		m.RecoverySlots += e.slot - e.recoverStart
	}
	return m
}

// Inject enqueues a message at its source, honoring MaxQueue.
func (e *Engine) Inject(src, dst int) {
	if src == dst {
		return
	}
	e.metrics.Injected++
	e.enqueue(src, Message{ID: e.nextID, Src: src, Dst: dst, Born: e.slot})
	e.nextID++
}

func (e *Engine) enqueue(node int, msg Message) {
	if e.cfg.MaxQueue > 0 && e.queues[node].len() >= e.cfg.MaxQueue {
		e.metrics.Dropped++
		return
	}
	e.queues[node].push(msg)
	e.backlog++
	if e.queues[node].len() > e.metrics.PeakQueue {
		e.metrics.PeakQueue = e.queues[node].len()
	}
}

// dequeue pops the head-of-line message at node, keeping backlog in sync.
func (e *Engine) dequeue(node int) Message {
	e.backlog--
	return e.queues[node].pop()
}

// Step advances the simulation by one slot: fault events, arbitration,
// transmission, delivery or relay.
func (e *Engine) Step() {
	// Phase 0: apply fault/repair events scheduled for this slot, purging
	// queues stranded on failed nodes and counting re-routed messages.
	if e.dyn != nil {
		if ch := e.dyn.Advance(e.slot); ch.Changed {
			e.applyTopologyChange(ch)
		}
	}

	// Phase 1: each node with a queued message requests its preferred
	// coupler for the head-of-line message. Everything below iterates in
	// coupler or node order so runs are deterministic for a given seed.
	e.requests = e.requests[:0]
	for c := range e.byCoupler {
		e.byCoupler[c] = e.byCoupler[c][:0]
		e.granted[c] = e.granted[c][:0]
	}
	for u := 0; u < e.topo.Nodes(); u++ {
		if e.queues[u].len() == 0 {
			continue
		}
		msg := e.queues[u].front()
		c, hop := e.topo.NextCoupler(u, msg.Dst)
		if c < 0 {
			// Unroutable: on the static, strongly connected topologies this
			// cannot happen; under faults it means the destination (or the
			// queue's own node) is cut off. Count-drop.
			e.dequeue(u)
			e.metrics.Dropped++
			e.metrics.Unroutable++
			continue
		}
		e.requests = append(e.requests, txRequest{node: u, coupler: c, nextHop: hop})
		e.byCoupler[c] = append(e.byCoupler[c], len(e.requests)-1)
	}

	// Phase 2: per-coupler arbitration — round-robin over node ids so no
	// node starves. With W wavelengths each coupler grants up to W senders.
	w := e.cfg.wavelengths()
	for c := 0; c < e.topo.Couplers(); c++ {
		idxs := e.byCoupler[c]
		if len(idxs) == 0 {
			continue
		}
		// Sort candidates by round-robin key and take the first W.
		sortByRRKey(idxs, e.requests, e.rr[c], e.topo.Nodes())
		take := w
		if take > len(idxs) {
			take = len(idxs)
		}
		for _, i := range idxs[:take] {
			e.granted[c] = append(e.granted[c], e.requests[i])
			e.winners[e.requests[i].node] = true
		}
		e.rr[c] = (e.requests[idxs[take-1]].node + 1) % e.topo.Nodes()
	}

	// Phase 3 (deflection only): losers grab any coupler that is still
	// free on their node; the message is deflected toward the head node
	// closest to its destination.
	if e.cfg.Deflection {
		for _, r := range e.requests {
			if e.winners[r.node] {
				continue
			}
			for _, c := range e.topo.OutCouplers(r.node) {
				if len(e.granted[c]) >= w {
					continue
				}
				// Deflect toward the best head on this coupler.
				msg := e.queues[r.node].front()
				bestHop, bestDist := -1, 1<<30
				for _, h := range e.topo.Heads(c) {
					if d := e.topo.Distance(h, msg.Dst); d >= 0 && d < bestDist {
						bestDist = d
						bestHop = h
					}
				}
				if bestHop < 0 {
					continue
				}
				e.granted[c] = append(e.granted[c], txRequest{node: r.node, coupler: c, nextHop: bestHop})
				e.winners[r.node] = true
				e.metrics.Deflections++
				break
			}
		}
	}

	// Phase 4: transmissions. Winners pop their head-of-line message; it is
	// delivered if the destination hears the coupler, else relayed to the
	// chosen next hop.
	for c := 0; c < e.topo.Couplers(); c++ {
		for _, r := range e.granted[c] {
			msg := e.dequeue(r.node)
			msg.Hops++
			delivered := false
			for _, h := range e.topo.Heads(r.coupler) {
				if h == msg.Dst {
					delivered = true
					break
				}
			}
			if delivered {
				e.metrics.Delivered++
				e.metrics.TotalLatency += e.slot + 1 - msg.Born
				e.metrics.TotalHops += msg.Hops
				if e.OnDeliver != nil {
					e.OnDeliver(msg, e.slot+1)
				}
			} else {
				e.enqueue(r.nextHop, msg)
			}
		}
	}
	// Reset the winners set for the next slot; only nodes that requested
	// this slot can be marked, so this touches exactly the dirty entries.
	for _, r := range e.requests {
		e.winners[r.node] = false
	}
	e.slot++
	if e.recovering && e.backlog <= e.recoverBaseline {
		e.metrics.RecoverySlots += e.slot - e.recoverStart
		e.recovering = false
	}
}

// applyTopologyChange reacts to a fault/repair batch: queues at nodes that
// just failed are purged (LostToFaults), and surviving queued messages
// whose routing decision changed to another live path are counted as
// Reroutes — with table routing they silently follow the new path at their
// next transmission (messages left without any route are not reroutes;
// they surface as Unroutable when they reach the head of their queue).
func (e *Engine) applyTopologyChange(ch TopologyChange) {
	disrupted := false
	for _, u := range ch.FailedNodes {
		for e.queues[u].len() > 0 {
			e.dequeue(u)
			e.metrics.Dropped++
			e.metrics.LostToFaults++
			disrupted = true
		}
	}
	if ch.EntryChanged != nil {
		for u := 0; u < e.topo.Nodes(); u++ {
			for i := 0; i < e.queues[u].len(); i++ {
				dst := e.queues[u].at(i).Dst
				if !ch.EntryChanged(u, dst) {
					continue
				}
				disrupted = true
				if c, _ := e.topo.NextCoupler(u, dst); c >= 0 {
					e.metrics.Reroutes++
				}
			}
		}
	}
	// Start (or re-baseline) the time-to-recover clock, but only when the
	// batch actually disturbed queued traffic: repairs on an idle network
	// (or events nobody was routing through) are not disruptions. Recovery
	// completes when the backlog next returns to its post-purge level.
	if !disrupted {
		return
	}
	if !e.recovering {
		e.recovering = true
		e.recoverStart = e.slot
	}
	e.recoverBaseline = e.backlog
}

// txRequest is one node's wish to drive one coupler toward one next hop.
type txRequest struct {
	node    int
	coupler int
	nextHop int
}

// sortByRRKey orders request indices by round-robin distance of their node
// id from the cursor (insertion sort; candidate lists are small).
func sortByRRKey(idxs []int, requests []txRequest, cursor, n int) {
	key := func(i int) int { return (requests[i].node - cursor + n) % n }
	for a := 1; a < len(idxs); a++ {
		for b := a; b > 0 && key(idxs[b]) < key(idxs[b-1]); b-- {
			idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
		}
	}
}

// Run executes a full simulation: `slots` slots of traffic generation plus
// up to `drain` extra slots to let queues empty, returning the metrics.
// The injection scratch is reused across slots, so the whole inner loop is
// allocation-free in steady state (see BenchmarkStepAllocFree).
func Run(topo Topology, traffic Traffic, slots, drain int, cfg Config) Metrics {
	e := NewEngine(topo, cfg)
	var buf []Injection
	for s := 0; s < slots; s++ {
		buf = traffic.Generate(buf[:0], s, topo.Nodes(), e.rng)
		for _, inj := range buf {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
	}
	for s := 0; s < drain && e.Metrics().Backlog > 0; s++ {
		e.Step()
	}
	return e.Metrics()
}
