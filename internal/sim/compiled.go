package sim

// Compiled-topology snapshot: the engine does not call any Topology method
// inside Step. At construction the topology is compiled into flat arrays —
// CSR out-coupler and head lists, one row-major route table with a packed
// delivers-here bit, and distance rows — and the step loop reads only
// those. Topologies that already maintain the tables in this shape (the
// stack, point-to-point and fault-wrapped topologies) hand the snapshot
// their live backing arrays, so compilation is O(n + m + arcs) and dynamic
// row repairs done by faults.FaultedTopology are visible to the engine
// without any copying or invalidation protocol. Arbitrary Topology
// implementations are compiled by querying the interface once per (u, dst)
// pair.
//
// The snapshot is its own type, CompiledTopology, because it is immutable
// between fault events and therefore shareable: a ReplicaSet runs many
// replicas (independent seeds, loads, workloads) over one compiled base,
// and only replicas with a private dynamic topology (a fault wrapper)
// compile a private view.

// deliverFlag marks a RouteEntry whose destination hears the chosen
// coupler, so delivery needs no head-set scan on the hot path.
const deliverFlag = 1 << 30

// RouteEntry is a packed, precompiled routing decision: the coupler to
// request, the preferred next-hop node, and whether the destination itself
// hears that coupler (the delivers-here bit). The zero value is an
// unroutable entry pointing at node 0; build entries with MakeRouteEntry.
type RouteEntry struct {
	c int32 // coupler id, deliverFlag-tagged; -1 when no route exists
	h int32 // preferred next hop (the destination when delivers is set)
}

// MakeRouteEntry packs one routing decision. coupler < 0 means no route
// (or "already there" when nextHop equals the source).
func MakeRouteEntry(coupler, nextHop int, delivers bool) RouteEntry {
	if coupler < 0 {
		return RouteEntry{c: -1, h: int32(nextHop)}
	}
	c := int32(coupler)
	if delivers {
		c |= deliverFlag
	}
	return RouteEntry{c: c, h: int32(nextHop)}
}

// Coupler returns the coupler to request, or -1 when no route exists.
func (r RouteEntry) Coupler() int {
	if r.c < 0 {
		return -1
	}
	return int(r.c &^ deliverFlag)
}

// NextHop returns the preferred next-hop node.
func (r RouteEntry) NextHop() int { return int(r.h) }

// Delivers reports whether the destination hears the chosen coupler.
func (r RouteEntry) Delivers() bool { return r.c >= 0 && r.c&deliverFlag != 0 }

// RouteTabled is implemented by topologies that maintain their routing
// decisions as one flat row-major table (entry for (u, dst) at index
// u*Nodes()+dst). The snapshot borrows the returned slice as its hot-path
// route table instead of copying it, so a dynamic topology that repairs
// rows in place (faults.FaultedTopology) updates the engine for free. The
// slice identity must be stable for the topology's lifetime.
type RouteTabled interface {
	RouteTable() []RouteEntry
}

// DistanceRowed is implemented by topologies that maintain per-source
// distance rows (dist[u][dst], digraph.Unreachable = -1 when dst is cut
// off). The snapshot borrows the outer slice; dynamic topologies may
// rewrite row contents in place between slots.
type DistanceRowed interface {
	DistanceRows() [][]int
}

// CompiledTopology is the flat, step-ready form of a Topology: CSR
// out-coupler and head lists, the row-major route table and the distance
// rows. It is immutable between topology events, so any number of replicas
// may share one instance; a replica whose topology is dynamic (fault
// events) must own a private instance, because events repair the tables in
// place.
type CompiledTopology struct {
	topo Topology
	n, m int

	outStart  []int32 // node u transmits on outList[outStart[u]:outStart[u]+outCount[u]]
	outCount  []int32
	outList   []int32
	headStart []int32 // coupler c is heard by headList[headStart[c]:headStart[c]+headCount[c]]
	headCount []int32
	headList  []int32
	route     []RouteEntry // row-major (u, dst) routing decisions
	dist      [][]int      // dist[u][dst] for deflection choices
	ownsRoute bool
	ownsDist  bool

	// dirty records that a topology event mutated the snapshot since the
	// last sync, so a Reset recompiles only when something actually changed.
	dirty bool
}

// Compile builds the flat snapshot of a topology. A topology that also
// implements DynamicTopology is reset to its pre-event state first, so the
// snapshot covers the full (pristine) structure and the CSR slot
// capacities fit the largest live structure.
func Compile(topo Topology) *CompiledTopology {
	if dyn, ok := topo.(DynamicTopology); ok {
		dyn.Reset()
	}
	n, m := topo.Nodes(), topo.Couplers()
	ct := &CompiledTopology{topo: topo, n: n, m: m}
	ct.outStart = make([]int32, n+1)
	for u := 0; u < n; u++ {
		ct.outStart[u+1] = ct.outStart[u] + int32(len(topo.OutCouplers(u)))
	}
	ct.outCount = make([]int32, n)
	ct.outList = make([]int32, ct.outStart[n])
	ct.headStart = make([]int32, m+1)
	for c := 0; c < m; c++ {
		ct.headStart[c+1] = ct.headStart[c] + int32(len(topo.Heads(c)))
	}
	ct.headCount = make([]int32, m)
	ct.headList = make([]int32, ct.headStart[m])
	ct.refreshStructure()

	if rt, ok := topo.(RouteTabled); ok {
		ct.route = rt.RouteTable()
	} else {
		ct.ownsRoute = true
		ct.route = make([]RouteEntry, n*n)
		ct.rebuildOwnedRoute()
	}
	if dr, ok := topo.(DistanceRowed); ok {
		ct.dist = dr.DistanceRows()
	} else {
		ct.ownsDist = true
		flat := make([]int, n*n)
		ct.dist = make([][]int, n)
		for u := 0; u < n; u++ {
			ct.dist[u] = flat[u*n : (u+1)*n : (u+1)*n]
		}
		ct.rebuildOwnedDist()
	}
	return ct
}

// Nodes returns the compiled node count.
func (ct *CompiledTopology) Nodes() int { return ct.n }

// Couplers returns the compiled coupler count.
func (ct *CompiledTopology) Couplers() int { return ct.m }

// Topology returns the topology the snapshot was compiled from.
func (ct *CompiledTopology) Topology() Topology { return ct.topo }

// refreshStructure copies the topology's current out-coupler and head sets
// into the CSR arrays. Called at compile time and again after every
// topology change; between changes Step reads only the arrays. Live sets
// normally stay within the capacity reserved at compile time (fault masks
// only shrink them); if an exotic dynamic topology outgrows a slot, the
// CSR is re-laid-out.
func (ct *CompiledTopology) refreshStructure() {
	for u := 0; u < ct.n; u++ {
		oc := ct.topo.OutCouplers(u)
		if int32(len(oc)) > ct.outStart[u+1]-ct.outStart[u] {
			ct.relayoutOut()
			return
		}
		base := ct.outStart[u]
		for i, c := range oc {
			ct.outList[base+int32(i)] = int32(c)
		}
		ct.outCount[u] = int32(len(oc))
	}
	for c := 0; c < ct.m; c++ {
		hs := ct.topo.Heads(c)
		if int32(len(hs)) > ct.headStart[c+1]-ct.headStart[c] {
			ct.relayoutHeads()
			return
		}
		base := ct.headStart[c]
		for i, h := range hs {
			ct.headList[base+int32(i)] = int32(h)
		}
		ct.headCount[c] = int32(len(hs))
	}
}

// relayoutOut rebuilds the out-coupler CSR with fresh slot capacities, then
// retries the full refresh.
func (ct *CompiledTopology) relayoutOut() {
	for u := 0; u < ct.n; u++ {
		ct.outStart[u+1] = ct.outStart[u] + int32(len(ct.topo.OutCouplers(u)))
	}
	ct.outList = make([]int32, ct.outStart[ct.n])
	ct.refreshStructure()
}

// relayoutHeads is the head-list counterpart of relayoutOut.
func (ct *CompiledTopology) relayoutHeads() {
	for c := 0; c < ct.m; c++ {
		ct.headStart[c+1] = ct.headStart[c] + int32(len(ct.topo.Heads(c)))
	}
	ct.headList = make([]int32, ct.headStart[ct.m])
	ct.refreshStructure()
}

// rebuildOwnedRoute recompiles the snapshot-owned route table by querying
// the Topology interface once per (u, dst) pair. The delivers-here bit is
// the exact head-set membership the legacy engine tested per transmission:
// dst ∈ Heads(chosen coupler).
func (ct *CompiledTopology) rebuildOwnedRoute() {
	// hears[c] marks, for the current dst, the couplers dst listens on.
	hears := make([]bool, ct.m)
	heardBy := make([][]int32, ct.n)
	for c := 0; c < ct.m; c++ {
		base, cnt := ct.headStart[c], ct.headCount[c]
		for hi := base; hi < base+cnt; hi++ {
			h := int(ct.headList[hi])
			heardBy[h] = append(heardBy[h], int32(c))
		}
	}
	for dst := 0; dst < ct.n; dst++ {
		for _, c := range heardBy[dst] {
			hears[c] = true
		}
		for u := 0; u < ct.n; u++ {
			c, hop := ct.topo.NextCoupler(u, dst)
			ct.route[u*ct.n+dst] = MakeRouteEntry(c, hop, c >= 0 && c < ct.m && hears[c])
		}
		for _, c := range heardBy[dst] {
			hears[c] = false
		}
	}
}

// rebuildOwnedDist refills the snapshot-owned distance rows in place.
func (ct *CompiledTopology) rebuildOwnedDist() {
	for u := 0; u < ct.n; u++ {
		row := ct.dist[u]
		for v := 0; v < ct.n; v++ {
			row[v] = ct.topo.Distance(u, v)
		}
	}
}

// recompileDynamic re-syncs the snapshot after a TopologyChange. Borrowed
// tables (the RouteTabled / DistanceRowed fast path) were already repaired
// in place by the topology — faults.FaultedTopology rebuilds exactly the
// rows its EntryChanged/RowsRebuilt machinery flags — so only the CSR
// structure needs copying; snapshot-owned tables are recompiled wholesale.
func (ct *CompiledTopology) recompileDynamic() {
	ct.refreshStructure()
	if ct.ownsRoute {
		ct.rebuildOwnedRoute()
	}
	if ct.ownsDist {
		ct.rebuildOwnedDist()
	}
}
