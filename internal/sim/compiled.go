package sim

// Compiled-topology snapshot: the engine does not call any Topology method
// inside Step. At construction it compiles the topology into flat arrays —
// CSR out-coupler and head lists, one row-major route table with a packed
// delivers-here bit, and distance rows — and steps over those. Topologies
// that already maintain the tables in this shape (the stack, point-to-point
// and fault-wrapped topologies) hand the engine their live backing arrays,
// so compilation is O(n + m + arcs) and dynamic row repairs done by
// faults.FaultedTopology are visible to the engine without any copying or
// invalidation protocol. Arbitrary Topology implementations are compiled by
// querying the interface once per (u, dst) pair.

// deliverFlag marks a RouteEntry whose destination hears the chosen
// coupler, so delivery needs no head-set scan on the hot path.
const deliverFlag = 1 << 30

// RouteEntry is a packed, precompiled routing decision: the coupler to
// request, the preferred next-hop node, and whether the destination itself
// hears that coupler (the delivers-here bit). The zero value is an
// unroutable entry pointing at node 0; build entries with MakeRouteEntry.
type RouteEntry struct {
	c int32 // coupler id, deliverFlag-tagged; -1 when no route exists
	h int32 // preferred next hop (the destination when delivers is set)
}

// MakeRouteEntry packs one routing decision. coupler < 0 means no route
// (or "already there" when nextHop equals the source).
func MakeRouteEntry(coupler, nextHop int, delivers bool) RouteEntry {
	if coupler < 0 {
		return RouteEntry{c: -1, h: int32(nextHop)}
	}
	c := int32(coupler)
	if delivers {
		c |= deliverFlag
	}
	return RouteEntry{c: c, h: int32(nextHop)}
}

// Coupler returns the coupler to request, or -1 when no route exists.
func (r RouteEntry) Coupler() int {
	if r.c < 0 {
		return -1
	}
	return int(r.c &^ deliverFlag)
}

// NextHop returns the preferred next-hop node.
func (r RouteEntry) NextHop() int { return int(r.h) }

// Delivers reports whether the destination hears the chosen coupler.
func (r RouteEntry) Delivers() bool { return r.c >= 0 && r.c&deliverFlag != 0 }

// RouteTabled is implemented by topologies that maintain their routing
// decisions as one flat row-major table (entry for (u, dst) at index
// u*Nodes()+dst). The engine borrows the returned slice as its hot-path
// route table instead of copying it, so a dynamic topology that repairs
// rows in place (faults.FaultedTopology) updates the engine for free. The
// slice identity must be stable for the topology's lifetime.
type RouteTabled interface {
	RouteTable() []RouteEntry
}

// DistanceRowed is implemented by topologies that maintain per-source
// distance rows (dist[u][dst], digraph.Unreachable = -1 when dst is cut
// off). The engine borrows the outer slice; dynamic topologies may rewrite
// row contents in place between slots.
type DistanceRowed interface {
	DistanceRows() [][]int
}

// compile builds the engine's flat topology snapshot. Dynamic topologies
// must be in their pristine (Reset) state so the CSR slot capacities cover
// the largest live structure.
func (e *Engine) compile(topo Topology) {
	n, m := topo.Nodes(), topo.Couplers()
	e.n, e.m = n, m
	e.outStart = make([]int32, n+1)
	for u := 0; u < n; u++ {
		e.outStart[u+1] = e.outStart[u] + int32(len(topo.OutCouplers(u)))
	}
	e.outCount = make([]int32, n)
	e.outList = make([]int32, e.outStart[n])
	e.headStart = make([]int32, m+1)
	for c := 0; c < m; c++ {
		e.headStart[c+1] = e.headStart[c] + int32(len(topo.Heads(c)))
	}
	e.headCount = make([]int32, m)
	e.headList = make([]int32, e.headStart[m])
	e.refreshStructure()

	if rt, ok := topo.(RouteTabled); ok {
		e.route = rt.RouteTable()
	} else {
		e.ownsRoute = true
		e.route = make([]RouteEntry, n*n)
		e.rebuildOwnedRoute()
	}
	if dr, ok := topo.(DistanceRowed); ok {
		e.dist = dr.DistanceRows()
	} else {
		e.ownsDist = true
		flat := make([]int, n*n)
		e.dist = make([][]int, n)
		for u := 0; u < n; u++ {
			e.dist[u] = flat[u*n : (u+1)*n : (u+1)*n]
		}
		e.rebuildOwnedDist()
	}
}

// refreshStructure copies the topology's current out-coupler and head sets
// into the CSR arrays. Called at compile time and again after every
// topology change; between changes Step reads only the arrays. Live sets
// normally stay within the capacity reserved at compile time (fault masks
// only shrink them); if an exotic dynamic topology outgrows a slot, the
// CSR is re-laid-out.
func (e *Engine) refreshStructure() {
	for u := 0; u < e.n; u++ {
		oc := e.topo.OutCouplers(u)
		if int32(len(oc)) > e.outStart[u+1]-e.outStart[u] {
			e.relayoutOut()
			return
		}
		base := e.outStart[u]
		for i, c := range oc {
			e.outList[base+int32(i)] = int32(c)
		}
		e.outCount[u] = int32(len(oc))
	}
	for c := 0; c < e.m; c++ {
		hs := e.topo.Heads(c)
		if int32(len(hs)) > e.headStart[c+1]-e.headStart[c] {
			e.relayoutHeads()
			return
		}
		base := e.headStart[c]
		for i, h := range hs {
			e.headList[base+int32(i)] = int32(h)
		}
		e.headCount[c] = int32(len(hs))
	}
}

// relayoutOut rebuilds the out-coupler CSR with fresh slot capacities, then
// retries the full refresh.
func (e *Engine) relayoutOut() {
	for u := 0; u < e.n; u++ {
		e.outStart[u+1] = e.outStart[u] + int32(len(e.topo.OutCouplers(u)))
	}
	e.outList = make([]int32, e.outStart[e.n])
	e.refreshStructure()
}

// relayoutHeads is the head-list counterpart of relayoutOut.
func (e *Engine) relayoutHeads() {
	for c := 0; c < e.m; c++ {
		e.headStart[c+1] = e.headStart[c] + int32(len(e.topo.Heads(c)))
	}
	e.headList = make([]int32, e.headStart[e.m])
	e.refreshStructure()
}

// rebuildOwnedRoute recompiles the engine-owned route table by querying the
// Topology interface once per (u, dst) pair. The delivers-here bit is the
// exact head-set membership the legacy engine tested per transmission:
// dst ∈ Heads(chosen coupler).
func (e *Engine) rebuildOwnedRoute() {
	// hears[c] marks, for the current dst, the couplers dst listens on.
	hears := make([]bool, e.m)
	heardBy := make([][]int32, e.n)
	for c := 0; c < e.m; c++ {
		base, cnt := e.headStart[c], e.headCount[c]
		for hi := base; hi < base+cnt; hi++ {
			h := int(e.headList[hi])
			heardBy[h] = append(heardBy[h], int32(c))
		}
	}
	for dst := 0; dst < e.n; dst++ {
		for _, c := range heardBy[dst] {
			hears[c] = true
		}
		for u := 0; u < e.n; u++ {
			c, hop := e.topo.NextCoupler(u, dst)
			e.route[u*e.n+dst] = MakeRouteEntry(c, hop, c >= 0 && c < e.m && hears[c])
		}
		for _, c := range heardBy[dst] {
			hears[c] = false
		}
	}
}

// rebuildOwnedDist refills the engine-owned distance rows in place.
func (e *Engine) rebuildOwnedDist() {
	for u := 0; u < e.n; u++ {
		row := e.dist[u]
		for v := 0; v < e.n; v++ {
			row[v] = e.topo.Distance(u, v)
		}
	}
}

// recompileDynamic re-syncs the snapshot after a TopologyChange. Borrowed
// tables (the RouteTabled / DistanceRowed fast path) were already repaired
// in place by the topology — faults.FaultedTopology rebuilds exactly the
// rows its EntryChanged/RowsRebuilt machinery flags — so only the CSR
// structure needs copying; engine-owned tables are recompiled wholesale.
func (e *Engine) recompileDynamic() {
	e.refreshStructure()
	if e.ownsRoute {
		e.rebuildOwnedRoute()
	}
	if e.ownsDist {
		e.rebuildOwnedDist()
	}
}
