package sim_test

// Differential fuzzing of the batched ReplicaSet against R independent
// single-replica Engine runs. The batch mixes seeds, offered loads,
// traffic models, disciplines, queue caps, wavelength counts and fault
// plans across its replicas — replicas come in pairs that share one
// injection stream (StreamGroup), the way sweep batches mode-siblings —
// and every replica must produce Metrics and an OnDeliver event stream
// identical to its solo run. Any divergence of the batched core
// (retirement timing, stream fan-out, per-replica fault views, slab
// aliasing between replicas) surfaces as a minimized counterexample.
//
// The seed corpus (testdata/fuzz/FuzzBatchedVsSingleEngine plus the f.Add
// tuples below) covers every topology family and traffic model, batches
// with and without faults, and divergent retirement; CI additionally runs
// a short `-fuzz` smoke.

import (
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/sim"
)

func FuzzBatchedVsSingleEngine(f *testing.F) {
	// Tuple order: (topoSel, pa, pb, rcount, tselA, tselB, tselC,
	// rateA, rateB, rateC, slotsA, slotsB, slotsC, faultKind, faultMask,
	// deflMask, maxqMask, wavesMask, faultSlotRaw, seed)
	f.Add(uint8(1), uint8(2), uint8(1), uint8(2), uint8(0), uint8(0), uint8(0), uint8(40), uint8(15), uint8(0), uint16(80), uint16(0), uint16(0), uint8(0), uint8(0), uint8(2), uint8(0), uint8(0), uint16(0), int64(1))
	f.Add(uint8(0), uint8(0), uint8(1), uint8(4), uint8(0), uint8(1), uint8(0), uint8(55), uint8(25), uint8(0), uint16(120), uint16(40), uint16(0), uint8(0), uint8(0), uint8(10), uint8(3), uint8(0), uint16(0), int64(2))
	f.Add(uint8(2), uint8(3), uint8(0), uint8(3), uint8(2), uint8(3), uint8(0), uint8(30), uint8(70), uint8(0), uint16(60), uint16(150), uint16(0), uint8(1), uint8(6), uint8(5), uint8(1), uint8(2), uint16(25), int64(3))
	f.Add(uint8(3), uint8(1), uint8(4), uint8(5), uint8(1), uint8(0), uint8(3), uint8(85), uint8(10), uint8(45), uint16(90), uint16(30), uint16(200), uint8(2), uint8(9), uint8(21), uint8(2), uint8(1), uint16(10), int64(4))
	f.Add(uint8(1), uint8(3), uint8(1), uint8(4), uint8(0), uint8(0), uint8(0), uint8(90), uint8(90), uint8(0), uint16(150), uint16(150), uint16(0), uint8(0), uint8(3), uint8(6), uint8(0), uint8(0), uint16(40), int64(5))

	f.Fuzz(func(t *testing.T, topoSel, pa, pb, rcount, tselA, tselB, tselC, rateA, rateB, rateC uint8,
		slotsA, slotsB, slotsC uint16, faultKind, faultMask, deflMask, maxqMask, wavesMask uint8,
		faultSlotRaw uint16, seed int64) {
		base, family := fuzzTopology(topoSel, pa, pb)
		if err := sim.CheckTopology(base); err != nil {
			t.Skipf("degenerate topology: %v", err)
		}
		n := base.Nodes()
		r := 2 + int(rcount)%5 // 2..6 replicas, up to 3 stream pairs

		// Pair-level parameters: replicas 2p and 2p+1 share the stream
		// inputs (traffic model, rate, seed, slot count) and diverge in
		// everything else, mirroring how sweep batches mode-siblings.
		tsel := [3]uint8{tselA, tselB, tselC}
		ratePct := [3]uint8{rateA, rateB, rateC}
		slotsRaw := [3]uint16{slotsA, slotsB, slotsC}

		type delivery struct{ id, src, dst, hops, slot int }
		specs := make([]sim.ReplicaSpec, r)
		batched := make([][]delivery, r)
		solo := make([][]delivery, r)
		soloMetrics := make([]sim.Metrics, r)

		kinds := []faults.Kind{faults.KindNode, faults.KindCoupler, faults.KindTransmitter}
		for i := 0; i < r; i++ {
			p := i / 2
			pairSeed := seed + int64(p)
			rate := 0.05 + float64(ratePct[p]%90)/100
			slots := 30 + int(slotsRaw[p])%150
			drain := 200 + 100*(i%2) // divergent drain budgets within a pair
			cfg := sim.Config{
				Seed:        pairSeed,
				MaxQueue:    int(maxqMask>>(i&3)) % 5,
				Deflection:  deflMask>>(i%8)&1 != 0,
				Wavelengths: 1 + int(wavesMask>>(i&3))%3,
			}

			// Per-replica fault plans: batched and solo runs each get their
			// own stateful wrapper of the same plan.
			var topoBatch, topoSolo sim.Topology
			if count := int(faultMask>>(i&3)) % 3; count > 0 {
				plan := faults.Random(kinds[int(faultKind)%3], count, int(faultSlotRaw)%slots, base, pairSeed+int64(i))
				topoBatch = faults.Wrap(base, plan)
				topoSolo = faults.Wrap(base, plan)
			} else {
				topoSolo = base
			}

			i := i // capture for the delivery callbacks
			specs[i] = sim.ReplicaSpec{
				Topo:        topoBatch,
				Config:      cfg,
				Traffic:     fuzzTraffic(tsel[p], rate, n, pairSeed),
				Slots:       slots,
				Drain:       drain,
				StreamGroup: p,
				OnDeliver: func(m sim.Message, slot int) {
					batched[i] = append(batched[i], delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
				},
			}

			eng := sim.NewEngine(topoSolo, cfg)
			eng.OnDeliver = func(m sim.Message, slot int) {
				solo[i] = append(solo[i], delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
			}
			soloMetrics[i] = eng.Run(fuzzTraffic(tsel[p], rate, n, pairSeed), slots, drain, cfg)
		}

		rs := sim.NewReplicaSet(base)
		rs.Configure(specs)
		rs.RunAll()

		for i := 0; i < r; i++ {
			if mB := rs.Metrics(i); mB != soloMetrics[i] {
				t.Fatalf("%s n=%d replica %d/%d: metrics diverged\nbatched %v\nsolo    %v",
					family, n, i, r, mB, soloMetrics[i])
			}
			if len(batched[i]) != len(solo[i]) {
				t.Fatalf("%s replica %d: %d deliveries batched vs %d solo", family, i, len(batched[i]), len(solo[i]))
			}
			for j := range batched[i] {
				if batched[i][j] != solo[i][j] {
					t.Fatalf("%s replica %d: delivery %d = %+v batched, %+v solo",
						family, i, j, batched[i][j], solo[i][j])
				}
			}
		}
	})
}
