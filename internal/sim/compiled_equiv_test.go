package sim_test

// Bit-for-bit equivalence of the compiled-topology engine against the
// frozen pre-compilation reference (internal/legacysim): identical metrics
// and identical per-delivery event streams for every mode — store-and-
// forward, hot-potato deflection, multi-wavelength couplers, bounded
// queues, point-to-point baselines and live fault plans — plus allocation
// pins for the compiled hot path and for engine reuse via Reset.

import (
	"math/rand"
	"testing"

	"otisnet/internal/faults"
	"otisnet/internal/kautz"
	"otisnet/internal/legacysim"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func equivTopologies() map[string]sim.Topology {
	return map[string]sim.Topology{
		"SK(3,2,2)":     sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph()),
		"SK(6,3,2)":     sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph()),
		"POPS(4,2)":     sim.NewStackTopology(pops.New(4, 2).StackGraph()),
		"deBruijn(2,3)": sim.NewPointToPointTopology(kautz.NewDeBruijn(2, 3).Digraph()),
	}
}

func TestCompiledMatchesLegacyAcrossModes(t *testing.T) {
	configs := []sim.Config{
		{Seed: 1},
		{Seed: 2, Deflection: true},
		{Seed: 3, Wavelengths: 3},
		{Seed: 4, Wavelengths: 4, Deflection: true},
		{Seed: 5, MaxQueue: 4},
		{Seed: 6, MaxQueue: 2, Deflection: true, Wavelengths: 2},
	}
	for name, topo := range equivTopologies() {
		for _, rate := range []float64{0.2, 0.8} {
			for _, cfg := range configs {
				got := sim.Run(topo, sim.UniformTraffic{Rate: rate}, 300, 300, cfg)
				want := legacysim.Run(topo, sim.UniformTraffic{Rate: rate}, 300, 300, cfg)
				if got != want {
					t.Errorf("%s rate=%g cfg=%+v:\ncompiled %v\nlegacy   %v",
						name, rate, cfg, got, want)
				}
			}
		}
	}
}

// delivery is one OnDeliver event, pinned field by field.
type delivery struct {
	id, src, dst, hops, slot int
}

// TestCompiledMatchesLegacyDeliveryStream drives both engines through the
// same injection schedule and requires the exact same sequence of
// OnDeliver callbacks — the contract the collective-replay workload
// depends on.
func TestCompiledMatchesLegacyDeliveryStream(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph())
	for _, cfg := range []sim.Config{{Seed: 9}, {Seed: 10, Deflection: true}, {Seed: 11, Wavelengths: 2}} {
		e := sim.NewEngine(topo, cfg)
		l := legacysim.NewEngine(topo, cfg)
		var got, want []delivery
		e.OnDeliver = func(m sim.Message, slot int) {
			got = append(got, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
		}
		l.OnDeliver = func(m sim.Message, slot int) {
			want = append(want, delivery{m.ID, m.Src, m.Dst, m.Hops, slot})
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		n := topo.Nodes()
		for s := 0; s < 400; s++ {
			for _, inj := range (sim.UniformTraffic{Rate: 0.5}).Generate(nil, s, n, rng) {
				e.Inject(inj.Src, inj.Dst)
				l.Inject(inj.Src, inj.Dst)
			}
			e.Step()
			l.Step()
		}
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: %d deliveries vs legacy %d", cfg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v: delivery %d = %+v, legacy %+v", cfg, i, got[i], want[i])
			}
		}
		if len(got) == 0 {
			t.Fatalf("cfg %+v: no deliveries; test is vacuous", cfg)
		}
	}
}

// TestCompiledMatchesLegacyUnderFaults wraps two independent fault views
// of the same plan (FaultedTopology is stateful and single-engine) and
// requires identical metrics, including the fault counters, with and
// without deflection and WDM.
func TestCompiledMatchesLegacyUnderFaults(t *testing.T) {
	base := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	plans := []faults.Plan{
		faults.FixedNodes(50, 2, 7, 13, 14),
		faults.Random(faults.KindCoupler, 4, 60, base, 99),
		faults.Stochastic(faults.KindNode, 3, base, 80, 40, 400, 7),
	}
	configs := []sim.Config{
		{Seed: 21},
		{Seed: 22, Deflection: true},
		{Seed: 23, Wavelengths: 2},
		{Seed: 24, MaxQueue: 6},
	}
	for pi, plan := range plans {
		for _, cfg := range configs {
			got := sim.Run(faults.Wrap(base, plan), sim.UniformTraffic{Rate: 0.4}, 400, 400, cfg)
			want := legacysim.Run(faults.Wrap(base, plan), sim.UniformTraffic{Rate: 0.4}, 400, 400, cfg)
			if got != want {
				t.Errorf("plan %d cfg %+v:\ncompiled %v\nlegacy   %v", pi, cfg, got, want)
			}
			if got.LostToFaults+got.Unroutable+got.Reroutes == 0 {
				t.Errorf("plan %d cfg %+v: faults never disturbed the run; test is vacuous", pi, cfg)
			}
		}
	}
}

// TestEngineResetReproducesFreshEngine pins the Reset contract: a scenario
// run on a reused engine (after an unrelated scenario with a different
// config) is bit-for-bit the run a fresh engine produces.
func TestEngineResetReproducesFreshEngine(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	cfgA := sim.Config{Seed: 31, Deflection: true, Wavelengths: 2}
	cfgB := sim.Config{Seed: 32, MaxQueue: 5}
	e := sim.NewEngine(topo, cfgA)
	e.Run(sim.UniformTraffic{Rate: 0.7}, 200, 200, cfgA)
	reused := e.Run(sim.UniformTraffic{Rate: 0.3}, 200, 200, cfgB)
	fresh := sim.Run(topo, sim.UniformTraffic{Rate: 0.3}, 200, 200, cfgB)
	if reused != fresh {
		t.Fatalf("reused engine diverged:\nreused %v\nfresh  %v", reused, fresh)
	}
}

// TestEngineResetReproducesFreshEngineUnderFaults is the dynamic-topology
// counterpart: the same FaultedTopology driven through SetPlan and a
// reused engine must match fresh construction per scenario.
func TestEngineResetReproducesFreshEngineUnderFaults(t *testing.T) {
	base := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	planA := faults.FixedNodes(40, 1, 2, 3)
	planB := faults.Random(faults.KindNode, 2, 30, base, 5)
	cfg := sim.Config{Seed: 41}

	ft := faults.Wrap(base, planA)
	e := sim.NewEngine(ft, cfg)
	e.Run(sim.UniformTraffic{Rate: 0.5}, 300, 300, cfg)
	ft.SetPlan(planB)
	reused := e.Run(sim.UniformTraffic{Rate: 0.5}, 300, 300, cfg)
	fresh := sim.Run(faults.Wrap(base, planB), sim.UniformTraffic{Rate: 0.5}, 300, 300, cfg)
	if reused != fresh {
		t.Fatalf("SetPlan+Reset diverged from fresh wrap:\nreused %v\nfresh  %v", reused, fresh)
	}
}

// TestCompiledStepZeroAllocs pins the compiled hot path at zero
// allocations per Step once scratch high-water marks are reached.
func TestCompiledStepZeroAllocs(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	e := sim.NewEngine(topo, sim.Config{Seed: 1})
	n := topo.Nodes()
	slot := 0
	step := func() {
		off := 1 + (slot*7)%(n-1)
		for u := slot % 8; u < n; u += 8 {
			e.Inject(u, (u+off)%n)
		}
		e.Step()
		slot++
	}
	for i := 0; i < 2000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Fatalf("steady-state Step allocates %v times per slot, want 0", avg)
	}
}

// TestEngineRunReuseZeroAllocs pins scenario reuse: after a warmup
// scenario, whole Engine.Run scenarios on a reused engine allocate
// nothing — the Reset contract internal/sweep relies on.
func TestEngineRunReuseZeroAllocs(t *testing.T) {
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	cfg := sim.Config{Seed: 1}
	e := sim.NewEngine(topo, cfg)
	// Box the traffic value once: converting a struct to the Traffic
	// interface per call would itself allocate.
	var traffic sim.Traffic = sim.UniformTraffic{Rate: 0.3}
	e.Run(traffic, 200, 200, cfg) // warmup to high-water marks
	if avg := testing.AllocsPerRun(10, func() {
		e.Run(traffic, 200, 200, cfg)
	}); avg != 0 {
		t.Fatalf("reused Engine.Run allocates %v times per scenario, want 0", avg)
	}
}
