// Package sweepcache is the content-addressed result cache of the sweep
// service layer. Every completed sweep point is stored under its canonical
// scenario hash (sweep.Scenario.CacheKey), so repeated or overlapping
// grids reuse finished points instead of recomputing them, and an
// interrupted grid run resumes from the journal on the next start.
//
// Storage is a directory of append-only NDJSON journal files, one per
// writer: the single-process CLI and the server append to journal.ndjson,
// shard processes to journal-<shard>.ndjson, and Open loads the union of
// every journal in the directory — which is also the merge rule for
// sharded runs that share one cache directory. A record exists once its
// newline is on disk (internal/export's NDJSON framing), so a process
// killed mid-append loses at most the line it was writing; Open silently
// drops the torn fragment and every completed point before it survives.
//
// Keys are content hashes: two entries with the same key describe the same
// deterministic computation, so duplicate keys across journals are
// harmless and the first loaded copy wins. There is no eviction and no
// invalidation beyond the key itself — a scenario hash covers the topology
// structure, every engine parameter and the key-format version, so any
// semantic change produces new keys and stale entries are simply never
// looked up again (delete the directory to reclaim the space).
package sweepcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"otisnet/internal/export"
	"otisnet/internal/sim"
)

// entry is one journal line: a scenario hash and its metrics. sim.Metrics
// is a flat struct of ints, so JSON round-trips it exactly.
type entry struct {
	Key     string      `json:"key"`
	Metrics sim.Metrics `json:"metrics"`
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Entries is the number of distinct keys held.
	Entries int `json:"entries"`
	// Hits and Misses count Lookup outcomes since Open.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Stores counts Put calls that persisted a new entry since Open.
	Stores int64 `json:"stores"`
	// Loaded is how many entries came from journals at Open time;
	// Duplicates how many journal lines repeated an already-loaded key.
	Loaded     int `json:"loaded"`
	Duplicates int `json:"duplicates"`
	// TornLines counts unterminated journal tails dropped at Open time.
	TornLines int `json:"torn_lines"`
}

// Cache is a concurrency-safe content-addressed result store. The zero
// value is not usable; construct with Open, OpenShard or NewMemory.
type Cache struct {
	mu      sync.Mutex
	entries map[string]sim.Metrics
	journal *os.File // nil for memory-only caches
	stats   Stats
	err     error // first journal append failure (persistence degraded)
}

// NewMemory returns a cache with no backing directory — hits and stores
// live only as long as the process. The sweep server uses it when started
// without a cache directory; tests and benchmarks use it to isolate from
// disk.
func NewMemory() *Cache {
	return &Cache{entries: make(map[string]sim.Metrics)}
}

// Open opens (creating if needed) the cache directory and appends new
// entries to the default journal. Use OpenShard when several processes
// write the same directory concurrently.
func Open(dir string) (*Cache, error) { return OpenShard(dir, "") }

// OpenShard opens the cache directory, loading every journal in it, and
// appends this writer's entries to journal-<shard>.ndjson (journal.ndjson
// when shard is empty). Concurrent writers must use distinct shard names:
// appends within one process are serialized, but two processes appending
// to one file would interleave torn lines.
func OpenShard(dir, shard string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepcache: %w", err)
	}
	name := "journal.ndjson"
	if shard != "" {
		if strings.ContainsAny(shard, "/\\") {
			return nil, fmt.Errorf("sweepcache: shard name %q must not contain path separators", shard)
		}
		name = "journal-" + shard + ".ndjson"
	}
	c := NewMemory()
	if err := c.load(dir); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepcache: %w", err)
	}
	c.journal = f
	return c, nil
}

// load reads every journal in dir (sorted for determinism; first copy of a
// key wins) into the entry map.
func (c *Cache) load(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "*.ndjson"))
	if err != nil {
		return fmt.Errorf("sweepcache: %w", err)
	}
	sort.Strings(files)
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("sweepcache: %w", err)
		}
		truncated, err := export.ForEachNDJSONLine(f, func(line []byte) error {
			var e entry
			if err := json.Unmarshal(line, &e); err != nil {
				return fmt.Errorf("sweepcache: corrupt line in %s: %w", filepath.Base(path), err)
			}
			if _, dup := c.entries[e.Key]; dup {
				c.stats.Duplicates++
				return nil
			}
			c.entries[e.Key] = e.Metrics
			c.stats.Loaded++
			return nil
		})
		f.Close()
		if err != nil {
			return err
		}
		if truncated {
			c.stats.TornLines++
		}
	}
	c.stats.Entries = len(c.entries)
	cacheObs.resumed.Add(int64(c.stats.Loaded))
	cacheObs.torn.Add(int64(c.stats.TornLines))
	return nil
}

// Lookup implements sweep.PointCache.
func (c *Cache) Lookup(key string) (sim.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[key]
	if ok {
		c.stats.Hits++
		cacheObs.hits.Add(1)
	} else {
		c.stats.Misses++
		cacheObs.misses.Add(1)
	}
	return m, ok
}

// Store implements sweep.PointCache: it records the metrics under key and
// appends the entry to the journal. A key already present is skipped —
// content addressing guarantees the stored copy is the same result.
// Journal write errors are deliberately swallowed after marking the cache
// degraded (see Err): a full disk should cost cache persistence, not the
// sweep that is busy computing real results.
func (c *Cache) Store(key string, m sim.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	c.entries[key] = m
	c.stats.Entries = len(c.entries)
	c.stats.Stores++
	cacheObs.stores.Add(1)
	if c.journal == nil {
		return
	}
	if err := export.WriteNDJSONLine(c.journal, entry{Key: key, Metrics: m}); err != nil && c.err == nil {
		c.err = fmt.Errorf("sweepcache: journal append: %w", err)
	}
}

// Err reports the first journal append failure, or nil. In-memory lookups
// keep working after a failure; only persistence is degraded.
func (c *Cache) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close flushes nothing (appends go straight to the file) but releases the
// journal handle. The cache must not be used after Close.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}
