package sweepcache

// Cache observability: process-wide counters in the shared obs.Default
// registry, incremented alongside the per-cache Stats fields. Stats
// answers "how did this cache do"; the registry answers "what is the
// process doing" across every cache opened since start, which is what
// /metrics scrapes and the observe endpoint report.

import "otisnet/internal/obs"

var cacheObs = struct {
	hits    *obs.Counter
	misses  *obs.Counter
	stores  *obs.Counter
	resumed *obs.Counter
	torn    *obs.Counter
}{
	hits: obs.Default().Counter("netsim_sweepcache_hits_total",
		"Cache lookups that found a stored result."),
	misses: obs.Default().Counter("netsim_sweepcache_misses_total",
		"Cache lookups that found nothing."),
	stores: obs.Default().Counter("netsim_sweepcache_stores_total",
		"New entries persisted (duplicate keys are skipped, not counted)."),
	resumed: obs.Default().Counter("netsim_sweepcache_journal_entries_resumed_total",
		"Entries loaded from on-disk journals at cache open (resume volume)."),
	torn: obs.Default().Counter("netsim_sweepcache_journal_torn_tails_total",
		"Unterminated journal tails dropped at cache open."),
}
