package sweepcache_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
)

func metrics(delivered int) sim.Metrics {
	return sim.Metrics{Slots: 100, Injected: delivered + 3, Delivered: delivered, Dropped: 3, TotalLatency: 7 * delivered, TotalHops: 2 * delivered, PeakQueue: 5}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k1", metrics(10))
	c.Store("k2", metrics(20))
	c.Store("k1", metrics(10)) // duplicate store: no second journal line
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.Entries != 2 || st.Loaded != 2 || st.Duplicates != 0 {
		t.Fatalf("reloaded stats %+v, want 2 entries, 2 loaded, 0 duplicates", st)
	}
	if m, ok := re.Lookup("k1"); !ok || m != metrics(10) {
		t.Fatalf("k1 reloaded as %v, %v", m, ok)
	}
	if _, ok := re.Lookup("missing"); ok {
		t.Fatalf("phantom hit")
	}
	st = re.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hit/miss counters %+v", st)
	}
}

// TestTornTailDropped kills a writer mid-append (simulated by truncating
// the journal inside the last line) and verifies the reopen drops exactly
// the torn record: resumability loses at most the line being written.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	c, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Store("k1", metrics(10))
	c.Store("k2", metrics(20))
	c.Close()

	path := filepath.Join(dir, "journal.ndjson")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.Entries != 1 || st.TornLines != 1 {
		t.Fatalf("stats after torn tail: %+v, want 1 entry and 1 torn line", st)
	}
	if _, ok := re.Lookup("k1"); !ok {
		t.Fatalf("intact entry lost with the torn tail")
	}
}

// TestCorruptCompleteLineIsAnError distinguishes a torn tail (tolerated)
// from a newline-terminated line that does not parse (real corruption).
func TestCorruptCompleteLineIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte("{nope}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sweepcache.Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt journal opened without error (err=%v)", err)
	}
}

// TestShardJournalsUnion verifies the sharded-cache merge rule: every
// writer appends to its own journal and Open loads the union.
func TestShardJournalsUnion(t *testing.T) {
	dir := t.TempDir()
	// Both writers open before either stores — the concurrent-process
	// shape, where neither journal can see the other's entries.
	var caches []*sweepcache.Cache
	for _, shard := range []string{"shard0", "shard1"} {
		c, err := sweepcache.OpenShard(dir, shard)
		if err != nil {
			t.Fatal(err)
		}
		caches = append(caches, c)
	}
	for i, key := range []string{"a", "b"} {
		caches[i].Store(key, metrics(i))
		caches[i].Store("common", metrics(42)) // same key from both shards
		caches[i].Close()
	}
	c, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("union has %d entries, want 3 (a, b, common); stats %+v", st.Entries, st)
	}
	if st.Duplicates != 1 {
		t.Fatalf("duplicate count %d, want 1 (the shared key)", st.Duplicates)
	}
	for _, key := range []string{"a", "b", "common"} {
		if _, ok := c.Lookup(key); !ok {
			t.Fatalf("key %q missing from union", key)
		}
	}
	if _, err := sweepcache.OpenShard(dir, "../evil"); err == nil {
		t.Fatalf("path separator in shard name accepted")
	}
}

// TestResumedGridComputesOnlyTheRemainder runs half a grid, "crashes", and
// resumes the full grid against the same directory: the resumed run must
// compute exactly the missing half and reproduce the single-run metrics.
func TestResumedGridComputesOnlyTheRemainder(t *testing.T) {
	grid := sweep.Grid{
		Topologies: []sweep.Topology{
			{Name: "SK(3,2,2)", Topo: sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph()), GroupSize: 3},
		},
		Rates: []float64{0.1, 0.2, 0.3, 0.4},
		Seeds: []int64{1, 2},
		Slots: 150,
		Drain: 150,
	}
	points := grid.Points()
	want := sweep.Runner{}.Run(points)
	dir := t.TempDir()

	c1, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (sweep.Runner{}).RunCached(context.Background(), points[:len(points)/2], c1, nil); err != nil {
		t.Fatal(err)
	}
	c1.Close() // the "crash" boundary: only the journal survives

	c2, err := sweepcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	results, err := sweep.Runner{}.RunCached(context.Background(), points, c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Loaded != len(points)/2 {
		t.Fatalf("resume loaded %d entries, want %d", st.Loaded, len(points)/2)
	}
	if st.Misses != int64(len(points)-len(points)/2) {
		t.Fatalf("resume computed %d points, want %d", st.Misses, len(points)-len(points)/2)
	}
	for i := range points {
		if results[i].Metrics != want[i].Metrics {
			t.Fatalf("resumed point %d differs from single run", i)
		}
	}
}
