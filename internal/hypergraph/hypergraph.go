// Package hypergraph implements directed hypergraphs and the stack-graph
// construction ς(s, G) of Bourdin, Ferreira and Marcus, which is the model
// the paper uses for multi-OPS networks (Definition 1): pile up s copies of
// a digraph and view each stack of arcs as a single hyperarc. A hyperarc
// models one optical passive star coupler — its tail set are the processors
// wired to the coupler's inputs, its head set those wired to its outputs.
package hypergraph

import (
	"fmt"
	"sort"

	"otisnet/internal/digraph"
)

// Hyperarc is a directed hyperarc: every node in Tail can transmit through
// it, every node in Head receives from it. For an OPS coupler of degree s,
// |Tail| = |Head| = s.
type Hyperarc struct {
	Tail []int
	Head []int
}

// Degree returns the degree of the hyperarc when it is balanced
// (|Tail| == |Head|), and -1 otherwise.
func (a Hyperarc) Degree() int {
	if len(a.Tail) != len(a.Head) {
		return -1
	}
	return len(a.Tail)
}

// Hypergraph is a directed hypergraph on nodes 0..n-1.
type Hypergraph struct {
	n    int
	arcs []Hyperarc
}

// New returns an empty hypergraph with n nodes.
func New(n int) *Hypergraph {
	if n < 0 {
		panic(fmt.Sprintf("hypergraph: negative node count %d", n))
	}
	return &Hypergraph{n: n}
}

// N returns the number of nodes.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperarcs.
func (h *Hypergraph) M() int { return len(h.arcs) }

// AddHyperarc appends a hyperarc. Tail and head node ids must be in range;
// the slices are copied.
func (h *Hypergraph) AddHyperarc(tail, head []int) int {
	for _, v := range tail {
		h.check(v)
	}
	for _, v := range head {
		h.check(v)
	}
	h.arcs = append(h.arcs, Hyperarc{
		Tail: append([]int(nil), tail...),
		Head: append([]int(nil), head...),
	})
	return len(h.arcs) - 1
}

func (h *Hypergraph) check(v int) {
	if v < 0 || v >= h.n {
		panic(fmt.Sprintf("hypergraph: node %d out of range [0,%d)", v, h.n))
	}
}

// Hyperarc returns the i-th hyperarc. The returned slices are owned by the
// hypergraph and must not be modified.
func (h *Hypergraph) Hyperarc(i int) Hyperarc { return h.arcs[i] }

// Hyperarcs returns all hyperarcs in insertion order.
func (h *Hypergraph) Hyperarcs() []Hyperarc { return h.arcs }

// OutArcs returns the indices of hyperarcs whose tail contains node v —
// the couplers node v can transmit on.
func (h *Hypergraph) OutArcs(v int) []int {
	h.check(v)
	var out []int
	for i, a := range h.arcs {
		for _, u := range a.Tail {
			if u == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// InArcs returns the indices of hyperarcs whose head contains node v —
// the couplers node v listens on.
func (h *Hypergraph) InArcs(v int) []int {
	h.check(v)
	var in []int
	for i, a := range h.arcs {
		for _, u := range a.Head {
			if u == v {
				in = append(in, i)
				break
			}
		}
	}
	return in
}

// OutDegree returns the number of hyperarcs node v can transmit on.
func (h *Hypergraph) OutDegree(v int) int { return len(h.OutArcs(v)) }

// InDegree returns the number of hyperarcs node v listens on.
func (h *Hypergraph) InDegree(v int) int { return len(h.InArcs(v)) }

// Reachable reports whether node u can send a message directly (one hop,
// through a single hyperarc) to node v.
func (h *Hypergraph) Reachable(u, v int) bool {
	for _, i := range h.OutArcs(u) {
		for _, w := range h.arcs[i].Head {
			if w == v {
				return true
			}
		}
	}
	return false
}

// UnderlyingDigraph returns the point-to-point digraph induced by the
// hypergraph: an arc u -> v whenever u can reach v through some hyperarc.
// Hop-distances in the hypergraph equal distances in this digraph.
func (h *Hypergraph) UnderlyingDigraph() *digraph.Digraph {
	g := digraph.New(h.n)
	for u := 0; u < h.n; u++ {
		seen := map[int]bool{}
		for _, i := range h.OutArcs(u) {
			for _, v := range h.arcs[i].Head {
				if !seen[v] {
					seen[v] = true
					g.AddArc(u, v)
				}
			}
		}
	}
	return g
}

// Diameter returns the hop diameter of the hypergraph (messages relayed
// through hyperarcs), or digraph.Unreachable when not strongly connected.
func (h *Hypergraph) Diameter() int {
	return h.UnderlyingDigraph().Diameter()
}

// Equal reports whether two hypergraphs have the same node count and the
// same multiset of hyperarcs, where each hyperarc is compared as a pair of
// node sets (order inside tail/head is irrelevant).
func (h *Hypergraph) Equal(o *Hypergraph) bool {
	if h.n != o.n || len(h.arcs) != len(o.arcs) {
		return false
	}
	canon := func(arcs []Hyperarc) []string {
		keys := make([]string, len(arcs))
		for i, a := range arcs {
			t := append([]int(nil), a.Tail...)
			hd := append([]int(nil), a.Head...)
			sort.Ints(t)
			sort.Ints(hd)
			keys[i] = fmt.Sprintf("%v=>%v", t, hd)
		}
		sort.Strings(keys)
		return keys
	}
	a, b := canon(h.arcs), canon(o.arcs)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
