package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
)

func TestNewAndAdd(t *testing.T) {
	h := New(8)
	if h.N() != 8 || h.M() != 0 {
		t.Fatalf("n=%d m=%d, want 8, 0", h.N(), h.M())
	}
	i := h.AddHyperarc([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
	if i != 0 || h.M() != 1 {
		t.Fatal("AddHyperarc index/count wrong")
	}
	a := h.Hyperarc(0)
	if a.Degree() != 4 {
		t.Fatalf("degree = %d, want 4", a.Degree())
	}
}

func TestHyperarcDegreeUnbalanced(t *testing.T) {
	a := Hyperarc{Tail: []int{0}, Head: []int{1, 2}}
	if a.Degree() != -1 {
		t.Fatal("unbalanced hyperarc should have degree -1")
	}
}

func TestAddHyperarcCopies(t *testing.T) {
	h := New(4)
	tail := []int{0, 1}
	h.AddHyperarc(tail, []int{2, 3})
	tail[0] = 3
	if h.Hyperarc(0).Tail[0] != 0 {
		t.Fatal("AddHyperarc must copy slices")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	h := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("should panic on out-of-range node")
		}
	}()
	h.AddHyperarc([]int{0}, []int{5})
}

func TestOutInArcsAndReachable(t *testing.T) {
	// Models Fig. 3: one OPS of degree 4, sources 0-3, destinations 4-7.
	h := New(8)
	h.AddHyperarc([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
	if got := h.OutArcs(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("OutArcs(2) = %v", got)
	}
	if got := h.InArcs(6); len(got) != 1 || got[0] != 0 {
		t.Fatalf("InArcs(6) = %v", got)
	}
	if h.OutDegree(5) != 0 || h.InDegree(5) != 1 {
		t.Fatal("degree wrong for destination node")
	}
	if !h.Reachable(0, 7) || h.Reachable(7, 0) {
		t.Fatal("Reachable wrong")
	}
}

func TestUnderlyingDigraph(t *testing.T) {
	h := New(4)
	h.AddHyperarc([]int{0, 1}, []int{2, 3})
	g := h.UnderlyingDigraph()
	if g.M() != 4 {
		t.Fatalf("underlying digraph m = %d, want 4", g.M())
	}
	for _, u := range []int{0, 1} {
		for _, v := range []int{2, 3} {
			if !g.HasArc(u, v) {
				t.Fatalf("missing arc %d->%d", u, v)
			}
		}
	}
}

func TestUnderlyingDigraphNoDuplicates(t *testing.T) {
	h := New(2)
	h.AddHyperarc([]int{0}, []int{1})
	h.AddHyperarc([]int{0}, []int{1})
	g := h.UnderlyingDigraph()
	if g.ArcMultiplicity(0, 1) != 1 {
		t.Fatal("underlying digraph should deduplicate reachability")
	}
}

func TestEqual(t *testing.T) {
	a := New(4)
	a.AddHyperarc([]int{0, 1}, []int{2, 3})
	b := New(4)
	b.AddHyperarc([]int{1, 0}, []int{3, 2}) // same sets, different order
	if !a.Equal(b) {
		t.Fatal("set-equal hypergraphs should be Equal")
	}
	c := New(4)
	c.AddHyperarc([]int{0, 2}, []int{1, 3})
	if a.Equal(c) {
		t.Fatal("different hypergraphs reported Equal")
	}
}

func TestStackGraphPOPSModel(t *testing.T) {
	// Fig. 5: POPS(4,2) modeled as ς(4, K+2): 8 nodes, 4 hyperarcs of deg 4.
	sg := NewStackGraph(4, digraph.CompleteWithLoops(2))
	if sg.N() != 8 || sg.M() != 4 {
		t.Fatalf("ς(4,K+2): n=%d m=%d, want 8, 4", sg.N(), sg.M())
	}
	for i := 0; i < sg.M(); i++ {
		if sg.Hyperarc(i).Degree() != 4 {
			t.Fatalf("hyperarc %d degree != 4", i)
		}
	}
	if sg.Diameter() != 1 {
		t.Fatalf("POPS model diameter = %d, want 1 (single-hop)", sg.Diameter())
	}
}

func TestStackGraphNodeIDRoundTrip(t *testing.T) {
	sg := NewStackGraph(6, digraph.Complete(4))
	for id := 0; id < sg.N(); id++ {
		if got := sg.NodeID(sg.Node(id)); got != id {
			t.Fatalf("round trip %d -> %d", id, got)
		}
	}
	if sg.Project(7) != 1 { // s=6: node 7 is group 1, member 1
		t.Fatalf("Project(7) = %d, want 1", sg.Project(7))
	}
}

func TestStackGraphInvalidArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("s=0 should panic")
		}
	}()
	NewStackGraph(0, digraph.Complete(2))
}

func TestStackGraphHyperarcFor(t *testing.T) {
	g := digraph.Complete(3)
	sg := NewStackGraph(2, g)
	i := sg.HyperarcFor(0, 1)
	if i < 0 {
		t.Fatal("hyperarc for (0,1) should exist")
	}
	u, v := sg.BaseArcOf(i)
	if u != 0 || v != 1 {
		t.Fatalf("BaseArcOf = (%d,%d), want (0,1)", u, v)
	}
	if sg.HyperarcFor(0, 0) != -1 {
		t.Fatal("no loop hyperarc in loopless base")
	}
}

func TestStackGraphRouteSameGroupWithLoop(t *testing.T) {
	sg := NewStackGraph(3, digraph.CompleteWithLoops(2))
	src := sg.NodeID(StackNode{0, 0})
	dst := sg.NodeID(StackNode{0, 2})
	r := sg.Route(src, dst)
	if len(r) != 2 || !sg.ValidRoute(r) {
		t.Fatalf("same-group route with loop = %v, want 2 hops valid", r)
	}
}

func TestStackGraphRouteSameGroupNoLoop(t *testing.T) {
	sg := NewStackGraph(2, digraph.Complete(3))
	src := sg.NodeID(StackNode{1, 0})
	dst := sg.NodeID(StackNode{1, 1})
	r := sg.Route(src, dst)
	if r == nil || !sg.ValidRoute(r) {
		t.Fatalf("no valid same-group route without loop: %v", r)
	}
	if len(r) != 3 { // out to any neighbor and back (K3 is complete)
		t.Fatalf("route %v, want length 3", r)
	}
}

func TestStackGraphRouteCrossGroup(t *testing.T) {
	sg := NewStackGraph(4, digraph.Cycle(5))
	src := sg.NodeID(StackNode{0, 1})
	dst := sg.NodeID(StackNode{3, 2})
	r := sg.Route(src, dst)
	if !sg.ValidRoute(r) {
		t.Fatalf("invalid route %v", r)
	}
	if len(r) != 4 { // 0->1->2->3 in C5
		t.Fatalf("route length %d, want 4", len(r))
	}
	if r[len(r)-1] != dst {
		t.Fatal("route must end at dst")
	}
}

func TestStackGraphRouteSelf(t *testing.T) {
	sg := NewStackGraph(2, digraph.Complete(3))
	r := sg.Route(5, 5)
	if len(r) != 1 || r[0] != 5 {
		t.Fatalf("self route = %v", r)
	}
}

func TestValidRouteRejects(t *testing.T) {
	sg := NewStackGraph(2, digraph.Cycle(4))
	if sg.ValidRoute(nil) {
		t.Fatal("empty route should be invalid")
	}
	// Nodes in groups 0 and 2 of C4 are not adjacent.
	if sg.ValidRoute([]int{sg.NodeID(StackNode{0, 0}), sg.NodeID(StackNode{2, 0})}) {
		t.Fatal("non-adjacent hop should be invalid")
	}
}

// Property: ς(s,G) has s*|V| nodes, |A| hyperarcs, all of degree s, and —
// when every vertex of G carries a loop, so that same-group members are one
// hop apart — its hop diameter equals the diameter of G (piling copies never
// changes group-to-group distances).
func TestStackGraphInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := 1 + rng.Intn(4)
		g := digraph.Cycle(n) // strongly connected backbone
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				g.AddArc(rng.Intn(n), rng.Intn(n))
			}
		}
		g = digraph.AddLoops(g)
		sg := NewStackGraph(s, g)
		if sg.N() != s*n || sg.M() != g.M() {
			return false
		}
		for i := 0; i < sg.M(); i++ {
			if sg.Hyperarc(i).Degree() != s {
				return false
			}
		}
		return sg.Diameter() == g.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every Route produced between random node pairs is valid and no
// longer than base-diameter+1 hops... specifically dist(groups)+1 nodes.
func TestStackGraphRouteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := 1 + rng.Intn(4)
		base := digraph.AddLoops(digraph.Cycle(n))
		sg := NewStackGraph(s, base)
		src := rng.Intn(sg.N())
		dst := rng.Intn(sg.N())
		r := sg.Route(src, dst)
		if r == nil || !sg.ValidRoute(r) {
			return false
		}
		return r[0] == src && r[len(r)-1] == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
