package hypergraph

import (
	"fmt"

	"otisnet/internal/digraph"
)

// StackNode identifies a node of a stack-graph by the base-digraph vertex it
// projects to (Group, the π projection of Definition 1) and its index inside
// the stack (Member, 0 <= Member < s).
type StackNode struct {
	Group  int
	Member int
}

// StackGraph is the stack-graph ς(s, G) of Definition 1: node set
// {0..s-1} × V(G), and one hyperarc (π⁻¹(u), π⁻¹(v)) per arc (u,v) of G.
// Node (x, y) — group x, member y — has id x*s + y, matching the contiguous
// group blocks of Figures 7 and 12.
type StackGraph struct {
	*Hypergraph
	s    int
	base *digraph.Digraph
	// arcOf[i] is the base arc (u,v) realized by hyperarc i.
	arcOf [][2]int
}

// NewStackGraph builds ς(s, base). The stacking factor s must be >= 1.
func NewStackGraph(s int, base *digraph.Digraph) *StackGraph {
	if s < 1 {
		panic(fmt.Sprintf("hypergraph: stacking factor %d < 1", s))
	}
	sg := &StackGraph{
		Hypergraph: New(s * base.N()),
		s:          s,
		base:       base,
	}
	for _, a := range base.Arcs() {
		u, v := a[0], a[1]
		tail := make([]int, s)
		head := make([]int, s)
		for y := 0; y < s; y++ {
			tail[y] = sg.NodeID(StackNode{u, y})
			head[y] = sg.NodeID(StackNode{v, y})
		}
		sg.AddHyperarc(tail, head)
		sg.arcOf = append(sg.arcOf, [2]int{u, v})
	}
	return sg
}

// StackingFactor returns s.
func (sg *StackGraph) StackingFactor() int { return sg.s }

// Base returns the underlying digraph G of ς(s, G).
func (sg *StackGraph) Base() *digraph.Digraph { return sg.base }

// Groups returns the number of groups (= |V(G)|).
func (sg *StackGraph) Groups() int { return sg.base.N() }

// NodeID maps (group, member) to the flat node id group*s + member.
func (sg *StackGraph) NodeID(n StackNode) int {
	if n.Group < 0 || n.Group >= sg.base.N() || n.Member < 0 || n.Member >= sg.s {
		panic(fmt.Sprintf("hypergraph: invalid stack node %+v", n))
	}
	return n.Group*sg.s + n.Member
}

// Node maps a flat node id back to (group, member).
func (sg *StackGraph) Node(id int) StackNode {
	if id < 0 || id >= sg.N() {
		panic(fmt.Sprintf("hypergraph: node id %d out of range", id))
	}
	return StackNode{Group: id / sg.s, Member: id % sg.s}
}

// Project returns π(id): the base-digraph vertex (group) of a node.
func (sg *StackGraph) Project(id int) int { return sg.Node(id).Group }

// HyperarcFor returns the index of the hyperarc realizing base arc (u, v),
// or -1 when G has no such arc. If G has parallel (u,v) arcs the first
// matching hyperarc is returned.
func (sg *StackGraph) HyperarcFor(u, v int) int {
	for i, a := range sg.arcOf {
		if a[0] == u && a[1] == v {
			return i
		}
	}
	return -1
}

// BaseArcOf returns the base arc (u, v) realized by hyperarc i.
func (sg *StackGraph) BaseArcOf(i int) (u, v int) {
	a := sg.arcOf[i]
	return a[0], a[1]
}

// Route returns a hop-by-hop route from node src to node dst as a sequence
// of node ids, following a shortest path between their groups in the base
// digraph. Within the final group the exact destination member is reached
// because every member of a group listens on every incoming coupler. If the
// two nodes share a group and the base graph has a loop there, the loop
// provides the single hop; without a loop the route goes through a base
// cycle. Returns nil if no route exists, and a single-element route when
// src == dst.
func (sg *StackGraph) Route(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	a, b := sg.Node(src), sg.Node(dst)
	if a.Group == b.Group {
		if sg.base.HasLoop(a.Group) {
			return []int{src, dst}
		}
		// Route around a shortest base cycle through the group.
		best := -1
		var bestVia int
		for _, w := range sg.base.Out(a.Group) {
			d := sg.base.Distance(w, a.Group)
			if d >= 0 && (best < 0 || d+1 < best) {
				best = d + 1
				bestVia = w
			}
		}
		if best < 0 {
			return nil
		}
		mid := sg.NodeID(StackNode{bestVia, b.Member})
		rest := sg.Route(mid, dst)
		if rest == nil {
			return nil
		}
		return append([]int{src}, rest...)
	}
	path := sg.base.ShortestPath(a.Group, b.Group)
	if path == nil {
		return nil
	}
	route := make([]int, len(path))
	route[0] = src
	for i := 1; i < len(path); i++ {
		// Intermediate relays use the destination's member index; any member
		// would do since all members of a group hear the same couplers.
		route[i] = sg.NodeID(StackNode{path[i], b.Member})
	}
	return route
}

// ValidRoute verifies that consecutive nodes in route are joined by a
// hyperarc (the first can transmit on a coupler the second listens to).
func (sg *StackGraph) ValidRoute(route []int) bool {
	if len(route) == 0 {
		return false
	}
	for i := 0; i+1 < len(route); i++ {
		if !sg.Reachable(route[i], route[i+1]) {
			return false
		}
	}
	return true
}
