package export

import (
	"strings"
	"testing"
)

func TestNDJSONRoundTrip(t *testing.T) {
	type row struct {
		K string `json:"k"`
		V int    `json:"v"`
	}
	var b strings.Builder
	for i, k := range []string{"a", "b", "c"} {
		if err := WriteNDJSONLine(&b, row{K: k, V: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(b.String(), "\n"); got != 3 {
		t.Fatalf("wrote %d newlines, want 3", got)
	}
	var lines []string
	truncated, err := ForEachNDJSONLine(strings.NewReader(b.String()), func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil || truncated {
		t.Fatalf("scan: err=%v truncated=%v", err, truncated)
	}
	if len(lines) != 3 || lines[0] != `{"k":"a","v":0}` {
		t.Fatalf("scanned %q", lines)
	}
}

// TestNDJSONTornTail pins the framing contract: a final unterminated
// fragment is reported, not delivered — the rule append-only journals
// rely on for crash tolerance.
func TestNDJSONTornTail(t *testing.T) {
	in := "{\"k\":1}\n\n  \n{\"k\":2}\n{\"k\":3"
	var n int
	truncated, err := ForEachNDJSONLine(strings.NewReader(in), func(line []byte) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatalf("torn tail not reported")
	}
	if n != 2 {
		t.Fatalf("delivered %d lines, want 2 (blank lines skipped, torn tail dropped)", n)
	}
}
