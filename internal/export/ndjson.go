package export

// NDJSON (newline-delimited JSON) helpers shared by the sweep service
// layer: the result cache journal (internal/sweepcache), shard result
// files (cmd/netsim -shards) and the HTTP result stream
// (internal/sweepserver) all speak one line-oriented format through these
// two functions, so framing rules cannot drift between producers.
//
// The framing rule doubles as the crash-tolerance contract: a record
// exists once its terminating newline is on disk. Readers therefore treat
// a final unterminated fragment — the signature of a writer killed
// mid-append — as absent, which is what makes append-only journals safely
// resumable.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
)

// WriteNDJSONLine marshals v and writes it as one newline-terminated line.
func WriteNDJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ForEachNDJSONLine invokes fn with every newline-terminated line of r
// (newline stripped, empty lines skipped) and stops at fn's first error.
// truncated reports that the stream ended in an unterminated fragment,
// which is dropped per the framing contract above.
func ForEachNDJSONLine(r io.Reader, fn func(line []byte) error) (truncated bool, err error) {
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			return len(bytes.TrimSpace(line)) > 0, nil
		}
		if err != nil {
			return false, err
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return false, err
		}
	}
}
