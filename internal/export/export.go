// Package export renders the reproduction's data structures — digraphs,
// stack-graph hypergraphs and optical netlists — in Graphviz DOT format,
// so the paper's figures can be regenerated as actual drawings
// (`dot -Tsvg`). Output is deterministic: vertices, hyperarcs and
// components are emitted in index order.
package export

import (
	"fmt"
	"strings"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/optical"
)

// DigraphDOT renders a digraph. labels may be nil (vertex indices are
// used) or provide one display label per vertex.
func DigraphDOT(name string, g *digraph.Digraph, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprint(v)
		if labels != nil {
			label = labels[v]
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for _, a := range g.Arcs() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", a[0], a[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// StackGraphDOT renders a stack-graph with one box node per coupler
// (hyperarc): processors connect into the coupler box, the box connects to
// the listeners — the visual convention of Figures 4 and 7.
func StackGraphDOT(name string, sg *hypergraph.StackGraph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	for v := 0; v < sg.N(); v++ {
		n := sg.Node(v)
		fmt.Fprintf(&b, "  p%d [label=\"(%d,%d)\" shape=circle];\n", v, n.Group, n.Member)
	}
	for i := 0; i < sg.M(); i++ {
		u, v := sg.BaseArcOf(i)
		fmt.Fprintf(&b, "  c%d [label=\"OPS(%d,%d)\" shape=box];\n", i, u, v)
		arc := sg.Hyperarc(i)
		for _, t := range arc.Tail {
			fmt.Fprintf(&b, "  p%d -> c%d;\n", t, i)
		}
		for _, h := range arc.Head {
			fmt.Fprintf(&b, "  c%d -> p%d;\n", i, h)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// NetlistDOT renders an optical netlist: one node per component (shaped by
// kind), one edge per wire, labeled with the port pair — the component
// diagrams of Figures 11 and 12.
func NetlistDOT(name string, nl *optical.Netlist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	for i := 0; i < nl.Components(); i++ {
		c := nl.Component(i)
		shape := "box"
		switch c.Kind {
		case optical.TxArray:
			shape = "invtriangle"
		case optical.RxArray:
			shape = "triangle"
		case optical.OTISBlock:
			shape = "box3d"
		case optical.Mux:
			shape = "trapezium"
		case optical.Splitter:
			shape = "invtrapezium"
		case optical.Fiber:
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  c%d [label=%q shape=%s];\n", i, c.Name, shape)
	}
	// Wires in deterministic component/port order.
	for i := 0; i < nl.Components(); i++ {
		c := nl.Component(i)
		for p := 0; p < c.NOut; p++ {
			if dst, ok := nl.WireFrom(i, p); ok {
				fmt.Fprintf(&b, "  c%d -> c%d [label=\"%d:%d\"];\n",
					i, dst.Comp, p, dst.Port)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
