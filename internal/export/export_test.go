package export

import (
	"strings"
	"testing"

	"otisnet/internal/core"
	"otisnet/internal/digraph"
	"otisnet/internal/kautz"
	"otisnet/internal/pops"
)

func TestDigraphDOT(t *testing.T) {
	g := digraph.Cycle(3)
	out := DigraphDOT("c3", g, nil)
	if !strings.HasPrefix(out, "digraph \"c3\" {") {
		t.Fatalf("bad header:\n%s", out)
	}
	for _, want := range []string{"n0 -> n1;", "n1 -> n2;", "n2 -> n0;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "->") != 3 {
		t.Fatal("wrong edge count")
	}
}

func TestDigraphDOTWithLabels(t *testing.T) {
	kg := kautz.New(2, 2)
	labels := make([]string, kg.N())
	for i := range labels {
		labels[i] = kg.LabelOf(i).String()
	}
	out := DigraphDOT("kg22", kg.Digraph(), labels)
	if !strings.Contains(out, `label="01"`) {
		t.Fatalf("missing word label:\n%s", out)
	}
}

func TestStackGraphDOT(t *testing.T) {
	p := pops.New(2, 2)
	out := StackGraphDOT("pops22", p.StackGraph())
	if strings.Count(out, "shape=box") != 4 {
		t.Fatalf("want 4 coupler boxes:\n%s", out)
	}
	// Each degree-2 coupler has 2 in + 2 out edges: 16 edges total.
	if strings.Count(out, "->") != 16 {
		t.Fatalf("edge count = %d, want 16", strings.Count(out, "->"))
	}
	if !strings.Contains(out, `label="(0,0)"`) {
		t.Fatal("missing processor label")
	}
}

func TestNetlistDOT(t *testing.T) {
	d := core.DesignPOPS(2, 2)
	out := NetlistDOT("pops22", d.NL)
	if !strings.Contains(out, "invtriangle") || !strings.Contains(out, "box3d") {
		t.Fatalf("missing component shapes:\n%s", out)
	}
	// Every wire appears exactly once.
	if strings.Count(out, "->") != d.NL.Wires() {
		t.Fatalf("edge count %d != wires %d", strings.Count(out, "->"), d.NL.Wires())
	}
}

func TestDOTDeterministic(t *testing.T) {
	d := core.DesignPOPS(2, 2)
	if NetlistDOT("x", d.NL) != NetlistDOT("x", d.NL) {
		t.Fatal("DOT output must be deterministic")
	}
}
