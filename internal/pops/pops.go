// Package pops implements the Partitioned Optical Passive Star network
// POPS(t,g) of Chiarulli et al. (§2.4 of the paper): N = t·g processors in
// g groups of t, with g² single-wavelength OPS couplers of degree t; the
// input of coupler (i,j) is driven by group i and its output feeds group j.
// POPS is single-hop: every processor reaches every other in one optical
// hop. Following Berthomé and Ferreira, the network is modeled as the
// stack-graph ς(t, K⁺_g) (Fig. 5), which is how the optical design engine
// in package core verifies its OTIS realization.
package pops

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
)

// Network is a POPS(t,g) network.
type Network struct {
	t, g int
	sg   *hypergraph.StackGraph
}

// New constructs POPS(t,g): g groups of t processors, g² couplers.
func New(t, g int) *Network {
	if t < 1 || g < 1 {
		panic(fmt.Sprintf("pops: invalid POPS(%d,%d)", t, g))
	}
	return &Network{t: t, g: g, sg: hypergraph.NewStackGraph(t, digraph.CompleteWithLoops(g))}
}

// T returns the group size t (also the coupler degree).
func (p *Network) T() int { return p.t }

// G returns the number of groups g.
func (p *Network) G() int { return p.g }

// N returns the number of processors t·g.
func (p *Network) N() int { return p.t * p.g }

// Couplers returns the number of OPS couplers, g².
func (p *Network) Couplers() int { return p.g * p.g }

// StackGraph returns the ς(t, K⁺_g) model of the network.
func (p *Network) StackGraph() *hypergraph.StackGraph { return p.sg }

// NodeID maps (group, member) to a flat processor id.
func (p *Network) NodeID(group, member int) int {
	return p.sg.NodeID(hypergraph.StackNode{Group: group, Member: member})
}

// Node maps a flat processor id to (group, member).
func (p *Network) Node(id int) (group, member int) {
	n := p.sg.Node(id)
	return n.Group, n.Member
}

// CouplerIndex returns the hyperarc index of coupler (i,j): input side
// group i, output side group j.
func (p *Network) CouplerIndex(i, j int) int {
	if i < 0 || i >= p.g || j < 0 || j >= p.g {
		panic(fmt.Sprintf("pops: coupler (%d,%d) out of range", i, j))
	}
	return p.sg.HyperarcFor(i, j)
}

// CouplerLabel returns the (i,j) label of hyperarc index c — the inverse of
// CouplerIndex.
func (p *Network) CouplerLabel(c int) (i, j int) {
	return p.sg.BaseArcOf(c)
}

// CouplerFor returns the coupler a processor of group src uses to reach
// group dst: coupler (src, dst).
func (p *Network) CouplerFor(src, dst int) int { return p.CouplerIndex(src, dst) }

// Route returns the single-hop route between two processors: the coupler
// (srcGroup, dstGroup) and the fact that exactly one slot is needed. POPS
// being single-hop, the result is always a 2-node route (or 1 node when
// src == dst).
func (p *Network) Route(src, dst int) []int {
	return p.sg.Route(src, dst)
}

// OneToAllSlots returns the number of time slots a single processor needs
// to broadcast to all N processors. Driving one coupler reaches a whole
// destination group, so a processor that may fire one beam per slot needs g
// slots; a processor allowed to fire all its g beams simultaneously
// (simultaneous == true) needs 1.
func (p *Network) OneToAllSlots(simultaneous bool) int {
	if simultaneous {
		return 1
	}
	return p.g
}

// BroadcastSchedule returns, slot by slot, the couplers a source processor
// drives to reach every processor, assuming one beam per slot: coupler
// (srcGroup, j) at slot j.
func (p *Network) BroadcastSchedule(src int) [][2]int {
	sg, _ := p.Node(src)
	sched := make([][2]int, p.g)
	for j := 0; j < p.g; j++ {
		sched[j] = [2]int{sg, j}
	}
	return sched
}

// AllToAllPersonalizedLowerBound returns the minimum number of slots for an
// all-to-all personalized exchange: N·(N-1) messages must cross g² couplers
// delivering at most one distinct personalized message... each slot moves at
// most g² messages usefully toward distinct destinations, but a coupler
// broadcast serves at most one personalized message, so the bound is
// ⌈N(N-1)/g²⌉ slots.
func (p *Network) AllToAllPersonalizedLowerBound() int {
	n := p.N()
	msgs := n * (n - 1)
	c := p.Couplers()
	return (msgs + c - 1) / c
}

// GroupGossipSlots returns the number of slots for every group to hear from
// every other group when each group may drive all its g output couplers at
// once (group-level gossip): 1 slot, since K⁺_g is complete — a structural
// restatement of "POPS is single-hop".
func (p *Network) GroupGossipSlots() int { return 1 }
