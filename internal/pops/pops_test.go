package pops

import (
	"testing"
	"testing/quick"
)

func TestParametersFig4(t *testing.T) {
	// Fig. 4: POPS(4,2) has 8 nodes and 4 couplers of degree 4.
	p := New(4, 2)
	if p.N() != 8 || p.Couplers() != 4 || p.T() != 4 || p.G() != 2 {
		t.Fatalf("POPS(4,2): N=%d couplers=%d", p.N(), p.Couplers())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			c := p.CouplerIndex(i, j)
			if p.StackGraph().Hyperarc(c).Degree() != 4 {
				t.Fatalf("coupler (%d,%d) degree != 4", i, j)
			}
		}
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("POPS(0,1) should panic")
		}
	}()
	New(0, 1)
}

func TestStackModelFig5(t *testing.T) {
	// Fig. 5: POPS(4,2) is ς(4, K+2): base complete with loops, 4 hyperarcs.
	p := New(4, 2)
	sg := p.StackGraph()
	if sg.StackingFactor() != 4 || sg.Groups() != 2 {
		t.Fatal("stack model parameters wrong")
	}
	if sg.Base().M() != 4 || sg.Base().LoopCount() != 2 {
		t.Fatal("base must be K+2 (4 arcs incl. 2 loops)")
	}
}

func TestSingleHopDiameter(t *testing.T) {
	for _, pr := range []struct{ t, g int }{{4, 2}, {3, 3}, {8, 4}, {1, 5}} {
		p := New(pr.t, pr.g)
		if d := p.StackGraph().Diameter(); d != 1 {
			t.Errorf("POPS(%d,%d) diameter = %d, want 1 (single-hop)", pr.t, pr.g, d)
		}
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	p := New(4, 3)
	for id := 0; id < p.N(); id++ {
		g, m := p.Node(id)
		if p.NodeID(g, m) != id {
			t.Fatalf("round trip broken at %d", id)
		}
	}
}

func TestCouplerLabelRoundTrip(t *testing.T) {
	p := New(2, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c := p.CouplerIndex(i, j)
			gi, gj := p.CouplerLabel(c)
			if gi != i || gj != j {
				t.Fatalf("coupler label round trip (%d,%d) -> %d -> (%d,%d)", i, j, c, gi, gj)
			}
		}
	}
}

func TestCouplerIndexPanics(t *testing.T) {
	p := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range coupler should panic")
		}
	}()
	p.CouplerIndex(2, 0)
}

func TestRouteSingleHop(t *testing.T) {
	p := New(4, 2)
	r := p.Route(p.NodeID(0, 1), p.NodeID(1, 3))
	if len(r) != 2 {
		t.Fatalf("route = %v, want one hop", r)
	}
	if !p.StackGraph().ValidRoute(r) {
		t.Fatal("invalid route")
	}
	// Same node: trivial route.
	if r := p.Route(3, 3); len(r) != 1 {
		t.Fatalf("self route = %v", r)
	}
	// Same group uses the loop coupler: still one hop.
	if r := p.Route(p.NodeID(1, 0), p.NodeID(1, 2)); len(r) != 2 {
		t.Fatalf("intra-group route = %v, want one hop", r)
	}
}

func TestOneToAllSlots(t *testing.T) {
	p := New(4, 3)
	if p.OneToAllSlots(false) != 3 {
		t.Fatal("sequential broadcast should take g slots")
	}
	if p.OneToAllSlots(true) != 1 {
		t.Fatal("simultaneous broadcast should take 1 slot")
	}
}

func TestBroadcastSchedule(t *testing.T) {
	p := New(4, 3)
	src := p.NodeID(2, 1)
	sched := p.BroadcastSchedule(src)
	if len(sched) != 3 {
		t.Fatalf("schedule length = %d, want g=3", len(sched))
	}
	seen := map[int]bool{}
	for _, cp := range sched {
		if cp[0] != 2 {
			t.Fatalf("broadcast must use own group's couplers, got %v", cp)
		}
		seen[cp[1]] = true
	}
	if len(seen) != 3 {
		t.Fatal("broadcast must cover all destination groups")
	}
}

func TestAllToAllLowerBound(t *testing.T) {
	p := New(4, 2)
	// N=8: 56 messages over 4 couplers -> 14 slots.
	if lb := p.AllToAllPersonalizedLowerBound(); lb != 14 {
		t.Fatalf("lower bound = %d, want 14", lb)
	}
}

func TestGroupGossipSlots(t *testing.T) {
	if New(3, 5).GroupGossipSlots() != 1 {
		t.Fatal("group gossip is 1 slot on a complete base")
	}
}

// Property: POPS invariants for random parameters — N = tg, couplers = g²,
// degree per node (out and in) = g in the stack model, diameter 1.
func TestPOPSInvariantsProperty(t *testing.T) {
	f := func(tu, gu uint8) bool {
		tt := 1 + int(tu)%6
		g := 1 + int(gu)%5
		p := New(tt, g)
		if p.N() != tt*g || p.Couplers() != g*g {
			return false
		}
		sg := p.StackGraph()
		for v := 0; v < sg.N(); v++ {
			if sg.OutDegree(v) != g || sg.InDegree(v) != g {
				return false
			}
		}
		if p.N() == 1 {
			return sg.Diameter() == 0
		}
		return sg.Diameter() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every processor pair is joined by the coupler (srcGroup,
// dstGroup): Route always uses exactly that hyperarc.
func TestRouteUsesCorrectCouplerProperty(t *testing.T) {
	p := New(3, 4)
	f := func(a, b uint8) bool {
		src := int(a) % p.N()
		dst := int(b) % p.N()
		if src == dst {
			return true
		}
		r := p.Route(src, dst)
		if len(r) != 2 || !p.StackGraph().ValidRoute(r) {
			return false
		}
		sgrp, _ := p.Node(src)
		dgrp, _ := p.Node(dst)
		c := p.CouplerFor(sgrp, dgrp)
		arc := p.StackGraph().Hyperarc(c)
		inTail, inHead := false, false
		for _, v := range arc.Tail {
			if v == src {
				inTail = true
			}
		}
		for _, v := range arc.Head {
			if v == dst {
				inHead = true
			}
		}
		return inTail && inHead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
