package obs_test

// Registry unit tests: histogram bucket boundaries and quantile
// interpolation, sharded-counter aggregation under concurrency (run with
// -race in CI), registration idempotence and type-stickiness, and the
// Prometheus text exposition (header/series shape, cumulative buckets,
// integer rendering). The NDJSON trace sink is covered in trace
// round-trip tests.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"

	"otisnet/internal/export"
	"otisnet/internal/obs"
)

func TestCounterShardAggregation(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("test_shards_total", "")
	const goroutines, per = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddShard(sh, 1)
			}
		}(obs.NextShard())
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("sharded counter summed to %d, want %d", got, goroutines*per)
	}
	c.Add(5)
	if got := c.Value(); got != goroutines*per+5 {
		t.Fatalf("after plain Add: %d, want %d", got, goroutines*per+5)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("test_hist", "", []float64{1, 2, 4})
	if h.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d, want 4 (3 bounds + overflow)", h.NumBuckets())
	}
	// Upper edges are inclusive: a value equal to a bound lands in that
	// bound's bucket, matching Prometheus le semantics.
	for _, tc := range []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {3, 2}, {4, 2}, {4.01, 3}, {1000, 3}} {
		if got := h.BucketOf(tc.v); got != tc.want {
			t.Errorf("BucketOf(%g) = %d, want %d", tc.v, got, tc.want)
		}
		h.Observe(tc.v)
	}
	s := h.Snapshot()
	if want := []int64{2, 2, 2, 2}; fmt.Sprint(s.Buckets) != fmt.Sprint(want) {
		t.Fatalf("buckets %v, want %v", s.Buckets, want)
	}
	if s.Count != 8 {
		t.Fatalf("count %d, want 8", s.Count)
	}
}

func TestHistogramAddBucketsMatchesObserve(t *testing.T) {
	r := obs.NewRegistry()
	ho := r.Histogram("test_hist_observe", "", []float64{1, 2, 4})
	hb := r.Histogram("test_hist_binned", "", []float64{1, 2, 4})
	values := []float64{1, 1, 2, 3, 5, 9, 4}
	binned := make([]int64, hb.NumBuckets())
	var sum int64
	for _, v := range values {
		ho.Observe(v)
		binned[hb.BucketOf(v)]++
		sum += int64(v)
	}
	hb.AddBuckets(binned, sum)
	so, sb := ho.Snapshot(), hb.Snapshot()
	if fmt.Sprint(so.Buckets) != fmt.Sprint(sb.Buckets) || so.Count != sb.Count || so.Sum != sb.Sum {
		t.Fatalf("pre-binned merge diverged from Observe:\nobserve %+v\nbinned  %+v", so, sb)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("test_hist_q", "", []float64{10, 20, 30})
	// 10 observations uniform in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q, want float64
	}{{0.5, 10}, {0.75, 15}, {1.0, 20}, {0.25, 5}} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// Everything in the overflow bucket clamps to the last bound.
	ho := r.Histogram("test_hist_q_over", "", []float64{10, 20, 30})
	ho.Observe(100)
	if got := ho.Snapshot().Quantile(0.5); got != 30 {
		t.Errorf("overflow quantile = %g, want 30 (last bound)", got)
	}

	// Empty histogram reports 0.
	he := r.Histogram("test_hist_q_empty", "", []float64{10})
	if got := he.Snapshot().Quantile(0.9); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestRegistryIdempotentAndTypeSticky(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("dup_total", "first help")
	b := r.Counter("dup_total", "second help ignored")
	if a != b {
		t.Fatal("re-registering a counter name returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestSnapshotAndGaugeFunc(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Gauge("g", "").Set(-3)
	r.Histogram("h", "", []float64{1}).Observe(2)
	live := 41.0
	r.GaugeFunc("gf", "", func() float64 { live++; return live })
	s := r.Snapshot()
	if s.Counters["c_total"] != 7 || s.Gauges["g"] != -3 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Gauges["gf"] != 42 {
		t.Fatalf("gauge func read %g, want 42 (evaluated at snapshot time)", s.Gauges["gf"])
	}
	if h := s.Histograms["h"]; h.Count != 1 || h.Buckets[1] != 1 {
		t.Fatalf("histogram snapshot %+v", h)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

// seriesLine matches one Prometheus text exposition sample line.
var seriesLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][-+][0-9]+)?$`)

func TestWritePrometheus(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("req_total", "requests").Add(3)
	r.Gauge("depth", "queue depth").Set(9)
	h := r.Histogram("lat", "latency", []float64{1, 2.5, 4})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(99)
	r.GaugeFunc("ratio", "hit ratio", func() float64 { return 0.25 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Every family has a TYPE header; every sample line parses.
	for _, want := range []string{
		"# TYPE req_total counter",
		"# TYPE depth gauge",
		"# TYPE lat histogram",
		"# TYPE ratio gauge",
		"req_total 3",
		"depth 9",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2.5"} 2`,
		`lat_bucket{le="4"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_count 3",
		"ratio 0.25",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	var prevCum int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !seriesLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
		if strings.HasPrefix(line, "lat_bucket") {
			var cum int64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum)
			if cum < prevCum {
				t.Errorf("histogram buckets not cumulative at %q", line)
			}
			prevCum = cum
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	type ev struct {
		Kind string `json:"kind"`
		Slot int    `json:"slot"`
	}
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf, 0) // < 1 clamps to every slot
	if tr.SampleEvery() != 1 {
		t.Fatalf("SampleEvery = %d, want clamp to 1", tr.SampleEvery())
	}
	for i := 0; i < 5; i++ {
		tr.Emit(ev{Kind: "slot", Slot: i})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 5 {
		t.Fatalf("Events = %d, want 5", tr.Events())
	}
	var got []ev
	truncated, err := export.ForEachNDJSONLine(&buf, func(line []byte) error {
		var e ev
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		got = append(got, e)
		return nil
	})
	if err != nil || truncated {
		t.Fatalf("reading trace back: err=%v truncated=%v", err, truncated)
	}
	if len(got) != 5 || got[4].Slot != 4 {
		t.Fatalf("round-tripped events %+v", got)
	}
}
