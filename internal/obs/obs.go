// Package obs is the dependency-free observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, plus a
// low-overhead NDJSON trace sink for engine timelines. Every subsystem
// (internal/sim, internal/sweep, internal/sweepcache, internal/sweepserver)
// registers its instruments in the shared Default registry, which the
// sweep server exposes as Prometheus text (GET /metrics) and as a JSON
// snapshot (GET /api/v1/observe).
//
// The overhead contract that shapes the design: instrumentation must be
// free when idle. The simulation hot path (replica.step) performs no
// atomic operations, takes no locks and calls no interfaces — engines
// accumulate plain local tallies and flush them into sharded counters once
// per scenario, so BenchmarkStepAllocFree stays 0 B/op and the headline
// benches stay within noise with the registry wired in. Counters are
// internally sharded across cache-line-padded cells (writers pick a shard
// once, at construction time) and aggregated only on read; histograms
// absorb whole pre-binned bucket arrays in one call per scenario; trace
// hooks hide behind a nil-pointer fast path that compiles to one
// predictable branch.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// shardCount is the number of padded cells per counter. Writers pick a
// cell via NextShard (round-robin over engine/worker construction), so
// concurrent flushes from a worker pool land on distinct cache lines.
// Power of two: shard selection is a mask, never a divide.
const shardCount = 16

// cell is one cache-line-padded counter shard; the padding keeps two
// shards from sharing a line, which is the whole point of sharding.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing metric, sharded across padded
// atomic cells. Add is wait-free; Value sums the shards (aggregate on
// read). The zero value is unusable — obtain counters from a Registry.
type Counter struct {
	name, help string
	shards     [shardCount]cell
}

// Add increments the counter through shard 0 — fine for cold paths
// (request handlers, cache lookups under their own lock).
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// AddShard increments through the given shard (masked into range). Hot
// flush paths pass a shard picked once via NextShard so concurrent
// workers never contend on one cache line.
func (c *Counter) AddShard(shard int, n int64) {
	c.shards[shard&(shardCount-1)].v.Add(n)
}

// Value sums every shard. Counters only grow, so the sum is a consistent
// lower bound even while writers race.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// shardSeq hands out shard hints round-robin; see NextShard.
var shardSeq atomic.Int64

// NextShard returns a shard hint for AddShard. Callers that flush
// concurrently (one engine per sweep worker) grab one hint at
// construction time and reuse it for every flush.
func NextShard() int { return int(shardSeq.Add(1)) & (shardCount - 1) }

// Gauge is a metric that can go up and down (queue depths, live jobs).
// A single atomic cell: gauges are set from cold paths only.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value loads the gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: Bounds[i] is the inclusive
// upper edge of bucket i, with one implicit overflow bucket above the
// last bound (Prometheus "+Inf"). Observations are atomic per bucket;
// hot paths pre-bin into a plain local array and merge it in one
// AddBuckets call per scenario.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper edges
	buckets    []atomic.Int64
	count      atomic.Int64
	sum        atomic.Int64 // sum of observed values (integral metrics)
}

// Bounds returns the bucket upper edges (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// NumBuckets returns len(Bounds())+1: the pre-binning array length hot
// paths must allocate.
func (h *Histogram) NumBuckets() int { return len(h.bounds) + 1 }

// BucketOf returns the index of the bucket v falls into (binary search;
// the overflow bucket is len(Bounds())). Hot paths with power-of-two
// bounds can compute indices themselves and skip the search.
func (h *Histogram) BucketOf(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[h.BucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v))
}

// AddBuckets merges a pre-binned count array (indexed like BucketOf)
// plus the corresponding value sum in one pass — the once-per-scenario
// flush path. Arrays shorter than NumBuckets merge what they have.
func (h *Histogram) AddBuckets(counts []int64, sum int64) {
	var n int64
	for i, c := range counts {
		if c == 0 || i >= len(h.buckets) {
			continue
		}
		h.buckets[i].Add(c)
		n += c
	}
	h.count.Add(n)
	h.sum.Add(sum)
}

// HistogramSnapshot is a consistent-enough read of a histogram: bucket
// counts (including the overflow bucket), total count and value sum.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1, last is overflow
	Count   int64     `json:"count"`
	Sum     int64     `json:"sum"`
}

// Snapshot reads the histogram. Counts are loaded bucket by bucket, so a
// racing Observe may or may not appear — fine for monitoring reads.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Buckets: make([]int64, len(h.buckets))}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the snapshot by
// linear interpolation inside the containing bucket, Prometheus
// histogram_quantile style: bucket i spans (lower, Bounds[i]] with lower
// = Bounds[i-1] (0 for the first bucket). An estimate landing in the
// overflow bucket returns the last bound (the histogram cannot resolve
// beyond its range); an empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: unbounded above, clamp to the last edge.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		return lower + (s.Bounds[i]-lower)*(rank-prev)/float64(c)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// GaugeFunc is a read-time gauge: the callback is evaluated at every
// scrape/snapshot, so subsystems with their own counters (sweepcache
// stats) export them without double bookkeeping.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// Registry holds named instruments. Registration is idempotent by name
// (the first help string wins) but type-sticky: re-registering a name as
// a different kind panics, because two exporters would collide on the
// Prometheus family. The zero value is unusable; use NewRegistry or the
// shared Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]*GaugeFunc
	names    []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]*GaugeFunc{},
	}
}

// defaultRegistry is the process-wide registry every subsystem registers
// into; see Default.
var defaultRegistry = NewRegistry()

// Default returns the shared process-wide registry — what `netsim serve`
// exposes on /metrics and /api/v1/observe.
func Default() *Registry { return defaultRegistry }

func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic("obs: " + name + " already registered as a counter")
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic("obs: " + name + " already registered as a gauge")
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic("obs: " + name + " already registered as a histogram")
	}
	if _, ok := r.funcs[name]; ok && kind != "gaugefunc" {
		panic("obs: " + name + " already registered as a gauge func")
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	r.names = append(r.names, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.names = append(r.names, name)
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending bucket bounds on first use (later calls
// reuse the first bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkName(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %s bucket bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name: name, help: help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	r.names = append(r.names, name)
	return h
}

// GaugeFunc registers a read-time gauge evaluated at every scrape.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; ok {
		return
	}
	r.checkName(name, "gaugefunc")
	r.funcs[name] = &GaugeFunc{name: name, help: help, fn: fn}
	r.names = append(r.names, name)
}

// Snapshot is a point-in-time JSON-serializable read of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Value())
	}
	for name, f := range r.funcs {
		s.Gauges[name] = f.fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, cumulative
// le-labelled histogram buckets with a +Inf bucket, _sum and _count
// series. Families appear in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.names {
		switch {
		case r.counters[name] != nil:
			c := r.counters[name]
			writeHeader(&b, name, c.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", name, c.Value())
		case r.gauges[name] != nil:
			g := r.gauges[name]
			writeHeader(&b, name, g.help, "gauge")
			fmt.Fprintf(&b, "%s %d\n", name, g.Value())
		case r.funcs[name] != nil:
			f := r.funcs[name]
			writeHeader(&b, name, f.help, "gauge")
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(f.fn()))
		case r.hists[name] != nil:
			h := r.hists[name]
			writeHeader(&b, name, h.help, "histogram")
			s := h.Snapshot()
			var cum int64
			for i, bound := range s.Bounds {
				cum += s.Buckets[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
			fmt.Fprintf(&b, "%s_sum %d\n", name, s.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", name, s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a float the Prometheus way: integers without a
// decimal point, everything else shortest-round-trip.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
