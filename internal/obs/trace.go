package obs

// Trace is the engine trace sink: sampled per-slot NDJSON events through
// the internal/export framing, so a scenario's queue/delivery timeline
// can be replayed offline with the same torn-tail-tolerant readers the
// cache journals use. The overhead contract lives on the producer side:
// engines hold a *Trace pointer that is nil unless tracing was requested,
// and every emission site hides behind that nil check — the hot path pays
// one predictable branch, no interface call, no allocation.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"otisnet/internal/export"
)

// Trace serializes trace events to one NDJSON stream. Safe for
// concurrent emitters (a mutex per event — tracing is a diagnostic mode,
// not a hot path). Construct with NewTrace or OpenTraceFile.
type Trace struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // non-nil when Trace owns the file
	sample int
	events int64
	err    error
}

// NewTrace wraps w in a buffered NDJSON event sink sampling every
// sample-th slot (values < 1 mean every slot).
func NewTrace(w io.Writer, sample int) *Trace {
	if sample < 1 {
		sample = 1
	}
	return &Trace{w: bufio.NewWriter(w), sample: sample}
}

// OpenTraceFile creates (truncating) path and returns a Trace writing to
// it; Close flushes and closes the file.
func OpenTraceFile(path string, sample int) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	t := NewTrace(f, sample)
	t.c = f
	return t, nil
}

// SampleEvery returns the slot sampling period N: producers emit events
// only for slots where slot % N == 0.
func (t *Trace) SampleEvery() int { return t.sample }

// Emit writes one event as an NDJSON line. The first write error sticks
// (see Err); later events are dropped rather than failing the run being
// traced.
func (t *Trace) Emit(v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := export.WriteNDJSONLine(t.w, v); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events returns how many events were written so far.
func (t *Trace) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err reports the first write failure, or nil.
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes the buffer and closes the underlying file when the Trace
// owns one. The Trace must not be used after Close.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
		t.c = nil
	}
	return err
}
