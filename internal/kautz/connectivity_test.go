package kautz

import "testing"

// The fault-tolerance claim of §2.5 ([17]) rests on Kautz graphs being
// d-connected: d internally vertex-disjoint paths join every vertex pair,
// so d-1 faulty vertices cannot disconnect the network. Verified exactly
// by max-flow on paper-scale instances.
func TestKautzDConnectivity(t *testing.T) {
	for _, p := range []struct{ d, k int }{{2, 2}, {2, 3}, {3, 2}} {
		kg := New(p.d, p.k)
		if c := kg.Digraph().VertexConnectivityExact(); c != p.d {
			t.Errorf("KG(%d,%d) vertex connectivity = %d, want %d", p.d, p.k, c, p.d)
		}
	}
}

// Between any two distinct vertices there are exactly d disjoint paths
// (not just connectivity d): spot-check with explicit path extraction.
func TestKautzDisjointPathFamilies(t *testing.T) {
	kg := New(3, 2)
	g := kg.Digraph()
	pairs := [][2]int{{0, 5}, {1, 10}, {7, 2}}
	for _, pr := range pairs {
		paths := g.MaxDisjointPaths(pr[0], pr[1])
		want := 3
		if g.HasArc(pr[0], pr[1]) {
			// Adjacent pairs: direct arc + (d-1) or d detours, at least d.
			if len(paths) < want {
				t.Errorf("pair %v: %d disjoint paths, want >= %d", pr, len(paths), want)
			}
		} else if len(paths) != want {
			t.Errorf("pair %v: %d disjoint paths, want %d", pr, len(paths), want)
		}
		if !g.InternallyDisjoint(paths) {
			t.Errorf("pair %v: paths not disjoint", pr)
		}
	}
}

// De Bruijn graphs, by contrast, have connectivity d-1 (the loops at
// constant words waste a neighbor) — one reason the paper builds on Kautz.
func TestDeBruijnConnectivityDMinus1(t *testing.T) {
	b := NewDeBruijn(2, 3)
	if c := b.Digraph().VertexConnectivityExact(); c != 1 {
		t.Fatalf("B(2,3) connectivity = %d, want d-1 = 1", c)
	}
}
