package kautz

// This file implements the label-induced routing the paper highlights in
// §2.5: "routing on the Kautz graph is very simple, since a shortest path
// routing algorithm (every path is of length at most k) is induced by the
// label of the nodes". A route from word u to word v shifts in the symbols
// of v after the longest suffix of u that is a prefix of v.

// Overlap returns the length of the longest suffix of from that equals a
// prefix of to (both words of the same length k). Overlap k means
// from == to.
func Overlap(from, to Label) int {
	k := len(from)
	for l := k; l >= 1; l-- {
		match := true
		for i := 0; i < l; i++ {
			if from[k-l+i] != to[i] {
				match = false
				break
			}
		}
		if match {
			return l
		}
	}
	return 0
}

// Distance returns the label-induced distance k - Overlap(from, to), which
// equals the shortest-path distance in KG(d,k) (verified against BFS in the
// tests).
func Distance(from, to Label) int {
	return len(from) - Overlap(from, to)
}

// Route returns the label-induced shortest path from from to to, inclusive
// of both endpoints, of length (node count) Distance+1 and at most k+1.
// Step t visits the word from[t:] ++ to[l : l+t] where l is the overlap.
func Route(from, to Label) []Label {
	k := len(from)
	l := Overlap(from, to)
	steps := k - l
	path := make([]Label, steps+1)
	for t := 0; t <= steps; t++ {
		w := make(Label, k)
		copy(w, from[t:])
		copy(w[k-t:], to[l:l+t])
		path[t] = w
	}
	return path
}

// RouteVia returns the path that first shifts in the detour symbol z and
// then routes label-induced to the destination, or nil when z equals the
// last symbol of from (no such arc exists). The result has length at most
// k+2 nodes beyond... precisely at most 1 + k hops. Detour paths through
// distinct z are internally disjoint near the source, which is what gives
// Kautz graphs their d-connectivity; the fault-tolerant router exploits it.
func RouteVia(from, to Label, z byte) []Label {
	k := len(from)
	if from[k-1] == z {
		return nil
	}
	mid := make(Label, k)
	copy(mid, from[1:])
	mid[k-1] = z
	rest := Route(mid, to)
	path := make([]Label, 0, len(rest)+1)
	path = append(path, from.Clone())
	path = append(path, rest...)
	return path
}

// ValidPath reports whether path is a sequence of valid degree-d Kautz
// words in which each consecutive pair is joined by a Kautz arc
// (left-shift by one symbol).
func ValidPath(path []Label, d int) bool {
	if len(path) == 0 {
		return false
	}
	for _, w := range path {
		if !w.Valid(d) {
			return false
		}
	}
	k := len(path[0])
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if len(v) != k {
			return false
		}
		for j := 0; j+1 < k; j++ {
			if u[j+1] != v[j] {
				return false
			}
		}
	}
	return true
}
