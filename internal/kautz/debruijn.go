package kautz

// The de Bruijn digraph B(d,k) is the classical single-OPS lightwave
// baseline (Sivarajan and Ramaswami 1994, reference [22] of the paper):
// d^k vertices labeled by words of length k over {0..d-1} (repeats allowed),
// arcs by left shift. Compared with KG(d,k) it has slightly fewer vertices
// per degree/diameter (d^k versus d^{k-1}(d+1)) and carries loops at the d
// constant words. We use it as the point-to-point comparator in the
// simulator experiments (T7).

import (
	"fmt"

	"otisnet/internal/digraph"
)

// DeBruijn is the de Bruijn digraph B(d,k) with its word labeling.
type DeBruijn struct {
	d, k int
	g    *digraph.Digraph
}

// DeBruijnN returns d^k, the number of vertices of B(d,k).
func DeBruijnN(d, k int) int {
	if d < 1 || k < 1 {
		panic(fmt.Sprintf("kautz: invalid de Bruijn parameters d=%d k=%d", d, k))
	}
	n := 1
	for i := 0; i < k; i++ {
		n *= d
	}
	return n
}

// NewDeBruijn constructs B(d,k).
func NewDeBruijn(d, k int) *DeBruijn {
	n := DeBruijnN(d, k)
	b := &DeBruijn{d: d, k: k, g: digraph.New(n)}
	for u := 0; u < n; u++ {
		// Word of u in base d; shifting left and appending z in [0,d).
		for z := 0; z < d; z++ {
			v := (u*d)%n + z
			b.g.AddArc(u, v)
		}
	}
	return b
}

// Degree returns d.
func (b *DeBruijn) Degree() int { return b.d }

// N returns the number of vertices.
func (b *DeBruijn) N() int { return b.g.N() }

// Digraph returns the underlying digraph (treat as read-only).
func (b *DeBruijn) Digraph() *digraph.Digraph { return b.g }

// LabelOf returns the base-d word of vertex u, most significant symbol
// first.
func (b *DeBruijn) LabelOf(u int) Label {
	w := make(Label, b.k)
	for i := b.k - 1; i >= 0; i-- {
		w[i] = byte(u % b.d)
		u /= b.d
	}
	return w
}

// Index returns the vertex of a de Bruijn word.
func (b *DeBruijn) Index(w Label) int {
	if len(w) != b.k {
		panic("kautz: wrong de Bruijn word length")
	}
	u := 0
	for _, x := range w {
		if int(x) >= b.d {
			panic("kautz: de Bruijn symbol out of range")
		}
		u = u*b.d + int(x)
	}
	return u
}
