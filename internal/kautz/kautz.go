// Package kautz implements the Kautz digraph KG(d,k) (Kautz 1968), its
// loop-augmented variant KG⁺(d,k) used by the stack-Kautz network, the
// label-induced shortest-path routing the paper highlights (§2.5), the
// multipath fault-tolerant routing of Imase, Soneoka and Okada (paths of
// length at most k+2 surviving up to d-1 faults), and the de Bruijn digraph
// B(d,k) used as the single-OPS baseline of Sivarajan and Ramaswami.
package kautz

import (
	"fmt"

	"otisnet/internal/digraph"
)

// Label is a Kautz word: a sequence (x1, ..., xk) over the alphabet
// {0, ..., d} with consecutive symbols distinct. Labels are also used for de
// Bruijn words, where the alphabet is {0, ..., d-1} and repeats are allowed.
type Label []byte

// String renders the label as the digit string the paper uses in Fig. 6 and
// Fig. 10 (e.g. "120" for the word (1,2,0)).
func (l Label) String() string {
	s := make([]byte, len(l))
	for i, x := range l {
		if x < 10 {
			s[i] = '0' + x
		} else {
			s[i] = 'a' + x - 10
		}
	}
	return string(s)
}

// Equal reports whether two labels are identical words.
func (l Label) Equal(m Label) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the label.
func (l Label) Clone() Label { return append(Label(nil), l...) }

// Valid reports whether l is a valid Kautz word of degree d: length >= 1,
// symbols in [0, d], and no two consecutive symbols equal.
func (l Label) Valid(d int) bool {
	if len(l) == 0 {
		return false
	}
	for i, x := range l {
		if int(x) > d {
			return false
		}
		if i > 0 && l[i-1] == x {
			return false
		}
	}
	return true
}

// N returns the number of vertices of KG(d,k): d^{k-1} * (d+1).
func N(d, k int) int {
	if d < 1 || k < 1 {
		panic(fmt.Sprintf("kautz: invalid parameters d=%d k=%d", d, k))
	}
	n := d + 1
	for i := 1; i < k; i++ {
		n *= d
	}
	return n
}

// Graph is the Kautz digraph KG(d,k) together with its word labeling.
// Vertices are indexed 0..N-1 in the lexicographic rank order of their
// words (see Index/LabelOf).
type Graph struct {
	d, k int
	g    *digraph.Digraph
}

// New constructs KG(d,k): degree d, diameter k, N = d^{k-1}(d+1) vertices.
func New(d, k int) *Graph {
	n := N(d, k)
	kg := &Graph{d: d, k: k, g: digraph.New(n)}
	for u := 0; u < n; u++ {
		w := kg.LabelOf(u)
		for _, v := range kg.neighbors(w) {
			kg.g.AddArc(u, kg.Index(v))
		}
	}
	return kg
}

// Degree returns d.
func (kg *Graph) Degree() int { return kg.d }

// DiameterBound returns k, which the paper states (and the tests verify) is
// the exact diameter of KG(d,k).
func (kg *Graph) DiameterBound() int { return kg.k }

// N returns the number of vertices.
func (kg *Graph) N() int { return kg.g.N() }

// Digraph returns the underlying digraph (owned by the Graph; treat as
// read-only).
func (kg *Graph) Digraph() *digraph.Digraph { return kg.g }

// WithLoops returns KG⁺(d,k): a copy of the digraph with one loop per
// vertex, so every vertex has degree d+1. This is the base digraph of the
// stack-Kautz network (Definition 4).
func (kg *Graph) WithLoops() *digraph.Digraph { return digraph.AddLoops(kg.g) }

// neighbors lists the out-neighbors of word w: (x2, ..., xk, z), z != xk.
func (kg *Graph) neighbors(w Label) []Label {
	var out []Label
	last := w[len(w)-1]
	for z := 0; z <= kg.d; z++ {
		if byte(z) == last {
			continue
		}
		nb := make(Label, len(w))
		copy(nb, w[1:])
		nb[len(w)-1] = byte(z)
		out = append(out, nb)
	}
	return out
}

// Index returns the rank of a Kautz word. The first symbol contributes its
// value in [0, d]; each subsequent symbol contributes its rank among the d
// symbols different from its predecessor. Panics on invalid words.
func (kg *Graph) Index(w Label) int {
	if len(w) != kg.k || !w.Valid(kg.d) {
		panic(fmt.Sprintf("kautz: invalid word %v for KG(%d,%d)", w, kg.d, kg.k))
	}
	idx := int(w[0])
	for i := 1; i < kg.k; i++ {
		r := int(w[i])
		if w[i] > w[i-1] {
			r--
		}
		idx = idx*kg.d + r
	}
	return idx
}

// LabelOf returns the Kautz word of vertex u (inverse of Index).
func (kg *Graph) LabelOf(u int) Label {
	if u < 0 || u >= kg.N() {
		panic(fmt.Sprintf("kautz: vertex %d out of range", u))
	}
	w := make(Label, kg.k)
	// Peel ranks from least significant position.
	rem := u
	ranks := make([]int, kg.k)
	for i := kg.k - 1; i >= 1; i-- {
		ranks[i] = rem % kg.d
		rem /= kg.d
	}
	w[0] = byte(rem)
	for i := 1; i < kg.k; i++ {
		r := byte(ranks[i])
		if r >= w[i-1] {
			r++
		}
		w[i] = r
	}
	return w
}

// IsKautzDigraph verifies structurally that g is d-regular with
// d^{k-1}(d+1) vertices and diameter k — the defining parameters the paper
// quotes for KG(d,k).
func IsKautzDigraph(g *digraph.Digraph, d, k int) bool {
	return g.N() == N(d, k) && g.IsRegular(d) && g.Diameter() == k
}

// MooreBound returns the directed Moore bound — the maximum possible
// vertex count of a degree-d diameter-k digraph: 1 + d + d² + ... + d^k.
// The paper's §2.5 notes Kautz graphs are "optimal with respect to the
// number of nodes if d > 2": N(d,k) = d^k + d^{k-1} is the largest known
// order below this (unattainable, for d,k >= 2) bound.
func MooreBound(d, k int) int {
	if d < 1 || k < 0 {
		panic(fmt.Sprintf("kautz: invalid Moore bound parameters d=%d k=%d", d, k))
	}
	n, p := 1, 1
	for i := 0; i < k; i++ {
		p *= d
		n += p
	}
	return n
}
