package kautz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
)

func TestNCounts(t *testing.T) {
	cases := []struct{ d, k, want int }{
		{2, 1, 3}, {2, 2, 6}, {2, 3, 12}, {3, 2, 12}, {3, 3, 36},
		// The paper's §2.5 example says "KG(5,4) has N = 3750 nodes", but by
		// its own formula d^{k-1}(d+1), KG(5,4) has 5³·6 = 750 nodes; 3750
		// is KG(5,5). We encode the formula (the definition) and record the
		// erratum in EXPERIMENTS.md.
		{5, 4, 750}, {5, 5, 3750},
	}
	for _, c := range cases {
		if got := N(c.d, c.k); got != c.want {
			t.Errorf("N(%d,%d) = %d, want %d", c.d, c.k, got, c.want)
		}
	}
}

func TestNInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N(0,1) should panic")
		}
	}()
	N(0, 1)
}

func TestLabelString(t *testing.T) {
	if s := (Label{1, 2, 0}).String(); s != "120" {
		t.Fatalf("String = %q, want 120", s)
	}
	if s := (Label{11}).String(); s != "b" {
		t.Fatalf("String = %q, want b", s)
	}
}

func TestLabelValid(t *testing.T) {
	if !(Label{0, 1, 0}).Valid(2) {
		t.Fatal("010 is a valid degree-2 word")
	}
	if (Label{0, 0, 1}).Valid(2) {
		t.Fatal("001 has a repeat")
	}
	if (Label{0, 3}).Valid(2) {
		t.Fatal("symbol 3 out of alphabet {0,1,2}")
	}
	if (Label{}).Valid(2) {
		t.Fatal("empty label is invalid")
	}
}

func TestIndexLabelRoundTrip(t *testing.T) {
	for _, p := range []struct{ d, k int }{{2, 1}, {2, 3}, {3, 2}, {4, 3}} {
		kg := New(p.d, p.k)
		for u := 0; u < kg.N(); u++ {
			w := kg.LabelOf(u)
			if !w.Valid(p.d) {
				t.Fatalf("KG(%d,%d): label %v of %d invalid", p.d, p.k, w, u)
			}
			if got := kg.Index(w); got != u {
				t.Fatalf("KG(%d,%d): round trip %d -> %v -> %d", p.d, p.k, u, w, got)
			}
		}
	}
}

func TestIndexInvalidPanics(t *testing.T) {
	kg := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Index on invalid word should panic")
		}
	}()
	kg.Index(Label{0, 0})
}

func TestStructuralParameters(t *testing.T) {
	// §2.5: KG(d,k) has constant degree d and diameter k.
	for _, p := range []struct{ d, k int }{{2, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}} {
		kg := New(p.d, p.k)
		g := kg.Digraph()
		if !g.IsRegular(p.d) {
			t.Errorf("KG(%d,%d) not %d-regular", p.d, p.k, p.d)
		}
		if diam := g.Diameter(); diam != p.k {
			t.Errorf("KG(%d,%d) diameter = %d, want %d", p.d, p.k, diam, p.k)
		}
		if !IsKautzDigraph(g, p.d, p.k) {
			t.Errorf("IsKautzDigraph rejects KG(%d,%d)", p.d, p.k)
		}
	}
}

func TestNoLoopsInPlainKautz(t *testing.T) {
	kg := New(3, 2)
	if kg.Digraph().LoopCount() != 0 {
		t.Fatal("KG(d,k) must have no loops (consecutive symbols differ)")
	}
}

func TestWithLoops(t *testing.T) {
	kg := New(3, 2)
	gl := kg.WithLoops()
	if gl.LoopCount() != kg.N() {
		t.Fatal("KG+ must have a loop at every vertex")
	}
	for u := 0; u < gl.N(); u++ {
		if gl.OutDegree(u) != 4 {
			t.Fatalf("KG+(3,2) vertex %d out-degree %d, want d+1=4", u, gl.OutDegree(u))
		}
	}
}

func TestLineDigraphEquivalenceFig6(t *testing.T) {
	// Fig. 6: KG(2,1) = K3, KG(2,2) = L(K3), KG(2,3) = L²(K3).
	for k := 1; k <= 3; k++ {
		kg := New(2, k)
		l := digraph.LineDigraphPower(digraph.Complete(3), k-1)
		if !digraph.Isomorphic(kg.Digraph(), l) {
			t.Errorf("KG(2,%d) not isomorphic to L^%d(K3)", k, k-1)
		}
	}
	// And for degree 3 as an extra check.
	if !digraph.Isomorphic(New(3, 2).Digraph(), digraph.LineDigraph(digraph.Complete(4))) {
		t.Error("KG(3,2) not isomorphic to L(K4)")
	}
}

func TestEulerianAndHamiltonian(t *testing.T) {
	// §2.5: "It is both Eulerian and Hamiltonian".
	for _, p := range []struct{ d, k int }{{2, 2}, {2, 3}, {3, 2}} {
		kg := New(p.d, p.k)
		if !kg.Digraph().IsEulerian() {
			t.Errorf("KG(%d,%d) should be Eulerian", p.d, p.k)
		}
		cyc := kg.Digraph().HamiltonianCycle()
		if cyc == nil || !kg.Digraph().IsHamiltonianCycle(cyc) {
			t.Errorf("KG(%d,%d) should be Hamiltonian", p.d, p.k)
		}
	}
}

func TestOverlapAndDistance(t *testing.T) {
	from := Label{1, 2, 0}
	to := Label{2, 0, 1}
	if ov := Overlap(from, to); ov != 2 {
		t.Fatalf("Overlap = %d, want 2", ov)
	}
	if d := Distance(from, to); d != 1 {
		t.Fatalf("Distance = %d, want 1", d)
	}
	if d := Distance(from, from); d != 0 {
		t.Fatal("self distance should be 0")
	}
}

func TestRouteEndpointsAndValidity(t *testing.T) {
	kg := New(3, 3)
	from := kg.LabelOf(5)
	to := kg.LabelOf(29)
	p := Route(from, to)
	if !p[0].Equal(from) || !p[len(p)-1].Equal(to) {
		t.Fatalf("route endpoints wrong: %v", p)
	}
	if !ValidPath(p, 3) {
		t.Fatalf("invalid route %v", p)
	}
}

func TestRouteMatchesBFSDistance(t *testing.T) {
	// The label-induced distance must equal the true shortest-path distance.
	for _, p := range []struct{ d, k int }{{2, 3}, {3, 2}, {3, 3}} {
		kg := New(p.d, p.k)
		g := kg.Digraph()
		for u := 0; u < kg.N(); u++ {
			dist := g.BFS(u)
			wu := kg.LabelOf(u)
			for v := 0; v < kg.N(); v++ {
				if got := Distance(wu, kg.LabelOf(v)); got != dist[v] {
					t.Fatalf("KG(%d,%d) dist(%d,%d): label %d, BFS %d",
						p.d, p.k, u, v, got, dist[v])
				}
			}
		}
	}
}

func TestRouteVia(t *testing.T) {
	kg := New(2, 3)
	from := kg.LabelOf(0)
	to := kg.LabelOf(7)
	for z := byte(0); z <= 2; z++ {
		p := RouteVia(from, to, z)
		if from[len(from)-1] == z {
			if p != nil {
				t.Fatalf("RouteVia with z == last symbol should be nil")
			}
			continue
		}
		if !ValidPath(p, 2) {
			t.Fatalf("invalid detour path %v", p)
		}
		if !p[len(p)-1].Equal(to) {
			t.Fatalf("detour does not reach destination: %v", p)
		}
		if len(p)-1 > 3+1 {
			t.Fatalf("detour too long: %d hops", len(p)-1)
		}
	}
}

func TestValidPathRejects(t *testing.T) {
	if ValidPath(nil, 2) {
		t.Fatal("empty path should be invalid")
	}
	bad := []Label{{0, 1}, {0, 2}} // not a shift
	if ValidPath(bad, 2) {
		t.Fatal("non-shift step should be invalid")
	}
	repeat := []Label{{0, 0}}
	if ValidPath(repeat, 2) {
		t.Fatal("invalid word should be rejected")
	}
}

func TestCandidatePathsProperties(t *testing.T) {
	kg := New(3, 2)
	from := kg.LabelOf(1)
	to := kg.LabelOf(10)
	paths := CandidatePaths(3, from, to)
	if len(paths) < 3 {
		t.Fatalf("want at least d candidate paths, got %d", len(paths))
	}
	for i, p := range paths {
		if !ValidPath(p, 3) {
			t.Fatalf("candidate %d invalid: %v", i, p)
		}
		if !p[0].Equal(from) || !p[len(p)-1].Equal(to) {
			t.Fatalf("candidate %d endpoints wrong: %v", i, p)
		}
		if pathLen(p) > 2+2 {
			t.Fatalf("candidate %d exceeds k+2 hops: %v", i, p)
		}
		if i > 0 && len(paths[i-1]) > len(p) {
			t.Fatal("candidates not sorted by length")
		}
	}
}

func TestRouteAvoidingNoFaults(t *testing.T) {
	kg := New(2, 3)
	from, to := kg.LabelOf(2), kg.LabelOf(9)
	p, viaFamily := kg.RouteAvoiding(from, to, func(Label) bool { return false })
	if !viaFamily {
		t.Fatal("fault-free routing should use the candidate family")
	}
	if pathLen(p) != Distance(from, to) {
		t.Fatal("fault-free route should be shortest")
	}
}

func TestRouteAvoidingSelf(t *testing.T) {
	kg := New(2, 2)
	w := kg.LabelOf(3)
	p, _ := kg.RouteAvoiding(w, w, func(Label) bool { return true })
	if len(p) != 1 || !p[0].Equal(w) {
		t.Fatalf("self route = %v", p)
	}
}

// The paper's fault-tolerance claim (T6): with up to d-1 faulty nodes, a
// path of length at most k+2 survives. Verified by randomized injection.
func TestFaultToleranceClaimKPlus2(t *testing.T) {
	for _, pr := range []struct{ d, k int }{{2, 2}, {2, 3}, {3, 2}, {3, 3}} {
		kg := New(pr.d, pr.k)
		rng := rand.New(rand.NewSource(int64(pr.d*100 + pr.k)))
		for trial := 0; trial < 200; trial++ {
			u := rng.Intn(kg.N())
			v := rng.Intn(kg.N())
			if u == v {
				continue
			}
			// Choose up to d-1 faulty nodes distinct from u, v.
			faulty := map[int]bool{}
			for len(faulty) < pr.d-1 {
				f := rng.Intn(kg.N())
				if f != u && f != v {
					faulty[f] = true
				}
			}
			fs := func(w Label) bool { return faulty[kg.Index(w)] }
			p, _ := kg.RouteAvoiding(kg.LabelOf(u), kg.LabelOf(v), fs)
			if p == nil {
				t.Fatalf("KG(%d,%d): no surviving path %d->%d with faults %v",
					pr.d, pr.k, u, v, faulty)
			}
			if pathLen(p) > pr.k+2 {
				t.Fatalf("KG(%d,%d): surviving path %d->%d has %d hops > k+2",
					pr.d, pr.k, u, v, pathLen(p))
			}
			for _, w := range p[1 : len(p)-1] {
				if fs(w) {
					t.Fatalf("path passes through faulty node %v", w)
				}
			}
		}
	}
}

func TestDeBruijnStructure(t *testing.T) {
	b := NewDeBruijn(2, 3)
	if b.N() != 8 {
		t.Fatalf("B(2,3) n = %d, want 8", b.N())
	}
	if !b.Digraph().IsRegular(2) {
		t.Fatal("B(2,3) should be 2-regular")
	}
	if d := b.Digraph().Diameter(); d != 3 {
		t.Fatalf("B(2,3) diameter = %d, want 3", d)
	}
	if b.Digraph().LoopCount() != 2 {
		t.Fatalf("B(2,3) should have exactly d=2 loops (constant words)")
	}
}

func TestDeBruijnLabelRoundTrip(t *testing.T) {
	b := NewDeBruijn(3, 2)
	for u := 0; u < b.N(); u++ {
		if got := b.Index(b.LabelOf(u)); got != u {
			t.Fatalf("round trip %d -> %d", u, got)
		}
	}
}

func TestMooreBound(t *testing.T) {
	if MooreBound(2, 2) != 7 || MooreBound(3, 1) != 4 || MooreBound(2, 0) != 1 {
		t.Fatal("Moore bound values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid parameters should panic")
		}
	}()
	MooreBound(0, 1)
}

// §2.5 optimality: Kautz graphs have d^k + d^{k-1} vertices — below the
// (unattainable for d,k >= 2) Moore bound but above every other known
// construction at these degrees; in particular strictly above de Bruijn.
func TestKautzNearMooreOptimality(t *testing.T) {
	for _, p := range []struct{ d, k int }{{2, 2}, {3, 2}, {3, 3}, {4, 3}, {5, 4}} {
		n := N(p.d, p.k)
		mb := MooreBound(p.d, p.k)
		if n >= mb {
			t.Errorf("KG(%d,%d): %d vertices >= Moore bound %d?!", p.d, p.k, n, mb)
		}
		// Gap below Moore bound is exactly the lower-order terms:
		// mb - n = 1 + d + ... + d^{k-2}.
		gap := MooreBound(p.d, p.k-2+1) - 0 // 1 + d + ... + d^{k-1}
		_ = gap
		if mb-n != MooreBound(p.d, p.k-2) {
			t.Errorf("KG(%d,%d): Moore gap = %d, want %d", p.d, p.k, mb-n, MooreBound(p.d, p.k-2))
		}
		if n <= DeBruijnN(p.d, p.k) {
			t.Errorf("KG(%d,%d) should beat de Bruijn", p.d, p.k)
		}
	}
}

func TestKautzVsDeBruijnNodeAdvantage(t *testing.T) {
	// Kautz beats de Bruijn in nodes for equal degree and diameter:
	// d^{k-1}(d+1) > d^k.
	for _, p := range []struct{ d, k int }{{2, 3}, {3, 3}, {4, 2}} {
		if N(p.d, p.k) <= DeBruijnN(p.d, p.k) {
			t.Errorf("KG(%d,%d) should have more nodes than B(%d,%d)", p.d, p.k, p.d, p.k)
		}
	}
}

// Property: Distance is a metric-compatible quantity: 0 iff equal, and
// routing along Route decreases the remaining distance by 1 at every step.
func TestRouteProgressProperty(t *testing.T) {
	kg := New(3, 3)
	f := func(a, b uint16) bool {
		u := int(a) % kg.N()
		v := int(b) % kg.N()
		from, to := kg.LabelOf(u), kg.LabelOf(v)
		p := Route(from, to)
		for i, w := range p {
			if Distance(w, to) != len(p)-1-i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: arcs computed from labels coincide with the digraph adjacency.
func TestLabelAdjacencyConsistencyProperty(t *testing.T) {
	kg := New(3, 2)
	f := func(a uint16) bool {
		u := int(a) % kg.N()
		w := kg.LabelOf(u)
		for _, v := range kg.Digraph().Out(u) {
			if Distance(w, kg.LabelOf(v)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
