package kautz

import (
	"testing"
	"testing/quick"
)

func TestRoutingTableAgreesWithLabelRouting(t *testing.T) {
	// The table and the label router must produce equal-length shortest
	// paths for every pair — the §2.5 claim that labels suffice.
	kg := New(3, 2)
	tab := kg.BuildRoutingTable()
	for u := 0; u < kg.N(); u++ {
		for v := 0; v < kg.N(); v++ {
			if u == v {
				if tab.NextHop(u, v) != -1 {
					t.Fatalf("diagonal next hop should be -1")
				}
				continue
			}
			tp := tab.PathVia(u, v)
			lp := Route(kg.LabelOf(u), kg.LabelOf(v))
			if tp == nil {
				t.Fatalf("table cannot route %d -> %d", u, v)
			}
			if len(tp) != len(lp) {
				t.Fatalf("path length mismatch %d->%d: table %d, label %d",
					u, v, len(tp), len(lp))
			}
		}
	}
}

func TestRoutingTablePathsAreValid(t *testing.T) {
	kg := New(2, 3)
	g := kg.Digraph()
	tab := kg.BuildRoutingTable()
	for u := 0; u < kg.N(); u++ {
		for v := 0; v < kg.N(); v++ {
			if u == v {
				continue
			}
			p := tab.PathVia(u, v)
			for i := 0; i+1 < len(p); i++ {
				if !g.HasArc(p[i], p[i+1]) {
					t.Fatalf("invalid table path %v", p)
				}
			}
		}
	}
}

func TestRoutingTableMemory(t *testing.T) {
	kg := New(2, 2) // 6 nodes
	tab := kg.BuildRoutingTable()
	if tab.MemoryBytes() != 4*36 {
		t.Fatalf("memory = %d, want 144", tab.MemoryBytes())
	}
}

// Property: table next hops always decrease the label distance by one.
func TestRoutingTableProgressProperty(t *testing.T) {
	kg := New(3, 3)
	tab := kg.BuildRoutingTable()
	f := func(a, b uint16) bool {
		u := int(a) % kg.N()
		v := int(b) % kg.N()
		if u == v {
			return true
		}
		h := tab.NextHop(u, v)
		return Distance(kg.LabelOf(h), kg.LabelOf(v)) ==
			Distance(kg.LabelOf(u), kg.LabelOf(v))-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
