package kautz

// Fault-tolerant routing. The paper (§2.5, citing Imase, Soneoka and Okada
// 1986) states that label routing "can be extended to generate a path of
// length at most k+2 which survives d-1 link or node faults". We realize
// this with a family of candidate paths: the direct label-induced path plus
// one detour path per alphabet symbol (RouteVia). The detour paths leave the
// source through distinct first arcs and, apart from short prefixes, spell
// disjoint words, so up to d-1 faulty nodes cannot kill all of them. The
// experiment harness (T6) verifies the k+2 bound under random fault
// injection; RouteAvoiding falls back to a BFS on the surviving subgraph if
// every candidate is blocked (which the experiments never observe for
// <= d-1 node faults).

import "otisnet/internal/digraph"

// CandidatePaths returns the fault-tolerance path family from from to to:
// the direct label route first, then for every alphabet symbol z (skipping
// detours that coincide with the direct route's first hop) the RouteVia
// detour, then second-order detours that shift in two detour symbols before
// heading to the destination (these cover the k+2 length budget). Paths are
// ordered by increasing length. All returned paths are valid; none repeats
// the source internally.
func CandidatePaths(d int, from, to Label) [][]Label {
	var out [][]Label
	seen := map[string]bool{}
	add := func(p []Label) {
		key := pathKey(p)
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	add(Route(from, to))
	k := len(from)
	for z := byte(0); int(z) <= d; z++ {
		if p := RouteVia(from, to, z); len(p) > 0 {
			add(p)
		}
	}
	// Two-symbol detours: from -> shift z1 -> shift z2 -> route. They give
	// paths of length at most k+2 hops and add diversity close to the source.
	for z1 := byte(0); int(z1) <= d; z1++ {
		if from[k-1] == z1 {
			continue
		}
		mid1 := make(Label, k)
		copy(mid1, from[1:])
		mid1[k-1] = z1
		for z2 := byte(0); int(z2) <= d; z2++ {
			if z2 == z1 {
				continue
			}
			p := RouteVia(mid1, to, z2)
			if p == nil {
				continue
			}
			full := append([]Label{from.Clone()}, p...)
			if pathLen(full) > k+2 {
				continue
			}
			add(full)
		}
	}
	sortByLength(out)
	return out
}

// pathKey serializes a path for duplicate detection: all words have the
// same length k, so the raw symbol concatenation is unambiguous.
func pathKey(p []Label) string {
	var b []byte
	for _, w := range p {
		b = append(b, w...)
	}
	return string(b)
}

func pathLen(p []Label) int { return len(p) - 1 }

func sortByLength(paths [][]Label) {
	// Insertion sort: the family is tiny (O(d²) paths).
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && len(paths[j]) < len(paths[j-1]); j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
		}
	}
}

// FaultSet is a predicate marking faulty vertices (by label). The source and
// destination are assumed healthy.
type FaultSet func(Label) bool

// FaultyLabels builds a FaultSet from an explicit list of faulty words.
func FaultyLabels(labels []Label) FaultSet {
	return func(w Label) bool {
		for _, f := range labels {
			if f.Equal(w) {
				return true
			}
		}
		return false
	}
}

// RouteAvoiding returns the shortest candidate path from from to to whose
// internal vertices all avoid the fault set, or — if every candidate is
// blocked — a BFS shortest path on the surviving subgraph, or nil when the
// destination is unreachable. The boolean reports whether the label-based
// candidate family sufficed (true) or the BFS fallback was needed (false).
func (kg *Graph) RouteAvoiding(from, to Label, faulty FaultSet) ([]Label, bool) {
	if from.Equal(to) {
		return []Label{from.Clone()}, true
	}
	for _, p := range CandidatePaths(kg.d, from, to) {
		ok := true
		for _, w := range p[1 : len(p)-1] {
			if faulty(w) {
				ok = false
				break
			}
		}
		if ok {
			return p, true
		}
	}
	// Fallback: exact search on the surviving subgraph.
	keep := make([]bool, kg.N())
	for u := 0; u < kg.N(); u++ {
		keep[u] = !faulty(kg.LabelOf(u))
	}
	keep[kg.Index(from)] = true
	keep[kg.Index(to)] = true
	sub, remap := digraph.InducedSubgraph(kg.g, keep)
	inv := make([]int, sub.N())
	for old, nw := range remap {
		if nw >= 0 {
			inv[nw] = old
		}
	}
	p := sub.ShortestPath(remap[kg.Index(from)], remap[kg.Index(to)])
	if p == nil {
		return nil, false
	}
	path := make([]Label, len(p))
	for i, v := range p {
		path[i] = kg.LabelOf(inv[v])
	}
	return path, false
}
