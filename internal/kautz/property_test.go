package kautz

// Route-invariant property tests (PR 5 test hardening): exhaustive
// strict-progress checks of the routing table against BFS ground truth on
// several orders, and random-fault-set checks that RouteAvoiding never
// traverses a masked vertex — at every fault count up to the d-1 the §2.5
// claim covers, not just the extreme point.

import (
	"math/rand"
	"testing"
)

// TestRouteTableAdvanceExhaustive checks, for every ordered pair of every
// listed order, that the table's next hop strictly decreases the BFS
// distance to the destination — the invariant that makes table routing
// loop-free. Ground truth is a digraph BFS, independent of the label
// arithmetic the table is tested against elsewhere.
func TestRouteTableAdvanceExhaustive(t *testing.T) {
	for _, p := range [][2]int{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}} {
		d, k := p[0], p[1]
		kg := New(d, k)
		tab := kg.BuildRoutingTable()
		g := kg.Digraph()
		rows := make([][]int, kg.N())
		for u := 0; u < kg.N(); u++ {
			rows[u] = g.BFS(u)
		}
		for u := 0; u < kg.N(); u++ {
			for v := 0; v < kg.N(); v++ {
				if u == v {
					if h := tab.NextHop(u, v); h != -1 {
						t.Fatalf("K(%d,%d): NextHop(%d,%d) = %d on the diagonal, want -1", d, k, u, v, h)
					}
					continue
				}
				h := tab.NextHop(u, v)
				if h < 0 {
					t.Fatalf("K(%d,%d): no next hop %d->%d", d, k, u, v)
				}
				if rows[h][v] != rows[u][v]-1 {
					t.Fatalf("K(%d,%d): hop %d->%d toward %d does not advance (dist %d -> %d)",
						d, k, u, h, v, rows[u][v], rows[h][v])
				}
			}
		}
	}
}

// TestRouteAvoidingRandomFaultSets drives RouteAvoiding with seeded random
// fault sets of every size up to d-1 and requires: a route exists, it is a
// valid Kautz path, its interior avoids every masked vertex, and its
// length respects the §2.5 bound of k+2 hops.
func TestRouteAvoidingRandomFaultSets(t *testing.T) {
	for _, p := range [][2]int{{3, 2}, {3, 3}, {4, 2}} {
		d, k := p[0], p[1]
		kg := New(d, k)
		rng := rand.New(rand.NewSource(int64(100*d + k)))
		for trial := 0; trial < 200; trial++ {
			u, v := rng.Intn(kg.N()), rng.Intn(kg.N())
			if u == v {
				continue
			}
			nf := 1 + rng.Intn(d-1) // 1..d-1 faults
			faulty := map[int]bool{}
			for len(faulty) < nf {
				f := rng.Intn(kg.N())
				if f != u && f != v {
					faulty[f] = true
				}
			}
			from, to := kg.LabelOf(u), kg.LabelOf(v)
			path, _ := kg.RouteAvoiding(from, to, func(w Label) bool { return faulty[kg.Index(w)] })
			if path == nil {
				t.Fatalf("K(%d,%d): no route %s->%s around %d faults", d, k, from, to, nf)
			}
			if !ValidPath(path, d) {
				t.Fatalf("K(%d,%d): invalid path %v", d, k, path)
			}
			if !path[0].Equal(from) || !path[len(path)-1].Equal(to) {
				t.Fatalf("K(%d,%d): path endpoints %v do not match %s->%s", d, k, path, from, to)
			}
			for _, w := range path[1 : len(path)-1] {
				if faulty[kg.Index(w)] {
					t.Fatalf("K(%d,%d): path %v traverses masked vertex %s", d, k, path, w)
				}
			}
			if len(path)-1 > k+2 {
				t.Fatalf("K(%d,%d): path %v has %d hops > k+2 under %d <= d-1 faults",
					d, k, path, len(path)-1, nf)
			}
		}
	}
}
