package kautz

import "testing"

// Exercise the BFS-fallback branch of RouteAvoiding, which ≤ d-1 faults
// never trigger: on KG(2,3), the fault set {2, 4} (= d faults) blocks every
// candidate path from 0 to 1, yet the surviving subgraph still connects
// them, so RouteAvoiding must fall back to an exact search and report
// viaFamily == false.
func TestRouteAvoidingBFSFallback(t *testing.T) {
	kg := New(2, 3)
	from, to := kg.LabelOf(0), kg.LabelOf(1)
	faulty := map[int]bool{2: true, 4: true}
	fs := func(w Label) bool { return faulty[kg.Index(w)] }

	// Sanity: this fault set really blocks the whole candidate family (the
	// test would otherwise silently stop covering the fallback).
	for _, p := range CandidatePaths(2, from, to) {
		blocked := false
		for _, w := range p[1 : len(p)-1] {
			if fs(w) {
				blocked = true
				break
			}
		}
		if !blocked {
			t.Fatalf("candidate %v survives; fault set no longer forces the fallback", p)
		}
	}

	path, viaFamily := kg.RouteAvoiding(from, to, fs)
	if viaFamily {
		t.Fatal("expected the BFS fallback, got a family path")
	}
	if path == nil {
		t.Fatal("fallback should find a path on the connected surviving subgraph")
	}
	if !ValidPath(path, 2) {
		t.Fatalf("fallback path invalid: %v", path)
	}
	if !path[0].Equal(from) || !path[len(path)-1].Equal(to) {
		t.Fatalf("fallback path has wrong endpoints: %v", path)
	}
	for _, w := range path[1 : len(path)-1] {
		if fs(w) {
			t.Fatalf("fallback path passes through faulty vertex %v", w)
		}
	}
}

// The fallback returns (nil, false) when the destination is cut off: fail
// every vertex except the endpoints of a distance-2 pair.
func TestRouteAvoidingUnreachable(t *testing.T) {
	kg := New(2, 2)
	var from, to Label
	for u := 0; u < kg.N() && from == nil; u++ {
		for v := 0; v < kg.N(); v++ {
			if u != v && Distance(kg.LabelOf(u), kg.LabelOf(v)) >= 2 {
				from, to = kg.LabelOf(u), kg.LabelOf(v)
				break
			}
		}
	}
	fs := func(w Label) bool { return !w.Equal(from) && !w.Equal(to) }
	path, viaFamily := kg.RouteAvoiding(from, to, fs)
	if path != nil || viaFamily {
		t.Fatalf("expected (nil, false) for a cut-off destination, got (%v, %v)", path, viaFamily)
	}
}

// CandidatePaths must stay duplicate-free (the keyed-set dedup) and sorted
// by length with the direct route first.
func TestCandidatePathsDedupAndOrder(t *testing.T) {
	for _, p := range []struct{ d, k int }{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}} {
		kg := New(p.d, p.k)
		for u := 0; u < kg.N(); u += 3 {
			for v := 0; v < kg.N(); v += 5 {
				if u == v {
					continue
				}
				from, to := kg.LabelOf(u), kg.LabelOf(v)
				cands := CandidatePaths(p.d, from, to)
				seen := map[string]bool{}
				for i, c := range cands {
					if !ValidPath(c, p.d) {
						t.Fatalf("KG(%d,%d) %s->%s: invalid candidate %v", p.d, p.k, from, to, c)
					}
					key := pathKey(c)
					if seen[key] {
						t.Fatalf("KG(%d,%d) %s->%s: duplicate candidate %v", p.d, p.k, from, to, c)
					}
					seen[key] = true
					if i > 0 && len(cands[i-1]) > len(c) {
						t.Fatalf("KG(%d,%d) %s->%s: candidates not sorted by length", p.d, p.k, from, to)
					}
				}
				if !cands[0][0].Equal(from) || pathLen(cands[0]) != Distance(from, to) {
					t.Fatalf("KG(%d,%d) %s->%s: first candidate is not the direct route", p.d, p.k, from, to)
				}
			}
		}
	}
}
