package kautz

// RoutingTable is the conventional alternative to label-induced routing:
// a precomputed next-hop table of size N×N. The paper's §2.5 point is that
// Kautz networks don't need one — Route computes shortest paths from the
// labels alone in O(k) time and O(1) state. The table exists here to make
// that trade-off measurable (BenchmarkAblationLabelVsTable): table lookup
// is O(1) per hop but costs O(N²) memory and O(N·(N+M)) build time.
type RoutingTable struct {
	n    int
	next []int32 // next[u*n+v] = first hop from u toward v; -1 on diagonal
}

// BuildRoutingTable precomputes shortest-path next hops for every ordered
// vertex pair via one BFS per source.
func (kg *Graph) BuildRoutingTable() *RoutingTable {
	n := kg.N()
	t := &RoutingTable{n: n, next: make([]int32, n*n)}
	g := kg.Digraph()
	for u := 0; u < n; u++ {
		// BFS from u, recording the first hop used to reach each vertex.
		first := make([]int32, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
			first[i] = -1
		}
		dist[u] = 0
		queue := []int{u}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range g.Out(x) {
				if dist[y] == -1 {
					dist[y] = dist[x] + 1
					if x == u {
						first[y] = int32(y)
					} else {
						first[y] = first[x]
					}
					queue = append(queue, y)
				}
			}
		}
		copy(t.next[u*n:(u+1)*n], first)
	}
	return t
}

// NextHop returns the first vertex on a shortest path from u to v, or -1
// when u == v or v is unreachable.
func (t *RoutingTable) NextHop(u, v int) int {
	return int(t.next[u*t.n+v])
}

// PathVia walks the table from u to v, returning the full vertex path.
func (t *RoutingTable) PathVia(u, v int) []int {
	path := []int{u}
	for u != v {
		h := t.NextHop(u, v)
		if h < 0 {
			return nil
		}
		path = append(path, h)
		u = h
	}
	return path
}

// MemoryBytes returns the table's storage footprint.
func (t *RoutingTable) MemoryBytes() int { return 4 * len(t.next) }
