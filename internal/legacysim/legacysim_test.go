package legacysim_test

// Smoke tests for the frozen reference engine itself. legacysim is the
// oracle every compiled-engine equivalence suite and the differential fuzz
// target compare against, so the oracle needs two guards of its own: a
// golden scenario pinning its metrics to hard-coded values (the oracle
// must never drift — if it moves, every "bit-for-bit" claim silently moves
// with it), and inclusion in the -race CI step (these tests are what -race
// instruments). The golden values were produced by this engine at the
// commit that froze it and are, by construction, also the compiled
// engine's values; TestGoldenScenariosMatchCompiledEngine closes that
// triangle.

import (
	"testing"

	"otisnet/internal/legacysim"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

// goldenCase pins one scenario: SK(3,2,2) under 0.3 uniform load, 300+300
// slots, across the three engine modes (plain store-and-forward,
// hot-potato deflection, WDM with a bounded queue).
type goldenCase struct {
	name string
	cfg  sim.Config
	want sim.Metrics
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "store-and-forward",
			cfg:  sim.Config{Seed: 42},
			want: sim.Metrics{Slots: 333, Injected: 1699, Delivered: 1699,
				TotalLatency: 24121, TotalHops: 2604, PeakQueue: 36},
		},
		{
			name: "deflection",
			cfg:  sim.Config{Seed: 43, Deflection: true},
			want: sim.Metrics{Slots: 392, Injected: 1637, Delivered: 1637, Deflections: 529,
				TotalLatency: 60808, TotalHops: 3292, PeakQueue: 74},
		},
		{
			name: "wdm-bounded",
			cfg:  sim.Config{Seed: 44, Wavelengths: 2, MaxQueue: 4},
			want: sim.Metrics{Slots: 301, Injected: 1657, Delivered: 1607, Dropped: 50,
				TotalLatency: 3654, TotalHops: 2414, PeakQueue: 4},
		},
	}
}

func goldenTopology() sim.Topology {
	return sim.NewStackTopology(stackkautz.New(3, 2, 2).StackGraph())
}

func TestGoldenScenarioMetricsPinned(t *testing.T) {
	topo := goldenTopology()
	for _, tc := range goldenCases() {
		got := legacysim.Run(topo, sim.UniformTraffic{Rate: 0.3}, 300, 300, tc.cfg)
		if got != tc.want {
			t.Errorf("%s: oracle metrics moved:\ngot  %#v\nwant %#v", tc.name, got, tc.want)
		}
	}
}

// TestGoldenScenariosMatchCompiledEngine closes the triangle: the pinned
// oracle values are also what the live compiled engine produces.
func TestGoldenScenariosMatchCompiledEngine(t *testing.T) {
	topo := goldenTopology()
	for _, tc := range goldenCases() {
		if got := sim.Run(topo, sim.UniformTraffic{Rate: 0.3}, 300, 300, tc.cfg); got != tc.want {
			t.Errorf("%s: compiled engine disagrees with the pinned oracle:\ngot  %#v\nwant %#v", tc.name, got, tc.want)
		}
	}
}

// TestEngineConservation smoke-checks the oracle's own bookkeeping
// invariant on a fresh run: injected == delivered + dropped + backlog.
func TestEngineConservation(t *testing.T) {
	topo := goldenTopology()
	e := legacysim.NewEngine(topo, sim.Config{Seed: 7})
	e.Inject(0, 5)
	e.Inject(3, 1)
	for s := 0; s < 50; s++ {
		e.Step()
	}
	m := e.Metrics()
	if m.Injected != 2 || m.Delivered+m.Dropped+m.Backlog != m.Injected {
		t.Fatalf("conservation violated: %+v", m)
	}
	if m.Delivered == 0 {
		t.Fatalf("nothing delivered after 50 slots: %+v", m)
	}
}
