// Package legacysim freezes the pre-compiled-topology simulation engine as
// a regression oracle. It is a line-for-line port of the interface-dispatch
// engine (per-slot O(N) queue scan, O(M) coupler clear, Heads scan on
// delivery) that internal/sim replaced with the compiled-topology core.
// The port keeps the exact phase structure and iteration order, so for any
// (topology, traffic, seed, config) its metrics — and its per-delivery
// OnDeliver event stream — define the bit-for-bit contract the compiled
// engine must reproduce. It is imported only by tests; nothing in the
// production tree depends on it.
package legacysim

import (
	"math/rand"

	"otisnet/internal/sim"
)

// Engine is the frozen reference engine. See sim.Engine for the live
// counterpart; the exported surface here is the subset the equivalence
// tests drive (Inject, Step, Metrics, OnDeliver).
type Engine struct {
	topo    sim.Topology
	cfg     sim.Config
	rng     *rand.Rand
	queues  []ring
	rr      []int
	nextID  int
	slot    int
	backlog int
	metrics sim.Metrics

	requests  []txRequest
	byCoupler [][]int
	granted   [][]txRequest
	winners   []bool

	dyn             sim.DynamicTopology
	recovering      bool
	recoverStart    int
	recoverBaseline int

	// OnDeliver mirrors sim.Engine.OnDeliver: invoked per delivered message
	// with its final hop count and the delivery slot.
	OnDeliver func(msg sim.Message, slot int)
}

// wavelengths mirrors sim.Config.wavelengths.
func wavelengths(c sim.Config) int {
	if c.Wavelengths < 1 {
		return 1
	}
	return c.Wavelengths
}

// NewEngine prepares the reference simulation over the topology.
func NewEngine(topo sim.Topology, cfg sim.Config) *Engine {
	e := &Engine{
		topo:      topo,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		queues:    make([]ring, topo.Nodes()),
		rr:        make([]int, topo.Couplers()),
		byCoupler: make([][]int, topo.Couplers()),
		granted:   make([][]txRequest, topo.Couplers()),
		winners:   make([]bool, topo.Nodes()),
	}
	if dyn, ok := topo.(sim.DynamicTopology); ok {
		dyn.Reset()
		e.dyn = dyn
	}
	return e
}

// Metrics returns a snapshot of the accumulated metrics.
func (e *Engine) Metrics() sim.Metrics {
	m := e.metrics
	m.Slots = e.slot
	m.Backlog = e.backlog
	if e.recovering {
		m.RecoverySlots += e.slot - e.recoverStart
	}
	return m
}

// Inject enqueues a message at its source, honoring MaxQueue.
func (e *Engine) Inject(src, dst int) {
	if src == dst {
		return
	}
	e.metrics.Injected++
	e.enqueue(src, sim.Message{ID: e.nextID, Src: src, Dst: dst, Born: e.slot})
	e.nextID++
}

func (e *Engine) enqueue(node int, msg sim.Message) {
	if e.cfg.MaxQueue > 0 && e.queues[node].len() >= e.cfg.MaxQueue {
		e.metrics.Dropped++
		return
	}
	e.queues[node].push(msg)
	e.backlog++
	if e.queues[node].len() > e.metrics.PeakQueue {
		e.metrics.PeakQueue = e.queues[node].len()
	}
}

func (e *Engine) dequeue(node int) sim.Message {
	e.backlog--
	return e.queues[node].pop()
}

// Step advances the reference simulation by one slot, with the original
// per-slot O(N) queue scan, O(M) scratch clear and Heads-scan delivery
// check.
func (e *Engine) Step() {
	if e.dyn != nil {
		if ch := e.dyn.Advance(e.slot); ch.Changed {
			e.applyTopologyChange(ch)
		}
	}

	e.requests = e.requests[:0]
	for c := range e.byCoupler {
		e.byCoupler[c] = e.byCoupler[c][:0]
		e.granted[c] = e.granted[c][:0]
	}
	for u := 0; u < e.topo.Nodes(); u++ {
		if e.queues[u].len() == 0 {
			continue
		}
		msg := e.queues[u].front()
		c, hop := e.topo.NextCoupler(u, msg.Dst)
		if c < 0 {
			e.dequeue(u)
			e.metrics.Dropped++
			e.metrics.Unroutable++
			continue
		}
		e.requests = append(e.requests, txRequest{node: u, coupler: c, nextHop: hop})
		e.byCoupler[c] = append(e.byCoupler[c], len(e.requests)-1)
	}

	w := wavelengths(e.cfg)
	for c := 0; c < e.topo.Couplers(); c++ {
		idxs := e.byCoupler[c]
		if len(idxs) == 0 {
			continue
		}
		sortByRRKey(idxs, e.requests, e.rr[c], e.topo.Nodes())
		take := w
		if take > len(idxs) {
			take = len(idxs)
		}
		for _, i := range idxs[:take] {
			e.granted[c] = append(e.granted[c], e.requests[i])
			e.winners[e.requests[i].node] = true
		}
		e.rr[c] = (e.requests[idxs[take-1]].node + 1) % e.topo.Nodes()
	}

	if e.cfg.Deflection {
		for _, r := range e.requests {
			if e.winners[r.node] {
				continue
			}
			for _, c := range e.topo.OutCouplers(r.node) {
				if len(e.granted[c]) >= w {
					continue
				}
				msg := e.queues[r.node].front()
				bestHop, bestDist := -1, 1<<30
				for _, h := range e.topo.Heads(c) {
					if d := e.topo.Distance(h, msg.Dst); d >= 0 && d < bestDist {
						bestDist = d
						bestHop = h
					}
				}
				if bestHop < 0 {
					continue
				}
				e.granted[c] = append(e.granted[c], txRequest{node: r.node, coupler: c, nextHop: bestHop})
				e.winners[r.node] = true
				e.metrics.Deflections++
				break
			}
		}
	}

	for c := 0; c < e.topo.Couplers(); c++ {
		for _, r := range e.granted[c] {
			msg := e.dequeue(r.node)
			msg.Hops++
			delivered := false
			for _, h := range e.topo.Heads(r.coupler) {
				if h == msg.Dst {
					delivered = true
					break
				}
			}
			if delivered {
				e.metrics.Delivered++
				e.metrics.TotalLatency += e.slot + 1 - msg.Born
				e.metrics.TotalHops += msg.Hops
				if e.OnDeliver != nil {
					e.OnDeliver(msg, e.slot+1)
				}
			} else {
				e.enqueue(r.nextHop, msg)
			}
		}
	}
	for _, r := range e.requests {
		e.winners[r.node] = false
	}
	e.slot++
	if e.recovering && e.backlog <= e.recoverBaseline {
		e.metrics.RecoverySlots += e.slot - e.recoverStart
		e.recovering = false
	}
}

func (e *Engine) applyTopologyChange(ch sim.TopologyChange) {
	disrupted := false
	for _, u := range ch.FailedNodes {
		for e.queues[u].len() > 0 {
			e.dequeue(u)
			e.metrics.Dropped++
			e.metrics.LostToFaults++
			disrupted = true
		}
	}
	if ch.EntryChanged != nil {
		for u := 0; u < e.topo.Nodes(); u++ {
			for i := 0; i < e.queues[u].len(); i++ {
				dst := e.queues[u].at(i).Dst
				if !ch.EntryChanged(u, dst) {
					continue
				}
				disrupted = true
				if c, _ := e.topo.NextCoupler(u, dst); c >= 0 {
					e.metrics.Reroutes++
				}
			}
		}
	}
	if !disrupted {
		return
	}
	if !e.recovering {
		e.recovering = true
		e.recoverStart = e.slot
	}
	e.recoverBaseline = e.backlog
}

type txRequest struct {
	node    int
	coupler int
	nextHop int
}

// sortByRRKey is the original comparator-recomputing insertion sort.
func sortByRRKey(idxs []int, requests []txRequest, cursor, n int) {
	key := func(i int) int { return (requests[i].node - cursor + n) % n }
	for a := 1; a < len(idxs); a++ {
		for b := a; b > 0 && key(idxs[b]) < key(idxs[b-1]); b-- {
			idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
		}
	}
}

// Run executes a full reference simulation, mirroring sim.Run.
func Run(topo sim.Topology, traffic sim.Traffic, slots, drain int, cfg sim.Config) sim.Metrics {
	e := NewEngine(topo, cfg)
	var buf []sim.Injection
	for s := 0; s < slots; s++ {
		buf = traffic.Generate(buf[:0], s, topo.Nodes(), e.rng)
		for _, inj := range buf {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
	}
	for s := 0; s < drain && e.Metrics().Backlog > 0; s++ {
		e.Step()
	}
	return e.Metrics()
}

// ring is the original circular-buffer FIFO.
type ring struct {
	buf  []sim.Message
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) front() *sim.Message { return &r.buf[r.head] }

func (r *ring) at(i int) *sim.Message {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *ring) push(m sim.Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = m
	r.n++
}

func (r *ring) pop() sim.Message {
	m := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return m
}

func (r *ring) grow() {
	capNew := 2 * len(r.buf)
	if capNew < 4 {
		capNew = 4
	}
	buf := make([]sim.Message, capNew)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf, r.head = buf, 0
}
