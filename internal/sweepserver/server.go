// Package sweepserver exposes the sweep service layer over HTTP/JSON:
// submit a scenario grid, stream its per-point results as NDJSON while
// workers complete them, poll job status, cancel a running grid, and read
// result-cache statistics. It is the `netsim serve` subcommand's engine
// room. Jobs run on a sweep.Runner whose workers reuse compiled engines
// per topology, and every completed point flows through the shared
// content-addressed cache (internal/sweepcache), so repeated or
// overlapping submissions answer from cache instead of simulating again.
//
// API (all under /api/v1):
//
//	POST /api/v1/sweeps        — submit a GridSpec; returns {id, points}
//	GET  /api/v1/sweeps        — list jobs
//	GET  /api/v1/sweeps/{id}   — job status
//	GET  /api/v1/sweeps/{id}/stream — NDJSON, one line per completed point
//	                             (already-completed points replay first)
//	GET  /api/v1/sweeps/{id}/curve  — aggregated curve (completed jobs)
//	POST /api/v1/sweeps/{id}/cancel — stop handing out points
//	GET  /api/v1/cache/stats   — sweepcache counters
//	GET  /api/v1/observe       — one-call observability snapshot: every
//	                             registry instrument, cache hit rate, and
//	                             live per-job progress with throughput
//	GET  /metrics              — Prometheus text exposition of the shared
//	                             obs registry (and /debug/pprof/ when the
//	                             server is built with Pprof set)
//
// Distributed execution (internal/coordinator): a grid submitted with
// "shards" > 0 is not run in-process — its points split into leased
// shards executed by `netsim work` processes over the worker protocol
// the server also mounts:
//
//	POST /api/v1/leases/acquire    — worker asks for a shard lease
//	POST /api/v1/leases/renew      — keep a lease alive
//	POST /api/v1/leases/complete   — report a shard's result rows
//	POST /api/v1/workers/heartbeat — idle-worker liveness
//
// Jobs are in-memory; the cache is what persists across restarts. A
// resubmitted grid after a restart replays instantly from the cache.
package sweepserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"otisnet/internal/coordinator"
	"otisnet/internal/export"
	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
)

// Server owns the job table. Construct with New; serve Handler().
type Server struct {
	// Pprof opts the net/http/pprof handlers into Handler's mux (under
	// /debug/pprof/). Set before calling Handler.
	Pprof bool
	// Logger receives job-lifecycle events (submitted/done/canceled) with
	// a job_id attribute on every record; nil means slog.Default().
	Logger *slog.Logger
	// Coord executes distributed submissions (GridSpec.Shards > 0) over
	// the worker-lease protocol; Handler mounts its endpoints. New
	// installs a default-configured coordinator — replace it before the
	// first submission to tune lease TTLs (tests use short ones).
	Coord *coordinator.Coordinator

	runner sweep.Runner
	cache  *sweepcache.Cache

	mu   sync.Mutex
	jobs map[string]*job
	seq  int

	// topos reuses built-and-validated topologies across submissions,
	// keyed by canonical spec. Built topologies are read-only (fault
	// scenarios wrap them per engine), so jobs share them freely — exactly
	// as CLI sweep workers share one base topology. Reuse also keeps
	// sweep.TopologyFingerprint's per-value memo bounded by the distinct
	// specs ever submitted, instead of growing with every request.
	topoMu sync.Mutex
	topos  map[sweep.TopoSpec]sweep.Topology
}

// New builds a server running grids on runner, caching through cache (a
// sweepcache.NewMemory() when nil).
func New(runner sweep.Runner, cache *sweepcache.Cache) *Server {
	if cache == nil {
		cache = sweepcache.NewMemory()
	}
	return &Server{
		Coord:  coordinator.New(coordinator.Config{}),
		runner: runner,
		cache:  cache,
		jobs:   make(map[string]*job),
		topos:  make(map[sweep.TopoSpec]sweep.Topology),
	}
}

// buildTopo returns the memoized topology for a spec, building and
// validating it on first use.
func (s *Server) buildTopo(ts sweep.TopoSpec) (sweep.Topology, error) {
	key := ts.Canonical()
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	if topo, ok := s.topos[key]; ok {
		return topo, nil
	}
	topo, err := buildAndCheck(key)
	if err != nil {
		return sweep.Topology{}, err
	}
	s.topos[key] = topo
	return topo, nil
}

// job states.
const (
	stateRunning  = "running"
	stateDone     = "done"
	stateCanceled = "canceled"
	// stateFailed is reached only by distributed jobs whose shard rows
	// fail to merge (a worker ran a different grid definition); in-process
	// runs cannot produce conflicting rows.
	stateFailed = "failed"
)

// StreamEvent is one NDJSON line of a result stream: the point's index in
// the grid, whether it came from the cache, and the flat result row.
type StreamEvent struct {
	Index  int  `json:"index"`
	Cached bool `json:"cached"`
	sweep.Record
}

// job is one submitted grid. cond (over mu) broadcasts every append and
// the terminal state change, which is what lets any number of stream
// handlers tail the events slice without channels per subscriber.
type job struct {
	id       string
	points   []sweep.Scenario
	runner   sweep.Runner // the server runner, with any per-grid replicas override
	cancel   context.CancelFunc
	started  time.Time
	coordJob *coordinator.Job // non-nil for distributed (sharded) jobs

	mu       sync.Mutex
	cond     *sync.Cond
	events   []StreamEvent
	cached   int
	state    string
	errMsg   string         // set when state == stateFailed
	results  []sweep.Result // set when state == stateDone
	finished time.Time      // set at the terminal state change
}

// Status is the JSON status of a job. The Shards* fields appear only for
// distributed jobs; Error only for failed ones.
type Status struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	Points       int    `json:"points"`
	Done         int    `json:"done"`
	Cached       int    `json:"cached"`
	ShardsTotal  int    `json:"shards_total,omitempty"`
	ShardsDone   int    `json:"shards_done,omitempty"`
	ShardsLeased int    `json:"shards_leased,omitempty"`
	Error        string `json:"error,omitempty"`
}

func (j *job) status() Status {
	j.mu.Lock()
	st := Status{ID: j.id, State: j.state, Points: len(j.points), Done: len(j.events), Cached: j.cached, Error: j.errMsg}
	j.mu.Unlock()
	// Shard progress reads the coordinator after j.mu is released: hooks
	// take j.mu with no coordinator lock held, so the two locks must never
	// nest in the other order here.
	if j.coordJob != nil {
		p := j.coordJob.Progress()
		st.ShardsTotal, st.ShardsDone, st.ShardsLeased = p.ShardsTotal, p.ShardsDone, p.ShardsLeased
	}
	return st
}

// submit registers a grid and starts executing it, returning the job
// immediately. Grids with Shards > 0 go to the coordinator's worker
// fleet instead of the in-process runner.
func (s *Server) submit(spec GridSpec) (*job, error) {
	grid, err := spec.grid(s.buildTopo)
	if err != nil {
		return nil, err
	}
	points := grid.Points()
	if spec.Shards < 0 {
		return nil, fmt.Errorf("shards %d invalid (want >= 0)", spec.Shards)
	}
	if spec.Shards > 0 {
		return s.submitDistributed(spec, points)
	}
	runner := s.runner
	if spec.Replicas != nil {
		if r := *spec.Replicas; r < sweep.AutoReplicas {
			return nil, fmt.Errorf("replicas %d invalid (want -1 for auto, 0/1 for off, or >= 2)", r)
		}
		runner.Replicas = *spec.Replicas
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{points: points, runner: runner, cancel: cancel, state: stateRunning, started: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("s%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	serverObs.submitted.Add(1)
	serverObs.running.Add(1)
	s.logger().Info("sweep submitted", "job_id", j.id, "points", len(points), "replicas", runner.Replicas)
	go s.run(ctx, j)
	return j, nil
}

// submitDistributed hands the grid to the coordinator: points become
// leased shards executed by `netsim work` processes, accepted shard rows
// stream into the job's event log exactly like in-process progress
// events, and the merged results (bit-for-bit equal to an in-process
// RunCached) arrive through the OnDone hook. A merge failure — a worker
// ran a different grid definition — lands the job in stateFailed with
// the merge error in its status, never a panic.
func (s *Server) submitDistributed(spec GridSpec, points []sweep.Scenario) (*job, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	j := &job{points: points, state: stateRunning, started: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("s%d", s.seq)
	s.mu.Unlock()
	hooks := coordinator.Hooks{
		OnRows: func(rows []sweep.ShardResult) {
			j.mu.Lock()
			for _, row := range rows {
				j.events = append(j.events, StreamEvent{
					Index:  row.Index,
					Cached: row.Cached,
					Record: sweep.NewRecord(sweep.Result{Scenario: j.points[row.Index], Metrics: row.Metrics}),
				})
				if row.Cached {
					j.cached++
				}
			}
			j.mu.Unlock()
			j.cond.Broadcast()
		},
		OnDone: func(results []sweep.Result, err error) {
			j.mu.Lock()
			switch {
			case err == nil:
				j.state = stateDone
				j.results = results
			case errors.Is(err, coordinator.ErrCanceled):
				j.state = stateCanceled
			default:
				j.state = stateFailed
				j.errMsg = err.Error()
			}
			j.finished = time.Now()
			state, done, cached, elapsed := j.state, len(j.events), j.cached, j.finished.Sub(j.started)
			j.mu.Unlock()
			j.cond.Broadcast()
			serverObs.running.Add(-1)
			switch state {
			case stateDone:
				serverObs.completed.Add(1)
				s.logger().Info("sweep done", "job_id", j.id, "points", len(j.points), "cached", cached, "elapsed", elapsed, "distributed", true)
			case stateCanceled:
				serverObs.canceled.Add(1)
				s.logger().Info("sweep canceled", "job_id", j.id, "done", done, "points", len(j.points), "elapsed", elapsed, "distributed", true)
			default:
				s.logger().Error("sweep failed at merge", "job_id", j.id, "err", err, "distributed", true)
			}
		},
	}
	cj, err := s.Coord.Submit(j.id, points, payload, spec.Shards, spec.Priority, hooks)
	if err != nil {
		return nil, err
	}
	j.coordJob = cj
	j.cancel = func() { s.Coord.Cancel(j.id) }
	// Register only after coordJob is set: the job table is what makes j
	// visible to status/stream handlers, which read j.coordJob unlocked.
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	serverObs.submitted.Add(1)
	serverObs.running.Add(1)
	s.logger().Info("sweep submitted", "job_id", j.id, "points", len(points),
		"shards", cj.Progress().ShardsTotal, "priority", spec.Priority, "distributed", true)
	return j, nil
}

// logger returns the configured job-lifecycle logger.
func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// run executes the job's points and drives its event log.
func (s *Server) run(ctx context.Context, j *job) {
	results, err := j.runner.RunCached(ctx, j.points, s.cache, func(i int, res sweep.Result, cached bool) {
		ev := StreamEvent{Index: i, Cached: cached, Record: sweep.NewRecord(res)}
		j.mu.Lock()
		j.events = append(j.events, ev)
		if cached {
			j.cached++
		}
		j.mu.Unlock()
		j.cond.Broadcast()
	})
	j.mu.Lock()
	if err != nil {
		j.state = stateCanceled
	} else {
		j.state = stateDone
		j.results = results
	}
	j.finished = time.Now()
	done, cached, elapsed := len(j.events), j.cached, j.finished.Sub(j.started)
	j.mu.Unlock()
	j.cond.Broadcast()
	serverObs.running.Add(-1)
	if err != nil {
		serverObs.canceled.Add(1)
		s.logger().Info("sweep canceled", "job_id", j.id, "done", done, "points", len(j.points), "elapsed", elapsed)
	} else {
		serverObs.completed.Add(1)
		s.logger().Info("sweep done", "job_id", j.id, "points", len(j.points), "cached", cached, "elapsed", elapsed)
	}
}

// Handler returns the API router.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/sweeps", s.handleList)
	mux.HandleFunc("GET /api/v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/curve", s.handleCurve)
	mux.HandleFunc("POST /api/v1/sweeps/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/cache/stats", s.handleCacheStats)
	mux.HandleFunc("GET /api/v1/observe", s.handleObserve)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.Coord.Mount(mux)
	if s.Pprof {
		registerPprof(mux)
	}
	return mux
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "no such sweep", http.StatusNotFound)
	}
	return j
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec GridSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad grid spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		http.Error(w, "bad grid spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	sortStatuses(out, func(st Status) string { return st.ID })
	writeJSON(w, out)
}

// sortStatuses orders job rows by id. Ids are s<seq>, so
// shorter-then-lexicographic sorts them numerically.
func sortStatuses[T any](rows []T, id func(T) string) {
	sort.Slice(rows, func(a, b int) bool {
		ia, ib := id(rows[a]), id(rows[b])
		if len(ia) != len(ib) {
			return len(ia) < len(ib)
		}
		return ia < ib
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, j.status())
	}
}

// handleStream tails the job's event log as NDJSON: completed points
// replay first, then lines are written as workers finish points, each
// flushed immediately. The stream ends when the job reaches a terminal
// state (or the client goes away).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// A canceled request must wake the cond wait below. The broadcast takes
	// j.mu first: the condition it signals (the request context's error)
	// changes outside the lock, and a lock-free Broadcast could fire between
	// the waiter's predicate check and its Wait registration — a missed
	// wakeup that would leave the handler blocked past the disconnect.
	stop := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.cond.Broadcast()
	})
	defer stop()
	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.events) && j.state == stateRunning && r.Context().Err() == nil {
			j.cond.Wait()
		}
		events := j.events[next:]
		next += len(events)
		terminal := j.state != stateRunning
		j.mu.Unlock()
		if r.Context().Err() != nil {
			return
		}
		for _, ev := range events {
			if err := export.WriteNDJSONLine(w, ev); err != nil {
				return
			}
		}
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		// On a terminal state, one more pass drains events appended between
		// the snapshot and the state change; the empty pass after that ends
		// the stream.
		if terminal && len(events) == 0 {
			return
		}
	}
}

// handleCurve aggregates a completed job's results into curve points.
func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, results := j.state, j.results
	j.mu.Unlock()
	if state != stateDone {
		http.Error(w, fmt.Sprintf("sweep is %s; the curve needs a completed job", state), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sweep.WriteCurveJSON(w, sweep.Aggregate(results))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.cancel()
	s.logger().Info("sweep cancel requested", "job_id", j.id)
	writeJSON(w, j.status())
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.cache.Stats())
}
