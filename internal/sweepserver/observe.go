package sweepserver

// Server observability: the /metrics Prometheus exposition, the
// /api/v1/observe JSON snapshot (registry + per-job live progress +
// cache effectiveness), and the server's own job-lifecycle instruments.
// Everything reads the shared obs.Default registry the engine, sweep and
// cache layers flush into, so one scrape covers the whole process.

import (
	"net/http"
	"net/http/pprof"
	"time"

	"otisnet/internal/obs"
	"otisnet/internal/sweepcache"
)

// serverObs is the job-lifecycle metric family, registered at package
// init so /metrics exposes the families on an idle server.
var serverObs = struct {
	submitted *obs.Counter
	completed *obs.Counter
	canceled  *obs.Counter
	running   *obs.Gauge
}{
	submitted: obs.Default().Counter("netsim_server_jobs_submitted_total",
		"Sweep jobs accepted by POST /api/v1/sweeps."),
	completed: obs.Default().Counter("netsim_server_jobs_completed_total",
		"Sweep jobs that ran every point to completion."),
	canceled: obs.Default().Counter("netsim_server_jobs_canceled_total",
		"Sweep jobs that ended canceled."),
	running: obs.Default().Gauge("netsim_server_jobs_running",
		"Sweep jobs currently executing."),
}

// JobObservation is the live progress of one job as reported by
// GET /api/v1/observe: the plain Status plus wall-clock rate figures.
// Done and ElapsedSec are monotonically non-decreasing across successive
// observations of a live job.
type JobObservation struct {
	Status
	// ElapsedSec is wall-clock seconds from submission to now (frozen at
	// the terminal state change for finished jobs).
	ElapsedSec float64 `json:"elapsed_sec"`
	// PointsPerSec is Done / ElapsedSec — the job's average delivery
	// throughput including cache replays.
	PointsPerSec float64 `json:"points_per_sec"`
}

// CacheObservation is the cache block of an observe response: the
// sweepcache counters plus the derived hit rate (hits / lookups, 0 when
// nothing was looked up yet).
type CacheObservation struct {
	sweepcache.Stats
	HitRate float64 `json:"hit_rate"`
}

// Observation is the GET /api/v1/observe response body.
type Observation struct {
	Metrics obs.Snapshot     `json:"metrics"`
	Cache   CacheObservation `json:"cache"`
	Jobs    []JobObservation `json:"jobs"`
}

// observation reads one job's live progress. Status (via j.status())
// includes per-shard progress for distributed jobs, so one observe call
// covers the in-process pool and the worker fleet alike.
func (j *job) observation(now time.Time) JobObservation {
	st := j.status()
	j.mu.Lock()
	end := now
	if !j.finished.IsZero() {
		end = j.finished
	}
	started := j.started
	j.mu.Unlock()
	o := JobObservation{Status: st, ElapsedSec: end.Sub(started).Seconds()}
	if o.ElapsedSec > 0 {
		o.PointsPerSec = float64(o.Done) / o.ElapsedSec
	}
	return o
}

// handleMetrics serves the shared registry in the Prometheus text
// exposition format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// handleObserve serves the one-call JSON snapshot: every registry
// instrument, cache effectiveness, and live per-job progress (sorted
// like the job list).
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := Observation{
		Metrics: obs.Default().Snapshot(),
		Jobs:    make([]JobObservation, len(jobs)),
	}
	st := s.cache.Stats()
	out.Cache = CacheObservation{Stats: st}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		out.Cache.HitRate = float64(st.Hits) / float64(lookups)
	}
	for i, j := range jobs {
		out.Jobs[i] = j.observation(now)
	}
	sortStatuses(out.Jobs, func(o JobObservation) string { return o.ID })
	writeJSON(w, out)
}

// registerPprof wires the net/http/pprof handlers onto mux — explicit
// registration, not the package's DefaultServeMux side effect, so
// profiling stays opt-in behind the -pprof flag.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
