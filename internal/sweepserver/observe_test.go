package sweepserver_test

// Observability endpoint tests: /metrics must be valid Prometheus text
// exposition with the engine/sweep/cache/server families present, and
// /api/v1/observe must report live per-job progress that is monotone
// under concurrent jobs and a mid-flight cancel.

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
	"otisnet/internal/sweepserver"
)

// promSample matches one Prometheus text sample line (name, optional
// labels, float value).
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][-+][0-9]+)?$`)

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)

	// Families are registered at package init, so they appear before any
	// job has run — the contract the CI scrape smoke relies on.
	text := scrapeMetrics(t, ts.URL)
	for _, family := range []string{
		"# TYPE netsim_engine_scenarios_total counter",
		"# TYPE netsim_engine_slots_total counter",
		"# TYPE netsim_engine_queue_depth histogram",
		"# TYPE netsim_sweep_points_completed_total counter",
		"# TYPE netsim_sweepcache_hits_total counter",
		"# TYPE netsim_server_jobs_submitted_total counter",
		"# TYPE netsim_server_jobs_running gauge",
		"# TYPE netsim_sim_parallel_shards gauge",
		"# TYPE netsim_sim_parallel_slots_total counter",
		"# TYPE netsim_sim_parallel_imbalance_ns histogram",
	} {
		if !strings.Contains(text, family+"\n") {
			t.Errorf("idle exposition missing %q", family)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}

	// After a completed job the engine and sweep counters must have moved.
	spec := testSpec()
	st := submit(t, ts, spec)
	stream(t, ts, st.ID)
	text = scrapeMetrics(t, ts.URL)
	for _, sample := range []struct{ name, zero string }{
		{"netsim_engine_scenarios_total", "netsim_engine_scenarios_total 0"},
		{"netsim_sweep_points_completed_total", "netsim_sweep_points_completed_total 0"},
		{"netsim_server_jobs_completed_total", "netsim_server_jobs_completed_total 0"},
	} {
		if strings.Contains(text, sample.zero+"\n") {
			t.Errorf("%s still zero after a completed job", sample.name)
		}
	}
	if !strings.Contains(text, `netsim_engine_queue_depth_bucket{le="+Inf"}`) {
		t.Error("histogram exposition missing the +Inf bucket")
	}
}

func observe(t *testing.T, ts *httptest.Server) sweepserver.Observation {
	t.Helper()
	var o sweepserver.Observation
	getJSON(t, ts, "/api/v1/observe", &o)
	return o
}

// newPprofServer is newTestServer with the profiling handlers opted in.
func newPprofServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := sweepserver.New(sweep.Runner{}, sweepcache.NewMemory())
	srv.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv.Pprof = true
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestObserveProgressMonotonic runs two concurrent jobs, cancels one
// mid-flight, and polls /api/v1/observe throughout: per-job Done and
// ElapsedSec must never decrease, Done never exceeds Points, and the
// terminal observation must be consistent with the job states.
func TestObserveProgressMonotonic(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	spec.Slots = 2000
	spec.Drain = 2000
	spec.Seeds = []int64{1, 2, 3, 4}
	first := submit(t, ts, spec)

	specB := spec
	specB.Seeds = []int64{5, 6, 7, 8}
	second := submit(t, ts, specB)

	prev := map[string]sweepserver.JobObservation{}
	canceled := false
	deadline := time.Now().Add(60 * time.Second)
	for {
		o := observe(t, ts)
		if len(o.Jobs) != 2 {
			t.Fatalf("observe lists %d jobs, want 2", len(o.Jobs))
		}
		if o.Cache.HitRate < 0 || o.Cache.HitRate > 1 {
			t.Fatalf("cache hit rate %g out of [0,1]", o.Cache.HitRate)
		}
		terminal := 0
		for _, j := range o.Jobs {
			if j.Done < 0 || j.Done > j.Points {
				t.Fatalf("job %s: done %d out of range (points %d)", j.ID, j.Done, j.Points)
			}
			if j.ElapsedSec < 0 || j.PointsPerSec < 0 {
				t.Fatalf("job %s: negative rate figures %+v", j.ID, j)
			}
			if p, ok := prev[j.ID]; ok {
				if j.Done < p.Done {
					t.Fatalf("job %s: done regressed %d -> %d", j.ID, p.Done, j.Done)
				}
				if j.ElapsedSec < p.ElapsedSec {
					t.Fatalf("job %s: elapsed regressed %g -> %g", j.ID, p.ElapsedSec, j.ElapsedSec)
				}
				if p.State != "running" && j.State != p.State {
					t.Fatalf("job %s: terminal state changed %s -> %s", j.ID, p.State, j.State)
				}
			}
			prev[j.ID] = j
			if j.State != "running" {
				terminal++
			}
		}
		// Cancel the second job the first time we see any progress at all.
		if !canceled && (prev[second.ID].Done > 0 || prev[first.ID].Done > 0) {
			resp, err := http.Post(ts.URL+"/api/v1/sweeps/"+second.ID+"/cancel", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			canceled = true
		}
		if terminal == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs still running at deadline: %+v", prev)
		}
		time.Sleep(5 * time.Millisecond)
	}

	final := observe(t, ts)
	for _, j := range final.Jobs {
		switch j.ID {
		case first.ID:
			if j.State != "done" || j.Done != j.Points {
				t.Fatalf("first job terminal observation %+v", j)
			}
			if j.Done > 0 && j.ElapsedSec > 0 && j.PointsPerSec == 0 {
				t.Fatalf("finished job reports zero throughput: %+v", j)
			}
		case second.ID:
			if j.State != "done" && j.State != "canceled" {
				t.Fatalf("second job terminal observation %+v", j)
			}
		}
	}
	if final.Metrics.Counters["netsim_server_jobs_submitted_total"] < 2 {
		t.Fatalf("registry snapshot missing job submissions: %v", final.Metrics.Counters)
	}
	if final.Metrics.Gauges["netsim_server_jobs_running"] != 0 {
		t.Fatalf("jobs_running gauge nonzero after both jobs ended: %v", final.Metrics.Gauges)
	}
}

// TestPprofOptIn: the profiling handlers exist only when Pprof is set.
func TestPprofOptIn(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: status %d", resp.StatusCode)
	}

	srv := newPprofServer(t)
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with opt-in: status %d", resp.StatusCode)
	}
}
