package sweepserver_test

// The distributed path of trace workloads: a leased-shard job whose grid
// replays a trace file must reproduce the in-process run bit for bit.
// Every worker re-scans the trace at the submitted path (the file is the
// source of truth; only its fingerprint travels in cache keys), so this
// also exercises the file-visibility contract documented on
// WorkloadSpec.TraceFile.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"otisnet/internal/sweep"
	"otisnet/internal/sweepserver"
	"otisnet/internal/workload"
)

func TestDistributedTraceJobMatchesDirectRun(t *testing.T) {
	// Synthesize an event trace at a shared temp path — workers and the
	// submitting side must both read it there.
	path := filepath.Join(t.TempDir(), "day.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	synth := workload.SynthSpec{Form: workload.TraceEvents, NDJSON: true, Slots: 200, Nodes: 36, Peak: 0.4, Seed: 9}
	if err := workload.SynthesizeTrace(f, synth); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t)
	startWorkers(t, ts, 2, sweepserver.PointsFromSpec)

	spec := sweepserver.GridSpec{
		Topologies: []sweep.TopoSpec{
			{Net: "sk", S: 3, D: 2, K: 2},
			{Net: "sk", S: 6, D: 3, K: 2},
		},
		Seeds:     []int64{1, 2},
		Slots:     250,
		Drain:     250,
		Workloads: []sweepserver.WorkloadSpec{{Kind: "trace", TraceFile: path}},
		Shards:    3,
	}
	st := submit(t, ts, spec)

	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Rates) != 1 || grid.Rates[0] != 1 {
		t.Fatalf("event-trace grid rates = %v, want the forced [1]", grid.Rates)
	}
	points := grid.Points()
	want := sweep.Runner{}.Run(points)

	events := stream(t, ts, st.ID)
	if len(events) != len(points) {
		t.Fatalf("stream delivered %d events, want %d", len(events), len(points))
	}
	for _, ev := range events {
		if ev.Record != sweep.NewRecord(want[ev.Index]) {
			t.Fatalf("distributed trace point %d: %+v differs from direct run %+v",
				ev.Index, ev.Record, sweep.NewRecord(want[ev.Index]))
		}
	}

	var got sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps/"+st.ID, &got)
	if got.State != "done" || got.ShardsDone != 3 {
		t.Fatalf("terminal status %+v", got)
	}
}

// TestDistributedTraceUnreadableFileRejectedAtSubmit pins where the
// file-visibility contract is enforced: the server re-scans the trace
// while expanding the grid at submit time, so a path nobody can read is a
// 400, not a job that hangs while workers abandon unbuildable leases.
func TestDistributedTraceUnreadableFileRejectedAtSubmit(t *testing.T) {
	ts := newTestServer(t)
	startWorkers(t, ts, 1, sweepserver.PointsFromSpec)

	spec := sweepserver.GridSpec{
		Topologies: []sweep.TopoSpec{{Net: "sk", S: 3, D: 2, K: 2}},
		Workloads: []sweepserver.WorkloadSpec{
			{Kind: "trace", TraceFile: filepath.Join(t.TempDir(), "never-written.csv")},
		},
		Shards: 2,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unreadable trace file: status %d, want 400", resp.StatusCode)
	}
}
