package sweepserver

import (
	"encoding/json"
	"fmt"

	"otisnet/internal/faults"
	"otisnet/internal/sim"
	"otisnet/internal/sweep"
	"otisnet/internal/workload"
)

// GridSpec is the JSON description of a sweep grid submitted to the
// service: the serializable counterpart of sweep.Grid, with topologies,
// workloads and faults given as specs instead of live values. Zero-valued
// axes take the same defaults as sweep.Grid.Points (one 0.2-load point,
// seed 1, store-and-forward, one wavelength, 1000 slots).
type GridSpec struct {
	Topologies  []sweep.TopoSpec `json:"topologies"`
	Rates       []float64        `json:"rates,omitempty"`
	Seeds       []int64          `json:"seeds,omitempty"`
	Modes       []string         `json:"modes,omitempty"` // "sf" and/or "deflect"
	Wavelengths []int            `json:"wavelengths,omitempty"`
	MaxQueue    int              `json:"max_queue,omitempty"`
	Slots       int              `json:"slots,omitempty"`
	Drain       int              `json:"drain,omitempty"`
	Workloads   []WorkloadSpec   `json:"workloads,omitempty"`
	Faults      []FaultSpec      `json:"faults,omitempty"`
	// Replicas overrides the server's batched-dispatch setting for this
	// grid: -1 sizes batches automatically (sweep.AutoReplicas), 0 or 1
	// keeps per-scenario dispatch, >= 2 pins the batch size. Absent means
	// the server default. Results are bit-for-bit identical either way.
	Replicas *int `json:"replicas,omitempty"`
	// Shards > 0 runs the grid distributed: the point list splits into
	// this many leased shards executed by `netsim work` processes through
	// the coordinator (internal/coordinator) instead of the in-process
	// runner. Merged results are bit-for-bit identical to Shards = 0.
	Shards int `json:"shards,omitempty"`
	// Priority orders distributed jobs in the lease queue (higher first;
	// ties go to earlier submissions). Ignored when Shards is 0.
	Priority int `json:"priority,omitempty"`
}

// WorkloadSpec is the JSON form of workload.Spec. Trace workloads name a
// file: the submitting client and every worker re-expanding the grid scan
// the file at the given path themselves, so it must be readable at the
// same path on every machine that runs the job — a mismatch surfaces as a
// scan error or a cache-key mismatch at merge time, never as silently
// divergent traffic.
type WorkloadSpec struct {
	Kind      string  `json:"kind"` // uniform, transpose, hotspot, bursty, trace or multiperiod
	HotGroup  int     `json:"hot_group,omitempty"`
	Fraction  float64 `json:"fraction,omitempty"`
	MeanOn    float64 `json:"mean_on,omitempty"`
	MeanOff   float64 `json:"mean_off,omitempty"`
	OffFactor float64 `json:"off_factor,omitempty"`
	// TraceFile is the trace path for kind "trace".
	TraceFile string `json:"trace_file,omitempty"`
	// Period..RateSigma parameterize kind "multiperiod".
	Period     int     `json:"period,omitempty"`
	Amplitude  float64 `json:"amplitude,omitempty"`
	EpisodeOn  float64 `json:"episode_on,omitempty"`
	EpisodeOff float64 `json:"episode_off,omitempty"`
	RateSigma  float64 `json:"rate_sigma,omitempty"`
}

// spec validates and converts to the sweep-axis value.
func (ws WorkloadSpec) spec() (workload.Spec, error) {
	kind, err := workload.ParseKind(ws.Kind)
	if err != nil {
		return workload.Spec{}, err
	}
	switch kind {
	case workload.KindHotspot:
		if ws.Fraction < 0 || ws.Fraction > 1 {
			return workload.Spec{}, fmt.Errorf("hotspot fraction %g not in [0,1]", ws.Fraction)
		}
		if ws.HotGroup < 0 {
			return workload.Spec{}, fmt.Errorf("hotspot hot_group %d negative", ws.HotGroup)
		}
		return workload.Spec{Kind: kind, HotGroup: ws.HotGroup, Fraction: ws.Fraction}, nil
	case workload.KindBursty:
		if ws.MeanOn < 1 || ws.MeanOff < 1 || ws.OffFactor < 0 || ws.OffFactor > 1 {
			return workload.Spec{}, fmt.Errorf("bursty workload wants mean_on >= 1, mean_off >= 1 and off_factor in [0,1]")
		}
		return workload.Spec{Kind: kind, MeanOn: ws.MeanOn, MeanOff: ws.MeanOff, OffFactor: ws.OffFactor}, nil
	case workload.KindTrace:
		if ws.TraceFile == "" {
			return workload.Spec{}, fmt.Errorf("trace workload names no trace_file")
		}
		return workload.NewTraceSpec(ws.TraceFile)
	case workload.KindMultiPeriod:
		spec := workload.Spec{
			Kind: kind, Period: ws.Period, Amplitude: ws.Amplitude,
			EpisodeOn: ws.EpisodeOn, EpisodeOff: ws.EpisodeOff,
			MeanOn: ws.MeanOn, MeanOff: ws.MeanOff,
			RateSigma: ws.RateSigma, OffFactor: ws.OffFactor,
		}
		return spec, spec.Validate()
	default:
		return workload.Spec{Kind: kind}, nil
	}
}

// FaultSpec is the JSON form of faults.Spec. MTBF and MTTR select the
// stochastic transient process when both are positive; otherwise Count
// elements fail permanently at Slot. Seed pins the fault set across the
// grid's seed axis when non-zero.
type FaultSpec struct {
	Kind  string  `json:"kind"` // node, coupler or tx
	Count int     `json:"count"`
	Slot  int     `json:"slot,omitempty"`
	MTBF  float64 `json:"mtbf,omitempty"`
	MTTR  float64 `json:"mttr,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
}

// spec validates and converts to the sweep-axis value.
func (fs FaultSpec) spec() (faults.Spec, error) {
	var kind faults.Kind
	switch fs.Kind {
	case "", "node":
		kind = faults.KindNode
	case "coupler":
		kind = faults.KindCoupler
	case "tx":
		kind = faults.KindTransmitter
	default:
		return faults.Spec{}, fmt.Errorf("unknown fault kind %q (want node, coupler or tx)", fs.Kind)
	}
	if fs.Count < 0 {
		return faults.Spec{}, fmt.Errorf("fault count %d negative", fs.Count)
	}
	if (fs.MTBF > 0) != (fs.MTTR > 0) {
		return faults.Spec{}, fmt.Errorf("mtbf and mttr must be set together")
	}
	return faults.Spec{Kind: kind, Count: fs.Count, Slot: fs.Slot, MTBF: fs.MTBF, MTTR: fs.MTTR, Seed: fs.Seed}, nil
}

// PointsFromSpec expands a GridSpec JSON payload into the grid's point
// list — the coordinator.PointsBuilder used by `netsim work`. Both ends
// of the worker protocol run exactly this expansion (the server when it
// submits the job, the worker when it receives a lease), and
// TopoSpec.Build plus Grid.Points are deterministic, so the shard-row
// cache keys line up at merge time whenever the two binaries agree on
// engine semantics — and fail the merge loudly when they do not.
func PointsFromSpec(payload []byte) ([]sweep.Scenario, error) {
	var spec GridSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return nil, fmt.Errorf("sweepserver: bad grid payload: %w", err)
	}
	grid, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	return grid.Points(), nil
}

// Grid builds the live sweep.Grid: topologies are constructed and
// validated (sim.CheckTopology), modes parsed, workloads range-checked
// against every topology's group structure — the same guards cmd/netsim
// applies to its flags, so a bad submission is a 4xx, never a panic inside
// a worker goroutine.
func (gs GridSpec) Grid() (sweep.Grid, error) {
	return gs.grid(buildAndCheck)
}

// buildAndCheck is the default topology constructor: build plus the
// reachability/sanity validation.
func buildAndCheck(ts sweep.TopoSpec) (sweep.Topology, error) {
	topo, err := ts.Build()
	if err != nil {
		return sweep.Topology{}, err
	}
	if err := sim.CheckTopology(topo.Topo); err != nil {
		return sweep.Topology{}, err
	}
	return topo, nil
}

// grid is Grid with a pluggable topology constructor, so the server can
// reuse built (and already validated) topologies across submissions.
func (gs GridSpec) grid(build func(sweep.TopoSpec) (sweep.Topology, error)) (sweep.Grid, error) {
	if len(gs.Topologies) == 0 {
		return sweep.Grid{}, fmt.Errorf("grid names no topologies")
	}
	g := sweep.Grid{
		Rates:       gs.Rates,
		Seeds:       gs.Seeds,
		Wavelengths: gs.Wavelengths,
		MaxQueue:    gs.MaxQueue,
		Slots:       gs.Slots,
		Drain:       gs.Drain,
	}
	for _, r := range gs.Rates {
		if r < 0 || r > 1 {
			return sweep.Grid{}, fmt.Errorf("rate %g not a probability in [0,1]", r)
		}
	}
	for _, w := range gs.Wavelengths {
		if w < 1 {
			return sweep.Grid{}, fmt.Errorf("wavelength count %d < 1", w)
		}
	}
	for _, ts := range gs.Topologies {
		topo, err := build(ts)
		if err != nil {
			return sweep.Grid{}, err
		}
		g.Topologies = append(g.Topologies, topo)
	}
	for _, m := range gs.Modes {
		switch m {
		case "sf":
			g.Modes = append(g.Modes, sweep.StoreAndForward)
		case "deflect":
			g.Modes = append(g.Modes, sweep.Deflection)
		default:
			return sweep.Grid{}, fmt.Errorf("unknown mode %q (want sf or deflect)", m)
		}
	}
	// Hotspot hot_group is deliberately not range-checked against the
	// topologies: workload.Hotspot documents modulo-group semantics, so any
	// non-negative index is valid on every topology in a mixed-scale sweep
	// (the per-first-topology rejection this replaces contradicted that
	// contract).
	eventTraces, otherKinds := 0, 0
	for _, ws := range gs.Workloads {
		spec, err := ws.spec()
		if err != nil {
			return sweep.Grid{}, err
		}
		if spec.Kind == workload.KindTrace && spec.TraceForm == workload.TraceEvents {
			eventTraces++
		} else {
			otherKinds++
		}
		g.Workloads = append(g.Workloads, spec)
	}
	if eventTraces > 0 {
		// Event traces replay verbatim: a rate axis cannot be honored, so
		// reject one rather than emit rows whose rate column lies.
		if len(g.Rates) > 0 {
			return sweep.Grid{}, fmt.Errorf("event-form trace workloads replay verbatim; omit rates (or use a rates-form trace to scale)")
		}
		if otherKinds > 0 {
			return sweep.Grid{}, fmt.Errorf("event-form trace workloads cannot share a grid with rate-driven workloads (the rate axis applies to all)")
		}
		g.Rates = []float64{1}
	}
	for _, fs := range gs.Faults {
		spec, err := fs.spec()
		if err != nil {
			return sweep.Grid{}, err
		}
		g.Faults = append(g.Faults, spec)
	}
	return g, nil
}
