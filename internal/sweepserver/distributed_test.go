package sweepserver_test

// End-to-end tests of distributed submissions: a GridSpec with Shards > 0
// goes through the coordinator and an in-process Worker fleet speaking the
// real HTTP lease protocol against the real server handler — the same wire
// path `netsim work` uses — and must be indistinguishable from an
// in-process run to every API consumer (stream, status, curve).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"otisnet/internal/coordinator"
	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
	"otisnet/internal/sweepserver"
)

// startWorkers runs n in-process Workers against the server until the
// returned stop function is called.
func startWorkers(t *testing.T, ts *httptest.Server, n int, build coordinator.PointsBuilder) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &coordinator.Worker{
			Client: &coordinator.Client{BaseURL: ts.URL},
			Build:  build,
			Runner: sweep.Runner{Workers: 1},
			Cache:  sweepcache.NewMemory(),
			Name:   string(rune('a' + i)),
			Poll:   10 * time.Millisecond,
			Log:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	stop := func() {
		cancel()
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

func TestDistributedJobMatchesDirectRun(t *testing.T) {
	ts := newTestServer(t)
	startWorkers(t, ts, 3, sweepserver.PointsFromSpec)

	spec := testSpec()
	spec.Shards = 5
	st := submit(t, ts, spec)
	if st.ShardsTotal != 5 {
		t.Fatalf("submit status shards_total %d, want 5", st.ShardsTotal)
	}

	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	points := grid.Points()
	want := sweep.Runner{}.Run(points)

	events := stream(t, ts, st.ID)
	if len(events) != len(points) {
		t.Fatalf("stream delivered %d events, want %d", len(events), len(points))
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if seen[ev.Index] {
			t.Fatalf("stream repeated point %d", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Record != sweep.NewRecord(want[ev.Index]) {
			t.Fatalf("distributed point %d: served record %+v differs from direct run %+v",
				ev.Index, ev.Record, sweep.NewRecord(want[ev.Index]))
		}
	}

	var got sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps/"+st.ID, &got)
	if got.State != "done" || got.ShardsDone != 5 || got.Done != len(points) {
		t.Fatalf("terminal status %+v", got)
	}

	// The curve endpoint serves a distributed job like any other.
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID + "/curve")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("curve of distributed job: status %d", resp.StatusCode)
	}
	var curve []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&curve); err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatalf("distributed curve is empty")
	}
}

// TestDistributedMergeFailureSurfaces runs the fleet with a corrupted
// PointsBuilder — every worker expands the payload to a *different* grid
// (shifted slot count), so its shard rows carry wrong cache keys. The
// merge must fail the job: state "failed" with the merge error in the
// status, the stream terminating, and the curve refused. No panics.
func TestDistributedMergeFailureSurfaces(t *testing.T) {
	ts := newTestServer(t)
	skewed := func(payload []byte) ([]sweep.Scenario, error) {
		points, err := sweepserver.PointsFromSpec(payload)
		if err != nil {
			return nil, err
		}
		for i := range points {
			points[i].Slots++ // same point count, different computation
		}
		return points, nil
	}
	startWorkers(t, ts, 2, skewed)

	spec := testSpec()
	spec.Shards = 3
	st := submit(t, ts, spec)

	// The stream of a failed job terminates rather than hanging.
	stream(t, ts, st.ID)

	var got sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps/"+st.ID, &got)
	if got.State != "failed" || got.Error == "" {
		t.Fatalf("status after key-skewed fleet: %+v, want state failed with a merge error", got)
	}

	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID + "/curve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("curve of failed job: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}
}

func TestDistributedCancelPropagatesToLeases(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	spec.Shards = 4
	spec.Slots = 4000 // slow enough that the job is mid-flight when we cancel
	spec.Drain = 4000
	spec.Seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	st := submit(t, ts, spec)

	// Acquire a lease directly — we are the worker here, so the test
	// controls exactly when the cancel races the run.
	client := &coordinator.Client{BaseURL: ts.URL}
	g, ok, err := client.Acquire(context.Background(), "tester")
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}

	resp, err := http.Post(ts.URL+"/api/v1/sweeps/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The cancel invalidates the outstanding lease at the protocol level.
	if _, err := client.Renew(context.Background(), "tester", g); !errors.Is(err, coordinator.ErrLeaseLost) {
		t.Fatalf("renew after cancel: %v, want ErrLeaseLost", err)
	}
	var got sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps/"+st.ID, &got)
	if got.State != "canceled" {
		t.Fatalf("state %q after cancel, want canceled", got.State)
	}
	// And the stream terminates.
	stream(t, ts, st.ID)
}

func TestDistributedBadShardCount(t *testing.T) {
	ts := newTestServer(t)
	body := []byte(`{"topologies":[{"net":"sk","s":3,"d":2,"k":2}],"shards":-1}`)
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative shard count: status %d, want 400", resp.StatusCode)
	}
}
