package sweepserver_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
	"otisnet/internal/sweepserver"
)

func testSpec() sweepserver.GridSpec {
	return sweepserver.GridSpec{
		Topologies: []sweep.TopoSpec{{Net: "sk", S: 3, D: 2, K: 2}},
		Rates:      []float64{0.1, 0.3},
		Seeds:      []int64{1, 2},
		Modes:      []string{"sf", "deflect"},
		Slots:      150,
		Drain:      150,
		Workloads:  []sweepserver.WorkloadSpec{{Kind: "uniform"}, {Kind: "hotspot", HotGroup: 1, Fraction: 0.4}},
		Faults:     []sweepserver.FaultSpec{{Kind: "node", Count: 0}, {Kind: "node", Count: 1, Slot: 40}},
	}
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := sweepserver.New(sweep.Runner{}, sweepcache.NewMemory())
	srv.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func submit(t *testing.T, ts *httptest.Server, spec sweepserver.GridSpec) sweepserver.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st sweepserver.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// stream reads the full NDJSON result stream of a job (blocking until the
// job completes).
func stream(t *testing.T, ts *httptest.Server, id string) []sweepserver.StreamEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []sweepserver.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev sweepserver.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestSubmitStreamAndCurve(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	st := submit(t, ts, spec)

	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	points := grid.Points()
	if st.Points != len(points) {
		t.Fatalf("submit reported %d points, grid has %d", st.Points, len(points))
	}

	events := stream(t, ts, st.ID)
	if len(events) != len(points) {
		t.Fatalf("stream delivered %d events, want %d", len(events), len(points))
	}

	// Every point exactly once, and every record identical to a direct
	// in-process sweep of the same grid.
	want := sweep.Runner{}.Run(points)
	seen := make([]bool, len(points))
	for _, ev := range events {
		if ev.Index < 0 || ev.Index >= len(points) || seen[ev.Index] {
			t.Fatalf("stream index %d out of range or duplicated", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Record != sweep.NewRecord(want[ev.Index]) {
			t.Fatalf("point %d: served record %+v differs from direct run %+v",
				ev.Index, ev.Record, sweep.NewRecord(want[ev.Index]))
		}
		if ev.Cached {
			t.Fatalf("first submission served point %d from cache", ev.Index)
		}
	}

	// Terminal status.
	var got sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps/"+st.ID, &got)
	if got.State != "done" || got.Done != len(points) {
		t.Fatalf("status after stream: %+v", got)
	}

	// The curve endpoint serves exactly WriteCurveJSON of the same results.
	resp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID + "/curve")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gotCurve bytes.Buffer
	if _, err := gotCurve.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var wantCurve bytes.Buffer
	if err := sweep.WriteCurveJSON(&wantCurve, sweep.Aggregate(want)); err != nil {
		t.Fatal(err)
	}
	if gotCurve.String() != wantCurve.String() {
		t.Fatalf("curve endpoint drifted from WriteCurveJSON")
	}
}

// TestBatchedSubmissionMatchesDirectRun submits the grid with the
// batched-dispatch override and requires every served record to equal the
// per-scenario in-process run — the service-level face of the ReplicaSet
// bit-for-bit contract.
func TestBatchedSubmissionMatchesDirectRun(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	auto := -1
	spec.Replicas = &auto
	st := submit(t, ts, spec)

	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	points := grid.Points()
	want := sweep.Runner{}.Run(points)
	for _, ev := range stream(t, ts, st.ID) {
		if ev.Record != sweep.NewRecord(want[ev.Index]) {
			t.Fatalf("batched point %d: served record %+v differs from direct run %+v",
				ev.Index, ev.Record, sweep.NewRecord(want[ev.Index]))
		}
	}
}

func TestResubmissionAnswersFromCache(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	first := submit(t, ts, spec)
	stream(t, ts, first.ID)

	second := submit(t, ts, spec)
	events := stream(t, ts, second.ID)
	for _, ev := range events {
		if !ev.Cached {
			t.Fatalf("resubmitted grid recomputed point %d", ev.Index)
		}
	}
	var stats sweepcache.Stats
	getJSON(t, ts, "/api/v1/cache/stats", &stats)
	if stats.Hits < int64(len(events)) || stats.Entries == 0 {
		t.Fatalf("cache stats after resubmission: %+v", stats)
	}
	var status sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps/"+second.ID, &status)
	if status.Cached != len(events) {
		t.Fatalf("status cached count %d, want %d", status.Cached, len(events))
	}
}

func TestCancel(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	spec.Slots = 4000 // big enough that the job is still running when we cancel
	spec.Drain = 4000
	spec.Seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	st := submit(t, ts, spec)

	resp, err := http.Post(ts.URL+"/api/v1/sweeps/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		var got sweepserver.Status
		getJSON(t, ts, "/api/v1/sweeps/"+st.ID, &got)
		if got.State == "canceled" {
			break
		}
		if got.State == "done" {
			t.Skip("job finished before the cancel landed; nothing to assert")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q after cancel", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The stream of a canceled job terminates rather than hanging.
	stream(t, ts, st.ID)

	// A canceled job has no curve.
	curveResp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID + "/curve")
	if err != nil {
		t.Fatal(err)
	}
	curveResp.Body.Close()
	if curveResp.StatusCode != http.StatusConflict {
		t.Fatalf("curve of canceled job: status %d, want %d", curveResp.StatusCode, http.StatusConflict)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	for name, body := range map[string]string{
		"empty grid":    `{}`,
		"unknown field": `{"topologies":[{"net":"sk"}],"frobnicate":1}`,
		"bad topology":  `{"topologies":[{"net":"torus"}]}`,
		"bad mode":      `{"topologies":[{"net":"sk"}],"modes":["fly"]}`,
		"bad rate":      `{"topologies":[{"net":"sk"}],"rates":[1.5]}`,
		"bad workload":  `{"topologies":[{"net":"sk"}],"workloads":[{"kind":"chaos"}]}`,
		"hot group neg": `{"topologies":[{"net":"sk","s":3,"d":2,"k":2}],"workloads":[{"kind":"hotspot","hot_group":-1}]}`,
		"traceless":     `{"topologies":[{"net":"sk"}],"workloads":[{"kind":"trace"}]}`,
		"trace + rates": `{"topologies":[{"net":"sk"}],"rates":[0.3],"workloads":[{"kind":"trace","trace_file":"testdata/burst_events.ndjson"}]}`,
		"bad mperiod":   `{"topologies":[{"net":"sk"}],"workloads":[{"kind":"multiperiod","amplitude":2}]}`,
		"bad fault":     `{"topologies":[{"net":"sk"}],"faults":[{"kind":"node","count":1,"mtbf":5}]}`,
		"bad replicas":  `{"topologies":[{"net":"sk"}],"replicas":-3}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	for _, path := range []string{"/api/v1/sweeps/nope", "/api/v1/sweeps/nope/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestListJobs(t *testing.T) {
	ts := newTestServer(t)
	spec := testSpec()
	spec.Rates = []float64{0.1}
	spec.Seeds = []int64{1}
	spec.Modes = []string{"sf"}
	spec.Workloads = nil
	spec.Faults = nil
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, spec)
		ids = append(ids, st.ID)
		stream(t, ts, st.ID)
	}
	var list []sweepserver.Status
	getJSON(t, ts, "/api/v1/sweeps", &list)
	if len(list) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("listing order %v, want %v", list, ids)
		}
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}
