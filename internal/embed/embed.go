// Package embed implements guest-graph embeddings into multi-OPS networks
// through their stack-graph models — the technique of Berthomé and Ferreira
// (reference [3] of the paper, "Improved embeddings in POPS networks
// through stack-graph models"). An embedding maps guest vertices onto host
// processors; its quality is measured by load (guest vertices per host
// node), dilation (host hops per guest edge) and congestion (guest edges
// per coupler). Constructions provided: rings into POPS and into
// stack-Kautz (dilation 1, using the Hamiltonicity of the Kautz graph the
// paper quotes in §2.5), hypercubes and 2-D meshes into POPS (dilation 1 —
// POPS is single-hop), and generic embeddings with exact metric
// computation.
package embed

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
)

// Embedding maps guest vertices to host stack-graph nodes.
type Embedding struct {
	// Guest is the directed guest graph (use both arc directions for an
	// undirected guest).
	Guest *digraph.Digraph
	// Host is the stack-graph model of the host network.
	Host *hypergraph.StackGraph
	// Place[v] is the host node of guest vertex v.
	Place []int
}

// Metrics summarizes embedding quality.
type Metrics struct {
	// Load is the maximum number of guest vertices on one host node.
	Load int
	// Dilation is the maximum host-route hop count over guest arcs.
	Dilation int
	// Congestion is the maximum number of guest arcs routed through one
	// coupler (hyperarc), with each arc using the stack-graph Route.
	Congestion int
	// Expansion is host nodes / guest vertices.
	Expansion float64
}

// Validate checks the embedding is well-formed: every guest vertex is
// placed on a valid host node and every guest arc is routable.
func (e *Embedding) Validate() error {
	if len(e.Place) != e.Guest.N() {
		return fmt.Errorf("embed: %d placements for %d guest vertices",
			len(e.Place), e.Guest.N())
	}
	for v, p := range e.Place {
		if p < 0 || p >= e.Host.N() {
			return fmt.Errorf("embed: guest %d placed on invalid host %d", v, p)
		}
	}
	for _, a := range e.Guest.Arcs() {
		if e.Place[a[0]] == e.Place[a[1]] {
			continue // same host node: dilation 0
		}
		if r := e.Host.Route(e.Place[a[0]], e.Place[a[1]]); r == nil {
			return fmt.Errorf("embed: guest arc %d->%d unroutable", a[0], a[1])
		}
	}
	return nil
}

// Measure computes the embedding metrics, routing every guest arc with the
// host's stack-graph router.
func (e *Embedding) Measure() Metrics {
	m := Metrics{}
	load := make([]int, e.Host.N())
	for _, p := range e.Place {
		load[p]++
		if load[p] > m.Load {
			m.Load = load[p]
		}
	}
	congestion := map[int]int{}
	for _, a := range e.Guest.Arcs() {
		src, dst := e.Place[a[0]], e.Place[a[1]]
		if src == dst {
			continue
		}
		route := e.Host.Route(src, dst)
		hops := len(route) - 1
		if hops > m.Dilation {
			m.Dilation = hops
		}
		for i := 0; i+1 < len(route); i++ {
			u := e.Host.Project(route[i])
			v := e.Host.Project(route[i+1])
			c := e.Host.HyperarcFor(u, v)
			congestion[c]++
			if congestion[c] > m.Congestion {
				m.Congestion = congestion[c]
			}
		}
	}
	if e.Guest.N() > 0 {
		m.Expansion = float64(e.Host.N()) / float64(e.Guest.N())
	}
	return m
}

// UndirectedRing returns the N-vertex ring with arcs in both directions.
func UndirectedRing(n int) *digraph.Digraph {
	g := digraph.New(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if j != i {
			g.AddArc(i, j)
			g.AddArc(j, i)
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube (2^dim vertices) with
// arcs in both directions.
func Hypercube(dim int) *digraph.Digraph {
	n := 1 << dim
	g := digraph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			g.AddArc(u, u^(1<<b))
		}
	}
	return g
}

// Mesh returns the rows×cols 2-D mesh with arcs in both directions.
func Mesh(rows, cols int) *digraph.Digraph {
	g := digraph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddArc(id(r, c), id(r, c+1))
				g.AddArc(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				g.AddArc(id(r, c), id(r+1, c))
				g.AddArc(id(r+1, c), id(r, c))
			}
		}
	}
	return g
}

// Identity embeds a guest with exactly host-size vertices by the identity
// placement.
func Identity(guest *digraph.Digraph, host *hypergraph.StackGraph) (*Embedding, error) {
	if guest.N() != host.N() {
		return nil, fmt.Errorf("embed: guest has %d vertices, host %d nodes",
			guest.N(), host.N())
	}
	place := make([]int, guest.N())
	for i := range place {
		place[i] = i
	}
	e := &Embedding{Guest: guest, Host: host, Place: place}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
