package embed

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

// RingIntoPOPS embeds the N-vertex ring into POPS(t,g) with load 1 and
// dilation 1 (POPS is single-hop, so every placement has dilation 1; the
// group-major order additionally keeps most ring arcs on loop couplers,
// minimizing congestion on the inter-group couplers).
func RingIntoPOPS(p *pops.Network) *Embedding {
	ring := UndirectedRing(p.N())
	place := make([]int, p.N())
	for i := range place {
		place[i] = i // group-major: node i = (group i/t, member i%t)
	}
	return &Embedding{Guest: ring, Host: p.StackGraph(), Place: place}
}

// RingIntoStackKautz embeds the N-vertex ring into SK(s,d,k) with load 1
// and dilation 1, using a Hamiltonian cycle of the Kautz graph (§2.5: the
// Kautz graph is Hamiltonian): groups are visited in Hamiltonian order;
// within a group, consecutive ring vertices use the loop coupler (1 hop)
// and the hand-off to the next group uses the Hamiltonian arc (1 hop).
// Returns an error if the Hamiltonian cycle search fails (it cannot for
// valid Kautz graphs; the search is exponential, so keep paper-scale G).
//
// Caveat: the ring is directed around the cycle; the reverse ring arcs are
// dilated by up to k (Kautz graphs are not symmetric), which Measure
// reports when given an undirected ring. DirectedRingIntoStackKautz embeds
// the one-directional ring with dilation exactly 1.
func DirectedRingIntoStackKautz(n *stackkautz.Network) (*Embedding, error) {
	kg := n.Kautz().Digraph()
	cyc := kg.HamiltonianCycle()
	if cyc == nil {
		return nil, fmt.Errorf("embed: no Hamiltonian cycle found in KG(%d,%d)",
			n.D(), n.K())
	}
	ring := directedRing(n.N())
	place := make([]int, 0, n.N())
	for _, g := range cyc[:len(cyc)-1] {
		for m := 0; m < n.S(); m++ {
			place = append(place, n.StackGraph().NodeID(hypergraph.StackNode{Group: g, Member: m}))
		}
	}
	e := &Embedding{Guest: ring, Host: n.StackGraph(), Place: place}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// directedRing returns the one-directional N-vertex ring.
func directedRing(n int) *digraph.Digraph {
	g := digraph.New(n)
	for i := 0; i < n; i++ {
		if n > 1 || i != (i+1)%n {
			g.AddArc(i, (i+1)%n)
		}
	}
	return g
}

// HypercubeIntoPOPS embeds the dim-cube into POPS(t,g) (requires
// 2^dim == t·g) with load 1 and dilation 1.
func HypercubeIntoPOPS(p *pops.Network, dim int) (*Embedding, error) {
	if 1<<dim != p.N() {
		return nil, fmt.Errorf("embed: 2^%d != %d processors", dim, p.N())
	}
	return Identity(Hypercube(dim), p.StackGraph())
}

// MeshIntoPOPS embeds the rows×cols mesh into POPS(t,g) (requires
// rows·cols == t·g) with load 1 and dilation 1.
func MeshIntoPOPS(p *pops.Network, rows, cols int) (*Embedding, error) {
	if rows*cols != p.N() {
		return nil, fmt.Errorf("embed: %dx%d mesh != %d processors", rows, cols, p.N())
	}
	return Identity(Mesh(rows, cols), p.StackGraph())
}
