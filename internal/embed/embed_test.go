package embed

import (
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func TestGuestGenerators(t *testing.T) {
	r := UndirectedRing(5)
	if r.N() != 5 || r.M() != 10 {
		t.Fatalf("ring: n=%d m=%d", r.N(), r.M())
	}
	h := Hypercube(3)
	if h.N() != 8 || h.M() != 24 {
		t.Fatalf("cube: n=%d m=%d", h.N(), h.M())
	}
	m := Mesh(2, 3)
	if m.N() != 6 || m.M() != 14 { // 7 undirected edges
		t.Fatalf("mesh: n=%d m=%d", m.N(), m.M())
	}
	// Degenerate ring.
	if UndirectedRing(1).M() != 0 {
		t.Fatal("1-ring should have no arcs")
	}
}

func TestIdentityRequiresMatchingSizes(t *testing.T) {
	p := pops.New(2, 2) // N = 4
	if _, err := Identity(Hypercube(2), p.StackGraph()); err != nil {
		t.Fatal(err) // 4 == 4: fine
	}
	if _, err := Identity(Hypercube(3), p.StackGraph()); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestValidateCatchesBadPlacement(t *testing.T) {
	p := pops.New(2, 2)
	e := &Embedding{Guest: UndirectedRing(4), Host: p.StackGraph(), Place: []int{0, 1, 2, 99}}
	if e.Validate() == nil {
		t.Fatal("invalid host node must be caught")
	}
	e2 := &Embedding{Guest: UndirectedRing(4), Host: p.StackGraph(), Place: []int{0, 1}}
	if e2.Validate() == nil {
		t.Fatal("wrong placement length must be caught")
	}
}

func TestRingIntoPOPSDilation1(t *testing.T) {
	for _, pr := range []struct{ t, g int }{{4, 2}, {3, 3}, {2, 5}} {
		p := pops.New(pr.t, pr.g)
		e := RingIntoPOPS(p)
		if err := e.Validate(); err != nil {
			t.Fatalf("POPS(%d,%d): %v", pr.t, pr.g, err)
		}
		m := e.Measure()
		if m.Load != 1 || m.Dilation != 1 {
			t.Fatalf("POPS(%d,%d): load=%d dilation=%d, want 1,1", pr.t, pr.g, m.Load, m.Dilation)
		}
		if m.Expansion != 1 {
			t.Fatal("ring fills the network exactly")
		}
	}
}

func TestDirectedRingIntoStackKautzDilation1(t *testing.T) {
	// §2.5: Kautz graphs are Hamiltonian -> an N-node directed ring embeds
	// into SK(s,d,k) with dilation 1.
	for _, pr := range []struct{ s, d, k int }{{2, 2, 2}, {3, 2, 2}, {2, 3, 2}, {2, 2, 3}} {
		n := stackkautz.New(pr.s, pr.d, pr.k)
		e, err := DirectedRingIntoStackKautz(n)
		if err != nil {
			t.Fatalf("SK(%d,%d,%d): %v", pr.s, pr.d, pr.k, err)
		}
		m := e.Measure()
		if m.Load != 1 || m.Dilation != 1 {
			t.Fatalf("SK(%d,%d,%d): load=%d dilation=%d, want 1,1",
				pr.s, pr.d, pr.k, m.Load, m.Dilation)
		}
	}
}

func TestUndirectedRingIntoSKDilationBounded(t *testing.T) {
	// The reverse arcs of the ring dilate by at most the diameter k.
	n := stackkautz.New(2, 2, 2)
	fwd, err := DirectedRingIntoStackKautz(n)
	if err != nil {
		t.Fatal(err)
	}
	und := &Embedding{
		Guest: UndirectedRing(n.N()),
		Host:  n.StackGraph(),
		Place: fwd.Place,
	}
	if err := und.Validate(); err != nil {
		t.Fatal(err)
	}
	m := und.Measure()
	if m.Dilation > n.K()+1 {
		t.Fatalf("undirected ring dilation %d exceeds k+1 = %d", m.Dilation, n.K()+1)
	}
}

func TestHypercubeIntoPOPS(t *testing.T) {
	p := pops.New(4, 4) // 16 = 2^4
	e, err := HypercubeIntoPOPS(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := e.Measure()
	if m.Load != 1 || m.Dilation != 1 {
		t.Fatalf("load=%d dilation=%d, want 1,1", m.Load, m.Dilation)
	}
	if _, err := HypercubeIntoPOPS(p, 3); err == nil {
		t.Fatal("wrong dimension must error")
	}
}

func TestMeshIntoPOPS(t *testing.T) {
	p := pops.New(3, 4) // 12 = 3x4
	e, err := MeshIntoPOPS(p, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := e.Measure()
	if m.Load != 1 || m.Dilation != 1 {
		t.Fatalf("load=%d dilation=%d", m.Load, m.Dilation)
	}
	if _, err := MeshIntoPOPS(p, 2, 5); err == nil {
		t.Fatal("wrong shape must error")
	}
}

func TestMeasureCongestionCounts(t *testing.T) {
	// Two guest vertices on the same pair of POPS groups: both arcs route
	// through the same coupler, congestion 2.
	p := pops.New(2, 2)
	guest := digraph.New(4)
	guest.AddArc(0, 2)
	guest.AddArc(1, 3)
	e := &Embedding{Guest: guest, Host: p.StackGraph(),
		Place: []int{p.NodeID(0, 0), p.NodeID(0, 1), p.NodeID(1, 0), p.NodeID(1, 1)}}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	m := e.Measure()
	if m.Congestion != 2 {
		t.Fatalf("congestion = %d, want 2", m.Congestion)
	}
}

func TestMeasureLoadWithMultiplePerHost(t *testing.T) {
	p := pops.New(2, 2)
	guest := UndirectedRing(8) // 8 vertices on 4 hosts: load 2
	place := make([]int, 8)
	for i := range place {
		place[i] = i % 4
	}
	e := &Embedding{Guest: guest, Host: p.StackGraph(), Place: place}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := e.Measure(); m.Load != 2 {
		t.Fatalf("load = %d, want 2", m.Load)
	}
}

// Property: any permutation placement into POPS has dilation exactly 1
// (single-hop host) and load 1.
func TestPOPSAnyPermutationDilation1Property(t *testing.T) {
	p := pops.New(3, 3)
	f := func(seed int64) bool {
		perm := permFromSeed(seed, p.N())
		e := &Embedding{Guest: UndirectedRing(p.N()), Host: p.StackGraph(), Place: perm}
		if e.Validate() != nil {
			return false
		}
		m := e.Measure()
		return m.Load == 1 && m.Dilation == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func permFromSeed(seed int64, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := uint64(seed)
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Property: dilation of any valid embedding into a stack-Kautz host never
// exceeds its diameter + 1 (route may add an intra-group loop hop).
func TestSKDilationBoundProperty(t *testing.T) {
	n := stackkautz.New(2, 2, 2)
	f := func(seed int64) bool {
		perm := permFromSeed(seed, n.N())
		e := &Embedding{Guest: Hypercube(3), Host: n.StackGraph(), Place: perm[:8]}
		if e.Validate() != nil {
			return false
		}
		return e.Measure().Dilation <= n.K()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
