package stackkautz

// Route-invariant property tests (PR 5 test hardening) for the stack
// networks' *simulation* route tables — the tables the engine compiles and
// FaultedTopology patches — complementing the address-level Route tests:
// every (node, destination) entry names a coupler whose chosen head is
// strictly closer on the underlying digraph, and RouteAvoiding paths under
// random masked-group sets of every size up to d-1 never enter a masked
// group.

import (
	"math/rand"
	"testing"

	"otisnet/internal/kautz"
	"otisnet/internal/sim"
)

// checkStackRouteAdvance asserts strict distance progress of every route
// table entry of a stack topology.
func checkStackRouteAdvance(t *testing.T, name string, topo sim.Topology) {
	t.Helper()
	n := topo.Nodes()
	for u := 0; u < n; u++ {
		for dst := 0; dst < n; dst++ {
			if u == dst {
				continue
			}
			c, hop := topo.NextCoupler(u, dst)
			if c < 0 || hop < 0 {
				t.Fatalf("%s: no route %d->%d", name, u, dst)
			}
			if got, want := topo.Distance(hop, dst), topo.Distance(u, dst)-1; got != want {
				t.Fatalf("%s: hop %d->%d toward %d does not advance (dist %d, want %d)",
					name, u, hop, dst, got, want)
			}
			// The named coupler must actually be drivable by u and heard by
			// the chosen hop.
			if !contains(topo.OutCouplers(u), c) {
				t.Fatalf("%s: route %d->%d names coupler %d that %d cannot drive", name, u, dst, c, u)
			}
			if !contains(topo.Heads(c), hop) {
				t.Fatalf("%s: route %d->%d names hop %d that coupler %d does not reach", name, u, dst, hop, c)
			}
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestStackSimRouteTablesAdvanceTowardDestination(t *testing.T) {
	cases := map[string]sim.Topology{
		"SK(3,2,2)":        sim.NewStackTopology(New(3, 2, 2).StackGraph()),
		"SK(2,3,2)":        sim.NewStackTopology(New(2, 3, 2).StackGraph()),
		"stack-II(2,2,10)": sim.NewStackTopology(NewII(2, 2, 10).StackGraph()),
		"stack-II(3,3,12)": sim.NewStackTopology(NewII(3, 3, 12).StackGraph()),
	}
	for name, topo := range cases {
		checkStackRouteAdvance(t, name, topo)
	}
}

// TestRouteAvoidingRandomMaskSizes extends TestRouteAvoidingFaultyGroups
// across every fault-set size 1..d-1 and several network shapes: the route
// must exist, be model-valid, stay within k+2 hops and keep its interior
// clear of every masked group.
func TestRouteAvoidingRandomMaskSizes(t *testing.T) {
	for _, nw := range []*Network{New(3, 3, 2), New(2, 4, 2), New(4, 3, 3)} {
		kg := nw.Kautz()
		rng := rand.New(rand.NewSource(int64(nw.D()*1000 + nw.K())))
		for trial := 0; trial < 150; trial++ {
			u, v := rng.Intn(kg.N()), rng.Intn(kg.N())
			if u == v {
				continue
			}
			nf := 1 + rng.Intn(nw.D()-1)
			faulty := map[int]bool{}
			for len(faulty) < nf {
				f := rng.Intn(kg.N())
				if f != u && f != v {
					faulty[f] = true
				}
			}
			src := Address{Group: kg.LabelOf(u), Member: rng.Intn(nw.S())}
			dst := Address{Group: kg.LabelOf(v), Member: rng.Intn(nw.S())}
			r, _ := nw.RouteAvoiding(src, dst, func(w kautz.Label) bool { return faulty[kg.Index(w)] })
			if r == nil {
				t.Fatalf("SK(%d,%d,%d): no route %v->%v around %d masked groups", nw.S(), nw.D(), nw.K(), src, dst, nf)
			}
			if !nw.ValidRoute(r) {
				t.Fatalf("SK(%d,%d,%d): invalid route %v", nw.S(), nw.D(), nw.K(), r)
			}
			if len(r)-1 > nw.K()+2 {
				t.Fatalf("SK(%d,%d,%d): route %v has %d hops > k+2 under %d <= d-1 masked groups",
					nw.S(), nw.D(), nw.K(), r, len(r)-1, nf)
			}
			for _, a := range r[1 : len(r)-1] {
				if faulty[kg.Index(a.Group)] {
					t.Fatalf("SK(%d,%d,%d): route %v enters masked group %s", nw.S(), nw.D(), nw.K(), r, a.Group)
				}
			}
		}
	}
}
