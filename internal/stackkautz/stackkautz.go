// Package stackkautz implements the stack-Kautz network SK(s,d,k) of
// Coudert, Ferreira and Muñoz (Definition 4): the stack-graph
// ς(s, KG⁺(d,k)) of stacking factor s over the Kautz graph with loops.
// SK(s,d,k) has N = s·d^{k-1}(d+1) processors in G = d^{k-1}(d+1) groups of
// s; each processor has degree d+1 (d Kautz arcs plus the group loop) and
// the network has G·(d+1) couplers of degree s and diameter k.
//
// The package also provides the stack-Imase-Itoh generalization the paper
// mentions ("the definition of stack-Kautz network can be trivially
// extended to the stack-Imase-Itoh network"), which exists for every group
// count n and is what the optical design engine targets directly, plus the
// bridge between the two labelings (Kautz words <-> integers mod G).
package stackkautz

import (
	"fmt"

	"otisnet/internal/hypergraph"
	"otisnet/internal/kautz"
)

// Address identifies a processor of SK(s,d,k) the way the paper does: a
// pair (x, y) where x is a Kautz word (the group) and y the index within
// the group.
type Address struct {
	Group  kautz.Label
	Member int
}

// String renders the address as "(word,y)".
func (a Address) String() string { return fmt.Sprintf("(%s,%d)", a.Group, a.Member) }

// Network is a stack-Kautz network SK(s,d,k).
type Network struct {
	s, d, k int
	kg      *kautz.Graph
	sg      *hypergraph.StackGraph
}

// New constructs SK(s,d,k).
func New(s, d, k int) *Network {
	if s < 1 {
		panic(fmt.Sprintf("stackkautz: invalid stacking factor %d", s))
	}
	kg := kautz.New(d, k)
	return &Network{
		s:  s,
		d:  d,
		k:  k,
		kg: kg,
		sg: hypergraph.NewStackGraph(s, kg.WithLoops()),
	}
}

// S returns the stacking factor (group size, = coupler degree).
func (n *Network) S() int { return n.s }

// D returns the Kautz degree d; processors have degree d+1.
func (n *Network) D() int { return n.d }

// K returns the diameter k.
func (n *Network) K() int { return n.k }

// Degree returns the processor degree d+1 (d Kautz arcs + loop).
func (n *Network) Degree() int { return n.d + 1 }

// Groups returns the number of groups G = d^{k-1}(d+1).
func (n *Network) Groups() int { return n.kg.N() }

// N returns the number of processors s·G.
func (n *Network) N() int { return n.s * n.kg.N() }

// Couplers returns the number of OPS couplers G·(d+1) = d^{k-1}(d+1)².
func (n *Network) Couplers() int { return n.Groups() * (n.d + 1) }

// Kautz returns the underlying Kautz graph.
func (n *Network) Kautz() *kautz.Graph { return n.kg }

// StackGraph returns the ς(s, KG⁺(d,k)) model.
func (n *Network) StackGraph() *hypergraph.StackGraph { return n.sg }

// NodeID maps an address to a flat processor id (group index · s + member).
func (n *Network) NodeID(a Address) int {
	return n.sg.NodeID(hypergraph.StackNode{Group: n.kg.Index(a.Group), Member: a.Member})
}

// Addr maps a flat processor id to its (word, member) address.
func (n *Network) Addr(id int) Address {
	sn := n.sg.Node(id)
	return Address{Group: n.kg.LabelOf(sn.Group), Member: sn.Member}
}

// Diameter returns the network diameter, which equals k: inter-group
// routes follow Kautz shortest paths (<= k hops) and intra-group delivery
// uses the loop coupler (1 hop).
func (n *Network) Diameter() int {
	if n.N() == 1 {
		return 0
	}
	if n.s == 1 && n.k == 1 {
		// Without distinct members, the loop is never needed.
		return 1
	}
	return n.k
}

// Route returns the hop-by-hop route between two processors as addresses,
// following the label-induced Kautz shortest path between groups, with the
// loop coupler covering the intra-group case. Length is at most k+1
// addresses (k hops).
func (n *Network) Route(src, dst Address) []Address {
	if src.Group.Equal(dst.Group) {
		if src.Member == dst.Member {
			return []Address{src}
		}
		return []Address{src, dst} // loop coupler, one hop
	}
	words := kautz.Route(src.Group, dst.Group)
	route := make([]Address, len(words))
	route[0] = src
	for i := 1; i < len(words); i++ {
		route[i] = Address{Group: words[i], Member: dst.Member}
	}
	return route
}

// RouteAvoiding routes between processors while avoiding a set of faulty
// groups (a group whose couplers or OTIS ports failed takes all its
// processors down, which is the fault unit of the paper's §2.5 claim).
// The path has at most k+2 hops when at most d-1 groups are faulty. The
// boolean mirrors kautz.RouteAvoiding's: true when the label-based
// candidate family sufficed.
func (n *Network) RouteAvoiding(src, dst Address, faultyGroup func(kautz.Label) bool) ([]Address, bool) {
	if src.Group.Equal(dst.Group) {
		if src.Member == dst.Member {
			return []Address{src}, true
		}
		return []Address{src, dst}, true
	}
	words, viaFamily := n.kg.RouteAvoiding(src.Group, dst.Group, kautz.FaultSet(faultyGroup))
	if words == nil {
		return nil, false
	}
	route := make([]Address, len(words))
	route[0] = src
	for i := 1; i < len(words); i++ {
		route[i] = Address{Group: words[i], Member: dst.Member}
	}
	return route, viaFamily
}

// ValidRoute verifies a route hop by hop against the stack-graph model.
func (n *Network) ValidRoute(route []Address) bool {
	ids := make([]int, len(route))
	for i, a := range route {
		if !a.Group.Valid(n.d) || a.Member < 0 || a.Member >= n.s {
			return false
		}
		ids[i] = n.NodeID(a)
	}
	return n.sg.ValidRoute(ids)
}

// CouplerOf returns the hyperarc index of the coupler carrying the Kautz
// arc from group x to group z (use x == z for the loop coupler).
func (n *Network) CouplerOf(x, z kautz.Label) int {
	return n.sg.HyperarcFor(n.kg.Index(x), n.kg.Index(z))
}
