package stackkautz

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/imase"
)

// IINetwork is the stack-Imase-Itoh network ς(s, II⁺(d,n)): the "trivial
// extension" of the stack-Kautz the paper points out, which exists for
// every group count n. Groups are integers modulo n; each group has the d
// Imase-Itoh out-arcs plus a loop, so processors have degree d+1. This is
// also the group numbering in which the OTIS optical design is naturally
// expressed (Proposition 1), so package core designs against it.
type IINetwork struct {
	s, d, n int
	ii      *imase.Graph
	sg      *hypergraph.StackGraph
}

// NewII constructs the stack-Imase-Itoh network ς(s, II⁺(d,n)).
func NewII(s, d, n int) *IINetwork {
	if s < 1 {
		panic(fmt.Sprintf("stackkautz: invalid stacking factor %d", s))
	}
	ii := imase.New(d, n)
	// The loop coupler is an additional coupler per group even when II(d,n)
	// already contains a self-arc (possible at non-Kautz orders, e.g.
	// II(3,10) at nodes 2 and 7), so add a parallel loop unconditionally
	// rather than via digraph.AddLoops.
	base := ii.Digraph().Clone()
	for u := 0; u < base.N(); u++ {
		base.AddArc(u, u)
	}
	return &IINetwork{
		s:  s,
		d:  d,
		n:  n,
		ii: ii,
		sg: hypergraph.NewStackGraph(s, base),
	}
}

// S returns the stacking factor.
func (w *IINetwork) S() int { return w.s }

// D returns the Imase-Itoh degree d (processor degree is d+1).
func (w *IINetwork) D() int { return w.d }

// Groups returns the number of groups n.
func (w *IINetwork) Groups() int { return w.n }

// N returns the number of processors s·n.
func (w *IINetwork) N() int { return w.s * w.n }

// Couplers returns n·(d+1).
func (w *IINetwork) Couplers() int { return w.n * (w.d + 1) }

// StackGraph returns the ς(s, II⁺(d,n)) model.
func (w *IINetwork) StackGraph() *hypergraph.StackGraph { return w.sg }

// Imase returns the underlying Imase-Itoh graph.
func (w *IINetwork) Imase() *imase.Graph { return w.ii }

// DiameterBound returns ⌈log_d n⌉, the inter-group diameter bound.
func (w *IINetwork) DiameterBound() int { return imase.DiameterBound(w.d, w.n) }

// Route returns a hop-by-hop route between two processors (flat ids,
// group·s + member), following shortest paths in II⁺(d,n) with the loop
// coupler covering the intra-group hop. Nil when unroutable (cannot happen
// for d >= 2: II graphs are strongly connected).
func (w *IINetwork) Route(src, dst int) []int { return w.sg.Route(src, dst) }

// GroupNumbering relates a stack-Kautz network to the stack-Imase-Itoh
// network with the same parameters (n = d^{k-1}(d+1)): it returns a mapping
// m with m[kautzVertex] = II node such that the two group digraphs
// coincide, or nil if the isomorphism search fails (it cannot, by
// Imase-Itoh 1983; the tests assert success). The mapping lets designs and
// routes expressed in Kautz words be transported onto the OTIS hardware
// numbering.
func GroupNumbering(sk *Network) []int {
	ii := imase.New(sk.D(), sk.Groups())
	return digraph.FindIsomorphism(sk.Kautz().Digraph(), ii.Digraph())
}

// TransportAddress converts a stack-Kautz address into the (group number,
// member) pair of the corresponding stack-Imase-Itoh network under the
// given group numbering.
func TransportAddress(sk *Network, numbering []int, a Address) (group, member int) {
	return numbering[sk.Kautz().Index(a.Group)], a.Member
}

// KautzOrderNetwork reports whether the stack-Imase-Itoh network is in fact
// a stack-Kautz network (its group count is a Kautz order), returning the
// diameter k.
func (w *IINetwork) KautzOrderNetwork() (k int, ok bool) {
	return imase.KautzOrder(w.d, w.n)
}
