package stackkautz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otisnet/internal/kautz"
)

func TestParametersFig7(t *testing.T) {
	// Fig. 7 / §4.2: SK(6,3,2) has 72 processors (12 groups of 6), degree 4,
	// diameter 2, and 12·4² ... precisely d^{k-1}(d+1)² = 48 couplers.
	n := New(6, 3, 2)
	if n.N() != 72 || n.Groups() != 12 {
		t.Fatalf("SK(6,3,2): N=%d groups=%d, want 72, 12", n.N(), n.Groups())
	}
	if n.Degree() != 4 {
		t.Fatalf("degree = %d, want 4", n.Degree())
	}
	if n.Couplers() != 48 {
		t.Fatalf("couplers = %d, want 48", n.Couplers())
	}
	if n.Diameter() != 2 {
		t.Fatalf("diameter = %d, want 2", n.Diameter())
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("s=0 should panic")
		}
	}()
	New(0, 2, 2)
}

func TestStackModelDegrees(t *testing.T) {
	n := New(4, 2, 2)
	sg := n.StackGraph()
	for v := 0; v < sg.N(); v++ {
		if sg.OutDegree(v) != 3 || sg.InDegree(v) != 3 {
			t.Fatalf("node %d degree (%d,%d), want (3,3)", v, sg.OutDegree(v), sg.InDegree(v))
		}
	}
	for i := 0; i < sg.M(); i++ {
		if sg.Hyperarc(i).Degree() != 4 {
			t.Fatalf("coupler %d degree != s=4", i)
		}
	}
}

func TestDiameterMatchesStackGraph(t *testing.T) {
	// The structural (BFS) diameter of the stack model must equal k.
	for _, p := range []struct{ s, d, k int }{{2, 2, 2}, {3, 2, 3}, {2, 3, 2}, {6, 3, 2}} {
		n := New(p.s, p.d, p.k)
		if got := n.StackGraph().Diameter(); got != n.Diameter() {
			t.Errorf("SK(%d,%d,%d): BFS diameter %d != Diameter() %d",
				p.s, p.d, p.k, got, n.Diameter())
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	n := New(3, 2, 2)
	for id := 0; id < n.N(); id++ {
		if got := n.NodeID(n.Addr(id)); got != id {
			t.Fatalf("round trip %d -> %v -> %d", id, n.Addr(id), got)
		}
	}
}

func TestAddressString(t *testing.T) {
	a := Address{Group: kautz.Label{1, 2}, Member: 3}
	if a.String() != "(12,3)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestRouteIntraGroup(t *testing.T) {
	n := New(6, 3, 2)
	g := n.Kautz().LabelOf(4)
	src := Address{Group: g, Member: 0}
	dst := Address{Group: g, Member: 5}
	r := n.Route(src, dst)
	if len(r) != 2 {
		t.Fatalf("intra-group route = %v, want one hop via loop", r)
	}
	if !n.ValidRoute(r) {
		t.Fatal("invalid intra-group route")
	}
	self := n.Route(src, src)
	if len(self) != 1 {
		t.Fatalf("self route = %v", self)
	}
}

func TestRouteInterGroupShortest(t *testing.T) {
	n := New(2, 2, 3)
	kg := n.Kautz()
	for trial, pair := range [][2]int{{0, 5}, {3, 11}, {7, 2}} {
		src := Address{Group: kg.LabelOf(pair[0]), Member: 0}
		dst := Address{Group: kg.LabelOf(pair[1]), Member: 1}
		r := n.Route(src, dst)
		if !n.ValidRoute(r) {
			t.Fatalf("trial %d: invalid route %v", trial, r)
		}
		want := kautz.Distance(src.Group, dst.Group)
		if len(r)-1 != want {
			t.Fatalf("trial %d: route hops %d, want Kautz distance %d", trial, len(r)-1, want)
		}
	}
}

func TestRouteAvoidingFaultyGroups(t *testing.T) {
	n := New(4, 3, 2)
	kg := n.Kautz()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		u := rng.Intn(kg.N())
		v := rng.Intn(kg.N())
		if u == v {
			continue
		}
		faulty := map[int]bool{}
		for len(faulty) < n.D()-1 {
			f := rng.Intn(kg.N())
			if f != u && f != v {
				faulty[f] = true
			}
		}
		src := Address{Group: kg.LabelOf(u), Member: rng.Intn(4)}
		dst := Address{Group: kg.LabelOf(v), Member: rng.Intn(4)}
		r, _ := n.RouteAvoiding(src, dst, func(w kautz.Label) bool { return faulty[kg.Index(w)] })
		if r == nil {
			t.Fatalf("no route %v -> %v with %d faulty groups", src, dst, len(faulty))
		}
		if !n.ValidRoute(r) {
			t.Fatalf("invalid fault route %v", r)
		}
		if len(r)-1 > n.K()+2 {
			t.Fatalf("fault route has %d hops > k+2", len(r)-1)
		}
		for _, a := range r[1 : len(r)-1] {
			if faulty[kg.Index(a.Group)] {
				t.Fatalf("route passes through faulty group %s", a.Group)
			}
		}
	}
}

func TestCouplerOf(t *testing.T) {
	n := New(2, 2, 2)
	kg := n.Kautz()
	x := kg.LabelOf(0)
	// Loop coupler exists for every group.
	if n.CouplerOf(x, x) < 0 {
		t.Fatal("loop coupler missing")
	}
	// Kautz arc coupler.
	z := kg.LabelOf(kg.Digraph().Out(0)[0])
	if n.CouplerOf(x, z) < 0 {
		t.Fatal("arc coupler missing")
	}
	// Non-arc: no coupler. Find a non-neighbor group.
	for v := 0; v < kg.N(); v++ {
		if v != 0 && !kg.Digraph().HasArc(0, v) {
			if n.CouplerOf(x, kg.LabelOf(v)) != -1 {
				t.Fatal("coupler for non-arc should be -1")
			}
			break
		}
	}
}

func TestIINetworkParameters(t *testing.T) {
	w := NewII(4, 3, 10)
	if w.N() != 40 || w.Groups() != 10 || w.Couplers() != 40 {
		t.Fatalf("stack-II(4,3,10): N=%d groups=%d couplers=%d", w.N(), w.Groups(), w.Couplers())
	}
	if w.S() != 4 || w.D() != 3 {
		t.Fatal("parameters wrong")
	}
	sg := w.StackGraph()
	for v := 0; v < sg.N(); v++ {
		if sg.OutDegree(v) != 4 {
			t.Fatalf("degree should be d+1 = 4")
		}
	}
}

func TestIINetworkInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("s=0 should panic")
		}
	}()
	NewII(0, 2, 5)
}

func TestIINetworkDiameterBound(t *testing.T) {
	w := NewII(2, 3, 12)
	if w.DiameterBound() != 3 {
		t.Fatalf("bound = %d, want ⌈log3 12⌉ = 3", w.DiameterBound())
	}
	// Inter-group BFS diameter within the stack never exceeds bound+... the
	// stack diameter is max(group diameter, 1).
	if got := w.StackGraph().Diameter(); got > w.DiameterBound() {
		t.Fatalf("stack diameter %d exceeds II bound %d", got, w.DiameterBound())
	}
}

func TestKautzOrderNetwork(t *testing.T) {
	if k, ok := NewII(2, 3, 12).KautzOrderNetwork(); !ok || k != 2 {
		t.Fatalf("stack-II over II(3,12) should be SK(·,3,2); got k=%d ok=%v", k, ok)
	}
	if _, ok := NewII(2, 3, 13).KautzOrderNetwork(); ok {
		t.Fatal("13 is not a Kautz order for d=3")
	}
}

func TestGroupNumberingBridgesKautzToII(t *testing.T) {
	// SK(s,d,k) and ς(s, II⁺(d,G)) are the same network up to group
	// renumbering: GroupNumbering must produce a true isomorphism.
	for _, p := range []struct{ s, d, k int }{{2, 2, 2}, {6, 3, 2}, {2, 2, 3}} {
		sk := New(p.s, p.d, p.k)
		num := GroupNumbering(sk)
		if num == nil {
			t.Fatalf("SK(%d,%d,%d): no isomorphism found (must exist)", p.s, p.d, p.k)
		}
		// Spot-check: the mapping preserves adjacency.
		kg := sk.Kautz().Digraph()
		iiNet := NewII(p.s, p.d, sk.Groups())
		iig := iiNet.Imase().Digraph()
		for u := 0; u < kg.N(); u++ {
			for _, v := range kg.Out(u) {
				if !iig.HasArc(num[u], num[v]) {
					t.Fatalf("numbering does not preserve arc %d->%d", u, v)
				}
			}
		}
	}
}

func TestTransportAddress(t *testing.T) {
	sk := New(3, 2, 2)
	num := GroupNumbering(sk)
	if num == nil {
		t.Fatal("numbering must exist")
	}
	a := Address{Group: sk.Kautz().LabelOf(4), Member: 2}
	g, m := TransportAddress(sk, num, a)
	if g != num[4] || m != 2 {
		t.Fatalf("TransportAddress = (%d,%d), want (%d,2)", g, m, num[4])
	}
}

// Property: SK parameter identities for random (s,d,k).
func TestSKParameterProperty(t *testing.T) {
	f := func(su, du, ku uint8) bool {
		s := 1 + int(su)%5
		d := 2 + int(du)%2
		k := 1 + int(ku)%3
		n := New(s, d, k)
		g := kautz.N(d, k)
		return n.N() == s*g && n.Groups() == g &&
			n.Couplers() == g*(d+1) && n.Degree() == d+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: routes between random addresses are valid, end at the
// destination, and take at most k hops.
func TestSKRouteProperty(t *testing.T) {
	n := New(3, 2, 3)
	f := func(a, b uint16) bool {
		src := n.Addr(int(a) % n.N())
		dst := n.Addr(int(b) % n.N())
		r := n.Route(src, dst)
		if !n.ValidRoute(r) {
			return false
		}
		last := r[len(r)-1]
		if !last.Group.Equal(dst.Group) || last.Member != dst.Member {
			return false
		}
		return len(r)-1 <= n.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
