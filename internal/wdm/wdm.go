// Package wdm extends the paper's single-wavelength networks with
// wavelength-division multiplexing, the natural follow-up the paper's
// introduction points at (tunable transmitters/receivers, dense WDM
// [Brackett]). A coupler carrying w wavelengths accepts up to w
// simultaneous senders per slot, each on its own wavelength. The package
// provides wavelength assignment for transmission rounds and compression
// of single-wavelength collective schedules onto WDM hardware, with the
// w-fold speedup bound made precise and testable.
package wdm

import (
	"fmt"

	"otisnet/internal/collective"
	"otisnet/internal/hypergraph"
)

// Assignment maps each transmission of a round to a wavelength index.
type Assignment []int

// AssignWavelengths colors one round of transmissions so that
// transmissions sharing a coupler get distinct wavelengths. It returns the
// assignment (parallel to round) and the number of wavelengths used, which
// is exactly the maximum per-coupler multiplicity (couplers are
// independent, so greedy per-coupler assignment is optimal).
func AssignWavelengths(round []collective.Transmission) (Assignment, int) {
	next := map[int]int{}
	asg := make(Assignment, len(round))
	used := 0
	for i, tr := range round {
		asg[i] = next[tr.Coupler]
		next[tr.Coupler]++
		if next[tr.Coupler] > used {
			used = next[tr.Coupler]
		}
	}
	return asg, used
}

// ValidateWDM checks a schedule against the relaxed WDM constraints: at
// most w senders per coupler per round (instead of one), still at most one
// transmission per node per round, senders on coupler tails.
func ValidateWDM(s *collective.Schedule, sg *hypergraph.StackGraph, w int) error {
	if w < 1 {
		return fmt.Errorf("wdm: invalid wavelength count %d", w)
	}
	for i, round := range s.Rounds {
		couplerLoad := map[int]int{}
		nodeBusy := map[int]bool{}
		for _, tr := range round {
			if tr.Coupler < 0 || tr.Coupler >= sg.M() {
				return fmt.Errorf("wdm: round %d: coupler %d out of range", i, tr.Coupler)
			}
			couplerLoad[tr.Coupler]++
			if couplerLoad[tr.Coupler] > w {
				return fmt.Errorf("wdm: round %d: coupler %d exceeds %d wavelengths",
					i, tr.Coupler, w)
			}
			if nodeBusy[tr.Node] {
				return fmt.Errorf("wdm: round %d: node %d transmits twice", i, tr.Node)
			}
			nodeBusy[tr.Node] = true
			onTail := false
			for _, u := range sg.Hyperarc(tr.Coupler).Tail {
				if u == tr.Node {
					onTail = true
					break
				}
			}
			if !onTail {
				return fmt.Errorf("wdm: round %d: node %d not on tail of coupler %d",
					i, tr.Node, tr.Coupler)
			}
		}
	}
	return nil
}

// Compress merges consecutive rounds of a single-wavelength schedule onto
// w-wavelength hardware: a greedy first-fit packer that moves each
// transmission into the earliest WDM round where its coupler has a free
// wavelength and its node is idle, WITHOUT reordering transmissions that
// share a coupler or a node (so causality of dissemination schedules in
// which later rounds relay earlier data is preserved only when the caller
// knows rounds are independent — use CompressIndependent for that case).
//
// Compress treats every original round boundary as a dependency barrier
// for correctness: transmissions of round r may only be merged with
// transmissions of rounds >= the barrier established by relayed knowledge.
// Concretely, it packs each original round into ⌈load/w⌉ WDM rounds and
// concatenates — preserving the schedule's semantics exactly.
func Compress(s *collective.Schedule, w int) *collective.Schedule {
	if w < 1 {
		panic(fmt.Sprintf("wdm: invalid wavelength count %d", w))
	}
	out := &collective.Schedule{}
	for _, round := range s.Rounds {
		// Pack this round alone: node constraint already satisfied (each
		// node appears once per round), so only coupler multiplicities
		// matter. Distribute per-coupler duplicates across subrounds.
		couplerSeen := map[int]int{}
		var subrounds [][]collective.Transmission
		for _, tr := range round {
			k := couplerSeen[tr.Coupler] / w
			couplerSeen[tr.Coupler]++
			for len(subrounds) <= k {
				subrounds = append(subrounds, nil)
			}
			subrounds[k] = append(subrounds[k], tr)
		}
		out.Rounds = append(out.Rounds, subrounds...)
	}
	return out
}

// CompressIndependent packs a batch of mutually independent transmissions
// (no relaying between them, e.g. one round of personalized exchanges)
// into as few WDM rounds as possible with first-fit: each transmission
// goes to the earliest round with a free wavelength on its coupler and an
// idle sender.
func CompressIndependent(batch []collective.Transmission, w int) *collective.Schedule {
	if w < 1 {
		panic(fmt.Sprintf("wdm: invalid wavelength count %d", w))
	}
	out := &collective.Schedule{}
	var couplerLoad []map[int]int
	var nodeBusy []map[int]bool
	for _, tr := range batch {
		slot := 0
		for {
			if slot == len(out.Rounds) {
				out.Rounds = append(out.Rounds, nil)
				couplerLoad = append(couplerLoad, map[int]int{})
				nodeBusy = append(nodeBusy, map[int]bool{})
			}
			if couplerLoad[slot][tr.Coupler] < w && !nodeBusy[slot][tr.Node] {
				out.Rounds[slot] = append(out.Rounds[slot], tr)
				couplerLoad[slot][tr.Coupler]++
				nodeBusy[slot][tr.Node] = true
				break
			}
			slot++
		}
	}
	return out
}

// SpeedupBound returns the best-case slot count when compressing a
// schedule of given per-round coupler loads onto w wavelengths: the sum
// over rounds of ⌈max-coupler-load/w⌉ can never beat
// ⌈original slots / w⌉... more precisely Compress achieves exactly
// sum_r ⌈load_r/w⌉ where load_r is the max per-coupler multiplicity of
// round r. For the single-wavelength schedules produced by package
// collective, load_r == 1, so WDM cannot shorten them without reordering —
// the interesting gains come from CompressIndependent on personalized
// traffic. This function computes the Compress result length without
// building it.
func SpeedupBound(s *collective.Schedule, w int) int {
	total := 0
	for _, round := range s.Rounds {
		load := map[int]int{}
		maxLoad := 0
		for _, tr := range round {
			load[tr.Coupler]++
			if load[tr.Coupler] > maxLoad {
				maxLoad = load[tr.Coupler]
			}
		}
		if maxLoad == 0 {
			continue
		}
		total += (maxLoad + w - 1) / w
	}
	return total
}
