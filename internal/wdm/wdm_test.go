package wdm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otisnet/internal/collective"
	"otisnet/internal/control"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func TestAssignWavelengths(t *testing.T) {
	round := []collective.Transmission{
		{Node: 0, Coupler: 5},
		{Node: 1, Coupler: 5},
		{Node: 2, Coupler: 7},
		{Node: 3, Coupler: 5},
	}
	asg, used := AssignWavelengths(round)
	if used != 3 {
		t.Fatalf("wavelengths used = %d, want 3", used)
	}
	// Same-coupler transmissions must have distinct wavelengths.
	seen := map[[2]int]bool{}
	for i, tr := range round {
		key := [2]int{tr.Coupler, asg[i]}
		if seen[key] {
			t.Fatal("wavelength collision on a coupler")
		}
		seen[key] = true
	}
}

func TestAssignWavelengthsEmpty(t *testing.T) {
	asg, used := AssignWavelengths(nil)
	if len(asg) != 0 || used != 0 {
		t.Fatal("empty round should use 0 wavelengths")
	}
}

func TestValidateWDMRelaxesCouplerConstraint(t *testing.T) {
	p := pops.New(3, 2)
	sg := p.StackGraph()
	// Two senders on one coupler: invalid at w=1, valid at w=2.
	s := &collective.Schedule{Rounds: [][]collective.Transmission{{
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)},
		{Node: p.NodeID(0, 1), Coupler: p.CouplerIndex(0, 1)},
	}}}
	if s.Validate(sg) == nil {
		t.Fatal("single-wavelength validation must reject")
	}
	if err := ValidateWDM(s, sg, 2); err != nil {
		t.Fatal(err)
	}
	if ValidateWDM(s, sg, 1) == nil {
		t.Fatal("w=1 must reject two senders")
	}
}

func TestValidateWDMNodeConstraintStays(t *testing.T) {
	p := pops.New(2, 2)
	sg := p.StackGraph()
	s := &collective.Schedule{Rounds: [][]collective.Transmission{{
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 0)},
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)},
	}}}
	if ValidateWDM(s, sg, 4) == nil {
		t.Fatal("a node still transmits at most once per slot under WDM")
	}
}

func TestValidateWDMErrors(t *testing.T) {
	p := pops.New(2, 2)
	sg := p.StackGraph()
	if ValidateWDM(&collective.Schedule{}, sg, 0) == nil {
		t.Fatal("w=0 invalid")
	}
	bad := &collective.Schedule{Rounds: [][]collective.Transmission{{{Node: 0, Coupler: 99}}}}
	if ValidateWDM(bad, sg, 2) == nil {
		t.Fatal("range check must stay")
	}
	foreign := &collective.Schedule{Rounds: [][]collective.Transmission{{
		{Node: p.NodeID(1, 0), Coupler: p.CouplerIndex(0, 0)},
	}}}
	if ValidateWDM(foreign, sg, 2) == nil {
		t.Fatal("tail check must stay")
	}
}

func TestCompressPreservesSemantics(t *testing.T) {
	// Compress a POPS gossip schedule: rounds have per-coupler load 1, so
	// compression is the identity in length, and the result still gossips.
	p := pops.New(3, 3)
	s := collective.POPSGossip(p)
	c := Compress(s, 4)
	if c.Slots() != s.Slots() {
		t.Fatalf("load-1 schedule should not shrink: %d -> %d", s.Slots(), c.Slots())
	}
	if err := ValidateWDM(c, p.StackGraph(), 4); err != nil {
		t.Fatal(err)
	}
	if !c.Execute(p.StackGraph()).GossipComplete() {
		t.Fatal("compressed schedule lost gossip completeness")
	}
}

func TestCompressSplitsOverloadedRounds(t *testing.T) {
	// A hand-built round with 4 senders on one coupler compresses to
	// ceil(4/w) rounds.
	p := pops.New(4, 2)
	sg := p.StackGraph()
	var round []collective.Transmission
	for m := 0; m < 4; m++ {
		round = append(round, collective.Transmission{
			Node: p.NodeID(0, m), Coupler: p.CouplerIndex(0, 1),
		})
	}
	s := &collective.Schedule{Rounds: [][]collective.Transmission{round}}
	for _, w := range []int{1, 2, 3, 4} {
		c := Compress(s, w)
		want := (4 + w - 1) / w
		if c.Slots() != want {
			t.Fatalf("w=%d: slots = %d, want %d", w, c.Slots(), want)
		}
		if err := ValidateWDM(c, sg, w); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if SpeedupBound(s, w) != want {
			t.Fatalf("SpeedupBound disagrees with Compress at w=%d", w)
		}
	}
}

func TestCompressInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("w=0 should panic")
		}
	}()
	Compress(&collective.Schedule{}, 0)
}

func TestCompressIndependentPacksTighter(t *testing.T) {
	// 6 independent requests on one coupler from distinct nodes: w=3 packs
	// them into 2 rounds.
	p := pops.New(6, 2)
	var batch []collective.Transmission
	for m := 0; m < 6; m++ {
		batch = append(batch, collective.Transmission{
			Node: p.NodeID(0, m), Coupler: p.CouplerIndex(0, 1),
		})
	}
	s := CompressIndependent(batch, 3)
	if s.Slots() != 2 {
		t.Fatalf("slots = %d, want 2", s.Slots())
	}
	if err := ValidateWDM(s, p.StackGraph(), 3); err != nil {
		t.Fatal(err)
	}
	if s.Transmissions() != 6 {
		t.Fatal("all transmissions must be placed")
	}
}

func TestSimWDMIncreasesThroughputUnderSaturation(t *testing.T) {
	// The same saturated workload on SK(6,3,2) with 1 vs 4 wavelengths:
	// WDM must deliver at least as much, and strictly more here.
	topo := sim.NewStackTopology(stackkautz.New(6, 3, 2).StackGraph())
	m1 := sim.Run(topo, sim.UniformTraffic{Rate: 0.9}, 1000, 0, sim.Config{Seed: 5})
	m4 := sim.Run(topo, sim.UniformTraffic{Rate: 0.9}, 1000, 0, sim.Config{Seed: 5, Wavelengths: 4})
	if m4.Delivered <= m1.Delivered {
		t.Fatalf("WDM should raise saturated throughput: w1=%d w4=%d",
			m1.Delivered, m4.Delivered)
	}
}

func TestSimWDMDefaultsToSingle(t *testing.T) {
	topo := sim.NewStackTopology(pops.New(2, 2).StackGraph())
	a := sim.Run(topo, sim.UniformTraffic{Rate: 0.5}, 300, 300, sim.Config{Seed: 3})
	b := sim.Run(topo, sim.UniformTraffic{Rate: 0.5}, 300, 300, sim.Config{Seed: 3, Wavelengths: 1})
	if a != b {
		t.Fatal("Wavelengths 0 and 1 must behave identically")
	}
}

// Property: compressing a TDMA frame with w wavelengths is always valid
// under ValidateWDM and never longer than the original.
func TestCompressTDMAProperty(t *testing.T) {
	f := func(tu, gu, wu uint8) bool {
		tt := 1 + int(tu)%4
		g := 1 + int(gu)%4
		w := 1 + int(wu)%4
		sg := pops.New(tt, g).StackGraph()
		frame := control.TDMAFrame(sg)
		c := Compress(frame, w)
		if ValidateWDM(c, sg, w) != nil {
			return false
		}
		return c.Slots() <= frame.Slots() && c.Transmissions() == frame.Transmissions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: CompressIndependent output length equals the max over
// couplers of ceil(load/w) and over nodes of their request counts...
// at least the resource lower bound, and every batch entry is placed once.
func TestCompressIndependentProperty(t *testing.T) {
	p := pops.New(3, 3)
	sg := p.StackGraph()
	f := func(seed int64, wu uint8) bool {
		w := 1 + int(wu)%3
		rng := rand.New(rand.NewSource(seed))
		var batch []collective.Transmission
		for i := 0; i < 30; i++ {
			g := rng.Intn(3)
			m := rng.Intn(3)
			j := rng.Intn(3)
			batch = append(batch, collective.Transmission{
				Node: p.NodeID(g, m), Coupler: p.CouplerIndex(g, j),
			})
		}
		// Deduplicate same node appearing twice is fine (different rounds).
		s := CompressIndependent(batch, w)
		if ValidateWDM(s, sg, w) != nil {
			return false
		}
		if s.Transmissions() != len(batch) {
			return false
		}
		// Lower bound: max coupler load / w.
		load := map[int]int{}
		nodeLoad := map[int]int{}
		lb := 1
		for _, tr := range batch {
			load[tr.Coupler]++
			nodeLoad[tr.Node]++
		}
		for _, l := range load {
			if b := (l + w - 1) / w; b > lb {
				lb = b
			}
		}
		for _, l := range nodeLoad {
			if l > lb {
				lb = l
			}
		}
		return s.Slots() >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
