package digraph

// Complete returns the complete digraph K_n without loops: an arc u -> v for
// every ordered pair u != v. KG(d,1) = K_{d+1} is the base of the Kautz line
// digraph iteration (Fig. 6 of the paper).
func Complete(n int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddArc(u, v)
			}
		}
	}
	return g
}

// CompleteWithLoops returns K⁺_n, the complete digraph with loops: n nodes
// and n² arcs. POPS(t,g) is modeled as the stack-graph ς(t, K⁺_g) (Fig. 5).
func CompleteWithLoops(n int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			g.AddArc(u, v)
		}
	}
	return g
}

// Cycle returns the directed cycle C_n (n >= 1; C_1 is a single loop).
func Cycle(n int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		g.AddArc(u, (u+1)%n)
	}
	return g
}

// AddLoops returns a copy of g with one loop added at every vertex that does
// not already carry one. KG⁺(d,k) — the Kautz graph with loops underlying
// the stack-Kautz network — is AddLoops(KG(d,k)).
func AddLoops(g *Digraph) *Digraph {
	h := g.Clone()
	for u := 0; u < h.n; u++ {
		if !h.HasLoop(u) {
			h.AddArc(u, u)
		}
	}
	return h
}

// RemoveLoops returns a copy of g with all loops removed.
func RemoveLoops(g *Digraph) *Digraph {
	h := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if u != v {
				h.AddArc(u, v)
			}
		}
	}
	return h
}

// InducedSubgraph returns the subgraph induced by keeping only the vertices
// for which keep[v] is true, along with a mapping old vertex -> new vertex
// (or -1 for dropped vertices). Used for fault-injection experiments where
// faulty nodes are removed from the topology.
func InducedSubgraph(g *Digraph, keep []bool) (*Digraph, []int) {
	remap := make([]int, g.n)
	cnt := 0
	for v := 0; v < g.n; v++ {
		if keep[v] {
			remap[v] = cnt
			cnt++
		} else {
			remap[v] = -1
		}
	}
	h := New(cnt)
	for u := 0; u < g.n; u++ {
		if remap[u] < 0 {
			continue
		}
		for _, v := range g.out[u] {
			if remap[v] >= 0 {
				h.AddArc(remap[u], remap[v])
			}
		}
	}
	return h, remap
}
