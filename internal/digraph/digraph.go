// Package digraph provides the directed-graph substrate used throughout the
// OTIS / multi-OPS reproduction: adjacency storage, traversal and distance
// metrics, line-digraph iteration, exact isomorphism testing, Eulerian and
// Hamiltonian structure checks, and generators for the classical digraphs
// the paper builds on (complete digraphs with and without loops).
//
// All graphs are simple in the multigraph sense used by the paper: parallel
// arcs are permitted (line digraph iteration of K_{d+1} never creates them,
// but II(d,n) for small n does), and loops are permitted and significant
// (the stack-Kautz network is built on the Kautz graph *with* loops).
package digraph

import (
	"fmt"
	"sort"
)

// Digraph is a directed multigraph on vertices 0..n-1 stored as out-adjacency
// lists. The zero value is an empty graph with no vertices; use New to create
// a graph with a fixed vertex count.
type Digraph struct {
	n   int
	out [][]int
	in  [][]int
	m   int
}

// New returns an empty digraph with n vertices and no arcs.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("digraph: negative vertex count %d", n))
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of arcs, counting multiplicities and loops.
func (g *Digraph) M() int { return g.m }

// AddArc adds the arc u -> v. Loops (u == v) and parallel arcs are allowed.
func (g *Digraph) AddArc(u, v int) {
	g.check(u)
	g.check(v)
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("digraph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Out returns the out-neighbor list of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) Out(u int) []int {
	g.check(u)
	return g.out[u]
}

// In returns the in-neighbor list of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) In(u int) []int {
	g.check(u)
	return g.in[u]
}

// OutDegree returns the out-degree of u (loops count once).
func (g *Digraph) OutDegree(u int) int { return len(g.Out(u)) }

// InDegree returns the in-degree of u (loops count once).
func (g *Digraph) InDegree(u int) int { return len(g.In(u)) }

// HasArc reports whether at least one arc u -> v exists.
func (g *Digraph) HasArc(u, v int) bool {
	for _, w := range g.Out(u) {
		if w == v {
			return true
		}
	}
	return false
}

// ArcMultiplicity returns the number of parallel arcs u -> v.
func (g *Digraph) ArcMultiplicity(u, v int) int {
	c := 0
	for _, w := range g.Out(u) {
		if w == v {
			c++
		}
	}
	return c
}

// HasLoop reports whether vertex u carries a loop.
func (g *Digraph) HasLoop(u int) bool { return g.HasArc(u, u) }

// LoopCount returns the number of vertices carrying at least one loop.
func (g *Digraph) LoopCount() int {
	c := 0
	for u := 0; u < g.n; u++ {
		if g.HasLoop(u) {
			c++
		}
	}
	return c
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	h := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			h.AddArc(u, v)
		}
	}
	return h
}

// Arcs returns all arcs as (from, to) pairs in vertex order. Parallel arcs
// appear once per multiplicity.
func (g *Digraph) Arcs() [][2]int {
	arcs := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			arcs = append(arcs, [2]int{u, v})
		}
	}
	return arcs
}

// SortAdjacency sorts every adjacency list in increasing vertex order.
// Useful before comparing graphs structurally or printing deterministically.
func (g *Digraph) SortAdjacency() {
	for u := 0; u < g.n; u++ {
		sort.Ints(g.out[u])
		sort.Ints(g.in[u])
	}
}

// Equal reports whether g and h have identical vertex counts and identical
// arc multisets. It is label-sensitive (not an isomorphism test).
func (g *Digraph) Equal(h *Digraph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.out[u]) != len(h.out[u]) {
			return false
		}
		a := append([]int(nil), g.out[u]...)
		b := append([]int(nil), h.out[u]...)
		sort.Ints(a)
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// MaxOutDegree returns the maximum out-degree over all vertices (0 for the
// empty graph).
func (g *Digraph) MaxOutDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.out[u]) > d {
			d = len(g.out[u])
		}
	}
	return d
}

// IsRegular reports whether every vertex has out-degree and in-degree d.
func (g *Digraph) IsRegular(d int) bool {
	for u := 0; u < g.n; u++ {
		if len(g.out[u]) != d || len(g.in[u]) != d {
			return false
		}
	}
	return true
}

// String returns a compact human-readable adjacency dump, one vertex per
// line, suitable for small paper-scale graphs.
func (g *Digraph) String() string {
	s := fmt.Sprintf("digraph n=%d m=%d\n", g.n, g.m)
	for u := 0; u < g.n; u++ {
		s += fmt.Sprintf("  %d -> %v\n", u, g.out[u])
	}
	return s
}
