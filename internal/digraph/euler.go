package digraph

// IsEulerian reports whether the digraph admits a directed Eulerian circuit:
// it is connected (ignoring isolated vertices) and every vertex has equal
// in- and out-degree. The paper notes (§2.5) that Kautz graphs are Eulerian.
func (g *Digraph) IsEulerian() bool {
	if g.m == 0 {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.out[u]) != len(g.in[u]) {
			return false
		}
	}
	// Strong connectivity restricted to non-isolated vertices.
	start := -1
	for u := 0; u < g.n; u++ {
		if len(g.out[u]) > 0 {
			start = u
			break
		}
	}
	dist := g.BFS(start)
	rdist := g.Reverse().BFS(start)
	for u := 0; u < g.n; u++ {
		if len(g.out[u]) == 0 && len(g.in[u]) == 0 {
			continue
		}
		if dist[u] == Unreachable || rdist[u] == Unreachable {
			return false
		}
	}
	return true
}

// EulerianCircuit returns a directed Eulerian circuit as a vertex sequence
// whose first and last entries coincide and which traverses every arc
// exactly once, or nil when none exists. Hierholzer's algorithm, O(n + m).
func (g *Digraph) EulerianCircuit() []int {
	if !g.IsEulerian() {
		return nil
	}
	// next[u] is a cursor into g.out[u] so each arc is consumed once.
	next := make([]int, g.n)
	start := 0
	for len(g.out[start]) == 0 {
		start++
	}
	var circuit []int
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		if next[u] < len(g.out[u]) {
			v := g.out[u][next[u]]
			next[u]++
			stack = append(stack, v)
		} else {
			circuit = append(circuit, u)
			stack = stack[:len(stack)-1]
		}
	}
	if len(circuit) != g.m+1 {
		return nil
	}
	// Hierholzer emits the circuit in reverse; for a circuit either order is
	// valid, but reverse for readability (start vertex first in trail order).
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit
}

// HamiltonianCycle returns a directed Hamiltonian cycle as a vertex sequence
// of length n+1 (first == last), or nil if none is found. Exact backtracking
// with reachability pruning; intended for paper-scale graphs (the paper
// claims Kautz graphs are Hamiltonian, which we verify for small d, k).
func (g *Digraph) HamiltonianCycle() []int {
	if g.n == 0 {
		return nil
	}
	if g.n == 1 {
		if g.HasLoop(0) {
			return []int{0, 0}
		}
		return nil
	}
	if !g.IsStronglyConnected() {
		return nil
	}
	visited := make([]bool, g.n)
	path := make([]int, 0, g.n+1)
	path = append(path, 0)
	visited[0] = true
	if res := g.hamSearch(0, 1, visited, path); res != nil {
		return res
	}
	return nil
}

func (g *Digraph) hamSearch(u, count int, visited []bool, path []int) []int {
	if count == g.n {
		if g.HasArc(u, path[0]) {
			return append(append([]int(nil), path...), path[0])
		}
		return nil
	}
	for _, v := range g.out[u] {
		if visited[v] {
			continue
		}
		visited[v] = true
		path = append(path, v)
		if res := g.hamSearch(v, count+1, visited, path); res != nil {
			return res
		}
		path = path[:len(path)-1]
		visited[v] = false
	}
	return nil
}

// IsHamiltonianCycle verifies that cycle is a directed Hamiltonian cycle of
// g: length n+1, first == last, every vertex exactly once, consecutive
// vertices joined by arcs.
func (g *Digraph) IsHamiltonianCycle(cycle []int) bool {
	if len(cycle) != g.n+1 || g.n == 0 {
		return false
	}
	if cycle[0] != cycle[len(cycle)-1] {
		return false
	}
	seen := make([]bool, g.n)
	for _, v := range cycle[:g.n] {
		if v < 0 || v >= g.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i < g.n; i++ {
		if !g.HasArc(cycle[i], cycle[i+1]) {
			return false
		}
	}
	return true
}

// IsEulerianCircuit verifies that trail traverses every arc of g exactly
// once and returns to its start.
func (g *Digraph) IsEulerianCircuit(trail []int) bool {
	if len(trail) != g.m+1 || g.m == 0 {
		return false
	}
	if trail[0] != trail[len(trail)-1] {
		return false
	}
	used := make(map[[2]int]int)
	for i := 0; i+1 < len(trail); i++ {
		used[[2]int{trail[i], trail[i+1]}]++
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			_ = v
		}
	}
	// Compare against arc multiset.
	want := make(map[[2]int]int)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			want[[2]int{u, v}]++
		}
	}
	if len(used) != len(want) {
		return false
	}
	for a, c := range want {
		if used[a] != c {
			return false
		}
	}
	return true
}
