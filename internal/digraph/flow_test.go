package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxDisjointPathsComplete(t *testing.T) {
	// K5: between any two vertices, 1 direct path + 3 through the others.
	g := Complete(5)
	paths := g.MaxDisjointPaths(0, 4)
	if len(paths) != 4 {
		t.Fatalf("K5 disjoint paths = %d, want 4", len(paths))
	}
	if !g.InternallyDisjoint(paths) {
		t.Fatalf("paths not disjoint: %v", paths)
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 4 {
			t.Fatalf("bad endpoints: %v", p)
		}
	}
}

func TestMaxDisjointPathsCycle(t *testing.T) {
	g := Cycle(6)
	paths := g.MaxDisjointPaths(0, 3)
	if len(paths) != 1 {
		t.Fatalf("cycle disjoint paths = %d, want 1", len(paths))
	}
	if !g.InternallyDisjoint(paths) {
		t.Fatal("invalid path")
	}
}

func TestMaxDisjointPathsNoPath(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	if paths := g.MaxDisjointPaths(1, 0); len(paths) != 0 {
		t.Fatalf("no reverse path should exist, got %v", paths)
	}
	if g.MaxDisjointPaths(0, 0) != nil {
		t.Fatal("s == t should give nil")
	}
}

func TestMaxDisjointPathsParallelArcs(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	paths := g.MaxDisjointPaths(0, 1)
	if len(paths) != 2 {
		t.Fatalf("parallel direct arcs should give 2 paths, got %d", len(paths))
	}
}

func TestVertexConnectivityBasics(t *testing.T) {
	if c := Cycle(5).VertexConnectivity(); c != 1 {
		t.Fatalf("C5 connectivity = %d, want 1", c)
	}
	if c := Complete(4).VertexConnectivity(); c != 3 {
		t.Fatalf("K4 connectivity = %d, want 3", c)
	}
	// Disconnected.
	g := New(3)
	g.AddArc(0, 1)
	if g.VertexConnectivity() != 0 {
		t.Fatal("disconnected graph has connectivity 0")
	}
	if New(1).VertexConnectivity() != 0 {
		t.Fatal("single vertex has connectivity 0")
	}
}

func TestVertexConnectivityCutVertex(t *testing.T) {
	// Two triangles sharing vertex 2: connectivity 1.
	g := New(5)
	for _, tri := range [][]int{{0, 1, 2}, {2, 3, 4}} {
		for i := range tri {
			g.AddArc(tri[i], tri[(i+1)%3])
			g.AddArc(tri[(i+1)%3], tri[i])
		}
	}
	if c := g.VertexConnectivityExact(); c != 1 {
		t.Fatalf("shared-vertex graph connectivity = %d, want 1", c)
	}
}

func TestLineDigraphConnectivity(t *testing.T) {
	// L(K3) = KG(2,2) is 2-connected (Kautz graphs are d-connected).
	l := LineDigraph(Complete(3))
	if c := l.VertexConnectivityExact(); c != 2 {
		t.Fatalf("KG(2,2) connectivity = %d, want 2", c)
	}
	// L²(K3) = KG(2,3) likewise.
	l2 := LineDigraphPower(Complete(3), 2)
	if c := l2.VertexConnectivityExact(); c != 2 {
		t.Fatalf("KG(2,3) connectivity = %d, want 2", c)
	}
	// L(K4) = KG(3,2) is 3-connected.
	l3 := LineDigraph(Complete(4))
	if c := l3.VertexConnectivityExact(); c != 3 {
		t.Fatalf("KG(3,2) connectivity = %d, want 3", c)
	}
}

// Property: the number of internally disjoint paths between non-adjacent
// vertices never exceeds min(outdeg(s), indeg(t)), and the returned paths
// are always valid and disjoint.
func TestDisjointPathsBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddArc(u, v)
			}
		}
		s, t0 := 0, n-1
		if g.HasArc(s, t0) {
			return true // bound only meaningful for non-adjacent pairs
		}
		paths := g.MaxDisjointPaths(s, t0)
		if !g.InternallyDisjoint(paths) && len(paths) > 0 {
			return false
		}
		bound := g.OutDegree(s)
		if g.InDegree(t0) < bound {
			bound = g.InDegree(t0)
		}
		return len(paths) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: path count from MaxDisjointPaths is symmetric under graph
// reversal: paths(s,t) in g == paths(t,s) in reverse(g).
func TestDisjointPathsReversalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddArc(u, v)
			}
		}
		a := len(g.MaxDisjointPaths(0, n-1))
		b := len(g.Reverse().MaxDisjointPaths(n-1, 0))
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
