package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for u := 0; u < 5; u++ {
		if g.OutDegree(u) != 0 || g.InDegree(u) != 0 {
			t.Fatalf("vertex %d should be isolated", u)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddArcOutOfRangePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("AddArc(0, 5) should panic")
		}
	}()
	g.AddArc(0, 5)
}

func TestAddArcDegreesAndHasArc(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 2)
	g.AddArc(2, 2) // loop
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 3 {
		t.Fatalf("degree mismatch: out(0)=%d in(2)=%d", g.OutDegree(0), g.InDegree(2))
	}
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Fatal("HasArc wrong")
	}
	if !g.HasLoop(2) || g.HasLoop(0) {
		t.Fatal("HasLoop wrong")
	}
	if g.LoopCount() != 1 {
		t.Fatalf("LoopCount = %d, want 1", g.LoopCount())
	}
}

func TestParallelArcsMultiplicity(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	if g.ArcMultiplicity(0, 1) != 2 {
		t.Fatalf("multiplicity = %d, want 2", g.ArcMultiplicity(0, 1))
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	h := g.Clone()
	h.AddArc(1, 2)
	if g.M() != 1 || h.M() != 2 {
		t.Fatalf("clone not independent: g.M=%d h.M=%d", g.M(), h.M())
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("graph should equal its clone")
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	h := New(3)
	h.AddArc(1, 0)
	if g.Equal(h) {
		t.Fatal("differently-directed graphs reported equal")
	}
	if !New(0).Equal(New(0)) {
		t.Fatal("empty graphs should be equal")
	}
}

func TestArcsRoundTrip(t *testing.T) {
	g := Complete(4)
	arcs := g.Arcs()
	if len(arcs) != 12 {
		t.Fatalf("K4 has %d arcs, want 12", len(arcs))
	}
	h := New(4)
	for _, a := range arcs {
		h.AddArc(a[0], a[1])
	}
	if !g.Equal(h) {
		t.Fatal("rebuilding from Arcs() changed the graph")
	}
}

func TestBFSAndDistance(t *testing.T) {
	g := Cycle(5)
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS(0)[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if g.Distance(2, 1) != 4 {
		t.Fatalf("Distance(2,1) = %d, want 4", g.Distance(2, 1))
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	d := g.BFS(0)
	if d[2] != Unreachable {
		t.Fatalf("vertex 2 should be unreachable, got %d", d[2])
	}
	if g.Diameter() != Unreachable {
		t.Fatal("disconnected graph should report Unreachable diameter")
	}
}

func TestShortestPath(t *testing.T) {
	g := Cycle(6)
	p := g.ShortestPath(1, 4)
	want := []int{1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if p := g.ShortestPath(0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("self path = %v, want [0]", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(2)
	if g.ShortestPath(0, 1) != nil {
		t.Fatal("unreachable pair should give nil path")
	}
}

func TestDiameterComplete(t *testing.T) {
	if d := Complete(7).Diameter(); d != 1 {
		t.Fatalf("diameter(K7) = %d, want 1", d)
	}
	if d := CompleteWithLoops(7).Diameter(); d != 1 {
		t.Fatalf("diameter(K+7) = %d, want 1", d)
	}
	if d := Cycle(9).Diameter(); d != 8 {
		t.Fatalf("diameter(C9) = %d, want 8", d)
	}
}

func TestAverageDistance(t *testing.T) {
	if ad := Complete(5).AverageDistance(); ad != 1 {
		t.Fatalf("avg distance K5 = %v, want 1", ad)
	}
	// C3: distances 1 and 2 from each vertex -> mean 1.5
	if ad := Cycle(3).AverageDistance(); ad != 1.5 {
		t.Fatalf("avg distance C3 = %v, want 1.5", ad)
	}
}

func TestDistanceHistogram(t *testing.T) {
	h := Cycle(4).DistanceHistogram()
	want := []int{0, 4, 4, 4}
	if len(h) != len(want) {
		t.Fatalf("hist = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	if !Cycle(5).IsStronglyConnected() {
		t.Fatal("C5 is strongly connected")
	}
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	if g.IsStronglyConnected() {
		t.Fatal("path graph is not strongly connected")
	}
	if !New(0).IsStronglyConnected() {
		t.Fatal("empty graph is vacuously strongly connected")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	r := g.Reverse()
	if !r.HasArc(1, 0) || !r.HasArc(2, 1) || r.HasArc(0, 1) {
		t.Fatal("Reverse wrong")
	}
	if !g.Equal(r.Reverse()) {
		t.Fatal("double reverse should restore the graph")
	}
}

func TestLineDigraphOfCompleteK3(t *testing.T) {
	// L(K3) has 6 vertices (arcs of K3) and each arc (u,v) has out-degree
	// = outdeg(v) = 2, so 12 arcs. It is KG(2,2), diameter 2.
	l := LineDigraph(Complete(3))
	if l.N() != 6 || l.M() != 12 {
		t.Fatalf("L(K3): n=%d m=%d, want 6, 12", l.N(), l.M())
	}
	if !l.IsRegular(2) {
		t.Fatal("L(K3) should be 2-regular")
	}
	if l.Diameter() != 2 {
		t.Fatalf("diameter L(K3) = %d, want 2", l.Diameter())
	}
}

func TestLineDigraphPower(t *testing.T) {
	g := Complete(3)
	if !LineDigraphPower(g, 0).Equal(g) {
		t.Fatal("L^0 should be identity")
	}
	l2 := LineDigraphPower(g, 2)
	if l2.N() != 12 || l2.M() != 24 {
		t.Fatalf("L^2(K3): n=%d m=%d, want 12, 24", l2.N(), l2.M())
	}
	if l2.Diameter() != 3 {
		t.Fatalf("L^2(K3) diameter = %d, want 3 (KG(2,3))", l2.Diameter())
	}
}

func TestLineDigraphPreservesLoops(t *testing.T) {
	// A loop (u,u) in G gives the line digraph vertex a=(u,u) an arc to
	// itself, so loop counts are preserved under L for loop-ful graphs.
	g := CompleteWithLoops(3)
	l := LineDigraph(g)
	if l.LoopCount() != 3 {
		t.Fatalf("L(K+3) loop count = %d, want 3", l.LoopCount())
	}
}

func TestIsomorphicBasic(t *testing.T) {
	if !Isomorphic(Cycle(5), Cycle(5)) {
		t.Fatal("C5 ≅ C5")
	}
	if Isomorphic(Cycle(5), Cycle(6)) {
		t.Fatal("C5 and C6 are not isomorphic")
	}
	if Isomorphic(Complete(4), CompleteWithLoops(4)) {
		t.Fatal("K4 and K+4 differ")
	}
}

func TestIsomorphicRelabel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 8
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddArc(u, v)
				}
			}
		}
		perm := rng.Perm(n)
		h := New(n)
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				h.AddArc(perm[u], perm[v])
			}
		}
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: relabeled graph not detected isomorphic", trial)
		}
	}
}

func TestIsomorphicNegativeSameDegrees(t *testing.T) {
	// Two 2-regular digraphs on 6 vertices: C6 versus two disjoint C3s.
	// Same in/out degree sequence, not isomorphic.
	g := Cycle(6)
	h := New(6)
	for _, c := range [][]int{{0, 1, 2}, {3, 4, 5}} {
		for i := range c {
			h.AddArc(c[i], c[(i+1)%3])
		}
	}
	if Isomorphic(g, h) {
		t.Fatal("C6 vs 2xC3 wrongly isomorphic")
	}
}

func TestEulerian(t *testing.T) {
	if !Complete(3).IsEulerian() {
		t.Fatal("K3 is Eulerian")
	}
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	if g.IsEulerian() {
		t.Fatal("open path is not Eulerian")
	}
	if New(2).IsEulerian() {
		t.Fatal("arcless graph is not Eulerian")
	}
}

func TestEulerianCircuit(t *testing.T) {
	for _, g := range []*Digraph{Complete(3), Complete(4), Cycle(5), CompleteWithLoops(3)} {
		c := g.EulerianCircuit()
		if c == nil {
			t.Fatalf("no Eulerian circuit found on %v", g)
		}
		if !g.IsEulerianCircuit(c) {
			t.Fatalf("invalid Eulerian circuit %v", c)
		}
	}
}

func TestEulerianCircuitNilWhenImpossible(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	if g.EulerianCircuit() != nil {
		t.Fatal("should not find circuit in non-Eulerian graph")
	}
}

func TestHamiltonianCycle(t *testing.T) {
	for _, g := range []*Digraph{Complete(4), Cycle(7)} {
		c := g.HamiltonianCycle()
		if c == nil {
			t.Fatal("Hamiltonian cycle should exist")
		}
		if !g.IsHamiltonianCycle(c) {
			t.Fatalf("invalid Hamiltonian cycle %v", c)
		}
	}
}

func TestHamiltonianCycleAbsent(t *testing.T) {
	// Star-like digraph: 0 <-> i for all i; no Hamiltonian cycle for n >= 4
	// because consecutive leaves are not adjacent.
	g := New(4)
	for i := 1; i < 4; i++ {
		g.AddArc(0, i)
		g.AddArc(i, 0)
	}
	if g.HamiltonianCycle() != nil {
		t.Fatal("star digraph has no Hamiltonian cycle")
	}
}

func TestHamiltonianSingleVertex(t *testing.T) {
	g := New(1)
	if g.HamiltonianCycle() != nil {
		t.Fatal("loopless single vertex has no Hamiltonian cycle")
	}
	g.AddArc(0, 0)
	if c := g.HamiltonianCycle(); c == nil || !g.IsHamiltonianCycle(c) {
		t.Fatal("single loop vertex is Hamiltonian")
	}
}

func TestAddRemoveLoops(t *testing.T) {
	g := Complete(4)
	gl := AddLoops(g)
	if gl.LoopCount() != 4 || gl.M() != g.M()+4 {
		t.Fatal("AddLoops wrong")
	}
	if !RemoveLoops(gl).Equal(g) {
		t.Fatal("RemoveLoops(AddLoops(g)) != g")
	}
	// AddLoops is idempotent.
	if !AddLoops(gl).Equal(gl) {
		t.Fatal("AddLoops not idempotent")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	keep := []bool{true, false, true, true, false}
	h, remap := InducedSubgraph(g, keep)
	if h.N() != 3 {
		t.Fatalf("induced n = %d, want 3", h.N())
	}
	if h.M() != 6 { // K3
		t.Fatalf("induced m = %d, want 6", h.M())
	}
	if remap[1] != -1 || remap[0] != 0 || remap[2] != 1 {
		t.Fatalf("remap = %v", remap)
	}
}

func TestIsRegularAndMaxOutDegree(t *testing.T) {
	if !Complete(5).IsRegular(4) {
		t.Fatal("K5 is 4-regular")
	}
	if Complete(5).IsRegular(3) {
		t.Fatal("K5 is not 3-regular")
	}
	if Complete(5).MaxOutDegree() != 4 {
		t.Fatal("max out degree K5 should be 4")
	}
	if New(3).MaxOutDegree() != 0 {
		t.Fatal("empty graph max out degree should be 0")
	}
}

// Property: for any random digraph, the line digraph has exactly M(G)
// vertices and sum over arcs (u,v) of outdeg(v) arcs.
func TestLineDigraphCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					g.AddArc(u, v)
				}
			}
		}
		l := LineDigraph(g)
		if l.N() != g.M() {
			return false
		}
		wantArcs := 0
		for _, a := range g.Arcs() {
			wantArcs += g.OutDegree(a[1])
		}
		return l.M() == wantArcs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: reversing twice restores the exact arc multiset.
func TestReverseInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := New(n)
		arcs := rng.Intn(3 * n)
		for i := 0; i < arcs; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		return g.Equal(g.Reverse().Reverse())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along arcs:
// dist[v] <= dist[u] + 1 for every arc (u,v) with u reachable.
func TestBFSTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		d := g.BFS(0)
		for _, a := range g.Arcs() {
			u, v := a[0], a[1]
			if d[u] != Unreachable && (d[v] == Unreachable || d[v] > d[u]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringOutput(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1)
	s := g.String()
	if s == "" {
		t.Fatal("String should be non-empty")
	}
}
