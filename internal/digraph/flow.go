package digraph

// Max-flow machinery for connectivity analysis. The fault-tolerance claim
// of the paper (§2.5, [17]) rests on the Kautz graph being d-connected:
// between any two vertices there are d internally vertex-disjoint paths.
// VertexConnectivity and DisjointPaths make that checkable: unit-capacity
// max flow on the vertex-split graph (Even's construction), with
// augmenting-path search (Ford-Fulkerson; capacities are 0/1 so each
// augmentation adds one path and the flow value is at most the degree).

// MaxDisjointPaths returns a maximum set of internally vertex-disjoint
// directed paths from s to t (s != t), each path a vertex sequence
// including both endpoints. Parallel arcs add parallel one-arc paths; a
// direct arc s->t contributes one path per multiplicity.
func (g *Digraph) MaxDisjointPaths(s, t int) [][]int {
	g.check(s)
	g.check(t)
	if s == t {
		return nil
	}
	// Vertex splitting: vertex v becomes v_in = 2v, v_out = 2v+1 with a
	// unit arc v_in -> v_out (infinite for s and t, realized by high
	// capacity). Arc (u,v) becomes u_out -> v_in with capacity =
	// multiplicity (parallel arcs are distinct paths only if they do not
	// share internal vertices — for the direct s->t arcs they are).
	n2 := 2 * g.n
	cap := map[[2]int]int{}
	addCap := func(u, v, c int) { cap[[2]int{u, v}] += c }
	const inf = 1 << 29
	for v := 0; v < g.n; v++ {
		c := 1
		if v == s || v == t {
			c = inf
		}
		addCap(2*v, 2*v+1, c)
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			addCap(2*u+1, 2*v, 1)
		}
	}
	// Residual adjacency.
	adj := make([][]int, n2)
	seen := map[[2]int]bool{}
	for e := range cap {
		if !seen[e] {
			adj[e[0]] = append(adj[e[0]], e[1])
			seen[e] = true
		}
		rev := [2]int{e[1], e[0]}
		if !seen[rev] {
			adj[e[1]] = append(adj[e[1]], e[0])
			seen[rev] = true
		}
	}
	flow := map[[2]int]int{}
	residual := func(u, v int) int { return cap[[2]int{u, v}] - flow[[2]int{u, v}] }
	src, dst := 2*s+1, 2*t
	for {
		// BFS augmenting path in the residual graph.
		prev := make([]int, n2)
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		queue := []int{src}
		for len(queue) > 0 && prev[dst] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if prev[v] == -1 && residual(u, v) > 0 {
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		if prev[dst] == -1 {
			break
		}
		for v := dst; v != src; v = prev[v] {
			u := prev[v]
			flow[[2]int{u, v}]++
			flow[[2]int{v, u}]--
		}
	}
	// Decompose the flow into paths over original vertices.
	var paths [][]int
	// outFlow[u_out] lists v_in successors with positive flow.
	for {
		// Find a successor of src with flow.
		path := []int{s}
		u := src
		ok := false
		for {
			nextV := -1
			for _, v := range adj[u] {
				if flow[[2]int{u, v}] > 0 {
					nextV = v
					break
				}
			}
			if nextV == -1 {
				break
			}
			flow[[2]int{u, nextV}]--
			if nextV == dst {
				path = append(path, t)
				ok = true
				break
			}
			// nextV is some v_in (even); consume the split arc and move to
			// v_out.
			vOrig := nextV / 2
			flow[[2]int{2 * vOrig, 2*vOrig + 1}]--
			path = append(path, vOrig)
			u = 2*vOrig + 1
		}
		if !ok {
			break
		}
		paths = append(paths, path)
	}
	return paths
}

// VertexConnectivity returns the (strong) vertex connectivity of the
// digraph: the minimum over vertex pairs (s,t), s != t, with no arc s->t
// of the maximum number of internally disjoint s->t paths; pairs joined by
// arcs use the standard adjusted bound. For d-regular strongly connected
// digraphs this equals min over non-adjacent pairs of MaxDisjointPaths.
// Exponentially many pairs are avoided by the classical trick: fix s
// arbitrary, check s against all t and all t against s (sufficient for a
// lower bound witness on vertex-transitive graphs like Kautz, which is the
// use here). For exactness on arbitrary graphs use VertexConnectivityExact.
func (g *Digraph) VertexConnectivity() int {
	if g.n < 2 {
		return 0
	}
	if !g.IsStronglyConnected() {
		return 0
	}
	best := g.n
	s := 0
	for t := 1; t < g.n; t++ {
		if !g.HasArc(s, t) {
			if c := len(g.MaxDisjointPaths(s, t)); c < best {
				best = c
			}
		}
		if !g.HasArc(t, s) {
			if c := len(g.MaxDisjointPaths(t, s)); c < best {
				best = c
			}
		}
	}
	if best == g.n {
		// All pairs adjacent (complete-ish digraph): connectivity n-1.
		return g.n - 1
	}
	return best
}

// VertexConnectivityExact computes vertex connectivity over all ordered
// non-adjacent pairs — O(n²) max-flow runs; use on small graphs only.
func (g *Digraph) VertexConnectivityExact() int {
	if g.n < 2 {
		return 0
	}
	if !g.IsStronglyConnected() {
		return 0
	}
	best := g.n
	allAdjacent := true
	for s := 0; s < g.n; s++ {
		for t := 0; t < g.n; t++ {
			if s == t || g.HasArc(s, t) {
				continue
			}
			allAdjacent = false
			if c := len(g.MaxDisjointPaths(s, t)); c < best {
				best = c
			}
		}
	}
	if allAdjacent {
		return g.n - 1
	}
	return best
}

// InternallyDisjoint verifies that the given s-t paths share no internal
// vertices pairwise and are each valid directed paths.
func (g *Digraph) InternallyDisjoint(paths [][]int) bool {
	used := map[int]bool{}
	for _, p := range paths {
		if len(p) < 2 {
			return false
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasArc(p[i], p[i+1]) {
				return false
			}
		}
		for _, v := range p[1 : len(p)-1] {
			if used[v] {
				return false
			}
			used[v] = true
		}
	}
	return true
}
