package digraph

import "sort"

// Isomorphic reports whether g and h are isomorphic directed multigraphs.
// It uses exact backtracking over vertex assignments, pruned by an
// invariant-based partition refinement (in/out-degree, loop multiplicity,
// and iterated neighborhood signatures — a 1-dimensional Weisfeiler-Leman
// coloring). This is exponential in the worst case but the refinement makes
// it fast on the vertex-transitive-ish graphs in this reproduction (Kautz,
// Imase-Itoh, de Bruijn) at paper scales.
func Isomorphic(g, h *Digraph) bool {
	return FindIsomorphism(g, h) != nil
}

// FindIsomorphism returns a vertex mapping m with m[u] = image of u such
// that g relabeled by m equals h (arc multisets coincide), or nil when the
// graphs are not isomorphic. The empty graph maps to an empty (non-nil)
// mapping.
func FindIsomorphism(g, h *Digraph) []int {
	if g.n != h.n || g.m != h.m {
		return nil
	}
	if g.n == 0 {
		return []int{}
	}
	cg := refine(g)
	ch := refine(h)
	if !sameColorHistogram(cg, ch) {
		return nil
	}
	// Order g's vertices by ascending color-class size for early pruning.
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	classSize := map[uint64]int{}
	for _, c := range cg {
		classSize[c]++
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := classSize[cg[order[a]]], classSize[cg[order[b]]]
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	mapping := make([]int, g.n)
	used := make([]bool, h.n)
	for i := range mapping {
		mapping[i] = -1
	}
	if isoSearch(g, h, cg, ch, order, 0, mapping, used) {
		return mapping
	}
	return nil
}

func isoSearch(g, h *Digraph, cg, ch []uint64, order []int, depth int, mapping []int, used []bool) bool {
	if depth == len(order) {
		return true
	}
	u := order[depth]
	for v := 0; v < h.n; v++ {
		if used[v] || cg[u] != ch[v] {
			continue
		}
		if !consistent(g, h, mapping, u, v) {
			continue
		}
		mapping[u] = v
		used[v] = true
		if isoSearch(g, h, cg, ch, order, depth+1, mapping, used) {
			return true
		}
		mapping[u] = -1
		used[v] = false
	}
	return false
}

// consistent checks that mapping u -> v preserves arc multiplicities with
// every previously mapped vertex (including loops at u itself).
func consistent(g, h *Digraph, mapping []int, u, v int) bool {
	if g.ArcMultiplicity(u, u) != h.ArcMultiplicity(v, v) {
		return false
	}
	for w, x := range mapping {
		if x < 0 || w == u {
			continue
		}
		if g.ArcMultiplicity(u, w) != h.ArcMultiplicity(v, x) {
			return false
		}
		if g.ArcMultiplicity(w, u) != h.ArcMultiplicity(x, v) {
			return false
		}
	}
	return true
}

// refine computes a color per vertex via iterated neighborhood hashing.
// Vertices with different colors cannot correspond under any isomorphism.
func refine(g *Digraph) []uint64 {
	col := make([]uint64, g.n)
	for u := 0; u < g.n; u++ {
		col[u] = hash3(uint64(len(g.out[u])), uint64(len(g.in[u])), uint64(g.ArcMultiplicity(u, u)))
	}
	// Iterate to a fixed point in the number of color classes, capped at n
	// rounds (the partition can refine at most n-1 times).
	prevClasses := countClasses(col)
	for round := 0; round < g.n; round++ {
		next := make([]uint64, g.n)
		for u := 0; u < g.n; u++ {
			outSig := neighborSignature(col, g.out[u])
			inSig := neighborSignature(col, g.in[u])
			next[u] = hash3(col[u], outSig, inSig)
		}
		col = next
		c := countClasses(col)
		if c == prevClasses {
			break
		}
		prevClasses = c
	}
	return col
}

func neighborSignature(col []uint64, nbrs []int) uint64 {
	vals := make([]uint64, len(nbrs))
	for i, v := range nbrs {
		vals[i] = col[v]
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var sig uint64 = 1469598103934665603
	for _, v := range vals {
		sig = hash3(sig, v, 0x9e3779b97f4a7c15)
	}
	return sig
}

func hash3(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b
	x ^= x >> 32
	x *= 0xbf58476d1ce4e5b9
	x ^= c * 0x94d049bb133111eb
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

func countClasses(col []uint64) int {
	seen := make(map[uint64]struct{}, len(col))
	for _, c := range col {
		seen[c] = struct{}{}
	}
	return len(seen)
}

func sameColorHistogram(a, b []uint64) bool {
	ha := map[uint64]int{}
	hb := map[uint64]int{}
	for _, c := range a {
		ha[c]++
	}
	for _, c := range b {
		hb[c]++
	}
	if len(ha) != len(hb) {
		return false
	}
	for c, n := range ha {
		if hb[c] != n {
			return false
		}
	}
	return true
}
