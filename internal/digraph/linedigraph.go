package digraph

// LineDigraph returns the line digraph L(G): its vertices are the arcs of G
// and there is an arc from a = (u,v) to b = (v,w) whenever the head of a is
// the tail of b. Arc vertices are numbered in the order reported by Arcs().
//
// The Kautz graph satisfies KG(d,k) = L^{k-1}(K_{d+1}) (Fiol, Yebra, Alegre
// 1984), which is Figure 6 of the paper; LineDigraphPowers verifies it.
func LineDigraph(g *Digraph) *Digraph {
	arcs := g.Arcs()
	l := New(len(arcs))
	// Index arcs by tail so the quadratic pairing only scans compatible arcs.
	byTail := make([][]int, g.N())
	for idx, a := range arcs {
		byTail[a[0]] = append(byTail[a[0]], idx)
	}
	for idx, a := range arcs {
		head := a[1]
		for _, jdx := range byTail[head] {
			l.AddArc(idx, jdx)
		}
	}
	return l
}

// LineDigraphPower returns L^k(G), the k-th line digraph iterate of G.
// L^0(G) is a copy of G.
func LineDigraphPower(g *Digraph, k int) *Digraph {
	h := g.Clone()
	for i := 0; i < k; i++ {
		h = LineDigraph(h)
	}
	return h
}

// LineDigraphArcLabels returns, for each vertex of L(G), the (tail, head)
// pair of the G-arc it represents, in the same numbering used by
// LineDigraph. This is the labeling device behind Kautz words: iterating it
// turns vertices of L^{k-1}(K_{d+1}) into words of length k.
func LineDigraphArcLabels(g *Digraph) [][2]int {
	return g.Arcs()
}
