package digraph

// Unreachable is the distance value reported for vertex pairs with no
// directed path.
const Unreachable = -1

// BFS returns the vector of directed distances from src to every vertex,
// with Unreachable for vertices not reachable from src. Loops and parallel
// arcs are harmless (distance uses arc existence only).
func (g *Digraph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the length of a shortest directed path from u to v, or
// Unreachable when no such path exists.
func (g *Digraph) Distance(u, v int) int {
	return g.BFS(u)[v]
}

// ShortestPath returns one shortest directed path from u to v as a vertex
// sequence including both endpoints, or nil when v is unreachable from u.
func (g *Digraph) ShortestPath(u, v int) []int {
	g.check(u)
	g.check(v)
	prev := make([]int, g.n)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
		prev[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 && dist[v] == Unreachable {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.out[x] {
			if dist[y] == Unreachable {
				dist[y] = dist[x] + 1
				prev[y] = x
				queue = append(queue, y)
			}
		}
	}
	if dist[v] == Unreachable {
		return nil
	}
	path := []int{v}
	for x := v; x != u; x = prev[x] {
		path = append(path, prev[x])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Eccentricity returns the maximum distance from u to any vertex, or
// Unreachable if some vertex is not reachable from u.
func (g *Digraph) Eccentricity(u int) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the directed diameter of the graph, or Unreachable if the
// graph is not strongly connected. The empty graph has diameter 0.
func (g *Digraph) Diameter() int {
	diam := 0
	for u := 0; u < g.n; u++ {
		e := g.Eccentricity(u)
		if e == Unreachable {
			return Unreachable
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// AverageDistance returns the mean directed distance over all ordered vertex
// pairs (u, v) with u != v, or Unreachable (as a float) if any pair is
// unreachable. A single-vertex graph has average distance 0.
func (g *Digraph) AverageDistance() float64 {
	if g.n <= 1 {
		return 0
	}
	total := 0
	for u := 0; u < g.n; u++ {
		for v, d := range g.BFS(u) {
			if v == u {
				continue
			}
			if d == Unreachable {
				return Unreachable
			}
			total += d
		}
	}
	return float64(total) / float64(g.n*(g.n-1))
}

// IsStronglyConnected reports whether every vertex can reach every other
// vertex. Implemented as two BFS sweeps (forward from 0 and forward from 0
// in the reverse graph), which is exact and fast for the graph sizes used in
// the reproduction.
func (g *Digraph) IsStronglyConnected() bool {
	if g.n == 0 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == Unreachable {
			return false
		}
	}
	rev := g.Reverse()
	for _, d := range rev.BFS(0) {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Reverse returns the digraph with every arc reversed.
func (g *Digraph) Reverse() *Digraph {
	h := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			h.AddArc(v, u)
		}
	}
	return h
}

// DistanceHistogram returns hist where hist[d] is the number of ordered
// pairs (u,v), u != v, at distance exactly d, indexed up to the diameter.
// It returns nil if the graph is not strongly connected.
func (g *Digraph) DistanceHistogram() []int {
	diam := g.Diameter()
	if diam == Unreachable {
		return nil
	}
	hist := make([]int, diam+1)
	for u := 0; u < g.n; u++ {
		for v, d := range g.BFS(u) {
			if v != u {
				hist[d]++
			}
		}
	}
	return hist
}
