package digraph

import (
	"math/rand"
	"testing"
)

// FindIsomorphism must return a mapping that literally transports the arc
// multiset of g onto h — validated by relabeling and comparing.
func TestFindIsomorphismMappingIsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(4)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		perm := rng.Perm(n)
		h := New(n)
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				h.AddArc(perm[u], perm[v])
			}
		}
		m := FindIsomorphism(g, h)
		if m == nil {
			t.Fatalf("trial %d: isomorphism must exist", trial)
		}
		relabeled := New(n)
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				relabeled.AddArc(m[u], m[v])
			}
		}
		if !relabeled.Equal(h) {
			t.Fatalf("trial %d: mapping does not transport g onto h", trial)
		}
	}
}

func TestFindIsomorphismEmptyAndMismatch(t *testing.T) {
	if m := FindIsomorphism(New(0), New(0)); m == nil || len(m) != 0 {
		t.Fatal("empty graphs should map via the empty mapping")
	}
	if FindIsomorphism(New(2), New(3)) != nil {
		t.Fatal("different orders cannot be isomorphic")
	}
	a := New(2)
	a.AddArc(0, 1)
	if FindIsomorphism(a, New(2)) != nil {
		t.Fatal("different sizes cannot be isomorphic")
	}
}

// The refinement must not produce false negatives on regular graphs where
// all degrees coincide: KG-style line digraphs against relabelings.
func TestFindIsomorphismOnRegularGraphs(t *testing.T) {
	g := LineDigraphPower(Complete(3), 2) // KG(2,3), 2-regular
	rng := rand.New(rand.NewSource(8))
	perm := rng.Perm(g.N())
	h := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(u) {
			h.AddArc(perm[u], perm[v])
		}
	}
	if FindIsomorphism(g, h) == nil {
		t.Fatal("relabeled KG(2,3) must be found isomorphic")
	}
}
