package coordinator_test

// FuzzLeaseProtocol feeds the lease state machine random interleavings of
// worker events — acquires, renews, clock jumps past expiry, honest
// completions, and hostile ones (wrong epoch, wrong indices) carrying
// poisoned metrics — then drains the job to completion and checks the
// protocol's safety invariants:
//
//   - no shard is ever lost: the drain always finishes the job;
//   - no point is double-counted: OnRows never repeats a global index;
//   - no stale-epoch or invalid completion is ever accepted, and the
//     merged results carry only the honest per-point metrics — a single
//     poisoned row in the merge would be visible.
//
// The fake clock only ever moves forward; nothing sleeps.

import (
	"sync"
	"testing"
	"time"

	"otisnet/internal/coordinator"
	"otisnet/internal/sim"
	"otisnet/internal/sweep"
)

// fuzzPoints builds the fixed 7-point grid the fuzz job runs over. The
// honest metrics for point i are Metrics{Delivered: i + 1}; poisoned rows
// use Delivered >= 1000 so acceptance of one is provable from the merge.
func fuzzPoints(tb testing.TB) []sweep.Scenario {
	tb.Helper()
	topo, err := sweep.TopoSpec{Net: "sk", S: 3, D: 2, K: 2}.Build()
	if err != nil {
		tb.Fatal(err)
	}
	pts := sweep.Grid{
		Topologies: []sweep.Topology{topo},
		Rates:      []float64{0.1},
		Seeds:      []int64{1, 2, 3, 4, 5, 6, 7},
		Slots:      50,
		Drain:      50,
	}.Points()
	if len(pts) != 7 {
		tb.Fatalf("fuzz grid has %d points, want 7", len(pts))
	}
	return pts
}

func honestRows(points []sweep.Scenario, shard, shards int) []sweep.ShardResult {
	sh, err := sweep.ShardPoints(points, shard, shards)
	if err != nil {
		return nil
	}
	rows := make([]sweep.ShardResult, len(sh.Indices))
	for i, idx := range sh.Indices {
		rows[i] = sweep.ShardResult{Index: idx, Metrics: sim.Metrics{Delivered: idx + 1}}
	}
	return rows
}

func FuzzLeaseProtocol(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 3, 0})
	f.Add([]byte{0, 2, 200, 0, 3, 0})
	f.Add([]byte{0, 4, 0, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const shards = 3
		const ttl = 10 * time.Second
		points := fuzzPoints(t)
		clock := newFakeClock()
		coord := coordinator.New(coordinator.Config{
			LeaseTTL:   ttl,
			StealAfter: ttl / 2,
			Clock:      clock,
		})

		var mu sync.Mutex
		seenIdx := map[int]bool{}
		var done bool
		var doneErr error
		var results []sweep.Result
		job, err := coord.Submit("fuzz", points, nil, shards, 0, coordinator.Hooks{
			OnRows: func(rows []sweep.ShardResult) {
				mu.Lock()
				defer mu.Unlock()
				for _, r := range rows {
					if seenIdx[r.Index] {
						t.Errorf("OnRows double-counted point %d", r.Index)
					}
					seenIdx[r.Index] = true
				}
			},
			OnDone: func(res []sweep.Result, err error) {
				mu.Lock()
				defer mu.Unlock()
				if done {
					t.Errorf("OnDone fired twice")
				}
				done, doneErr, results = true, err, res
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		workerName := func(b byte) string { return string(rune('A' + int(b%3))) }

		var grants []coordinator.Grant
		pick := func(b byte) (coordinator.Grant, bool) {
			if len(grants) == 0 {
				return coordinator.Grant{}, false
			}
			return grants[int(b)%len(grants)], true
		}

		for ops := 0; len(data) > 0 && ops < 256; ops++ {
			switch next() % 6 {
			case 0: // acquire
				if g, ok := coord.Acquire(workerName(next())); ok {
					grants = append(grants, g)
				}
			case 1: // renew a remembered grant (possibly long dead)
				if g, ok := pick(next()); ok {
					coord.Renew(g.LeaseID, g.Epoch, "A")
				}
			case 2: // time passes; leases may expire
				clock.Advance(time.Duration(next()) * ttl / 64)
			case 3: // honest completion of a remembered grant
				if g, ok := pick(next()); ok {
					coord.Complete(g.Job, g.Shard, g.LeaseID, g.Epoch, "A", honestRows(points, g.Shard, shards))
				}
			case 4: // stale-epoch completion carrying poisoned metrics
				if g, ok := pick(next()); ok {
					rows := honestRows(points, g.Shard, shards)
					for i := range rows {
						rows[i].Metrics = sim.Metrics{Delivered: 1000 + rows[i].Index}
					}
					st, _ := coord.Complete(g.Job, g.Shard, g.LeaseID, g.Epoch+1, "A", rows)
					if st == coordinator.StatusAccepted {
						t.Fatalf("stale-epoch completion accepted on shard %d", g.Shard)
					}
				}
			case 5: // malformed completion: rows describe the wrong shard
				if g, ok := pick(next()); ok {
					rows := honestRows(points, (g.Shard+1)%shards, shards)
					for i := range rows {
						rows[i].Metrics = sim.Metrics{Delivered: 2000 + rows[i].Index}
					}
					st, _ := coord.Complete(g.Job, g.Shard, g.LeaseID, g.Epoch, "A", rows)
					if st == coordinator.StatusAccepted {
						t.Fatalf("wrong-shard rows accepted on shard %d", g.Shard)
					}
				}
			}
		}

		// Drain: whatever mess the interleaving left behind, an honest
		// worker fleet must still be able to finish the job — no shard may
		// be lost. Expiry is lazy, so alternate acquire attempts with clock
		// advances to flush zombie leases.
		for i := 0; i < 64; i++ {
			mu.Lock()
			d := done
			mu.Unlock()
			if d {
				break
			}
			if g, ok := coord.Acquire("drain"); ok {
				coord.Complete(g.Job, g.Shard, g.LeaseID, g.Epoch, "drain", honestRows(points, g.Shard, shards))
				continue
			}
			clock.Advance(ttl + time.Second)
		}

		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Fatalf("job never completed: a shard was lost (progress %+v)", job.Progress())
		}
		if doneErr != nil {
			t.Fatalf("job failed instead of completing: %v", doneErr)
		}
		if len(seenIdx) != len(points) {
			t.Fatalf("OnRows covered %d of %d points", len(seenIdx), len(points))
		}
		for i, r := range results {
			if r.Metrics.Delivered != i+1 {
				t.Fatalf("merged point %d carries foreign metrics %+v — a stale or invalid row was merged", i, r.Metrics)
			}
		}
	})
}
