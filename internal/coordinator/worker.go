package coordinator

// Worker is the acquire -> run -> complete loop behind `netsim work`: it
// polls the coordinator for leases, rebuilds the leased shard's point
// list from the job payload, executes it on a sweep.Runner (per-worker
// batched engines, shared content-addressed cache) and reports the rows.
// A background goroutine renews the lease at TTL/3 while the shard runs;
// losing the lease (expired, superseded, job canceled) cancels the run
// mid-shard, and the points computed so far survive in the cache for
// whoever re-leases the shard.

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"otisnet/internal/sweep"
)

// PointsBuilder turns a job payload (the submitted grid description)
// into the expanded point list. It must be deterministic and agree with
// the coordinator's own expansion — the shard-row cache keys are checked
// against the coordinator's points at merge time, so a divergent build
// fails the job rather than corrupting it.
type PointsBuilder func(payload []byte) ([]sweep.Scenario, error)

// Worker runs leases until its context is canceled (or IdleExit fires).
type Worker struct {
	// Client talks to the coordinator.
	Client *Client
	// Build expands a job payload into points (e.g.
	// sweepserver.PointsFromSpec). Builds are memoized per payload.
	Build PointsBuilder
	// Runner executes shard points; its Workers/Replicas settings are the
	// worker process's local parallelism.
	Runner sweep.Runner
	// Cache is the shared content-addressed result cache; nil disables
	// caching (and with it crash-resume incrementality).
	Cache sweep.PointCache
	// Name identifies this worker to the coordinator.
	Name string
	// Poll is the idle re-acquire interval. Default 500ms.
	Poll time.Duration
	// IdleExit ends Run with nil after this long without a lease to run;
	// 0 runs forever. Lets fleet scripts drain naturally after a job.
	IdleExit time.Duration
	// Log receives lease lifecycle records; nil means slog.Default().
	Log *slog.Logger
	// OnPoint, when set, observes every completed point of every shard
	// this worker runs (the sweep.Progress cadence). Test hook.
	OnPoint func(job string, index int, cached bool)

	points map[string][]sweep.Scenario // payload -> expanded points
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.Default()
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

// Run loops acquire -> execute until ctx is canceled, returning ctx's
// error (or nil after IdleExit). Transport errors are retried at the
// poll interval — a worker outliving a coordinator restart reconnects by
// itself.
func (w *Worker) Run(ctx context.Context) error {
	idleSince := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		g, ok, err := w.Client.Acquire(ctx, w.Name)
		if err != nil && ctx.Err() == nil {
			w.log().Warn("acquire failed; retrying", "worker", w.Name, "err", err)
		}
		if err == nil && ok {
			idleSince = time.Now()
			w.execute(ctx, g)
			continue
		}
		if w.IdleExit > 0 && time.Since(idleSince) >= w.IdleExit {
			w.log().Info("idle limit reached; exiting", "worker", w.Name, "idle", w.IdleExit)
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.poll()):
		}
	}
}

// execute runs one leased shard and reports its rows. Errors end the
// lease, not the worker: a failed build or a lost lease is logged and
// the loop moves on — the coordinator re-leases the shard elsewhere.
func (w *Worker) execute(ctx context.Context, g Grant) {
	log := w.log().With("worker", w.Name, "job", g.Job, "shard", g.Shard, "lease", g.LeaseID, "epoch", g.Epoch)
	points, err := w.pointsFor(g.Payload)
	if err != nil {
		log.Error("cannot build job points; abandoning lease", "err", err)
		return
	}
	shard, err := sweep.ShardPoints(points, g.Shard, g.Shards)
	if err != nil {
		log.Error("cannot shard job points; abandoning lease", "err", err)
		return
	}
	log.Info("lease acquired", "points", len(shard.Points), "stolen", g.Stolen)

	// Renew at TTL/3 until the run ends; a lost lease cancels the run.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		interval := g.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				if _, err := w.Client.Renew(runCtx, w.Name, g); errors.Is(err, ErrLeaseLost) {
					log.Warn("lease lost mid-run; dropping shard (computed points stay cached)")
					cancel()
					return
				}
				// Transport errors are tolerated until the lease actually
				// expires server-side; the next tick retries.
			}
		}
	}()

	cached := make([]bool, len(shard.Points))
	results, runErr := w.Runner.RunCached(runCtx, shard.Points, w.Cache, func(i int, res sweep.Result, hit bool) {
		cached[i] = hit
		if w.OnPoint != nil {
			w.OnPoint(g.Job, shard.Indices[i], hit)
		}
	})
	cancel()
	<-renewDone
	if runErr != nil {
		log.Info("shard run interrupted; not completing", "err", runErr)
		return
	}
	rows := shard.ShardResults(results)
	for i := range rows {
		rows[i].Cached = cached[i]
	}
	st, err := w.Client.Complete(ctx, w.Name, g, rows)
	if err != nil && st == "" {
		log.Warn("complete failed", "err", err)
		return
	}
	log.Info("shard completed", "status", string(st), "rows", len(rows))
}

// pointsFor memoizes payload expansion: one build per distinct grid
// description, shared by every lease of the same job (and by jobs
// resubmitting the same grid).
func (w *Worker) pointsFor(payload []byte) ([]sweep.Scenario, error) {
	if w.points == nil {
		w.points = make(map[string][]sweep.Scenario)
	}
	if pts, ok := w.points[string(payload)]; ok {
		return pts, nil
	}
	if w.Build == nil {
		return nil, errors.New("coordinator: worker has no PointsBuilder")
	}
	pts, err := w.Build(payload)
	if err != nil {
		return nil, err
	}
	w.points[string(payload)] = pts
	return pts, nil
}
