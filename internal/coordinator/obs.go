package coordinator

// Coordinator observability: lease-protocol and job-lifecycle counters in
// the shared obs.Default registry, registered at package init so
// `netsim serve` exposes the families on /metrics before the first
// distributed job arrives. All increments happen on cold control-plane
// paths (HTTP handlers), so the unsharded Counter.Add is fine. Per-job
// shard progress is not a labeled metric — the registry is label-free by
// design — it is served as JSON through /api/v1/observe instead
// (Job.Progress via the sweep server's job table).

import "otisnet/internal/obs"

var coordObs = struct {
	leasesGranted      *obs.Counter
	leasesExpired      *obs.Counter
	leasesStolen       *obs.Counter
	shardsCompleted    *obs.Counter
	completionsStale   *obs.Counter
	completionsInvalid *obs.Counter
	jobsSubmitted      *obs.Counter
	jobsCompleted      *obs.Counter
	jobsFailed         *obs.Counter
	jobsCanceled       *obs.Counter
	leasesOutstanding  *obs.Gauge
	workersLive        *obs.Gauge
	jobsRunning        *obs.Gauge
}{
	leasesGranted: obs.Default().Counter("netsim_coord_leases_granted_total",
		"Shard leases handed to workers (including steals)."),
	leasesExpired: obs.Default().Counter("netsim_coord_leases_expired_total",
		"Leases that died unrenewed past their deadline; their shards were re-leased at a higher epoch."),
	leasesStolen: obs.Default().Counter("netsim_coord_leases_stolen_total",
		"Duplicate leases granted on straggler shards to idle workers (first valid completion wins)."),
	shardsCompleted: obs.Default().Counter("netsim_coord_shards_completed_total",
		"Shard completions accepted and recorded."),
	completionsStale: obs.Default().Counter("netsim_coord_completions_stale_total",
		"Completions rejected because their lease was expired, superseded or canceled."),
	completionsInvalid: obs.Default().Counter("netsim_coord_completions_invalid_total",
		"Completions rejected because the rows did not describe the leased shard."),
	jobsSubmitted: obs.Default().Counter("netsim_coord_jobs_submitted_total",
		"Distributed jobs registered with the coordinator."),
	jobsCompleted: obs.Default().Counter("netsim_coord_jobs_completed_total",
		"Distributed jobs whose shards all completed and merged cleanly."),
	jobsFailed: obs.Default().Counter("netsim_coord_jobs_failed_total",
		"Distributed jobs that failed at merge (conflicting or mismatched shard rows)."),
	jobsCanceled: obs.Default().Counter("netsim_coord_jobs_canceled_total",
		"Distributed jobs canceled before completion."),
	leasesOutstanding: obs.Default().Gauge("netsim_coord_leases_outstanding",
		"Live leases currently held by workers."),
	workersLive: obs.Default().Gauge("netsim_coord_workers_live",
		"Workers seen within the last three lease TTLs."),
	jobsRunning: obs.Default().Gauge("netsim_coord_jobs_running",
		"Distributed jobs currently executing."),
}
