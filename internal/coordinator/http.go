package coordinator

// The worker wire protocol: four JSON-over-HTTP endpoints the sweep
// server mounts next to its job API, and the matching client used by the
// Worker loop and `netsim work`.
//
//	POST /api/v1/leases/acquire   {"worker"}                 -> 200 Grant | 204 (nothing to do)
//	POST /api/v1/leases/renew     {"lease_id","epoch","worker"} -> 200 {"ttl_ns"} | 409 (lease lost)
//	POST /api/v1/leases/complete  {"lease_id","job","shard","epoch","worker","rows"}
//	                              -> 200 {"status":"accepted"|"duplicate"}
//	                               | 409 {"status":"stale"} | 422 {"status":"invalid","error"}
//	POST /api/v1/workers/heartbeat {"worker"}                -> 204
//
// Every request names the worker, so any lease RPC doubles as a
// liveness signal; the explicit heartbeat exists for idle workers that
// want to stay visible without acquiring.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"otisnet/internal/sweep"
)

// AcquireRequest asks for a lease.
type AcquireRequest struct {
	Worker string `json:"worker"`
}

// RenewRequest extends a lease.
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
	Epoch   int    `json:"epoch"`
	Worker  string `json:"worker"`
}

// RenewResponse carries the refreshed TTL (nanoseconds).
type RenewResponse struct {
	TTL time.Duration `json:"ttl_ns"`
}

// CompleteRequest reports a shard's rows under a lease. Job and Shard
// are carried explicitly so a late completion whose lease is already
// gone can still be classified (duplicate vs stale).
type CompleteRequest struct {
	LeaseID string              `json:"lease_id"`
	Job     string              `json:"job"`
	Shard   int                 `json:"shard"`
	Epoch   int                 `json:"epoch"`
	Worker  string              `json:"worker"`
	Rows    []sweep.ShardResult `json:"rows"`
}

// CompleteResponse classifies the completion outcome.
type CompleteResponse struct {
	Status CompleteStatus `json:"status"`
	Error  string         `json:"error,omitempty"`
}

// HeartbeatRequest records worker liveness.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// Mount registers the worker protocol endpoints on mux.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/leases/acquire", c.handleAcquire)
	mux.HandleFunc("POST /api/v1/leases/renew", c.handleRenew)
	mux.HandleFunc("POST /api/v1/leases/complete", c.handleComplete)
	mux.HandleFunc("POST /api/v1/workers/heartbeat", c.handleHeartbeat)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, ok := c.Acquire(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ttl, err := c.Renew(req.LeaseID, req.Epoch, req.Worker)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(RenewResponse{TTL: ttl})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	st, err := c.Complete(req.Job, req.Shard, req.LeaseID, req.Epoch, req.Worker, req.Rows)
	resp := CompleteResponse{Status: st}
	if err != nil {
		resp.Error = err.Error()
	}
	code := http.StatusOK
	switch st {
	case StatusStale:
		code = http.StatusConflict
	case StatusInvalid:
		code = http.StatusUnprocessableEntity
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	c.Heartbeat(req.Worker)
	w.WriteHeader(http.StatusNoContent)
}

// Client is the worker-side HTTP client for the lease protocol.
type Client struct {
	// BaseURL is the coordinator's root (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends one JSON request and decodes the response body into out
// (when out is non-nil and the body is non-empty JSON — error statuses
// carrying plain-text bodies, like renew's 409, must still surface their
// status code rather than a decode error). It returns the status code and
// any transport/decode error.
func (c *Client) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && len(bytes.TrimSpace(data)) > 0 && strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("coordinator: bad %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Acquire asks for a lease; ok is false when the coordinator has nothing
// to hand out right now.
func (c *Client) Acquire(ctx context.Context, worker string) (Grant, bool, error) {
	var g Grant
	code, err := c.post(ctx, "/api/v1/leases/acquire", AcquireRequest{Worker: worker}, &g)
	if err != nil {
		return Grant{}, false, err
	}
	switch code {
	case http.StatusOK:
		return g, true, nil
	case http.StatusNoContent:
		return Grant{}, false, nil
	default:
		return Grant{}, false, fmt.Errorf("coordinator: acquire: HTTP %d", code)
	}
}

// Renew extends the lease; ErrLeaseLost means the worker should drop the
// shard.
func (c *Client) Renew(ctx context.Context, worker string, g Grant) (time.Duration, error) {
	var resp RenewResponse
	code, err := c.post(ctx, "/api/v1/leases/renew", RenewRequest{LeaseID: g.LeaseID, Epoch: g.Epoch, Worker: worker}, &resp)
	if err != nil {
		return 0, err
	}
	switch code {
	case http.StatusOK:
		return resp.TTL, nil
	case http.StatusConflict:
		return 0, ErrLeaseLost
	default:
		return 0, fmt.Errorf("coordinator: renew: HTTP %d", code)
	}
}

// Complete reports the shard rows. The returned status mirrors
// Coordinator.Complete; transport failures are the error.
func (c *Client) Complete(ctx context.Context, worker string, g Grant, rows []sweep.ShardResult) (CompleteStatus, error) {
	var resp CompleteResponse
	code, err := c.post(ctx, "/api/v1/leases/complete", CompleteRequest{
		LeaseID: g.LeaseID, Job: g.Job, Shard: g.Shard, Epoch: g.Epoch, Worker: worker, Rows: rows,
	}, &resp)
	if err != nil {
		return "", err
	}
	switch code {
	case http.StatusOK, http.StatusConflict, http.StatusUnprocessableEntity:
		if resp.Error != "" {
			return resp.Status, fmt.Errorf("coordinator: complete: %s", resp.Error)
		}
		return resp.Status, nil
	default:
		return "", fmt.Errorf("coordinator: complete: HTTP %d", code)
	}
}

// Heartbeat records worker liveness.
func (c *Client) Heartbeat(ctx context.Context, worker string) error {
	code, err := c.post(ctx, "/api/v1/workers/heartbeat", HeartbeatRequest{Worker: worker}, nil)
	if err != nil {
		return err
	}
	if code != http.StatusNoContent && code != http.StatusOK {
		return fmt.Errorf("coordinator: heartbeat: HTTP %d", code)
	}
	return nil
}
