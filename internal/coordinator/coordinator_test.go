package coordinator_test

// Lease state-machine unit tests: acquire/renew/expire/complete/steal
// transitions driven by a fake clock — no real sleeps anywhere. The rows
// fed to Complete are fabricated (indices only), which is exactly what the
// state machine validates; content fidelity is the chaos and sweepserver
// tests' job.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"otisnet/internal/coordinator"
	"otisnet/internal/sim"
	"otisnet/internal/sweep"
)

// fakeClock is a manually advanced coordinator.Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// testPoints is a tiny real grid (hashable points, so merge-time key
// checks are live): 2 rates x 2 seeds on SK(3,2,2) = 4 points.
func testPoints(t *testing.T) []sweep.Scenario {
	t.Helper()
	topo, err := sweep.TopoSpec{Net: "sk", S: 3, D: 2, K: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := sweep.Grid{
		Topologies: []sweep.Topology{topo},
		Rates:      []float64{0.1, 0.3},
		Seeds:      []int64{1, 2},
		Slots:      50,
		Drain:      50,
	}
	return g.Points()
}

// rowsFor fabricates a valid completion for shard of shards over points:
// correct global indices, per-index marker metrics, no keys (key fidelity
// is exercised separately).
func rowsFor(t *testing.T, points []sweep.Scenario, shard, shards int) []sweep.ShardResult {
	t.Helper()
	sh, err := sweep.ShardPoints(points, shard, shards)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sweep.ShardResult, len(sh.Indices))
	for i, idx := range sh.Indices {
		rows[i] = sweep.ShardResult{Index: idx, Metrics: sim.Metrics{Delivered: idx + 1}}
	}
	return rows
}

// harness bundles a coordinator + fake clock + one submitted job.
type harness struct {
	clock  *fakeClock
	coord  *coordinator.Coordinator
	job    *coordinator.Job
	points []sweep.Scenario
	shards int

	mu      sync.Mutex
	rowIdxs []int // every index delivered through OnRows, in arrival order
	done    bool
	doneErr error
	results []sweep.Result
}

func newHarness(t *testing.T, shards, priority int) *harness {
	t.Helper()
	h := &harness{clock: newFakeClock(), points: testPoints(t), shards: shards}
	h.coord = coordinator.New(coordinator.Config{
		LeaseTTL:   10 * time.Second,
		StealAfter: 5 * time.Second,
		Clock:      h.clock,
	})
	job, err := h.coord.Submit("job-1", h.points, []byte(`{}`), shards, priority, coordinator.Hooks{
		OnRows: func(rows []sweep.ShardResult) {
			h.mu.Lock()
			defer h.mu.Unlock()
			for _, r := range rows {
				h.rowIdxs = append(h.rowIdxs, r.Index)
			}
		},
		OnDone: func(results []sweep.Result, err error) {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.done {
				t.Errorf("OnDone fired twice")
			}
			h.done = true
			h.doneErr = err
			h.results = results
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.job = job
	return h
}

func (h *harness) acquire(t *testing.T, worker string) coordinator.Grant {
	t.Helper()
	g, ok := h.coord.Acquire(worker)
	if !ok {
		t.Fatalf("%s: acquire returned nothing", worker)
	}
	return g
}

func (h *harness) complete(g coordinator.Grant, worker string, rows []sweep.ShardResult) (coordinator.CompleteStatus, error) {
	return h.coord.Complete(g.Job, g.Shard, g.LeaseID, g.Epoch, worker, rows)
}

func TestSubmitValidation(t *testing.T) {
	c := coordinator.New(coordinator.Config{Clock: newFakeClock()})
	points := testPoints(t)
	if _, err := c.Submit("empty", nil, nil, 2, 0, coordinator.Hooks{}); err == nil {
		t.Errorf("empty point list accepted")
	}
	if _, err := c.Submit("zero", points, nil, 0, 0, coordinator.Hooks{}); err == nil {
		t.Errorf("shard count 0 accepted")
	}
	j, err := c.Submit("clamped", points, nil, 100, 0, coordinator.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Progress().ShardsTotal; got != len(points) {
		t.Errorf("shard count not clamped to point count: got %d, want %d", got, len(points))
	}
	if _, err := c.Submit("clamped", points, nil, 2, 0, coordinator.Hooks{}); err == nil {
		t.Errorf("duplicate job id accepted")
	}
	if _, err := j.Results(); err == nil {
		t.Errorf("Results on a running job did not error")
	}
}

// TestLeaseTransitions is the table-driven core: each case drives the
// machine through a scripted sequence and checks the terminal statuses.
func TestLeaseTransitions(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, h *harness)
	}{
		{"acquire assigns distinct shards", func(t *testing.T, h *harness) {
			g1 := h.acquire(t, "w1")
			g2 := h.acquire(t, "w2")
			if g1.Shard == g2.Shard {
				t.Fatalf("both workers leased shard %d", g1.Shard)
			}
			if g1.Epoch != 1 || g2.Epoch != 1 {
				t.Fatalf("fresh leases have epochs %d,%d, want 1,1", g1.Epoch, g2.Epoch)
			}
			p := h.job.Progress()
			if p.ShardsLeased != 2 || p.ShardsDone != 0 {
				t.Fatalf("progress %+v after two acquires", p)
			}
		}},

		{"renew extends the deadline", func(t *testing.T, h *harness) {
			g := h.acquire(t, "w1")
			// Renew at 8s, so at 14s the lease (TTL 10s) is alive only if the
			// renewal actually moved the deadline.
			h.clock.Advance(8 * time.Second)
			if _, err := h.coord.Renew(g.LeaseID, g.Epoch, "w1"); err != nil {
				t.Fatal(err)
			}
			h.clock.Advance(6 * time.Second)
			if _, err := h.coord.Renew(g.LeaseID, g.Epoch, "w1"); err != nil {
				t.Fatalf("renewed lease expired anyway: %v", err)
			}
			if st, _ := h.complete(g, "w1", rowsFor(t, h.points, g.Shard, h.shards)); st != coordinator.StatusAccepted {
				t.Fatalf("completion on a live renewed lease: %s", st)
			}
		}},

		{"expiry re-pends at a higher epoch and stales the old lease", func(t *testing.T, h *harness) {
			g := h.acquire(t, "w1")
			h.clock.Advance(11 * time.Second) // past TTL
			if _, err := h.coord.Renew(g.LeaseID, g.Epoch, "w1"); !errors.Is(err, coordinator.ErrLeaseLost) {
				t.Fatalf("renew of expired lease: %v, want ErrLeaseLost", err)
			}
			// The shard comes back at a higher epoch.
			g2 := h.acquire(t, "w2")
			if g2.Shard != g.Shard {
				// Two shards in the job; drain until we re-lease the first.
				g3 := h.acquire(t, "w2")
				if g3.Shard != g.Shard {
					t.Fatalf("expired shard %d never re-leased", g.Shard)
				}
				g2 = g3
			}
			if g2.Epoch <= g.Epoch {
				t.Fatalf("re-lease epoch %d not above expired epoch %d", g2.Epoch, g.Epoch)
			}
			// The dead worker's late completion is stale; the new lease wins.
			rows := rowsFor(t, h.points, g.Shard, h.shards)
			if st, _ := h.complete(g, "w1", rows); st != coordinator.StatusStale {
				t.Fatalf("late completion from expired lease: %s, want stale", st)
			}
			if st, _ := h.complete(g2, "w2", rows); st != coordinator.StatusAccepted {
				t.Fatalf("completion on the re-lease: %s, want accepted", st)
			}
		}},

		{"wrong epoch is stale even while the lease lives", func(t *testing.T, h *harness) {
			g := h.acquire(t, "w1")
			rows := rowsFor(t, h.points, g.Shard, h.shards)
			if st, _ := h.coord.Complete(g.Job, g.Shard, g.LeaseID, g.Epoch+1, "w1", rows); st != coordinator.StatusStale {
				t.Fatalf("wrong-epoch completion: %s, want stale", st)
			}
			if _, err := h.coord.Renew(g.LeaseID, g.Epoch+1, "w1"); !errors.Is(err, coordinator.ErrLeaseLost) {
				t.Fatalf("wrong-epoch renew: %v, want ErrLeaseLost", err)
			}
			// The correctly named lease is untouched by the bad calls.
			if st, _ := h.complete(g, "w1", rows); st != coordinator.StatusAccepted {
				t.Fatalf("completion after bad-epoch attempts: %s, want accepted", st)
			}
		}},

		{"double complete is idempotent", func(t *testing.T, h *harness) {
			g := h.acquire(t, "w1")
			rows := rowsFor(t, h.points, g.Shard, h.shards)
			if st, _ := h.complete(g, "w1", rows); st != coordinator.StatusAccepted {
				t.Fatalf("first completion: %s", st)
			}
			if st, _ := h.complete(g, "w1", rows); st != coordinator.StatusDuplicate {
				t.Fatalf("second completion: %s, want duplicate", st)
			}
			h.mu.Lock()
			n := len(h.rowIdxs)
			h.mu.Unlock()
			if n != len(rows) {
				t.Fatalf("OnRows delivered %d indices for one shard of %d rows", n, len(rows))
			}
		}},

		{"steal duplicates the straggler and first completion wins", func(t *testing.T, h *harness) {
			g1 := h.acquire(t, "w1")
			h.clock.Advance(2 * time.Second)
			g2 := h.acquire(t, "w2") // both shards now leased; nothing pending
			if _, ok := h.coord.Acquire("w3"); ok {
				t.Fatalf("steal granted before StealAfter elapsed")
			}
			// g1 is now 6s old (past StealAfter 5s, under TTL 10s); g2 only
			// 4s old — the steal victim is unambiguous.
			h.clock.Advance(4 * time.Second)
			stolen, ok := h.coord.Acquire("w3")
			if !ok || !stolen.Stolen {
				t.Fatalf("idle worker got no steal grant (ok=%v, grant=%+v)", ok, stolen)
			}
			if stolen.Shard != g1.Shard {
				t.Fatalf("stole shard %d, want the oldest outstanding %d", stolen.Shard, g1.Shard)
			}
			if stolen.Epoch <= g1.Epoch {
				t.Fatalf("steal epoch %d not above victim epoch %d", stolen.Epoch, g1.Epoch)
			}
			// The victim must not be stolen from twice, and the holder never
			// steals its own shard.
			if g, ok := h.coord.Acquire("w4"); ok && g.Shard == g1.Shard {
				t.Fatalf("doubly-leased shard stolen again")
			}
			// First valid completion wins — here the thief...
			rows := rowsFor(t, h.points, g1.Shard, h.shards)
			if st, _ := h.complete(stolen, "w3", rows); st != coordinator.StatusAccepted {
				t.Fatalf("thief completion: %s", st)
			}
			// ...and the original holder's rows are a duplicate, not an error.
			if st, _ := h.complete(g1, "w1", rows); st != coordinator.StatusDuplicate {
				t.Fatalf("loser completion: %s, want duplicate", st)
			}
			// The non-stolen shard is untouched by all of this.
			if st, _ := h.complete(g2, "w2", rowsFor(t, h.points, g2.Shard, h.shards)); st != coordinator.StatusAccepted {
				t.Fatalf("straggler shard completion: %s", st)
			}
		}},

		{"invalid rows revoke the lease and re-pend the shard", func(t *testing.T, h *harness) {
			g := h.acquire(t, "w1")
			bad := rowsFor(t, h.points, g.Shard, h.shards)
			bad[0].Index++ // wrong global index
			st, err := h.complete(g, "w1", bad)
			if st != coordinator.StatusInvalid || err == nil {
				t.Fatalf("mismatched rows: status %s err %v, want invalid + error", st, err)
			}
			// The lease is gone and the shard immediately re-leasable.
			if _, err := h.coord.Renew(g.LeaseID, g.Epoch, "w1"); !errors.Is(err, coordinator.ErrLeaseLost) {
				t.Fatalf("renew after invalid completion: %v", err)
			}
			seen := map[int]bool{}
			for i := 0; i < h.shards; i++ {
				gi := h.acquire(t, "w2")
				seen[gi.Shard] = true
			}
			if !seen[g.Shard] {
				t.Fatalf("revoked shard %d not re-leased", g.Shard)
			}
		}},

		{"cancel invalidates leases and reports ErrCanceled once", func(t *testing.T, h *harness) {
			g := h.acquire(t, "w1")
			h.coord.Cancel(g.Job)
			if _, err := h.coord.Renew(g.LeaseID, g.Epoch, "w1"); !errors.Is(err, coordinator.ErrLeaseLost) {
				t.Fatalf("renew after cancel: %v", err)
			}
			if st, _ := h.complete(g, "w1", rowsFor(t, h.points, g.Shard, h.shards)); st != coordinator.StatusStale {
				t.Fatalf("complete after cancel: %s, want stale", st)
			}
			if _, ok := h.coord.Acquire("w2"); ok {
				t.Fatalf("canceled job still hands out leases")
			}
			h.coord.Cancel(g.Job) // idempotent: OnDone must not refire
			h.mu.Lock()
			defer h.mu.Unlock()
			if !h.done || !errors.Is(h.doneErr, coordinator.ErrCanceled) {
				t.Fatalf("OnDone after cancel: done=%v err=%v", h.done, h.doneErr)
			}
			if _, err := h.job.Results(); !errors.Is(err, coordinator.ErrCanceled) {
				t.Fatalf("Results of canceled job: %v", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, newHarness(t, 2, 0))
		})
	}
}

func TestJobCompletesAndMerges(t *testing.T) {
	h := newHarness(t, 3, 0)
	for i := 0; i < 3; i++ {
		g := h.acquire(t, fmt.Sprintf("w%d", i))
		if st, err := h.complete(g, fmt.Sprintf("w%d", i), rowsFor(t, h.points, g.Shard, 3)); st != coordinator.StatusAccepted {
			t.Fatalf("shard %d: %s %v", g.Shard, st, err)
		}
	}
	h.mu.Lock()
	done, doneErr, results, idxs := h.done, h.doneErr, h.results, append([]int{}, h.rowIdxs...)
	h.mu.Unlock()
	if !done || doneErr != nil {
		t.Fatalf("job not done cleanly: done=%v err=%v", done, doneErr)
	}
	if len(results) != len(h.points) {
		t.Fatalf("merged %d results, want %d", len(results), len(h.points))
	}
	for i, r := range results {
		if r.Metrics.Delivered != i+1 {
			t.Fatalf("point %d carries metrics of point %d", i, r.Metrics.Delivered-1)
		}
	}
	seen := map[int]bool{}
	for _, idx := range idxs {
		if seen[idx] {
			t.Fatalf("OnRows repeated index %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != len(h.points) {
		t.Fatalf("OnRows covered %d of %d points", len(seen), len(h.points))
	}
	if got, err := h.job.Results(); err != nil || len(got) != len(h.points) {
		t.Fatalf("Results after done: %d results, err %v", len(got), err)
	}
	if p := h.job.Progress(); p.State != coordinator.JobDone || p.ShardsDone != 3 {
		t.Fatalf("terminal progress %+v", p)
	}
}

// TestMergeFailureFailsJob: a worker that ran a *different grid* produces
// rows whose cache keys don't match the coordinator's points. The merge
// must fail the job (OnDone with the error), not panic.
func TestMergeFailureFailsJob(t *testing.T) {
	h := newHarness(t, 1, 0)
	g := h.acquire(t, "w1")
	rows := rowsFor(t, h.points, 0, 1)
	rows[1].Key = "deadbeef" // claims a key the grid point does not have
	if st, _ := h.complete(g, "w1", rows); st != coordinator.StatusAccepted {
		t.Fatalf("completion status %s (row content is not the lease layer's business)", st)
	}
	h.mu.Lock()
	done, doneErr := h.done, h.doneErr
	h.mu.Unlock()
	if !done || doneErr == nil {
		t.Fatalf("merge failure not surfaced: done=%v err=%v", done, doneErr)
	}
	p := h.job.Progress()
	if p.State != coordinator.JobFailed || p.Error == "" {
		t.Fatalf("failed job progress %+v", p)
	}
	if _, err := h.job.Results(); err == nil {
		t.Fatalf("Results of failed job returned no error")
	}
}

func TestAcquirePriorityOrder(t *testing.T) {
	clock := newFakeClock()
	c := coordinator.New(coordinator.Config{LeaseTTL: 10 * time.Second, Clock: clock})
	points := testPoints(t)
	submit := func(id string, prio int) {
		t.Helper()
		if _, err := c.Submit(id, points, nil, 1, prio, coordinator.Hooks{}); err != nil {
			t.Fatal(err)
		}
	}
	submit("low-early", 0)
	submit("high", 5)
	submit("low-late", 0)

	var got []string
	for i := 0; i < 3; i++ {
		g, ok := c.Acquire("w")
		if !ok {
			t.Fatalf("acquire %d returned nothing", i)
		}
		got = append(got, g.Job)
	}
	want := []string{"high", "low-early", "low-late"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("acquire order %v, want %v", got, want)
		}
	}
}

func TestWorkerLivenessWindow(t *testing.T) {
	clock := newFakeClock()
	c := coordinator.New(coordinator.Config{LeaseTTL: 10 * time.Second, Clock: clock})
	c.Heartbeat("w1")
	c.Heartbeat("w2")
	if got := c.Workers(); got != 2 {
		t.Fatalf("live workers %d, want 2", got)
	}
	clock.Advance(29 * time.Second)
	c.Heartbeat("w2")
	clock.Advance(2 * time.Second) // w1 last seen 31s ago > 3*TTL
	if got := c.Workers(); got != 1 {
		t.Fatalf("live workers %d after window, want 1", got)
	}
}
