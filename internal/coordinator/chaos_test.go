package coordinator_test

// Chaos integration tests: a real coordinator behind httptest, a fleet of
// real Workers running real simulations, and deterministic worker deaths
// injected mid-job. The invariants under test are the tentpole's promises:
// the merged result is byte-for-byte what a single process computes, and
// a re-leased shard resumes from the shared/journaled cache instead of
// recomputing the dead worker's points (asserted through the sweepcache
// hit counters).
//
// Worker "death" is a context cancel fired from the worker's own OnPoint
// hook after a fixed number of computed points — deterministic given the
// seeded choice of doomed workers, and equivalent to a crash as far as
// the protocol can see: the worker stops renewing and never completes.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"otisnet/internal/coordinator"
	"otisnet/internal/sweep"
	"otisnet/internal/sweepcache"
)

// chaosSpec is the grid the chaos jobs run: 12 cheap SK(3,2,2) points.
// It is shipped to workers as the job payload and expanded identically on
// both sides by chaosBuild.
var chaosSpec = struct {
	Rates []float64 `json:"rates"`
	Seeds []int64   `json:"seeds"`
}{
	Rates: []float64{0.05, 0.1, 0.15, 0.2},
	Seeds: []int64{1, 2, 3},
}

// chaosBuild is the coordinator.PointsBuilder for chaosSpec payloads — a
// stand-in for sweepserver.PointsFromSpec that keeps this package free of
// an inverted sweepserver dependency.
func chaosBuild(payload []byte) ([]sweep.Scenario, error) {
	var spec struct {
		Rates []float64 `json:"rates"`
		Seeds []int64   `json:"seeds"`
	}
	if err := json.Unmarshal(payload, &spec); err != nil {
		return nil, err
	}
	topo, err := sweep.TopoSpec{Net: "sk", S: 3, D: 2, K: 2}.Build()
	if err != nil {
		return nil, err
	}
	return sweep.Grid{
		Topologies: []sweep.Topology{topo},
		Rates:      spec.Rates,
		Seeds:      spec.Seeds,
		Slots:      120,
		Drain:      120,
	}.Points(), nil
}

func chaosPayload(t *testing.T) []byte {
	t.Helper()
	payload, err := json.Marshal(chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// soloCSV runs points in one process and renders the reference CSV.
func soloCSV(t *testing.T, points []sweep.Scenario) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sweep.WriteResultsCSV(&buf, sweep.Runner{}.Run(points)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chaosCoordinator starts a coordinator with a short lease TTL (fast
// failure detection) and stealing disabled (so every point is computed at
// most once and the computed/cached accounting below is exact), serves it
// over httptest, and submits one job.
func chaosCoordinator(t *testing.T, points []sweep.Scenario, payload []byte, shards int) (*coordinator.Job, *httptest.Server, chan error) {
	t.Helper()
	coord := coordinator.New(coordinator.Config{
		LeaseTTL:   time.Second,
		StealAfter: time.Hour,
	})
	done := make(chan error, 1)
	job, err := coord.Submit("chaos", points, payload, shards, 0, coordinator.Hooks{
		OnDone: func(_ []sweep.Result, err error) { done <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return job, ts, done
}

// chaosWorker is one fleet member. kill > 0 dooms it: after that many
// computed (non-cached) points it cancels its own context mid-shard.
type chaosWorker struct {
	name     string
	kill     int64
	computed atomic.Int64
	cached   atomic.Int64
}

// run blocks until the worker exits (killed, canceled, or idle).
func (cw *chaosWorker) run(ctx context.Context, t *testing.T, url string, cache sweep.PointCache) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w := &coordinator.Worker{
		Client: &coordinator.Client{BaseURL: url},
		Build:  chaosBuild,
		Runner: sweep.Runner{Workers: 1},
		Cache:  cache,
		Name:   cw.name,
		Poll:   20 * time.Millisecond,
		Log:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		OnPoint: func(_ string, _ int, hit bool) {
			if hit {
				cw.cached.Add(1)
				return
			}
			if cw.computed.Add(1) == cw.kill {
				cancel() // "crash": stop renewing, never complete
			}
		},
	}
	_ = w.Run(ctx)
}

func waitDone(t *testing.T, job *coordinator.Job, done chan error) []sweep.Result {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("job did not finish; progress %+v", job.Progress())
	}
	results, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestChaosWorkerDeathsMergeBitForBit kills a seeded subset of a worker
// fleet mid-job and requires (a) the merged CSV to be byte-identical to a
// single-process run, (b) every grid point to be computed exactly once
// across the whole fleet — the survivors resume the dead workers' shards
// from the shared cache instead of recomputing.
func TestChaosWorkerDeathsMergeBitForBit(t *testing.T) {
	points, err := chaosBuild(chaosPayload(t))
	if err != nil {
		t.Fatal(err)
	}
	want := soloCSV(t, points)

	const fleet, shards = 4, 5
	rng := rand.New(rand.NewSource(7)) // deterministic doomed subset
	doomed := map[int]bool{}
	for len(doomed) < 2 {
		doomed[rng.Intn(fleet)] = true
	}

	job, ts, done := chaosCoordinator(t, points, chaosPayload(t), shards)
	cache := sweepcache.NewMemory() // shared by the fleet, like one cachedir
	workers := make([]*chaosWorker, fleet)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := range workers {
		cw := &chaosWorker{name: fmt.Sprintf("w%d", i)}
		if doomed[i] {
			cw.kill = 1 // die on the first computed point
		}
		workers[i] = cw
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw.run(ctx, t, ts.URL, cache)
		}()
	}

	results := waitDone(t, job, done)
	cancel()
	wg.Wait()

	var buf bytes.Buffer
	if err := sweep.WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("merged CSV differs from single-process run:\nmerged:\n%s\nsolo:\n%s", buf.Bytes(), want)
	}

	var computed, deadComputed int64
	for i, cw := range workers {
		computed += cw.computed.Load()
		if doomed[i] {
			deadComputed += cw.computed.Load()
			if cw.computed.Load() == 0 {
				t.Errorf("doomed worker %s never computed a point — no death was injected", cw.name)
			}
		}
	}
	// Steal is disabled and the cache shared, so exactly-once compute is
	// exact, not approximate: every point computed once fleet-wide...
	if computed != int64(len(points)) {
		t.Errorf("fleet computed %d points, want exactly %d (each point once)", computed, len(points))
	}
	// ...and every point a dead worker computed before dying came back to
	// its re-leaser as a cache hit, never a recompute.
	st := cache.Stats()
	if st.Hits != deadComputed {
		t.Errorf("cache hits %d, want %d (one replay per dead worker's computed point)", st.Hits, deadComputed)
	}
	if st.Stores != int64(len(points)) {
		t.Errorf("cache stores %d, want %d", st.Stores, len(points))
	}
}

// TestChaosEveryWorkerDiesJournalResume kills the ENTIRE first-generation
// fleet (each worker dies after journaling exactly one computed point to
// its own on-disk cache shard) and then starts a fresh generation against
// the same cache directory. The job must still complete — lease expiry
// re-pends every shard, the new workers load the dead generation's
// journals, and the journaled points replay as cache hits.
func TestChaosEveryWorkerDiesJournalResume(t *testing.T) {
	points, err := chaosBuild(chaosPayload(t))
	if err != nil {
		t.Fatal(err)
	}
	want := soloCSV(t, points)

	const fleet, shards = 3, 3 // shard size 4 > 1: no gen-1 shard can finish
	job, ts, done := chaosCoordinator(t, points, chaosPayload(t), shards)
	dir := t.TempDir()

	// Generation 1: every worker computes one point, journals it, dies.
	var wg1 sync.WaitGroup
	gen1 := make([]*chaosWorker, fleet)
	for i := range gen1 {
		cw := &chaosWorker{name: fmt.Sprintf("gen1-%d", i), kill: 1}
		gen1[i] = cw
		cache, err := sweepcache.OpenShard(dir, cw.name)
		if err != nil {
			t.Fatal(err)
		}
		wg1.Add(1)
		go func() {
			defer wg1.Done()
			defer cache.Close()
			cw.run(context.Background(), t, ts.URL, cache)
		}()
	}
	wg1.Wait() // the whole first generation is dead

	if p := job.Progress(); p.ShardsDone != 0 {
		t.Fatalf("a generation-1 shard completed (%+v); deaths were not mid-shard", p)
	}
	// Each dead worker journaled at least its kill point; cancellation is
	// point-granular, so an in-flight point may have slipped through too —
	// count what actually landed, the resume assertions below are exact
	// against it.
	var journaled int64
	for _, cw := range gen1 {
		if cw.computed.Load() < 1 {
			t.Fatalf("worker %s died without journaling a point", cw.name)
		}
		journaled += cw.computed.Load()
	}

	// Generation 2: fresh workers, fresh cache handles on the same
	// directory — the journals of the dead are their inheritance.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg2 sync.WaitGroup
	gen2 := make([]*chaosWorker, fleet)
	caches := make([]*sweepcache.Cache, fleet)
	// Open every cache before any worker runs, so each load sees exactly
	// the dead generation's journals and nothing a sibling wrote since.
	for i := range gen2 {
		gen2[i] = &chaosWorker{name: fmt.Sprintf("gen2-%d", i)}
		cache, err := sweepcache.OpenShard(dir, gen2[i].name)
		if err != nil {
			t.Fatal(err)
		}
		if st := cache.Stats(); int64(st.Loaded) != journaled {
			t.Fatalf("generation-2 cache loaded %d journal entries, want %d", st.Loaded, journaled)
		}
		caches[i] = cache
		t.Cleanup(func() { cache.Close() })
	}
	for i := range gen2 {
		cw, cache := gen2[i], caches[i]
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			cw.run(ctx, t, ts.URL, cache)
		}()
	}

	results := waitDone(t, job, done)
	cancel()
	wg2.Wait()

	var buf bytes.Buffer
	if err := sweep.WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("merged CSV differs from single-process run:\nmerged:\n%s\nsolo:\n%s", buf.Bytes(), want)
	}

	// Journal-resume accounting: generation 2 replayed exactly the dead
	// generation's points as hits and computed only the remainder.
	var hits, computed int64
	for i, cw := range gen2 {
		computed += cw.computed.Load()
		hits += cw.cached.Load()
		st := caches[i].Stats()
		if st.Hits != cw.cached.Load() {
			t.Errorf("worker %s cache hits %d disagree with its OnPoint count %d", cw.name, st.Hits, cw.cached.Load())
		}
	}
	if hits != journaled {
		t.Errorf("generation 2 replayed %d journaled points, want %d", hits, journaled)
	}
	if computed != int64(len(points))-journaled {
		t.Errorf("generation 2 computed %d points, want %d (grid minus journal)", computed, int64(len(points))-journaled)
	}
}
