// Package coordinator turns the sweep service into a multi-worker
// distributed system: a submitted grid is split into deterministic strided
// shards (sweep.ShardPoints), each shard is handed to a worker as a
// *lease* — id, job, shard index, epoch, deadline — over a small HTTP
// protocol (see http.go), and the coordinator reassembles completed shard
// rows with sweep.MergeShardResults so the final result slice is
// bit-for-bit equal to a single-process Runner.RunCached over the same
// points.
//
// The lease state machine is what makes worker failure survivable:
//
//   - A shard is pending, leased or done. Acquire moves the best pending
//     shard (highest job priority, then submission order) to leased and
//     hands out a lease with a deadline.
//   - Workers renew their lease before the deadline; a worker that dies
//     stops renewing, the lease expires, and the shard goes back to
//     pending. The next lease on the shard carries a higher epoch, so a
//     late completion from the dead worker's lease is rejected as stale —
//     completions must name a live (lease id, epoch) pair.
//   - When every shard of a job is pending-free but some are still leased,
//     an idle worker may *steal* the slowest outstanding shard: a second
//     live lease at a higher epoch on the same shard. Both leases are
//     valid; the first completion wins and the loser's completion is a
//     duplicate (idempotent, ignored). Stealing bounds a job's tail
//     latency by the straggler's shard, not the straggler's machine.
//   - Completing a done shard again is idempotent (StatusDuplicate);
//     canceling a job invalidates its outstanding leases, so renewals and
//     completions for them fail and workers drop the abandoned work.
//
// Workers run shards through sweep.Runner.RunCached against a shared
// content-addressed cache (internal/sweepcache), so a shard re-leased
// after a crash replays the dead worker's journaled points as cache hits
// and recomputation is incremental — the chaos tests in this package
// assert both the byte-identical merge and the no-recompute property.
//
// Time is injected (Clock) so lease expiry is testable without sleeping;
// the coordinator never runs background timers — expiry is swept lazily
// at the top of every state-changing call.
package coordinator

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"otisnet/internal/sweep"
)

// Clock abstracts time for lease-deadline bookkeeping. The zero Config
// uses the system clock; tests inject a fake to drive expiry
// deterministically.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// Config tunes the coordinator. Zero values select the defaults.
type Config struct {
	// LeaseTTL is how long a lease lives without a renewal. Default 15s.
	LeaseTTL time.Duration
	// StealAfter is the minimum age of the oldest outstanding lease before
	// an idle worker may be handed a duplicate (steal) lease for its
	// shard. Default LeaseTTL / 2.
	StealAfter time.Duration
	// Clock supplies the current time. Default: the system clock.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.StealAfter <= 0 {
		c.StealAfter = c.LeaseTTL / 2
	}
	if c.Clock == nil {
		c.Clock = systemClock{}
	}
	return c
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// CompleteStatus classifies the outcome of a completion attempt.
type CompleteStatus string

const (
	// StatusAccepted: the rows were recorded and the shard is now done.
	StatusAccepted CompleteStatus = "accepted"
	// StatusDuplicate: the shard was already done (another lease won, or
	// the same worker retried); the rows were ignored. Not an error.
	StatusDuplicate CompleteStatus = "duplicate"
	// StatusStale: the named lease is no longer valid — expired, epoch
	// superseded, job canceled or unknown. The worker must drop the work.
	StatusStale CompleteStatus = "stale"
	// StatusInvalid: the lease was valid but the rows do not describe the
	// leased shard (wrong indices/length). The lease is revoked and the
	// shard re-leased to someone else.
	StatusInvalid CompleteStatus = "invalid"
)

// ErrCanceled is the terminal error a canceled job's OnDone hook receives.
var ErrCanceled = errors.New("coordinator: job canceled")

// ErrLeaseLost is returned by Renew when the lease no longer exists (it
// expired, was superseded, or its job ended).
var ErrLeaseLost = errors.New("coordinator: lease lost")

// Hooks are a job's completion callbacks. Both are invoked outside the
// coordinator lock (so they may call back into the coordinator or take
// their own locks), from whichever goroutine drove the state change.
type Hooks struct {
	// OnRows fires once per accepted shard completion with that shard's
	// result rows (global point indices). Rows for one job never repeat
	// an index: duplicates are filtered by the lease protocol.
	OnRows func(rows []sweep.ShardResult)
	// OnDone fires exactly once at the job's terminal state: (results,
	// nil) for a successful merge, (nil, err) on merge failure, and
	// (nil, ErrCanceled) on cancel.
	OnDone func(results []sweep.Result, err error)
}

// Grant is a lease handed to a worker: everything it needs to run the
// shard and report back. TTL is serialized as nanoseconds.
type Grant struct {
	LeaseID string `json:"lease_id"`
	Job     string `json:"job"`
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Epoch   int    `json:"epoch"`
	// TTL is the renewal deadline budget; workers should renew at a
	// comfortable fraction of it (the bundled Worker renews every TTL/3).
	TTL time.Duration `json:"ttl_ns"`
	// Stolen marks a duplicate lease on a straggler's shard.
	Stolen bool `json:"stolen,omitempty"`
	// Payload is the job's opaque grid description (the submitted
	// GridSpec JSON); workers rebuild the point list from it.
	Payload []byte `json:"payload,omitempty"`
}

// shardState is the per-shard slot state.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// shardSlot tracks one shard of a job.
type shardSlot struct {
	state shardState
	epoch int // epoch of the newest lease ever granted for this shard
	live  int // live leases (0, 1, or 2 after a steal)
	rows  []sweep.ShardResult
}

// lease is one live lease record.
type lease struct {
	id       string
	job      *Job
	shard    int
	epoch    int
	worker   string
	granted  time.Time
	deadline time.Time
}

// Job is one submitted grid being executed by the worker fleet.
type Job struct {
	c        *Coordinator
	id       string
	priority int
	seq      int // submission order, tie-break among equal priorities
	payload  []byte
	points   []sweep.Scenario
	shardIdx [][]int // global point indices per shard

	state   JobState
	shards  []shardSlot
	done    int
	results []sweep.Result
	err     error
	hooks   Hooks
}

// Progress is a snapshot of a job's distributed execution.
type Progress struct {
	ID           string   `json:"id"`
	State        JobState `json:"state"`
	Points       int      `json:"points"`
	ShardsTotal  int      `json:"shards_total"`
	ShardsDone   int      `json:"shards_done"`
	ShardsLeased int      `json:"shards_leased"`
	Error        string   `json:"error,omitempty"`
}

// Coordinator owns the job table, the lease table and the worker
// liveness map. All state transitions happen under one mutex; expiry is
// swept lazily at the top of every call, against the injected clock.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order
	leases   map[string]*lease
	leaseSeq int
	jobSeq   int
	workers  map[string]time.Time // worker name -> last seen
}

// New builds a coordinator with the given configuration.
func New(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[string]*Job),
		leases:  make(map[string]*lease),
		workers: make(map[string]time.Time),
	}
}

// TTL returns the configured lease time-to-live.
func (c *Coordinator) TTL() time.Duration { return c.cfg.LeaseTTL }

// Submit registers a job: points are the expanded grid (the merge
// reference), payload the opaque grid description shipped to workers,
// shards the requested shard count (clamped to the point count), and
// priority orders jobs in Acquire (higher first; ties go to earlier
// submissions). The job starts running immediately — workers pick up
// shards on their next acquire.
func (c *Coordinator) Submit(id string, points []sweep.Scenario, payload []byte, shards, priority int, hooks Hooks) (*Job, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("coordinator: job %s has no points", id)
	}
	if shards < 1 {
		return nil, fmt.Errorf("coordinator: job %s shard count %d < 1", id, shards)
	}
	if shards > len(points) {
		shards = len(points)
	}
	shardIdx := make([][]int, shards)
	for i := 0; i < shards; i++ {
		sh, err := sweep.ShardPoints(points, i, shards)
		if err != nil {
			return nil, err
		}
		shardIdx[i] = sh.Indices
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.jobs[id]; dup {
		return nil, fmt.Errorf("coordinator: job %s already exists", id)
	}
	c.jobSeq++
	j := &Job{
		c:        c,
		id:       id,
		priority: priority,
		seq:      c.jobSeq,
		payload:  payload,
		points:   points,
		shardIdx: shardIdx,
		state:    JobRunning,
		shards:   make([]shardSlot, shards),
		hooks:    hooks,
	}
	c.jobs[id] = j
	c.order = append(c.order, j)
	coordObs.jobsSubmitted.Add(1)
	coordObs.jobsRunning.Add(1)
	return j, nil
}

// Acquire hands the calling worker a lease, or reports there is nothing
// to do. Pending shards are served first, from the highest-priority
// running job (ties broken by submission order). With no pending shard
// anywhere, the slowest singly-leased shard older than StealAfter is
// duplicated to the caller (a steal) — never a shard the caller already
// holds.
func (c *Coordinator) Acquire(worker string) (Grant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()
	c.sweepLocked(now)
	c.workers[worker] = now
	var best *Job
	for _, j := range c.order {
		if j.state != JobRunning {
			continue
		}
		if best == nil || j.priority > best.priority {
			if j.hasPendingShard() {
				best = j
			}
		}
	}
	if best != nil {
		for si := range best.shards {
			if best.shards[si].state == shardPending {
				return c.grantLocked(best, si, worker, false, now), true
			}
		}
	}
	// Steal pass: the oldest singly-leased shard past StealAfter.
	var victim *lease
	for _, l := range c.leases {
		if l.job.state != JobRunning || l.worker == worker {
			continue
		}
		slot := &l.job.shards[l.shard]
		if slot.state != shardLeased || slot.live != 1 {
			continue
		}
		if now.Sub(l.granted) < c.cfg.StealAfter {
			continue
		}
		if victim == nil || l.granted.Before(victim.granted) {
			victim = l
		}
	}
	if victim != nil {
		coordObs.leasesStolen.Add(1)
		return c.grantLocked(victim.job, victim.shard, worker, true, now), true
	}
	return Grant{}, false
}

func (j *Job) hasPendingShard() bool {
	for i := range j.shards {
		if j.shards[i].state == shardPending {
			return true
		}
	}
	return false
}

// grantLocked creates a lease on (j, shard) for worker. Caller holds mu.
func (c *Coordinator) grantLocked(j *Job, shard int, worker string, stolen bool, now time.Time) Grant {
	slot := &j.shards[shard]
	slot.epoch++
	slot.state = shardLeased
	slot.live++
	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("L%d", c.leaseSeq),
		job:      j,
		shard:    shard,
		epoch:    slot.epoch,
		worker:   worker,
		granted:  now,
		deadline: now.Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	coordObs.leasesGranted.Add(1)
	coordObs.leasesOutstanding.Add(1)
	return Grant{
		LeaseID: l.id,
		Job:     j.id,
		Shard:   shard,
		Shards:  len(j.shards),
		Epoch:   l.epoch,
		TTL:     c.cfg.LeaseTTL,
		Stolen:  stolen,
		Payload: j.payload,
	}
}

// Renew extends the lease deadline by one TTL. ErrLeaseLost means the
// lease is gone (expired, superseded or its job ended): the worker should
// abandon the shard — any points it already computed live on in the
// shared cache.
func (c *Coordinator) Renew(leaseID string, epoch int, worker string) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()
	c.sweepLocked(now)
	c.workers[worker] = now
	l := c.leases[leaseID]
	if l == nil || l.epoch != epoch {
		return 0, ErrLeaseLost
	}
	l.deadline = now.Add(c.cfg.LeaseTTL)
	return c.cfg.LeaseTTL, nil
}

// Heartbeat records process-level worker liveness, independent of any
// lease (idle workers polling Acquire are also recorded there).
func (c *Coordinator) Heartbeat(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()
	c.sweepLocked(now)
	c.workers[worker] = now
}

// Complete reports a shard's result rows under a lease. The returned
// status classifies the outcome (see CompleteStatus); err is non-nil only
// for malformed requests (unknown job, shard out of range) and for
// StatusInvalid, where it describes the row mismatch.
func (c *Coordinator) Complete(jobID string, shard int, leaseID string, epoch int, worker string, rows []sweep.ShardResult) (CompleteStatus, error) {
	c.mu.Lock()
	now := c.cfg.Clock.Now()
	c.sweepLocked(now)
	c.workers[worker] = now
	j := c.jobs[jobID]
	if j == nil {
		c.mu.Unlock()
		return StatusStale, fmt.Errorf("coordinator: unknown job %s", jobID)
	}
	if shard < 0 || shard >= len(j.shards) {
		c.mu.Unlock()
		return StatusStale, fmt.Errorf("coordinator: job %s has no shard %d", jobID, shard)
	}
	if j.state != JobRunning {
		c.mu.Unlock()
		coordObs.completionsStale.Add(1)
		return StatusStale, nil
	}
	slot := &j.shards[shard]
	if slot.state == shardDone {
		c.mu.Unlock()
		return StatusDuplicate, nil
	}
	l := c.leases[leaseID]
	if l == nil || l.job != j || l.shard != shard || l.epoch != epoch {
		c.mu.Unlock()
		coordObs.completionsStale.Add(1)
		return StatusStale, nil
	}
	if err := j.validateRows(shard, rows); err != nil {
		// The worker ran the wrong thing; revoke its lease so the shard
		// can go to someone else, and tell it why.
		c.dropLeaseLocked(l)
		if slot.live == 0 {
			slot.state = shardPending
		}
		c.mu.Unlock()
		coordObs.completionsInvalid.Add(1)
		return StatusInvalid, err
	}
	// Accept: the shard is done; every lease on it (including a steal
	// racer) is now dead, and the racer's completion will be a duplicate.
	slot.state = shardDone
	slot.rows = rows
	for id, other := range c.leases {
		if other.job == j && other.shard == shard {
			delete(c.leases, id)
			coordObs.leasesOutstanding.Add(-1)
		}
	}
	j.done++
	coordObs.shardsCompleted.Add(1)
	onRows := j.hooks.OnRows
	var onDone func([]sweep.Result, error)
	var results []sweep.Result
	var jobErr error
	if j.done == len(j.shards) {
		results, jobErr = j.mergeLocked()
		if jobErr != nil {
			j.state = JobFailed
			j.err = jobErr
			coordObs.jobsFailed.Add(1)
		} else {
			j.state = JobDone
			j.results = results
			coordObs.jobsCompleted.Add(1)
		}
		coordObs.jobsRunning.Add(-1)
		onDone = j.hooks.OnDone
	}
	c.mu.Unlock()
	if onRows != nil {
		onRows(rows)
	}
	if onDone != nil {
		onDone(results, jobErr)
	}
	return StatusAccepted, nil
}

// validateRows checks that rows describe exactly the leased shard: one
// row per shard point, in shard order, carrying the global indices
// sweep.ShardPoints assigned. Content (keys, metrics) is deliberately not
// checked here — key conflicts surface at merge time, where they fail the
// job rather than the completion.
func (j *Job) validateRows(shard int, rows []sweep.ShardResult) error {
	idx := j.shardIdx[shard]
	if len(rows) != len(idx) {
		return fmt.Errorf("coordinator: shard %d wants %d rows, got %d", shard, len(idx), len(rows))
	}
	for i, row := range rows {
		if row.Index != idx[i] {
			return fmt.Errorf("coordinator: shard %d row %d has index %d, want %d", shard, i, row.Index, idx[i])
		}
	}
	return nil
}

// mergeLocked reassembles the job's shard rows into the full result
// slice. A merge error (index conflicts, key mismatches — a worker ran a
// different grid) fails the job; it must never panic.
func (j *Job) mergeLocked() ([]sweep.Result, error) {
	all := make([][]sweep.ShardResult, len(j.shards))
	for i := range j.shards {
		all[i] = j.shards[i].rows
	}
	return sweep.MergeShardResults(j.points, all...)
}

// dropLeaseLocked removes one lease record. Caller holds mu.
func (c *Coordinator) dropLeaseLocked(l *lease) {
	if _, ok := c.leases[l.id]; !ok {
		return
	}
	delete(c.leases, l.id)
	l.job.shards[l.shard].live--
	coordObs.leasesOutstanding.Add(-1)
}

// Cancel moves a running job to canceled, invalidates its outstanding
// leases (their renewals and completions now fail) and fires OnDone with
// ErrCanceled. Canceling a terminal job is a no-op.
func (c *Coordinator) Cancel(jobID string) {
	c.mu.Lock()
	j := c.jobs[jobID]
	if j == nil || j.state != JobRunning {
		c.mu.Unlock()
		return
	}
	j.state = JobCanceled
	j.err = ErrCanceled
	for id, l := range c.leases {
		if l.job == j {
			delete(c.leases, id)
			j.shards[l.shard].live--
			coordObs.leasesOutstanding.Add(-1)
		}
	}
	coordObs.jobsRunning.Add(-1)
	coordObs.jobsCanceled.Add(1)
	onDone := j.hooks.OnDone
	c.mu.Unlock()
	if onDone != nil {
		onDone(nil, ErrCanceled)
	}
}

// sweepLocked expires leases whose deadline has passed: the lease record
// dies (its completion becomes stale) and a shard with no remaining live
// lease returns to pending, to be re-leased at a higher epoch. It also
// refreshes the live-worker gauge (workers seen within three TTLs) and
// prunes stale worker entries. Caller holds mu.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(c.leases, id)
		coordObs.leasesOutstanding.Add(-1)
		coordObs.leasesExpired.Add(1)
		slot := &l.job.shards[l.shard]
		slot.live--
		if slot.live == 0 && slot.state == shardLeased {
			slot.state = shardPending
		}
	}
	window := 3 * c.cfg.LeaseTTL
	live := 0
	for w, seen := range c.workers {
		if now.Sub(seen) > window {
			delete(c.workers, w)
			continue
		}
		live++
	}
	coordObs.workersLive.Set(int64(live))
}

// Progress returns a snapshot of the job's execution state.
func (j *Job) Progress() Progress {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	p := Progress{
		ID:          j.id,
		State:       j.state,
		Points:      len(j.points),
		ShardsTotal: len(j.shards),
		ShardsDone:  j.done,
	}
	for i := range j.shards {
		if j.shards[i].state == shardLeased {
			p.ShardsLeased++
		}
	}
	if j.err != nil {
		p.Error = j.err.Error()
	}
	return p
}

// Results returns the merged result slice of a done job, or the job's
// terminal error (merge failure or ErrCanceled). Calling it on a running
// job is an error.
func (j *Job) Results() ([]sweep.Result, error) {
	j.c.mu.Lock()
	defer j.c.mu.Unlock()
	switch j.state {
	case JobDone:
		return j.results, nil
	case JobRunning:
		return nil, fmt.Errorf("coordinator: job %s still running", j.id)
	default:
		return nil, j.err
	}
}

// Workers returns the number of workers seen within the liveness window
// (three lease TTLs).
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.cfg.Clock.Now())
	return len(c.workers)
}
