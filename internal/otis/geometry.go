package otis

// Free-space geometry model: OTIS(G,T) is realized with two planes of
// lenses (Fig. 1). Transmitters sit on a line in G blocks of T; the first
// lens plane carries G lenses, one per transmitter block; the second plane
// carries T lenses, one per receiver block; receivers sit in T blocks of G.
// A beam from transmitter (i,j) passes lens i of the first plane and lens
// T-1-j of the second plane. The model is 1-D (the paper's figures are 1-D
// projections); it captures which lens pair each beam traverses and lets
// the renderer in cmd/figures draw the crossing pattern.

import (
	"fmt"
	"strings"
)

// Beam describes one optical path through the two lens planes.
type Beam struct {
	// Input position.
	InGroup, InPos int
	// Index of the lens traversed in plane 1 (one lens per input group).
	Lens1 int
	// Index of the lens traversed in plane 2 (one lens per output group).
	Lens2 int
	// Output position.
	OutGroup, OutPos int
}

// Beams returns the G·T optical beams of the architecture, in flat input
// order.
func (o OTIS) Beams() []Beam {
	beams := make([]Beam, 0, o.Ports())
	for i := 0; i < o.G; i++ {
		for j := 0; j < o.T; j++ {
			oi, oj := o.Transpose(i, j)
			beams = append(beams, Beam{
				InGroup: i, InPos: j,
				Lens1: i, Lens2: oi,
				OutGroup: oi, OutPos: oj,
			})
		}
	}
	return beams
}

// Lens1Count and Lens2Count return the number of lenses per plane.
func (o OTIS) Lens1Count() int { return o.G }

// Lens2Count returns the number of lenses in the second plane.
func (o OTIS) Lens2Count() int { return o.T }

// RenderWiring returns a textual rendering of the transpose wiring in the
// spirit of Fig. 1: one line per transmitter showing the traversed lenses
// and the receiver reached. Deterministic, suitable for golden tests.
func (o OTIS) RenderWiring() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %d transmitters (%d groups of %d) -> %d receivers (%d groups of %d)\n",
		o, o.Ports(), o.G, o.T, o.Ports(), o.T, o.G)
	fmt.Fprintf(&b, "lens plane 1: %d lenses, lens plane 2: %d lenses\n", o.Lens1Count(), o.Lens2Count())
	for _, beam := range o.Beams() {
		fmt.Fprintf(&b, "  tx(%d,%d) --lens1[%d]--lens2[%d]--> rx(%d,%d)\n",
			beam.InGroup, beam.InPos, beam.Lens1, beam.Lens2, beam.OutGroup, beam.OutPos)
	}
	return b.String()
}
