package otis

import (
	"strings"
	"testing"
	"testing/quick"

	"otisnet/internal/imase"
	"otisnet/internal/kautz"
)

func TestTransposeDefinition(t *testing.T) {
	// OTIS(3,6), Fig. 1: input (i,j) -> output (5-j, 2-i).
	o := New(3, 6)
	cases := []struct{ i, j, oi, oj int }{
		{0, 0, 5, 2},
		{0, 5, 0, 2},
		{2, 0, 5, 0},
		{2, 5, 0, 0},
		{1, 3, 2, 1},
	}
	for _, c := range cases {
		oi, oj := o.Transpose(c.i, c.j)
		if oi != c.oi || oj != c.oj {
			t.Errorf("Transpose(%d,%d) = (%d,%d), want (%d,%d)", c.i, c.j, oi, oj, c.oi, c.oj)
		}
	}
}

func TestTransposeInverse(t *testing.T) {
	o := New(4, 7)
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			oi, oj := o.Transpose(i, j)
			bi, bj := o.InverseTranspose(oi, oj)
			if bi != i || bj != j {
				t.Fatalf("inverse broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,3) should panic")
		}
	}()
	New(0, 3)
}

func TestTransposeRangePanics(t *testing.T) {
	o := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range input should panic")
		}
	}()
	o.Transpose(2, 0)
}

func TestIndexRoundTrips(t *testing.T) {
	o := New(3, 5)
	for e := 0; e < o.Ports(); e++ {
		i, j := o.InputPosition(e)
		if o.InputIndex(i, j) != e {
			t.Fatalf("input round trip broken at %d", e)
		}
	}
	for s := 0; s < o.Ports(); s++ {
		oi, oj := o.OutputPosition(s)
		if o.OutputIndex(oi, oj) != s {
			t.Fatalf("output round trip broken at %d", s)
		}
	}
}

func TestPermutationIsBijection(t *testing.T) {
	for _, p := range []struct{ g, t int }{{1, 1}, {3, 6}, {6, 3}, {4, 4}, {2, 9}} {
		o := New(p.g, p.t)
		if !IsPermutation(o.Permutation()) {
			t.Errorf("%v permutation is not a bijection", o)
		}
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]int{0, 0}) {
		t.Fatal("duplicate image should be rejected")
	}
	if IsPermutation([]int{0, 2}) {
		t.Fatal("out-of-range image should be rejected")
	}
	if !IsPermutation(nil) {
		t.Fatal("empty permutation is a bijection")
	}
}

func TestOTISSquareSelfInverse(t *testing.T) {
	// For square OTIS(n,n) the transpose composed with itself (reading the
	// output position as an input position) is the identity.
	o := New(5, 5)
	p := o.Permutation()
	for e := range p {
		if p[p[e]] != e {
			t.Fatalf("OTIS(n,n) transpose should be an involution; broken at %d", e)
		}
	}
}

func TestString(t *testing.T) {
	if s := New(3, 12).String(); s != "OTIS(3,12)" {
		t.Fatalf("String = %q", s)
	}
}

func TestBeamsGeometry(t *testing.T) {
	o := New(3, 6)
	beams := o.Beams()
	if len(beams) != 18 {
		t.Fatalf("beam count = %d, want 18", len(beams))
	}
	for _, b := range beams {
		if b.Lens1 != b.InGroup {
			t.Fatalf("beam %+v: lens1 must equal input group", b)
		}
		if b.Lens2 != b.OutGroup {
			t.Fatalf("beam %+v: lens2 must equal output group", b)
		}
		oi, oj := o.Transpose(b.InGroup, b.InPos)
		if oi != b.OutGroup || oj != b.OutPos {
			t.Fatalf("beam %+v inconsistent with transpose", b)
		}
	}
	if o.Lens1Count() != 3 || o.Lens2Count() != 6 {
		t.Fatal("lens counts wrong")
	}
}

func TestRenderWiringFig1(t *testing.T) {
	out := New(3, 6).RenderWiring()
	if !strings.Contains(out, "OTIS(3,6)") {
		t.Fatal("render should name the architecture")
	}
	// Spot-check a line: tx(0,0) reaches rx(5,2).
	if !strings.Contains(out, "tx(0,0) --lens1[0]--lens2[5]--> rx(5,2)") {
		t.Fatalf("render missing expected beam:\n%s", out)
	}
	if got := strings.Count(out, "tx("); got != 18 {
		t.Fatalf("render should list 18 beams, got %d", got)
	}
}

func TestProp1Fig10(t *testing.T) {
	// Fig. 10: II(3,12) realized with OTIS(3,12).
	r := NewImaseRealization(3, 12)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	// Node 0's beams land on 11, 10, 9 in α order.
	nbrs := r.NeighborsVia(0)
	want := []int{11, 10, 9}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("NeighborsVia(0) = %v, want %v", nbrs, want)
		}
	}
}

func TestProp1Sweep(t *testing.T) {
	// Proposition 1 holds for every d, n — sweep a grid.
	for d := 1; d <= 5; d++ {
		for n := 1; n <= 30; n++ {
			if err := NewImaseRealization(d, n).Verify(); err != nil {
				t.Fatalf("Prop 1 fails for OTIS(%d,%d): %v", d, n, err)
			}
		}
	}
}

func TestCorollary1KautzViaOTIS(t *testing.T) {
	// Corollary 1: KG(d,k) = II(d, d^{k-1}(d+1)) realized by
	// OTIS(d, d^{k-1}(d+1)).
	for _, p := range []struct{ d, k int }{{2, 2}, {3, 2}, {2, 3}} {
		n := kautz.N(p.d, p.k)
		r := NewImaseRealization(p.d, n)
		if err := r.Verify(); err != nil {
			t.Fatalf("Corollary 1 fails for d=%d k=%d: %v", p.d, p.k, err)
		}
		ii := imase.New(p.d, n)
		if k, isK := ii.IsKautz(); !isK || k != p.k {
			t.Fatalf("II(%d,%d) is not KG(%d,%d)", p.d, n, p.d, p.k)
		}
	}
}

func TestNodeInputOutputOwnership(t *testing.T) {
	r := NewImaseRealization(3, 12)
	for u := 0; u < 12; u++ {
		for _, e := range r.InputsOfNode(u) {
			if r.NodeOfInput(e) != u {
				t.Fatalf("input %d should belong to node %d", e, u)
			}
		}
		for _, s := range r.OutputsOfNode(u) {
			if r.NodeOfOutput(s) != u {
				t.Fatalf("output %d should belong to node %d", s, u)
			}
		}
	}
}

func TestAsImaseItoh(t *testing.T) {
	d, n := New(3, 6).AsImaseItoh()
	if d != 3 || n != 6 {
		t.Fatalf("AsImaseItoh = (%d,%d), want (3,6)", d, n)
	}
	// The identification must itself satisfy Prop 1.
	if err := NewImaseRealization(d, n).Verify(); err != nil {
		t.Fatal(err)
	}
}

// Property: Prop 1 holds for random (d, n) pairs — the quick.Check version
// of the sweep, exploring larger orders.
func TestProp1Property(t *testing.T) {
	f := func(du, nu uint8) bool {
		d := 1 + int(du)%6
		n := 1 + int(nu)%120
		return NewImaseRealization(d, n).Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the transpose permutation is an anti-involution in the sense
// that OTIS(G,T) followed by OTIS(T,G) is the identity on flat indices.
func TestTransposeComposeProperty(t *testing.T) {
	f := func(gu, tu uint8) bool {
		g := 1 + int(gu)%8
		tt := 1 + int(tu)%8
		a := New(g, tt)
		b := New(tt, g)
		pa := a.Permutation()
		pb := b.Permutation()
		for e := range pa {
			if pb[pa[e]] != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
