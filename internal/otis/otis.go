// Package otis models the Optical Transpose Interconnection System of
// Marsden, Marchand, Harvey and Esener (Optics Letters 1993). OTIS(G,T) is
// a free-space optical system connecting G·T transmitters, arranged as G
// groups of T, to G·T receivers, arranged as T groups of G: the transmitter
// of position (i,j) illuminates the receiver of position (T-1-j, G-1-i)
// through two planes of lenses.
//
// The package provides the exact transpose permutation, a simple two-lens-
// plane geometry model sufficient to render Figure 1, the association of
// Proposition 1 that turns OTIS(d,n) into the Imase-Itoh digraph II(d,n),
// and the converse identification (conclusion of the paper) of any
// OTIS(G,T) with II(G,T).
package otis

import "fmt"

// OTIS describes an OTIS(G,T) architecture.
type OTIS struct {
	G, T int
}

// New returns the OTIS(G,T) architecture. Both parameters must be >= 1.
func New(g, t int) OTIS {
	if g < 1 || t < 1 {
		panic(fmt.Sprintf("otis: invalid OTIS(%d,%d)", g, t))
	}
	return OTIS{G: g, T: t}
}

// Ports returns the number of inputs (= outputs) G·T.
func (o OTIS) Ports() int { return o.G * o.T }

// String implements fmt.Stringer: "OTIS(G,T)".
func (o OTIS) String() string { return fmt.Sprintf("OTIS(%d,%d)", o.G, o.T) }

// Transpose maps an input position (i, j), 0 <= i < G, 0 <= j < T, to its
// output position (T-1-j, G-1-i). This is the defining optical connection.
func (o OTIS) Transpose(i, j int) (oi, oj int) {
	o.checkInput(i, j)
	return o.T - 1 - j, o.G - 1 - i
}

// InverseTranspose maps an output position (oi, oj), 0 <= oi < T,
// 0 <= oj < G, back to the input position illuminating it.
func (o OTIS) InverseTranspose(oi, oj int) (i, j int) {
	if oi < 0 || oi >= o.T || oj < 0 || oj >= o.G {
		panic(fmt.Sprintf("otis: output (%d,%d) out of range for %v", oi, oj, o))
	}
	return o.G - 1 - oj, o.T - 1 - oi
}

func (o OTIS) checkInput(i, j int) {
	if i < 0 || i >= o.G || j < 0 || j >= o.T {
		panic(fmt.Sprintf("otis: input (%d,%d) out of range for %v", i, j, o))
	}
}

// InputIndex flattens input position (i,j) to i*T + j in [0, G·T).
func (o OTIS) InputIndex(i, j int) int {
	o.checkInput(i, j)
	return i*o.T + j
}

// InputPosition is the inverse of InputIndex.
func (o OTIS) InputPosition(e int) (i, j int) {
	if e < 0 || e >= o.Ports() {
		panic(fmt.Sprintf("otis: input index %d out of range for %v", e, o))
	}
	return e / o.T, e % o.T
}

// OutputIndex flattens output position (oi,oj) to oi*G + oj in [0, G·T).
func (o OTIS) OutputIndex(oi, oj int) int {
	if oi < 0 || oi >= o.T || oj < 0 || oj >= o.G {
		panic(fmt.Sprintf("otis: output (%d,%d) out of range for %v", oi, oj, o))
	}
	return oi*o.G + oj
}

// OutputPosition is the inverse of OutputIndex.
func (o OTIS) OutputPosition(s int) (oi, oj int) {
	if s < 0 || s >= o.Ports() {
		panic(fmt.Sprintf("otis: output index %d out of range for %v", s, o))
	}
	return s / o.G, s % o.G
}

// Permutation returns the full transpose as a permutation p of [0, G·T):
// flat input e is wired to flat output p[e].
func (o OTIS) Permutation() []int {
	p := make([]int, o.Ports())
	for e := range p {
		i, j := o.InputPosition(e)
		oi, oj := o.Transpose(i, j)
		p[e] = o.OutputIndex(oi, oj)
	}
	return p
}

// IsPermutation verifies that p is a bijection of [0, len(p)) — the
// correctness invariant of the optical wiring (no two transmitters
// illuminate the same receiver).
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
