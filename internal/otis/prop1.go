package otis

// Proposition 1 of the paper: the optical interconnections of the
// Imase-Itoh digraph II(d,n) are perfectly realized by OTIS(d,n).
//
// The association (§3.2):
//   - input e = (i,j) of OTIS(d,n) belongs to node u = ⌊(n·i + j)/d⌋, i.e.
//     node u owns the d consecutive flat inputs d·u, d·u+1, ..., d·u+d-1;
//   - output s = (oi, oj) belongs to node v = oi, i.e. node v owns the d
//     consecutive flat outputs d·v, ..., d·v+d-1 (in paper notation,
//     node v is associated to outputs (v, d-α) for α = 1..d).
// Then the beam leaving node u's α-th input lands on node
// (-d·u - α) mod n — exactly the Imase-Itoh neighborhood.

import (
	"fmt"

	"otisnet/internal/imase"
)

// ImaseRealization is an OTIS(d,n) architecture together with the
// Proposition 1 node association.
type ImaseRealization struct {
	O    OTIS
	D, N int
}

// NewImaseRealization returns the OTIS(d,n) realization of II(d,n).
func NewImaseRealization(d, n int) ImaseRealization {
	return ImaseRealization{O: New(d, n), D: d, N: n}
}

// NodeOfInput returns the II node owning flat input e: ⌊e/d⌋.
func (r ImaseRealization) NodeOfInput(e int) int {
	if e < 0 || e >= r.O.Ports() {
		panic(fmt.Sprintf("otis: input %d out of range", e))
	}
	return e / r.D
}

// InputsOfNode returns the d flat inputs owned by node u, in α order
// (α = 1..d gives flat inputs d·u+α-1).
func (r ImaseRealization) InputsOfNode(u int) []int {
	if u < 0 || u >= r.N {
		panic(fmt.Sprintf("otis: node %d out of range", u))
	}
	in := make([]int, r.D)
	for a := 0; a < r.D; a++ {
		in[a] = r.D*u + a
	}
	return in
}

// NodeOfOutput returns the II node owning flat output s: the output group
// index ⌊s/d⌋ (outputs come in n groups of d).
func (r ImaseRealization) NodeOfOutput(s int) int {
	if s < 0 || s >= r.O.Ports() {
		panic(fmt.Sprintf("otis: output %d out of range", s))
	}
	return s / r.D
}

// OutputsOfNode returns the d flat outputs owned by node v.
func (r ImaseRealization) OutputsOfNode(v int) []int {
	if v < 0 || v >= r.N {
		panic(fmt.Sprintf("otis: node %d out of range", v))
	}
	out := make([]int, r.D)
	for a := 0; a < r.D; a++ {
		out[a] = r.D*v + a
	}
	return out
}

// NeighborsVia returns the nodes reached from node u through the OTIS
// transpose, in α order (the beam from input d·u+α-1 first).
func (r ImaseRealization) NeighborsVia(u int) []int {
	nbrs := make([]int, r.D)
	for a, e := range r.InputsOfNode(u) {
		i, j := r.O.InputPosition(e)
		oi, oj := r.O.Transpose(i, j)
		nbrs[a] = r.NodeOfOutput(r.O.OutputIndex(oi, oj))
	}
	return nbrs
}

// Verify checks Proposition 1 exactly: for every node u, the OTIS-induced
// neighborhood equals the Imase-Itoh arithmetic neighborhood
// (-d·u-α mod n, α = 1..d) as a sequence. Returns nil on success.
func (r ImaseRealization) Verify() error {
	for u := 0; u < r.N; u++ {
		got := r.NeighborsVia(u)
		want := imase.Neighbors(r.D, r.N, u)
		if len(got) != len(want) {
			return fmt.Errorf("otis: node %d: %d beams, want %d", u, len(got), len(want))
		}
		for a := range want {
			if got[a] != want[a] {
				return fmt.Errorf("otis: node %d input α=%d reaches %d, want %d (II(%d,%d))",
					u, a+1, got[a], want[a], r.D, r.N)
			}
		}
	}
	return nil
}

// AsImaseItoh identifies the architecture with an Imase-Itoh digraph
// (conclusion of the paper): OTIS(G,T) is the optical layer of II(G,T).
// It returns the parameters (d, n) = (G, T) of that graph.
func (o OTIS) AsImaseItoh() (d, n int) { return o.G, o.T }
