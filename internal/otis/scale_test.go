package otis

import (
	"testing"

	"otisnet/internal/imase"
	"otisnet/internal/kautz"
)

// Proposition 1 at deployment scale: the Kautz orders the paper's §2.5
// example gestures at. Verification is pure arithmetic (O(n·d)), so even
// KG(5,5)-scale OTIS(5,3750) is instant.
func TestProp1AtScale(t *testing.T) {
	cases := []struct{ d, k int }{
		{5, 4}, // 750 nodes (the paper's corrected example)
		{5, 5}, // 3750 nodes (the figure the paper printed)
		{4, 5}, // 1280 nodes
		{3, 7}, // 2916 nodes
	}
	for _, c := range cases {
		n := kautz.N(c.d, c.k)
		r := NewImaseRealization(c.d, n)
		if err := r.Verify(); err != nil {
			t.Errorf("Prop 1 fails for OTIS(%d,%d) realizing KG(%d,%d): %v",
				c.d, n, c.d, c.k, err)
		}
		if _, ok := imase.KautzOrder(c.d, n); !ok {
			t.Errorf("%d should be a Kautz order for d=%d", n, c.d)
		}
	}
}

// The full KG(5,4) digraph (750 nodes, 3750 arcs) built from labels agrees
// with the II(5,750) arithmetic neighborhoods under Prop 1's numbering —
// structural spot-check at scale without an (expensive) isomorphism run:
// both are 5-regular with diameter 4 and the same arc count.
func TestKautzIIStructuralAgreementAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	kg := kautz.New(5, 4)
	ii := imase.New(5, 750)
	if kg.N() != ii.N() || kg.Digraph().M() != ii.Digraph().M() {
		t.Fatal("order/size mismatch")
	}
	if !kg.Digraph().IsRegular(5) || !ii.Digraph().IsRegular(5) {
		t.Fatal("regularity mismatch")
	}
	if kg.Digraph().Diameter() != 4 || ii.Digraph().Diameter() != 4 {
		t.Fatal("diameter mismatch")
	}
}
