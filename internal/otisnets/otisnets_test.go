package otisnets

import (
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
)

func TestOTISHypercubeShape(t *testing.T) {
	// OTIS-Hypercube over Q2 (4 groups of 4): 16 processors.
	n := New(NewHypercubeFactor(2))
	if n.N() != 16 || n.G() != 4 {
		t.Fatalf("N=%d G=%d, want 16, 4", n.N(), n.G())
	}
	// Arcs: G * factor arcs + transpose arcs = 4*8 + 12 = 44.
	if n.Digraph().M() != 44 {
		t.Fatalf("arcs = %d, want 44", n.Digraph().M())
	}
	if n.TransposeArcs() != 12 {
		t.Fatalf("transpose arcs = %d, want 12", n.TransposeArcs())
	}
}

func TestIDNodeRoundTrip(t *testing.T) {
	n := New(NewMeshFactor(2, 2))
	for id := 0; id < n.N(); id++ {
		g, p := n.Node(id)
		if n.ID(g, p) != id {
			t.Fatalf("round trip broken at %d", id)
		}
	}
}

func TestIDPanics(t *testing.T) {
	n := New(NewMeshFactor(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("out of range should panic")
		}
	}()
	n.ID(4, 0)
}

func TestOTISNetworkConnected(t *testing.T) {
	for _, f := range []*digraph.Digraph{
		NewHypercubeFactor(2),
		NewHypercubeFactor(3),
		NewMeshFactor(2, 3),
		NewMeshFactor(3, 3),
	} {
		n := New(f)
		if !n.Digraph().IsStronglyConnected() {
			t.Fatalf("OTIS network over %d-vertex factor not connected", f.N())
		}
	}
}

func TestDiameterBound24(t *testing.T) {
	// [24]: diameter of OTIS-G(factor) is at most 2*df + 1.
	cases := []*digraph.Digraph{
		NewHypercubeFactor(2), // df=2
		NewHypercubeFactor(3), // df=3
		NewMeshFactor(2, 2),   // df=2
		NewMeshFactor(3, 3),   // df=4
	}
	for _, f := range cases {
		df := f.Diameter()
		n := New(f)
		diam := n.Digraph().Diameter()
		if diam > DiameterUpperBound(df) {
			t.Fatalf("diameter %d exceeds 2*%d+1", diam, df)
		}
		if diam < df {
			t.Fatalf("OTIS network diameter %d below factor diameter %d?!", diam, df)
		}
	}
}

func TestOTISHypercubeDiameterExact(t *testing.T) {
	// Known result for OTIS-Hypercube over Q_h: diameter 2h+1.
	for h := 1; h <= 3; h++ {
		n := New(NewHypercubeFactor(h))
		if d := n.Digraph().Diameter(); d != 2*h+1 {
			t.Fatalf("OTIS-Q%d diameter = %d, want %d", h, d, 2*h+1)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// The transpose layer is an involution: following two transpose arcs
	// returns to the start.
	g := 5
	d := OTISTransposeDigraph(g)
	for u := 0; u < d.N(); u++ {
		out := d.Out(u)
		if len(out) == 0 {
			continue // diagonal vertex
		}
		if len(out) != 1 {
			t.Fatalf("vertex %d has %d transpose arcs, want 1", u, len(out))
		}
		v := out[0]
		if w := d.Out(v); len(w) != 1 || w[0] != u {
			t.Fatalf("transpose not involutive at %d", u)
		}
	}
	// Diagonal vertices (g,g) have no transpose arc: exactly g of them.
	isolated := 0
	for u := 0; u < d.N(); u++ {
		if len(d.Out(u)) == 0 {
			isolated++
		}
	}
	if isolated != g {
		t.Fatalf("isolated diagonal vertices = %d, want %d", isolated, g)
	}
}

func TestTransposeMatchesOTISPermutationSemantics(t *testing.T) {
	// (g,p) -> (p,g) is exactly the "swap" reading of the OTIS transpose
	// for square OTIS(G,G) up to the reflection convention of [19]; the
	// composition property (double transpose = identity) is what [24]'s
	// move sequences rely on and is checked in TestTransposeInvolution.
	// Here: every non-diagonal vertex has exactly one optical neighbor.
	d := OTISTransposeDigraph(4)
	if d.M() != 12 {
		t.Fatalf("arcs = %d, want 12", d.M())
	}
}

// Property: for random factor graphs (strongly connected), the OTIS
// network is strongly connected and its diameter respects the 2df+1 bound.
func TestOTISNetworkBoundProperty(t *testing.T) {
	f := func(nu, seed uint8) bool {
		g := 2 + int(nu)%4
		// Cycle + chords: strongly connected factor.
		fac := digraph.Cycle(g)
		state := uint64(seed)
		for i := 0; i < g; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			u := int(state % uint64(g))
			state = state*6364136223846793005 + 1442695040888963407
			v := int(state % uint64(g))
			if u != v {
				fac.AddArc(u, v)
			}
		}
		n := New(fac)
		if !n.Digraph().IsStronglyConnected() {
			return false
		}
		return n.Digraph().Diameter() <= DiameterUpperBound(fac.Diameter())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
