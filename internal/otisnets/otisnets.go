// Package otisnets implements the OTIS-based electronic interconnection
// networks of Zane, Marchand, Paturi and Esener (reference [24], "Scalable
// Network Architectures Using the Optical Transpose Interconnection
// System"), which §2.1 of the paper recalls: G² processors arranged as G
// groups of G, with intra-group edges given by a factor network on G
// vertices (hypercube, mesh, ...) and inter-group "optical" edges given by
// the OTIS transpose (i,j) <-> (j,i).
//
// The conclusion of the paper observes that the OTIS architecture *is* the
// Imase-Itoh graph, so properties of these networks can be studied through
// II(G,T); OTISTransposeDigraph makes that identification testable.
package otisnets

import (
	"fmt"

	"otisnet/internal/digraph"
)

// Network is an OTIS-G(factor) network: G² vertices (g, p) with g the
// group and p the position, both in [0, G).
type Network struct {
	g      int
	factor *digraph.Digraph
	d      *digraph.Digraph
}

// New builds the OTIS network over the given factor graph (the factor's
// vertex count G gives G groups of G processors). Intra-group arcs follow
// the factor graph on positions; inter-group transpose arcs connect (g, p)
// to (p, g) for g != p — both directions, as in [24] where transpose links
// are bidirectional optical pairs.
func New(factor *digraph.Digraph) *Network {
	g := factor.N()
	n := &Network{g: g, factor: factor, d: digraph.New(g * g)}
	for grp := 0; grp < g; grp++ {
		for _, a := range factor.Arcs() {
			n.d.AddArc(n.ID(grp, a[0]), n.ID(grp, a[1]))
		}
	}
	for grp := 0; grp < g; grp++ {
		for p := 0; p < g; p++ {
			if grp != p {
				n.d.AddArc(n.ID(grp, p), n.ID(p, grp))
			}
		}
	}
	return n
}

// G returns the group count (= group size).
func (n *Network) G() int { return n.g }

// N returns the processor count G².
func (n *Network) N() int { return n.g * n.g }

// Digraph returns the underlying digraph (treat as read-only).
func (n *Network) Digraph() *digraph.Digraph { return n.d }

// Factor returns the factor network.
func (n *Network) Factor() *digraph.Digraph { return n.factor }

// ID maps (group, position) to a vertex id.
func (n *Network) ID(group, pos int) int {
	if group < 0 || group >= n.g || pos < 0 || pos >= n.g {
		panic(fmt.Sprintf("otisnets: invalid node (%d,%d)", group, pos))
	}
	return group*n.g + pos
}

// Node maps a vertex id to (group, position).
func (n *Network) Node(id int) (group, pos int) {
	if id < 0 || id >= n.N() {
		panic(fmt.Sprintf("otisnets: invalid id %d", id))
	}
	return id / n.g, id % n.g
}

// TransposeArcs returns the number of inter-group (optical) arcs:
// G·(G-1), i.e. one per ordered pair of distinct groups.
func (n *Network) TransposeArcs() int { return n.g * (n.g - 1) }

// NewHypercubeFactor returns the dim-dimensional hypercube as a factor
// graph (2^dim vertices, arcs both directions).
func NewHypercubeFactor(dim int) *digraph.Digraph {
	g := digraph.New(1 << dim)
	for u := 0; u < g.N(); u++ {
		for b := 0; b < dim; b++ {
			g.AddArc(u, u^(1<<b))
		}
	}
	return g
}

// NewMeshFactor returns the rows×cols mesh as a factor graph (arcs both
// directions). For the square OTIS-Mesh of [24], use rows == cols.
func NewMeshFactor(rows, cols int) *digraph.Digraph {
	g := digraph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddArc(id(r, c), id(r, c+1))
				g.AddArc(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				g.AddArc(id(r, c), id(r+1, c))
				g.AddArc(id(r+1, c), id(r, c))
			}
		}
	}
	return g
}

// OTISTransposeDigraph returns just the transpose arcs of an OTIS network
// over G groups, as a digraph on G² vertices: (g,p) -> (p,g) for g != p.
// This is the "optical layer" the paper's conclusion identifies with an
// Imase-Itoh-style structure; it is a perfect matching-with-direction on
// the off-diagonal vertices, and an involution.
func OTISTransposeDigraph(g int) *digraph.Digraph {
	d := digraph.New(g * g)
	for grp := 0; grp < g; grp++ {
		for p := 0; p < g; p++ {
			if grp != p {
				d.AddArc(grp*g+p, p*g+grp)
			}
		}
	}
	return d
}

// DiameterUpperBound returns the [24] bound on the OTIS network diameter
// in terms of the factor diameter df: 2·df + 1 (factor route, transpose,
// factor route, with one extra transpose in the worst case).
func DiameterUpperBound(factorDiameter int) int {
	return 2*factorDiameter + 1
}
