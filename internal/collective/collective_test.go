package collective

import (
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

func TestScheduleValidateConstraints(t *testing.T) {
	p := pops.New(2, 2)
	sg := p.StackGraph()
	// Two senders on one coupler in the same round: invalid.
	bad := &Schedule{Rounds: [][]Transmission{{
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)},
		{Node: p.NodeID(0, 1), Coupler: p.CouplerIndex(0, 1)},
	}}}
	if bad.Validate(sg) == nil {
		t.Fatal("double-driven coupler must be rejected")
	}
	// One node on two couplers in the same round: invalid.
	bad2 := &Schedule{Rounds: [][]Transmission{{
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 0)},
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)},
	}}}
	if bad2.Validate(sg) == nil {
		t.Fatal("double-transmitting node must be rejected")
	}
	// Sender not on the coupler tail: invalid.
	bad3 := &Schedule{Rounds: [][]Transmission{{
		{Node: p.NodeID(1, 0), Coupler: p.CouplerIndex(0, 1)},
	}}}
	if bad3.Validate(sg) == nil {
		t.Fatal("foreign sender must be rejected")
	}
	// Out-of-range coupler: invalid.
	bad4 := &Schedule{Rounds: [][]Transmission{{{Node: 0, Coupler: 99}}}}
	if bad4.Validate(sg) == nil {
		t.Fatal("out-of-range coupler must be rejected")
	}
}

func TestExecuteSemantics(t *testing.T) {
	// One transmission on coupler (0,1) of POPS(2,2): both members of group
	// 1 learn the sender's data, nothing else moves.
	p := pops.New(2, 2)
	sg := p.StackGraph()
	s := &Schedule{Rounds: [][]Transmission{{
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)},
	}}}
	if err := s.Validate(sg); err != nil {
		t.Fatal(err)
	}
	k := s.Execute(sg)
	if !k.Holds(p.NodeID(1, 0), p.NodeID(0, 0)) || !k.Holds(p.NodeID(1, 1), p.NodeID(0, 0)) {
		t.Fatal("head set must learn the data")
	}
	if k.Holds(p.NodeID(0, 1), p.NodeID(0, 0)) {
		t.Fatal("nodes off the coupler must not learn")
	}
}

func TestExecuteSynchronousRounds(t *testing.T) {
	// Data received in a round is usable only in the next round: two
	// transmissions in the SAME round cannot relay.
	p := pops.New(2, 3)
	sg := p.StackGraph()
	same := &Schedule{Rounds: [][]Transmission{{
		{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)},
		{Node: p.NodeID(1, 0), Coupler: p.CouplerIndex(1, 2)},
	}}}
	k := same.Execute(sg)
	if k.Holds(p.NodeID(2, 0), p.NodeID(0, 0)) {
		t.Fatal("same-round relay should not propagate")
	}
	// Sequential rounds do relay.
	seq := &Schedule{Rounds: [][]Transmission{
		{{Node: p.NodeID(0, 0), Coupler: p.CouplerIndex(0, 1)}},
		{{Node: p.NodeID(1, 0), Coupler: p.CouplerIndex(1, 2)}},
	}}
	k2 := seq.Execute(sg)
	if !k2.Holds(p.NodeID(2, 0), p.NodeID(0, 0)) {
		t.Fatal("sequential relay should propagate")
	}
}

func TestPOPSBroadcastCompletes(t *testing.T) {
	for _, pr := range []struct{ t, g int }{{4, 2}, {2, 5}, {3, 3}, {1, 4}, {5, 1}, {1, 1}} {
		p := pops.New(pr.t, pr.g)
		src := p.NodeID(0, 0)
		s := POPSBroadcast(p, src)
		if err := s.Validate(p.StackGraph()); err != nil {
			t.Fatalf("POPS(%d,%d): %v", pr.t, pr.g, err)
		}
		k := s.Execute(p.StackGraph())
		if !k.BroadcastComplete(src) {
			t.Fatalf("POPS(%d,%d): broadcast incomplete in %d slots", pr.t, pr.g, s.Slots())
		}
		want := 1 + (pr.g-2+pr.t)/pr.t // 1 + ceil((g-1)/t)
		if pr.g == 1 {
			want = 1
		}
		if p.N() == 1 {
			want = 0
		}
		if s.Slots() != want {
			t.Fatalf("POPS(%d,%d): %d slots, want %d", pr.t, pr.g, s.Slots(), want)
		}
	}
}

func TestPOPSBroadcastFromNonzeroSource(t *testing.T) {
	p := pops.New(3, 4)
	src := p.NodeID(2, 1)
	s := POPSBroadcast(p, src)
	if err := s.Validate(p.StackGraph()); err != nil {
		t.Fatal(err)
	}
	if !s.Execute(p.StackGraph()).BroadcastComplete(src) {
		t.Fatal("broadcast incomplete")
	}
}

func TestPOPSGossipCompletes(t *testing.T) {
	for _, pr := range []struct{ t, g int }{{2, 2}, {4, 2}, {2, 5}, {3, 3}, {1, 3}, {4, 1}} {
		p := pops.New(pr.t, pr.g)
		s := POPSGossip(p)
		if err := s.Validate(p.StackGraph()); err != nil {
			t.Fatalf("POPS(%d,%d): %v", pr.t, pr.g, err)
		}
		if !s.Execute(p.StackGraph()).GossipComplete() {
			t.Fatalf("POPS(%d,%d): gossip incomplete in %d slots", pr.t, pr.g, s.Slots())
		}
		if lb := GossipLowerBound(p.StackGraph()); s.Slots() < lb {
			t.Fatalf("POPS(%d,%d): schedule beats the lower bound?!", pr.t, pr.g)
		}
	}
}

func TestSKBroadcastCompletes(t *testing.T) {
	for _, pr := range []struct{ s, d, k int }{{6, 3, 2}, {2, 2, 2}, {2, 2, 3}, {1, 2, 2}, {2, 3, 2}} {
		n := stackkautz.New(pr.s, pr.d, pr.k)
		src := stackkautz.Address{Group: n.Kautz().LabelOf(0), Member: 0}
		s := SKBroadcast(n, src)
		if err := s.Validate(n.StackGraph()); err != nil {
			t.Fatalf("SK(%d,%d,%d): %v", pr.s, pr.d, pr.k, err)
		}
		k := s.Execute(n.StackGraph())
		if !k.BroadcastComplete(n.NodeID(src)) {
			t.Fatalf("SK(%d,%d,%d): broadcast incomplete in %d slots", pr.s, pr.d, pr.k, s.Slots())
		}
		// Slot count: 1 (loop) + k·⌈d/s⌉.
		per := (pr.d + pr.s - 1) / pr.s
		if want := 1 + pr.k*per; s.Slots() > want {
			t.Fatalf("SK(%d,%d,%d): %d slots > bound %d", pr.s, pr.d, pr.k, s.Slots(), want)
		}
		// And never below the eccentricity lower bound.
		if lb := BroadcastLowerBound(n.StackGraph(), n.NodeID(src)); s.Slots() < lb {
			t.Fatalf("SK(%d,%d,%d): %d slots beats lower bound %d", pr.s, pr.d, pr.k, s.Slots(), lb)
		}
	}
}

func TestSKBroadcastArbitrarySource(t *testing.T) {
	n := stackkautz.New(3, 2, 3)
	src := stackkautz.Address{Group: n.Kautz().LabelOf(7), Member: 2}
	s := SKBroadcast(n, src)
	if err := s.Validate(n.StackGraph()); err != nil {
		t.Fatal(err)
	}
	if !s.Execute(n.StackGraph()).BroadcastComplete(n.NodeID(src)) {
		t.Fatal("broadcast incomplete")
	}
}

func TestBroadcastLowerBound(t *testing.T) {
	p := pops.New(4, 3)
	if lb := BroadcastLowerBound(p.StackGraph(), 0); lb != 1 {
		t.Fatalf("POPS broadcast lower bound = %d, want 1", lb)
	}
	sk := stackkautz.New(2, 2, 3)
	if lb := BroadcastLowerBound(sk.StackGraph(), 0); lb != 3 {
		t.Fatalf("SK(2,2,3) broadcast lower bound = %d, want k=3", lb)
	}
	// Disconnected: -1.
	g := digraph.New(2)
	sg := hypergraph.NewStackGraph(1, g)
	if BroadcastLowerBound(sg, 0) != -1 {
		t.Fatal("unreachable should give -1")
	}
}

func TestGossipLowerBound(t *testing.T) {
	p := pops.New(4, 2) // n=8, m=4
	if lb := GossipLowerBound(p.StackGraph()); lb != 2 {
		t.Fatalf("lower bound = %d, want 2", lb)
	}
	if GossipLowerBound(pops.New(1, 1).StackGraph()) != 0 {
		t.Fatal("single node gossips in 0 slots")
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := &Schedule{Rounds: [][]Transmission{{{0, 0}}, {{1, 1}, {2, 2}}}}
	if s.Slots() != 2 || s.Transmissions() != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestFormatSchedule(t *testing.T) {
	p := pops.New(2, 2)
	s := POPSBroadcast(p, 0)
	out := FormatSchedule(s, p.StackGraph())
	if out == "" {
		t.Fatal("format should produce output")
	}
}

// Property: POPS broadcast completes from every source on random
// parameters, within 1 + ceil((g-1)/t) slots.
func TestPOPSBroadcastProperty(t *testing.T) {
	f := func(tu, gu, su uint8) bool {
		tt := 1 + int(tu)%4
		g := 1 + int(gu)%4
		p := pops.New(tt, g)
		src := int(su) % p.N()
		s := POPSBroadcast(p, src)
		if s.Validate(p.StackGraph()) != nil {
			return false
		}
		return s.Execute(p.StackGraph()).BroadcastComplete(src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SK broadcast completes from every source on random parameters.
func TestSKBroadcastProperty(t *testing.T) {
	f := func(su, du, ku, nu uint8) bool {
		s := 1 + int(su)%3
		d := 2 + int(du)%2
		k := 1 + int(ku)%2
		n := stackkautz.New(s, d, k)
		src := n.Addr(int(nu) % n.N())
		sched := SKBroadcast(n, src)
		if sched.Validate(n.StackGraph()) != nil {
			return false
		}
		return sched.Execute(n.StackGraph()).BroadcastComplete(n.NodeID(src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
