package collective

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

// POPSBroadcast builds a one-to-all broadcast schedule on POPS(t,g) from
// src: slot 1 informs the whole source group through coupler (i,i); then
// informed members of the source group fire the remaining g-1 couplers
// (i,j), up to t per slot. Total slots: 1 + ⌈(g-1)/t⌉ (1 when g == 1),
// which is optimal to within one slot of the trivial ⌈log⌉-style bound
// since a node may drive only one coupler per slot.
func POPSBroadcast(p *pops.Network, src int) *Schedule {
	sg := p.StackGraph()
	grp, _ := p.Node(src)
	s := &Schedule{}
	if p.N() == 1 {
		return s
	}
	// Slot 1: inform own group via the loop coupler (i,i).
	s.Rounds = append(s.Rounds, []Transmission{{Node: src, Coupler: p.CouplerIndex(grp, grp)}})
	// Remaining groups, t transmitters per slot.
	var targets []int
	for j := 0; j < p.G(); j++ {
		if j != grp {
			targets = append(targets, j)
		}
	}
	for len(targets) > 0 {
		var round []Transmission
		for m := 0; m < p.T() && len(targets) > 0; m++ {
			j := targets[0]
			targets = targets[1:]
			round = append(round, Transmission{
				Node:    p.NodeID(grp, m),
				Coupler: p.CouplerIndex(grp, j),
			})
		}
		s.Rounds = append(s.Rounds, round)
	}
	_ = sg
	return s
}

// POPSGossip builds an all-to-all (non-personalized) gossip schedule on
// POPS(t,g): phase 1, t slots of intra-group collection on the loop
// couplers (all groups in parallel — the loop couplers are disjoint);
// phase 2, every group ships its collected knowledge to every other group,
// t couplers per group per slot. Total slots: t + ⌈(g-1)/t⌉ for g > 1
// (t slots when g == 1 and t > 1, 0 when N == 1).
func POPSGossip(p *pops.Network) *Schedule {
	s := &Schedule{}
	if p.N() == 1 {
		return s
	}
	// Phase 1: member m of every group fires its loop coupler in slot m.
	for m := 0; m < p.T(); m++ {
		var round []Transmission
		for i := 0; i < p.G(); i++ {
			round = append(round, Transmission{
				Node:    p.NodeID(i, m),
				Coupler: p.CouplerIndex(i, i),
			})
		}
		s.Rounds = append(s.Rounds, round)
	}
	if p.G() == 1 {
		return s
	}
	// Phase 2: group i sends to groups i+1, ..., i+g-1 (mod g), t at a time.
	offsets := p.G() - 1
	for start := 0; start < offsets; start += p.T() {
		var round []Transmission
		for i := 0; i < p.G(); i++ {
			for m := 0; m < p.T() && start+m < offsets; m++ {
				j := (i + 1 + start + m) % p.G()
				round = append(round, Transmission{
					Node:    p.NodeID(i, m),
					Coupler: p.CouplerIndex(i, j),
				})
			}
		}
		s.Rounds = append(s.Rounds, round)
	}
	return s
}

// SKBroadcast builds a one-to-all broadcast schedule on the stack-Kautz
// network: slot 1 informs the source group through its loop coupler, then
// the informed frontier floods outward along the Kautz arcs, every group at
// BFS level r firing its d outgoing couplers with distinct members
// (⌈d/s⌉ slots per level). Total slots: 1 + k·⌈d/s⌉ for k ≥ 1 — the
// diameter-matching flood the paper's distributed-control companion uses.
func SKBroadcast(n *stackkautz.Network, src stackkautz.Address) *Schedule {
	sg := n.StackGraph()
	kg := n.Kautz().Digraph()
	srcGroup := n.Kautz().Index(src.Group)
	s := &Schedule{}
	if n.N() == 1 {
		return s
	}
	// Slot 1: loop coupler informs the whole source group.
	s.Rounds = append(s.Rounds, []Transmission{{
		Node:    n.NodeID(src),
		Coupler: sg.HyperarcFor(srcGroup, srcGroup),
	}})
	// Flood level by level.
	dist := kg.BFS(srcGroup)
	maxLevel := 0
	for _, d := range dist {
		if d > maxLevel {
			maxLevel = d
		}
	}
	for level := 0; level < maxLevel; level++ {
		// All groups at distance `level` fire all their non-loop couplers,
		// at most s per slot (distinct members).
		type firing struct{ group, arcIdx, target int }
		var firings []firing
		for g := 0; g < kg.N(); g++ {
			if dist[g] != level {
				continue
			}
			idx := 0
			for _, z := range kg.Out(g) {
				if z == g {
					continue
				}
				firings = append(firings, firing{group: g, arcIdx: idx, target: z})
				idx++
			}
		}
		slots := (n.D() + n.S() - 1) / n.S()
		for sub := 0; sub < slots; sub++ {
			var round []Transmission
			for _, f := range firings {
				if f.arcIdx/n.S() != sub {
					continue
				}
				member := f.arcIdx % n.S()
				round = append(round, Transmission{
					Node:    sg.NodeID(hypergraph.StackNode{Group: f.group, Member: member}),
					Coupler: sg.HyperarcFor(f.group, f.target),
				})
			}
			if len(round) > 0 {
				s.Rounds = append(s.Rounds, round)
			}
		}
	}
	return s
}

// BroadcastLowerBound returns the trivial lower bound on one-to-all
// broadcast slots from src on a stack-graph: the hop eccentricity of src
// (every slot extends reach by at most one hop).
func BroadcastLowerBound(sg *hypergraph.StackGraph, src int) int {
	und := sg.UnderlyingDigraph()
	ecc := und.Eccentricity(src)
	if ecc == digraph.Unreachable {
		return -1
	}
	return ecc
}

// GossipLowerBound returns a lower bound on all-to-all gossip slots on a
// stack-graph with m couplers and n nodes: every node's data must cross at
// least one coupler to reach any other group, and a coupler moves one
// node's current knowledge per slot; additionally each node must transmit
// at least once, with at most min(m, n) transmissions per slot, giving
// ⌈n / min(m, n)⌉.
func GossipLowerBound(sg *hypergraph.StackGraph) int {
	n := sg.N()
	if n <= 1 {
		return 0
	}
	cap := sg.M()
	if n < cap {
		cap = n
	}
	return (n + cap - 1) / cap
}

// FormatSchedule renders a schedule as readable text for the examples and
// tools.
func FormatSchedule(s *Schedule, sg *hypergraph.StackGraph) string {
	out := fmt.Sprintf("%d slots, %d transmissions\n", s.Slots(), s.Transmissions())
	for i, round := range s.Rounds {
		out += fmt.Sprintf("  slot %d:", i+1)
		for _, tr := range round {
			u, v := sg.BaseArcOf(tr.Coupler)
			out += fmt.Sprintf(" node%d->(%d,%d)", tr.Node, u, v)
		}
		out += "\n"
	}
	return out
}
