// Package collective implements slot-accurate collective-communication
// schedules for multi-OPS networks — the workloads the POPS and stack-Kautz
// companion literature evaluates (Berthomé & Ferreira; Gravenstreter &
// Melhem; Chiarulli et al.). A schedule is an explicit list of rounds; each
// round is a set of transmissions that respects the two multi-OPS
// constraints: at most one sender per coupler per slot (single wavelength)
// and at most one transmission per node per slot. Schedules are verified by
// simulation of their semantics (every transmission reaches the coupler's
// whole head set) and compared against information-theoretic lower bounds.
package collective

import (
	"fmt"

	"otisnet/internal/hypergraph"
)

// Transmission is one sender firing on one coupler in a given round.
type Transmission struct {
	// Node is the sending processor.
	Node int
	// Coupler is the hyperarc index in the network's stack-graph.
	Coupler int
}

// Schedule is a sequence of rounds of concurrent transmissions.
type Schedule struct {
	Rounds [][]Transmission
}

// Slots returns the number of rounds.
func (s *Schedule) Slots() int { return len(s.Rounds) }

// Transmissions returns the total number of transmissions.
func (s *Schedule) Transmissions() int {
	t := 0
	for _, r := range s.Rounds {
		t += len(r)
	}
	return t
}

// Validate checks the multi-OPS constraints round by round against the
// stack-graph: senders must be on the tail of the coupler they drive, no
// coupler is driven twice in a round, and no node transmits twice in a
// round.
func (s *Schedule) Validate(sg *hypergraph.StackGraph) error {
	for i, round := range s.Rounds {
		couplerBusy := map[int]bool{}
		nodeBusy := map[int]bool{}
		for _, tr := range round {
			if tr.Coupler < 0 || tr.Coupler >= sg.M() {
				return fmt.Errorf("collective: round %d: coupler %d out of range", i, tr.Coupler)
			}
			if couplerBusy[tr.Coupler] {
				return fmt.Errorf("collective: round %d: coupler %d driven twice", i, tr.Coupler)
			}
			if nodeBusy[tr.Node] {
				return fmt.Errorf("collective: round %d: node %d transmits twice", i, tr.Node)
			}
			onTail := false
			for _, u := range sg.Hyperarc(tr.Coupler).Tail {
				if u == tr.Node {
					onTail = true
					break
				}
			}
			if !onTail {
				return fmt.Errorf("collective: round %d: node %d not on tail of coupler %d",
					i, tr.Node, tr.Coupler)
			}
			couplerBusy[tr.Coupler] = true
			nodeBusy[tr.Node] = true
		}
	}
	return nil
}

// knowledge tracks, per node, which source data items it holds; used to
// verify dissemination schedules by executing them.
type knowledge struct {
	has []map[int]bool // has[node][source]
}

func newKnowledge(n int) *knowledge {
	k := &knowledge{has: make([]map[int]bool, n)}
	for i := range k.has {
		k.has[i] = map[int]bool{i: true}
	}
	return k
}

// Execute runs the schedule's dissemination semantics: when a node fires on
// a coupler, everything it currently holds becomes known to the coupler's
// whole head set at the end of the round (synchronous rounds: receptions
// become usable in the next round).
func (s *Schedule) Execute(sg *hypergraph.StackGraph) *knowledge {
	k := newKnowledge(sg.N())
	for _, round := range s.Rounds {
		type delivery struct {
			to   int
			data map[int]bool
		}
		var pending []delivery
		for _, tr := range round {
			snapshot := make(map[int]bool, len(k.has[tr.Node]))
			for src := range k.has[tr.Node] {
				snapshot[src] = true
			}
			for _, h := range sg.Hyperarc(tr.Coupler).Head {
				pending = append(pending, delivery{to: h, data: snapshot})
			}
		}
		for _, d := range pending {
			for src := range d.data {
				k.has[d.to][src] = true
			}
		}
	}
	return k
}

// BroadcastComplete reports whether, after Execute, every node holds the
// data of the given source.
func (k *knowledge) BroadcastComplete(src int) bool {
	for _, h := range k.has {
		if !h[src] {
			return false
		}
	}
	return true
}

// GossipComplete reports whether every node holds every node's data.
func (k *knowledge) GossipComplete() bool {
	n := len(k.has)
	for _, h := range k.has {
		if len(h) != n {
			return false
		}
	}
	return true
}

// Holds reports whether node holds src's data.
func (k *knowledge) Holds(node, src int) bool { return k.has[node][src] }
