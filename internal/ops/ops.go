// Package ops models single-wavelength Optical Passive Star couplers
// (§2.2 of the paper). An OPS(s,z) has s inputs and z outputs; it is an
// optical multiplexer followed by a beam-splitter that divides the incoming
// signal into z equal parts, each carrying a z-th of the incoming power.
// Being single-wavelength, at most one input may drive it per time slot —
// the semantics the slotted simulator enforces. Being passive, it needs no
// power source; the only costs are the splitting loss and excess losses of
// the stages, which PowerBudget models.
package ops

import (
	"fmt"
	"math"
)

// Coupler is an OPS(s,z) coupler. For the degree-s couplers used throughout
// the paper, s == z.
type Coupler struct {
	Inputs  int
	Outputs int
}

// New returns an OPS(s,z) coupler.
func New(s, z int) Coupler {
	if s < 1 || z < 1 {
		panic(fmt.Sprintf("ops: invalid OPS(%d,%d)", s, z))
	}
	return Coupler{Inputs: s, Outputs: z}
}

// NewDegree returns the degree-s coupler OPS(s,s) (Fig. 2).
func NewDegree(s int) Coupler { return New(s, s) }

// Degree returns s when the coupler is balanced (s == z), else -1.
func (c Coupler) Degree() int {
	if c.Inputs != c.Outputs {
		return -1
	}
	return c.Inputs
}

// String implements fmt.Stringer: "OPS(s,z)".
func (c Coupler) String() string { return fmt.Sprintf("OPS(%d,%d)", c.Inputs, c.Outputs) }

// Broadcast models one time slot: input port src (0-based) transmits power
// p (in mW, say); every output port receives p/Outputs. It returns the
// per-output power. This is the one-to-many primitive of the paper.
func (c Coupler) Broadcast(src int, p float64) []float64 {
	if src < 0 || src >= c.Inputs {
		panic(fmt.Sprintf("ops: input %d out of range for %v", src, c))
	}
	out := make([]float64, c.Outputs)
	share := p / float64(c.Outputs)
	for i := range out {
		out[i] = share
	}
	return out
}

// SplittingLossDB returns the intrinsic splitting loss of the coupler in
// decibels: 10·log10(z). A degree-4 coupler (Fig. 2) loses ~6.02 dB.
func (c Coupler) SplittingLossDB() float64 {
	return 10 * math.Log10(float64(c.Outputs))
}

// PowerBudget models an optical path: a launch power, a sequence of stages
// each with an excess loss in dB, and any number of couplers contributing
// their splitting losses.
type PowerBudget struct {
	LaunchDBm float64 // transmitter launch power, dBm
	losses    []float64
}

// NewPowerBudget starts a budget at the given launch power in dBm.
func NewPowerBudget(launchDBm float64) *PowerBudget {
	return &PowerBudget{LaunchDBm: launchDBm}
}

// AddExcessLoss records a fixed excess loss in dB (lens plane, connector,
// multiplexer insertion...). Negative losses are rejected.
func (b *PowerBudget) AddExcessLoss(db float64) *PowerBudget {
	if db < 0 {
		panic("ops: negative excess loss")
	}
	b.losses = append(b.losses, db)
	return b
}

// AddCoupler records the splitting loss of traversing c.
func (b *PowerBudget) AddCoupler(c Coupler) *PowerBudget {
	b.losses = append(b.losses, c.SplittingLossDB())
	return b
}

// TotalLossDB returns the accumulated loss in dB.
func (b *PowerBudget) TotalLossDB() float64 {
	t := 0.0
	for _, l := range b.losses {
		t += l
	}
	return t
}

// ReceivedDBm returns launch power minus accumulated losses.
func (b *PowerBudget) ReceivedDBm() float64 { return b.LaunchDBm - b.TotalLossDB() }

// Feasible reports whether the received power meets the receiver
// sensitivity (dBm).
func (b *PowerBudget) Feasible(sensitivityDBm float64) bool {
	return b.ReceivedDBm() >= sensitivityDBm
}

// MaxDegreeForBudget returns the largest coupler degree s such that a
// single-coupler path with the given launch power, total excess loss and
// receiver sensitivity still closes: 10·log10(s) <= margin. Returns 0 when
// even degree 1 does not close. This reproduces the technology argument of
// the paper's introduction — splitting loss caps group size s.
func MaxDegreeForBudget(launchDBm, excessDB, sensitivityDBm float64) int {
	margin := launchDBm - excessDB - sensitivityDBm
	if margin < 0 {
		return 0
	}
	return int(math.Floor(math.Pow(10, margin/10)))
}
