package ops

import (
	"math"
	"testing"
	"testing/quick"

	"otisnet/internal/hypergraph"
)

func TestNewAndDegree(t *testing.T) {
	c := NewDegree(4)
	if c.Inputs != 4 || c.Outputs != 4 || c.Degree() != 4 {
		t.Fatal("degree-4 coupler wrong")
	}
	if New(3, 5).Degree() != -1 {
		t.Fatal("unbalanced coupler should report degree -1")
	}
	if s := New(3, 5).String(); s != "OPS(3,5)" {
		t.Fatalf("String = %q", s)
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OPS(0,1) should panic")
		}
	}()
	New(0, 1)
}

func TestBroadcastEqualSplit(t *testing.T) {
	// Fig. 2: degree-4 OPS divides the signal into 4 equal parts.
	c := NewDegree(4)
	out := c.Broadcast(2, 1.0)
	if len(out) != 4 {
		t.Fatalf("outputs = %d, want 4", len(out))
	}
	for _, p := range out {
		if p != 0.25 {
			t.Fatalf("output power %v, want 0.25", p)
		}
	}
}

func TestBroadcastRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("src out of range should panic")
		}
	}()
	NewDegree(2).Broadcast(2, 1)
}

func TestSplittingLoss(t *testing.T) {
	if l := NewDegree(4).SplittingLossDB(); math.Abs(l-6.0206) > 1e-3 {
		t.Fatalf("splitting loss = %v, want ~6.02 dB", l)
	}
	if l := NewDegree(1).SplittingLossDB(); l != 0 {
		t.Fatalf("degree-1 loss = %v, want 0", l)
	}
}

func TestPowerBudget(t *testing.T) {
	b := NewPowerBudget(0). // 0 dBm = 1 mW
				AddExcessLoss(1.5).
				AddCoupler(NewDegree(8))
	wantLoss := 1.5 + 10*math.Log10(8)
	if math.Abs(b.TotalLossDB()-wantLoss) > 1e-9 {
		t.Fatalf("total loss = %v, want %v", b.TotalLossDB(), wantLoss)
	}
	if math.Abs(b.ReceivedDBm()-(0-wantLoss)) > 1e-9 {
		t.Fatal("received power wrong")
	}
	if !b.Feasible(-15) || b.Feasible(-10) {
		t.Fatal("feasibility thresholds wrong")
	}
}

func TestPowerBudgetNegativeLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative excess loss should panic")
		}
	}()
	NewPowerBudget(0).AddExcessLoss(-1)
}

func TestMaxDegreeForBudget(t *testing.T) {
	// Margin 20 dB supports degree 100; 0 dB margin supports degree 1.
	if got := MaxDegreeForBudget(0, 5, -25); got != 100 {
		t.Fatalf("MaxDegree = %d, want 100", got)
	}
	if got := MaxDegreeForBudget(0, 0, 0); got != 1 {
		t.Fatalf("MaxDegree = %d, want 1", got)
	}
	if got := MaxDegreeForBudget(0, 5, 0); got != 0 {
		t.Fatalf("infeasible budget should give 0, got %d", got)
	}
}

// Fig. 3: an OPS coupler of degree s is exactly a hyperarc joining its
// source set to its destination set.
func TestCouplerAsHyperarc(t *testing.T) {
	c := NewDegree(4)
	h := hypergraph.New(8)
	h.AddHyperarc([]int{0, 1, 2, 3}, []int{4, 5, 6, 7})
	a := h.Hyperarc(0)
	if a.Degree() != c.Degree() {
		t.Fatal("hyperarc degree must match coupler degree")
	}
	// One-to-many: any source reaches every destination, destinations reach
	// nobody — matching Broadcast delivering to all outputs.
	for _, src := range a.Tail {
		for _, dst := range a.Head {
			if !h.Reachable(src, dst) {
				t.Fatalf("source %d should reach destination %d", src, dst)
			}
		}
	}
	for _, dst := range a.Head {
		if h.OutDegree(dst) != 0 {
			t.Fatal("destinations must not transmit on the coupler")
		}
	}
}

// Property: broadcast conserves energy exactly (sum of outputs == input).
func TestBroadcastConservationProperty(t *testing.T) {
	f := func(deg uint8, power float64) bool {
		s := 1 + int(deg)%64
		if math.IsNaN(power) || math.IsInf(power, 0) {
			return true
		}
		p := math.Abs(power)
		out := NewDegree(s).Broadcast(0, p)
		sum := 0.0
		for _, v := range out {
			sum += v
		}
		return math.Abs(sum-p) <= 1e-9*math.Max(1, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxDegreeForBudget is consistent with the budget arithmetic —
// the returned degree closes the link and degree+1 does not.
func TestMaxDegreeConsistencyProperty(t *testing.T) {
	f := func(m uint8) bool {
		margin := float64(m%30) + 0.5
		s := MaxDegreeForBudget(margin, 0, 0)
		if s < 1 {
			return false
		}
		ok := NewPowerBudget(margin).AddCoupler(NewDegree(s)).Feasible(0)
		tooFar := NewPowerBudget(margin).AddCoupler(NewDegree(s + 1)).Feasible(0)
		return ok && !tooFar
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
