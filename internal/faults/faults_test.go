package faults

import (
	"math/rand"
	"testing"

	"otisnet/internal/digraph"
	"otisnet/internal/kautz"
	"otisnet/internal/pops"
	"otisnet/internal/sim"
	"otisnet/internal/stackkautz"
)

func skTopo(s, d, k int) sim.Topology {
	return sim.NewStackTopology(stackkautz.New(s, d, k).StackGraph())
}

func popsTopo(t, g int) sim.Topology {
	return sim.NewStackTopology(pops.New(t, g).StackGraph())
}

func p2pTopo(d, k int) sim.Topology {
	return sim.NewPointToPointTopology(kautz.NewDeBruijn(d, k).Digraph())
}

// --- regression guard: fault-free wrap is bit-for-bit identical ---

func TestFaultFreePlanIsBitForBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		topo sim.Topology
		cfg  sim.Config
	}{
		{"sk-sf", skTopo(3, 2, 2), sim.Config{Seed: 7}},
		{"sk-deflect", skTopo(3, 2, 2), sim.Config{Seed: 7, Deflection: true}},
		{"sk-wdm", skTopo(3, 2, 2), sim.Config{Seed: 7, Wavelengths: 3}},
		{"pops", popsTopo(4, 3), sim.Config{Seed: 9, MaxQueue: 4}},
		{"p2p", p2pTopo(2, 3), sim.Config{Seed: 11}},
	}
	for _, c := range cases {
		base := sim.Run(c.topo, sim.UniformTraffic{Rate: 0.6}, 300, 300, c.cfg)
		wrapped := sim.Run(Wrap(c.topo, Plan{}), sim.UniformTraffic{Rate: 0.6}, 300, 300, c.cfg)
		if base != wrapped {
			t.Fatalf("%s: fault-free wrapped run diverges from base:\nbase:    %v\nwrapped: %v",
				c.name, base, wrapped)
		}
	}
}

func TestFaultFreeWrapMatchesBaseTables(t *testing.T) {
	topo := skTopo(3, 2, 2)
	ft := Wrap(topo, Plan{})
	for u := 0; u < topo.Nodes(); u++ {
		for v := 0; v < topo.Nodes(); v++ {
			if ft.Distance(u, v) != topo.Distance(u, v) {
				t.Fatalf("Distance(%d,%d) differs", u, v)
			}
			gc, gh := ft.NextCoupler(u, v)
			wc, wh := topo.NextCoupler(u, v)
			if gc != wc || gh != wh {
				t.Fatalf("NextCoupler(%d,%d) = (%d,%d), base gives (%d,%d)", u, v, gc, gh, wc, wh)
			}
		}
	}
}

// --- masking semantics ---

func stepTo(t *testing.T, ft *FaultedTopology, slot int) {
	t.Helper()
	for s := 0; s <= slot; s++ {
		ft.Advance(s)
	}
}

func TestNodeFaultMasksStructure(t *testing.T) {
	topo := skTopo(3, 2, 2)
	const dead = 4
	ft := Wrap(topo, FixedNodes(0, dead))
	stepTo(t, ft, 0)
	if len(ft.OutCouplers(dead)) != 0 {
		t.Fatal("failed node still has out couplers")
	}
	for c := 0; c < ft.Couplers(); c++ {
		for _, h := range ft.Heads(c) {
			if h == dead {
				t.Fatalf("failed node still heard on coupler %d", c)
			}
		}
	}
	for u := 0; u < ft.Nodes(); u++ {
		if u == dead {
			continue
		}
		if ft.Distance(u, dead) != digraph.Unreachable {
			t.Fatalf("node %d can still reach the failed node", u)
		}
		if c, _ := ft.NextCoupler(u, dead); c >= 0 {
			t.Fatalf("route table still routes %d -> failed node", u)
		}
	}
}

func TestCouplerFaultAffectsAllTails(t *testing.T) {
	topo := popsTopo(4, 3) // every node transmits on g=3 couplers
	ft := Wrap(topo, NewPlan("c0", Event{Slot: 0, Elem: Element{Kind: KindCoupler, Coupler: 0}}))
	stepTo(t, ft, 0)
	if len(ft.Heads(0)) != 0 {
		t.Fatal("failed coupler still has listeners")
	}
	for u := 0; u < ft.Nodes(); u++ {
		for _, c := range ft.OutCouplers(u) {
			if c == 0 {
				t.Fatalf("node %d still transmits on failed coupler", u)
			}
		}
	}
}

func TestTransmitterFaultIsPerNode(t *testing.T) {
	topo := popsTopo(4, 3)
	c0 := topo.OutCouplers(0)[0]
	ft := Wrap(topo, NewPlan("tx", Event{Slot: 0, Elem: Element{Kind: KindTransmitter, Node: 0, Coupler: c0}}))
	stepTo(t, ft, 0)
	for _, c := range ft.OutCouplers(0) {
		if c == c0 {
			t.Fatal("node 0 still transmits on its failed transmitter's coupler")
		}
	}
	// Another tail of the same coupler keeps using it.
	kept := false
	for u := 1; u < ft.Nodes(); u++ {
		for _, c := range ft.OutCouplers(u) {
			if c == c0 {
				kept = true
			}
		}
	}
	if !kept {
		t.Fatal("transmitter fault must not take the coupler down for other tails")
	}
	if len(ft.Heads(c0)) == 0 {
		t.Fatal("transmitter fault must not clear the coupler's head set")
	}
}

// --- routing correctness after events ---

// checkRouting verifies, over all pairs, that the route table agrees with
// an independent BFS over the masked structure exposed by the public
// interface: distances match, and every routable entry makes strict
// progress through a live coupler/head.
func checkRouting(t *testing.T, ft *FaultedTopology) {
	t.Helper()
	n := ft.Nodes()
	for u := 0; u < n; u++ {
		// Independent BFS from u over OutCouplers/Heads.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = digraph.Unreachable
		}
		dist[u] = 0
		queue := []int{u}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, c := range ft.OutCouplers(v) {
				for _, h := range ft.Heads(c) {
					if dist[h] == digraph.Unreachable {
						dist[h] = dist[v] + 1
						queue = append(queue, h)
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if ft.Distance(u, v) != dist[v] {
				t.Fatalf("Distance(%d,%d) = %d, independent BFS gives %d",
					u, v, ft.Distance(u, v), dist[v])
			}
			if u == v {
				continue
			}
			c, h := ft.NextCoupler(u, v)
			if dist[v] == digraph.Unreachable {
				if c >= 0 {
					t.Fatalf("route %d -> unreachable %d exists", u, v)
				}
				continue
			}
			if c < 0 {
				t.Fatalf("no route %d -> reachable %d", u, v)
			}
			owned := false
			for _, oc := range ft.OutCouplers(u) {
				if oc == c {
					owned = true
				}
			}
			if !owned {
				t.Fatalf("route %d -> %d uses coupler %d node %d cannot drive", u, v, c, u)
			}
			heard := false
			for _, hh := range ft.Heads(c) {
				if hh == h {
					heard = true
				}
			}
			if !heard {
				t.Fatalf("route %d -> %d relays via %d which does not hear coupler %d", u, v, h, c)
			}
			if ft.Distance(h, v) != ft.Distance(u, v)-1 {
				t.Fatalf("route %d -> %d via %d makes no progress", u, v, h)
			}
		}
	}
}

func TestRoutingConsistentAcrossEventSequence(t *testing.T) {
	topo := skTopo(3, 2, 2)
	plan := NewPlan("seq",
		Event{Slot: 1, Elem: Element{Kind: KindNode, Node: 2}},
		Event{Slot: 3, Elem: Element{Kind: KindCoupler, Coupler: 5}},
		Event{Slot: 5, Elem: Element{Kind: KindTransmitter, Node: 7, Coupler: topo.OutCouplers(7)[0]}},
		Event{Slot: 7, Repair: true, Elem: Element{Kind: KindNode, Node: 2}},
		Event{Slot: 9, Elem: Element{Kind: KindNode, Node: 11}},
	)
	ft := Wrap(topo, plan)
	for s := 0; s <= 10; s++ {
		ft.Advance(s)
		checkRouting(t, ft)
	}
}

// The incremental multi-event rebuild must land on the same tables as a
// fresh wrap that applies the same cumulative fault set in one batch.
func TestIncrementalRebuildMatchesBatchRebuild(t *testing.T) {
	topo := skTopo(3, 2, 2)
	incremental := Wrap(topo, NewPlan("inc",
		Event{Slot: 0, Elem: Element{Kind: KindNode, Node: 3}},
		Event{Slot: 2, Elem: Element{Kind: KindCoupler, Coupler: 1}},
		Event{Slot: 4, Elem: Element{Kind: KindNode, Node: 9}},
	))
	stepTo(t, incremental, 4)
	batch := Wrap(topo, NewPlan("batch",
		Event{Slot: 0, Elem: Element{Kind: KindNode, Node: 3}},
		Event{Slot: 0, Elem: Element{Kind: KindCoupler, Coupler: 1}},
		Event{Slot: 0, Elem: Element{Kind: KindNode, Node: 9}},
	))
	stepTo(t, batch, 0)
	for u := 0; u < topo.Nodes(); u++ {
		for v := 0; v < topo.Nodes(); v++ {
			if incremental.Distance(u, v) != batch.Distance(u, v) {
				t.Fatalf("Distance(%d,%d): incremental %d != batch %d",
					u, v, incremental.Distance(u, v), batch.Distance(u, v))
			}
			ic, ih := incremental.NextCoupler(u, v)
			bc, bh := batch.NextCoupler(u, v)
			if ic != bc || ih != bh {
				t.Fatalf("NextCoupler(%d,%d): incremental (%d,%d) != batch (%d,%d)",
					u, v, ic, ih, bc, bh)
			}
		}
	}
}

func TestRepairRestoresPristineTables(t *testing.T) {
	topo := skTopo(3, 2, 2)
	ft := Wrap(topo, NewPlan("fail-repair",
		Event{Slot: 0, Elem: Element{Kind: KindNode, Node: 5}},
		Event{Slot: 2, Repair: true, Elem: Element{Kind: KindNode, Node: 5}},
	))
	stepTo(t, ft, 2)
	for u := 0; u < topo.Nodes(); u++ {
		for v := 0; v < topo.Nodes(); v++ {
			gc, gh := ft.NextCoupler(u, v)
			wc, wh := topo.NextCoupler(u, v)
			if gc != wc || gh != wh || ft.Distance(u, v) != topo.Distance(u, v) {
				t.Fatalf("after repair, (%d,%d) differs from pristine", u, v)
			}
		}
	}
}

func TestIncrementalRebuildTouchesFewerRowsThanFull(t *testing.T) {
	// A transmitter fault on a POPS network perturbs routing only locally:
	// the incremental repair must rebuild strictly fewer rows than a full
	// per-event rebuild (2 events x N rows) would.
	topo := popsTopo(4, 4)
	n := topo.Nodes()
	ft := Wrap(topo, NewPlan("tx2",
		Event{Slot: 0, Elem: Element{Kind: KindTransmitter, Node: 0, Coupler: topo.OutCouplers(0)[0]}},
		Event{Slot: 1, Elem: Element{Kind: KindTransmitter, Node: 1, Coupler: topo.OutCouplers(1)[0]}},
	))
	stepTo(t, ft, 1)
	checkRouting(t, ft)
	if ft.RowsRebuilt() >= 2*n {
		t.Fatalf("incremental repair rebuilt %d rows, no better than full (%d)", ft.RowsRebuilt(), 2*n)
	}
	if ft.RowsRebuilt() == 0 {
		t.Fatal("transmitter faults must rebuild at least the affected rows")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	topo := skTopo(3, 2, 2)
	ft := Wrap(topo, FixedNodes(0, 1, 2))
	stepTo(t, ft, 0)
	if ft.Distance(5, 1) != digraph.Unreachable {
		t.Fatal("faults did not apply")
	}
	ft.Reset()
	if ft.NodeDown(1) || ft.Distance(5, 1) == digraph.Unreachable {
		t.Fatal("Reset did not restore the pristine state")
	}
	// A second engine run over the same wrapped value reproduces the first.
	cfg := sim.Config{Seed: 3}
	a := sim.Run(ft, sim.UniformTraffic{Rate: 0.4}, 200, 200, cfg)
	b := sim.Run(ft, sim.UniformTraffic{Rate: 0.4}, 200, 200, cfg)
	if a != b {
		t.Fatalf("re-running over one wrapped topology diverges:\n%v\n%v", a, b)
	}
}

// --- engine integration ---

func TestEngineCountsLostToFaults(t *testing.T) {
	// POPS(2,1): nodes 0,1 share one coupler. Queue several messages at
	// node 0, then fail it: the queue must be purged and counted.
	topo := popsTopo(2, 1)
	ft := Wrap(topo, FixedNodes(3, 0))
	e := sim.NewEngine(ft, sim.Config{Seed: 1})
	for i := 0; i < 6; i++ {
		e.Inject(0, 1)
	}
	for s := 0; s < 6; s++ {
		e.Step()
	}
	m := e.Metrics()
	if m.LostToFaults == 0 {
		t.Fatalf("expected purged messages at the failed node: %v", m)
	}
	if m.Injected != m.Delivered+m.Dropped+m.Backlog {
		t.Fatalf("conservation violated: %v", m)
	}
}

func TestEngineCountsUnroutable(t *testing.T) {
	// Fail the destination: messages to it become unroutable and are
	// count-dropped, not stuck.
	topo := popsTopo(2, 2) // 4 nodes
	ft := Wrap(topo, FixedNodes(0, 3))
	e := sim.NewEngine(ft, sim.Config{Seed: 1})
	e.Inject(0, 3)
	e.Step()
	e.Inject(1, 3) // injected after the fault, same outcome
	for s := 0; s < 4; s++ {
		e.Step()
	}
	m := e.Metrics()
	if m.Unroutable != 2 {
		t.Fatalf("unroutable = %d, want 2: %v", m.Unroutable, m)
	}
	if m.Backlog != 0 {
		t.Fatalf("unroutable messages must not linger: %v", m)
	}
	if m.Injected != m.Delivered+m.Dropped+m.Backlog {
		t.Fatalf("conservation violated: %v", m)
	}
}

func TestEngineCountsReroutes(t *testing.T) {
	// SK(2,2,2): queue messages, then fail a node on their path so the
	// route table shifts under them.
	topo := skTopo(2, 2, 2)
	n := topo.Nodes()
	// Find a pair at distance 2 and kill the next hop on its path.
	src, dst, mid := -1, -1, -1
	for u := 0; u < n && src < 0; u++ {
		for v := 0; v < n; v++ {
			if topo.Distance(u, v) == 2 {
				_, h := topo.NextCoupler(u, v)
				src, dst, mid = u, v, h
				break
			}
		}
	}
	if src < 0 {
		t.Fatal("no distance-2 pair found")
	}
	ft := Wrap(topo, FixedNodes(2, mid))
	e := sim.NewEngine(ft, sim.Config{Seed: 1})
	// Saturate src so some messages are still queued when the fault hits.
	for i := 0; i < 8; i++ {
		e.Inject(src, dst)
	}
	for s := 0; s < 30; s++ {
		e.Step()
	}
	m := e.Metrics()
	if m.Reroutes == 0 {
		t.Fatalf("expected rerouted messages when next hop %d failed: %v", mid, m)
	}
	if m.Delivered == 0 {
		t.Fatalf("rerouted messages must still be delivered: %v", m)
	}
	if m.Injected != m.Delivered+m.Dropped+m.Backlog {
		t.Fatalf("conservation violated: %v", m)
	}
}

func TestEngineRecoverySlots(t *testing.T) {
	topo := skTopo(3, 2, 2)
	faulted := sim.Run(Wrap(topo, Random(KindNode, 2, 100, topo, 5)),
		sim.UniformTraffic{Rate: 0.3}, 400, 400, sim.Config{Seed: 5})
	if faulted.RecoverySlots == 0 {
		t.Fatalf("fault event should start the recovery clock: %v", faulted)
	}
	clean := sim.Run(topo, sim.UniformTraffic{Rate: 0.3}, 400, 400, sim.Config{Seed: 5})
	if clean.RecoverySlots != 0 || clean.Unroutable != 0 || clean.LostToFaults != 0 || clean.Reroutes != 0 {
		t.Fatalf("fault metrics leaked into a fault-free run: %v", clean)
	}
}

func TestConservationUnderStochasticFaults(t *testing.T) {
	topo := skTopo(3, 2, 2)
	plan := Stochastic(KindNode, 3, topo, 60, 20, 300, 17)
	if plan.Empty() {
		t.Fatal("stochastic plan generated no events")
	}
	ft := Wrap(topo, plan)
	m := sim.Run(ft, sim.UniformTraffic{Rate: 0.4}, 300, 500, sim.Config{Seed: 23})
	if m.Injected != m.Delivered+m.Dropped+m.Backlog {
		t.Fatalf("conservation violated under transient faults: %v", m)
	}
	if m.Delivered == 0 {
		t.Fatal("network should keep delivering through transient faults")
	}
}

// --- plans ---

func TestPlansAreDeterministicAndNested(t *testing.T) {
	topo := skTopo(3, 2, 2)
	a := Random(KindNode, 3, 10, topo, 42)
	b := Random(KindNode, 3, 10, topo, 42)
	if len(a.Events) != 3 || len(b.Events) != 3 {
		t.Fatalf("expected 3 events, got %d and %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same-seed plans differ")
		}
	}
	// Nesting: the k-fault set is a prefix of the (k+1)-fault set.
	big := Random(KindNode, 4, 10, topo, 42)
	in := map[int]bool{}
	for _, ev := range big.Events {
		in[ev.Elem.Node] = true
	}
	for _, ev := range a.Events {
		if !in[ev.Elem.Node] {
			t.Fatalf("node %d in the 3-fault set but not the 4-fault set", ev.Elem.Node)
		}
	}
}

func TestStochasticPlanAlternatesPerElement(t *testing.T) {
	topo := skTopo(3, 2, 2)
	plan := Stochastic(KindNode, 2, topo, 50, 10, 500, 9)
	state := map[Element]bool{} // true = down
	for _, ev := range plan.Events {
		if state[ev.Elem] == !ev.Repair {
			t.Fatalf("element %v: consecutive %v events", ev.Elem, ev.Repair)
		}
		state[ev.Elem] = !ev.Repair
		if ev.Slot < 0 || ev.Slot >= 500 {
			t.Fatalf("event outside horizon: %+v", ev)
		}
	}
	for i := 1; i < len(plan.Events); i++ {
		if plan.Events[i].Slot < plan.Events[i-1].Slot {
			t.Fatal("plan events not sorted by slot")
		}
	}
}

func TestSpecZeroWrapsNothing(t *testing.T) {
	topo := skTopo(2, 2, 2)
	var s Spec
	if s.Wrap(topo, 1) != topo {
		t.Fatal("zero spec must return the base topology unchanged")
	}
	if s.Label() != "none" {
		t.Fatalf("zero spec label = %q", s.Label())
	}
}

// --- dynamic §2.5 validation at small scale ---

// Messages injected after ≤ d-1 whole-group failures on a stack-Kautz
// network must be delivered in ≤ k+2 hops (paper §2.5, live version).
func TestDynamicKPlus2BoundSmallSK(t *testing.T) {
	const s, d, k = 2, 3, 2
	nw := stackkautz.New(s, d, k)
	topo := sim.NewStackTopology(nw.StackGraph())
	// Fail d-1 = 2 whole groups (all their member nodes) at slot 0.
	var nodes []int
	for _, g := range []int{1, 5} {
		for m := 0; m < s; m++ {
			nodes = append(nodes, g*s+m)
		}
	}
	ft := Wrap(topo, FixedNodes(0, nodes...))
	e := sim.NewEngine(ft, sim.Config{Seed: 13})
	maxHops := 0
	e.OnDeliver = func(msg sim.Message, _ int) {
		if msg.Hops > maxHops {
			maxHops = msg.Hops
		}
	}
	for slot := 0; slot < 300; slot++ {
		for u := 0; u < topo.Nodes(); u++ {
			if slot%7 == u%7 {
				e.Inject(u, (u+3*slot+1)%topo.Nodes())
			}
		}
		e.Step()
	}
	for sl := 0; sl < 200 && e.Metrics().Backlog > 0; sl++ {
		e.Step()
	}
	m := e.Metrics()
	if m.Delivered == 0 {
		t.Fatal("nothing delivered under group faults")
	}
	if maxHops > k+2 {
		t.Fatalf("delivered message took %d hops > k+2 = %d under %d group faults",
			maxHops, k+2, d-1)
	}
}

// Full acceptance check at paper scale: on SK(6,3,2) with d-1 = 2 whole
// failed groups, every message delivered by the live simulator between
// surviving groups achieves exactly the path length kautz.RouteAvoiding
// computes for its (src group, dst group) pair, and never exceeds k+2.
func TestDynamicHopsMatchRouteAvoiding(t *testing.T) {
	const s, d, k = 6, 3, 2
	nw := stackkautz.New(s, d, k)
	kg := nw.Kautz()
	topo := sim.NewStackTopology(nw.StackGraph())
	faultyGroups := map[int]bool{2: true, 7: true} // d-1 = 2 groups
	var nodes []int
	for g := range faultyGroups {
		for m := 0; m < s; m++ {
			nodes = append(nodes, g*s+m)
		}
	}
	ft := Wrap(topo, FixedNodes(0, nodes...))
	e := sim.NewEngine(ft, sim.Config{Seed: 29})
	isFaulty := func(w kautz.Label) bool { return faultyGroups[kg.Index(w)] }
	checked, maxHops := 0, 0
	e.OnDeliver = func(msg sim.Message, _ int) {
		sg, dg := msg.Src/s, msg.Dst/s
		if faultyGroups[sg] || faultyGroups[dg] {
			t.Fatalf("delivered a message touching a failed group: %+v", msg)
		}
		if msg.Hops > maxHops {
			maxHops = msg.Hops
		}
		want := 1 // intra-group: one loop-coupler hop
		if sg != dg {
			path, _ := kg.RouteAvoiding(kg.LabelOf(sg), kg.LabelOf(dg), isFaulty)
			if path == nil {
				t.Fatalf("RouteAvoiding found no path %d -> %d but the simulator delivered", sg, dg)
			}
			want = len(path) - 1
		}
		if msg.Hops != want {
			t.Fatalf("message %d->%d delivered in %d hops, RouteAvoiding says %d",
				msg.Src, msg.Dst, msg.Hops, want)
		}
		checked++
	}
	rng := rand.New(rand.NewSource(31))
	var buf []sim.Injection
	for slot := 0; slot < 400; slot++ {
		buf = (sim.UniformTraffic{Rate: 0.1}).Generate(buf[:0], slot, topo.Nodes(), rng)
		for _, inj := range buf {
			e.Inject(inj.Src, inj.Dst)
		}
		e.Step()
	}
	for slot := 0; slot < 400 && e.Metrics().Backlog > 0; slot++ {
		e.Step()
	}
	if checked < 1000 {
		t.Fatalf("only %d deliveries checked; raise the load", checked)
	}
	if maxHops > k+2 {
		t.Fatalf("max delivered hops %d exceeds k+2 = %d under d-1 faults", maxHops, k+2)
	}
}

// Messages stranded without any surviving route are not "reroutes" — they
// must only surface as Unroutable (no double-booking of the same message).
func TestReroutesExcludeUnroutableMessages(t *testing.T) {
	topo := popsTopo(2, 2) // single-hop: any live route goes direct
	ft := Wrap(topo, FixedNodes(2, 3))
	e := sim.NewEngine(ft, sim.Config{Seed: 1})
	for i := 0; i < 4; i++ {
		e.Inject(0, 3) // all queued toward the node that will fail
	}
	for s := 0; s < 10; s++ {
		e.Step()
	}
	m := e.Metrics()
	if m.Reroutes != 0 {
		t.Fatalf("messages left without a route counted as reroutes: %v", m)
	}
	if m.Unroutable == 0 {
		t.Fatalf("stranded messages never surfaced as unroutable: %v", m)
	}
}

// Events that disturb nobody — failures and repairs on an idle network —
// must not start the time-to-recover clock.
func TestRecoverySlotsZeroOnIdleNetwork(t *testing.T) {
	topo := skTopo(3, 2, 2)
	ft := Wrap(topo, NewPlan("idle",
		Event{Slot: 1, Elem: Element{Kind: KindNode, Node: 2}},
		Event{Slot: 5, Repair: true, Elem: Element{Kind: KindNode, Node: 2}},
	))
	e := sim.NewEngine(ft, sim.Config{Seed: 1})
	for s := 0; s < 10; s++ {
		e.Step() // no traffic at all
	}
	if m := e.Metrics(); m.RecoverySlots != 0 {
		t.Fatalf("idle fail/repair events started the recovery clock: %v", m)
	}
}
