package faults

import (
	"fmt"

	"otisnet/internal/sim"
)

// Spec is a compact, value-type description of a fault scenario, designed
// to be a sweep-grid axis: it defers materializing the Plan (which needs
// the concrete topology and a seed) until the scenario runs. The zero Spec
// means "no faults" and wraps nothing, so fault-free sweep points run on
// the bare topology, bit-for-bit identical to sweeps without a fault axis.
type Spec struct {
	// Kind is the element class to fail.
	Kind Kind
	// Count is how many elements fail; 0 means no faults.
	Count int
	// Slot is when the one-shot failure batch strikes (ignored for
	// stochastic specs).
	Slot int
	// MTBF/MTTR, when both positive, select a stochastic transient-failure
	// process of these mean up/down times over Horizon slots.
	MTBF, MTTR float64
	Horizon    int
	// Seed overrides the scenario seed for the plan when non-zero, pinning
	// the same fault set across seeds of a sweep point.
	Seed int64
}

// IsZero reports whether the spec describes the fault-free scenario.
func (s Spec) IsZero() bool { return s.Count == 0 }

// Label is the human- and CSV-facing scenario identifier.
func (s Spec) Label() string {
	if s.IsZero() {
		return "none"
	}
	if s.MTBF > 0 {
		return fmt.Sprintf("%s-mtbf%g/%g×%d", s.Kind, s.MTBF, s.MTTR, s.Count)
	}
	return fmt.Sprintf("%s×%d@%d", s.Kind, s.Count, s.Slot)
}

// planSeed picks the plan's RNG seed.
func (s Spec) planSeed(seed int64) int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return seed
}

// Plan materializes the fault schedule for a concrete topology.
func (s Spec) Plan(topo sim.Topology, seed int64) Plan {
	if s.IsZero() {
		return Plan{Name: "none"}
	}
	if s.MTBF > 0 && s.MTTR > 0 {
		horizon := s.Horizon
		if horizon == 0 {
			horizon = 10000 // sweeps override with the scenario's slot count
		}
		return Stochastic(s.Kind, s.Count, topo, s.MTBF, s.MTTR, horizon, s.planSeed(seed))
	}
	return Random(s.Kind, s.Count, s.Slot, topo, s.planSeed(seed))
}

// Wrap returns topo unchanged for the zero spec, else a fresh
// FaultedTopology replaying the materialized plan. Each call builds an
// independent instance, safe for one concurrent scenario each.
func (s Spec) Wrap(topo sim.Topology, seed int64) sim.Topology {
	if s.IsZero() {
		return topo
	}
	return Wrap(topo, s.Plan(topo, seed))
}
